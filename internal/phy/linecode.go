package phy

import "fmt"

// LineCode maps data bits to on-air chips and back. Backscatter links use
// DC-balanced codes (Manchester, FM0) so the tag's threshold tracker
// sees both levels often; NRZ is included as the baseline/ablation code.
//
// Encode appends chip values (0 or 1, one per byte) for the given bits
// (one per byte) to dst. Decode converts per-chip soft levels (averaged
// envelope amplitudes) back to bits, appending to dst; threshold is the
// level separating high from low chips (differential codes ignore it).
type LineCode interface {
	// Name identifies the code in logs and experiment tables.
	Name() string
	// ChipsPerBit returns the fixed chip expansion factor.
	ChipsPerBit() int
	// Encode appends the chips for bits to dst and returns it.
	Encode(bits []byte, dst []byte) []byte
	// Decode appends the bits recovered from per-chip levels to dst and
	// returns it. len(levels) should be a multiple of ChipsPerBit;
	// trailing partial groups are ignored.
	Decode(levels []float64, threshold float64, dst []byte) []byte
}

// NRZ is the trivial one-chip-per-bit code.
type NRZ struct{}

// Name implements LineCode.
func (NRZ) Name() string { return "nrz" }

// ChipsPerBit implements LineCode.
func (NRZ) ChipsPerBit() int { return 1 }

// Encode implements LineCode.
func (NRZ) Encode(bits []byte, dst []byte) []byte {
	for _, b := range bits {
		dst = append(dst, b&1)
	}
	return dst
}

// Decode implements LineCode.
func (NRZ) Decode(levels []float64, threshold float64, dst []byte) []byte {
	if threshold <= 0 {
		threshold = midpointThreshold(levels)
	}
	for _, v := range levels {
		if v > threshold {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

// midpointThreshold derives a slicing threshold as the midpoint between
// the lowest and highest observed levels. Valid whenever both chip levels
// appear in the window, which DC-balanced codes guarantee.
func midpointThreshold(levels []float64) float64 {
	if len(levels) == 0 {
		return 0
	}
	lo, hi := levels[0], levels[0]
	for _, v := range levels[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return (lo + hi) / 2
}

// Manchester encodes 1 as high-low and 0 as low-high (IEEE convention
// inverted; the choice only matters for consistency). Decoding compares
// the two half-chips, so it needs no absolute threshold.
type Manchester struct{}

// Name implements LineCode.
func (Manchester) Name() string { return "manchester" }

// ChipsPerBit implements LineCode.
func (Manchester) ChipsPerBit() int { return 2 }

// Encode implements LineCode.
func (Manchester) Encode(bits []byte, dst []byte) []byte {
	for _, b := range bits {
		if b&1 == 1 {
			dst = append(dst, 1, 0)
		} else {
			dst = append(dst, 0, 1)
		}
	}
	return dst
}

// Decode implements LineCode.
func (Manchester) Decode(levels []float64, _ float64, dst []byte) []byte {
	for i := 0; i+1 < len(levels); i += 2 {
		if levels[i] > levels[i+1] {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

// FM0 is the bi-phase space code used by EPC Gen2 RFID: the level always
// inverts at a bit boundary, and a data 0 adds a mid-bit inversion.
// Decoding compares the two half-bits (equal halves = 1), which is
// threshold-free and self-synchronising against slow envelope drift.
type FM0 struct {
	// level is the current line level carried across Encode calls so a
	// frame can be encoded incrementally.
	level byte
}

// Name implements LineCode.
func (*FM0) Name() string { return "fm0" }

// ChipsPerBit implements LineCode.
func (*FM0) ChipsPerBit() int { return 2 }

// Reset returns the encoder to the initial line level.
func (f *FM0) Reset() { f.level = 0 }

// Encode implements LineCode.
func (f *FM0) Encode(bits []byte, dst []byte) []byte {
	for _, b := range bits {
		f.level ^= 1 // invert at bit boundary
		first := f.level
		second := f.level
		if b&1 == 0 {
			second ^= 1 // mid-bit inversion encodes 0
			f.level = second
		}
		dst = append(dst, first, second)
	}
	return dst
}

// Decode implements LineCode.
func (*FM0) Decode(levels []float64, threshold float64, dst []byte) []byte {
	if threshold <= 0 {
		// FM0 inverts at every bit boundary, so any multi-bit window
		// contains both levels and the midpoint is well defined.
		threshold = midpointThreshold(levels)
	}
	for i := 0; i+1 < len(levels); i += 2 {
		// Equal halves -> no mid-bit transition -> data 1.
		a := levels[i] > threshold
		b := levels[i+1] > threshold
		if a == b {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

// CodeByName returns a fresh line code instance for the given name.
func CodeByName(name string) (LineCode, error) {
	switch name {
	case "nrz":
		return NRZ{}, nil
	case "manchester":
		return Manchester{}, nil
	case "fm0":
		return &FM0{}, nil
	default:
		return nil, fmt.Errorf("phy: unknown line code %q", name)
	}
}
