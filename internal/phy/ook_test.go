package phy

import (
	"math"
	"testing"

	"repro/internal/sigproc"
)

func TestOOKDefaults(t *testing.T) {
	var o OOK
	if o.SamplesPerChipN() != 4 {
		t.Fatalf("default sps = %d", o.SamplesPerChipN())
	}
	if o.LevelHigh() != 1 {
		t.Fatalf("default high = %g", o.LevelHigh())
	}
	if math.Abs(o.LevelLow()-0.25) > 1e-12 {
		t.Fatalf("default low = %g, want 0.25", o.LevelLow())
	}
}

func TestOOKAppendChips(t *testing.T) {
	o := OOK{SamplesPerChip: 2, Depth: 0.5, Amplitude: 2}
	wave := o.AppendChips(nil, []byte{1, 0})
	if len(wave) != 4 {
		t.Fatalf("len = %d, want 4", len(wave))
	}
	if real(wave[0]) != 2 || real(wave[1]) != 2 {
		t.Fatalf("high chip = %v", wave[:2])
	}
	if real(wave[2]) != 1 || real(wave[3]) != 1 {
		t.Fatalf("low chip = %v (want amplitude 1)", wave[2:])
	}
}

func TestOOKAppendIdle(t *testing.T) {
	o := OOK{SamplesPerChip: 3}
	wave := o.AppendIdle(nil, 2)
	if len(wave) != 6 {
		t.Fatalf("len = %d", len(wave))
	}
	for _, v := range wave {
		if real(v) != o.LevelHigh() {
			t.Fatalf("idle must be at high level: %v", v)
		}
	}
}

func TestOOKNumSamples(t *testing.T) {
	o := OOK{SamplesPerChip: 8}
	if o.NumSamples(10) != 80 {
		t.Fatal("NumSamples mismatch")
	}
}

func TestOOKChipLevels(t *testing.T) {
	o := OOK{SamplesPerChip: 4}
	chips := []byte{1, 0, 1}
	wave := o.AppendChips(nil, chips)
	env := wave.Envelope(nil)
	levels := o.ChipLevels(env, 0, nil)
	if len(levels) != 3 {
		t.Fatalf("levels = %v", levels)
	}
	if math.Abs(levels[0]-1) > 1e-12 || math.Abs(levels[1]-0.25) > 1e-12 {
		t.Fatalf("levels = %v", levels)
	}
}

func TestOOKChipLevelsOffset(t *testing.T) {
	o := OOK{SamplesPerChip: 2}
	env := []float64{9, 9, 1, 1, 0, 0} // two junk samples then chips
	levels := o.ChipLevels(env, 2, nil)
	if len(levels) != 2 || levels[0] != 1 || levels[1] != 0 {
		t.Fatalf("levels = %v", levels)
	}
	// Negative offset clamps to zero.
	l2 := o.ChipLevels(env, -5, nil)
	if len(l2) != 3 {
		t.Fatalf("clamped offset levels = %v", l2)
	}
}

func TestOOKModulateDemodulateRoundTrip(t *testing.T) {
	o := OOK{SamplesPerChip: 5, Depth: 0.75}
	code := &FM0{}
	bits := randomBits(400, 11)
	chips := code.Encode(bits, nil)
	wave := o.AppendChips(nil, chips)
	env := wave.Envelope(nil)
	levels := o.ChipLevels(env, 0, nil)
	got := (&FM0{}).Decode(levels, o.SliceThreshold(1), nil)
	if sigproc.CountBitErrors(got, bits) != 0 {
		t.Fatal("noiseless OOK round trip must be perfect")
	}
}

func TestOOKMeanPower(t *testing.T) {
	o := OOK{Depth: 1, Amplitude: 1} // true on-off keying
	if math.Abs(o.MeanPower()-0.5) > 1e-12 {
		t.Fatalf("mean power = %g, want 0.5", o.MeanPower())
	}
}

func TestOOKSliceThresholdScales(t *testing.T) {
	o := OOK{Depth: 0.5}
	base := o.SliceThreshold(1)
	if got := o.SliceThreshold(0.1); math.Abs(got-base*0.1) > 1e-12 {
		t.Fatalf("threshold does not scale with channel amplitude")
	}
}

func TestRateTable(t *testing.T) {
	r, err := RateByID(DefaultRates, 2)
	if err != nil || r.Name != "1x" {
		t.Fatalf("RateByID: %v %v", r, err)
	}
	if _, err := RateByID(DefaultRates, 99); err == nil {
		t.Fatal("unknown rate must error")
	}
}

func TestRateBitsPerSecond(t *testing.T) {
	r := Rate{SamplesPerChip: 4, Code: "fm0"}
	// 1 MHz / 4 sps = 250 kchip/s; FM0 = 2 chips/bit -> 125 kbit/s.
	if got := r.BitsPerSecond(1e6); math.Abs(got-125e3) > 1e-9 {
		t.Fatalf("rate = %g, want 125e3", got)
	}
	bad := Rate{SamplesPerChip: 4, Code: "nope"}
	if bad.BitsPerSecond(1e6) != 0 {
		t.Fatal("unknown code should yield 0")
	}
}

func TestDefaultRatesOrderedFastestLast(t *testing.T) {
	prev := 0.0
	for _, r := range DefaultRates {
		bps := r.BitsPerSecond(1e6)
		if bps <= prev {
			t.Fatalf("rates must be strictly increasing: %s at %g", r.Name, bps)
		}
		prev = bps
	}
}
