package phy

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/simrand"
)

// chipsToLevels converts ideal chips to envelope levels at a given
// high/low pair, optionally with additive noise.
func chipsToLevels(chips []byte, hi, lo float64, noise float64, src *simrand.Source) []float64 {
	out := make([]float64, len(chips))
	for i, c := range chips {
		v := lo
		if c&1 == 1 {
			v = hi
		}
		if src != nil {
			v += src.Gaussian(0, noise)
		}
		out[i] = v
	}
	return out
}

func randomBits(n int, seed uint64) []byte {
	src := simrand.New(seed)
	bits := make([]byte, n)
	for i := range bits {
		bits[i] = src.Bit()
	}
	return bits
}

func TestAllCodesRoundTrip(t *testing.T) {
	codes := []LineCode{NRZ{}, Manchester{}, &FM0{}}
	bits := randomBits(256, 1)
	for _, code := range codes {
		chips := code.Encode(bits, nil)
		if len(chips) != len(bits)*code.ChipsPerBit() {
			t.Fatalf("%s: chip count %d, want %d", code.Name(), len(chips), len(bits)*code.ChipsPerBit())
		}
		levels := chipsToLevels(chips, 1.0, 0.25, 0, nil)
		got := code.Decode(levels, 0.625, nil)
		if !bytes.Equal(got, bits) {
			t.Fatalf("%s: round trip failed", code.Name())
		}
	}
}

func TestCodesRoundTripAutoThreshold(t *testing.T) {
	// Threshold <= 0 asks the decoder to derive its own.
	codes := []LineCode{NRZ{}, Manchester{}, &FM0{}}
	bits := randomBits(128, 2)
	for _, code := range codes {
		chips := code.Encode(bits, nil)
		levels := chipsToLevels(chips, 0.9, 0.7, 0, nil) // shallow depth
		got := code.Decode(levels, 0, nil)
		if !bytes.Equal(got, bits) {
			t.Fatalf("%s: auto-threshold round trip failed", code.Name())
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		bits := make([]byte, len(data))
		for i, b := range data {
			bits[i] = b & 1
		}
		for _, code := range []LineCode{NRZ{}, Manchester{}, &FM0{}} {
			chips := code.Encode(bits, nil)
			levels := chipsToLevels(chips, 1, 0, 0, nil)
			got := code.Decode(levels, 0.5, nil)
			if !bytes.Equal(got, bits) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestManchesterDCBalance(t *testing.T) {
	bits := randomBits(512, 3)
	chips := Manchester{}.Encode(bits, nil)
	ones := 0
	for _, c := range chips {
		ones += int(c)
	}
	if ones*2 != len(chips) {
		t.Fatalf("Manchester must be exactly DC balanced: %d/%d high", ones, len(chips))
	}
}

func TestManchesterThresholdFree(t *testing.T) {
	bits := randomBits(64, 4)
	chips := Manchester{}.Encode(bits, nil)
	// Arbitrary channel scaling and offset must not matter.
	levels := chipsToLevels(chips, 0.002, 0.0005, 0, nil)
	got := Manchester{}.Decode(levels, 12345, nil) // absurd threshold, ignored
	if !bytes.Equal(got, bits) {
		t.Fatal("Manchester decode must ignore the threshold")
	}
}

func TestFM0TransitionsAtEveryBoundary(t *testing.T) {
	bits := randomBits(200, 5)
	enc := &FM0{}
	chips := enc.Encode(bits, nil)
	for i := 2; i < len(chips); i += 2 {
		if chips[i] == chips[i-1] {
			t.Fatalf("FM0 missing boundary transition before bit %d", i/2)
		}
	}
}

func TestFM0MidBitTransitionEncodesZero(t *testing.T) {
	enc := &FM0{}
	chips := enc.Encode([]byte{0, 1, 0}, nil)
	// bit 0 -> halves differ; bit 1 -> halves equal.
	if chips[0] == chips[1] {
		t.Fatal("data 0 must have a mid-bit transition")
	}
	if chips[2] != chips[3] {
		t.Fatal("data 1 must not have a mid-bit transition")
	}
	if chips[4] == chips[5] {
		t.Fatal("second data 0 must have a mid-bit transition")
	}
}

func TestFM0StatefulAcrossCalls(t *testing.T) {
	enc := &FM0{}
	a := enc.Encode([]byte{1}, nil)
	b := enc.Encode([]byte{1}, nil)
	// The second bit must start with an inverted level relative to the
	// end of the first.
	if b[0] == a[1] {
		t.Fatal("FM0 must carry line level across Encode calls")
	}
	enc.Reset()
	c := enc.Encode([]byte{1}, nil)
	if !bytes.Equal(c, a) {
		t.Fatal("Reset must restore the initial level")
	}
}

func TestFM0DecodeNoisy(t *testing.T) {
	src := simrand.New(6)
	bits := randomBits(1000, 7)
	enc := &FM0{}
	chips := enc.Encode(bits, nil)
	levels := chipsToLevels(chips, 1.0, 0.25, 0.05, src)
	got := (&FM0{}).Decode(levels, 0.625, nil)
	errs := 0
	for i := range bits {
		if got[i] != bits[i] {
			errs++
		}
	}
	if errs > 5 {
		t.Fatalf("FM0 with mild noise: %d/1000 bit errors", errs)
	}
}

func TestDecodeIgnoresTrailingPartialGroup(t *testing.T) {
	levels := []float64{1, 0, 1} // 1.5 Manchester symbols
	got := Manchester{}.Decode(levels, 0.5, nil)
	if len(got) != 1 {
		t.Fatalf("partial group must be dropped, got %d bits", len(got))
	}
}

func TestCodeByName(t *testing.T) {
	for _, name := range []string{"nrz", "manchester", "fm0"} {
		c, err := CodeByName(name)
		if err != nil || c.Name() != name {
			t.Fatalf("CodeByName(%q) = %v, %v", name, c, err)
		}
	}
	if _, err := CodeByName("qam4096"); err == nil {
		t.Fatal("unknown code must error")
	}
}

func TestMidpointThreshold(t *testing.T) {
	if midpointThreshold(nil) != 0 {
		t.Fatal("empty levels -> 0")
	}
	if got := midpointThreshold([]float64{0.2, 1.0, 0.6}); got != 0.6 {
		t.Fatalf("midpoint = %g, want 0.6", got)
	}
}
