package phy

import (
	"math"
	"testing"

	"repro/internal/simrand"
)

func TestDefaultPreambleChips(t *testing.T) {
	chips := DefaultPreambleChips(8)
	if len(chips) != 8+13 {
		t.Fatalf("len = %d", len(chips))
	}
	// Warmup alternates.
	for i := 1; i < 8; i++ {
		if chips[i] == chips[i-1] {
			t.Fatal("warmup must alternate")
		}
	}
	if DefaultPreambleChips(-3)[0] != 1 {
		t.Fatal("negative warmup should clamp to pure sync word (barker starts with 1)")
	}
}

func TestSyncWordChipsIsCopy(t *testing.T) {
	a := SyncWordChips()
	a[0] ^= 1
	b := SyncWordChips()
	if b[0] == a[0] {
		t.Fatal("SyncWordChips must return a copy")
	}
}

func TestPreambleTemplateLevels(t *testing.T) {
	o := OOK{SamplesPerChip: 2, Depth: 0.5}
	tpl := PreambleTemplate(o, []byte{1, 0})
	if len(tpl) != 4 {
		t.Fatalf("len = %d", len(tpl))
	}
	if tpl[0] != 1 || tpl[2] != 0.5 {
		t.Fatalf("template = %v", tpl)
	}
}

func buildSyncScenario(o OOK, gain float64, offset int, noise float64, seed uint64) ([]float64, []float64, []byte) {
	chips := DefaultPreambleChips(8)
	tpl := PreambleTemplate(o, chips)
	payloadChips := []byte{1, 1, 0, 1, 0, 0, 1, 0}
	wave := o.AppendChips(nil, append(append([]byte{}, chips...), payloadChips...))
	env := make([]float64, offset+len(wave))
	// Leading idle carrier before the frame.
	for i := 0; i < offset; i++ {
		env[i] = o.LevelHigh() * gain
	}
	for i, v := range wave {
		env[offset+i] = real(v) * gain
	}
	if noise > 0 {
		src := simrand.New(seed)
		for i := range env {
			env[i] += src.Gaussian(0, noise)
		}
	}
	return env, tpl, payloadChips
}

func TestDetectPreambleExactOffset(t *testing.T) {
	o := OOK{SamplesPerChip: 4}
	env, tpl, _ := buildSyncScenario(o, 1, 37, 0, 0)
	res, ok := DetectPreamble(env, tpl, 0.7)
	if !ok {
		t.Fatal("preamble not detected")
	}
	if res.PeakIndex != 37 {
		t.Fatalf("peak at %d, want 37", res.PeakIndex)
	}
	if res.Start != 37+len(tpl) {
		t.Fatalf("start = %d", res.Start)
	}
	if res.Corr < 0.99 {
		t.Fatalf("clean correlation = %g", res.Corr)
	}
}

func TestDetectPreambleAmplitudeInvariant(t *testing.T) {
	o := OOK{SamplesPerChip: 4}
	env, tpl, _ := buildSyncScenario(o, 1e-4, 21, 0, 0)
	res, ok := DetectPreamble(env, tpl, 0.7)
	if !ok || res.PeakIndex != 21 {
		t.Fatalf("detection failed at low amplitude: %+v ok=%v", res, ok)
	}
}

func TestDetectPreambleNoisy(t *testing.T) {
	o := OOK{SamplesPerChip: 4}
	env, tpl, _ := buildSyncScenario(o, 1, 50, 0.1, 42)
	res, ok := DetectPreamble(env, tpl, 0.6)
	if !ok {
		t.Fatal("preamble not detected under noise")
	}
	if res.PeakIndex < 48 || res.PeakIndex > 52 {
		t.Fatalf("noisy peak at %d, want ~50", res.PeakIndex)
	}
}

func TestDetectPreambleAbsent(t *testing.T) {
	o := OOK{SamplesPerChip: 4}
	tpl := PreambleTemplate(o, DefaultPreambleChips(8))
	src := simrand.New(9)
	env := make([]float64, 2*len(tpl))
	for i := range env {
		env[i] = math.Abs(src.Gaussian(0.5, 0.2))
	}
	if _, ok := DetectPreamble(env, tpl, 0.8); ok {
		t.Fatal("pure noise must not trigger detection at high threshold")
	}
}

func TestDetectPreambleShortInput(t *testing.T) {
	tpl := []float64{1, 0, 1}
	if _, ok := DetectPreamble([]float64{1}, tpl, 0.5); ok {
		t.Fatal("input shorter than template must not detect")
	}
	if _, ok := DetectPreamble([]float64{1, 2, 3}, nil, 0.5); ok {
		t.Fatal("empty template must not detect")
	}
}

func TestEstimateChannelAmp(t *testing.T) {
	o := OOK{SamplesPerChip: 4}
	const gain = 0.01
	env, tpl, _ := buildSyncScenario(o, gain, 10, 0, 0)
	res, ok := DetectPreamble(env, tpl, 0.7)
	if !ok {
		t.Fatal("no sync")
	}
	amp := EstimateChannelAmp(env, tpl, res.PeakIndex)
	if math.Abs(amp-gain) > gain*0.01 {
		t.Fatalf("estimated amp %g, want %g", amp, gain)
	}
}

func TestEstimateChannelAmpBounds(t *testing.T) {
	if EstimateChannelAmp([]float64{1}, []float64{1, 1}, 0) != 0 {
		t.Fatal("out-of-range window must return 0")
	}
	if EstimateChannelAmp([]float64{1, 1}, []float64{1, 1}, -1) != 0 {
		t.Fatal("negative peak index must return 0")
	}
	if EstimateChannelAmp([]float64{1, 1}, []float64{0, 0}, 0) != 0 {
		t.Fatal("zero template must return 0")
	}
}

func TestSyncEndToEndChipRecovery(t *testing.T) {
	// Full pipeline: detect preamble, then decode payload chips using the
	// estimated amplitude.
	o := OOK{SamplesPerChip: 4, Depth: 0.75}
	const gain = 0.02
	env, tpl, payloadChips := buildSyncScenario(o, gain, 33, 0.001, 7)
	res, ok := DetectPreamble(env, tpl, 0.7)
	if !ok {
		t.Fatal("no sync")
	}
	amp := EstimateChannelAmp(env, tpl, res.PeakIndex)
	levels := o.ChipLevels(env, res.Start, nil)
	thr := o.SliceThreshold(amp)
	for i, want := range payloadChips {
		got := byte(0)
		if levels[i] > thr {
			got = 1
		}
		if got != want {
			t.Fatalf("chip %d: got %d, want %d (levels=%v thr=%g)", i, got, want, levels[:len(payloadChips)], thr)
		}
	}
}
