// Package phy implements the forward-link physical layer of the
// full-duplex backscatter system: OOK modulation with configurable
// modulation depth (the carrier never fully extinguishes, keeping the tag
// powered and the feedback channel alive), RFID-style line codes
// (NRZ, Manchester, FM0), chunked frame formats with per-chunk CRCs
// (the hooks instantaneous feedback attaches to), and preamble
// detection/symbol timing.
package phy

// CRC-8/ATM (poly 0x07, init 0x00) protects headers and per-chunk
// integrity; CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF) protects whole
// frames. Both are table-driven.

var crc8Table = makeCRC8Table(0x07)

func makeCRC8Table(poly byte) [256]byte {
	var t [256]byte
	for i := 0; i < 256; i++ {
		c := byte(i)
		for b := 0; b < 8; b++ {
			if c&0x80 != 0 {
				c = c<<1 ^ poly
			} else {
				c <<= 1
			}
		}
		t[i] = c
	}
	return t
}

// CRC8 returns the CRC-8/ATM checksum of data.
func CRC8(data []byte) byte {
	var c byte
	for _, b := range data {
		c = crc8Table[c^b]
	}
	return c
}

// UpdateCRC8 continues a CRC-8 computation from a previous value.
func UpdateCRC8(crc byte, data []byte) byte {
	for _, b := range data {
		crc = crc8Table[crc^b]
	}
	return crc
}

var crc16Table = makeCRC16Table(0x1021)

func makeCRC16Table(poly uint16) [256]uint16 {
	var t [256]uint16
	for i := 0; i < 256; i++ {
		c := uint16(i) << 8
		for b := 0; b < 8; b++ {
			if c&0x8000 != 0 {
				c = c<<1 ^ poly
			} else {
				c <<= 1
			}
		}
		t[i] = c
	}
	return t
}

// CRC16 returns the CRC-16/CCITT-FALSE checksum of data.
func CRC16(data []byte) uint16 {
	return UpdateCRC16(0xFFFF, data)
}

// UpdateCRC16 continues a CRC-16 computation from a previous value.
// Start from 0xFFFF for CCITT-FALSE.
func UpdateCRC16(crc uint16, data []byte) uint16 {
	for _, b := range data {
		crc = crc<<8 ^ crc16Table[byte(crc>>8)^b]
	}
	return crc
}
