package phy

import (
	"testing"
	"testing/quick"
)

func TestCRC8KnownVector(t *testing.T) {
	// CRC-8/ATM ("123456789") = 0xF4.
	if got := CRC8([]byte("123456789")); got != 0xF4 {
		t.Fatalf("CRC8 check vector = %#x, want 0xF4", got)
	}
}

func TestCRC16KnownVector(t *testing.T) {
	// CRC-16/CCITT-FALSE ("123456789") = 0x29B1.
	if got := CRC16([]byte("123456789")); got != 0x29B1 {
		t.Fatalf("CRC16 check vector = %#x, want 0x29B1", got)
	}
}

func TestCRCEmpty(t *testing.T) {
	if CRC8(nil) != 0 {
		t.Fatal("CRC8 of empty should be 0")
	}
	if CRC16(nil) != 0xFFFF {
		t.Fatal("CRC16 of empty should be init value 0xFFFF")
	}
}

func TestUpdateCRCIncremental(t *testing.T) {
	data := []byte("full duplex backscatter")
	split := 7
	c8 := UpdateCRC8(CRC8(data[:split]), data[split:])
	if c8 != CRC8(data) {
		t.Fatal("incremental CRC8 mismatch")
	}
	c16 := UpdateCRC16(CRC16(data[:split]), data[split:])
	if c16 != CRC16(data) {
		t.Fatal("incremental CRC16 mismatch")
	}
}

func TestCRC8DetectsSingleBitFlip(t *testing.T) {
	f := func(data []byte, pos uint16, bit uint8) bool {
		if len(data) == 0 {
			return true
		}
		orig := CRC8(data)
		i := int(pos) % len(data)
		mut := make([]byte, len(data))
		copy(mut, data)
		mut[i] ^= 1 << (bit % 8)
		return CRC8(mut) != orig
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCRC16DetectsSingleBitFlip(t *testing.T) {
	f := func(data []byte, pos uint16, bit uint8) bool {
		if len(data) == 0 {
			return true
		}
		orig := CRC16(data)
		i := int(pos) % len(data)
		mut := make([]byte, len(data))
		copy(mut, data)
		mut[i] ^= 1 << (bit % 8)
		return CRC16(mut) != orig
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCRC16DetectsBurstErrors(t *testing.T) {
	// CRC-16 catches all burst errors up to 16 bits.
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i * 7)
	}
	orig := CRC16(data)
	for start := 0; start < 63; start++ {
		mut := make([]byte, len(data))
		copy(mut, data)
		mut[start] ^= 0xFF
		mut[start+1] ^= 0xFF
		if CRC16(mut) == orig {
			t.Fatalf("16-bit burst at %d undetected", start)
		}
	}
}
