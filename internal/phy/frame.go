package phy

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Frame layout (bytes, before line coding):
//
//	header (7)  = version/type, seq, payloadLen (2), rateID, chunkSize, crc8
//	chunks      = payload split into chunkSize-byte chunks, each followed
//	              by a CRC-8 seeded with (seq, chunk index)
//	trailer (2) = CRC-16 over header+chunks
//
// The per-chunk CRCs are what make instantaneous feedback possible: the
// tag validates each chunk the moment its last chip arrives and
// backscatters ACK/NACK without waiting for the frame to end.

// FrameType distinguishes frame roles on the forward link.
type FrameType uint8

// Frame types.
const (
	FrameData FrameType = iota + 1
	FrameProbe
	FrameControl
)

// String returns the frame type name.
func (t FrameType) String() string {
	switch t {
	case FrameData:
		return "data"
	case FrameProbe:
		return "probe"
	case FrameControl:
		return "control"
	default:
		return fmt.Sprintf("FrameType(%d)", uint8(t))
	}
}

// ProtocolVersion is the current frame format version.
const ProtocolVersion = 1

// HeaderSize is the encoded header length in bytes, including its CRC-8.
const HeaderSize = 7

// FrameTrailerSize is the frame CRC-16 length in bytes.
const FrameTrailerSize = 2

// MaxPayload is the largest payload a single frame can carry.
const MaxPayload = 0xFFFF

// Header is the forward-link frame header.
type Header struct {
	Version    uint8
	Type       FrameType
	Seq        uint8
	PayloadLen uint16
	Rate       uint8
	// ChunkSize is the payload bytes per chunk; 0 means the whole
	// payload is one chunk.
	ChunkSize uint8
}

// Errors returned by frame parsing.
var (
	ErrShortFrame  = errors.New("phy: frame truncated")
	ErrHeaderCRC   = errors.New("phy: header CRC mismatch")
	ErrBadVersion  = errors.New("phy: unsupported frame version")
	ErrPayloadSize = errors.New("phy: payload exceeds MaxPayload")
)

// AppendBinary encodes the header (with CRC-8) appending to dst.
func (h Header) AppendBinary(dst []byte) []byte {
	start := len(dst)
	dst = append(dst, h.Version<<4|uint8(h.Type)&0x0F, h.Seq)
	dst = binary.BigEndian.AppendUint16(dst, h.PayloadLen)
	dst = append(dst, h.Rate, h.ChunkSize)
	dst = append(dst, CRC8(dst[start:]))
	return dst
}

// ParseHeader decodes and validates a header from the first HeaderSize
// bytes of b.
func ParseHeader(b []byte) (Header, error) {
	if len(b) < HeaderSize {
		return Header{}, ErrShortFrame
	}
	if CRC8(b[:HeaderSize-1]) != b[HeaderSize-1] {
		return Header{}, ErrHeaderCRC
	}
	h := Header{
		Version:    b[0] >> 4,
		Type:       FrameType(b[0] & 0x0F),
		Seq:        b[1],
		PayloadLen: binary.BigEndian.Uint16(b[2:4]),
		Rate:       b[4],
		ChunkSize:  b[5],
	}
	if h.Version != ProtocolVersion {
		return Header{}, ErrBadVersion
	}
	return h, nil
}

// EffectiveChunkSize resolves ChunkSize == 0 to "whole payload".
func (h Header) EffectiveChunkSize() int {
	if h.ChunkSize == 0 {
		if h.PayloadLen == 0 {
			return 1
		}
		return int(h.PayloadLen)
	}
	return int(h.ChunkSize)
}

// NumChunks returns the number of payload chunks in the frame.
func (h Header) NumChunks() int {
	if h.PayloadLen == 0 {
		return 0
	}
	cs := h.EffectiveChunkSize()
	return (int(h.PayloadLen) + cs - 1) / cs
}

// WireSize returns the total encoded frame length in bytes.
func (h Header) WireSize() int {
	return HeaderSize + int(h.PayloadLen) + h.NumChunks() + FrameTrailerSize
}

// ChunkCRC computes the per-chunk CRC-8, bound to the frame sequence
// number and chunk index so a stale retransmission cannot validate.
func ChunkCRC(seq uint8, idx int, chunk []byte) byte {
	c := UpdateCRC8(0, []byte{seq, byte(idx)})
	return UpdateCRC8(c, chunk)
}

// BuildFrame encodes a complete frame appending to dst and returning it.
// The header's PayloadLen is forced to len(payload).
func BuildFrame(h Header, payload []byte, dst []byte) ([]byte, error) {
	if len(payload) > MaxPayload {
		return dst, ErrPayloadSize
	}
	if h.Version == 0 {
		h.Version = ProtocolVersion
	}
	h.PayloadLen = uint16(len(payload))
	start := len(dst)
	dst = h.AppendBinary(dst)
	cs := h.EffectiveChunkSize()
	for idx, off := 0, 0; off < len(payload); idx, off = idx+1, off+cs {
		end := off + cs
		if end > len(payload) {
			end = len(payload)
		}
		chunk := payload[off:end]
		dst = append(dst, chunk...)
		dst = append(dst, ChunkCRC(h.Seq, idx, chunk))
	}
	crc := CRC16(dst[start:])
	dst = binary.BigEndian.AppendUint16(dst, crc)
	return dst, nil
}

// ParsedFrame is the result of decoding a (possibly corrupted) frame.
// Chunk integrity is reported per chunk so the caller can count exactly
// which chunks survived — the information the feedback channel carries.
type ParsedFrame struct {
	Header  Header
	Payload []byte
	// ChunkOK[i] reports whether chunk i passed its CRC.
	ChunkOK []bool
	// FrameOK reports whether the trailing CRC-16 validated.
	FrameOK bool
}

// AllChunksOK reports whether every chunk CRC passed.
func (p *ParsedFrame) AllChunksOK() bool {
	for _, ok := range p.ChunkOK {
		if !ok {
			return false
		}
	}
	return true
}

// BadChunks returns the indices of chunks whose CRC failed.
func (p *ParsedFrame) BadChunks() []int {
	var out []int
	for i, ok := range p.ChunkOK {
		if !ok {
			out = append(out, i)
		}
	}
	return out
}

// ParseFrame decodes a frame from b. A header CRC failure aborts with an
// error (nothing downstream is trustworthy); chunk and frame CRC failures
// are reported in the result rather than as errors, because a real
// receiver still learns which chunks were good.
func ParseFrame(b []byte) (*ParsedFrame, error) {
	h, err := ParseHeader(b)
	if err != nil {
		return nil, err
	}
	if len(b) < h.WireSize() {
		return nil, ErrShortFrame
	}
	p := &ParsedFrame{
		Header:  h,
		Payload: make([]byte, 0, h.PayloadLen),
		ChunkOK: make([]bool, h.NumChunks()),
	}
	cs := h.EffectiveChunkSize()
	off := HeaderSize
	for idx := 0; idx < h.NumChunks(); idx++ {
		n := cs
		remaining := int(h.PayloadLen) - idx*cs
		if remaining < n {
			n = remaining
		}
		chunk := b[off : off+n]
		crc := b[off+n]
		p.ChunkOK[idx] = ChunkCRC(h.Seq, idx, chunk) == crc
		p.Payload = append(p.Payload, chunk...)
		off += n + 1
	}
	wire := h.WireSize()
	want := binary.BigEndian.Uint16(b[wire-FrameTrailerSize : wire])
	p.FrameOK = CRC16(b[:wire-FrameTrailerSize]) == want
	return p, nil
}

// ChunkPayloadRange returns the [start, end) byte range of chunk idx
// within the payload. It panics if idx is out of range.
func (h Header) ChunkPayloadRange(idx int) (int, int) {
	if idx < 0 || idx >= h.NumChunks() {
		panic(fmt.Sprintf("phy: chunk index %d out of range [0,%d)", idx, h.NumChunks()))
	}
	cs := h.EffectiveChunkSize()
	start := idx * cs
	end := start + cs
	if end > int(h.PayloadLen) {
		end = int(h.PayloadLen)
	}
	return start, end
}

// ChunkWireRange returns the [start, end) byte range of chunk idx
// (including its CRC byte) within the encoded frame. It panics if idx is
// out of range.
func (h Header) ChunkWireRange(idx int) (int, int) {
	s, e := h.ChunkPayloadRange(idx)
	// Each preceding chunk contributed one CRC byte.
	start := HeaderSize + s + idx
	end := HeaderSize + e + idx + 1
	return start, end
}
