package phy

import (
	"repro/internal/sigproc"
)

// Preamble chips: an alternating warm-up that trains the tag's threshold
// tracker, followed by a 13-chip Barker sequence whose sharp
// autocorrelation pins down the frame start to one sample.
var (
	// barker13 is the length-13 Barker code.
	barker13 = []byte{1, 1, 1, 1, 1, 0, 0, 1, 1, 0, 1, 0, 1}
)

// DefaultPreambleChips returns the standard preamble chip sequence:
// warmup alternating chips followed by the Barker-13 sync word.
func DefaultPreambleChips(warmupChips int) []byte {
	if warmupChips < 0 {
		warmupChips = 0
	}
	out := make([]byte, 0, warmupChips+len(barker13))
	for i := 0; i < warmupChips; i++ {
		out = append(out, byte((i+1)%2)) // ...1,0,1,0 ending on 0 before barker
	}
	return append(out, barker13...)
}

// SyncWordChips returns a copy of the Barker-13 sync chips.
func SyncWordChips() []byte {
	out := make([]byte, len(barker13))
	copy(out, barker13)
	return out
}

// PreambleTemplate renders the expected envelope waveform of the given
// preamble chips under the modem o, for correlation against a received
// envelope.
func PreambleTemplate(o OOK, chips []byte) []float64 {
	hi, lo := o.LevelHigh(), o.LevelLow()
	n := o.SamplesPerChipN()
	out := make([]float64, 0, len(chips)*n)
	for _, c := range chips {
		v := lo
		if c&1 == 1 {
			v = hi
		}
		for i := 0; i < n; i++ {
			out = append(out, v)
		}
	}
	return out
}

// SyncResult reports a preamble detection.
type SyncResult struct {
	// Start is the sample index of the first payload sample (immediately
	// after the preamble).
	Start int
	// PeakIndex is the sample index where the template matched.
	PeakIndex int
	// Corr is the normalised correlation at the peak, in [-1, 1].
	Corr float64
}

// PreambleDetector is a reusable preamble correlator: the template's
// normalised-correlation state is precomputed once and the correlation
// scratch is reused across calls, so per-frame detection does not
// allocate. One detector per receiver; not safe for concurrent use.
type PreambleDetector struct {
	tpl  []float64
	m    *sigproc.Matcher
	corr []float64
}

// NewPreambleDetector returns a detector for the given template
// envelope (see PreambleTemplate). The template slice is retained.
func NewPreambleDetector(template []float64) *PreambleDetector {
	return &PreambleDetector{tpl: template, m: sigproc.NewMatcher(template)}
}

// Template returns the template envelope the detector was built with.
func (d *PreambleDetector) Template() []float64 { return d.tpl }

// Detect searches a received envelope for the preamble template using
// normalised cross-correlation (amplitude-invariant, so it works at any
// channel gain). minCorr sets the detection threshold; 0.7 is a
// sensible default. The second return value reports whether a peak
// exceeding minCorr was found.
func (d *PreambleDetector) Detect(env []float64, minCorr float64) (SyncResult, bool) {
	if len(d.tpl) == 0 || len(env) < len(d.tpl) {
		return SyncResult{}, false
	}
	d.corr = d.m.Correlate(env, d.corr[:0])
	peak := sigproc.PeakIndex(d.corr)
	if peak < 0 || d.corr[peak] < minCorr {
		return SyncResult{}, false
	}
	return SyncResult{
		Start:     peak + len(d.tpl),
		PeakIndex: peak,
		Corr:      d.corr[peak],
	}, true
}

// DetectPreamble is the one-shot form of PreambleDetector.Detect; it
// re-derives the template state (and allocates) on every call, so
// per-frame receivers should hold a detector instead.
func DetectPreamble(env, template []float64, minCorr float64) (SyncResult, bool) {
	return NewPreambleDetector(template).Detect(env, minCorr)
}

// EstimateChannelAmp estimates the channel amplitude gain from the
// preamble portion of a received envelope, given the known transmitted
// template. It uses the ratio of mean received to mean transmitted
// envelope, which is unbiased for any chip mix.
func EstimateChannelAmp(env, template []float64, peakIndex int) float64 {
	if peakIndex < 0 || peakIndex+len(template) > len(env) || len(template) == 0 {
		return 0
	}
	rx := sigproc.MeanFloat(env[peakIndex : peakIndex+len(template)])
	tx := sigproc.MeanFloat(template)
	if tx == 0 {
		return 0
	}
	return rx / tx
}
