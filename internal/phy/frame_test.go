package phy

import (
	"bytes"
	"testing"
	"testing/quick"
)

func testHeader(payloadLen int, chunkSize uint8) Header {
	return Header{
		Version:    ProtocolVersion,
		Type:       FrameData,
		Seq:        7,
		PayloadLen: uint16(payloadLen),
		Rate:       2,
		ChunkSize:  chunkSize,
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := testHeader(1500, 64)
	enc := h.AppendBinary(nil)
	if len(enc) != HeaderSize {
		t.Fatalf("encoded header = %d bytes", len(enc))
	}
	got, err := ParseHeader(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip: %+v != %+v", got, h)
	}
}

func TestHeaderCRCRejectsCorruption(t *testing.T) {
	enc := testHeader(100, 10).AppendBinary(nil)
	enc[2] ^= 0x01
	if _, err := ParseHeader(enc); err != ErrHeaderCRC {
		t.Fatalf("err = %v, want ErrHeaderCRC", err)
	}
}

func TestHeaderShort(t *testing.T) {
	if _, err := ParseHeader([]byte{1, 2}); err != ErrShortFrame {
		t.Fatalf("err = %v", err)
	}
}

func TestHeaderBadVersion(t *testing.T) {
	h := testHeader(10, 5)
	h.Version = 9
	enc := h.AppendBinary(nil)
	if _, err := ParseHeader(enc); err != ErrBadVersion {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestNumChunks(t *testing.T) {
	cases := []struct {
		payload int
		cs      uint8
		want    int
	}{
		{0, 16, 0},
		{1, 16, 1},
		{16, 16, 1},
		{17, 16, 2},
		{1500, 64, 24},
		{100, 0, 1}, // 0 = whole payload
	}
	for _, c := range cases {
		h := testHeader(c.payload, c.cs)
		if got := h.NumChunks(); got != c.want {
			t.Fatalf("NumChunks(%d, %d) = %d, want %d", c.payload, c.cs, got, c.want)
		}
	}
}

func TestBuildParseFrameClean(t *testing.T) {
	payload := []byte("the quick brown fox jumps over the lazy dog")
	h := testHeader(len(payload), 8)
	wire, err := BuildFrame(h, payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != h.WireSize() {
		t.Fatalf("wire size %d, want %d", len(wire), h.WireSize())
	}
	p, err := ParseFrame(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p.Payload, payload) {
		t.Fatal("payload mismatch")
	}
	if !p.FrameOK || !p.AllChunksOK() {
		t.Fatal("clean frame must validate")
	}
	if len(p.BadChunks()) != 0 {
		t.Fatal("clean frame has bad chunks")
	}
}

func TestParseFrameLocalisesCorruption(t *testing.T) {
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i)
	}
	h := testHeader(len(payload), 16) // 4 chunks
	wire, _ := BuildFrame(h, payload, nil)
	// Corrupt one byte inside chunk 2.
	s, _ := h.ChunkWireRange(2)
	wire[s+3] ^= 0xFF
	p, err := ParseFrame(wire)
	if err != nil {
		t.Fatal(err)
	}
	bad := p.BadChunks()
	if len(bad) != 1 || bad[0] != 2 {
		t.Fatalf("bad chunks = %v, want [2]", bad)
	}
	if p.FrameOK {
		t.Fatal("frame CRC must fail when a chunk is corrupted")
	}
	// Other chunks' data still delivered intact.
	if !bytes.Equal(p.Payload[:32], payload[:32]) {
		t.Fatal("good chunk data corrupted in parse")
	}
}

func TestChunkCRCBoundToSeqAndIndex(t *testing.T) {
	chunk := []byte{1, 2, 3}
	a := ChunkCRC(1, 0, chunk)
	b := ChunkCRC(2, 0, chunk)
	c := ChunkCRC(1, 1, chunk)
	if a == b || a == c {
		t.Fatal("chunk CRC must depend on sequence number and chunk index")
	}
}

func TestParseFrameShort(t *testing.T) {
	payload := []byte("hello world, this is a frame")
	h := testHeader(len(payload), 8)
	wire, _ := BuildFrame(h, payload, nil)
	if _, err := ParseFrame(wire[:len(wire)-3]); err != ErrShortFrame {
		t.Fatalf("err = %v, want ErrShortFrame", err)
	}
}

func TestBuildFrameRejectsOversizedPayload(t *testing.T) {
	if _, err := BuildFrame(Header{}, make([]byte, MaxPayload+1), nil); err != ErrPayloadSize {
		t.Fatalf("err = %v", err)
	}
}

func TestBuildFrameDefaultsVersion(t *testing.T) {
	wire, err := BuildFrame(Header{Type: FrameData, ChunkSize: 4}, []byte("abcd"), nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ParseFrame(wire)
	if err != nil {
		t.Fatal(err)
	}
	if p.Header.Version != ProtocolVersion {
		t.Fatal("BuildFrame must default the version")
	}
}

func TestEmptyPayloadFrame(t *testing.T) {
	h := testHeader(0, 16)
	wire, err := BuildFrame(h, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ParseFrame(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Payload) != 0 || !p.FrameOK || len(p.ChunkOK) != 0 {
		t.Fatalf("empty frame parse: %+v", p)
	}
}

func TestChunkRanges(t *testing.T) {
	h := testHeader(20, 8) // chunks: 8, 8, 4
	s0, e0 := h.ChunkPayloadRange(0)
	s2, e2 := h.ChunkPayloadRange(2)
	if s0 != 0 || e0 != 8 || s2 != 16 || e2 != 20 {
		t.Fatalf("payload ranges wrong: (%d,%d) (%d,%d)", s0, e0, s2, e2)
	}
	ws, we := h.ChunkWireRange(0)
	if ws != HeaderSize || we != HeaderSize+9 {
		t.Fatalf("wire range 0 = (%d,%d)", ws, we)
	}
	ws2, we2 := h.ChunkWireRange(2)
	if ws2 != HeaderSize+16+2 || we2 != HeaderSize+20+3 {
		t.Fatalf("wire range 2 = (%d,%d)", ws2, we2)
	}
}

func TestChunkRangePanics(t *testing.T) {
	h := testHeader(20, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.ChunkPayloadRange(3)
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(payload []byte, csRaw, seq uint8) bool {
		if len(payload) > 2048 {
			payload = payload[:2048]
		}
		cs := csRaw // 0 is legal (single chunk)
		h := Header{Type: FrameData, Seq: seq, ChunkSize: cs}
		wire, err := BuildFrame(h, payload, nil)
		if err != nil {
			return false
		}
		p, err := ParseFrame(wire)
		if err != nil {
			return false
		}
		return bytes.Equal(p.Payload, payload) && p.FrameOK && p.AllChunksOK()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: corrupting any single payload byte flags exactly the chunk
// containing it.
func TestCorruptionLocalisationProperty(t *testing.T) {
	f := func(seed uint16, posRaw uint16) bool {
		payload := make([]byte, 200)
		for i := range payload {
			payload[i] = byte(int(seed) + i)
		}
		h := testHeader(len(payload), 25) // 8 chunks
		wire, _ := BuildFrame(h, payload, nil)
		pos := int(posRaw) % len(payload)
		chunkIdx := pos / 25
		ws, _ := h.ChunkWireRange(chunkIdx)
		wire[ws+pos%25] ^= 0x55
		p, err := ParseFrame(wire)
		if err != nil {
			return false
		}
		bad := p.BadChunks()
		return len(bad) == 1 && bad[0] == chunkIdx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrameTypeString(t *testing.T) {
	if FrameData.String() != "data" || FrameProbe.String() != "probe" ||
		FrameControl.String() != "control" || FrameType(9).String() == "" {
		t.Fatal("FrameType.String broken")
	}
}

func TestWireSizeFormula(t *testing.T) {
	h := testHeader(100, 30) // 4 chunks
	want := HeaderSize + 100 + 4 + FrameTrailerSize
	if h.WireSize() != want {
		t.Fatalf("WireSize = %d, want %d", h.WireSize(), want)
	}
}
