package phy

import (
	"fmt"

	"repro/internal/sigproc"
)

// OOK is the forward-link on-off-keying modem. Unlike textbook OOK, the
// "off" chip does not fully extinguish the carrier: the reader keeps
// (1-Depth) of the amplitude flowing so the tag stays powered and the
// backscatter feedback channel has a carrier to reflect during every
// chip — the same trick RFID readers' PIE encoding uses.
//
// The zero value modulates at 4 samples/chip, depth 0.75, amplitude 1.
type OOK struct {
	// SamplesPerChip sets the chip oversampling factor (default 4).
	SamplesPerChip int
	// Depth in (0, 1] is the modulation depth: low chips have amplitude
	// Amplitude*(1-Depth). Default 0.75.
	Depth float64
	// Amplitude is the high-chip amplitude (default 1).
	Amplitude float64
}

func (o OOK) sps() int {
	if o.SamplesPerChip <= 0 {
		return 4
	}
	return o.SamplesPerChip
}

func (o OOK) depth() float64 {
	if o.Depth <= 0 || o.Depth > 1 {
		return 0.75
	}
	return o.Depth
}

func (o OOK) amp() float64 {
	if o.Amplitude <= 0 {
		return 1
	}
	return o.Amplitude
}

// LevelHigh returns the amplitude of a high chip.
func (o OOK) LevelHigh() float64 { return o.amp() }

// LevelLow returns the amplitude of a low chip.
func (o OOK) LevelLow() float64 { return o.amp() * (1 - o.depth()) }

// MeanPower returns the average transmit power assuming balanced chips.
func (o OOK) MeanPower() float64 {
	h, l := o.LevelHigh(), o.LevelLow()
	return (h*h + l*l) / 2
}

// SamplesPerChipN returns the effective oversampling factor.
func (o OOK) SamplesPerChipN() int { return o.sps() }

// AppendChips appends the baseband waveform for the given chips to dst
// and returns it. Chips are 0/1 values, one per byte.
func (o OOK) AppendChips(dst sigproc.IQ, chips []byte) sigproc.IQ {
	hi := complex(o.LevelHigh(), 0)
	lo := complex(o.LevelLow(), 0)
	n := o.sps()
	for _, c := range chips {
		v := lo
		if c&1 == 1 {
			v = hi
		}
		for i := 0; i < n; i++ {
			dst = append(dst, v)
		}
	}
	return dst
}

// AppendIdle appends nChips of unmodulated carrier at the high level,
// used for inter-frame gaps where the reader still powers the tag.
func (o OOK) AppendIdle(dst sigproc.IQ, nChips int) sigproc.IQ {
	hi := complex(o.LevelHigh(), 0)
	for i := 0; i < nChips*o.sps(); i++ {
		dst = append(dst, hi)
	}
	return dst
}

// NumSamples returns the waveform length for nChips chips.
func (o OOK) NumSamples(nChips int) int { return nChips * o.sps() }

// ChipLevels averages an envelope sample stream into per-chip levels,
// appending to dst and returning it. Trailing samples that do not fill a
// chip are ignored. The offset argument skips samples before the first
// chip boundary (from preamble sync).
func (o OOK) ChipLevels(env []float64, offset int, dst []float64) []float64 {
	return o.ChipLevelsGuard(env, offset, 0, dst)
}

// ChipLevelsGuard is ChipLevels with a guard interval: the first
// guard fraction (in [0, 0.5)) of each chip's samples is skipped before
// averaging. Receivers whose envelope detector has a slow RC use the
// guard to avoid the inter-chip transition smear.
func (o OOK) ChipLevelsGuard(env []float64, offset int, guard float64, dst []float64) []float64 {
	n := o.sps()
	if offset < 0 {
		offset = 0
	}
	skip := 0
	if guard > 0 {
		if guard >= 0.5 {
			guard = 0.5
		}
		skip = int(guard * float64(n))
		if skip >= n {
			skip = n - 1
		}
	}
	for i := offset; i+n <= len(env); i += n {
		var s float64
		for _, v := range env[i+skip : i+n] {
			s += v
		}
		dst = append(dst, s/float64(n-skip))
	}
	return dst
}

// SliceThreshold returns the decision threshold midway between the two
// chip levels, scaled by the given channel amplitude gain.
func (o OOK) SliceThreshold(channelAmp float64) float64 {
	return (o.LevelHigh() + o.LevelLow()) / 2 * channelAmp
}

// String describes the modem configuration.
func (o OOK) String() string {
	return fmt.Sprintf("ook(sps=%d depth=%.2f amp=%.2f)", o.sps(), o.depth(), o.amp())
}

// Rate describes one entry of the forward-link rate table: a line code
// plus a chip oversampling factor. Lower SamplesPerChip means more chips
// (hence bits) per second at the same sample rate, at the cost of less
// energy per chip.
type Rate struct {
	ID             uint8
	Name           string
	SamplesPerChip int
	Code           string // line code name, see CodeByName
}

// DefaultRates is the simulator's standard 4-entry rate table, ordered
// slowest (most robust) to fastest.
var DefaultRates = []Rate{
	{ID: 0, Name: "0.25x", SamplesPerChip: 16, Code: "fm0"},
	{ID: 1, Name: "0.5x", SamplesPerChip: 8, Code: "fm0"},
	{ID: 2, Name: "1x", SamplesPerChip: 4, Code: "fm0"},
	{ID: 3, Name: "2x", SamplesPerChip: 2, Code: "fm0"},
}

// RateByID looks up a rate in a table by ID.
func RateByID(table []Rate, id uint8) (Rate, error) {
	for _, r := range table {
		if r.ID == id {
			return r, nil
		}
	}
	return Rate{}, fmt.Errorf("phy: unknown rate id %d", id)
}

// BitsPerSecond returns the data rate of r at the given sample rate,
// accounting for the line code chip expansion.
func (r Rate) BitsPerSecond(sampleRate float64) float64 {
	code, err := CodeByName(r.Code)
	if err != nil {
		return 0
	}
	chipRate := sampleRate / float64(r.SamplesPerChip)
	return chipRate / float64(code.ChipsPerBit())
}
