package netsvc

import (
	"testing"
	"time"
)

// Runs builds the GET /runs listing by harvesting and sorting the
// registry map's keys (the fdlint orderedrange contract): the listing
// must come back strictly ascending by run ID and byte-identical
// across calls, however the IDs were inserted. Ranging the map into
// the output would make both assertions flaky — Go randomizes map
// iteration per range statement.
func TestRunsListingSortedAndStable(t *testing.T) {
	s := New(Config{})
	// Insert in a scrambled order: a multiplicative stride mod 29 visits
	// 1..28 in a fixed but thoroughly shuffled sequence.
	for i := 1; i < 29; i++ {
		id := uint64(i*17%29 + 1)
		s.runs[id] = &runInfo{
			id: id, name: "scramble", seed: id,
			maxRounds: 100, started: time.Now(),
		}
	}
	first := s.Runs()
	if len(first) != 28 {
		t.Fatalf("listing has %d entries, want 28", len(first))
	}
	for i := 1; i < len(first); i++ {
		if first[i].ID <= first[i-1].ID {
			t.Fatalf("listing out of order: id %d at %d after id %d", first[i].ID, i, first[i-1].ID)
		}
	}
	for trial := 0; trial < 20; trial++ {
		again := s.Runs()
		for i := range first {
			if again[i].ID != first[i].ID {
				t.Fatalf("listing order unstable at %d: %d != %d (map iteration order leaking)",
					i, again[i].ID, first[i].ID)
			}
		}
	}
}
