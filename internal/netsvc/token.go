package netsvc

// Resume tokens. The engine's state after k rounds is a pure function
// of (Scenario, seed, k) — including every inline per-tag RNG column —
// so the token serializes exactly that triple and nothing else: the
// client's pre-defaults scenario declaration, the run seed, and the
// round cursor. The server is stateless across resumes (a token minted
// by one process replays on another), and the replayed stream's bytes
// match the uninterrupted stream's tail by the purity contract.

import (
	"encoding/base64"
	"encoding/json"
	"fmt"

	"repro/internal/netsim"
)

// resumeTokenVersion guards the token schema; bump when the wire shape
// of resumeToken or the stream changes incompatibly.
const resumeTokenVersion = 1

// resumeToken is the wire form of a resume cursor.
type resumeToken struct {
	V int `json:"v"`
	// Scenario is the client's declaration BEFORE defaults: embedding
	// the pre-defaults form lets the replay walk the exact same
	// ApplyDefaults path (defaults are not idempotent — an explicit-zero
	// sentinel like ReqSNRZero resolves to a literal 0 that re-applying
	// defaults would turn back into the default).
	Scenario netsim.Scenario `json:"scenario"`
	Seed     uint64          `json:"seed"`
	// Round is the 1-based round the resumed stream emits first.
	Round int `json:"round"`
}

// encodeResumeToken renders a token as URL-safe base64 JSON.
func encodeResumeToken(t resumeToken) string {
	b, err := json.Marshal(t)
	if err != nil {
		// A Scenario is plain data; marshaling cannot fail.
		panic(fmt.Sprintf("netsvc: marshal resume token: %v", err))
	}
	return base64.RawURLEncoding.EncodeToString(b)
}

// decodeResumeToken parses and version-checks a client token.
func decodeResumeToken(s string) (resumeToken, error) {
	b, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return resumeToken{}, fmt.Errorf("not base64url: %w", err)
	}
	var t resumeToken
	if err := json.Unmarshal(b, &t); err != nil {
		return resumeToken{}, fmt.Errorf("not a token: %w", err)
	}
	if t.V != resumeTokenVersion {
		return resumeToken{}, fmt.Errorf("token version %d, this server speaks %d", t.V, resumeTokenVersion)
	}
	if t.Round < 1 {
		return resumeToken{}, fmt.Errorf("token round %d out of range", t.Round)
	}
	return t, nil
}
