package netsvc

// Stream encoding: the single place run bytes are produced. Both the
// HTTP handler and the self-test's reference streams go through
// encodeStream, so "the served stream is byte-identical to the
// engine's" is true by construction and the load test only has to
// prove it survives concurrency.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"

	"repro/internal/netsim"
)

// roundLine is one streamed round: the engine snapshot plus a resume
// token that continues the stream from the NEXT round.
type roundLine struct {
	Type string `json:"type"`
	*netsim.RoundSnapshot
	// Resume is a self-contained token: POST /runs?resume=<token>
	// streams the remaining rounds byte-identically to this stream's
	// tail.
	Resume string `json:"resume"`
}

// resultLine closes every completed stream with the run's aggregates —
// the fdnet -summary numbers in machine-readable form.
type resultLine struct {
	Type              string  `json:"type"`
	Name              string  `json:"name"`
	Seed              uint64  `json:"seed"`
	Rounds            int     `json:"rounds"`
	FramesOffered     int64   `json:"frames_offered"`
	FramesDelivered   int64   `json:"frames_delivered"`
	FramesDropped     int64   `json:"frames_dropped"`
	Delivery          float64 `json:"delivery"`
	Throughput        float64 `json:"throughput"`
	GoodputBytes      int64   `json:"goodput_bytes"`
	ElapsedBytes      int64   `json:"elapsed_bytes"`
	SimulatedS        float64 `json:"simulated_s"`
	CollisionFraction float64 `json:"collision_fraction"`
	Fairness          float64 `json:"fairness"`
	AliveFraction     float64 `json:"alive_fraction"`
	MeanRateMult      float64 `json:"mean_rate_mult,omitempty"`
	RateSwitches      int64   `json:"rate_switches,omitempty"`
}

// errorLine closes an aborted stream. Mid-run cancellation (server
// shutdown, run eviction) would otherwise truncate the stream silently
// — the status line is long gone, so a terminal typed line is the only
// way to tell a parser "this run did not finish" while keeping the
// stream pure NDJSON. Client disconnects get one too, best-effort: the
// write just fails with the connection already down.
type errorLine struct {
	Type  string `json:"type"`
	Error string `json:"error"`
	// Round is the last round the stream completed before the abort.
	Round int `json:"round"`
}

// lineWriter frames marshaled JSON values as NDJSON lines or SSE
// events and flushes after each one, so clients see rounds live.
type lineWriter struct {
	w     io.Writer
	flush func()
	sse   bool
}

func newLineWriter(w io.Writer, sse bool) *lineWriter {
	lw := &lineWriter{w: w, flush: func() {}, sse: sse}
	if f, ok := w.(http.Flusher); ok {
		lw.flush = f.Flush
	}
	return lw
}

// writeLine emits one value. event names the SSE event type and is
// ignored in NDJSON framing.
func (lw *lineWriter) writeLine(event string, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if lw.sse {
		if _, err := lw.w.Write([]byte("event: " + event + "\ndata: ")); err != nil {
			return err
		}
		b = append(b, '\n', '\n')
	} else {
		b = append(b, '\n')
	}
	if _, err := lw.w.Write(b); err != nil {
		return err
	}
	lw.flush()
	return nil
}

// encodeStream runs the scenario and writes the full stream — one line
// per round, then the result line — to lw. sc must be the defaulted,
// validated scenario; orig is the client's pre-defaults declaration,
// embedded in resume tokens so replaying one walks the exact same
// defaulting path. progress (optional) observes each streamed round.
func encodeStream(ctx context.Context, sc, orig netsim.Scenario, seed uint64, opts netsim.StreamOptions, lw *lineWriter, progress func(round int)) (*netsim.NetResult, error) {
	line := roundLine{Type: "round"}
	res, err := netsim.RunStreamOptions(ctx, sc, seed, opts, func(snap *netsim.RoundSnapshot) error {
		line.RoundSnapshot = snap
		line.Resume = encodeResumeToken(resumeToken{
			V: resumeTokenVersion, Scenario: orig, Seed: seed, Round: snap.Round + 1,
		})
		if progress != nil {
			progress(snap.Round)
		}
		return lw.writeLine("round", &line)
	})
	if err != nil {
		return nil, err
	}
	return res, lw.writeLine("result", &resultLine{
		Type: "result", Name: res.Scenario.Name, Seed: res.Seed, Rounds: res.Rounds,
		FramesOffered: res.FramesOffered, FramesDelivered: res.FramesDelivered,
		FramesDropped: res.FramesDropped, Delivery: res.DeliveryRate(),
		Throughput: res.Throughput(), GoodputBytes: res.GoodputBytes,
		ElapsedBytes: res.ElapsedBytes, SimulatedS: res.SimulatedS,
		CollisionFraction: res.CollisionFraction(), Fairness: res.FairnessIndex(),
		AliveFraction: res.AliveFraction(), MeanRateMult: res.MeanRateMult(),
		RateSwitches: res.RateSwitches,
	})
}

// ReferenceStream renders the complete stream for (scenario JSON,
// seed) into w without HTTP — the byte-exact oracle the load self-test
// compares served streams against. scenarioJSON walks the same
// ParseScenario / ApplyDefaults / Validate path as a request body.
func (s *Server) ReferenceStream(scenarioJSON []byte, seed uint64, w io.Writer) (*netsim.NetResult, error) {
	orig, err := netsim.ParseScenario(scenarioJSON)
	if err != nil {
		return nil, err
	}
	sc := orig
	sc.ApplyDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return encodeStream(context.Background(), sc, orig, seed,
		netsim.StreamOptions{Workers: s.cfg.Workers}, newLineWriter(w, false), nil)
}
