package netsvc

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/netsim"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func presetJSON(t *testing.T, name string) []byte {
	t.Helper()
	sc, err := netsim.Preset(name)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestMalformedScenarioRejected: bad requests get a 400 whose JSON body
// carries the engine's own Validate/parse error text.
func TestMalformedScenarioRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		name, body, wantErr string
	}{
		{"not json", "{nope", "scenario"},
		{"unknown field", `{"tags": 4, "bogus_knob": 1}`, "bogus_knob"},
		{"bad topology", `{"tags": 4, "topology": "dodecahedron"}`, "topology"},
		{"bad rho", `{"tags": 4, "rho": 2.5}`, "rho"},
		{"empty body", "", "empty request"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/runs", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400; body %s", resp.StatusCode, body)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(body, &e); err != nil {
				t.Fatalf("400 body is not JSON: %s", body)
			}
			if !strings.Contains(e.Error, tc.wantErr) {
				t.Errorf("error %q does not mention %q", e.Error, tc.wantErr)
			}
		})
	}
}

// TestTagCapRejected: a scenario above MaxTags gets 413 before any
// engine is admitted.
func TestTagCapRejected(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxTags: 100})
	resp, err := http.Post(ts.URL+"/runs", "application/json", strings.NewReader(`{"tags": 101}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	if n := s.ActiveRuns(); n != 0 {
		t.Errorf("ActiveRuns = %d after a 413", n)
	}
}

// holdRun starts a run that cannot finish on its own (huge open-loop
// round budget, body never read) and returns its response plus a stop
// function. One line is read to prove the run was admitted.
func holdRun(t *testing.T, ts *httptest.Server) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/runs",
		strings.NewReader(`{"name": "hold", "tags": 8, "offered_load": 0.5, "max_rounds": 1000000}`))
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		cancel()
		t.Fatalf("hold run got status %d", resp.StatusCode)
	}
	if _, err := bufio.NewReader(resp.Body).ReadBytes('\n'); err != nil {
		cancel()
		t.Fatalf("hold run: no first line: %v", err)
	}
	return func() {
		resp.Body.Close()
		cancel()
	}
}

func waitDrained(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for s.ActiveRuns() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d runs still active after 10s", s.ActiveRuns())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestAdmissionControl: with the single engine slot held, the next
// request is rejected 429 + Retry-After; after disconnect the slot
// frees and requests are admitted again.
func TestAdmissionControl(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, RetryAfterS: 7})
	stop := holdRun(t, ts)

	resp, err := http.Post(ts.URL+"/runs?preset=lab-bench", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429; body %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After = %q, want 7", got)
	}

	stop()
	waitDrained(t, s)

	resp, err = http.Post(ts.URL+"/runs?preset=lab-bench", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after the held run disconnected: status %d, want 200", resp.StatusCode)
	}
}

// TestDisconnectCancelsEngine: closing the client connection mid-stream
// tears the engine down — ActiveRuns returns to zero, the counter
// standing in for a goroutine-leak detector.
func TestDisconnectCancelsEngine(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 2})
	stop := holdRun(t, ts)
	if n := s.ActiveRuns(); n != 1 {
		t.Fatalf("ActiveRuns = %d with a held stream, want 1", n)
	}
	if runs := s.Runs(); len(runs) != 1 || runs[0].Name != "hold" {
		t.Fatalf("Runs() = %+v, want the single held run", runs)
	}
	stop()
	waitDrained(t, s)
	if runs := s.Runs(); len(runs) != 0 {
		t.Fatalf("Runs() = %+v after disconnect, want empty", runs)
	}
}

// TestStreamDeterministicAndPureNDJSON is the S6 regression: under a
// sharded engine (workers 8) the response must parse as pure NDJSON —
// every line a JSON object, no run-header or diagnostic interleaving —
// and two identical requests must produce byte-identical streams.
func TestStreamDeterministicAndPureNDJSON(t *testing.T) {
	// A logger that writes eagerly, so any mis-routed diagnostic would
	// race into the response if it shared the stream path.
	var logBuf bytes.Buffer
	_, ts := newTestServer(t, Config{
		Workers: 8,
		Log:     log.New(&logBuf, "fdnetd: ", 0),
	})
	body := presetJSON(t, "fading-aisle")
	get := func() []byte {
		resp, err := http.Post(ts.URL+"/runs?seed=42", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Fatalf("Content-Type = %q", ct)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	one, two := get(), get()
	if !bytes.Equal(one, two) {
		t.Error("two runs of the same (scenario, seed) produced different streams")
	}

	lines := bytes.Split(bytes.TrimSuffix(one, []byte("\n")), []byte("\n"))
	if len(lines) < 2 {
		t.Fatalf("stream has %d lines", len(lines))
	}
	for i, line := range lines {
		if !json.Valid(line) {
			t.Fatalf("line %d is not JSON (stream corrupted): %q", i+1, line)
		}
		var typed struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &typed); err != nil || (typed.Type != "round" && typed.Type != "result") {
			t.Fatalf("line %d has type %q, want round|result", i+1, typed.Type)
		}
	}
	if bytes.Contains(one, []byte("fdnet")) {
		t.Error("stream contains diagnostic text")
	}
	if !bytes.Contains(logBuf.Bytes(), []byte("accepted")) {
		t.Error("request diagnostics did not reach the server logger")
	}
}

// TestResumeRoundTrip: a resume token lifted off a served stream
// replays the remaining rounds byte-identically over HTTP.
func TestResumeRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/runs?preset=warehouse&seed=9", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	full, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("full run: status %d err %v", resp.StatusCode, err)
	}
	lines := bytes.Split(bytes.TrimSuffix(full, []byte("\n")), []byte("\n"))
	if len(lines) < 4 {
		t.Fatalf("run too short: %d lines", len(lines))
	}
	cut := len(lines) / 2
	var mid struct {
		Resume string `json:"resume"`
	}
	if err := json.Unmarshal(lines[cut-1], &mid); err != nil || mid.Resume == "" {
		t.Fatalf("no resume token on line %d: %v", cut, err)
	}

	resp, err = http.Post(ts.URL+"/runs?resume="+mid.Resume, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	tail, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("resume: status %d err %v", resp.StatusCode, err)
	}
	want := append(bytes.Join(lines[cut:], []byte("\n")), '\n')
	if !bytes.Equal(tail, want) {
		t.Fatalf("resumed stream differs from the uninterrupted tail:\ngot  %d bytes\nwant %d bytes", len(tail), len(want))
	}

	// A garbage token is a 400, not a crash.
	resp, err = http.Post(ts.URL+"/runs?resume=zzz-not-a-token", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage token: status %d, want 400", resp.StatusCode)
	}
}

// TestSSEFraming: ?format=sse switches the stream to server-sent
// events with the same JSON payloads.
func TestSSEFraming(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/runs?preset=lab-bench&format=sse", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(body, []byte("event: round\ndata: {")) {
		t.Error("missing round events")
	}
	if !bytes.Contains(body, []byte("event: result\ndata: {")) {
		t.Error("missing result event")
	}
	for _, ev := range bytes.Split(bytes.TrimSuffix(body, []byte("\n\n")), []byte("\n\n")) {
		data := ev[bytes.Index(ev, []byte("\ndata: "))+len("\ndata: "):]
		if !json.Valid(data) {
			t.Fatalf("SSE data is not JSON: %q", data)
		}
	}
}

// TestHealthz: liveness endpoint reports admission state and counters.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 3})
	// One completed run so the counters are non-trivial.
	resp, err := http.Post(ts.URL+"/runs?preset=lab-bench", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Status        string `json:"status"`
		ActiveRuns    int    `json:"active_runs"`
		MaxConcurrent int    `json:"max_concurrent"`
		RunsAccepted  uint64 `json:"runs_accepted"`
		RunsRejected  uint64 `json:"runs_rejected"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.MaxConcurrent != 3 || h.ActiveRuns != 0 || h.RunsAccepted != 1 {
		t.Errorf("healthz = %+v", h)
	}
}

// TestStreamMatchesReference: a served stream equals the reference
// oracle's bytes for the same (scenario, seed) — the single-encoding-
// path contract the load self-test scales up.
func TestStreamMatchesReference(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	body := presetJSON(t, "retail-shelf")
	var ref bytes.Buffer
	if _, err := s.ReferenceStream(body, 3, &ref); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/runs?seed=3", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d err %v", resp.StatusCode, err)
	}
	if !bytes.Equal(got, ref.Bytes()) {
		t.Fatalf("served stream differs from reference (%d vs %d bytes)", len(got), ref.Len())
	}
}

// TestSelfTestSmoke drives the full load harness at reduced scale so
// `go test` exercises the same code path CI runs at 120+ runs.
func TestSelfTestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load harness")
	}
	var out bytes.Buffer
	err := SelfTest(SelfTestConfig{Runs: 24, MaxConcurrent: 3, Seeds: 2}, &out)
	if err != nil {
		t.Fatalf("SelfTest: %v\n%s", err, out.String())
	}
	if !bytes.Contains(out.Bytes(), []byte("PASS")) {
		t.Errorf("no PASS line in output:\n%s", out.String())
	}
}

// TestCancelRuns: the daemon's SIGTERM path ends live streams promptly.
func TestCancelRuns(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 2})
	stop := holdRun(t, ts)
	defer stop()
	s.CancelRuns()
	waitDrained(t, s)
}

// TestCancelledStreamEndsWithErrorLine: server-side cancellation must
// not truncate the NDJSON mid-stream — a client still listening sees a
// terminal {"type":"error",...} line, every line (including the last)
// stays valid JSON, and no result line is forged for the unfinished
// run.
func TestCancelledStreamEndsWithErrorLine(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 2})
	resp, err := http.Post(ts.URL+"/runs",
		"application/json",
		strings.NewReader(`{"name": "cancelme", "tags": 8, "offered_load": 0.5, "max_rounds": 1000000}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	// Let the stream prove it is live before pulling the plug.
	br := bufio.NewReader(resp.Body)
	first, err := br.ReadBytes('\n')
	if err != nil {
		t.Fatalf("no first line: %v", err)
	}
	if !json.Valid(bytes.TrimSuffix(first, []byte("\n"))) {
		t.Fatalf("first line is not JSON: %q", first)
	}
	s.CancelRuns()

	// Drain to EOF: the handler must close the stream with the terminal
	// error line rather than just dropping the connection mid-round.
	rest, err := io.ReadAll(br)
	if err != nil {
		t.Fatalf("reading the cancelled stream: %v", err)
	}
	waitDrained(t, s)

	all := append(first, rest...)
	lines := bytes.Split(bytes.TrimSuffix(all, []byte("\n")), []byte("\n"))
	sawResult := false
	for i, line := range lines {
		if !json.Valid(line) {
			t.Fatalf("line %d of the cancelled stream is not JSON (truncation): %q", i+1, line)
		}
		var typed struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &typed); err != nil {
			t.Fatalf("line %d: %v", i+1, err)
		}
		if typed.Type == "result" {
			sawResult = true
		}
		if (typed.Type == "error") != (i == len(lines)-1) {
			t.Fatalf("line %d/%d has type %q; the error line must be exactly the last line",
				i+1, len(lines), typed.Type)
		}
	}
	if sawResult {
		t.Fatal("cancelled run forged a result line")
	}
	var el struct {
		Type  string `json:"type"`
		Error string `json:"error"`
		Round int    `json:"round"`
	}
	if err := json.Unmarshal(lines[len(lines)-1], &el); err != nil {
		t.Fatal(err)
	}
	if el.Error == "" {
		t.Fatal("terminal error line carries no error text")
	}
	if el.Round < 1 {
		t.Fatalf("terminal error line reports round %d; the stream had completed at least one", el.Round)
	}
}

// TestSeedParsing: bad ?seed= is a 400, and the seed round-trips into
// the result line.
func TestSeedParsing(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/runs?preset=lab-bench&seed=banana", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("seed=banana: status %d, want 400", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/runs?preset=lab-bench&seed=1234", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(body, []byte(fmt.Sprintf(`"seed":%d`, 1234))) {
		t.Error("result line does not echo the requested seed")
	}
}
