package netsvc

// SelfTest is the concurrent load harness behind `fdnetd -selftest`
// (and, at reduced scale, the package tests): it boots a real Server
// over HTTP and proves the three service contracts under load —
// deterministic streams (every served stream byte-identical to the
// engine's reference bytes), bounded admission (429s observed, every
// rejected run eventually served on retry), and exact resume (a token
// taken mid-stream replays the remaining rounds byte-for-byte).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netsim"
	"repro/internal/simrand"
)

// SelfTestConfig dimensions a self-test. Zero fields take defaults.
type SelfTestConfig struct {
	// Runs is the number of concurrent scenario runs to drive through
	// the service (default 200; CI drives >= 100).
	Runs int
	// MaxConcurrent is the admission limit of the server under test
	// (default 8) — far below Runs, so rejection is exercised.
	MaxConcurrent int
	// Workers is the engine worker count per run (default 1).
	Workers int
	// Seeds is the number of distinct seeds per scenario (default 4).
	Seeds int
}

func (c *SelfTestConfig) applyDefaults() {
	if c.Runs <= 0 {
		c.Runs = 200
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 8
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.Seeds <= 0 {
		c.Seeds = 4
	}
}

// selfTestPresets are the scenarios the load phase cycles through:
// small enough to run in milliseconds, diverse enough to cover
// closed-loop, open-loop and multi-reader paths.
var selfTestPresets = []string{"lab-bench", "retail-shelf", "warehouse"}

// holdScenario is the admission-probe scenario: open-loop with a round
// budget so large the stream outlives any socket buffer, so an
// unread-by-design client pins its engine slot until disconnected.
const holdScenario = `{"name": "selftest-hold", "tags": 8, "offered_load": 0.5, "max_rounds": 1000000}`

// SelfTest runs the harness and returns the first contract violation
// (nil means every assertion held). Progress goes to logw.
func SelfTest(cfg SelfTestConfig, logw io.Writer) error {
	cfg.applyDefaults()
	logf := func(format string, args ...any) { fmt.Fprintf(logw, format+"\n", args...) }

	srv := New(Config{
		MaxConcurrent: cfg.MaxConcurrent,
		Workers:       cfg.Workers,
		RetryAfterS:   1,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	// Reference streams: the byte-exact oracle for every (scenario,
	// seed) pair the load phase will request.
	type job struct {
		body []byte
		seed uint64
		key  string
	}
	refs := make(map[string][]byte)
	var jobs []job
	for si, name := range selfTestPresets {
		sc, err := netsim.Preset(name)
		if err != nil {
			return err
		}
		body, err := json.Marshal(sc)
		if err != nil {
			return err
		}
		for s := 0; s < cfg.Seeds; s++ {
			seed := uint64(1 + s)
			var buf bytes.Buffer
			if _, err := srv.ReferenceStream(body, seed, &buf); err != nil {
				return fmt.Errorf("selftest: reference stream %s seed %d: %w", name, seed, err)
			}
			key := fmt.Sprintf("%s/%d", name, seed)
			refs[key] = buf.Bytes()
			jobs = append(jobs, job{body: body, seed: seed, key: key})
			_ = si
		}
	}
	logf("selftest: %d reference streams computed (%d scenarios x %d seeds)",
		len(refs), len(selfTestPresets), cfg.Seeds)

	// Phase 1 — admission probe: pin every engine slot with held
	// streams, then demand a 429 with Retry-After. Deterministic: with
	// all slots provably occupied, rejection is not a race.
	var rejects429 atomic.Int64
	holdCtx, stopHold := context.WithCancel(context.Background())
	var holds []*http.Response
	for i := 0; i < cfg.MaxConcurrent; i++ {
		req, err := http.NewRequestWithContext(holdCtx, "POST", ts.URL+"/runs?seed=99", strings.NewReader(holdScenario))
		if err != nil {
			stopHold()
			return err
		}
		resp, err := client.Do(req)
		if err != nil {
			stopHold()
			return fmt.Errorf("selftest: hold stream %d: %w", i, err)
		}
		if resp.StatusCode != http.StatusOK {
			stopHold()
			return fmt.Errorf("selftest: hold stream %d admitted with status %d, want 200", i, resp.StatusCode)
		}
		holds = append(holds, resp)
	}
	probe, err := client.Post(ts.URL+"/runs?preset=lab-bench", "application/json", nil)
	if err != nil {
		stopHold()
		return err
	}
	probeBody, _ := io.ReadAll(probe.Body)
	probe.Body.Close()
	if probe.StatusCode != http.StatusTooManyRequests {
		stopHold()
		return fmt.Errorf("selftest: probe beyond the admission limit got status %d (%s), want 429",
			probe.StatusCode, bytes.TrimSpace(probeBody))
	}
	if probe.Header.Get("Retry-After") == "" {
		stopHold()
		return fmt.Errorf("selftest: 429 response missing Retry-After header")
	}
	rejects429.Add(1)
	// The rejected client now behaves like a well-mannered one: jittered
	// exponential backoff seeded from the Retry-After hint, retried until
	// the request is actually served. The held slots are released shortly
	// (while the client sleeps out its first window), so the retry both
	// honors the header and proves reentry succeeds once capacity frees.
	backoff := time.Second
	if ra, err := strconv.Atoi(probe.Header.Get("Retry-After")); err == nil && ra > 0 {
		backoff = time.Duration(ra) * time.Second
	}
	go func() {
		time.Sleep(150 * time.Millisecond)
		// Disconnect the held clients; every engine must be torn down
		// and its slot released (the no-leak contract).
		for _, h := range holds {
			h.Body.Close()
		}
		stopHold()
	}()
	jitter := simrand.New(0x5e1f) // fixed seed: the sleep schedule is reproducible
	const maxRetry = 10
	retryAttempts := 0
	for served := false; !served; {
		if retryAttempts >= maxRetry {
			return fmt.Errorf("selftest: 429 retry never served after %d attempts", maxRetry)
		}
		retryAttempts++
		time.Sleep(backoff + time.Duration(jitter.Float64()*0.5*float64(backoff)))
		resp, err := client.Post(ts.URL+"/runs?preset=lab-bench&seed=7", "application/json", nil)
		if err != nil {
			return fmt.Errorf("selftest: 429 retry attempt %d: %w", retryAttempts, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			served = true
		case http.StatusTooManyRequests:
			rejects429.Add(1)
			// Honor a raised hint, then back off exponentially (capped).
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
				if hinted := time.Duration(ra) * time.Second; hinted > backoff {
					backoff = hinted
				}
			}
			if backoff *= 2; backoff > 8*time.Second {
				backoff = 8 * time.Second
			}
		default:
			return fmt.Errorf("selftest: 429 retry attempt %d: status %d: %s",
				retryAttempts, resp.StatusCode, bytes.TrimSpace(body))
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.ActiveRuns() != 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("selftest: %d engines still active 10s after client disconnect", srv.ActiveRuns())
		}
		time.Sleep(2 * time.Millisecond)
	}
	logf("selftest: admission probe ok (429 + Retry-After with %d slots held; served after %d backoff retr%s; slots released on disconnect)",
		cfg.MaxConcurrent, retryAttempts, map[bool]string{true: "y", false: "ies"}[retryAttempts == 1])

	// Phase 2 — concurrent load: Runs simultaneous clients, retrying
	// on 429 until served, each comparing its stream byte-for-byte
	// against the reference.
	var (
		wg        sync.WaitGroup
		retries   atomic.Int64
		firstErr  atomic.Value
		mismatch  atomic.Int64
		completed atomic.Int64
	)
	fail := func(err error) { firstErr.CompareAndSwap(nil, err); _ = err }
	for i := 0; i < cfg.Runs; i++ {
		j := jobs[i%len(jobs)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for attempt := 0; ; attempt++ {
				resp, err := client.Post(
					fmt.Sprintf("%s/runs?seed=%d", ts.URL, j.seed),
					"application/json", bytes.NewReader(j.body))
				if err != nil {
					fail(fmt.Errorf("selftest: %s: %w", j.key, err))
					return
				}
				got, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					fail(fmt.Errorf("selftest: %s: read stream: %w", j.key, err))
					return
				}
				switch resp.StatusCode {
				case http.StatusTooManyRequests:
					rejects429.Add(1)
					retries.Add(1)
					if attempt > 100000 {
						fail(fmt.Errorf("selftest: %s: starved after %d retries", j.key, attempt))
						return
					}
					// The header hints 1s; the harness retries faster to
					// keep the test short while still exercising reentry.
					time.Sleep(5 * time.Millisecond)
					continue
				case http.StatusOK:
					if !bytes.Equal(got, refs[j.key]) {
						mismatch.Add(1)
						fail(fmt.Errorf("selftest: %s: served stream differs from reference (%d vs %d bytes)",
							j.key, len(got), len(refs[j.key])))
					}
					completed.Add(1)
					return
				default:
					fail(fmt.Errorf("selftest: %s: status %d: %s", j.key, resp.StatusCode, bytes.TrimSpace(got)))
					return
				}
			}
		}()
	}
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		return err
	}
	if n := completed.Load(); int(n) != cfg.Runs {
		return fmt.Errorf("selftest: only %d of %d runs completed", n, cfg.Runs)
	}
	logf("selftest: load ok — %d concurrent runs served byte-identical under a %d-engine limit (%d 429s, %d retries, 0 mismatches)",
		cfg.Runs, cfg.MaxConcurrent, rejects429.Load(), retries.Load())

	// Phase 3 — resume: take the token mid-stream and prove the
	// resumed stream equals the uninterrupted tail byte-for-byte.
	ref := refs[jobs[0].key]
	lines := bytes.Split(bytes.TrimSuffix(ref, []byte("\n")), []byte("\n"))
	if len(lines) < 3 {
		return fmt.Errorf("selftest: reference stream too short to test resume (%d lines)", len(lines))
	}
	cut := len(lines) / 2
	var mid struct {
		Resume string `json:"resume"`
	}
	if err := json.Unmarshal(lines[cut-1], &mid); err != nil || mid.Resume == "" {
		return fmt.Errorf("selftest: no resume token on stream line %d: %v", cut, err)
	}
	resp, err := client.Post(ts.URL+"/runs?resume="+mid.Resume, "application/json", nil)
	if err != nil {
		return err
	}
	gotTail, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return fmt.Errorf("selftest: resume request failed: status %d, %v", resp.StatusCode, err)
	}
	wantTail := append(bytes.Join(lines[cut:], []byte("\n")), '\n')
	if !bytes.Equal(gotTail, wantTail) {
		return fmt.Errorf("selftest: resumed stream differs from the uninterrupted tail (%d vs %d bytes)",
			len(gotTail), len(wantTail))
	}
	logf("selftest: resume ok — token at line %d replays the remaining %d lines byte-identically", cut, len(lines)-cut)

	if rejects429.Load() == 0 {
		return fmt.Errorf("selftest: admission control never engaged (no 429 observed)")
	}
	logf("selftest: PASS (%d runs, %d 429s, streams deterministic, resume exact)", cfg.Runs, rejects429.Load())
	return nil
}
