// Package netsvc is the scenario-service layer behind cmd/fdnetd: a
// long-running HTTP surface over the netsim engine. It accepts scenario
// JSON (the same Scenario schema and Validate path as cmd/fdnet), runs
// one engine per request on the sharded worker-pool infrastructure, and
// streams per-round statistics as NDJSON (or server-sent events) —
// delivery, throughput, per-reader saturation, rate-histogram deltas —
// the live management-surface shape of ndn-dpdk's service daemon, where
// runs are first-class managed objects with live stats queries.
//
// Contracts:
//
//   - Streams are pure NDJSON. Every byte written to a run response is
//     a marshaled JSON line; diagnostics flow through the request-scoped
//     server logger, never the stream (the fdnet run-header bug class).
//   - Streams are deterministic: one (scenario, seed) produces
//     byte-identical output on every request, at any engine worker
//     count. CI cmp's two runs of the fading-dock example.
//   - Admission is bounded: at most Config.MaxConcurrent engines run at
//     once; excess requests get 429 with a Retry-After header, and
//     scenarios above Config.MaxTags get 413 before any engine spins up.
//   - Every round line carries a self-contained resume token; replaying
//     it (?resume=) streams the remaining rounds byte-identically to the
//     uninterrupted stream's tail (see netsim.StreamOptions.StartRound).
package netsvc

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/netsim"
)

// Config dimensions a Server. Zero fields take the documented defaults.
type Config struct {
	// MaxConcurrent bounds the engines running at once (default 4).
	// Requests beyond it receive 429 + Retry-After.
	MaxConcurrent int
	// MaxTags caps the per-request tag count after scenario defaults
	// (default 1<<20, the million preset); larger requests get 413.
	MaxTags int
	// Workers is the engine worker count per run (<= 0: one per CPU).
	// Concurrency across requests comes from MaxConcurrent; per-run
	// sharding is the server operator's knob, not the client's.
	Workers int
	// RetryAfterS is the Retry-After hint on 429 responses in seconds
	// (default 1).
	RetryAfterS int
	// Log receives request-scoped diagnostics (accept/finish/reject
	// lines). nil discards them. Nothing ever logs into a stream.
	Log *log.Logger
}

func (c *Config) applyDefaults() {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.MaxTags <= 0 {
		c.MaxTags = 1 << 20
	}
	if c.RetryAfterS <= 0 {
		c.RetryAfterS = 1
	}
	if c.Log == nil {
		c.Log = log.New(io.Discard, "", 0)
	}
}

// RunStatus is one live run's entry in the GET /runs listing.
type RunStatus struct {
	// ID is the server-assigned run identifier (monotonic per process).
	ID uint64 `json:"id"`
	// Name and Seed echo the running scenario.
	Name string `json:"name"`
	Seed uint64 `json:"seed"`
	// Round is the last round streamed so far (live progress).
	Round int `json:"round"`
	// MaxRounds bounds the run; StartRound is non-zero for resumed runs.
	MaxRounds  int `json:"max_rounds"`
	StartRound int `json:"start_round,omitempty"`
	// RunningS is the wall-clock age of the run in seconds.
	RunningS float64 `json:"running_s"`
}

// runInfo is the server-side state of one live run.
type runInfo struct {
	id         uint64
	name       string
	seed       uint64
	startRound int
	maxRounds  int
	started    time.Time
	round      int64 // accessed under Server.mu
	cancel     context.CancelFunc
}

// Server is the scenario service: bounded concurrent engines, live run
// registry, streaming handlers. Create with New; serve via Handler.
type Server struct {
	cfg Config

	mu       sync.Mutex
	active   int
	nextID   uint64
	accepted uint64
	rejected uint64
	runs     map[uint64]*runInfo
}

// New builds a Server from the config (zero fields take defaults).
func New(cfg Config) *Server {
	cfg.applyDefaults()
	return &Server{cfg: cfg, runs: make(map[uint64]*runInfo)}
}

// Handler returns the service's HTTP routes:
//
//	POST /runs     run a scenario (JSON body, ?preset=, or ?resume=token)
//	GET  /runs     list live runs with per-round progress
//	GET  /healthz  liveness + admission state
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /runs", s.handleRun)
	mux.HandleFunc("GET /runs", s.handleList)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// ActiveRuns reports the engines currently running — the admission
// counter. Tests use it to prove disconnected clients release their
// engine (no goroutine or slot leaks).
func (s *Server) ActiveRuns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active
}

// CancelRuns cancels every live run's context. The daemon calls it on
// SIGTERM so in-flight streams end promptly and graceful shutdown can
// complete.
func (s *Server) CancelRuns() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ri := range s.runs {
		ri.cancel()
	}
}

// Runs snapshots the live-run registry, sorted by run ID.
func (s *Server) Runs() []RunStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Harvest and sort the map keys before building the listing: run
	// IDs are unique, so the sorted keys induce a deterministic order
	// no matter how the map iterates (fdlint: orderedrange).
	ids := make([]uint64, 0, len(s.runs))
	for id := range s.runs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]RunStatus, 0, len(ids))
	now := time.Now()
	for _, id := range ids {
		ri := s.runs[id]
		out = append(out, RunStatus{
			ID: ri.id, Name: ri.name, Seed: ri.seed,
			Round: int(ri.round), MaxRounds: ri.maxRounds, StartRound: ri.startRound,
			RunningS: now.Sub(ri.started).Seconds(),
		})
	}
	return out
}

// admit claims an engine slot, or reports rejection.
func (s *Server) admit() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active >= s.cfg.MaxConcurrent {
		s.rejected++
		return false
	}
	s.active++
	return true
}

// register adds a run to the registry after admission.
func (s *Server) register(ri *runInfo) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	s.accepted++
	ri.id = s.nextID
	s.runs[ri.id] = ri
}

// finish releases the admission slot and drops the registry entry.
func (s *Server) finish(ri *runInfo) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.active--
	delete(s.runs, ri.id)
}

func (s *Server) progress(ri *runInfo, round int) {
	s.mu.Lock()
	ri.round = int64(round)
	s.mu.Unlock()
}

// jsonError writes a one-line JSON error body with the given status.
func jsonError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	b, _ := json.Marshal(map[string]string{"error": fmt.Sprintf(format, args...)})
	w.Write(append(b, '\n'))
}

// handleHealthz reports liveness and admission state.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	body := map[string]any{
		"status":         "ok",
		"active_runs":    s.active,
		"max_concurrent": s.cfg.MaxConcurrent,
		"runs_accepted":  s.accepted,
		"runs_rejected":  s.rejected,
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	b, _ := json.Marshal(body)
	w.Write(append(b, '\n'))
}

// handleList serves the live-run registry.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	b, _ := json.Marshal(s.Runs())
	w.Write(append(b, '\n'))
}

// maxScenarioBody bounds a request body; a scenario JSON is small, and
// unknown fields are rejected anyway.
const maxScenarioBody = 1 << 20

// handleRun admits, validates and streams one scenario run.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()

	// Resolve the scenario: a resume token, a named preset, or body
	// JSON — exactly one.
	var (
		orig       netsim.Scenario // pre-defaults, as the client declared it
		seed       uint64          = 1
		startRound int
	)
	switch {
	case q.Get("resume") != "":
		tok, err := decodeResumeToken(q.Get("resume"))
		if err != nil {
			jsonError(w, http.StatusBadRequest, "bad resume token: %v", err)
			return
		}
		orig, seed, startRound = tok.Scenario, tok.Seed, tok.Round
	case q.Get("preset") != "":
		var err error
		orig, err = netsim.Preset(q.Get("preset"))
		if err != nil {
			jsonError(w, http.StatusBadRequest, "%v", err)
			return
		}
	default:
		body, err := io.ReadAll(io.LimitReader(r.Body, maxScenarioBody))
		if err != nil {
			jsonError(w, http.StatusBadRequest, "read body: %v", err)
			return
		}
		if len(body) == 0 {
			jsonError(w, http.StatusBadRequest, "empty request: POST scenario JSON, or use ?preset= / ?resume=")
			return
		}
		orig, err = netsim.ParseScenario(body)
		if err != nil {
			jsonError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	if v := q.Get("seed"); v != "" && q.Get("resume") == "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			jsonError(w, http.StatusBadRequest, "bad seed %q: %v", v, err)
			return
		}
		seed = n
	}

	// Validate on the same path as fdnet: defaults then Validate, with
	// the Validate error text in the 400 body.
	sc := orig
	sc.ApplyDefaults()
	if err := sc.Validate(); err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if sc.Tags > s.cfg.MaxTags {
		jsonError(w, http.StatusRequestEntityTooLarge,
			"scenario asks for %d tags; this server caps requests at %d", sc.Tags, s.cfg.MaxTags)
		return
	}

	sse := q.Get("format") == "sse" || r.Header.Get("Accept") == "text/event-stream"

	// Admission: bounded concurrent engines.
	if !s.admit() {
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfterS))
		jsonError(w, http.StatusTooManyRequests,
			"server is running its maximum of %d concurrent scenario runs; retry after %ds",
			s.cfg.MaxConcurrent, s.cfg.RetryAfterS)
		return
	}

	ctx, cancel := context.WithCancel(r.Context())
	ri := &runInfo{
		name: sc.Name, seed: seed, startRound: startRound,
		maxRounds: sc.MaxRounds, started: time.Now(), cancel: cancel,
	}
	s.register(ri)
	defer func() {
		cancel()
		s.finish(ri)
	}()
	s.cfg.Log.Printf("run %d: accepted %q seed=%d tags=%d readers=%d rounds<=%d start_round=%d workers=%d sse=%v",
		ri.id, sc.Name, seed, sc.Tags, sc.Readers.Count, sc.MaxRounds, startRound, netsim.ResolveWorkers(s.cfg.Workers), sse)

	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")

	lw := newLineWriter(w, sse)
	res, err := encodeStream(ctx, sc, orig, seed, netsim.StreamOptions{
		Workers: s.cfg.Workers, StartRound: startRound,
	}, lw, func(round int) { s.progress(ri, round) })
	if err != nil {
		// The stream has (in general) started: the status line is gone,
		// so the error is a log line, not a response. Cancellation and
		// client disconnects land here by design. A terminal error line
		// keeps the stream parseable end to end for clients still
		// listening (server-side cancellation); when the client itself
		// disconnected the write fails harmlessly.
		_ = lw.writeLine("error", &errorLine{Type: "error", Error: err.Error(), Round: int(ri.round)})
		s.cfg.Log.Printf("run %d: aborted at round %d: %v", ri.id, ri.round, err)
		return
	}
	s.cfg.Log.Printf("run %d: done: %d rounds, delivered %d/%d, %.1f ms",
		ri.id, res.Rounds, res.FramesDelivered, res.FramesOffered,
		float64(time.Since(ri.started).Microseconds())/1e3)
}
