// Package mac is the packet-level discrete simulator used for the
// protocol experiments: it abstracts the waveform PHY into per-chunk loss
// processes and a feedback bit-error probability (both calibrated from
// the waveform link in internal/core), and compares link-layer protocols
// at scales where sample-accurate simulation would be too slow —
// half-duplex stop-and-wait and block-ACK baselines versus the paper's
// full-duplex instantaneous feedback with early termination.
//
// Airtime is measured in BYTES ON AIR, which is proportional to time at
// a fixed rate and lets the arithmetic stay exact. Elapsed time
// additionally counts idle/backoff periods.
package mac

import (
	"repro/internal/simrand"
)

// Loss decides the fate of each transmitted chunk, advancing its internal
// state once per chunk airtime.
type Loss interface {
	// Chunk reports whether the chunk just transmitted was lost.
	Chunk() bool
	// Idle advances channel state over n chunk-times without a
	// transmission (backoff periods still see the channel evolve).
	Idle(n int)
}

// IIDLoss loses each chunk independently with probability P.
type IIDLoss struct {
	P   float64
	src *simrand.Source
}

// NewIIDLoss returns an iid chunk loss process.
func NewIIDLoss(p float64, src *simrand.Source) *IIDLoss {
	return &IIDLoss{P: p, src: src.Split()}
}

// NewIIDLossUsing returns an iid chunk loss process drawing directly
// from src, without splitting a child off it. For engines that manage
// per-entity stream state themselves (netsim loads a tag's saved stream
// into a worker's scratch Source around each exchange), the split would
// discard the loaded state.
func NewIIDLossUsing(p float64, src *simrand.Source) *IIDLoss {
	return &IIDLoss{P: p, src: src}
}

// Chunk implements Loss.
func (l *IIDLoss) Chunk() bool { return l.src.Bool(l.P) }

// Idle implements Loss (memoryless: nothing to advance).
func (l *IIDLoss) Idle(int) {}

// GilbertLoss wraps a Gilbert-Elliott chain stepped per chunk time.
type GilbertLoss struct {
	ge *simrand.GilbertElliott
}

// NewGilbertLoss returns a bursty chunk loss process.
func NewGilbertLoss(src *simrand.Source, pGB, pBG, lossGood, lossBad float64) *GilbertLoss {
	return &GilbertLoss{ge: simrand.NewGilbertElliott(src, pGB, pBG, lossGood, lossBad)}
}

// Chunk implements Loss.
func (l *GilbertLoss) Chunk() bool { return l.ge.Step() }

// Idle implements Loss: the channel keeps evolving while we back off.
func (l *GilbertLoss) Idle(n int) {
	for i := 0; i < n; i++ {
		l.ge.Step()
	}
}

// SteadyStateLoss exposes the underlying chain's long-run loss rate.
func (l *GilbertLoss) SteadyStateLoss() float64 { return l.ge.SteadyStateLoss() }

// BurstLoss models a co-channel interferer: bursts arrive as a Bernoulli
// process per chunk-time and last a geometric number of chunk-times;
// while a burst is active every chunk is lost with HitProb.
type BurstLoss struct {
	// StartProb is the per-chunk-time probability a burst begins.
	StartProb float64
	// MeanBurstChunks is the mean burst duration in chunk-times.
	MeanBurstChunks float64
	// HitProb is the chunk loss probability while a burst is active
	// (default 1).
	HitProb float64
	// BaseLoss is the chunk loss probability outside bursts.
	BaseLoss float64

	remaining int
	src       *simrand.Source
}

// NewBurstLoss returns a burst interference loss process.
func NewBurstLoss(src *simrand.Source, startProb, meanBurst, hitProb, baseLoss float64) *BurstLoss {
	if hitProb <= 0 {
		hitProb = 1
	}
	return &BurstLoss{
		StartProb: startProb, MeanBurstChunks: meanBurst,
		HitProb: hitProb, BaseLoss: baseLoss,
		src: src.Split(),
	}
}

func (l *BurstLoss) step() bool {
	if l.remaining > 0 {
		l.remaining--
		return l.src.Bool(l.HitProb)
	}
	if l.src.Bool(l.StartProb) {
		// Geometric duration with the configured mean (at least 1).
		n := 1
		if l.MeanBurstChunks > 1 {
			p := 1 / l.MeanBurstChunks
			for !l.src.Bool(p) {
				n++
				if n > 1<<20 {
					break
				}
			}
		}
		l.remaining = n - 1
		return l.src.Bool(l.HitProb)
	}
	return l.src.Bool(l.BaseLoss)
}

// Chunk implements Loss.
func (l *BurstLoss) Chunk() bool { return l.step() }

// Idle implements Loss.
func (l *BurstLoss) Idle(n int) {
	for i := 0; i < n; i++ {
		l.step()
	}
}

// Active reports whether a burst is currently in progress.
func (l *BurstLoss) Active() bool { return l.remaining > 0 }

// DutyCycle returns the long-run fraction of chunk-times inside bursts.
func (l *BurstLoss) DutyCycle() float64 {
	if l.StartProb <= 0 {
		return 0
	}
	m := l.MeanBurstChunks
	if m < 1 {
		m = 1
	}
	busy := l.StartProb * m
	return busy / (1 + busy - l.StartProb)
}
