package mac

import (
	"fmt"

	"repro/internal/simrand"
)

// Params describe the common link dimensions shared by every protocol.
type Params struct {
	// PayloadBytes per frame.
	PayloadBytes int
	// ChunkBytes per chunk (payload split; each chunk carries 1 CRC
	// byte on air).
	ChunkBytes int
	// HeaderBytes is the per-frame-attempt overhead (preamble + header),
	// default 12.
	HeaderBytes int
	// AckBytes is the half-duplex acknowledgement cost in airtime bytes,
	// including the RX/TX turnaround; default 16. Full-duplex protocols
	// never pay it — their feedback is concurrent.
	AckBytes int
	// FeedbackBER is the probability a full-duplex feedback bit flips.
	FeedbackBER float64
	// MaxAttempts bounds retransmission rounds per frame (default 32).
	MaxAttempts int
	// AbortThreshold is the number of consecutive NACKs that triggers
	// early termination in the full-duplex protocol (default 2; 0
	// disables early termination).
	AbortThreshold int
	// BackoffChunks is the idle defer after an early abort, in
	// chunk-times (default 8).
	BackoffChunks int
}

func (p *Params) applyDefaults() {
	if p.PayloadBytes <= 0 {
		p.PayloadBytes = 1500
	}
	if p.ChunkBytes <= 0 {
		p.ChunkBytes = 64
	}
	if p.HeaderBytes <= 0 {
		p.HeaderBytes = 12
	}
	if p.AckBytes <= 0 {
		p.AckBytes = 16
	}
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 32
	}
	if p.BackoffChunks <= 0 {
		p.BackoffChunks = 8
	}
}

// NumChunks returns the chunks per frame.
func (p Params) NumChunks() int {
	p.applyDefaults()
	return (p.PayloadBytes + p.ChunkBytes - 1) / p.ChunkBytes
}

// chunkAir returns the airtime bytes of one chunk (payload + CRC).
func (p Params) chunkAir() int { return p.ChunkBytes + 1 }

// ChunkAirBytes returns the airtime bytes of one chunk (payload + CRC),
// after defaults.
func (p Params) ChunkAirBytes() int {
	p.applyDefaults()
	return p.chunkAir()
}

// HeaderAirBytes returns the per-frame-attempt header overhead, after
// defaults.
func (p Params) HeaderAirBytes() int {
	p.applyDefaults()
	return p.HeaderBytes
}

// FrameAirBytes returns the airtime of one whole-frame attempt (header
// plus every chunk), after defaults — the cost a half-duplex protocol
// burns when a collision goes undetected until the missing ACK.
func (p Params) FrameAirBytes() int {
	p.applyDefaults()
	return p.HeaderBytes + p.NumChunks()*p.chunkAir()
}

// AckAirBytes returns the half-duplex acknowledgement airtime, after
// defaults — exposed for closed-form airtime models of the half-duplex
// protocols.
func (p Params) AckAirBytes() int {
	p.applyDefaults()
	return p.AckBytes
}

// Result accumulates protocol statistics over a run.
type Result struct {
	Protocol        string
	FramesSent      int
	FramesDelivered int
	// AirtimeBytes actually transmitted.
	AirtimeBytes int64
	// ElapsedBytes includes idle/backoff and ACK turnarounds: the
	// latency clock.
	ElapsedBytes int64
	// GoodputBytes is payload delivered (counted once per frame).
	GoodputBytes int64
	// WastedBytes is airtime spent on transmissions that did not end up
	// contributing payload (lost chunks, aborted remainders, duplicate
	// sends, ACK overhead).
	WastedBytes int64
	// ChunkTx counts chunk transmissions; ChunkRetx the re-sends.
	ChunkTx, ChunkRetx int64
	// FalseNACK / FalseACK count feedback decoding errors (FD only).
	FalseNACK, FalseACK int64
	// Aborts counts early terminations.
	Aborts int64
	// LatencySumBytes accumulates per-delivered-frame latency in elapsed
	// bytes; LatencyMaxBytes tracks the worst case.
	LatencySumBytes int64
	LatencyMaxBytes int64
	// FeedbackDelayChunks is the mean delay (in chunk-times) between a
	// chunk finishing and the sender learning its fate.
	FeedbackDelaySum   int64
	FeedbackDelayCount int64
	// Attempts counts frame transmission attempts across the run
	// (>= FramesSent; the gap is the retry burden).
	Attempts int64
}

// Efficiency returns goodput bytes per transmitted airtime byte.
func (r Result) Efficiency() float64 {
	if r.AirtimeBytes == 0 {
		return 0
	}
	return float64(r.GoodputBytes) / float64(r.AirtimeBytes)
}

// Throughput returns goodput bytes per elapsed byte-time (includes idle).
func (r Result) Throughput() float64 {
	if r.ElapsedBytes == 0 {
		return 0
	}
	return float64(r.GoodputBytes) / float64(r.ElapsedBytes)
}

// WastedFraction returns wasted airtime over transmitted airtime.
func (r Result) WastedFraction() float64 {
	if r.AirtimeBytes == 0 {
		return 0
	}
	return float64(r.WastedBytes) / float64(r.AirtimeBytes)
}

// MeanLatencyBytes returns the mean delivered-frame latency.
func (r Result) MeanLatencyBytes() float64 {
	if r.FramesDelivered == 0 {
		return 0
	}
	return float64(r.LatencySumBytes) / float64(r.FramesDelivered)
}

// MeanFeedbackDelayChunks returns the mean feedback delay in chunk-times.
func (r Result) MeanFeedbackDelayChunks() float64 {
	if r.FeedbackDelayCount == 0 {
		return 0
	}
	return float64(r.FeedbackDelaySum) / float64(r.FeedbackDelayCount)
}

// DeliveryRate returns delivered frames over sent frames.
func (r Result) DeliveryRate() float64 {
	if r.FramesSent == 0 {
		return 0
	}
	return float64(r.FramesDelivered) / float64(r.FramesSent)
}

// Protocol runs frames through a loss process and accumulates a Result.
// Implementations may keep internal scratch between Run calls, and the
// Loss processes they consume are themselves stateful — a Protocol
// instance is not safe for concurrent use; give each goroutine its own.
type Protocol interface {
	// Name identifies the protocol in experiment tables.
	Name() string
	// Run transfers nFrames frames and returns the statistics.
	Run(nFrames int, loss Loss) Result
}

// ---------------------------------------------------------------------
// Half-duplex stop-and-wait: transmit the whole frame, turn the link
// around, wait for a frame-level ACK, retransmit the whole frame on
// failure. What RFID-style backscatter links do today.
// ---------------------------------------------------------------------

// StopAndWait is the packet-level half-duplex baseline.
type StopAndWait struct {
	P Params
}

// Name implements Protocol.
func (s *StopAndWait) Name() string { return "stop-and-wait" }

// Run implements Protocol.
func (s *StopAndWait) Run(nFrames int, loss Loss) Result {
	p := s.P
	p.applyDefaults()
	res := Result{Protocol: s.Name()}
	n := p.NumChunks()
	frameAir := int64(p.HeaderBytes + n*p.chunkAir())
	for f := 0; f < nFrames; f++ {
		res.FramesSent++
		var frameElapsed int64
		delivered := false
		for attempt := 0; attempt < p.MaxAttempts; attempt++ {
			res.Attempts++
			ok := true
			for c := 0; c < n; c++ {
				res.ChunkTx++
				if attempt > 0 {
					res.ChunkRetx++
				}
				if loss.Chunk() {
					ok = false
				}
			}
			// Half-duplex ACK exchange (assumed reliable but costly):
			// the backscattered ACK occupies the channel too.
			res.AirtimeBytes += frameAir + int64(p.AckBytes)
			frameElapsed += frameAir
			res.ElapsedBytes += frameAir + int64(p.AckBytes)
			frameElapsed += int64(p.AckBytes)
			res.WastedBytes += int64(p.AckBytes)
			// The sender learns the frame's fate only after the whole
			// frame plus the ACK turnaround.
			res.FeedbackDelaySum += int64(n) // first chunk waited ~n chunk-times
			res.FeedbackDelayCount++
			if ok {
				delivered = true
				res.GoodputBytes += int64(p.PayloadBytes)
				break
			}
			// Entire attempt wasted.
			res.WastedBytes += frameAir
		}
		if delivered {
			res.FramesDelivered++
			res.LatencySumBytes += frameElapsed
			if frameElapsed > res.LatencyMaxBytes {
				res.LatencyMaxBytes = frameElapsed
			}
		}
	}
	return res
}

// ---------------------------------------------------------------------
// Half-duplex block-ACK (selective repeat): after each whole-frame
// attempt the receiver returns a per-chunk bitmap; only failed chunks
// are retransmitted. A stronger baseline that still pays the
// end-of-frame round trip.
// ---------------------------------------------------------------------

// BlockACK is the selective-repeat half-duplex baseline.
type BlockACK struct {
	P Params
}

// Name implements Protocol.
func (s *BlockACK) Name() string { return "block-ack" }

// Run implements Protocol.
func (s *BlockACK) Run(nFrames int, loss Loss) Result {
	p := s.P
	p.applyDefaults()
	res := Result{Protocol: s.Name()}
	n := p.NumChunks()
	for f := 0; f < nFrames; f++ {
		res.FramesSent++
		pending := n
		var frameElapsed int64
		delivered := false
		for attempt := 0; attempt < p.MaxAttempts && pending > 0; attempt++ {
			res.Attempts++
			attemptAir := int64(p.HeaderBytes + pending*p.chunkAir())
			stillBad := 0
			for c := 0; c < pending; c++ {
				res.ChunkTx++
				if attempt > 0 {
					res.ChunkRetx++
				}
				if loss.Chunk() {
					stillBad++
					res.WastedBytes += int64(p.chunkAir())
				}
			}
			res.AirtimeBytes += attemptAir + int64(p.AckBytes)
			res.ElapsedBytes += attemptAir + int64(p.AckBytes)
			frameElapsed += attemptAir + int64(p.AckBytes)
			res.WastedBytes += int64(p.AckBytes)
			res.FeedbackDelaySum += int64(pending)
			res.FeedbackDelayCount++
			pending = stillBad
		}
		if pending == 0 {
			delivered = true
			res.GoodputBytes += int64(p.PayloadBytes)
		}
		if delivered {
			res.FramesDelivered++
			res.LatencySumBytes += frameElapsed
			if frameElapsed > res.LatencyMaxBytes {
				res.LatencyMaxBytes = frameElapsed
			}
		}
	}
	return res
}

// ---------------------------------------------------------------------
// Full-duplex instantaneous feedback: per-chunk ACK/NACK arrives one
// chunk-time after each chunk, concurrently with the ongoing
// transmission (zero airtime cost). NACKed chunks are re-queued
// immediately; consecutive NACKs trigger early termination plus backoff
// (collision handling); feedback bits can flip with FeedbackBER.
// ---------------------------------------------------------------------

// FullDuplex is the paper's protocol. The zero value is ready to use;
// the scratch fields make repeated Run calls allocation-free (network
// simulations run one frame per contention slot), and reusing one
// instance with a new Seed reproduces exactly what a fresh instance
// would: Run reseeds its internal source on every call. The scratch
// makes an instance single-goroutine (see Protocol); construct one per
// worker.
type FullDuplex struct {
	P    Params
	Seed uint64

	// Reused per-run scratch (see Run); never observable in results.
	src       *simrand.Source
	delivered []bool
	believed  []bool
	queue     []int
}

// Name implements Protocol.
func (s *FullDuplex) Name() string { return "full-duplex" }

// Prime preallocates the instance's internal scratch for the configured
// Params so even the first Run call is allocation-free. Engines that
// keep one instance per worker call it at setup; without it, which
// worker pays the first-frame allocation would depend on scheduling,
// breaking their allocation accounting (never their results).
func (s *FullDuplex) Prime() {
	p := s.P
	p.applyDefaults()
	if s.src == nil {
		s.src = simrand.New(s.Seed ^ 0xfdb5)
	}
	n := p.NumChunks()
	if cap(s.delivered) < n {
		s.delivered = make([]bool, n)
		s.believed = make([]bool, n)
	}
	if cap(s.queue) < n {
		s.queue = make([]int, 0, n)
	}
}

// Run implements Protocol.
func (s *FullDuplex) Run(nFrames int, loss Loss) Result {
	p := s.P
	p.applyDefaults()
	res := Result{Protocol: s.Name()}
	if s.src == nil {
		s.src = simrand.New(s.Seed ^ 0xfdb5)
	} else {
		s.src.Reseed(s.Seed ^ 0xfdb5)
	}
	src := s.src
	n := p.NumChunks()
	if cap(s.delivered) < n {
		s.delivered = make([]bool, n)
		s.believed = make([]bool, n)
	}
	chunkAir := int64(p.chunkAir())
	for f := 0; f < nFrames; f++ {
		res.FramesSent++
		// delivered[i]: ground truth at the tag; believed[i]: sender's view.
		delivered := s.delivered[:n]
		believed := s.believed[:n]
		for i := range delivered {
			delivered[i] = false
			believed[i] = false
		}
		var frameElapsed int64
		frameDone := false
		attempts := 0
		for !frameDone && attempts < p.MaxAttempts {
			attempts++
			res.Attempts++
			// Build the queue of chunks the sender believes missing.
			queue := s.queue[:0]
			for i := 0; i < n; i++ {
				if !believed[i] {
					queue = append(queue, i)
				}
			}
			s.queue = queue[:0]
			if len(queue) == 0 {
				// Sender believes done but the tag disagrees (false
				// ACKs): the end-of-frame trailer check fails and the
				// truth bitmap resyncs the sender (costs one header).
				for i := 0; i < n; i++ {
					believed[i] = delivered[i]
				}
				res.AirtimeBytes += int64(p.HeaderBytes)
				res.ElapsedBytes += int64(p.HeaderBytes)
				frameElapsed += int64(p.HeaderBytes)
				continue
			}
			res.AirtimeBytes += int64(p.HeaderBytes)
			res.ElapsedBytes += int64(p.HeaderBytes)
			frameElapsed += int64(p.HeaderBytes)
			consecNACK := 0
			for qi := 0; qi < len(queue); qi++ {
				c := queue[qi]
				res.ChunkTx++
				if delivered[c] {
					res.ChunkRetx++ // needless resend (false NACK earlier)
				}
				lost := loss.Chunk()
				ok := delivered[c] || !lost
				res.AirtimeBytes += chunkAir
				res.ElapsedBytes += chunkAir
				frameElapsed += chunkAir
				if !ok {
					res.WastedBytes += chunkAir
				}
				// Feedback arrives one chunk-time later, concurrent with
				// the next chunk: zero airtime, delay 1 chunk.
				res.FeedbackDelaySum++
				res.FeedbackDelayCount++
				bit := ok
				if p.FeedbackBER > 0 && src.Bool(p.FeedbackBER) {
					bit = !bit
					if ok {
						res.FalseNACK++
					} else {
						res.FalseACK++
					}
				}
				if ok {
					delivered[c] = true
				}
				if bit {
					believed[c] = true
					consecNACK = 0
				} else {
					believed[c] = false
					consecNACK++
					if p.AbortThreshold > 0 && consecNACK >= p.AbortThreshold {
						// Early termination: the channel looks dead;
						// stop burning airtime and back off.
						res.Aborts++
						loss.Idle(p.BackoffChunks)
						res.ElapsedBytes += int64(p.BackoffChunks) * chunkAir
						frameElapsed += int64(p.BackoffChunks) * chunkAir
						break
					}
				}
			}
			frameDone = true
			for i := 0; i < n; i++ {
				if !delivered[i] || !believed[i] {
					frameDone = false
					break
				}
			}
		}
		allDelivered := true
		for i := 0; i < n; i++ {
			if !delivered[i] {
				allDelivered = false
				break
			}
		}
		if allDelivered {
			res.FramesDelivered++
			res.GoodputBytes += int64(p.PayloadBytes)
			res.LatencySumBytes += frameElapsed
			if frameElapsed > res.LatencyMaxBytes {
				res.LatencyMaxBytes = frameElapsed
			}
		}
	}
	return res
}

// String renders a compact summary.
func (r Result) String() string {
	return fmt.Sprintf("%s: frames %d/%d eff=%.3f waste=%.3f lat=%.0fB",
		r.Protocol, r.FramesDelivered, r.FramesSent,
		r.Efficiency(), r.WastedFraction(), r.MeanLatencyBytes())
}
