package mac

import (
	"math"
	"testing"

	"repro/internal/simrand"
)

func TestIIDLossRate(t *testing.T) {
	l := NewIIDLoss(0.2, simrand.New(1))
	lost := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if l.Chunk() {
			lost++
		}
	}
	got := float64(lost) / n
	if math.Abs(got-0.2) > 0.01 {
		t.Fatalf("loss rate %g, want 0.2", got)
	}
	l.Idle(100) // must not panic
}

func TestGilbertLossBursty(t *testing.T) {
	l := NewGilbertLoss(simrand.New(2), 0.01, 0.1, 0.001, 0.8)
	lost, pairs, prev := 0, 0, false
	const n = 300000
	for i := 0; i < n; i++ {
		v := l.Chunk()
		if v {
			lost++
			if prev {
				pairs++
			}
		}
		prev = v
	}
	marginal := float64(lost) / n
	if math.Abs(marginal-l.SteadyStateLoss()) > 0.02 {
		t.Fatalf("marginal %g vs steady %g", marginal, l.SteadyStateLoss())
	}
	if float64(pairs)/float64(lost) < 2*marginal {
		t.Fatal("losses not bursty")
	}
}

func TestBurstLossDutyCycle(t *testing.T) {
	l := NewBurstLoss(simrand.New(3), 0.02, 10, 1, 0)
	busy := 0
	const n = 200000
	for i := 0; i < n; i++ {
		if l.Chunk() {
			busy++
		}
	}
	got := float64(busy) / n
	want := l.DutyCycle()
	if math.Abs(got-want) > 0.03 {
		t.Fatalf("busy fraction %g, want ~%g", got, want)
	}
}

func TestBurstLossZeroRate(t *testing.T) {
	l := NewBurstLoss(simrand.New(4), 0, 10, 1, 0)
	for i := 0; i < 1000; i++ {
		if l.Chunk() {
			t.Fatal("no bursts and no base loss must never lose")
		}
	}
	if l.DutyCycle() != 0 {
		t.Fatal("zero start prob duty cycle must be 0")
	}
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}
	if p.NumChunks() != (1500+63)/64 {
		t.Fatalf("default chunks = %d", p.NumChunks())
	}
}

func TestAllProtocolsDeliverOnPerfectChannel(t *testing.T) {
	params := Params{PayloadBytes: 1024, ChunkBytes: 64}
	protos := []Protocol{
		&StopAndWait{P: params},
		&BlockACK{P: params},
		&FullDuplex{P: params, Seed: 1},
	}
	for _, pr := range protos {
		loss := NewIIDLoss(0, simrand.New(5))
		res := pr.Run(100, loss)
		if res.FramesDelivered != 100 {
			t.Fatalf("%s: delivered %d/100 on perfect channel", pr.Name(), res.FramesDelivered)
		}
		if res.GoodputBytes != 100*1024 {
			t.Fatalf("%s: goodput %d", pr.Name(), res.GoodputBytes)
		}
		if res.ChunkRetx != 0 {
			t.Fatalf("%s: retransmissions on perfect channel", pr.Name())
		}
	}
}

func TestFullDuplexNoAckOverhead(t *testing.T) {
	params := Params{PayloadBytes: 1024, ChunkBytes: 64}
	fd := (&FullDuplex{P: params, Seed: 2}).Run(50, NewIIDLoss(0, simrand.New(6)))
	sw := (&StopAndWait{P: params}).Run(50, NewIIDLoss(0, simrand.New(7)))
	if fd.Efficiency() <= sw.Efficiency() {
		// On a lossless channel FD saves exactly the ACK overhead.
		t.Fatalf("FD efficiency %g must beat SW %g (ACK saving)", fd.Efficiency(), sw.Efficiency())
	}
}

func TestFullDuplexBeatsBaselinesUnderLoss(t *testing.T) {
	params := Params{PayloadBytes: 1500, ChunkBytes: 64}
	for _, p := range []float64{0.05, 0.2, 0.4} {
		fd := (&FullDuplex{P: params, Seed: 3}).Run(200, NewIIDLoss(p, simrand.New(8)))
		sw := (&StopAndWait{P: params}).Run(200, NewIIDLoss(p, simrand.New(9)))
		if fd.Efficiency() <= sw.Efficiency() {
			t.Fatalf("p=%g: FD %g <= SW %g", p, fd.Efficiency(), sw.Efficiency())
		}
	}
}

func TestStopAndWaitCollapsesAtHighLoss(t *testing.T) {
	// With 23 chunks at 20% chunk loss, a whole-frame success is ~0.6%:
	// stop-and-wait mostly fails within MaxAttempts while selective
	// protocols keep working.
	params := Params{PayloadBytes: 1500, ChunkBytes: 64, MaxAttempts: 8}
	loss := 0.2
	sw := (&StopAndWait{P: params}).Run(100, NewIIDLoss(loss, simrand.New(10)))
	fd := (&FullDuplex{P: params, Seed: 4}).Run(100, NewIIDLoss(loss, simrand.New(11)))
	if sw.DeliveryRate() > 0.5 {
		t.Fatalf("stop-and-wait delivered %g at 20%% chunk loss?", sw.DeliveryRate())
	}
	if fd.DeliveryRate() < 0.95 {
		t.Fatalf("full-duplex delivered only %g", fd.DeliveryRate())
	}
}

func TestBlockACKBetweenTheTwo(t *testing.T) {
	params := Params{PayloadBytes: 1500, ChunkBytes: 64}
	p := 0.15
	sw := (&StopAndWait{P: params}).Run(300, NewIIDLoss(p, simrand.New(12)))
	ba := (&BlockACK{P: params}).Run(300, NewIIDLoss(p, simrand.New(13)))
	fd := (&FullDuplex{P: params, Seed: 5}).Run(300, NewIIDLoss(p, simrand.New(14)))
	if !(sw.Efficiency() < ba.Efficiency() && ba.Efficiency() < fd.Efficiency()) {
		t.Fatalf("ordering violated: sw=%.3f ba=%.3f fd=%.3f",
			sw.Efficiency(), ba.Efficiency(), fd.Efficiency())
	}
}

func TestFeedbackDelayOrdersOfMagnitude(t *testing.T) {
	params := Params{PayloadBytes: 1500, ChunkBytes: 64}
	sw := (&StopAndWait{P: params}).Run(100, NewIIDLoss(0.05, simrand.New(15)))
	fd := (&FullDuplex{P: params, Seed: 6}).Run(100, NewIIDLoss(0.05, simrand.New(16)))
	if fd.MeanFeedbackDelayChunks() >= sw.MeanFeedbackDelayChunks()/5 {
		t.Fatalf("FD feedback delay %g vs SW %g: expected >5x gap",
			fd.MeanFeedbackDelayChunks(), sw.MeanFeedbackDelayChunks())
	}
}

func TestEarlyTerminationReducesWasteUnderBursts(t *testing.T) {
	params := Params{PayloadBytes: 1500, ChunkBytes: 64, AbortThreshold: 2, BackoffChunks: 16}
	noAbort := params
	noAbort.AbortThreshold = -1 // disabled marker
	// AbortThreshold 0 means default (2); use a copy with explicit large
	// threshold to disable.
	noAbort.AbortThreshold = 1 << 30

	mkLoss := func(seed uint64) Loss {
		return NewBurstLoss(simrand.New(seed), 0.03, 20, 1, 0.01)
	}
	withAbort := (&FullDuplex{P: params, Seed: 7}).Run(300, mkLoss(17))
	without := (&FullDuplex{P: noAbort, Seed: 7}).Run(300, mkLoss(17))
	if withAbort.Aborts == 0 {
		t.Fatal("bursty channel should trigger aborts")
	}
	if withAbort.WastedFraction() >= without.WastedFraction() {
		t.Fatalf("early termination must cut waste: %.3f vs %.3f",
			withAbort.WastedFraction(), without.WastedFraction())
	}
}

func TestFeedbackBERCausesRetx(t *testing.T) {
	params := Params{PayloadBytes: 1024, ChunkBytes: 64, FeedbackBER: 0.05}
	fd := (&FullDuplex{P: params, Seed: 8}).Run(300, NewIIDLoss(0, simrand.New(18)))
	if fd.FalseNACK == 0 {
		t.Fatal("5% feedback BER on a clean channel must cause false NACKs")
	}
	if fd.ChunkRetx == 0 {
		t.Fatal("false NACKs must cause needless retransmissions")
	}
	if fd.FramesDelivered != 300 {
		t.Fatalf("frames still deliver despite feedback errors: %d/300", fd.FramesDelivered)
	}
}

func TestFalseACKRecovered(t *testing.T) {
	// With loss AND feedback errors, false ACKs happen; the end-of-frame
	// resync must still deliver every frame eventually.
	params := Params{PayloadBytes: 1024, ChunkBytes: 64, FeedbackBER: 0.05, MaxAttempts: 64}
	fd := (&FullDuplex{P: params, Seed: 9}).Run(200, NewIIDLoss(0.2, simrand.New(19)))
	if fd.FalseACK == 0 {
		t.Fatal("expected false ACKs at 20% loss with 5% feedback BER")
	}
	if fd.DeliveryRate() < 0.99 {
		t.Fatalf("delivery rate %g despite resync", fd.DeliveryRate())
	}
}

func TestResultAccessorsZeroSafe(t *testing.T) {
	var r Result
	if r.Efficiency() != 0 || r.Throughput() != 0 || r.WastedFraction() != 0 ||
		r.MeanLatencyBytes() != 0 || r.MeanFeedbackDelayChunks() != 0 || r.DeliveryRate() != 0 {
		t.Fatal("zero-value result accessors must be 0")
	}
	if r.String() == "" {
		t.Fatal("String must render")
	}
}

func TestLatencyFDBeatsSWUnderLoss(t *testing.T) {
	params := Params{PayloadBytes: 1500, ChunkBytes: 64}
	p := 0.1
	sw := (&StopAndWait{P: params}).Run(200, NewIIDLoss(p, simrand.New(20)))
	fd := (&FullDuplex{P: params, Seed: 10}).Run(200, NewIIDLoss(p, simrand.New(21)))
	if sw.FramesDelivered == 0 {
		t.Skip("stop-and-wait delivered nothing; latency undefined")
	}
	if fd.MeanLatencyBytes() >= sw.MeanLatencyBytes() {
		t.Fatalf("FD latency %g must beat SW %g at 10%% loss",
			fd.MeanLatencyBytes(), sw.MeanLatencyBytes())
	}
}

func TestDeterministicRuns(t *testing.T) {
	params := Params{PayloadBytes: 1500, ChunkBytes: 64, FeedbackBER: 0.01}
	run := func() Result {
		return (&FullDuplex{P: params, Seed: 42}).Run(100, NewIIDLoss(0.1, simrand.New(42)))
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seeds diverged:\n%+v\n%+v", a, b)
	}
}

func TestParamsAirtimeHelpers(t *testing.T) {
	// Defaults: 1500 B payload, 64 B chunks (+1 CRC), 12 B header.
	var p Params
	if got := p.ChunkAirBytes(); got != 65 {
		t.Fatalf("ChunkAirBytes = %d, want 65", got)
	}
	if got := p.HeaderAirBytes(); got != 12 {
		t.Fatalf("HeaderAirBytes = %d, want 12", got)
	}
	if got, want := p.FrameAirBytes(), 12+24*65; got != want {
		t.Fatalf("FrameAirBytes = %d, want %d", got, want)
	}
	// Explicit dimensions pass through.
	q := Params{PayloadBytes: 100, ChunkBytes: 50, HeaderBytes: 8}
	if got, want := q.FrameAirBytes(), 8+2*51; got != want {
		t.Fatalf("FrameAirBytes = %d, want %d", got, want)
	}
	// The helpers must not mutate the receiver (value semantics).
	if q.PayloadBytes != 100 || q.MaxAttempts != 0 {
		t.Fatalf("helper mutated params: %+v", q)
	}
}
