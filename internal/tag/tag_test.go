package tag

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/energy"
	"repro/internal/feedback"
	"repro/internal/phy"
	"repro/internal/sigproc"
)

func newTestTag(t *testing.T, cfg Config) *Tag {
	t.Helper()
	tg, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tg
}

func TestNewDefaults(t *testing.T) {
	tg := newTestTag(t, Config{})
	if tg.Rho() != 0.3 {
		t.Fatalf("default rho = %g", tg.Rho())
	}
	if tg.cfg.Code != "fm0" || tg.cfg.WarmupChips != 16 {
		t.Fatalf("defaults: %+v", tg.cfg)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Rho: 2}); err == nil {
		t.Fatal("rho > 1 must error")
	}
	if _, err := New(Config{Code: "bogus"}); err == nil {
		t.Fatal("bad code must error")
	}
	if _, err := New(Config{DetectorCutoffHz: 1000}); err == nil {
		t.Fatal("detector RC without sample rate must error")
	}
}

// buildAcquireBlock renders pad + preamble + header chips at a channel
// amplitude.
func buildAcquireBlock(t *testing.T, modem phy.OOK, warmup int, hdr phy.Header, padChips int, amp float64) sigproc.IQ {
	t.Helper()
	code := &phy.FM0{}
	var wave sigproc.IQ
	wave = modem.AppendIdle(wave, padChips)
	wave = modem.AppendChips(wave, phy.DefaultPreambleChips(warmup))
	hdrBytes := hdr.AppendBinary(nil)
	bits := sigproc.BytesToBits(hdrBytes, nil)
	wave = modem.AppendChips(wave, code.Encode(bits, nil))
	return wave.ScaleReal(amp)
}

func testHeader(payloadLen int, chunkSize uint8) phy.Header {
	return phy.Header{
		Version: phy.ProtocolVersion, Type: phy.FrameData, Seq: 9,
		PayloadLen: uint16(payloadLen), Rate: 1, ChunkSize: chunkSize,
	}
}

func TestAcquireDecodesHeader(t *testing.T) {
	modem := phy.OOK{SamplesPerChip: 4}
	hdr := testHeader(64, 16)
	block := buildAcquireBlock(t, modem, 16, hdr, 12, 0.01)
	tg := newTestTag(t, Config{Modem: modem})
	states, res := tg.Acquire(block, 0, 1e6)
	if !res.OK {
		t.Fatalf("acquire failed: %+v", res)
	}
	if res.Header != hdr {
		t.Fatalf("header = %+v, want %+v", res.Header, hdr)
	}
	if res.SyncIndex != 12*4 {
		t.Fatalf("sync index = %d, want 48", res.SyncIndex)
	}
	if math.Abs(res.AmpEstimate-0.01) > 0.001 {
		t.Fatalf("amp estimate = %g", res.AmpEstimate)
	}
	// Tag must hold absorb for the whole acquisition.
	for _, s := range states {
		if s != feedback.StateAbsorb {
			t.Fatal("tag must absorb during acquisition")
		}
	}
	if !tg.Acquired() || tg.Header() != hdr {
		t.Fatal("acquired state not recorded")
	}
}

func TestAcquireFailsOnNoise(t *testing.T) {
	modem := phy.OOK{SamplesPerChip: 4}
	tg := newTestTag(t, Config{Modem: modem})
	// Pure idle carrier: no preamble to find.
	block := modem.AppendIdle(nil, 600)
	_, res := tg.Acquire(block, 0, 0)
	if res.OK {
		t.Fatal("acquire must fail without a preamble")
	}
	if tg.Acquired() {
		t.Fatal("tag must not claim acquisition")
	}
}

func TestAcquireFailsOnCorruptHeader(t *testing.T) {
	modem := phy.OOK{SamplesPerChip: 4}
	hdr := testHeader(16, 8)
	block := buildAcquireBlock(t, modem, 16, hdr, 4, 1)
	// Smash the header region (after preamble) to break its CRC while
	// keeping the preamble intact.
	pre := (4 + 16 + 13) * 4
	for i := pre + 8; i < pre+200; i++ {
		block[i] = 1 // constant level destroys FM0 transitions
	}
	tg := newTestTag(t, Config{Modem: modem})
	_, res := tg.Acquire(block, 0, 0)
	if res.OK {
		t.Fatal("corrupt header must not acquire")
	}
}

func TestProcessChunkPanicsUnacquired(t *testing.T) {
	tg := newTestTag(t, Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tg.ProcessChunk(sigproc.NewIQ(16), 0, 0)
}

// buildChunkBlock renders chunk idx of a frame at channel amplitude amp,
// continuing the FM0 encoder state from the header+previous chunks the
// way the reader's contiguous encode does. For test simplicity we encode
// the whole frame and slice.
func buildFrameChips(t *testing.T, hdr phy.Header, payload []byte) []byte {
	t.Helper()
	wire, err := phy.BuildFrame(hdr, payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	code := &phy.FM0{}
	bits := sigproc.BytesToBits(wire, nil)
	return code.Encode(bits, nil)
}

func TestFullFrameChunkPipeline(t *testing.T) {
	modem := phy.OOK{SamplesPerChip: 4}
	payload := make([]byte, 48)
	for i := range payload {
		payload[i] = byte(i ^ 0x5A)
	}
	hdr := testHeader(len(payload), 16) // 3 chunks
	chips := buildFrameChips(t, hdr, payload)
	cpb := 2 // fm0
	sps := modem.SamplesPerChipN()

	// Acquire block: pad + preamble + header chips.
	hdrChips := phy.HeaderSize * 8 * cpb
	var wave sigproc.IQ
	wave = modem.AppendIdle(wave, 8)
	wave = modem.AppendChips(wave, phy.DefaultPreambleChips(16))
	wave = modem.AppendChips(wave, chips)
	const amp = 0.005
	wave.ScaleReal(amp)

	acqEnd := (8 + 16 + 13 + hdrChips) * sps
	tg := newTestTag(t, Config{Modem: modem})
	_, res := tg.Acquire(wave[:acqEnd+16], acqEnd, 1e6)
	if !res.OK {
		t.Fatalf("acquire failed: %+v", res)
	}

	// Chunk blocks follow (each 17 wire bytes; last + trailer 2 bytes).
	off := acqEnd
	var allStates [][]byte
	for i := 0; i < 3; i++ {
		wb := 17 * 8 * cpb * sps
		if i == 2 {
			wb += phy.FrameTrailerSize * 8 * cpb * sps
		}
		states := tg.ProcessChunk(wave[off:min(off+wb+16, len(wave))], wb, 1e6)
		if len(states) != wb {
			t.Fatalf("chunk %d: states len %d, want %d", i, len(states), wb)
		}
		cp := make([]byte, len(states))
		copy(cp, states)
		allStates = append(allStates, cp)
		off += wb
	}
	// All chunks clean -> all OK.
	oks := tg.ChunkResults()
	for i, ok := range oks {
		if !ok {
			t.Fatalf("chunk %d failed CRC on a clean channel", i)
		}
	}
	if !bytes.Equal(tg.Payload(), payload) {
		t.Fatal("payload not recovered")
	}
	// Chunk 0 carries the header ACK (Manchester '1': reflect then
	// absorb).
	s0 := allStates[0]
	if s0[0] != feedback.StateReflect || s0[len(s0)-1] != feedback.StateAbsorb {
		t.Fatal("header ACK must be Manchester 1 over chunk 0")
	}
	// Flush slot carries chunk 2's ACK.
	flush := tg.Flush(nil, 64, 0)
	if flush[0] != feedback.StateReflect {
		t.Fatal("flush must carry the final chunk ACK")
	}
}

func TestCorruptChunkNACKed(t *testing.T) {
	modem := phy.OOK{SamplesPerChip: 4}
	payload := make([]byte, 32)
	hdr := testHeader(len(payload), 16) // 2 chunks
	chips := buildFrameChips(t, hdr, payload)
	cpb, sps := 2, 4
	var wave sigproc.IQ
	wave = modem.AppendIdle(wave, 8)
	wave = modem.AppendChips(wave, phy.DefaultPreambleChips(16))
	wave = modem.AppendChips(wave, chips)

	acqEnd := (8 + 16 + 13 + phy.HeaderSize*8*cpb) * sps
	tg := newTestTag(t, Config{Modem: modem})
	if _, res := tg.Acquire(wave[:acqEnd+16], acqEnd, 0); !res.OK {
		t.Fatal("acquire failed")
	}
	wb := 17 * 8 * cpb * sps
	// Chunk 0: corrupt its samples (flatten a stretch -> FM0 errors).
	blk := wave[acqEnd : acqEnd+wb].Clone()
	for i := 100; i < 400; i++ {
		blk[i] = complex(0.6, 0)
	}
	tg.ProcessChunk(blk, 0, 0)
	// Chunk 1 intact (+ trailer).
	start := acqEnd + wb
	states := tg.ProcessChunk(wave[start:start+wb+phy.FrameTrailerSize*8*cpb*sps], 0, 0)
	oks := tg.ChunkResults()
	if oks[0] {
		t.Fatal("corrupted chunk 0 must fail CRC")
	}
	if !oks[1] {
		t.Fatal("clean chunk 1 must pass CRC")
	}
	// Chunk 1's block carries chunk 0's NACK: Manchester '0' = absorb
	// first half.
	if states[0] != feedback.StateAbsorb || states[len(states)-1] != feedback.StateReflect {
		t.Fatal("chunk 1 block must carry a NACK for chunk 0")
	}
}

func TestReflectWaveform(t *testing.T) {
	incident := sigproc.IQ{2, 2, 2, 2}
	states := []byte{1, 0, 1, 0}
	refl := ReflectWaveform(incident, states, 0.25, nil)
	if real(refl[0]) != 1 || refl[1] != 0 || real(refl[2]) != 1 {
		t.Fatalf("reflected = %v", refl)
	}
}

func TestReflectWaveformPanicsOnShortStates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ReflectWaveform(sigproc.NewIQ(4), []byte{1}, 0.5, nil)
}

func TestEnergyAccountingReflectCostsPower(t *testing.T) {
	mk := func(rho float64) float64 {
		tg := newTestTag(t, Config{
			Rho:       rho,
			Harvester: energy.Harvester{Efficiency: 1, SensitivityW: 0},
			Capacitor: energy.Capacitor{CapacitanceF: 1, MaxVoltageV: 100, MinVoltageV: 0.001},
		})
		tg.budget.Cap.SetVoltage(1)
		e0 := tg.StoredEnergy()
		incident := sigproc.NewIQ(1000).Fill(1) // 1 W per sample
		states := make([]byte, 1000)
		for i := range states {
			states[i] = feedback.StateReflect
		}
		tg.accountEnergy(incident, states, 1e3) // 1 s total
		return tg.StoredEnergy() - e0
	}
	quarter := mk(0.25) // reflect a quarter of the power -> harvest 0.75
	half := mk(0.5)     // reflect half -> harvest 0.5
	if quarter <= half {
		t.Fatalf("more reflection must cost harvested energy: %g vs %g", quarter, half)
	}
	if math.Abs(quarter-0.75) > 0.01 || math.Abs(half-0.5) > 0.01 {
		t.Fatalf("harvest split wrong: rho=0.25 -> %g (want 0.75), rho=0.5 -> %g (want 0.5)", quarter, half)
	}
}

func TestDetectorRCStillDecodes(t *testing.T) {
	const fs = 1e6
	modem := phy.OOK{SamplesPerChip: 8}
	hdr := testHeader(16, 16)
	block := buildAcquireBlock(t, modem, 16, hdr, 6, 0.01)
	tg := newTestTag(t, Config{
		Modem:            modem,
		DetectorCutoffHz: fs / 8, // well above the chip rate
		SampleRate:       fs,
	})
	// View extends one chip past the block to absorb RC group delay.
	blockLen := len(block)
	block = append(block, buildAcquireBlock(t, modem, 0, hdr, 2, 0.01)[:8]...)
	_, res := tg.Acquire(block, blockLen, fs)
	if !res.OK {
		t.Fatal("acquire must survive a reasonable detector RC")
	}
	if res.ChipOffset == 0 {
		t.Log("note: RC delay did not shift chip boundaries (acceptable)")
	}
}

func TestFlushWithIncidentAccountsEnergy(t *testing.T) {
	tg := newTestTag(t, Config{
		Harvester: energy.Harvester{Efficiency: 1, SensitivityW: 0},
		Capacitor: energy.Capacitor{CapacitanceF: 1, MaxVoltageV: 100, MinVoltageV: 0.001},
	})
	tg.budget.Cap.SetVoltage(1)
	e0 := tg.StoredEnergy()
	tg.Flush(sigproc.NewIQ(100).Fill(1), 0, 1e3)
	if tg.StoredEnergy() <= e0 {
		t.Fatal("flush with incident energy must harvest")
	}
}

func TestAcquireResetsPreviousFrame(t *testing.T) {
	modem := phy.OOK{SamplesPerChip: 4}
	hdr := testHeader(16, 16)
	block := buildAcquireBlock(t, modem, 16, hdr, 4, 1)
	tg := newTestTag(t, Config{Modem: modem})
	if _, res := tg.Acquire(block, 0, 0); !res.OK {
		t.Fatal("first acquire failed")
	}
	// Second acquire on garbage must clear the acquired flag.
	if _, res := tg.Acquire(modem.AppendIdle(nil, 400), 0, 0); res.OK {
		t.Fatal("garbage acquire must fail")
	}
	if tg.Acquired() {
		t.Fatal("failed acquire must reset state")
	}
}
