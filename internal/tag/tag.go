// Package tag models the battery-free backscatter tag: a two-impedance
// antenna switch (reflect/absorb), a diode envelope detector feeding a
// comparator-based decoder, an RF energy harvester with a storage
// capacitor, and the full-duplex logic that validates forward chunks as
// they arrive and backscatters per-chunk ACK/NACK while still receiving.
//
// The tag is driven in phases by the waveform link (internal/core):
// Acquire consumes the preamble+header block and locks timing; then one
// ProcessChunk call per chunk; then Flush for the trailing feedback slot.
// Each call returns the per-sample antenna states the tag held during
// that block, which the link turns into the reflected waveform the
// reader sees.
//
// Block views and margins: the incident buffer passed to Acquire and
// ProcessChunk is a VIEW of the continuous incident waveform that may
// extend up to one chip beyond the region the call emits antenna states
// for (stateLen). The margin lets the decoder absorb the small group
// delay of the envelope-detector RC, which shifts chip boundaries by a
// sample or two: the tag measures the residual offset during preamble
// sync and reads each chunk's chips at that offset, borrowing the margin
// samples when the last chip straddles the block edge.
package tag

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/energy"
	"repro/internal/feedback"
	"repro/internal/phy"
	"repro/internal/sigproc"
)

// Config describes a tag.
type Config struct {
	// Modem must match the reader's forward-link modem.
	Modem phy.OOK
	// Code is the forward line code name (default "fm0").
	Code string
	// Rho is the reflection coefficient: fraction of incident POWER
	// re-radiated while in the reflect state. Default 0.3.
	Rho float64
	// WarmupChips is the preamble warmup length, matching the reader.
	// Default 16.
	WarmupChips int
	// MinSyncCorr is the preamble detection threshold (default 0.7).
	MinSyncCorr float64
	// DetectorCutoffHz, when positive, low-pass filters the envelope with
	// a single-pole RC at this cutoff, modelling the diode detector's RC.
	// Zero disables the filter (ideal detector).
	DetectorCutoffHz float64
	// SampleRate is required when DetectorCutoffHz > 0.
	SampleRate float64
	// Harvester and Capacitor model the power subsystem; CircuitW is the
	// tag's continuous consumption. Leave zero to use defaults.
	Harvester energy.Harvester
	Capacitor energy.Capacitor
	CircuitW  float64
}

// Tag is a full-duplex backscatter tag instance. Not safe for concurrent
// use.
type Tag struct {
	cfg      Config
	code     phy.LineCode
	sync     *phy.PreambleDetector
	budget   energy.Budget
	detector *sigproc.SinglePoleIIR

	// Frame state.
	muted      bool
	acquired   bool
	header     phy.Header
	ampEst     float64
	chipOffset int // residual sample offset of chip boundaries in chunk views
	chunkIdx   int
	chunkOK    []bool
	payload    []byte
	pendingBit int // -1 none, else 0/1 feedback bit awaiting transmission

	// Scratch buffers reused across blocks.
	envBuf    []float64
	levelBuf  []float64
	bitBuf    []byte
	byteBuf   []byte
	statesBuf []byte
}

// New returns a tag with the given configuration.
func New(cfg Config) (*Tag, error) {
	t := &Tag{}
	if err := t.Reconfigure(cfg); err != nil {
		return nil, err
	}
	return t, nil
}

// Reconfigure re-initialises the tag in place for a new configuration,
// keeping the block-sized scratch buffers of the old one (the preamble
// correlator is rebuilt only when the modem or warmup changes). The
// result behaves exactly like New(cfg).
func (t *Tag) Reconfigure(cfg Config) error {
	if cfg.Code == "" {
		cfg.Code = "fm0"
	}
	code, err := phy.CodeByName(cfg.Code)
	if err != nil {
		return err
	}
	if cfg.Rho == 0 {
		cfg.Rho = 0.3
	}
	if cfg.Rho < 0 || cfg.Rho > 1 {
		return fmt.Errorf("tag: rho %g outside [0, 1]", cfg.Rho)
	}
	if cfg.WarmupChips == 0 {
		cfg.WarmupChips = 16
	}
	if cfg.MinSyncCorr == 0 {
		cfg.MinSyncCorr = 0.7
	}
	if cfg.DetectorCutoffHz > 0 && cfg.SampleRate <= 0 {
		return errors.New("tag: detector RC requires SampleRate")
	}
	if t.sync == nil || t.cfg.Modem != cfg.Modem || t.cfg.WarmupChips != cfg.WarmupChips {
		t.sync = phy.NewPreambleDetector(phy.PreambleTemplate(cfg.Modem, phy.DefaultPreambleChips(cfg.WarmupChips)))
	}
	t.cfg = cfg
	t.code = code
	t.detector = nil
	if cfg.DetectorCutoffHz > 0 {
		t.detector = sigproc.NewSinglePoleIIR(cfg.DetectorCutoffHz, cfg.SampleRate)
	}
	t.budget = energy.Budget{Harvester: cfg.Harvester, Cap: cfg.Capacitor, CircuitW: cfg.CircuitW}
	t.budget.Cap.SetVoltage(t.budget.Cap.MaxVoltageV)
	t.resetFrame()
	t.muted = false
	return nil
}

// Rho returns the configured reflection coefficient.
func (t *Tag) Rho() float64 { return t.cfg.Rho }

// SetMute silences (true) or re-enables (false) the tag's backscatter
// feedback transmitter. While muted the tag still decodes the forward
// link and harvests, but never reflects — the half-duplex ablation.
func (t *Tag) SetMute(m bool) { t.muted = m }

// MarginSamples returns the view margin (in samples) the link should
// extend each block by so the tag can absorb detector group delay.
func (t *Tag) MarginSamples() int { return t.cfg.Modem.SamplesPerChipN() }

// envelope computes the detector output for a view. The persistent RC
// state advances only over the first stateLen samples (each physical
// sample is filtered exactly once across calls); the overlap margin is
// filtered with a copy of the state.
func (t *Tag) envelope(view sigproc.IQ, stateLen int) []float64 {
	t.envBuf = view.Envelope(t.envBuf[:0])
	if t.detector == nil {
		return t.envBuf
	}
	if stateLen > len(t.envBuf) {
		stateLen = len(t.envBuf)
	}
	for i := 0; i < stateLen; i++ {
		t.envBuf[i] = t.detector.Push(t.envBuf[i])
	}
	scratch := *t.detector // value copy: margin does not advance state
	for i := stateLen; i < len(t.envBuf); i++ {
		t.envBuf[i] = scratch.Push(t.envBuf[i])
	}
	return t.envBuf
}

// accountEnergy charges the energy budget for one block given the
// antenna states held during it. Reflecting forfeits Rho of the incident
// power.
func (t *Tag) accountEnergy(incident sigproc.IQ, states []byte, sampleRate float64) {
	if sampleRate <= 0 || len(incident) == 0 {
		return
	}
	n := len(states)
	if len(incident) < n {
		n = len(incident)
	}
	var harvestable float64
	for i := 0; i < n; i++ {
		v := incident[i]
		p := real(v)*real(v) + imag(v)*imag(v)
		if states[i] == feedback.StateReflect {
			_, h := energy.SplitIncident(p, t.cfg.Rho)
			harvestable += h
		} else {
			harvestable += p
		}
	}
	dt := float64(n) / sampleRate
	t.budget.Step(harvestable/float64(n), dt)
}

// AcquireResult reports the outcome of the acquisition phase.
type AcquireResult struct {
	// OK reports whether preamble sync and header decode both succeeded.
	OK bool
	// Header is the decoded frame header when OK.
	Header phy.Header
	// SyncIndex is the sample offset of the preamble peak in the block.
	SyncIndex int
	// AmpEstimate is the estimated forward channel amplitude gain.
	AmpEstimate float64
	// ChipOffset is the residual chip-boundary offset carried into the
	// chunk blocks (detector group delay).
	ChipOffset int
}

// Acquire processes the view containing idle padding, preamble and
// header; stateLen is the true block length (the view may extend one
// chip beyond it). The tag holds absorb throughout (it has no timing
// yet). SampleRate (Hz) is used for energy accounting; pass 0 to skip.
func (t *Tag) Acquire(view sigproc.IQ, stateLen int, sampleRate float64) (states []byte, res AcquireResult) {
	t.resetFrame()
	if stateLen <= 0 || stateLen > len(view) {
		stateLen = len(view)
	}
	t.statesBuf = feedback.AppendIdleStates(t.statesBuf[:0], stateLen)
	states = t.statesBuf
	t.accountEnergy(view[:stateLen], states, sampleRate)

	env := t.envelope(view, stateLen)
	sync, ok := t.sync.Detect(env, t.cfg.MinSyncCorr)
	if !ok {
		return states, AcquireResult{}
	}
	amp := phy.EstimateChannelAmp(env, t.sync.Template(), sync.PeakIndex)
	// Decode the header: HeaderSize bytes of line-coded chips follow the
	// preamble.
	nChips := phy.HeaderSize * 8 * t.code.ChipsPerBit()
	t.levelBuf = t.cfg.Modem.ChipLevels(env, sync.Start, t.levelBuf[:0])
	res = AcquireResult{SyncIndex: sync.PeakIndex, AmpEstimate: amp}
	if len(t.levelBuf) < nChips {
		return states, res
	}
	t.bitBuf = t.decodeBits(t.levelBuf[:nChips], amp, t.bitBuf[:0])
	t.byteBuf = sigproc.BitsToBytes(t.bitBuf, t.byteBuf[:0])
	hdr, err := phy.ParseHeader(t.byteBuf)
	if err != nil {
		return states, res
	}
	// Residual offset of chip boundaries relative to the next block:
	// where the header's chips ended versus where the block ends.
	sps := t.cfg.Modem.SamplesPerChipN()
	off := sync.Start + nChips*sps - stateLen
	if off < 0 || off >= sps {
		off = 0
	}
	t.acquired = true
	t.header = hdr
	t.ampEst = amp
	t.chipOffset = off
	if n := hdr.NumChunks(); cap(t.chunkOK) < n {
		t.chunkOK = make([]bool, n)
	} else {
		t.chunkOK = t.chunkOK[:n]
		for i := range t.chunkOK {
			t.chunkOK[i] = false
		}
	}
	t.payload = t.payload[:0]
	t.pendingBit = 1 // header-ACK rides on the first chunk block
	res.OK, res.Header, res.ChipOffset = true, hdr, off
	return states, res
}

// decodeBits slices chips into bits using the configured line code; NRZ
// needs the amplitude-scaled threshold, the differential codes derive
// their own.
func (t *Tag) decodeBits(levels []float64, amp float64, dst []byte) []byte {
	thr := 0.0
	if t.code.Name() == "nrz" {
		thr = t.cfg.Modem.SliceThreshold(amp)
	}
	return t.code.Decode(levels, thr, dst)
}

// Acquired reports whether the tag locked onto a frame.
func (t *Tag) Acquired() bool { return t.acquired }

// Header returns the decoded header (valid after a successful Acquire).
func (t *Tag) Header() phy.Header { return t.header }

// ProcessChunk consumes the view carrying chunk index t.chunkIdx (plus
// up to one chip of margin) and returns the antenna states held during
// the block's stateLen samples: the feedback bit pending from the
// previous chunk (or the header ACK for chunk 0), Manchester coded
// across the whole block. SampleRate is for energy accounting.
//
// It panics if called before a successful Acquire or after the last
// chunk.
func (t *Tag) ProcessChunk(view sigproc.IQ, stateLen int, sampleRate float64) (states []byte) {
	if !t.acquired {
		panic("tag: ProcessChunk before successful Acquire")
	}
	if t.chunkIdx >= t.header.NumChunks() {
		panic("tag: ProcessChunk past last chunk")
	}
	if stateLen <= 0 || stateLen > len(view) {
		stateLen = len(view)
	}
	states = t.emitFeedback(stateLen)
	t.accountEnergy(view[:stateLen], states, sampleRate)

	env := t.envelope(view, stateLen)
	// Antenna-mismatch penalty: while the tag reflects, only (1-rho) of
	// the incident power reaches its own detector, so the envelope it
	// decodes from is attenuated by sqrt(1-rho) over the reflect
	// samples. This is the physical cost concurrent feedback imposes on
	// the forward link (fig3's mechanism).
	att := math.Sqrt(1 - t.cfg.Rho)
	for i, st := range states {
		if st == feedback.StateReflect && i < len(env) {
			env[i] *= att
		}
	}
	t.levelBuf = t.cfg.Modem.ChipLevels(env, t.chipOffset, t.levelBuf[:0])
	t.bitBuf = t.decodeBits(t.levelBuf, t.ampEst, t.bitBuf[:0])
	chunkBytes := sigproc.BitsToBytes(t.bitBuf, t.byteBuf[:0])
	t.byteBuf = chunkBytes

	idx := t.chunkIdx
	s, e := t.header.ChunkPayloadRange(idx)
	wantLen := e - s + 1 // chunk payload + CRC byte
	ok := false
	if len(chunkBytes) >= wantLen {
		data := chunkBytes[:wantLen-1]
		crc := chunkBytes[wantLen-1]
		ok = phy.ChunkCRC(t.header.Seq, idx, data) == crc
		t.payload = append(t.payload, data...)
	} else {
		// Short decode: deliver what we have, zero-padded, and fail the
		// CRC.
		t.payload = append(t.payload, chunkBytes...)
		for i := len(chunkBytes); i < e-s; i++ {
			t.payload = append(t.payload, 0)
		}
	}
	t.chunkOK[idx] = ok
	t.chunkIdx++
	bit := 0
	if ok {
		bit = 1
	}
	t.pendingBit = bit
	return states
}

// Flush returns the antenna states for the trailing feedback slot of n
// samples, carrying the final chunk's ACK/NACK. SampleRate is for energy
// accounting; the incident block may be nil when the caller does its own
// accounting.
func (t *Tag) Flush(incident sigproc.IQ, n int, sampleRate float64) (states []byte) {
	if len(incident) > 0 {
		n = len(incident)
	}
	states = t.emitFeedback(n)
	if len(incident) > 0 {
		t.accountEnergy(incident, states, sampleRate)
	}
	return states
}

// emitFeedback renders the pending feedback bit (if any) over a block of
// n samples, Manchester coded, and clears it.
func (t *Tag) emitFeedback(n int) []byte {
	t.statesBuf = t.statesBuf[:0]
	if t.muted {
		t.pendingBit = -1
		t.statesBuf = feedback.AppendIdleStates(t.statesBuf, n)
		return t.statesBuf
	}
	if t.pendingBit < 0 || n < 2 {
		t.statesBuf = feedback.AppendIdleStates(t.statesBuf, n)
		return t.statesBuf
	}
	cfg := feedback.Config{SamplesPerBit: n, Code: feedback.CodeManchester}
	t.statesBuf = cfg.AppendStates(t.statesBuf, []byte{byte(t.pendingBit)})
	t.pendingBit = -1
	return t.statesBuf
}

// ChunkResults returns the per-chunk CRC outcomes recorded so far.
func (t *Tag) ChunkResults() []bool {
	out := make([]bool, len(t.chunkOK))
	copy(out, t.chunkOK)
	return out
}

// ChunkResultsView returns the per-chunk CRC outcomes recorded so far
// as a view of the tag's internal state: valid only until the next
// Acquire, and not to be mutated. The allocation-free form of
// ChunkResults for per-frame loops.
func (t *Tag) ChunkResultsView() []bool { return t.chunkOK }

// ChunksExpected returns the number of chunks the tag's decoded header
// announces (which differs from the transmitted frame when a corrupted
// header slipped past its CRC-8). Zero before a successful Acquire.
func (t *Tag) ChunksExpected() int {
	if !t.acquired {
		return 0
	}
	return t.header.NumChunks()
}

// Payload returns the payload bytes recovered so far (possibly corrupt
// in chunks whose CRC failed).
func (t *Tag) Payload() []byte {
	out := make([]byte, len(t.payload))
	copy(out, t.payload)
	return out
}

// PayloadView returns the recovered payload as a view of the tag's
// internal buffer: valid only until the next Acquire, and not to be
// mutated. The allocation-free form of Payload for per-frame loops.
func (t *Tag) PayloadView() []byte { return t.payload }

// Reset restores the tag to its power-on state — frame machine idle,
// capacitor recharged, outage statistics cleared — reusing all internal
// buffers. After Reset the tag behaves exactly like a freshly
// constructed one.
func (t *Tag) Reset() {
	t.resetFrame()
	t.muted = false
	t.budget.Reset()
	t.budget.Cap.SetVoltage(t.budget.Cap.MaxVoltageV)
}

// HarvestedOutageFraction reports the fraction of accounted time the tag
// spent browned out.
func (t *Tag) HarvestedOutageFraction() float64 { return t.budget.OutageFraction() }

// StoredEnergy returns the capacitor energy in joules.
func (t *Tag) StoredEnergy() float64 { return t.budget.Cap.Energy() }

// resetFrame clears per-frame state.
func (t *Tag) resetFrame() {
	t.acquired = false
	t.header = phy.Header{}
	t.ampEst = 0
	t.chipOffset = 0
	t.chunkIdx = 0
	t.chunkOK = t.chunkOK[:0]
	t.payload = t.payload[:0]
	t.pendingBit = -1
	if t.detector != nil {
		t.detector.Reset()
	}
}

// ReflectWaveform converts antenna states plus the physical incident
// waveform into the wave the tag re-radiates: sqrt(rho) * incident where
// reflecting, zero where absorbing. Written into dst (allocated if nil
// or short).
func ReflectWaveform(incident sigproc.IQ, states []byte, rho float64, dst sigproc.IQ) sigproc.IQ {
	if len(states) < len(incident) {
		panic("tag: states shorter than incident block")
	}
	if cap(dst) < len(incident) {
		dst = make(sigproc.IQ, len(incident))
	}
	dst = dst[:len(incident)]
	amp := complex(math.Sqrt(rho), 0)
	for i, v := range incident {
		if states[i] == feedback.StateReflect {
			dst[i] = v * amp
		} else {
			dst[i] = 0
		}
	}
	return dst
}
