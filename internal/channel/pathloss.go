// Package channel models the over-the-air substrate the HotNets'13
// testbed provided physically: distance-dependent path loss, block and
// correlated fading, additive white Gaussian noise, propagation delay,
// carrier frequency offset, multipath, and a multi-node Medium that ties
// node geometry to pairwise propagation paths (including the
// tag-reflection paths that make backscatter links monostatic).
//
// Conventions: path gains are LINEAR POWER gains (always <= 1 for a
// passive channel); complex channel coefficients are amplitude-domain, so
// a coefficient h scales sample power by |h|^2.
package channel

import (
	"fmt"
	"math"
)

// SpeedOfLight in metres per second.
const SpeedOfLight = 2.99792458e8

// PathLoss converts a link distance into a linear power gain.
type PathLoss interface {
	// Gain returns the linear power gain at the given distance in metres.
	Gain(distanceM float64) float64
}

// FreeSpace is the Friis free-space path loss at a carrier frequency.
// Distances below MinDistanceM (default 0.1 m) are clamped to avoid the
// unphysical near-field singularity.
type FreeSpace struct {
	FreqHz       float64
	MinDistanceM float64
}

// Gain implements PathLoss: (lambda / (4*pi*d))^2.
func (f FreeSpace) Gain(d float64) float64 {
	min := f.MinDistanceM
	if min <= 0 {
		min = 0.1
	}
	if d < min {
		d = min
	}
	lambda := SpeedOfLight / f.FreqHz
	a := lambda / (4 * math.Pi * d)
	return a * a
}

// LogDistance is the log-distance path loss model
// PL(d) = PL(d0) + 10*n*log10(d/d0), expressed as a linear gain. It is
// the standard model for indoor backscatter deployments (n typically
// 2 to 4).
type LogDistance struct {
	// RefGain is the linear power gain at the reference distance,
	// e.g. FreeSpace gain at 1 m.
	RefGain float64
	// RefDistanceM is the reference distance in metres (default 1).
	RefDistanceM float64
	// Exponent is the path loss exponent n (default 2).
	Exponent float64
	// MinDistanceM clamps small distances (default 0.1 m).
	MinDistanceM float64
}

// NewLogDistance returns a log-distance model anchored to free space at
// 1 m for the given carrier frequency, with path loss exponent n.
func NewLogDistance(freqHz, n float64) LogDistance {
	return LogDistance{
		RefGain:      FreeSpace{FreqHz: freqHz}.Gain(1),
		RefDistanceM: 1,
		Exponent:     n,
	}
}

// Gain implements PathLoss.
func (l LogDistance) Gain(d float64) float64 {
	min := l.MinDistanceM
	if min <= 0 {
		min = 0.1
	}
	if d < min {
		d = min
	}
	d0 := l.RefDistanceM
	if d0 <= 0 {
		d0 = 1
	}
	n := l.Exponent
	if n <= 0 {
		n = 2
	}
	return l.RefGain * math.Pow(d0/d, n)
}

// FixedGain is a PathLoss that ignores distance; useful in unit tests and
// calibrated-link experiments.
type FixedGain float64

// Gain implements PathLoss.
func (g FixedGain) Gain(float64) float64 { return float64(g) }

// PropagationDelaySamples returns the propagation delay over d metres in
// samples at the given sample rate.
func PropagationDelaySamples(d, sampleRate float64) float64 {
	return d / SpeedOfLight * sampleRate
}

// String implementations aid experiment logs.
func (f FreeSpace) String() string {
	return fmt.Sprintf("freespace(%.0f MHz)", f.FreqHz/1e6)
}

func (l LogDistance) String() string {
	return fmt.Sprintf("logdistance(n=%.1f)", l.Exponent)
}
