package channel

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"repro/internal/sigproc"
	"repro/internal/simrand"
)

func TestFreeSpaceGain(t *testing.T) {
	fs := FreeSpace{FreqHz: 915e6}
	// lambda ~ 0.3276 m; gain at 1 m = (lambda/4pi)^2 ~ 6.8e-4.
	g1 := fs.Gain(1)
	lambda := SpeedOfLight / 915e6
	want := math.Pow(lambda/(4*math.Pi), 2)
	if math.Abs(g1-want) > 1e-9 {
		t.Fatalf("gain(1m) = %g, want %g", g1, want)
	}
	// Inverse square: doubling distance quarters the gain.
	if r := fs.Gain(2) / g1; math.Abs(r-0.25) > 1e-9 {
		t.Fatalf("ratio = %g, want 0.25", r)
	}
}

func TestFreeSpaceClampsNearField(t *testing.T) {
	fs := FreeSpace{FreqHz: 915e6}
	if fs.Gain(0) != fs.Gain(0.1) {
		t.Fatal("near-field distances must clamp")
	}
	if fs.Gain(0.001) > 1e3 {
		t.Fatal("clamped gain exploded")
	}
}

func TestLogDistanceExponent(t *testing.T) {
	ld := NewLogDistance(915e6, 3)
	// 10x distance should cost 30 dB with n=3.
	r := ld.Gain(10) / ld.Gain(1)
	if math.Abs(sigproc.DB(r)+30) > 1e-9 {
		t.Fatalf("10x distance = %g dB, want -30", sigproc.DB(r))
	}
}

func TestLogDistanceDefaults(t *testing.T) {
	ld := LogDistance{RefGain: 1}
	// Defaults: d0=1, n=2, min 0.1.
	if r := ld.Gain(2) / ld.Gain(1); math.Abs(r-0.25) > 1e-9 {
		t.Fatalf("default exponent not 2: ratio %g", r)
	}
	if ld.Gain(0.01) != ld.Gain(0.1) {
		t.Fatal("min distance clamp missing")
	}
}

func TestFixedGain(t *testing.T) {
	g := FixedGain(0.5)
	if g.Gain(1) != 0.5 || g.Gain(100) != 0.5 {
		t.Fatal("FixedGain must ignore distance")
	}
}

func TestPathLossMonotoneProperty(t *testing.T) {
	models := []PathLoss{
		FreeSpace{FreqHz: 915e6},
		NewLogDistance(915e6, 2.5),
	}
	f := func(aRaw, bRaw uint16) bool {
		a := 0.2 + float64(aRaw%1000)/100 // 0.2..10.2 m
		b := 0.2 + float64(bRaw%1000)/100
		if a > b {
			a, b = b, a
		}
		for _, m := range models {
			if m.Gain(a) < m.Gain(b)-1e-15 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropagationDelay(t *testing.T) {
	// 300 m at 1 MHz is about one sample.
	d := PropagationDelaySamples(299.792458, 1e6)
	if math.Abs(d-1) > 1e-9 {
		t.Fatalf("delay = %g samples, want 1", d)
	}
}

func TestStaticFader(t *testing.T) {
	f := NewStaticFader(2i)
	if f.NextCoeff() != 2i || f.NextCoeff() != 2i {
		t.Fatal("static fader must not change")
	}
}

func TestRayleighFaderUnitPower(t *testing.T) {
	f := NewRayleighFader(simrand.New(1))
	var p float64
	const n = 100000
	for i := 0; i < n; i++ {
		h := f.NextCoeff()
		p += real(h)*real(h) + imag(h)*imag(h)
	}
	if got := p / n; math.Abs(got-1) > 0.05 {
		t.Fatalf("mean power = %g, want 1", got)
	}
}

func TestRicianFaderUnitPower(t *testing.T) {
	f := NewRicianFader(simrand.New(2), 5)
	var p float64
	const n = 100000
	for i := 0; i < n; i++ {
		h := f.NextCoeff()
		p += real(h)*real(h) + imag(h)*imag(h)
	}
	if got := p / n; math.Abs(got-1) > 0.05 {
		t.Fatalf("mean power = %g, want 1", got)
	}
}

func TestGaussMarkovCorrelation(t *testing.T) {
	const rho = 0.95
	f := NewGaussMarkovFader(simrand.New(3), rho)
	const n = 200000
	var prev complex128
	var crossRe, power float64
	for i := 0; i < n; i++ {
		h := f.NextCoeff()
		if i > 0 {
			crossRe += real(h * cmplx.Conj(prev))
		}
		power += real(h * cmplx.Conj(h))
		prev = h
	}
	corr := crossRe / power
	if math.Abs(corr-rho) > 0.02 {
		t.Fatalf("lag-1 correlation = %g, want %g", corr, rho)
	}
	if got := power / n; math.Abs(got-1) > 0.05 {
		t.Fatalf("stationary power = %g, want 1", got)
	}
}

func TestGaussMarkovPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGaussMarkovFader(simrand.New(1), 1.0)
}

func TestCoherenceRho(t *testing.T) {
	if CoherenceRho(1, 0) != 0 {
		t.Fatal("zero coherence time should give rho 0")
	}
	r := CoherenceRho(0.001, 0.1)
	if r < 0.98 || r >= 1 {
		t.Fatalf("slow channel rho = %g", r)
	}
	if CoherenceRho(10, 0.001) > 0.01 {
		t.Fatal("fast channel should have near-zero rho")
	}
}

func TestPathGainApplied(t *testing.T) {
	p := &Path{Gain: 0.25}
	tx := sigproc.NewIQ(64).Fill(1)
	rx := p.Apply(tx, nil)
	// Power gain 0.25 -> amplitude 0.5.
	if math.Abs(rx.Power()-0.25) > 1e-12 {
		t.Fatalf("rx power = %g, want 0.25", rx.Power())
	}
}

func TestPathAddToSuperimposes(t *testing.T) {
	p1 := &Path{Gain: 1}
	p2 := &Path{Gain: 1}
	tx := sigproc.NewIQ(8).Fill(1)
	dst := sigproc.NewIQ(8)
	p1.AddTo(tx, dst)
	p2.AddTo(tx, dst)
	if dst[0] != 2 {
		t.Fatalf("superposition = %v, want 2", dst[0])
	}
}

func TestPathAddToPanicsOnShortDst(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(&Path{Gain: 1}).AddTo(sigproc.NewIQ(8), sigproc.NewIQ(4))
}

func TestPathDelay(t *testing.T) {
	p := &Path{Gain: 1, DelaySamples: 2}
	tx := sigproc.IQ{1, 0, 0, 0}
	rx := p.Apply(tx, nil)
	if cmplx.Abs(rx[0]) > 1e-12 || cmplx.Abs(rx[2]-1) > 1e-12 {
		t.Fatalf("delayed impulse wrong: %v", rx)
	}
}

func TestPathCFORotates(t *testing.T) {
	const fs = 1e6
	p := &Path{Gain: 1, CFOHz: 1000, SampleRate: fs}
	tx := sigproc.NewIQ(1000).Fill(1)
	rx := p.Apply(tx, nil)
	// After 1000 samples at 1 kHz offset and 1 MHz fs, phase advanced
	// 2*pi*1000*(1000/1e6) = 2*pi rad -> back near start; halfway should
	// be rotated by pi.
	if cmplx.Abs(rx[500]-cmplx.Exp(complex(0, math.Pi))) > 1e-6 {
		t.Fatalf("mid-block rotation wrong: %v", rx[500])
	}
}

func TestPathCFOPhaseContinuity(t *testing.T) {
	const fs = 1e6
	p := &Path{Gain: 1, CFOHz: 12345, SampleRate: fs}
	tx := sigproc.NewIQ(100).Fill(1)
	a := p.Apply(tx, nil).Clone()
	b := p.Apply(tx, nil)
	// First sample of second block should continue the rotation, not
	// reset to phase 0.
	step := 2 * math.Pi * 12345 / fs
	wantPhase := step * 100
	got := cmplx.Phase(b[0])
	want := math.Mod(wantPhase+math.Pi, 2*math.Pi) - math.Pi
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("phase discontinuity: got %g, want %g (first block last %v)", got, want, a[99])
	}
}

func TestPathCFOWithoutRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(&Path{Gain: 1, CFOHz: 100}).Apply(sigproc.NewIQ(4), nil)
}

func TestPathFaderScales(t *testing.T) {
	p := &Path{Gain: 1, Fader: NewStaticFader(complex(0, 1))}
	tx := sigproc.IQ{1}
	rx := p.Apply(tx, nil)
	if cmplx.Abs(rx[0]-1i) > 1e-12 {
		t.Fatalf("fader coefficient not applied: %v", rx[0])
	}
}

func TestMultipathTwoRay(t *testing.T) {
	mp := NewTwoRay(1, 3, 0.25)
	tx := sigproc.IQ{1, 0, 0, 0, 0}
	rx := mp.Apply(tx, nil)
	if cmplx.Abs(rx[0]-1) > 1e-12 {
		t.Fatalf("direct tap wrong: %v", rx)
	}
	if cmplx.Abs(rx[3]-0.5) > 1e-12 { // amplitude sqrt(0.25)
		t.Fatalf("echo tap wrong: %v", rx)
	}
}

func TestMediumDistanceAndGain(t *testing.T) {
	m := NewMedium(MediumConfig{PathLoss: FixedGain(0.5)})
	m.AddNode("a", 0, 0)
	m.AddNode("b", 3, 4)
	if d := m.Distance("a", "b"); math.Abs(d-5) > 1e-12 {
		t.Fatalf("distance = %g, want 5", d)
	}
	if g := m.Gain("a", "b"); g != 0.5 {
		t.Fatalf("gain = %g", g)
	}
}

func TestMediumUnknownNodePanics(t *testing.T) {
	m := NewMedium(MediumConfig{})
	m.AddNode("a", 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Distance("a", "ghost")
}

func TestMediumPathCachedAndDirected(t *testing.T) {
	m := NewMedium(MediumConfig{PathLoss: FixedGain(1)})
	m.AddNode("a", 0, 0)
	m.AddNode("b", 1, 0)
	p1 := m.Path("a", "b")
	p2 := m.Path("a", "b")
	if p1 != p2 {
		t.Fatal("path must be cached")
	}
	if m.Path("b", "a") == p1 {
		t.Fatal("reverse path must be distinct")
	}
}

func TestMediumMoveInvalidatesPaths(t *testing.T) {
	m := NewMedium(MediumConfig{PathLoss: NewLogDistance(915e6, 2)})
	m.AddNode("a", 0, 0)
	m.AddNode("b", 1, 0)
	g1 := m.Path("a", "b").Gain
	m.AddNode("b", 10, 0) // move
	g2 := m.Path("a", "b").Gain
	if g2 >= g1 {
		t.Fatalf("moving farther should reduce gain: %g -> %g", g1, g2)
	}
}

func TestMediumDefaultPathLoss(t *testing.T) {
	m := NewMedium(MediumConfig{})
	m.AddNode("a", 0, 0)
	m.AddNode("b", 2, 0)
	if g := m.Gain("a", "b"); g <= 0 || g >= 1 {
		t.Fatalf("default path loss gain out of range: %g", g)
	}
}

func TestMediumNodesSorted(t *testing.T) {
	m := NewMedium(MediumConfig{})
	m.AddNode("zeta", 0, 0)
	m.AddNode("alpha", 1, 1)
	names := m.Nodes()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Fatalf("Nodes() = %v", names)
	}
}

func TestMediumNoise(t *testing.T) {
	m := NewMedium(MediumConfig{NoisePower: 0.1, Seed: 5})
	x := make([]complex128, 50000)
	m.AddNoise(x)
	var p float64
	for _, v := range x {
		p += real(v)*real(v) + imag(v)*imag(v)
	}
	p /= float64(len(x))
	if math.Abs(p-0.1) > 0.01 {
		t.Fatalf("noise power = %g, want 0.1", p)
	}
	if m.NoisePower() != 0.1 {
		t.Fatal("NoisePower accessor mismatch")
	}
}

func TestMediumFadingKinds(t *testing.T) {
	for _, k := range []FadingKind{FadingRayleigh, FadingRician, FadingGaussMarkov} {
		m := NewMedium(MediumConfig{
			PathLoss: FixedGain(1), Fading: k, RicianK: 3,
			GaussMarkovRho: 0.9, Seed: 7,
		})
		m.AddNode("a", 0, 0)
		m.AddNode("b", 1, 0)
		p := m.Path("a", "b")
		m.BlockStart()
		c1 := p.Coeff()
		m.BlockStart()
		c2 := p.Coeff()
		if c1 == c2 {
			t.Fatalf("%v fading should vary between blocks", k)
		}
	}
}

func TestMediumDeterministicAcrossRuns(t *testing.T) {
	run := func() complex128 {
		m := NewMedium(MediumConfig{PathLoss: FixedGain(1), Fading: FadingRayleigh, Seed: 99})
		m.AddNode("a", 0, 0)
		m.AddNode("b", 1, 0)
		p := m.Path("a", "b")
		m.BlockStart()
		return p.Coeff()
	}
	if run() != run() {
		t.Fatal("same seed must reproduce the same fading")
	}
}

func TestFadingKindString(t *testing.T) {
	if FadingRayleigh.String() != "rayleigh" || FadingKind(99).String() == "" {
		t.Fatal("FadingKind.String broken")
	}
}

func TestPhaseRotate(t *testing.T) {
	h := PhaseRotate(1, math.Pi)
	if cmplx.Abs(h+1) > 1e-12 {
		t.Fatalf("rotated = %v, want -1", h)
	}
}
