package channel

import (
	"math"
	"math/cmplx"

	"repro/internal/sigproc"
)

// Path applies one directed propagation path to a block of transmit
// samples: amplitude gain from path loss, a per-block fading coefficient,
// fractional-sample propagation delay, and carrier frequency offset.
// A Path is the unit the Medium hands out; it can also be built directly
// for calibrated point-to-point experiments.
type Path struct {
	// Gain is the linear POWER gain of the path (path loss); the applied
	// amplitude gain is sqrt(Gain).
	Gain float64
	// Fader supplies the per-block small-scale coefficient; nil means an
	// ideal (coefficient 1) channel.
	Fader Fader
	// DelaySamples is the propagation delay in samples (may be
	// fractional).
	DelaySamples float64
	// CFOHz is the residual carrier frequency offset between the two
	// radios; 0 for the monostatic backscatter path (same oscillator).
	CFOHz float64
	// SampleRate is required when CFOHz != 0.
	SampleRate float64

	coeff    complex128
	haveCoef bool
	phase    float64
	delayBuf sigproc.IQ
}

// BlockStart draws the fading coefficient for the next coherence block.
// Call once per block before Apply/AddTo; if never called, the first use
// draws automatically.
func (p *Path) BlockStart() {
	if p.Fader != nil {
		p.coeff = p.Fader.NextCoeff()
	} else {
		p.coeff = 1
	}
	p.haveCoef = true
}

// Coeff returns the current composite amplitude coefficient
// sqrt(Gain) * fading.
func (p *Path) Coeff() complex128 {
	if !p.haveCoef {
		p.BlockStart()
	}
	return complex(math.Sqrt(p.Gain), 0) * p.coeff
}

// Apply writes the path output for tx into dst (allocated if nil or
// short) and returns dst. The output has the same length as the input.
func (p *Path) Apply(tx sigproc.IQ, dst sigproc.IQ) sigproc.IQ {
	if cap(dst) < len(tx) {
		dst = make(sigproc.IQ, len(tx))
	}
	dst = dst[:len(tx)]
	dst.Zero()
	p.AddTo(tx, dst)
	return dst
}

// AddTo accumulates the path output for tx into dst, which must be at
// least as long as tx. Use this to superimpose several transmitters at a
// receiver.
func (p *Path) AddTo(tx sigproc.IQ, dst sigproc.IQ) {
	if len(dst) < len(tx) {
		panic("channel: AddTo destination shorter than input")
	}
	h := p.Coeff()
	src := tx
	if p.DelaySamples != 0 {
		p.delayBuf = sigproc.FractionalDelay(tx, p.DelaySamples, p.delayBuf)
		src = p.delayBuf
	}
	if p.CFOHz == 0 {
		for i, v := range src {
			dst[i] += v * h
		}
		return
	}
	if p.SampleRate <= 0 {
		panic("channel: CFO requires a positive SampleRate")
	}
	step := 2 * math.Pi * p.CFOHz / p.SampleRate
	ph := p.phase
	for i, v := range src {
		rot := cmplx.Exp(complex(0, ph))
		dst[i] += v * h * rot
		ph += step
	}
	// Keep phase continuous across blocks, wrapped to avoid precision loss.
	p.phase = math.Mod(ph, 2*math.Pi)
}

// Multipath is a tapped-delay-line channel: a sum of Paths with
// different delays and gains sharing one fading draw pattern.
type Multipath struct {
	Taps []Path
}

// NewTwoRay returns a classic two-ray multipath with a direct tap and one
// echo delayed by delaySamples carrying echoPower of the direct power.
func NewTwoRay(gain float64, delaySamples, echoPower float64) *Multipath {
	return &Multipath{Taps: []Path{
		{Gain: gain},
		{Gain: gain * echoPower, DelaySamples: delaySamples},
	}}
}

// BlockStart starts a new coherence block on every tap.
func (m *Multipath) BlockStart() {
	for i := range m.Taps {
		m.Taps[i].BlockStart()
	}
}

// AddTo accumulates the multipath output into dst.
func (m *Multipath) AddTo(tx sigproc.IQ, dst sigproc.IQ) {
	for i := range m.Taps {
		m.Taps[i].AddTo(tx, dst)
	}
}

// Apply writes the multipath output for tx into dst (allocated if nil or
// short) and returns dst.
func (m *Multipath) Apply(tx sigproc.IQ, dst sigproc.IQ) sigproc.IQ {
	if cap(dst) < len(tx) {
		dst = make(sigproc.IQ, len(tx))
	}
	dst = dst[:len(tx)]
	dst.Zero()
	m.AddTo(tx, dst)
	return dst
}
