package channel

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/simrand"
)

// FadingKind selects the small-scale model the Medium attaches to each
// pairwise path.
type FadingKind int

// Fading models supported by the Medium.
const (
	FadingNone FadingKind = iota // static, coefficient 1
	FadingRayleigh
	FadingRician
	FadingGaussMarkov
)

// String returns the model name.
func (k FadingKind) String() string {
	switch k {
	case FadingNone:
		return "none"
	case FadingRayleigh:
		return "rayleigh"
	case FadingRician:
		return "rician"
	case FadingGaussMarkov:
		return "gaussmarkov"
	default:
		return fmt.Sprintf("FadingKind(%d)", int(k))
	}
}

// MediumConfig configures a Medium.
type MediumConfig struct {
	// PathLoss converts distance to linear power gain. Defaults to
	// log-distance n=2.5 at 915 MHz (the UHF ISM band the paper's
	// hardware used).
	PathLoss PathLoss
	// SampleRate in Hz, used for propagation delays (0 disables delays).
	SampleRate float64
	// Fading selects the small-scale model applied to every path.
	Fading FadingKind
	// RicianK is the K factor when Fading == FadingRician.
	RicianK float64
	// GaussMarkovRho is the block correlation when Fading ==
	// FadingGaussMarkov.
	GaussMarkovRho float64
	// NoisePower is the AWGN power (variance) added per receive sample.
	NoisePower float64
	// Seed drives all fading and noise randomness.
	Seed uint64
}

// Node is a positioned radio in the Medium.
type Node struct {
	Name string
	X, Y float64
}

// Medium holds node geometry and hands out pairwise propagation paths
// with consistent gains, delays and independent fading streams. The
// waveform-level link simulator (internal/core) composes these paths to
// build the direct, backscatter and interference signal sums.
type Medium struct {
	cfg   MediumConfig
	src   *simrand.Source
	nodes map[string]Node
	paths map[[2]string]*Path
}

// NewMedium returns an empty Medium with the given configuration.
func NewMedium(cfg MediumConfig) *Medium {
	if cfg.PathLoss == nil {
		cfg.PathLoss = NewLogDistance(915e6, 2.5)
	}
	return &Medium{
		cfg:   cfg,
		src:   simrand.New(cfg.Seed),
		nodes: make(map[string]Node),
		paths: make(map[[2]string]*Path),
	}
}

// AddNode places a node. Re-adding a name moves the node and invalidates
// its cached paths.
func (m *Medium) AddNode(name string, x, y float64) {
	m.nodes[name] = Node{Name: name, X: x, Y: y}
	for k := range m.paths {
		if k[0] == name || k[1] == name {
			delete(m.paths, k)
		}
	}
}

// Nodes returns the node names in deterministic (sorted) order.
func (m *Medium) Nodes() []string {
	out := make([]string, 0, len(m.nodes))
	for n := range m.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Distance returns the Euclidean distance between two nodes. It panics
// if either node is unknown.
func (m *Medium) Distance(a, b string) float64 {
	na, ok := m.nodes[a]
	if !ok {
		panic("channel: unknown node " + a)
	}
	nb, ok := m.nodes[b]
	if !ok {
		panic("channel: unknown node " + b)
	}
	return math.Hypot(na.X-nb.X, na.Y-nb.Y)
}

// Gain returns the linear power gain between two nodes.
func (m *Medium) Gain(a, b string) float64 {
	return m.cfg.PathLoss.Gain(m.Distance(a, b))
}

// Path returns the directed propagation path from a to b, creating it on
// first use. Paths are cached so fading streams evolve consistently
// across blocks. The reverse path is a distinct object (its fading is
// drawn independently; reciprocity holds in mean power via the shared
// gain).
func (m *Medium) Path(a, b string) *Path {
	key := [2]string{a, b}
	if p, ok := m.paths[key]; ok {
		return p
	}
	d := m.Distance(a, b)
	p := &Path{
		Gain:       m.cfg.PathLoss.Gain(d),
		SampleRate: m.cfg.SampleRate,
	}
	if m.cfg.SampleRate > 0 {
		p.DelaySamples = PropagationDelaySamples(d, m.cfg.SampleRate)
	}
	switch m.cfg.Fading {
	case FadingRayleigh:
		p.Fader = NewRayleighFader(m.src)
	case FadingRician:
		p.Fader = NewRicianFader(m.src, m.cfg.RicianK)
	case FadingGaussMarkov:
		p.Fader = NewGaussMarkovFader(m.src, m.cfg.GaussMarkovRho)
	}
	m.paths[key] = p
	return p
}

// BlockStart begins a new coherence block: every cached path draws a new
// fading coefficient.
func (m *Medium) BlockStart() {
	for _, p := range m.paths {
		p.BlockStart()
	}
}

// AddNoise adds receiver AWGN of the configured power to a block in place.
func (m *Medium) AddNoise(x []complex128) {
	m.src.FillNoise(x, m.cfg.NoisePower)
}

// NoisePower returns the configured per-sample noise power.
func (m *Medium) NoisePower() float64 { return m.cfg.NoisePower }

// SampleRate returns the configured sample rate.
func (m *Medium) SampleRate() float64 { return m.cfg.SampleRate }

// Rand returns a child random source derived from the medium's stream,
// for components that need consistent randomness (e.g. interferer start
// offsets).
func (m *Medium) Rand() *simrand.Source { return m.src.Split() }
