package channel

import (
	"math"
	"math/cmplx"

	"repro/internal/simrand"
)

// Fader produces a complex small-scale channel coefficient per coherence
// block. Amplitude-domain: received amplitude is multiplied by the
// coefficient; E[|h|^2] should be 1 so the path-loss gain sets the mean
// power.
type Fader interface {
	// NextCoeff returns the channel coefficient for the next block.
	NextCoeff() complex128
}

// StaticFader always returns the same coefficient. The zero value is an
// all-blocking channel; use NewStaticFader(1) for an ideal channel.
type StaticFader struct {
	Coeff complex128
}

// NewStaticFader returns a fader pinned to the given coefficient.
func NewStaticFader(coeff complex128) *StaticFader { return &StaticFader{Coeff: coeff} }

// NextCoeff implements Fader.
func (s *StaticFader) NextCoeff() complex128 { return s.Coeff }

// RayleighFader draws an independent CN(0,1) coefficient per block
// (block-fading Rayleigh with unit mean power).
type RayleighFader struct {
	src *simrand.Source
}

// NewRayleighFader returns a block Rayleigh fader driven by a child of src.
func NewRayleighFader(src *simrand.Source) *RayleighFader {
	return &RayleighFader{src: src.Split()}
}

// NextCoeff implements Fader.
func (r *RayleighFader) NextCoeff() complex128 { return r.src.RayleighCoeff(1) }

// RicianFader draws an independent Rician coefficient per block with
// factor K and unit mean power.
type RicianFader struct {
	K   float64
	src *simrand.Source
}

// NewRicianFader returns a block Rician fader with factor K.
func NewRicianFader(src *simrand.Source, k float64) *RicianFader {
	return &RicianFader{K: k, src: src.Split()}
}

// NextCoeff implements Fader.
func (r *RicianFader) NextCoeff() complex128 { return r.src.RicianCoeff(1, r.K) }

// GaussMarkovFader is a first-order autoregressive fading process:
// h[k+1] = rho*h[k] + sqrt(1-rho^2)*CN(0,1). It produces the temporally
// correlated fades that rate adaptation must track; rho close to 1 means
// a slowly varying channel.
type GaussMarkovFader struct {
	rho float64
	h   complex128
	src *simrand.Source
}

// NewGaussMarkovFader returns a correlated fader with correlation rho in
// [0, 1). It panics if rho is out of range. The process starts from a
// stationary draw so the first block is already correctly distributed.
func NewGaussMarkovFader(src *simrand.Source, rho float64) *GaussMarkovFader {
	if rho < 0 || rho >= 1 {
		panic("channel: GaussMarkov correlation must be in [0, 1)")
	}
	child := src.Split()
	return &GaussMarkovFader{rho: rho, h: child.RayleighCoeff(1), src: child}
}

// NextCoeff implements Fader.
func (g *GaussMarkovFader) NextCoeff() complex128 {
	out := g.h
	innov := g.src.RayleighCoeff(1 - g.rho*g.rho)
	g.h = complex(g.rho, 0)*g.h + innov
	return out
}

// CoherenceRho converts a channel coherence time and a block duration
// into the AR(1) correlation coefficient via Clarke's model
// rho = J0(2*pi*fd*T) approximated by exp(-(T/Tc)^2 * ln2) shape; we use
// the simpler exponential mapping rho = exp(-blockT/coherenceT), clamped
// to [0, 1).
func CoherenceRho(blockT, coherenceT float64) float64 {
	if coherenceT <= 0 {
		return 0
	}
	rho := math.Exp(-blockT / coherenceT)
	if rho >= 1 {
		rho = math.Nextafter(1, 0)
	}
	return rho
}

// PhaseRotate applies a constant phase rotation in radians to a
// coefficient; useful to decorrelate I/Q in tests.
func PhaseRotate(h complex128, rad float64) complex128 {
	return h * cmplx.Exp(complex(0, rad))
}
