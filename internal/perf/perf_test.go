package perf

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func report(ts ...Timing) *Report {
	r := &Report{Experiments: ts}
	for _, t := range ts {
		r.TotalMs += t.Ms
	}
	return r
}

func TestLoadWriteRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	want := report(Timing{ID: "fig1", Ms: 123.5}, Timing{ID: "fig4", Ms: 8})
	want.Seed, want.Quick, want.Parallel = 1, true, 8
	if err := want.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != 1 || !got.Quick || got.Parallel != 8 || len(got.Experiments) != 2 {
		t.Fatalf("round trip mangled report: %+v", got)
	}
	if ms, ok := got.Timing("fig4"); !ok || ms != 8 {
		t.Fatalf("Timing(fig4) = %v, %v", ms, ok)
	}
	if _, ok := got.Timing("nope"); ok {
		t.Fatal("Timing must report missing ids")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("want error for missing file")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := writeFile(bad, "{not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Fatal("want error for malformed JSON")
	}
}

func TestCompareSortsWorstFirst(t *testing.T) {
	base := report(Timing{ID: "a", Ms: 100}, Timing{ID: "b", Ms: 100}, Timing{ID: "gone", Ms: 5})
	cur := report(Timing{ID: "a", Ms: 150}, Timing{ID: "b", Ms: 400}, Timing{ID: "new", Ms: 9})
	ds := Compare(cur, base)
	if len(ds) != 4 {
		t.Fatalf("got %d deltas, want 4 (unmatched ids surfaced as added/removed)", len(ds))
	}
	if ds[0].ID != "new" || ds[0].Status != StatusAdded {
		t.Fatalf("first delta = %+v, want the added cell (+Inf ratio)", ds[0])
	}
	if ds[1].ID != "b" || ds[1].Ratio != 4 {
		t.Fatalf("worst matched delta = %+v, want b at 4x", ds[1])
	}
	if ds[2].ID != "a" || ds[2].Ratio != 1.5 {
		t.Fatalf("second matched delta = %+v, want a at 1.5x", ds[2])
	}
	if ds[3].ID != "gone" || ds[3].Status != StatusRemoved || ds[3].Ratio != 0 {
		t.Fatalf("last delta = %+v, want the removed cell at ratio 0", ds[3])
	}
}

// Pre-fix, Compare silently skipped experiment ids present in only one
// report and Regressions never saw them, so renaming a bench cell made
// its timing vanish from the CI perf gate. Post-fix added and removed
// cells surface as explicit deltas and a removed cell above the noise
// floor fails the gate.
func TestRenamedCellCannotDodgeGate(t *testing.T) {
	base := report(Timing{ID: "scen-old-name", Ms: 120}, Timing{ID: "stable", Ms: 50})
	cur := report(Timing{ID: "scen-new-name", Ms: 500}, Timing{ID: "stable", Ms: 50})

	ds := Compare(cur, base)
	var added, removed *Delta
	for i := range ds {
		switch ds[i].Status {
		case StatusAdded:
			added = &ds[i]
		case StatusRemoved:
			removed = &ds[i]
		}
	}
	if added == nil || added.ID != "scen-new-name" || added.CurrentMs != 500 {
		t.Fatalf("added cell not surfaced: %+v", ds)
	}
	if removed == nil || removed.ID != "scen-old-name" || removed.BaselineMs != 120 {
		t.Fatalf("removed cell not surfaced: %+v", ds)
	}

	regs := DefaultGate.Regressions(cur, base)
	if len(regs) != 1 || regs[0].ID != "scen-old-name" || regs[0].Status != StatusRemoved {
		t.Fatalf("Regressions = %+v, want the removed scen-old-name flagged", regs)
	}
}

// A removed cell below the gate's noise floor stays ignorable, and
// added cells never gate: growing the suite cannot fail CI.
func TestGateIgnoresTinyRemovalsAndAdditions(t *testing.T) {
	base := report(Timing{ID: "tiny-gone", Ms: 1}, Timing{ID: "stable", Ms: 50})
	cur := report(Timing{ID: "stable", Ms: 50}, Timing{ID: "brand-new", Ms: 900})
	if regs := DefaultGate.Regressions(cur, base); len(regs) != 0 {
		t.Fatalf("Regressions = %+v, want none", regs)
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	ds := Compare(report(Timing{ID: "a", Ms: 3}), report(Timing{ID: "a", Ms: 0}))
	if len(ds) != 1 || !math.IsInf(ds[0].Ratio, 1) {
		t.Fatalf("zero baseline with nonzero current must be +Inf, got %+v", ds)
	}
}

func TestGate(t *testing.T) {
	base := report(
		Timing{ID: "big-regressed", Ms: 100},
		Timing{ID: "big-ok", Ms: 100},
		Timing{ID: "tiny-regressed", Ms: 1},
		Timing{ID: "borderline", Ms: 30},
	)
	cur := report(
		Timing{ID: "big-regressed", Ms: 300},
		Timing{ID: "big-ok", Ms: 150},
		Timing{ID: "tiny-regressed", Ms: 10}, // 10x but under MinBaselineMs
		Timing{ID: "borderline", Ms: 70},     // 2.3x but only +40ms, under SlackMs
	)
	regs := DefaultGate.Regressions(cur, base)
	if len(regs) != 1 || regs[0].ID != "big-regressed" {
		t.Fatalf("Regressions = %+v, want only big-regressed", regs)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestEnvMismatch(t *testing.T) {
	base := &Report{Quick: true, GOMAXPROCS: 1, Parallel: 8, NumCPU: 4,
		CPUModel: "Old CPU", GoVersion: "go1.22.0"}
	same := *base
	if w := EnvMismatch(&same, base); len(w) != 0 {
		t.Fatalf("identical environments flagged: %v", w)
	}
	cur := &Report{Quick: false, GOMAXPROCS: 16, Parallel: 4, NumCPU: 16,
		CPUModel: "New CPU", GoVersion: "go1.24.0"}
	warns := EnvMismatch(cur, base)
	if len(warns) != 6 {
		t.Fatalf("want 6 warnings, got %d: %v", len(warns), warns)
	}
	for _, want := range []string{"mode", "gomaxprocs", "workers", "cpus", "cpu model", "go version"} {
		found := false
		for _, w := range warns {
			if strings.HasPrefix(w, want+":") {
				found = true
			}
		}
		if !found {
			t.Errorf("no warning for %s in %v", want, warns)
		}
	}
}

func TestEnvMismatchToleratesUnrecordedBaseline(t *testing.T) {
	// Reports written before env recording carry no CPU fields; they
	// must not warn about every machine being "different from" zero.
	base := &Report{GOMAXPROCS: 8, Parallel: 8, GoVersion: "go1.24.0"}
	cur := &Report{GOMAXPROCS: 8, Parallel: 8, GoVersion: "go1.24.0",
		NumCPU: 16, CPUModel: "Some CPU"}
	if w := EnvMismatch(cur, base); len(w) != 0 {
		t.Fatalf("unrecorded baseline env flagged: %v", w)
	}
}

func TestHostCPUModel(t *testing.T) {
	// On Linux /proc/cpuinfo exists and the model is non-empty; anywhere
	// else the function must degrade to "" rather than error.
	model := HostCPUModel()
	if _, err := os.Stat("/proc/cpuinfo"); err == nil && model == "" {
		t.Skip("cpuinfo present but no 'model name' line (non-x86?)")
	}
	t.Logf("host cpu model: %q", model)
}
