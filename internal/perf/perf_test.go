package perf

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func report(ts ...Timing) *Report {
	r := &Report{Experiments: ts}
	for _, t := range ts {
		r.TotalMs += t.Ms
	}
	return r
}

func TestLoadWriteRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	want := report(Timing{ID: "fig1", Ms: 123.5}, Timing{ID: "fig4", Ms: 8})
	want.Seed, want.Quick, want.Parallel = 1, true, 8
	if err := want.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != 1 || !got.Quick || got.Parallel != 8 || len(got.Experiments) != 2 {
		t.Fatalf("round trip mangled report: %+v", got)
	}
	if ms, ok := got.Timing("fig4"); !ok || ms != 8 {
		t.Fatalf("Timing(fig4) = %v, %v", ms, ok)
	}
	if _, ok := got.Timing("nope"); ok {
		t.Fatal("Timing must report missing ids")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("want error for missing file")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := writeFile(bad, "{not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Fatal("want error for malformed JSON")
	}
}

func TestCompareSortsWorstFirst(t *testing.T) {
	base := report(Timing{ID: "a", Ms: 100}, Timing{ID: "b", Ms: 100}, Timing{ID: "gone", Ms: 5})
	cur := report(Timing{ID: "a", Ms: 150}, Timing{ID: "b", Ms: 400}, Timing{ID: "new", Ms: 9})
	ds := Compare(cur, base)
	if len(ds) != 2 {
		t.Fatalf("got %d deltas, want 2 (unmatched ids skipped)", len(ds))
	}
	if ds[0].ID != "b" || ds[0].Ratio != 4 {
		t.Fatalf("worst delta = %+v, want b at 4x", ds[0])
	}
	if ds[1].ID != "a" || ds[1].Ratio != 1.5 {
		t.Fatalf("second delta = %+v, want a at 1.5x", ds[1])
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	ds := Compare(report(Timing{ID: "a", Ms: 3}), report(Timing{ID: "a", Ms: 0}))
	if len(ds) != 1 || !math.IsInf(ds[0].Ratio, 1) {
		t.Fatalf("zero baseline with nonzero current must be +Inf, got %+v", ds)
	}
}

func TestGate(t *testing.T) {
	base := report(
		Timing{ID: "big-regressed", Ms: 100},
		Timing{ID: "big-ok", Ms: 100},
		Timing{ID: "tiny-regressed", Ms: 1},
		Timing{ID: "borderline", Ms: 30},
	)
	cur := report(
		Timing{ID: "big-regressed", Ms: 300},
		Timing{ID: "big-ok", Ms: 150},
		Timing{ID: "tiny-regressed", Ms: 10}, // 10x but under MinBaselineMs
		Timing{ID: "borderline", Ms: 70},     // 2.3x but only +40ms, under SlackMs
	)
	regs := DefaultGate.Regressions(cur, base)
	if len(regs) != 1 || regs[0].ID != "big-regressed" {
		t.Fatalf("Regressions = %+v, want only big-regressed", regs)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
