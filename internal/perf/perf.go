// Package perf is the benchmark-regression subsystem: it loads the
// per-experiment wall-clock reports cmd/fdbench emits (-timingjson),
// compares a current run against a committed baseline, and gates on
// regressions. The committed BENCH_baseline.json at the repository
// root plus the CI perf job keep the harness's measured speed from
// silently regressing — the perf counterpart of the determinism gate.
package perf

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// Timing is one experiment's wall-clock measurement.
type Timing struct {
	ID string  `json:"id"`
	Ms float64 `json:"ms"`
}

// Report is the fdbench -timingjson schema: enough context to compare
// runs across commits and machines.
type Report struct {
	Seed       uint64 `json:"seed"`
	Quick      bool   `json:"quick"`
	Parallel   int    `json:"parallel"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// NumCPU and CPUModel record the machine the report was measured on
	// (runtime.NumCPU and /proc/cpuinfo's model name). A timing ratio
	// against a baseline from different hardware measures the hardware,
	// not the code — EnvMismatch surfaces the difference so Compare
	// output can be read with the right scepticism.
	NumCPU      int      `json:"num_cpu,omitempty"`
	CPUModel    string   `json:"cpu_model,omitempty"`
	Experiments []Timing `json:"experiments"`
	TotalMs     float64  `json:"total_ms"`
}

// HostCPUModel reads the CPU model name from /proc/cpuinfo, or returns
// "" where that interface does not exist (non-Linux hosts).
func HostCPUModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			if _, v, ok := strings.Cut(name, ":"); ok {
				return strings.TrimSpace(v)
			}
		}
	}
	return ""
}

// EnvMismatch compares the environments two reports were measured in
// and returns one human-readable warning per difference that can skew
// a timing ratio: GOMAXPROCS, worker count, CPU count, CPU model, Go
// version, and quick-vs-full mode. Empty means the environments match
// (unrecorded baseline fields — old reports — are not flagged).
func EnvMismatch(cur, base *Report) []string {
	var out []string
	add := func(format string, args ...any) { out = append(out, fmt.Sprintf(format, args...)) }
	if cur.Quick != base.Quick {
		add("mode: current quick=%v, baseline quick=%v", cur.Quick, base.Quick)
	}
	if cur.GOMAXPROCS != base.GOMAXPROCS {
		add("gomaxprocs: current %d, baseline %d", cur.GOMAXPROCS, base.GOMAXPROCS)
	}
	if cur.Parallel != base.Parallel {
		add("workers: current %d, baseline %d", cur.Parallel, base.Parallel)
	}
	if base.NumCPU != 0 && cur.NumCPU != base.NumCPU {
		add("cpus: current %d, baseline %d", cur.NumCPU, base.NumCPU)
	}
	if base.CPUModel != "" && cur.CPUModel != base.CPUModel {
		add("cpu model: current %q, baseline %q", cur.CPUModel, base.CPUModel)
	}
	if cur.GoVersion != base.GoVersion {
		add("go version: current %s, baseline %s", cur.GoVersion, base.GoVersion)
	}
	return out
}

// Load reads a report from a JSON file.
func Load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("perf: parse %s: %w", path, err)
	}
	return &r, nil
}

// Write stores the report as indented JSON.
func (r *Report) Write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Timing returns the measurement for an experiment id.
func (r *Report) Timing(id string) (ms float64, ok bool) {
	for _, t := range r.Experiments {
		if t.ID == id {
			return t.Ms, true
		}
	}
	return 0, false
}

// Delta status values (see Delta.Status).
const (
	// StatusAdded marks an experiment present only in the current
	// report: new coverage, nothing to regress from.
	StatusAdded = "added"
	// StatusRemoved marks an experiment present only in the baseline:
	// its timing can no longer be checked, so a renamed or deleted cell
	// is surfaced instead of silently dodging the gate.
	StatusRemoved = "removed"
)

// Delta is one experiment's baseline-to-current comparison.
type Delta struct {
	ID         string
	BaselineMs float64
	CurrentMs  float64
	// Ratio is CurrentMs / BaselineMs (+Inf when the baseline is 0,
	// including added experiments; 0 for removed ones).
	Ratio float64
	// Status is "" for experiments present in both reports,
	// StatusAdded (current only) or StatusRemoved (baseline only).
	Status string
}

// Compare matches the current report's experiments against the
// baseline by id and returns one delta per experiment seen on either
// side, sorted by descending ratio. Experiments present on only one
// side are surfaced explicitly (Status added/removed) rather than
// skipped — a renamed bench cell shows up as one removal plus one
// addition instead of vanishing from the comparison.
func Compare(cur, base *Report) []Delta {
	var out []Delta
	for _, t := range cur.Experiments {
		bms, ok := base.Timing(t.ID)
		if !ok {
			out = append(out, Delta{ID: t.ID, CurrentMs: t.Ms, Ratio: math.Inf(1), Status: StatusAdded})
			continue
		}
		d := Delta{ID: t.ID, BaselineMs: bms, CurrentMs: t.Ms}
		if bms > 0 {
			d.Ratio = t.Ms / bms
		} else if t.Ms > 0 {
			d.Ratio = math.Inf(1)
		} else {
			d.Ratio = 1
		}
		out = append(out, d)
	}
	for _, t := range base.Experiments {
		if _, ok := cur.Timing(t.ID); !ok {
			out = append(out, Delta{ID: t.ID, BaselineMs: t.Ms, Ratio: 0, Status: StatusRemoved})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Ratio != out[j].Ratio {
			return out[i].Ratio > out[j].Ratio
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Gate is a regression policy. The zero value is not useful; use
// DefaultGate (the CI policy) or set the fields explicitly.
type Gate struct {
	// MaxRatio is the allowed current/baseline slowdown (e.g. 2 means
	// "fail beyond 2x slower").
	MaxRatio float64
	// MinBaselineMs ignores experiments whose baseline is below this
	// floor: sub-millisecond cells jitter by integer factors from
	// scheduling noise alone and would make the gate flaky.
	MinBaselineMs float64
	// SlackMs additionally requires the absolute slowdown to exceed
	// this many milliseconds, so a borderline cell on a slow CI runner
	// does not trip the gate.
	SlackMs float64
}

// DefaultGate is the CI policy: fail only on a >2x slowdown that also
// costs more than 50 ms absolute, ignoring baselines under 5 ms.
var DefaultGate = Gate{MaxRatio: 2, MinBaselineMs: 5, SlackMs: 50}

// Regressions returns the deltas that violate the gate, worst first.
// A removed experiment whose baseline clears the noise floor is itself
// a violation: its timing can no longer be verified, so renaming a
// bench cell cannot silently dodge the gate. Added experiments are
// surfaced by Compare but never gate — a new cell has no baseline to
// regress from.
func (g Gate) Regressions(cur, base *Report) []Delta {
	var out []Delta
	for _, d := range Compare(cur, base) {
		if d.Status == StatusAdded || d.BaselineMs < g.MinBaselineMs {
			continue
		}
		if d.Status == StatusRemoved {
			out = append(out, d)
			continue
		}
		if d.Ratio > g.MaxRatio && d.CurrentMs-d.BaselineMs > g.SlackMs {
			out = append(out, d)
		}
	}
	return out
}
