// Package feedback implements the backscatter feedback channel that makes
// the link full duplex: while the reader's forward transmission is in
// flight, the tag toggles its antenna between reflecting and absorbing at
// a rate far below the forward chip rate. At the reader the reflection
// appears as a slow amplitude ripple on top of a signal the reader knows
// exactly — its own transmission — so dividing the received envelope by
// the known transmit envelope and integrating over a feedback bit
// recovers the tag's bit with no self-interference cancellation hardware.
//
// The package provides both sides: the tag's state sequencing (which
// samples reflect) and the reader's normalise/integrate/slice decoder,
// plus the closed-form BER predictions the experiments compare against.
package feedback

import (
	"fmt"
	"math"
)

// Code selects the feedback line code.
type Code int

// Feedback line codes. Manchester is the default: each bit spends half
// its period reflecting and half absorbing, so the decoder compares the
// two halves and needs no amplitude threshold. NRZ doubles the averaging
// window per decision but requires threshold tracking (the ablation in
// BenchmarkAblationFeedbackCode quantifies the trade).
const (
	CodeManchester Code = iota
	CodeNRZ
)

// String returns the code name.
func (c Code) String() string {
	switch c {
	case CodeManchester:
		return "manchester"
	case CodeNRZ:
		return "nrz"
	default:
		return fmt.Sprintf("Code(%d)", int(c))
	}
}

// StateReflect and StateAbsorb are the tag antenna states, one per
// forward-rate sample.
const (
	StateAbsorb  byte = 0
	StateReflect byte = 1
)

// Config describes one feedback channel instance.
type Config struct {
	// SamplesPerBit is the number of forward-link samples spanned by one
	// feedback bit. Large values trade rate for SNR gain (the averaging
	// factor). Must be >= 2 for Manchester.
	SamplesPerBit int
	// Code is the feedback line code.
	Code Code
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.SamplesPerBit < 1 {
		return fmt.Errorf("feedback: SamplesPerBit must be >= 1, got %d", c.SamplesPerBit)
	}
	if c.Code == CodeManchester && c.SamplesPerBit < 2 {
		return fmt.Errorf("feedback: Manchester needs SamplesPerBit >= 2")
	}
	if c.Code != CodeManchester && c.Code != CodeNRZ {
		return fmt.Errorf("feedback: unknown code %d", int(c.Code))
	}
	return nil
}

// BitsPerSecond returns the feedback data rate at the given forward
// sample rate.
func (c Config) BitsPerSecond(sampleRate float64) float64 {
	if c.SamplesPerBit <= 0 {
		return 0
	}
	return sampleRate / float64(c.SamplesPerBit)
}

// AppendStates appends the per-sample antenna states for the given
// feedback bits to dst and returns it. Each bit occupies SamplesPerBit
// samples.
func (c Config) AppendStates(dst []byte, bits []byte) []byte {
	n := c.SamplesPerBit
	switch c.Code {
	case CodeNRZ:
		for _, b := range bits {
			s := StateAbsorb
			if b&1 == 1 {
				s = StateReflect
			}
			for i := 0; i < n; i++ {
				dst = append(dst, s)
			}
		}
	case CodeManchester:
		half := n / 2
		for _, b := range bits {
			first, second := StateAbsorb, StateReflect
			if b&1 == 1 {
				first, second = StateReflect, StateAbsorb
			}
			for i := 0; i < half; i++ {
				dst = append(dst, first)
			}
			for i := half; i < n; i++ {
				dst = append(dst, second)
			}
		}
	}
	return dst
}

// AppendIdleStates appends n absorb states (no feedback transmission;
// the tag harvests everything).
func AppendIdleStates(dst []byte, n int) []byte {
	for i := 0; i < n; i++ {
		dst = append(dst, StateAbsorb)
	}
	return dst
}

// Normalize divides the received envelope by the known transmit envelope
// sample-by-sample, writing into dst (allocated if nil or short). Samples
// where the transmit envelope is below floor are copied from the previous
// normalised value (hold) to avoid noise blow-up; floor <= 0 uses 1e-9.
// This is the self-interference handling step: the reader's own signal
// becomes the unit level, and the tag's reflection rides on top of it.
func Normalize(rxEnv, txEnv []float64, floor float64, dst []float64) []float64 {
	if len(rxEnv) != len(txEnv) {
		panic(fmt.Sprintf("feedback: Normalize length mismatch %d != %d", len(rxEnv), len(txEnv)))
	}
	if cap(dst) < len(rxEnv) {
		dst = make([]float64, len(rxEnv))
	}
	dst = dst[:len(rxEnv)]
	if floor <= 0 {
		floor = 1e-9
	}
	prev := 0.0
	for i := range rxEnv {
		if txEnv[i] < floor {
			dst[i] = prev
			continue
		}
		dst[i] = rxEnv[i] / txEnv[i]
		prev = dst[i]
	}
	return dst
}

// DecodeBits slices feedback bits out of a normalised envelope stream,
// appending decoded bits to dst. The stream must start at a bit boundary.
// For NRZ, threshold separates reflect from absorb levels (use
// EstimateThreshold or a tracker); Manchester ignores it. Trailing
// samples that do not fill a bit are ignored.
func (c Config) DecodeBits(norm []float64, threshold float64, dst []byte) []byte {
	n := c.SamplesPerBit
	switch c.Code {
	case CodeNRZ:
		for i := 0; i+n <= len(norm); i += n {
			if meanOf(norm[i:i+n]) > threshold {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
		}
	case CodeManchester:
		half := n / 2
		for i := 0; i+n <= len(norm); i += n {
			a := meanOf(norm[i : i+half])
			b := meanOf(norm[i+half : i+n])
			if a > b {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
		}
	}
	return dst
}

// DecodeOne decodes a single feedback bit from exactly one bit period of
// normalised samples. It returns the bit and a soft decision margin
// (positive = confident); the margin is the level separation achieved in
// this bit, used by collision detectors as an anomaly signal.
func (c Config) DecodeOne(norm []float64, threshold float64) (bit byte, margin float64) {
	n := c.SamplesPerBit
	if len(norm) < n {
		return 0, 0
	}
	switch c.Code {
	case CodeNRZ:
		m := meanOf(norm[:n])
		if m > threshold {
			return 1, m - threshold
		}
		return 0, threshold - m
	case CodeManchester:
		half := n / 2
		a := meanOf(norm[:half])
		b := meanOf(norm[half:n])
		if a > b {
			return 1, a - b
		}
		return 0, b - a
	}
	return 0, 0
}

func meanOf(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// EstimateThreshold derives an NRZ slicing threshold from a training
// region known to contain both states (e.g. the tag's pilot pattern):
// the midpoint of the observed min/max of per-half-bit means.
func (c Config) EstimateThreshold(norm []float64) float64 {
	n := c.SamplesPerBit / 2
	if n < 1 {
		n = 1
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i+n <= len(norm); i += n {
		m := meanOf(norm[i : i+n])
		if m < lo {
			lo = m
		}
		if m > hi {
			hi = m
		}
	}
	if math.IsInf(lo, 1) {
		return 0
	}
	return (lo + hi) / 2
}

// SNREstimate estimates the feedback-channel SNR from a normalised
// stream and the bits that were decoded from it: it reconstructs the two
// class means and returns separation^2 / (4 * within-class variance),
// i.e. the per-sample detection SNR. Returns 0 when a class is missing.
func (c Config) SNREstimate(norm []float64, bits []byte) float64 {
	n := c.SamplesPerBit
	var sum [2]float64
	var sumSq [2]float64
	var cnt [2]int
	for i, b := range bits {
		start := i * n
		if start+n > len(norm) {
			break
		}
		seg := norm[start : start+n]
		for j, v := range seg {
			cls := int(b & 1)
			if c.Code == CodeManchester {
				// First half carries the bit state, second the inverse.
				if j < n/2 {
					cls = int(b & 1)
				} else {
					cls = int(b&1) ^ 1
				}
			}
			sum[cls] += v
			sumSq[cls] += v * v
			cnt[cls]++
		}
	}
	if cnt[0] == 0 || cnt[1] == 0 {
		return 0
	}
	m0 := sum[0] / float64(cnt[0])
	m1 := sum[1] / float64(cnt[1])
	v0 := sumSq[0]/float64(cnt[0]) - m0*m0
	v1 := sumSq[1]/float64(cnt[1]) - m1*m1
	v := (v0 + v1) / 2
	if v <= 0 {
		return math.Inf(1)
	}
	d := m1 - m0
	return d * d / (4 * v)
}

// QFunc is the Gaussian tail probability Q(x) = P(N(0,1) > x).
func QFunc(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// TheoreticalBER predicts the feedback bit error rate for a level
// separation delta (normalised units), per-sample noise standard
// deviation sigma, and an averaging window of nAvg samples per decision:
// BER = Q(delta / (2*sigma/sqrt(nAvg))). For Manchester the effective
// nAvg is half the bit period per level but the decision variable is the
// difference of two averages, which lands at the same expression with
// nAvg = SamplesPerBit/2 halves combined; pass the per-decision averaging
// count you actually use.
func TheoreticalBER(delta, sigma float64, nAvg int) float64 {
	if delta <= 0 || nAvg < 1 {
		return 0.5
	}
	if sigma <= 0 {
		return 0
	}
	return QFunc(delta / 2 / (sigma / math.Sqrt(float64(nAvg))))
}

// ManchesterBER predicts the BER of the Manchester decoder, whose
// decision variable is the difference of two independent half-bit
// averages: variance 2*sigma^2/(n/2), separation delta.
func ManchesterBER(delta, sigma float64, samplesPerBit int) float64 {
	if delta <= 0 || samplesPerBit < 2 {
		return 0.5
	}
	if sigma <= 0 {
		return 0
	}
	half := float64(samplesPerBit / 2)
	sd := sigma * math.Sqrt(2/half)
	return QFunc(delta / sd)
}
