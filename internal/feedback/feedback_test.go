package feedback

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/simrand"
)

func TestConfigValidate(t *testing.T) {
	if err := (Config{SamplesPerBit: 8, Code: CodeManchester}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Config{SamplesPerBit: 0}).Validate(); err == nil {
		t.Fatal("zero SamplesPerBit must fail")
	}
	if err := (Config{SamplesPerBit: 1, Code: CodeManchester}).Validate(); err == nil {
		t.Fatal("Manchester with 1 sample/bit must fail")
	}
	if err := (Config{SamplesPerBit: 4, Code: Code(9)}).Validate(); err == nil {
		t.Fatal("unknown code must fail")
	}
}

func TestBitsPerSecond(t *testing.T) {
	c := Config{SamplesPerBit: 1000}
	if got := c.BitsPerSecond(1e6); got != 1000 {
		t.Fatalf("rate = %g", got)
	}
	if (Config{}).BitsPerSecond(1e6) != 0 {
		t.Fatal("invalid config should report 0 rate")
	}
}

func TestAppendStatesNRZ(t *testing.T) {
	c := Config{SamplesPerBit: 3, Code: CodeNRZ}
	states := c.AppendStates(nil, []byte{1, 0})
	want := []byte{1, 1, 1, 0, 0, 0}
	if !bytes.Equal(states, want) {
		t.Fatalf("states = %v", states)
	}
}

func TestAppendStatesManchester(t *testing.T) {
	c := Config{SamplesPerBit: 4, Code: CodeManchester}
	states := c.AppendStates(nil, []byte{1, 0})
	want := []byte{1, 1, 0, 0, 0, 0, 1, 1}
	if !bytes.Equal(states, want) {
		t.Fatalf("states = %v", states)
	}
}

func TestAppendStatesManchesterOddLength(t *testing.T) {
	c := Config{SamplesPerBit: 5, Code: CodeManchester}
	states := c.AppendStates(nil, []byte{1})
	if len(states) != 5 {
		t.Fatalf("len = %d, want 5 (bit period preserved)", len(states))
	}
	if states[0] != 1 || states[4] != 0 {
		t.Fatalf("states = %v", states)
	}
}

func TestAppendIdleStates(t *testing.T) {
	states := AppendIdleStates(nil, 4)
	if !bytes.Equal(states, []byte{0, 0, 0, 0}) {
		t.Fatalf("states = %v", states)
	}
}

func TestNormalizeBasic(t *testing.T) {
	rx := []float64{2, 4, 6}
	tx := []float64{1, 2, 3}
	norm := Normalize(rx, tx, 0, nil)
	for _, v := range norm {
		if math.Abs(v-2) > 1e-12 {
			t.Fatalf("norm = %v, want all 2", norm)
		}
	}
}

func TestNormalizeFloorHolds(t *testing.T) {
	rx := []float64{2, 100, 4}
	tx := []float64{1, 0, 2}
	norm := Normalize(rx, tx, 0.5, nil)
	if norm[1] != norm[0] {
		t.Fatalf("sub-floor sample must hold previous value: %v", norm)
	}
}

func TestNormalizePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Normalize([]float64{1}, []float64{1, 2}, 0, nil)
}

// synthNorm builds a normalised stream for given bits with additive
// Gaussian noise: absorb level 1.0, reflect level 1.0+delta.
func synthNorm(c Config, bits []byte, delta, sigma float64, seed uint64) []float64 {
	states := c.AppendStates(nil, bits)
	src := simrand.New(seed)
	out := make([]float64, len(states))
	for i, s := range states {
		v := 1.0
		if s == StateReflect {
			v += delta
		}
		out[i] = v + src.Gaussian(0, sigma)
	}
	return out
}

func TestDecodeBitsCleanBothCodes(t *testing.T) {
	src := simrand.New(1)
	bits := make([]byte, 64)
	for i := range bits {
		bits[i] = src.Bit()
	}
	for _, code := range []Code{CodeManchester, CodeNRZ} {
		c := Config{SamplesPerBit: 16, Code: code}
		norm := synthNorm(c, bits, 0.1, 0, 2)
		got := c.DecodeBits(norm, 1.05, nil)
		if !bytes.Equal(got, bits) {
			t.Fatalf("%v: clean decode failed", code)
		}
	}
}

func TestDecodeBitsNoisyAveragingWins(t *testing.T) {
	// At sigma comparable to delta, per-sample decisions would be bad,
	// but integrating 256 samples/bit must make errors vanishingly rare.
	src := simrand.New(3)
	bits := make([]byte, 200)
	for i := range bits {
		bits[i] = src.Bit()
	}
	c := Config{SamplesPerBit: 256, Code: CodeManchester}
	norm := synthNorm(c, bits, 0.05, 0.05, 4)
	got := c.DecodeBits(norm, 0, nil)
	if errs := countErrs(got, bits); errs != 0 {
		t.Fatalf("256x averaging: %d/200 errors", errs)
	}
}

func TestDecodeBitsRateBERTradeoff(t *testing.T) {
	// Same noise, shorter bit period -> strictly more errors.
	mkBits := func(n int) []byte {
		src := simrand.New(5)
		b := make([]byte, n)
		for i := range b {
			b[i] = src.Bit()
		}
		return b
	}
	berAt := func(spb int) float64 {
		c := Config{SamplesPerBit: spb, Code: CodeManchester}
		bits := mkBits(4000)
		norm := synthNorm(c, bits, 0.02, 0.15, 6)
		got := c.DecodeBits(norm, 0, nil)
		return float64(countErrs(got, bits)) / float64(len(bits))
	}
	fast := berAt(8)
	slow := berAt(128)
	if slow >= fast {
		t.Fatalf("averaging must reduce BER: slow %g vs fast %g", slow, fast)
	}
}

func countErrs(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	e := 0
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			e++
		}
	}
	return e
}

func TestDecodeOneMargin(t *testing.T) {
	c := Config{SamplesPerBit: 8, Code: CodeManchester}
	norm := synthNorm(c, []byte{1}, 0.2, 0, 7)
	bit, margin := c.DecodeOne(norm, 0)
	if bit != 1 {
		t.Fatalf("bit = %d", bit)
	}
	if math.Abs(margin-0.2) > 1e-9 {
		t.Fatalf("margin = %g, want 0.2", margin)
	}
	// Short input.
	if b, m := c.DecodeOne(norm[:3], 0); b != 0 || m != 0 {
		t.Fatal("short input must return zeros")
	}
}

func TestDecodeOneNRZ(t *testing.T) {
	c := Config{SamplesPerBit: 4, Code: CodeNRZ}
	norm := []float64{1.2, 1.2, 1.2, 1.2}
	bit, margin := c.DecodeOne(norm, 1.1)
	if bit != 1 || math.Abs(margin-0.1) > 1e-9 {
		t.Fatalf("bit=%d margin=%g", bit, margin)
	}
	bit, margin = c.DecodeOne([]float64{1, 1, 1, 1}, 1.1)
	if bit != 0 || math.Abs(margin-0.1) > 1e-9 {
		t.Fatalf("bit=%d margin=%g", bit, margin)
	}
}

func TestEstimateThreshold(t *testing.T) {
	c := Config{SamplesPerBit: 8, Code: CodeNRZ}
	// Pilot: alternating states.
	norm := synthNorm(c, []byte{1, 0, 1, 0}, 0.2, 0.001, 8)
	thr := c.EstimateThreshold(norm)
	if thr < 1.05 || thr > 1.15 {
		t.Fatalf("threshold = %g, want ~1.1", thr)
	}
	if c.EstimateThreshold(nil) != 0 {
		t.Fatal("empty stream threshold must be 0")
	}
}

func TestSNREstimateTracksTruth(t *testing.T) {
	c := Config{SamplesPerBit: 64, Code: CodeNRZ}
	src := simrand.New(9)
	bits := make([]byte, 400)
	for i := range bits {
		bits[i] = src.Bit()
	}
	delta, sigma := 0.1, 0.05
	norm := synthNorm(c, bits, delta, sigma, 10)
	got := c.SNREstimate(norm, bits)
	want := delta * delta / (4 * sigma * sigma)
	if got < want*0.8 || got > want*1.2 {
		t.Fatalf("SNR estimate %g, want ~%g", got, want)
	}
}

func TestSNREstimateManchester(t *testing.T) {
	c := Config{SamplesPerBit: 64, Code: CodeManchester}
	src := simrand.New(11)
	bits := make([]byte, 400)
	for i := range bits {
		bits[i] = src.Bit()
	}
	norm := synthNorm(c, bits, 0.1, 0.05, 12)
	got := c.SNREstimate(norm, bits)
	want := 0.1 * 0.1 / (4 * 0.05 * 0.05)
	if got < want*0.8 || got > want*1.2 {
		t.Fatalf("SNR estimate %g, want ~%g", got, want)
	}
}

func TestSNREstimateMissingClass(t *testing.T) {
	c := Config{SamplesPerBit: 8, Code: CodeNRZ}
	norm := synthNorm(c, []byte{1, 1, 1}, 0.1, 0.01, 13)
	if c.SNREstimate(norm, []byte{1, 1, 1}) != 0 {
		t.Fatal("single-class stream must return 0")
	}
}

func TestQFunc(t *testing.T) {
	if math.Abs(QFunc(0)-0.5) > 1e-12 {
		t.Fatalf("Q(0) = %g", QFunc(0))
	}
	if got := QFunc(3); math.Abs(got-0.00135) > 1e-4 {
		t.Fatalf("Q(3) = %g", got)
	}
	if QFunc(10) > 1e-20 {
		t.Fatal("Q(10) should be tiny")
	}
}

func TestTheoreticalBERShape(t *testing.T) {
	// More averaging -> lower BER.
	b1 := TheoreticalBER(0.1, 0.5, 16)
	b2 := TheoreticalBER(0.1, 0.5, 256)
	if b2 >= b1 {
		t.Fatalf("BER must fall with averaging: %g -> %g", b1, b2)
	}
	if TheoreticalBER(0, 1, 16) != 0.5 {
		t.Fatal("zero separation must give 0.5")
	}
	if TheoreticalBER(1, 0, 16) != 0 {
		t.Fatal("zero noise must give 0")
	}
}

func TestManchesterBERMatchesMonteCarlo(t *testing.T) {
	delta, sigma := 0.05, 0.2
	const spb = 64
	c := Config{SamplesPerBit: spb, Code: CodeManchester}
	src := simrand.New(17)
	const nBits = 30000
	bits := make([]byte, nBits)
	for i := range bits {
		bits[i] = src.Bit()
	}
	norm := synthNorm(c, bits, delta, sigma, 18)
	got := c.DecodeBits(norm, 0, nil)
	empirical := float64(countErrs(got, bits)) / nBits
	analytic := ManchesterBER(delta, sigma, spb)
	if empirical < analytic*0.7 || empirical > analytic*1.4 {
		t.Fatalf("Manchester BER: empirical %g vs analytic %g", empirical, analytic)
	}
}

func TestManchesterBEREdges(t *testing.T) {
	if ManchesterBER(0, 1, 8) != 0.5 || ManchesterBER(1, 1, 1) != 0.5 {
		t.Fatal("degenerate inputs must give 0.5")
	}
	if ManchesterBER(1, 0, 8) != 0 {
		t.Fatal("noiseless must give 0")
	}
}

func TestCodeString(t *testing.T) {
	if CodeManchester.String() != "manchester" || CodeNRZ.String() != "nrz" || Code(9).String() == "" {
		t.Fatal("Code.String broken")
	}
}

// Property: states round-trip through the decoder for any bits at high
// SNR.
func TestStatesDecodeRoundTripProperty(t *testing.T) {
	f := func(data []byte, codeRaw bool) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 64 {
			data = data[:64]
		}
		bits := make([]byte, len(data))
		for i, b := range data {
			bits[i] = b & 1
		}
		code := CodeManchester
		if codeRaw {
			code = CodeNRZ
		}
		c := Config{SamplesPerBit: 8, Code: code}
		norm := synthNorm(c, bits, 0.3, 0, 99)
		got := c.DecodeBits(norm, 1.15, nil)
		return bytes.Equal(got, bits)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
