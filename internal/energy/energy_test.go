package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHarvesterEfficiency(t *testing.T) {
	h := Harvester{Efficiency: 0.5, SensitivityW: 1e-9}
	if got := h.OutputPower(1e-3); math.Abs(got-5e-4) > 1e-12 {
		t.Fatalf("output = %g, want 5e-4", got)
	}
}

func TestHarvesterSensitivityFloor(t *testing.T) {
	h := Harvester{Efficiency: 0.5, SensitivityW: 1e-6}
	if h.OutputPower(0.5e-6) != 0 {
		t.Fatal("below-floor input must harvest nothing")
	}
	if h.OutputPower(1e-6) == 0 {
		t.Fatal("at-floor input should harvest")
	}
}

func TestHarvesterDefaults(t *testing.T) {
	var h Harvester
	if h.eff() != 0.3 {
		t.Fatalf("default efficiency = %g", h.eff())
	}
	if h.floor() != 1e-6 {
		t.Fatalf("default floor = %g", h.floor())
	}
	// Zero-allowed floor.
	h2 := Harvester{SensitivityW: -1}
	if h2.floor() != 0 {
		t.Fatal("negative sensitivity should clamp to 0")
	}
}

func TestHarvestEnergyIntegrates(t *testing.T) {
	h := Harvester{Efficiency: 1, SensitivityW: 0}
	if got := h.Harvest(2e-3, 0.5); math.Abs(got-1e-3) > 1e-15 {
		t.Fatalf("harvest = %g, want 1e-3 J", got)
	}
	if h.Harvest(1, -1) != 0 {
		t.Fatal("negative dt must harvest 0")
	}
}

func TestCapacitorEnergyVoltage(t *testing.T) {
	c := &Capacitor{CapacitanceF: 100e-6, MaxVoltageV: 3.3, MinVoltageV: 1.8}
	c.SetVoltage(3.0)
	wantE := 0.5 * 100e-6 * 9
	if math.Abs(c.Energy()-wantE) > 1e-12 {
		t.Fatalf("energy = %g, want %g", c.Energy(), wantE)
	}
	if math.Abs(c.Voltage()-3.0) > 1e-9 {
		t.Fatalf("voltage = %g", c.Voltage())
	}
}

func TestCapacitorSetVoltageClamps(t *testing.T) {
	c := &Capacitor{MaxVoltageV: 3.3}
	c.SetVoltage(100)
	if math.Abs(c.Voltage()-3.3) > 1e-9 {
		t.Fatalf("voltage = %g, want clamp at 3.3", c.Voltage())
	}
	c.SetVoltage(-5)
	if c.Energy() != 0 {
		t.Fatal("negative voltage should clamp to 0")
	}
}

func TestCapacitorStoreClampsAtMax(t *testing.T) {
	c := &Capacitor{CapacitanceF: 1e-6, MaxVoltageV: 2}
	stored := c.Store(1) // way more than max (2e-6 J)
	if math.Abs(stored-c.MaxEnergy()) > 1e-15 {
		t.Fatalf("stored %g, want %g", stored, c.MaxEnergy())
	}
	if c.Store(1) != 0 {
		t.Fatal("full capacitor must store 0")
	}
	if c.Store(-1) != 0 {
		t.Fatal("negative store must be 0")
	}
}

func TestCapacitorDrawBrownOut(t *testing.T) {
	c := &Capacitor{CapacitanceF: 100e-6, MaxVoltageV: 3.3, MinVoltageV: 1.8}
	c.SetVoltage(2.0)
	headroom := c.Energy() - c.MinEnergy()
	if !c.Draw(headroom * 0.9) {
		t.Fatal("draw within headroom must succeed")
	}
	if c.Draw(headroom) {
		t.Fatal("draw below brown-out must fail")
	}
	if c.Draw(-1) {
		t.Fatal("negative draw must fail")
	}
}

func TestCapacitorAlive(t *testing.T) {
	c := &Capacitor{CapacitanceF: 100e-6, MaxVoltageV: 3.3, MinVoltageV: 1.8}
	c.SetVoltage(1.9)
	if !c.Alive() {
		t.Fatal("above brown-out should be alive")
	}
	c.SetVoltage(1.0)
	if c.Alive() {
		t.Fatal("below brown-out should be dead")
	}
}

func TestCapacitorLeak(t *testing.T) {
	c := &Capacitor{CapacitanceF: 100e-6, MaxVoltageV: 3.3, LeakageW: 1e-6}
	c.SetVoltage(3.0)
	e0 := c.Energy()
	c.Leak(10)
	if math.Abs(e0-c.Energy()-1e-5) > 1e-12 {
		t.Fatalf("leak removed %g, want 1e-5", e0-c.Energy())
	}
	// Leak never goes negative.
	c2 := &Capacitor{LeakageW: 1}
	c2.Leak(1e9)
	if c2.Energy() != 0 {
		t.Fatal("leak must clamp at zero")
	}
	// No leakage configured: no-op.
	c3 := &Capacitor{}
	c3.SetVoltage(2)
	e := c3.Energy()
	c3.Leak(100)
	if c3.Energy() != e {
		t.Fatal("zero leakage must not discharge")
	}
}

func TestBudgetSurplus(t *testing.T) {
	b := &Budget{
		Harvester: Harvester{Efficiency: 0.5, SensitivityW: 0},
		Cap:       Capacitor{CapacitanceF: 100e-6, MaxVoltageV: 3.3, MinVoltageV: 1.8},
		CircuitW:  1e-6,
	}
	b.Cap.SetVoltage(2.5)
	// Harvested 0.5*10uW = 5uW > 1uW circuit: no outage ever.
	for i := 0; i < 10000; i++ {
		b.Step(10e-6, 1e-3)
	}
	if b.OutageFraction() != 0 {
		t.Fatalf("surplus budget had outage %g", b.OutageFraction())
	}
}

func TestBudgetDeficitEventuallyOutages(t *testing.T) {
	b := &Budget{
		Harvester: Harvester{Efficiency: 0.3, SensitivityW: 0},
		Cap:       Capacitor{CapacitanceF: 10e-6, MaxVoltageV: 3.3, MinVoltageV: 1.8},
		CircuitW:  100e-6,
	}
	b.Cap.SetVoltage(3.3)
	// Harvest 0.3uW << 100uW draw: must eventually brown out.
	for i := 0; i < 100000; i++ {
		b.Step(1e-6, 1e-3)
	}
	if b.OutageFraction() < 0.5 {
		t.Fatalf("deficit budget outage only %g", b.OutageFraction())
	}
}

func TestBudgetReset(t *testing.T) {
	b := &Budget{CircuitW: 1}
	b.Step(0, 1)
	if b.OutageFraction() == 0 {
		t.Fatal("unpowered budget should record outage")
	}
	b.Reset()
	if b.OutageFraction() != 0 {
		t.Fatal("Reset must clear stats")
	}
}

func TestSplitIncident(t *testing.T) {
	r, h := SplitIncident(10, 0.3)
	if math.Abs(r-3) > 1e-12 || math.Abs(h-7) > 1e-12 {
		t.Fatalf("split = (%g, %g)", r, h)
	}
	r, h = SplitIncident(10, -1)
	if r != 0 || h != 10 {
		t.Fatal("rho < 0 must clamp")
	}
	r, h = SplitIncident(10, 2)
	if r != 10 || h != 0 {
		t.Fatal("rho > 1 must clamp")
	}
}

// Property: energy is conserved by the split for any rho.
func TestSplitConservesProperty(t *testing.T) {
	f := func(pRaw, rhoRaw uint16) bool {
		p := float64(pRaw) / 1000
		rho := float64(rhoRaw) / 65535
		r, h := SplitIncident(p, rho)
		return math.Abs(r+h-p) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: capacitor Store then Draw of the same amount leaves energy
// unchanged when within bounds.
func TestStoreDrawRoundTripProperty(t *testing.T) {
	f := func(amtRaw uint16) bool {
		c := &Capacitor{CapacitanceF: 100e-6, MaxVoltageV: 3.3, MinVoltageV: 1.0}
		c.SetVoltage(2.0)
		e0 := c.Energy()
		amt := float64(amtRaw) / 65535 * 1e-5 // small amounts
		stored := c.Store(amt)
		if math.Abs(stored-amt) > 1e-15 {
			return true // hit the cap; different invariant
		}
		if !c.Draw(amt) {
			return true // brown-out guard; fine
		}
		return math.Abs(c.Energy()-e0) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
