// Package energy models the battery-free tag's power subsystem: an RF
// harvester with a sensitivity floor and conversion efficiency, and a
// storage capacitor with leakage. The reflection coefficient trade-off
// central to the paper appears here: power the tag reflects for feedback
// is power it cannot harvest.
package energy

import (
	"fmt"
	"math"
)

// Harvester converts incident RF power into stored energy.
type Harvester struct {
	// Efficiency is the RF-to-DC conversion efficiency in (0, 1].
	// Typical CMOS rectifiers reach 0.2-0.5 at UHF. Default 0.3.
	Efficiency float64
	// SensitivityW is the minimum incident power that produces any
	// output (rectifier threshold). Default 1 µW (-30 dBm).
	SensitivityW float64
}

func (h Harvester) eff() float64 {
	if h.Efficiency <= 0 || h.Efficiency > 1 {
		return 0.3
	}
	return h.Efficiency
}

func (h Harvester) floor() float64 {
	if h.SensitivityW < 0 {
		return 0
	}
	if h.SensitivityW == 0 {
		return 1e-6
	}
	return h.SensitivityW
}

// OutputPower returns the DC power produced for a given incident RF
// power; zero below the sensitivity floor.
func (h Harvester) OutputPower(incidentW float64) float64 {
	if incidentW < h.floor() {
		return 0
	}
	return incidentW * h.eff()
}

// Harvest returns the energy in joules collected over dt seconds at the
// given incident power.
func (h Harvester) Harvest(incidentW, dt float64) float64 {
	if dt <= 0 {
		return 0
	}
	return h.OutputPower(incidentW) * dt
}

// Capacitor is the tag's energy store. Energy bookkeeping is in joules;
// voltage is derived (E = C*V^2/2) for the brown-out check.
type Capacitor struct {
	// CapacitanceF is the capacitance in farads. Default 100 µF.
	CapacitanceF float64
	// MaxVoltageV caps the stored energy. Default 3.3 V.
	MaxVoltageV float64
	// MinVoltageV is the brown-out threshold below which the tag logic
	// cannot run. Default 1.8 V.
	MinVoltageV float64
	// LeakageW is a constant self-discharge power. Default 0.
	LeakageW float64

	energyJ float64
}

func (c *Capacitor) capF() float64 {
	if c.CapacitanceF <= 0 {
		return 100e-6
	}
	return c.CapacitanceF
}

func (c *Capacitor) maxV() float64 {
	if c.MaxVoltageV <= 0 {
		return 3.3
	}
	return c.MaxVoltageV
}

func (c *Capacitor) minV() float64 {
	if c.MinVoltageV <= 0 {
		return 1.8
	}
	return c.MinVoltageV
}

// MaxEnergy returns the storable energy at the voltage cap.
func (c *Capacitor) MaxEnergy() float64 {
	v := c.maxV()
	return 0.5 * c.capF() * v * v
}

// MinEnergy returns the energy at the brown-out voltage.
func (c *Capacitor) MinEnergy() float64 {
	v := c.minV()
	return 0.5 * c.capF() * v * v
}

// Energy returns the currently stored energy in joules.
func (c *Capacitor) Energy() float64 { return c.energyJ }

// Voltage returns the current capacitor voltage.
func (c *Capacitor) Voltage() float64 {
	return math.Sqrt(2 * c.energyJ / c.capF())
}

// SetVoltage initialises the store to a given voltage (clamped to the
// cap).
func (c *Capacitor) SetVoltage(v float64) {
	if v < 0 {
		v = 0
	}
	if v > c.maxV() {
		v = c.maxV()
	}
	c.energyJ = 0.5 * c.capF() * v * v
}

// Store deposits energy, clamping at the voltage cap. It returns the
// energy actually stored.
func (c *Capacitor) Store(joules float64) float64 {
	if joules <= 0 {
		return 0
	}
	room := c.MaxEnergy() - c.energyJ
	if joules > room {
		joules = room
	}
	c.energyJ += joules
	return joules
}

// Draw removes energy for load consumption. It returns false (drawing
// nothing) if the draw would push the capacitor below the brown-out
// energy — the tag powers off instead of executing partially.
func (c *Capacitor) Draw(joules float64) bool {
	if joules < 0 {
		return false
	}
	if c.energyJ-joules < c.MinEnergy() {
		return false
	}
	c.energyJ -= joules
	return true
}

// Leak applies self-discharge over dt seconds.
func (c *Capacitor) Leak(dt float64) {
	if c.LeakageW <= 0 || dt <= 0 {
		return
	}
	c.energyJ -= c.LeakageW * dt
	if c.energyJ < 0 {
		c.energyJ = 0
	}
}

// Alive reports whether the tag is above brown-out.
func (c *Capacitor) Alive() bool { return c.energyJ >= c.MinEnergy() }

// Budget simulates the steady-state energy balance of a tag: harvesting
// from incident power while paying circuit consumption, tracking outage
// (time spent browned out).
type Budget struct {
	Harvester Harvester
	Cap       Capacitor
	// CircuitW is the tag's continuous consumption while operating.
	CircuitW float64

	totalT  float64
	outageT float64
}

// Step advances the budget by dt seconds with the given incident RF
// power reaching the harvester (i.e. already reduced by the fraction the
// tag reflected). It returns true if the tag was operational for the
// step.
func (b *Budget) Step(incidentW, dt float64) bool {
	b.Cap.Store(b.Harvester.Harvest(incidentW, dt))
	b.Cap.Leak(dt)
	ok := b.Cap.Draw(b.CircuitW * dt)
	b.totalT += dt
	if !ok {
		b.outageT += dt
	}
	return ok
}

// OutageFraction returns the fraction of simulated time the tag spent
// browned out.
func (b *Budget) OutageFraction() float64 {
	if b.totalT == 0 {
		return 0
	}
	return b.outageT / b.totalT
}

// Reset clears accumulated outage statistics (not the capacitor state).
func (b *Budget) Reset() { b.totalT, b.outageT = 0, 0 }

// SplitIncident divides incident RF power at the tag antenna between the
// backscatter modulator and the harvester for a reflection coefficient
// rho in [0, 1]: the modulator re-radiates rho of the power, the
// harvester sees (1-rho). This is THE trade-off knob of the paper: bigger
// rho means a stronger feedback signal and a poorer energy supply.
func SplitIncident(incidentW, rho float64) (reflectedW, harvestableW float64) {
	if rho < 0 {
		rho = 0
	}
	if rho > 1 {
		rho = 1
	}
	return incidentW * rho, incidentW * (1 - rho)
}

// String summarises the harvester for logs.
func (h Harvester) String() string {
	return fmt.Sprintf("harvester(eta=%.2f floor=%.1fuW)", h.eff(), h.floor()*1e6)
}
