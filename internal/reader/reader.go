// Package reader models the powered side of the link: it transmits the
// forward OOK frame from a full-duplex antenna and, while transmitting,
// decodes the tag's backscatter feedback out of its own receive chain.
//
// Self-interference handling is the part the paper gets for free: the
// reader knows its transmit envelope exactly, so it divides the received
// envelope by it (SINormalize) and the tag's reflection becomes a
// two-level ripple around a constant. The alternative SISubtract mode
// (estimate the leakage coefficient, subtract the scaled transmit signal,
// envelope the residual) is provided for the ablation benchmark.
package reader

import (
	"fmt"
	"math"

	"repro/internal/feedback"
	"repro/internal/phy"
	"repro/internal/sigproc"
)

// SIMode selects the self-interference handling strategy.
type SIMode int

// Self-interference modes.
const (
	// SINormalize divides the received envelope by the known transmit
	// envelope (the paper's approach; needs no calibration).
	SINormalize SIMode = iota
	// SISubtract estimates the leakage coefficient from a calibration
	// window and subtracts the scaled transmit waveform before envelope
	// detection.
	SISubtract
)

// String returns the mode name.
func (m SIMode) String() string {
	switch m {
	case SINormalize:
		return "normalize"
	case SISubtract:
		return "subtract"
	default:
		return fmt.Sprintf("SIMode(%d)", int(m))
	}
}

// Config describes a reader.
type Config struct {
	// Modem is the forward-link OOK modem.
	Modem phy.OOK
	// Code is the forward line code name (default "fm0").
	Code string
	// WarmupChips is the preamble warmup length (default 16).
	WarmupChips int
	// SI selects the self-interference strategy (default SINormalize).
	SI SIMode
	// FeedbackCode is the feedback line code (default Manchester).
	FeedbackCode feedback.Code
}

// Layout maps the transmitted waveform to protocol sections, in samples.
type Layout struct {
	// PadLen is the leading idle-carrier padding.
	PadLen int
	// AcquireEnd is the end of the preamble+header section (the tag's
	// acquisition block is [0, AcquireEnd)).
	AcquireEnd int
	// ChunkEnds[i] is the end sample of chunk i's block; chunk i spans
	// [prevEnd, ChunkEnds[i]). The last chunk block includes the frame
	// trailer bytes.
	ChunkEnds []int
	// FlushEnd is the end of the trailing idle feedback-flush slot.
	FlushEnd int
}

// NumChunks returns the number of chunk blocks.
func (l Layout) NumChunks() int { return len(l.ChunkEnds) }

// ChunkBlock returns the [start, end) sample range of chunk i.
func (l Layout) ChunkBlock(i int) (int, int) {
	start := l.AcquireEnd
	if i > 0 {
		start = l.ChunkEnds[i-1]
	}
	return start, l.ChunkEnds[i]
}

// FlushBlock returns the [start, end) sample range of the flush slot.
func (l Layout) FlushBlock() (int, int) {
	if n := len(l.ChunkEnds); n > 0 {
		return l.ChunkEnds[n-1], l.FlushEnd
	}
	return l.AcquireEnd, l.FlushEnd
}

// Reader is a full-duplex reader instance. Not safe for concurrent use.
type Reader struct {
	cfg  Config
	code phy.LineCode
	pre  []byte // preamble chips, fixed by the configuration

	leakAmp float64 // SISubtract calibration

	// Scratch buffers.
	rxEnv, txEnv, normBuf, resBuf []float64
	waveBuf                       sigproc.IQ
	bitBuf, chipBuf               []byte
	chunkEnds                     []int
}

// New returns a reader with the given configuration.
func New(cfg Config) (*Reader, error) {
	r := &Reader{}
	if err := r.Reconfigure(cfg); err != nil {
		return nil, err
	}
	return r, nil
}

// Reconfigure re-initialises the reader in place for a new
// configuration, keeping the waveform and decoder scratch of the old
// one. The result behaves exactly like New(cfg).
func (r *Reader) Reconfigure(cfg Config) error {
	if cfg.Code == "" {
		cfg.Code = "fm0"
	}
	code, err := phy.CodeByName(cfg.Code)
	if err != nil {
		return err
	}
	if cfg.WarmupChips == 0 {
		cfg.WarmupChips = 16
	}
	if r.cfg.WarmupChips != cfg.WarmupChips || r.pre == nil {
		r.pre = phy.DefaultPreambleChips(cfg.WarmupChips)
	}
	r.cfg = cfg
	r.code = code
	r.leakAmp = 0
	return nil
}

// Reset restores the reader to its post-New state (clearing the
// SISubtract leakage calibration) while keeping all internal scratch,
// so one reader can be reused across independent experiment cells
// without reallocating.
func (r *Reader) Reset() { r.leakAmp = 0 }

// Grow pre-sizes the decoder scratch for receive blocks of up to n
// samples, so a sweep that knows its largest block avoids the
// stepwise re-allocations as block sizes increase across cells.
func (r *Reader) Grow(n int) {
	if cap(r.rxEnv) < n {
		r.rxEnv = make([]float64, 0, n)
	}
	if cap(r.txEnv) < n {
		r.txEnv = make([]float64, 0, n)
	}
	if cap(r.normBuf) < n {
		r.normBuf = make([]float64, 0, n)
	}
	if cap(r.resBuf) < n {
		r.resBuf = make([]float64, 0, n)
	}
}

// Modem returns the configured forward modem.
func (r *Reader) Modem() phy.OOK { return r.cfg.Modem }

// BuildWaveform renders a wire-format frame into the transmit waveform
// and its section layout. padChips idle chips precede the preamble
// (randomise per frame to exercise the tag's sync); the flush slot is one
// last-chunk-block long so the tag can return the final chunk's
// feedback.
//
// The returned waveform and the layout's ChunkEnds alias reader-owned
// scratch: they are valid until the next BuildWaveform call, which
// keeps the per-frame hot path allocation-free.
func (r *Reader) BuildWaveform(wire []byte, hdr phy.Header, padChips int) (sigproc.IQ, Layout, error) {
	if padChips < 0 {
		padChips = 0
	}
	o := r.cfg.Modem
	cpb := r.code.ChipsPerBit()
	sps := o.SamplesPerChipN()
	if fm0, ok := r.code.(*phy.FM0); ok {
		fm0.Reset()
	}

	wave := r.waveBuf[:0]
	wave = o.AppendIdle(wave, padChips)
	pre := r.pre
	wave = o.AppendChips(wave, pre)

	r.bitBuf = sigproc.BytesToBits(wire, r.bitBuf[:0])
	r.chipBuf = r.code.Encode(r.bitBuf, r.chipBuf[:0])
	wave = o.AppendChips(wave, r.chipBuf)

	layout := Layout{PadLen: padChips * sps}
	layout.AcquireEnd = (padChips+len(pre)+phy.HeaderSize*8*cpb)*sps + 0
	n := hdr.NumChunks()
	if cap(r.chunkEnds) < n {
		r.chunkEnds = make([]int, n)
	}
	layout.ChunkEnds = r.chunkEnds[:n]
	for i := 0; i < n; i++ {
		_, endByte := hdr.ChunkWireRange(i)
		end := (padChips+len(pre))*sps + endByte*8*cpb*sps
		if i == n-1 {
			// Fold the frame trailer into the last chunk block.
			end += phy.FrameTrailerSize * 8 * cpb * sps
		}
		layout.ChunkEnds[i] = end
	}
	// Flush slot: mirror the last chunk's duration (or one header length
	// for chunkless frames) of idle carrier.
	flushLen := phy.HeaderSize * 8 * cpb * sps
	if n > 0 {
		s, e := layout.ChunkBlock(n - 1)
		flushLen = e - s
	}
	wave = o.AppendIdle(wave, flushLen/sps+1)
	r.waveBuf = wave
	layout.FlushEnd = len(wave)
	if got := layout.ChunkEnds; n > 0 && got[n-1] > len(wave) {
		return nil, Layout{}, fmt.Errorf("reader: layout overruns waveform (%d > %d)", got[n-1], len(wave))
	}
	return wave, layout, nil
}

// Calibrate estimates the self-interference leakage amplitude from a
// window where the tag is known to be absorbing (e.g. the idle pad):
// leak = mean(|rx|) / mean(|tx|). Required before SISubtract decoding;
// harmless otherwise.
func (r *Reader) Calibrate(rxPad, txPad sigproc.IQ) {
	r.rxEnv = rxPad.Envelope(r.rxEnv[:0])
	r.txEnv = txPad.Envelope(r.txEnv[:0])
	rx := sigproc.MeanFloat(r.rxEnv)
	tx := sigproc.MeanFloat(r.txEnv)
	if tx > 0 {
		r.leakAmp = rx / tx
	}
}

// LeakEstimate returns the calibrated leakage amplitude (0 before
// Calibrate).
func (r *Reader) LeakEstimate() float64 { return r.leakAmp }

// DecodeFeedbackBit recovers one feedback bit from a block during which
// the tag Manchester-modulated its reflection across the whole block.
// rx is what the reader received, tx what it transmitted over the same
// samples. The margin is the achieved level separation (a confidence /
// collision-anomaly signal).
func (r *Reader) DecodeFeedbackBit(rx, tx sigproc.IQ) (bit byte, margin float64) {
	if len(rx) != len(tx) {
		panic("reader: rx/tx block length mismatch")
	}
	if len(rx) < 2 {
		return 0, 0
	}
	cfg := feedback.Config{SamplesPerBit: len(rx), Code: r.cfg.FeedbackCode}
	switch r.cfg.SI {
	case SISubtract:
		// Residual = rx - leak*tx; its envelope is high while the tag
		// reflects and near zero while it absorbs.
		if cap(r.resBuf) < len(rx) {
			r.resBuf = make([]float64, len(rx))
		}
		r.resBuf = r.resBuf[:len(rx)]
		l := complex(r.leakAmp, 0)
		for i := range rx {
			d := rx[i] - l*tx[i]
			r.resBuf[i] = realAbs(d)
		}
		if r.cfg.FeedbackCode == feedback.CodeNRZ {
			thr := cfg.EstimateThreshold(r.resBuf)
			return cfg.DecodeOne(r.resBuf, thr)
		}
		return cfg.DecodeOne(r.resBuf, 0)
	default: // SINormalize
		r.rxEnv = rx.Envelope(r.rxEnv[:0])
		r.txEnv = tx.Envelope(r.txEnv[:0])
		r.normBuf = feedback.Normalize(r.rxEnv, r.txEnv, 0, r.normBuf[:0])
		if r.cfg.FeedbackCode == feedback.CodeNRZ {
			thr := cfg.EstimateThreshold(r.normBuf)
			return cfg.DecodeOne(r.normBuf, thr)
		}
		return cfg.DecodeOne(r.normBuf, 0)
	}
}

func realAbs(v complex128) float64 {
	re, im := real(v), imag(v)
	return math.Sqrt(re*re + im*im)
}
