package reader

import (
	"math"
	"testing"

	"repro/internal/feedback"
	"repro/internal/phy"
	"repro/internal/sigproc"
	"repro/internal/simrand"
)

func newTestReader(t *testing.T, cfg Config) *Reader {
	t.Helper()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewDefaults(t *testing.T) {
	r := newTestReader(t, Config{})
	if r.cfg.Code != "fm0" || r.cfg.WarmupChips != 16 {
		t.Fatalf("defaults not applied: %+v", r.cfg)
	}
}

func TestNewRejectsBadCode(t *testing.T) {
	if _, err := New(Config{Code: "bogus"}); err == nil {
		t.Fatal("bad line code must error")
	}
}

func buildTestFrame(t *testing.T, payloadLen int, chunkSize uint8) (phy.Header, []byte) {
	t.Helper()
	payload := make([]byte, payloadLen)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	hdr := phy.Header{Type: phy.FrameData, Seq: 5, ChunkSize: chunkSize}
	wire, err := phy.BuildFrame(hdr, payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	hdr.Version = phy.ProtocolVersion
	hdr.PayloadLen = uint16(payloadLen)
	return hdr, wire
}

func TestBuildWaveformLayout(t *testing.T) {
	r := newTestReader(t, Config{Modem: phy.OOK{SamplesPerChip: 4}})
	hdr, wire := buildTestFrame(t, 32, 8) // 4 chunks
	wave, layout, err := r.BuildWaveform(wire, hdr, 10)
	if err != nil {
		t.Fatal(err)
	}
	if layout.NumChunks() != 4 {
		t.Fatalf("chunks = %d", layout.NumChunks())
	}
	if layout.PadLen != 40 {
		t.Fatalf("pad = %d samples", layout.PadLen)
	}
	// Monotone, within waveform.
	prev := layout.AcquireEnd
	if prev <= layout.PadLen {
		t.Fatal("acquire must extend past the pad")
	}
	for i, e := range layout.ChunkEnds {
		if e <= prev {
			t.Fatalf("chunk %d end %d not after %d", i, e, prev)
		}
		prev = e
	}
	if layout.FlushEnd != len(wave) {
		t.Fatalf("flush end %d != waveform %d", layout.FlushEnd, len(wave))
	}
	// Chunk blocks tile the region between acquire and last chunk.
	s0, e0 := layout.ChunkBlock(0)
	if s0 != layout.AcquireEnd || e0 != layout.ChunkEnds[0] {
		t.Fatalf("chunk 0 block = (%d,%d)", s0, e0)
	}
	s3, _ := layout.ChunkBlock(3)
	if s3 != layout.ChunkEnds[2] {
		t.Fatal("chunk 3 must start at chunk 2's end")
	}
	fs, fe := layout.FlushBlock()
	if fs != layout.ChunkEnds[3] || fe != layout.FlushEnd {
		t.Fatalf("flush block = (%d,%d)", fs, fe)
	}
}

func TestBuildWaveformChunkSamplesMatchBytes(t *testing.T) {
	r := newTestReader(t, Config{Modem: phy.OOK{SamplesPerChip: 4}})
	hdr, wire := buildTestFrame(t, 24, 8) // 3 chunks of 8+1 bytes
	_, layout, err := r.BuildWaveform(wire, hdr, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Chunk 0 and 1 blocks have identical lengths (same wire bytes).
	s0, e0 := layout.ChunkBlock(0)
	s1, e1 := layout.ChunkBlock(1)
	if e0-s0 != e1-s1 {
		t.Fatalf("equal chunks with different block sizes: %d vs %d", e0-s0, e1-s1)
	}
	// 9 wire bytes * 8 bits * 2 chips (fm0) * 4 sps = 576 samples.
	if e0-s0 != 576 {
		t.Fatalf("chunk block = %d samples, want 576", e0-s0)
	}
}

func TestBuildWaveformNegativePadClamps(t *testing.T) {
	r := newTestReader(t, Config{Modem: phy.OOK{SamplesPerChip: 2}})
	hdr, wire := buildTestFrame(t, 8, 8)
	_, layout, err := r.BuildWaveform(wire, hdr, -5)
	if err != nil {
		t.Fatal(err)
	}
	if layout.PadLen != 0 {
		t.Fatal("negative pad must clamp to 0")
	}
}

func TestFlushBlockChunkless(t *testing.T) {
	r := newTestReader(t, Config{Modem: phy.OOK{SamplesPerChip: 2}})
	hdr, wire := buildTestFrame(t, 0, 8)
	_, layout, err := r.BuildWaveform(wire, hdr, 0)
	if err != nil {
		t.Fatal(err)
	}
	fs, fe := layout.FlushBlock()
	if fs != layout.AcquireEnd || fe <= fs {
		t.Fatalf("chunkless flush block = (%d,%d)", fs, fe)
	}
}

func TestCalibrate(t *testing.T) {
	r := newTestReader(t, Config{})
	tx := sigproc.NewIQ(100).Fill(2)
	rx := sigproc.NewIQ(100).Fill(complex(0.2, 0)) // leak amp 0.1
	r.Calibrate(rx, tx)
	if math.Abs(r.LeakEstimate()-0.1) > 1e-12 {
		t.Fatalf("leak = %g, want 0.1", r.LeakEstimate())
	}
	// Zero tx: estimate unchanged.
	before := r.LeakEstimate()
	r.Calibrate(rx, sigproc.NewIQ(100))
	if r.LeakEstimate() != before {
		t.Fatal("zero-tx calibration must not update")
	}
}

// synthFeedbackBlock builds rx/tx blocks where the tag Manchester-encodes
// one bit over the whole block: rx = leak*tx + refl*state*tx + noise.
func synthFeedbackBlock(n int, bit byte, leak, refl, noise float64, seed uint64) (rx, tx sigproc.IQ) {
	src := simrand.New(seed)
	tx = make(sigproc.IQ, n)
	for i := range tx {
		// OOK-ish transmit envelope: alternate high/low chips of 4.
		amp := 1.0
		if (i/4)%2 == 1 {
			amp = 0.25
		}
		tx[i] = complex(amp, 0)
	}
	cfg := feedback.Config{SamplesPerBit: n, Code: feedback.CodeManchester}
	states := cfg.AppendStates(nil, []byte{bit})
	rx = make(sigproc.IQ, n)
	for i := range rx {
		v := complex(leak, 0) * tx[i]
		if states[i] == feedback.StateReflect {
			v += complex(refl, 0) * tx[i]
		}
		rx[i] = v
	}
	src.FillNoise(rx, noise)
	return rx, tx
}

func TestDecodeFeedbackBitNormalize(t *testing.T) {
	r := newTestReader(t, Config{})
	for _, bit := range []byte{0, 1} {
		rx, tx := synthFeedbackBlock(512, bit, 0.1, 0.02, 1e-6, uint64(bit)+1)
		got, margin := r.DecodeFeedbackBit(rx, tx)
		if got != bit {
			t.Fatalf("bit %d decoded as %d", bit, got)
		}
		if margin <= 0 {
			t.Fatalf("margin = %g, want positive", margin)
		}
	}
}

func TestDecodeFeedbackBitSubtract(t *testing.T) {
	r := newTestReader(t, Config{SI: SISubtract})
	// Calibrate on an absorb-only window.
	txCal := sigproc.NewIQ(256).Fill(1)
	rxCal := txCal.Clone().Scale(0.1)
	r.Calibrate(rxCal, txCal)
	for _, bit := range []byte{0, 1} {
		rx, tx := synthFeedbackBlock(512, bit, 0.1, 0.02, 1e-7, uint64(bit)+7)
		got, _ := r.DecodeFeedbackBit(rx, tx)
		if got != bit {
			t.Fatalf("subtract mode: bit %d decoded as %d", bit, got)
		}
	}
}

func TestDecodeFeedbackNoisyAveraging(t *testing.T) {
	r := newTestReader(t, Config{})
	src := simrand.New(3)
	errs := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		bit := src.Bit()
		rx, tx := synthFeedbackBlock(2048, bit, 0.1, 0.01, 1e-3, uint64(i)+100)
		got, _ := r.DecodeFeedbackBit(rx, tx)
		if got != bit {
			errs++
		}
	}
	if errs > 2 {
		t.Fatalf("feedback errors %d/%d with heavy averaging", errs, trials)
	}
}

func TestDecodeFeedbackBitPanicsOnMismatch(t *testing.T) {
	r := newTestReader(t, Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.DecodeFeedbackBit(sigproc.NewIQ(4), sigproc.NewIQ(8))
}

func TestDecodeFeedbackBitTinyBlock(t *testing.T) {
	r := newTestReader(t, Config{})
	bit, margin := r.DecodeFeedbackBit(sigproc.NewIQ(1), sigproc.NewIQ(1))
	if bit != 0 || margin != 0 {
		t.Fatal("single-sample block must return zeros")
	}
}

func TestDecodeFeedbackNRZMode(t *testing.T) {
	r := newTestReader(t, Config{FeedbackCode: feedback.CodeNRZ})
	// NRZ over a block needs both levels for threshold estimation; use a
	// block with a known half-and-half pilot shape by decoding a
	// Manchester-shaped block as NRZ halves. Instead, simply verify the
	// call path returns without panic and with a defined bit.
	rx, tx := synthFeedbackBlock(256, 1, 0.1, 0.05, 0, 42)
	bit, _ := r.DecodeFeedbackBit(rx, tx)
	_ = bit // value depends on threshold estimate; path coverage only
}

func TestSIModeString(t *testing.T) {
	if SINormalize.String() != "normalize" || SISubtract.String() != "subtract" || SIMode(7).String() == "" {
		t.Fatal("SIMode.String broken")
	}
}
