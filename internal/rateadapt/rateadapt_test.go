package rateadapt

import (
	"math"
	"testing"
)

func TestChunkLossProbShape(t *testing.T) {
	r := RateSpec{ReqSNRdB: 8}
	if got := ChunkLossProb(r, 8); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("loss at requirement = %g, want 0.5", got)
	}
	if ChunkLossProb(r, 20) > 0.01 {
		t.Fatal("high SNR must have near-zero loss")
	}
	if ChunkLossProb(r, -5) < 0.99 {
		t.Fatal("low SNR must lose nearly everything")
	}
	// Monotone decreasing in SNR.
	prev := 1.0
	for snr := -10.0; snr <= 30; snr += 0.5 {
		p := ChunkLossProb(r, snr)
		if p > prev {
			t.Fatalf("loss not monotone at %g dB", snr)
		}
		prev = p
	}
}

func TestDefaultRatesOrdered(t *testing.T) {
	for i := 1; i < len(DefaultRates); i++ {
		if DefaultRates[i].Mult <= DefaultRates[i-1].Mult {
			t.Fatal("rates must be ordered slow to fast")
		}
		if DefaultRates[i].ReqSNRdB <= DefaultRates[i-1].ReqSNRdB {
			t.Fatal("faster rates must require more SNR")
		}
	}
}

func TestFixedAdapter(t *testing.T) {
	f := &Fixed{Index: 2, RateName: "1x"}
	f.OnChunk(false)
	f.OnFrame(false)
	if f.Rate() != 2 {
		t.Fatal("fixed adapter must never move")
	}
	if f.Name() != "fixed-1x" {
		t.Fatalf("name = %s", f.Name())
	}
}

func TestARFStepsUpAndDown(t *testing.T) {
	a := NewARF(4)
	if a.Rate() != 0 {
		t.Fatal("ARF must start at the lowest rate")
	}
	for i := 0; i < 3; i++ {
		a.OnFrame(true)
	}
	if a.Rate() != 1 {
		t.Fatalf("after 3 good frames rate = %d, want 1", a.Rate())
	}
	a.OnFrame(false)
	if a.Rate() != 0 {
		t.Fatalf("after a bad frame rate = %d, want 0", a.Rate())
	}
	// Chunk feedback is ignored.
	for i := 0; i < 100; i++ {
		a.OnChunk(true)
	}
	if a.Rate() != 0 {
		t.Fatal("ARF must ignore chunk feedback")
	}
}

func TestARFBounded(t *testing.T) {
	a := NewARF(2)
	for i := 0; i < 50; i++ {
		a.OnFrame(true)
	}
	if a.Rate() != 1 {
		t.Fatalf("rate = %d, want max 1", a.Rate())
	}
	for i := 0; i < 50; i++ {
		a.OnFrame(false)
	}
	if a.Rate() != 0 {
		t.Fatalf("rate = %d, want 0", a.Rate())
	}
}

func TestFullDuplexAdapterReactsPerChunk(t *testing.T) {
	a := NewFullDuplex(4)
	for i := 0; i < 8; i++ {
		a.OnChunk(true)
	}
	if a.Rate() != 1 {
		t.Fatalf("after 8 ACKs rate = %d, want 1", a.Rate())
	}
	a.OnChunk(false)
	if a.Rate() != 0 {
		t.Fatal("one NACK must step down immediately")
	}
	a.OnChunk(false) // at floor
	if a.Rate() != 0 {
		t.Fatal("rate must not go below 0")
	}
}

func TestRunTraceDeterministic(t *testing.T) {
	cfg := SimConfig{MeanSNRdB: 10, Seed: 7}
	a := RunTrace(cfg, NewFullDuplex(4), 5000)
	b := RunTrace(cfg, NewFullDuplex(4), 5000)
	if a.DeliveredBytes != b.DeliveredBytes || a.Switches != b.Switches {
		t.Fatal("same seed must reproduce")
	}
}

func TestHighSNRFavoursFastRate(t *testing.T) {
	cfg := SimConfig{MeanSNRdB: 25, Seed: 11}
	res := RunTrace(cfg, NewFullDuplex(len(DefaultRates)), 20000)
	// Most time should be spent at the top rate.
	top := res.RateTime[len(res.RateTime)-1]
	var total float64
	for _, v := range res.RateTime {
		total += v
	}
	if top/total < 0.5 {
		t.Fatalf("at 25 dB the adapter spent only %.0f%% at the top rate", 100*top/total)
	}
}

func TestLowSNRStaysSlow(t *testing.T) {
	cfg := SimConfig{MeanSNRdB: 2, Seed: 13}
	res := RunTrace(cfg, NewFullDuplex(len(DefaultRates)), 20000)
	slow := res.RateTime[0] + res.RateTime[1]
	var total float64
	for _, v := range res.RateTime {
		total += v
	}
	if slow/total < 0.5 {
		t.Fatalf("at 2 dB the adapter spent only %.0f%% at slow rates", 100*slow/total)
	}
}

func TestFDOutperformsARFOnFades(t *testing.T) {
	// Averaged over several seeds, per-chunk adaptation should deliver
	// more than frame-level probing on a channel whose coherence is
	// shorter than a frame.
	var fdSum, arfSum float64
	for seed := uint64(0); seed < 5; seed++ {
		cfg := SimConfig{MeanSNRdB: 12, FadeRho: 0.95, FrameChunks: 48, Seed: seed}
		fd := RunTrace(cfg, NewFullDuplex(len(DefaultRates)), 30000)
		arf := RunTrace(cfg, NewARF(len(DefaultRates)), 30000)
		fdSum += fd.ThroughputBytesPerTime()
		arfSum += arf.ThroughputBytesPerTime()
	}
	if fdSum <= arfSum {
		t.Fatalf("FD adaptation %g must beat ARF %g on fast fades", fdSum/5, arfSum/5)
	}
}

func TestFDBeatsBadFixedChoices(t *testing.T) {
	cfg := SimConfig{MeanSNRdB: 10, FadeRho: 0.98, Seed: 17}
	fd := RunTrace(cfg, NewFullDuplex(len(DefaultRates)), 30000)
	fixedSlow := RunTrace(cfg, &Fixed{Index: 0, RateName: "0.25x"}, 30000)
	fixedFast := RunTrace(cfg, &Fixed{Index: 3, RateName: "2x"}, 30000)
	if fd.ThroughputBytesPerTime() <= fixedSlow.ThroughputBytesPerTime() {
		t.Fatalf("FD %g must beat always-slow %g", fd.ThroughputBytesPerTime(), fixedSlow.ThroughputBytesPerTime())
	}
	if fd.ThroughputBytesPerTime() <= fixedFast.ThroughputBytesPerTime() {
		t.Fatalf("FD %g must beat always-fast %g at 10 dB", fd.ThroughputBytesPerTime(), fixedFast.ThroughputBytesPerTime())
	}
}

func TestTraceResultAccessors(t *testing.T) {
	var r TraceResult
	if r.ThroughputBytesPerTime() != 0 || r.LossRate() != 0 {
		t.Fatal("zero-value accessors must be 0")
	}
	r.Adapter = "x"
	if r.String() == "" {
		t.Fatal("String must render")
	}
}

func TestFeedbackBERDegradesFD(t *testing.T) {
	clean := SimConfig{MeanSNRdB: 12, FadeRho: 0.97, Seed: 19}
	noisy := clean
	noisy.FeedbackBER = 0.2
	a := RunTrace(clean, NewFullDuplex(len(DefaultRates)), 30000)
	b := RunTrace(noisy, NewFullDuplex(len(DefaultRates)), 30000)
	if b.ThroughputBytesPerTime() >= a.ThroughputBytesPerTime() {
		t.Fatalf("20%% feedback BER should hurt: %g vs %g",
			b.ThroughputBytesPerTime(), a.ThroughputBytesPerTime())
	}
}
