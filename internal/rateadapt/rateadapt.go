// Package rateadapt compares rate-adaptation policies on a time-varying
// channel: the paper's full-duplex per-chunk feedback lets the
// transmitter react within one chunk, versus packet-level probing
// (ARF-style) that only learns at frame boundaries, versus fixed rates.
//
// The channel is a Gauss-Markov fading SNR trace sampled per chunk-time;
// each rate has an SNR requirement, and chunk loss follows a logistic
// curve around it (faster rates demand more SNR). Throughput counts
// delivered chunk payloads over elapsed time, where a chunk at rate
// multiplier m takes 1/m base chunk-times.
package rateadapt

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/simrand"
)

// RateSpec describes one rate-table entry. The JSON tags let scenario
// files (internal/netsim) declare custom rate tables as data.
type RateSpec struct {
	// Name for tables.
	Name string `json:"name"`
	// Mult is the speed multiplier relative to the base rate.
	Mult float64 `json:"mult"`
	// ReqSNRdB is the SNR at which chunk loss is 50%; loss falls
	// steeply above it.
	ReqSNRdB float64 `json:"req_snr_db"`
}

// DefaultRates is the standard 4-rate table, matching the forward-link
// modem's rate IDs.
var DefaultRates = []RateSpec{
	{Name: "0.25x", Mult: 0.25, ReqSNRdB: 2},
	{Name: "0.5x", Mult: 0.5, ReqSNRdB: 6},
	{Name: "1x", Mult: 1, ReqSNRdB: 10},
	{Name: "2x", Mult: 2, ReqSNRdB: 14},
}

// ChunkLossProb returns the chunk loss probability of rate r at the
// given instantaneous SNR (dB): a steep logistic cliff around the
// requirement (0.5 dB slope), reflecting the sharp BER waterfall of
// coded chunks.
func ChunkLossProb(r RateSpec, snrDB float64) float64 {
	return 1 / (1 + math.Exp((snrDB-r.ReqSNRdB)/0.5))
}

// FadeStep advances a unit-mean-power Gauss-Markov fading coefficient
// one chunk-time: h' = rho*h + CN(0, 1-rho^2). This is the trace
// model's recursion, exported so other engines (the netsim scenario
// engine) evolve exactly the same channel.
func FadeStep(h complex128, rho float64, src *simrand.Source) complex128 {
	return complex(rho, 0)*h + src.RayleighCoeff(1-rho*rho)
}

// FadeGainDB is a fading coefficient's instantaneous power gain in dB,
// floored at -90 dB exactly as the trace model floors it.
func FadeGainDB(h complex128) float64 {
	gain := real(h * cmplx.Conj(h))
	return 10 * math.Log10(math.Max(gain, 1e-9))
}

// Adapter selects the transmission rate index and learns from feedback.
type Adapter interface {
	// Name identifies the policy.
	Name() string
	// Rate returns the current rate index into the table.
	Rate() int
	// OnChunk delivers per-chunk feedback (full-duplex only; others
	// ignore it).
	OnChunk(ok bool)
	// OnFrame delivers end-of-frame feedback (ok = whole frame clean).
	OnFrame(ok bool)
}

// Fixed always transmits at one rate.
type Fixed struct {
	Index    int
	RateName string
}

// Name implements Adapter.
func (f *Fixed) Name() string { return "fixed-" + f.RateName }

// Rate implements Adapter.
func (f *Fixed) Rate() int { return f.Index }

// OnChunk implements Adapter.
func (f *Fixed) OnChunk(bool) {}

// OnFrame implements Adapter.
func (f *Fixed) OnFrame(bool) {}

// ARF is the packet-probing baseline: step the rate up after UpAfter
// consecutive clean frames, step down after DownAfter consecutive failed
// frames. It can only learn once per frame — the granularity half-duplex
// feedback allows.
type ARF struct {
	NumRates  int
	UpAfter   int
	DownAfter int

	idx        int
	goodStreak int
	badStreak  int
}

// NewARF returns an ARF adapter over n rates starting at the lowest.
func NewARF(n int) *ARF {
	return &ARF{NumRates: n, UpAfter: 3, DownAfter: 1}
}

// Name implements Adapter.
func (a *ARF) Name() string { return "arf-probing" }

// Rate implements Adapter.
func (a *ARF) Rate() int { return a.idx }

// OnChunk implements Adapter (packet probing ignores chunk feedback).
func (a *ARF) OnChunk(bool) {}

// OnFrame implements Adapter.
func (a *ARF) OnFrame(ok bool) {
	if ok {
		a.goodStreak++
		a.badStreak = 0
		if a.goodStreak >= a.UpAfter && a.idx < a.NumRates-1 {
			a.idx++
			a.goodStreak = 0
		}
		return
	}
	a.badStreak++
	a.goodStreak = 0
	if a.badStreak >= a.DownAfter && a.idx > 0 {
		a.idx--
		a.badStreak = 0
	}
}

// FullDuplex adapts per chunk using the instantaneous feedback channel:
// one NACK steps the rate down immediately; UpAfter consecutive ACKs
// step it up. This is the policy the paper's feedback channel enables.
type FullDuplex struct {
	NumRates int
	UpAfter  int

	idx        int
	goodStreak int
}

// NewFullDuplex returns the per-chunk adapter starting at the lowest
// rate.
func NewFullDuplex(n int) *FullDuplex {
	return &FullDuplex{NumRates: n, UpAfter: 5}
}

// Name implements Adapter.
func (a *FullDuplex) Name() string { return "fd-perchunk" }

// Rate implements Adapter.
func (a *FullDuplex) Rate() int { return a.idx }

// OnChunk implements Adapter.
func (a *FullDuplex) OnChunk(ok bool) {
	if !ok {
		a.idx--
		if a.idx < 0 {
			a.idx = 0
		}
		a.goodStreak = 0
		return
	}
	a.goodStreak++
	if a.goodStreak >= a.UpAfter && a.idx < a.NumRates-1 {
		a.idx++
		a.goodStreak = 0
	}
}

// OnFrame implements Adapter (already adapted per chunk).
func (a *FullDuplex) OnFrame(bool) {}

// SimConfig describes a rate-adaptation trace run.
type SimConfig struct {
	// Rates is the rate table (default DefaultRates).
	Rates []RateSpec
	// MeanSNRdB is the trace's average SNR.
	MeanSNRdB float64
	// FadeRho is the per-chunk-time Gauss-Markov correlation of the
	// fading process (default 0.99: coherence ~100 chunk-times).
	FadeRho float64
	// FrameChunks is the frame length in chunks (default 24).
	FrameChunks int
	// ChunkPayloadBytes sizes goodput accounting (default 64).
	ChunkPayloadBytes int
	// FeedbackBER flips per-chunk feedback bits (FD adapter only).
	FeedbackBER float64
	// Seed drives the fading trace and losses.
	Seed uint64
}

func (c *SimConfig) applyDefaults() {
	if len(c.Rates) == 0 {
		c.Rates = DefaultRates
	}
	if c.FadeRho == 0 {
		c.FadeRho = 0.99
	}
	if c.FrameChunks <= 0 {
		c.FrameChunks = 24
	}
	if c.ChunkPayloadBytes <= 0 {
		c.ChunkPayloadBytes = 64
	}
}

// TraceResult summarises a trace run.
type TraceResult struct {
	Adapter string
	// DeliveredBytes of chunk payload.
	DeliveredBytes int64
	// ElapsedTime in base chunk-times (rate m chunks take 1/m).
	ElapsedTime float64
	// ChunksSent and ChunksLost count transmissions.
	ChunksSent, ChunksLost int64
	// RateTime[i] is elapsed time spent at rate i.
	RateTime []float64
	// Switches counts rate changes.
	Switches int64
}

// ThroughputBytesPerTime returns delivered payload per base chunk-time.
func (r TraceResult) ThroughputBytesPerTime() float64 {
	if r.ElapsedTime == 0 {
		return 0
	}
	return float64(r.DeliveredBytes) / r.ElapsedTime
}

// LossRate returns the fraction of chunks lost.
func (r TraceResult) LossRate() float64 {
	if r.ChunksSent == 0 {
		return 0
	}
	return float64(r.ChunksLost) / float64(r.ChunksSent)
}

// String renders a compact summary.
func (r TraceResult) String() string {
	return fmt.Sprintf("%s: %.2f B/t loss=%.3f switches=%d",
		r.Adapter, r.ThroughputBytesPerTime(), r.LossRate(), r.Switches)
}

// RunTrace drives an adapter over nChunks chunk transmissions on a
// correlated fading SNR trace.
func RunTrace(cfg SimConfig, a Adapter, nChunks int) TraceResult {
	cfg.applyDefaults()
	src := simrand.New(cfg.Seed)
	res := TraceResult{Adapter: a.Name(), RateTime: make([]float64, len(cfg.Rates))}
	// Gauss-Markov complex fading; instantaneous SNR = mean * |h|^2.
	h := src.RayleighCoeff(1)
	rho := cfg.FadeRho
	frameOK := true
	chunkInFrame := 0
	prevRate := a.Rate()
	for i := 0; i < nChunks; i++ {
		// Advance the fading process one chunk-time.
		h = FadeStep(h, rho, src)
		snrDB := cfg.MeanSNRdB + FadeGainDB(h)

		ri := a.Rate()
		if ri != prevRate {
			res.Switches++
			prevRate = ri
		}
		r := cfg.Rates[ri]
		dt := 1 / r.Mult
		res.ElapsedTime += dt
		res.RateTime[ri] += dt
		res.ChunksSent++
		lost := src.Bool(ChunkLossProb(r, snrDB))
		if lost {
			res.ChunksLost++
			frameOK = false
		} else {
			res.DeliveredBytes += int64(cfg.ChunkPayloadBytes)
		}
		fb := !lost
		if cfg.FeedbackBER > 0 && src.Bool(cfg.FeedbackBER) {
			fb = !fb
		}
		a.OnChunk(fb)
		chunkInFrame++
		if chunkInFrame == cfg.FrameChunks {
			a.OnFrame(frameOK)
			frameOK = true
			chunkInFrame = 0
		}
	}
	return res
}
