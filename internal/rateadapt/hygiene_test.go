package rateadapt

// Counter-hygiene audit of the adaptation policies (ISSUE 5 satellite):
// streak counters must reset on every rate transition, no single
// feedback event may move the rate by more than one step, and the rate
// must stay inside the table. The audit model-checks the shipped
// adapters against a straightforward reference implementation over
// exhaustive short feedback sequences and long random ones — proving
// the current behaviour correct rather than fixing a latent bug (the
// satellite allows either outcome; no violation was found).

import (
	"testing"

	"repro/internal/simrand"
)

// refARF is an independently written reference of the documented ARF
// contract: step up after UpAfter consecutive clean frames, down after
// DownAfter consecutive failed frames, streaks cleared on the opposite
// outcome and on every transition.
type refARF struct {
	n, up, down    int
	idx, good, bad int
}

func (r *refARF) onFrame(ok bool) {
	if ok {
		r.bad = 0
		r.good++
		if r.good >= r.up && r.idx < r.n-1 {
			r.idx++
			r.good, r.bad = 0, 0
		}
	} else {
		r.good = 0
		r.bad++
		if r.bad >= r.down && r.idx > 0 {
			r.idx--
			r.good, r.bad = 0, 0
		}
	}
}

func TestARFMatchesReferenceExhaustively(t *testing.T) {
	// Every feedback sequence up to length 14 over a 4-rate table: long
	// enough to cross both boundaries repeatedly (UpAfter 3, DownAfter 1
	// reaches the top and returns within 14 events).
	const maxLen = 14
	for length := 1; length <= maxLen; length++ {
		for bits := 0; bits < 1<<length; bits++ {
			a := NewARF(4)
			ref := &refARF{n: 4, up: a.UpAfter, down: a.DownAfter}
			for i := 0; i < length; i++ {
				ok := bits>>i&1 == 1
				prev := a.Rate()
				a.OnFrame(ok)
				ref.onFrame(ok)
				if d := a.Rate() - prev; d < -1 || d > 1 {
					t.Fatalf("seq %0*b: OnFrame moved the rate by %d in one step", length, bits, d)
				}
				if a.Rate() != ref.idx {
					t.Fatalf("seq %0*b event %d: ARF at rate %d, reference at %d", length, bits, i, a.Rate(), ref.idx)
				}
			}
		}
	}
}

func TestARFCounterHygieneRandomised(t *testing.T) {
	// Long random feedback streams over several table sizes and
	// thresholds; beyond matching the reference the internal streaks
	// must stay bounded and mutually exclusive after every event.
	src := simrand.New(99)
	for _, n := range []int{2, 3, 4, 8} {
		for _, up := range []int{1, 2, 3, 5} {
			for _, down := range []int{1, 2, 3} {
				a := &ARF{NumRates: n, UpAfter: up, DownAfter: down}
				ref := &refARF{n: n, up: up, down: down}
				for i := 0; i < 20000; i++ {
					ok := src.Bool(0.5)
					a.OnFrame(ok)
					ref.onFrame(ok)
					if a.Rate() != ref.idx {
						t.Fatalf("n=%d up=%d down=%d event %d: rate %d, reference %d", n, up, down, i, a.Rate(), ref.idx)
					}
					if a.Rate() < 0 || a.Rate() >= n {
						t.Fatalf("rate %d escaped [0, %d)", a.Rate(), n)
					}
					if a.goodStreak > 0 && a.badStreak > 0 {
						t.Fatalf("event %d: both streaks active (%d good, %d bad)", i, a.goodStreak, a.badStreak)
					}
					// A streak at or past its threshold may only persist
					// when the step it would trigger is blocked by the
					// table edge; anywhere else it must have stepped and
					// reset.
					if a.goodStreak >= up && a.idx < n-1 {
						t.Fatalf("event %d: good streak %d survived below the top rate", i, a.goodStreak)
					}
					if a.badStreak >= down && a.idx > 0 {
						t.Fatalf("event %d: bad streak %d survived above the bottom rate", i, a.badStreak)
					}
				}
			}
		}
	}
}

// The FD per-chunk adapter obeys the same hygiene: one NACK steps down
// exactly one rate and clears the ACK streak; UpAfter ACKs step up
// exactly one rate and clear it too.
func TestFullDuplexCounterHygiene(t *testing.T) {
	src := simrand.New(7)
	a := NewFullDuplex(4)
	for i := 0; i < 20000; i++ {
		prev := a.Rate()
		ok := src.Bool(0.6)
		a.OnChunk(ok)
		if d := a.Rate() - prev; d < -1 || d > 1 {
			t.Fatalf("event %d: OnChunk moved the rate by %d", i, d)
		}
		if a.Rate() < 0 || a.Rate() >= a.NumRates {
			t.Fatalf("rate %d escaped the table", a.Rate())
		}
		if !ok && a.goodStreak != 0 {
			t.Fatalf("event %d: NACK left a good streak of %d", i, a.goodStreak)
		}
		if a.goodStreak >= a.UpAfter && a.Rate() < a.NumRates-1 {
			t.Fatalf("event %d: streak %d survived below the top rate", i, a.goodStreak)
		}
	}
}

// The paper's core timing claim, isolated from the network engine: after
// a step SNR drop that only the lowest rate survives, the FD per-chunk
// adapter reaches the floor within one frame of chunks, while ARF —
// learning once per frame — needs at least DownAfter frames per rate
// step, i.e. >= DownAfter frames overall and (steps * DownAfter) frames
// to converge.
func TestAdaptationLagAfterStepDrop(t *testing.T) {
	const frameChunks = 24
	n := len(DefaultRates)

	// Drive both adapters to the top rate under a clean channel.
	fd := NewFullDuplex(n)
	for fd.Rate() < n-1 {
		fd.OnChunk(true)
	}
	arf := &ARF{NumRates: n, UpAfter: 3, DownAfter: 2}
	for arf.Rate() < n-1 {
		arf.OnFrame(true)
	}

	// Step drop: from now on only rate 0 succeeds.
	lost := func(rate int) bool { return rate > 0 }

	fdChunks := 0
	for fd.Rate() != 0 {
		fd.OnChunk(!lost(fd.Rate()))
		fdChunks++
		if fdChunks > 10*frameChunks {
			t.Fatal("FD adapter never converged")
		}
	}
	if fdChunks > frameChunks {
		t.Fatalf("FD took %d chunks to converge; must be within one frame (%d chunks)", fdChunks, frameChunks)
	}

	arfFrames := 0
	for arf.Rate() != 0 {
		// ARF holds its rate for the whole frame and learns only from
		// the end-of-frame verdict.
		clean := !lost(arf.Rate())
		arf.OnFrame(clean)
		arfFrames++
		if arfFrames > 100 {
			t.Fatal("ARF adapter never converged")
		}
	}
	if arfFrames < arf.DownAfter {
		t.Fatalf("ARF converged in %d frames, impossibly under DownAfter %d", arfFrames, arf.DownAfter)
	}
	wantFrames := (n - 1) * arf.DownAfter
	if arfFrames != wantFrames {
		t.Fatalf("ARF took %d frames to descend %d steps at DownAfter %d, want %d", arfFrames, n-1, arf.DownAfter, wantFrames)
	}
	// The claim in chunk-times: FD converges in < 1 frame, ARF in
	// several whole frames.
	if fdChunks >= arfFrames*frameChunks {
		t.Fatalf("FD (%d chunks) must converge faster than ARF (%d frames x %d chunks)", fdChunks, arfFrames, frameChunks)
	}
}
