package netsim

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"
)

// collectStream runs RunStreamOptions and returns the marshaled bytes
// of every emitted snapshot (the service-layer view of the stream) plus
// the final result.
func collectStream(t *testing.T, sc Scenario, seed uint64, opts StreamOptions) ([][]byte, *NetResult) {
	t.Helper()
	var lines [][]byte
	res, err := RunStreamOptions(context.Background(), sc, seed, opts, func(s *RoundSnapshot) error {
		b, err := json.Marshal(s)
		if err != nil {
			return err
		}
		lines = append(lines, b)
		return nil
	})
	if err != nil {
		t.Fatalf("RunStreamOptions: %v", err)
	}
	return lines, res
}

// TestRunStreamMatchesBatch: the streamed run's final NetResult is
// identical to the batch engine's, and the last snapshot's cumulative
// counters agree with it.
func TestRunStreamMatchesBatch(t *testing.T) {
	for _, name := range []string{"warehouse", "mall-cells", "fading-aisle"} {
		sc, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		lines, streamed := collectStream(t, sc, 7, StreamOptions{Workers: 1})
		batch, err := Run(sc, 7)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(streamed, batch) {
			t.Errorf("%s: streamed NetResult differs from batch Run", name)
		}
		if len(lines) != batch.Rounds {
			t.Fatalf("%s: %d snapshots for %d rounds", name, len(lines), batch.Rounds)
		}
		var last RoundSnapshot
		if err := json.Unmarshal(lines[len(lines)-1], &last); err != nil {
			t.Fatal(err)
		}
		if last.Round != batch.Rounds {
			t.Errorf("%s: last snapshot round %d, want %d", name, last.Round, batch.Rounds)
		}
		if last.FramesDelivered != batch.FramesDelivered ||
			last.FramesOffered != batch.FramesOffered ||
			last.ElapsedBytes != batch.ElapsedBytes ||
			last.GoodputBytes != batch.GoodputBytes {
			t.Errorf("%s: last snapshot counters disagree with batch result:\n%+v\nvs delivered=%d offered=%d elapsed=%d goodput=%d",
				name, last, batch.FramesDelivered, batch.FramesOffered, batch.ElapsedBytes, batch.GoodputBytes)
		}
		// The per-round deltas must sum to the cumulative totals.
		var sum int64
		for _, l := range lines {
			var s RoundSnapshot
			if err := json.Unmarshal(l, &s); err != nil {
				t.Fatal(err)
			}
			sum += s.DeliveredDelta
		}
		if sum != batch.FramesDelivered {
			t.Errorf("%s: delivered deltas sum to %d, want %d", name, sum, batch.FramesDelivered)
		}
	}
}

// TestRunStreamWorkerCountIdentical: the emitted snapshot bytes are
// identical at any worker count — the streaming face of the engine's
// sharding contract.
func TestRunStreamWorkerCountIdentical(t *testing.T) {
	sc, err := Preset("fading-aisle")
	if err != nil {
		t.Fatal(err)
	}
	one, _ := collectStream(t, sc, 3, StreamOptions{Workers: 1})
	eight, _ := collectStream(t, sc, 3, StreamOptions{Workers: 8})
	if len(one) != len(eight) {
		t.Fatalf("snapshot count differs: %d vs %d", len(one), len(eight))
	}
	for i := range one {
		if string(one[i]) != string(eight[i]) {
			t.Fatalf("round %d snapshot differs between 1 and 8 workers:\n%s\n%s", i+1, one[i], eight[i])
		}
	}
}

// TestRunStreamResumeMatchesTail: resuming at round k emits exactly the
// uninterrupted stream's suffix, byte for byte, and the same final
// result — the replay-based resume contract.
func TestRunStreamResumeMatchesTail(t *testing.T) {
	sc, err := Preset("warehouse")
	if err != nil {
		t.Fatal(err)
	}
	full, fullRes := collectStream(t, sc, 5, StreamOptions{Workers: 2})
	if len(full) < 4 {
		t.Fatalf("warehouse run too short for a resume test: %d rounds", len(full))
	}
	start := len(full)/2 + 1 // 1-based round of the first resumed snapshot
	tail, tailRes := collectStream(t, sc, 5, StreamOptions{Workers: 2, StartRound: start})
	if want := full[start-1:]; len(tail) != len(want) {
		t.Fatalf("resumed stream has %d snapshots, want %d", len(tail), len(want))
	} else {
		for i := range want {
			if string(tail[i]) != string(want[i]) {
				t.Fatalf("resumed snapshot %d differs from uninterrupted tail:\n%s\n%s", i, tail[i], want[i])
			}
		}
	}
	if !reflect.DeepEqual(tailRes, fullRes) {
		t.Error("resumed run's final NetResult differs from the uninterrupted run's")
	}
	// Resuming past the end yields no snapshots but the same result.
	none, noneRes := collectStream(t, sc, 5, StreamOptions{Workers: 1, StartRound: fullRes.Rounds + 1})
	if len(none) != 0 {
		t.Errorf("resume past the end emitted %d snapshots, want 0", len(none))
	}
	if !reflect.DeepEqual(noneRes, fullRes) {
		t.Error("past-the-end resume result differs")
	}
}

// TestRunStreamCancel: cancelling the context between rounds aborts the
// run with the context's error and no further snapshots.
func TestRunStreamCancel(t *testing.T) {
	sc, err := Preset("retail-shelf") // open-loop: runs to MaxRounds
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	rounds := 0
	res, err := RunStream(ctx, sc, 1, func(s *RoundSnapshot) error {
		rounds++
		if rounds == 3 {
			cancel()
		}
		return nil
	})
	if err != context.Canceled {
		t.Fatalf("cancelled stream returned (%v, %v), want context.Canceled", res, err)
	}
	if rounds != 3 {
		t.Errorf("sink saw %d rounds after cancellation at 3", rounds)
	}
}

// TestRunStreamSinkErrorAborts: a sink error (the service's client hung
// up mid-write) aborts the run and surfaces unchanged.
func TestRunStreamSinkErrorAborts(t *testing.T) {
	sc, err := Preset("lab-bench")
	if err != nil {
		t.Fatal(err)
	}
	sentinel := context.DeadlineExceeded
	_, err = RunStream(context.Background(), sc, 1, func(s *RoundSnapshot) error {
		if s.Round == 2 {
			return sentinel
		}
		return nil
	})
	if err != sentinel {
		t.Fatalf("sink error surfaced as %v, want %v", err, sentinel)
	}
}

// TestRunStreamHotspotCounters: per-reader deltas are consistent — they
// sum to the cumulative reader stats, and saturation stays in [0, 1].
func TestRunStreamHotspotCounters(t *testing.T) {
	sc, err := Preset("mall-cells")
	if err != nil {
		t.Fatal(err)
	}
	var singles, collisions []int64
	var delivered []int
	res, err := RunStream(context.Background(), sc, 2, func(s *RoundSnapshot) error {
		if len(singles) == 0 {
			singles = make([]int64, len(s.Readers))
			collisions = make([]int64, len(s.Readers))
			delivered = make([]int, len(s.Readers))
		}
		for i, rr := range s.Readers {
			if rr.Saturation < 0 || rr.Saturation > 1 {
				return context.DeadlineExceeded
			}
			singles[i] += rr.SingletonDelta
			collisions[i] += rr.CollisionDelta
			delivered[i] += rr.DeliveredDelta
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res.Readers {
		if singles[i] != r.SingletonSlots || collisions[i] != r.CollisionSlots || delivered[i] != r.FramesDelivered {
			t.Errorf("reader %d: streamed deltas sum to %d/%d/%d, final stats %d/%d/%d",
				i, singles[i], collisions[i], delivered[i], r.SingletonSlots, r.CollisionSlots, r.FramesDelivered)
		}
	}
}
