package netsim

import (
	"fmt"
	"math"

	"repro/internal/simrand"
)

// Topology names the deployment geometries a Scenario can request. The
// reader sits at the origin; tags are placed around it.
const (
	// TopologyGrid lays tags on a square lattice spanning the deployment
	// square [-R, R]^2, the densest regular arrangement a warehouse
	// shelf survey produces.
	TopologyGrid = "grid"
	// TopologyUniformDisc scatters tags uniformly over the disc of
	// radius R (area-uniform, so the edge holds most of the population).
	TopologyUniformDisc = "uniform-disc"
	// TopologyClustered drops cluster centres uniformly in the disc and
	// scatters tags around them with a Gaussian spread — pallets of
	// tagged goods.
	TopologyClustered = "clustered"
	// TopologyCells scatters tags around the reader positions
	// round-robin with a Gaussian spread (ClusterSpreadM) — the
	// multi-reader analogue of clustered, one pallet field per cell.
	// It requires at least one anchor (the scenario's readers).
	TopologyCells = "cells"
)

// Position is a tag location in metres, reader at the origin.
type Position struct {
	X, Y float64
}

// Distance returns the range from the reader (origin).
func (p Position) Distance() float64 { return math.Hypot(p.X, p.Y) }

// PlaceTags returns n deterministic positions for the named topology.
// Randomised topologies draw only from src, so a fixed seed fixes the
// layout. The grid topology is fully deterministic and ignores src.
// anchors supplies the reader positions for TopologyCells; the other
// topologies ignore it.
func PlaceTags(topology string, n int, radiusM float64, clusters int, spreadM float64, anchors []Position, src *simrand.Source) ([]Position, error) {
	if n <= 0 {
		return nil, fmt.Errorf("netsim: tag count %d must be positive", n)
	}
	if radiusM <= 0 {
		return nil, fmt.Errorf("netsim: radius %g must be positive", radiusM)
	}
	if spreadM <= 0 {
		spreadM = radiusM / 8
	}
	switch topology {
	case TopologyGrid:
		return placeGrid(n, radiusM), nil
	case TopologyUniformDisc:
		return placeUniformDisc(n, radiusM, src), nil
	case TopologyClustered:
		if clusters <= 0 {
			clusters = 3
		}
		return placeClustered(n, radiusM, clusters, spreadM, src), nil
	case TopologyCells:
		if len(anchors) == 0 {
			return nil, fmt.Errorf("netsim: topology %q needs at least one reader anchor", TopologyCells)
		}
		return placeAnchored(n, anchors, spreadM, src), nil
	default:
		return nil, fmt.Errorf("netsim: unknown topology %q (want %s, %s, %s or %s)",
			topology, TopologyGrid, TopologyUniformDisc, TopologyClustered, TopologyCells)
	}
}

// placeGrid fills a ceil(sqrt(n)) lattice over [-R, R]^2 row-major. A
// cell landing on the origin is harmless: the path loss model clamps
// distances below its MinDistanceM.
func placeGrid(n int, r float64) []Position {
	side := int(math.Ceil(math.Sqrt(float64(n))))
	out := make([]Position, 0, n)
	for i := 0; i < side && len(out) < n; i++ {
		for j := 0; j < side && len(out) < n; j++ {
			// Cell centres: side points evenly spread across [-r, r].
			x := -r + (2*r)*(float64(j)+0.5)/float64(side)
			y := -r + (2*r)*(float64(i)+0.5)/float64(side)
			out = append(out, Position{X: x, Y: y})
		}
	}
	return out
}

func placeUniformDisc(n int, r float64, src *simrand.Source) []Position {
	out := make([]Position, n)
	for i := range out {
		// Area-uniform: radius ~ r*sqrt(u).
		rad := r * math.Sqrt(src.Float64())
		th := 2 * math.Pi * src.Float64()
		out[i] = Position{X: rad * math.Cos(th), Y: rad * math.Sin(th)}
	}
	return out
}

func placeClustered(n int, r float64, clusters int, spread float64, src *simrand.Source) []Position {
	centres := placeUniformDisc(clusters, r*0.75, src)
	out := make([]Position, n)
	for i := range out {
		c := centres[i%clusters]
		p := Position{
			X: c.X + src.Gaussian(0, spread),
			Y: c.Y + src.Gaussian(0, spread),
		}
		// Keep the deployment inside the disc so the radius parameter
		// stays meaningful for range experiments.
		if d := p.Distance(); d > r {
			scale := r / d
			p.X *= scale
			p.Y *= scale
		}
		out[i] = p
	}
	return out
}

// placeAnchored scatters tags round-robin around fixed anchor points
// (reader positions) with a Gaussian spread. Unlike placeClustered the
// centres are not random, so the deployment mirrors the reader cells
// exactly.
func placeAnchored(n int, anchors []Position, spread float64, src *simrand.Source) []Position {
	out := make([]Position, n)
	for i := range out {
		c := anchors[i%len(anchors)]
		out[i] = Position{
			X: c.X + src.Gaussian(0, spread),
			Y: c.Y + src.Gaussian(0, spread),
		}
	}
	return out
}
