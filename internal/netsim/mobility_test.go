package netsim

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/simrand"
)

func TestWaypointWalkStepsTowardTarget(t *testing.T) {
	w := newWaypointWalk(1, 10, 0.5, simrand.New(4))
	pos := []Position{{X: 3, Y: -2}}
	for i := 0; i < 200; i++ {
		before := pos[0]
		target := w.waypoints[0]
		dBefore := math.Hypot(target.X-before.X, target.Y-before.Y)
		w.advance(pos)
		moved := math.Hypot(pos[0].X-before.X, pos[0].Y-before.Y)
		if moved > 0.5+1e-9 {
			t.Fatalf("step %d moved %g, beyond the 0.5 m step", i, moved)
		}
		if dBefore > 0.5 {
			dAfter := math.Hypot(target.X-pos[0].X, target.Y-pos[0].Y)
			if dAfter >= dBefore {
				t.Fatalf("step %d moved away from the waypoint: %g -> %g", i, dBefore, dAfter)
			}
		}
		if d := pos[0].Distance(); d > 10+1e-9 {
			t.Fatalf("step %d left the deployment disc: distance %g", i, d)
		}
	}
}

func TestWaypointWalkDeterministic(t *testing.T) {
	mk := func() []Position {
		w := newWaypointWalk(6, 8, 1, simrand.New(9))
		pos := make([]Position, 6)
		for i := range pos {
			pos[i] = Position{X: float64(i), Y: 0}
		}
		for e := 0; e < 50; e++ {
			w.advance(pos)
		}
		return pos
	}
	if a, b := mk(), mk(); !reflect.DeepEqual(a, b) {
		t.Fatal("waypoint walk depends on more than the seed")
	}
}

func TestMobilityMovesTagsAndRederivesLinks(t *testing.T) {
	static := Scenario{
		Tags: 12, Topology: TopologyUniformDisc, RadiusM: 40,
		OfferedLoad: 0.4, MaxRounds: 120,
	}
	mobile := static
	mobile.Mobility = MobilitySpec{Model: MobilityWaypoint, StepM: 3, EpochRounds: 4}
	rs, err := Run(static, 31)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := Run(mobile, 31)
	if err != nil {
		t.Fatal(err)
	}
	movedTags, movedSNR := 0, 0
	for i := range rs.Tags {
		if rs.Tags[i].X != rm.Tags[i].X || rs.Tags[i].Y != rm.Tags[i].Y {
			movedTags++
		}
		if rs.Tags[i].SNRdB != rm.Tags[i].SNRdB {
			movedSNR++
		}
		if d := math.Hypot(rm.Tags[i].X, rm.Tags[i].Y); d > static.RadiusM+1e-9 {
			t.Fatalf("mobile tag %d ended outside the disc at distance %g", i, d)
		}
	}
	if movedTags < len(rs.Tags)/2 {
		t.Fatalf("waypoint drift barely moved anyone: %d of %d tags", movedTags, len(rs.Tags))
	}
	// The link qualities must track the moved geometry, not the initial
	// placement: SNR (and the cliff-derived loss) re-derive each epoch.
	if movedSNR < len(rs.Tags)/2 {
		t.Fatalf("mobility did not re-derive link quality: %d of %d SNRs changed", movedSNR, len(rs.Tags))
	}
}

func TestMobilityHandsOverBetweenReaders(t *testing.T) {
	sc := Scenario{
		Tags: 24, Topology: TopologyUniformDisc, RadiusM: 18,
		Readers:     ReaderSpec{Count: 2, Placement: ReaderLine, SpacingM: 20},
		OfferedLoad: 0.3, MaxRounds: 200,
		Mobility: MobilitySpec{Model: MobilityWaypoint, StepM: 4, EpochRounds: 4},
	}
	static := sc
	static.Mobility = MobilitySpec{}
	rm, err := Run(sc, 3)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(static, 3)
	if err != nil {
		t.Fatal(err)
	}
	handovers := 0
	for i := range rm.Tags {
		if rm.Tags[i].Reader != rs.Tags[i].Reader {
			handovers++
		}
	}
	if handovers == 0 {
		t.Fatal("4 m/epoch drift across a 20 m reader baseline produced no handover")
	}
}

func TestMobileFleetPresetRuns(t *testing.T) {
	sc, err := Preset("mobile-fleet")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesDelivered == 0 {
		t.Fatal("mobile-fleet delivered nothing")
	}
	a, err := Run(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, a) {
		t.Fatal("mobile run must reproduce under the same seed")
	}
}
