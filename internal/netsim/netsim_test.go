package netsim

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/simrand"
)

func TestPlaceTagsCounts(t *testing.T) {
	for _, topo := range []string{TopologyGrid, TopologyUniformDisc, TopologyClustered} {
		for _, n := range []int{1, 3, 9, 17} {
			src := simrand.New(7)
			pos, err := PlaceTags(topo, n, 5, 3, 0.5, nil, src)
			if err != nil {
				t.Fatalf("%s n=%d: %v", topo, n, err)
			}
			if len(pos) != n {
				t.Fatalf("%s n=%d: placed %d", topo, n, len(pos))
			}
			for i, p := range pos {
				// Grid spans the square [-r, r]^2; discs stay inside r.
				limit := 5.0
				if topo == TopologyGrid {
					limit = 5 * math.Sqrt2
				}
				if d := p.Distance(); d > limit+1e-9 {
					t.Fatalf("%s tag %d at distance %g beyond %g", topo, i, d, limit)
				}
			}
		}
	}
}

func TestPlaceTagsDeterministic(t *testing.T) {
	for _, topo := range []string{TopologyGrid, TopologyUniformDisc, TopologyClustered} {
		a, err := PlaceTags(topo, 12, 4, 3, 0.5, nil, simrand.New(3))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := PlaceTags(topo, 12, 4, 3, 0.5, nil, simrand.New(3))
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: placement depends on more than the seed", topo)
		}
	}
}

func TestPlaceTagsRejectsBadInput(t *testing.T) {
	if _, err := PlaceTags("mesh", 4, 5, 0, 0, nil, simrand.New(1)); err == nil {
		t.Fatal("unknown topology accepted")
	}
	if _, err := PlaceTags(TopologyGrid, 0, 5, 0, 0, nil, simrand.New(1)); err == nil {
		t.Fatal("zero tags accepted")
	}
	if _, err := PlaceTags(TopologyGrid, 4, -1, 0, 0, nil, simrand.New(1)); err == nil {
		t.Fatal("negative radius accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	sc, err := Preset("warehouse")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(sc, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same scenario + seed must reproduce identically")
	}
	c, err := Run(sc, 12)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Tags, c.Tags) {
		t.Fatal("different seeds produced identical per-tag outcomes")
	}
}

func TestRunClosedLoopDelivers(t *testing.T) {
	sc := Scenario{Name: "t", Tags: 4, Topology: TopologyGrid, RadiusM: 2, FramesPerTag: 3}
	res, err := Run(sc, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesOffered != 12 {
		t.Fatalf("offered %d, want 12", res.FramesOffered)
	}
	// A 2 m grid is a strong-signal cell: everything should deliver.
	if res.FramesDelivered != res.FramesOffered {
		t.Fatalf("delivered %d of %d at short range", res.FramesDelivered, res.FramesOffered)
	}
	if res.Throughput() <= 0 || res.DeliveryRate() != 1 {
		t.Fatalf("throughput %g, delivery %g", res.Throughput(), res.DeliveryRate())
	}
	if got := res.FairnessIndex(); got < 0.99 {
		t.Fatalf("fairness %g for equal closed-loop service", got)
	}
}

func TestRunContentionGrowsWithDensity(t *testing.T) {
	collFrac := func(tags int) float64 {
		sc := Scenario{Tags: tags, Topology: TopologyGrid, RadiusM: 2,
			FramesPerTag: 4, ContentionWindow: 8, MaxRounds: 200}
		res, err := Run(sc, 9)
		if err != nil {
			t.Fatal(err)
		}
		return res.CollisionFraction()
	}
	sparse, dense := collFrac(2), collFrac(24)
	if dense <= sparse {
		t.Fatalf("collision fraction must grow with density: sparse %g, dense %g", sparse, dense)
	}
}

func TestRunRangeDegradesDelivery(t *testing.T) {
	rate := func(radius float64) float64 {
		sc := Scenario{Tags: 8, Topology: TopologyUniformDisc, RadiusM: radius,
			FramesPerTag: 4, MaxRounds: 48}
		res, err := Run(sc, 21)
		if err != nil {
			t.Fatal(err)
		}
		return res.DeliveryRate()
	}
	near, far := rate(2), rate(60)
	if far >= near {
		t.Fatalf("delivery must degrade with range: near %g, far %g", near, far)
	}
}

func TestRunLoadShortensLifetime(t *testing.T) {
	life := func(load float64) float64 {
		sc := Scenario{Tags: 8, Topology: TopologyGrid, RadiusM: 6,
			OfferedLoad: load, MaxRounds: 200}
		res, err := Run(sc, 3)
		if err != nil {
			t.Fatal(err)
		}
		if res.SimulatedS <= 0 {
			t.Fatal("no simulated time")
		}
		// Normalise: fraction of the horizon the average tag survived.
		return res.MeanLifetimeS() / res.SimulatedS
	}
	light, heavy := life(0.05), life(2)
	if heavy >= light {
		t.Fatalf("lifetime must shorten with load: light %g, heavy %g", light, heavy)
	}
}

func TestRunRejectsInvalidScenario(t *testing.T) {
	if _, err := Run(Scenario{Protocol: "csma"}, 1); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if _, err := Run(Scenario{Rho: 2}, 1); err == nil {
		t.Fatal("rho > 1 accepted")
	}
	if _, err := Run(Scenario{OfferedLoad: -1}, 1); err == nil {
		t.Fatal("negative load accepted")
	}
	if _, err := Run(Scenario{AbortThreshold: -3}, 1); err == nil {
		t.Fatal("negative abort threshold accepted")
	}
}

func TestProtocolVariants(t *testing.T) {
	for _, proto := range []string{"full-duplex", "stop-and-wait", "block-ack"} {
		sc := Scenario{Tags: 6, Topology: TopologyGrid, RadiusM: 3,
			FramesPerTag: 2, Protocol: proto}
		res, err := Run(sc, 17)
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if res.FramesDelivered == 0 {
			t.Fatalf("%s delivered nothing at short range", proto)
		}
	}
}

func TestFullDuplexBeatsHalfDuplexUnderContention(t *testing.T) {
	run := func(proto string) *NetResult {
		sc := Scenario{Tags: 24, Topology: TopologyGrid, RadiusM: 3,
			FramesPerTag: 4, ContentionWindow: 12, Protocol: proto, MaxRounds: 300}
		res, err := Run(sc, 29)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fd, sw := run("full-duplex"), run("stop-and-wait")
	if fd.CollisionBytes >= sw.CollisionBytes {
		t.Fatalf("early termination must cut collision airtime: fd %d, sw %d",
			fd.CollisionBytes, sw.CollisionBytes)
	}
	if fd.Throughput() <= sw.Throughput() {
		t.Fatalf("fd throughput %g must beat sw %g under contention",
			fd.Throughput(), sw.Throughput())
	}
}

func TestPresets(t *testing.T) {
	names := PresetNames()
	if len(names) < 3 {
		t.Fatalf("want at least 3 presets, have %v", names)
	}
	for _, name := range names {
		sc, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		sc.ApplyDefaults()
		if err := sc.Validate(); err != nil {
			t.Fatalf("preset %s invalid: %v", name, err)
		}
	}
	if _, err := Preset("nope"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	data := []byte(`{
		"name": "json-test",
		"tags": 10,
		"topology": "clustered",
		"radius_m": 6,
		"clusters": 2,
		"offered_load": 0.25,
		"protocol": "block-ack"
	}`)
	sc, err := ParseScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "json-test" || sc.Tags != 10 || sc.Topology != TopologyClustered ||
		sc.Clusters != 2 || sc.OfferedLoad != 0.25 || sc.Protocol != "block-ack" {
		t.Fatalf("decoded scenario wrong: %+v", sc)
	}
	if _, err := Run(sc, 2); err != nil {
		t.Fatalf("decoded scenario does not run: %v", err)
	}
}

func TestParseScenarioRejectsUnknownFields(t *testing.T) {
	if _, err := ParseScenario([]byte(`{"tags": 4, "typo_field": 1}`)); err == nil {
		t.Fatal("unknown JSON field accepted")
	}
}

func TestLoadScenarioFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.json")
	if err := os.WriteFile(path, []byte(`{"name": "file", "tags": 3}`), 0o644); err != nil {
		t.Fatal(err)
	}
	sc, err := LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "file" || sc.Tags != 3 {
		t.Fatalf("loaded scenario wrong: %+v", sc)
	}
	if _, err := LoadScenario(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
