package netsim

// Shard-determinism contract: RunParallel's NetResult is identical —
// every field of every tag and reader — at any worker count. The suite
// covers every built-in preset (the million preset scaled down) plus
// composed stress scenarios that exercise TDM, mobility, rate
// adaptation and the analytic path together, because those are the
// features whose state updates could most plausibly leak across shard
// boundaries.

import (
	"reflect"
	"testing"
)

func shardScenarios(t *testing.T) []Scenario {
	t.Helper()
	var out []Scenario
	for _, name := range PresetNames() {
		sc, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		if sc.Tags > 1<<12 {
			// Keep the suite fast; the engine code path is identical.
			sc.Tags = 1 << 12
			sc.Name += "-scaled"
		}
		out = append(out, sc)
	}
	// TDM + mobility + half-duplex probing adaptation + open-loop
	// traffic in one scenario: every serial stream is live at once.
	out = append(out, Scenario{
		Name: "tdm-mobile-adapt", Tags: 48, Topology: TopologyUniformDisc, RadiusM: 16,
		Readers:     ReaderSpec{Count: 3, Placement: ReaderLine, SpacingM: 10, Scheduling: SchedulingTDM},
		Mobility:    MobilitySpec{Model: MobilityWaypoint, StepM: 1, EpochRounds: 3},
		RateAdapt:   RateAdaptSpec{Adapter: RateAdaptARF, FadeRho: 0.9},
		OfferedLoad: 0.4, MaxRounds: 40, Protocol: "block-ack",
	})
	// The analytic fast path must obey the same contract.
	an, err := Preset("warehouse")
	if err != nil {
		t.Fatal(err)
	}
	an.Name = "warehouse-analytic"
	an.Analytic = true
	out = append(out, an)
	mob, err := Preset("million")
	if err != nil {
		t.Fatal(err)
	}
	mob.Name = "million-analytic-scaled"
	mob.Tags = 1 << 12
	mob.Analytic = true
	out = append(out, mob)
	return out
}

func TestShardDeterminismAcrossWorkers(t *testing.T) {
	for _, sc := range shardScenarios(t) {
		ref, err := RunParallel(sc, 7, 1)
		if err != nil {
			t.Fatalf("%s workers=1: %v", sc.Name, err)
		}
		for _, workers := range []int{2, 8} {
			got, err := RunParallel(sc, 7, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", sc.Name, workers, err)
			}
			if reflect.DeepEqual(ref, got) {
				continue
			}
			// Narrow the report so a failure names the leaking field.
			for i := range ref.Tags {
				if !reflect.DeepEqual(ref.Tags[i], got.Tags[i]) {
					t.Fatalf("%s workers=%d: tag %d diverged:\n 1: %+v\n %d: %+v",
						sc.Name, workers, i, ref.Tags[i], workers, got.Tags[i])
				}
			}
			for r := range ref.Readers {
				if ref.Readers[r] != got.Readers[r] {
					t.Fatalf("%s workers=%d: reader %d diverged:\n 1: %+v\n %d: %+v",
						sc.Name, workers, r, ref.Readers[r], workers, got.Readers[r])
				}
			}
			t.Fatalf("%s workers=%d: aggregate result diverged:\n 1: %+v\n %d: %+v",
				sc.Name, workers, ref, workers, got)
		}
	}
}

// RunParallel at one worker must also equal Run — the public
// single-worker entry point is not a separate code path.
func TestRunParallelMatchesRun(t *testing.T) {
	sc, err := Preset("fading-aisle")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(sc, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunParallel(sc, 11, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Run and RunParallel(1) diverged")
	}
}
