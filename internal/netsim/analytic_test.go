package netsim

// Analytic-mode fidelity contract (see analytic.go): delivery rate
// tracks the exact engine tightly, throughput is an optimistic bound
// within a pinned factor. These tolerances are deliberately asserted on
// both sides — if the analytic model drifts pessimistic, or the bound
// loosens past its documented factor, something changed in one of the
// engines and the contract must be re-derived, not just re-pinned.

import (
	"math"
	"testing"
)

func TestAnalyticMatchesExactWithinTolerance(t *testing.T) {
	// Presets spanning closed loop, open loop, multi-reader cells, and
	// fading with rate adaptation.
	for _, name := range []string{"warehouse", "retail-shelf", "mall-cells", "fading-aisle"} {
		sc, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := RunParallel(sc, 7, 4)
		if err != nil {
			t.Fatalf("%s exact: %v", name, err)
		}
		sc.Analytic = true
		an, err := RunParallel(sc, 7, 4)
		if err != nil {
			t.Fatalf("%s analytic: %v", name, err)
		}

		// Delivery: the closed-form per-frame delivery probabilities are
		// exact under iid chunk loss, so only sampling noise separates
		// the two engines.
		if d := math.Abs(an.DeliveryRate() - exact.DeliveryRate()); d > 0.02 {
			t.Errorf("%s: delivery rate diverged by %.4f (exact %.4f, analytic %.4f; tolerance 0.02)",
				name, d, exact.DeliveryRate(), an.DeliveryRate())
		}

		// Throughput: analytic airtime omits abort backoffs, false-ACK
		// resyncs, and adaptation warm-up, so it bounds the exact
		// throughput from above — by at most 2.2x on these presets — and
		// must never undershoot it by more than 5%.
		ratio := an.Throughput() / exact.Throughput()
		if ratio < 0.95 || ratio > 2.2 {
			t.Errorf("%s: analytic/exact throughput ratio %.3f outside [0.95, 2.2] (exact %.4f, analytic %.4f)",
				name, ratio, exact.Throughput(), an.Throughput())
		}

		// Closed-loop offered traffic is fixed at setup, so it must agree
		// exactly. (Open-loop arrivals can legitimately diverge: analytic
		// airtime shifts the energy settlement, which can move a marginal
		// tag's death round and with it the frames offered to it.)
		if sc.OfferedLoad == 0 && an.FramesOffered != exact.FramesOffered {
			t.Errorf("%s: closed-loop frames offered diverged (exact %d, analytic %d)",
				name, exact.FramesOffered, an.FramesOffered)
		}
	}
}
