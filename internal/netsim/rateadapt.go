package netsim

// Closed-loop per-tag rate adaptation: every tag can carry a
// time-varying Gauss-Markov fading channel (the rateadapt trace model,
// seeded per tag off the run seed) and a rate-adaptation policy that
// picks the transmission rate chunk by chunk. Chunk loss then follows
// the instantaneous per-rate SNR cliff instead of the static
// geometry-derived ChunkLossProb, so the paper's headline claim — FD
// per-chunk feedback adapts within a frame, half-duplex probing only at
// frame boundaries — plays out at network scale.

import (
	"fmt"
	"math"

	"repro/internal/mac"
	"repro/internal/rateadapt"
	"repro/internal/simrand"
)

// Rate-adaptation policy names for RateAdaptSpec.Adapter.
const (
	// RateAdaptFixed holds the rate whose multiplier is nearest 1x.
	RateAdaptFixed = "fixed"
	// RateAdaptARF steps once per frame on end-of-frame feedback — the
	// granularity half-duplex probing allows.
	RateAdaptARF = "arf"
	// RateAdaptFD adapts per chunk on the full-duplex feedback channel.
	RateAdaptFD = "fd"
)

// RateAdaptSpec configures optional closed-loop rate adaptation for
// every tag of a Scenario. The zero value disables it entirely: the
// engine then runs the static geometry-derived chunk loss, byte-for-byte
// identical to scenarios that predate this spec.
type RateAdaptSpec struct {
	// Adapter selects the policy: "" (disabled), RateAdaptFixed,
	// RateAdaptARF or RateAdaptFD.
	Adapter string `json:"adapter"`
	// FadeRho is the per-chunk Gauss-Markov correlation of each tag's
	// fading process, in [0, 1). Zero disables fading: the channel
	// holds the static geometry SNR, which (with the fixed adapter and
	// a single 1x rate) reproduces the static engine bit for bit.
	FadeRho float64 `json:"fade_rho"`
	// Rates is the rate table (default rateadapt.DefaultRates). Mult
	// must be strictly increasing and ReqSNRdB non-decreasing.
	Rates []rateadapt.RateSpec `json:"rates"`
	// UpAfter is the consecutive-success count before a step up
	// (default 5 for fd — per-chunk ACKs — and 3 for arf frames).
	UpAfter int `json:"up_after"`
	// DownAfter is the consecutive-failure count before arf steps down
	// (default 1; fd steps down on every NACK regardless).
	DownAfter int `json:"down_after"`
}

func (r RateAdaptSpec) enabled() bool { return r.Adapter != "" }

func (r *RateAdaptSpec) applyDefaults() {
	if !r.enabled() {
		return
	}
	if len(r.Rates) == 0 {
		r.Rates = append([]rateadapt.RateSpec(nil), rateadapt.DefaultRates...)
	}
	// Only the zero value takes the default: a negative threshold must
	// survive to Validate and be rejected there, not silently coerced.
	if r.UpAfter == 0 {
		if r.Adapter == RateAdaptFD {
			r.UpAfter = 5
		} else {
			r.UpAfter = 3
		}
	}
	if r.DownAfter == 0 {
		r.DownAfter = 1
	}
}

// validate rejects degenerate knobs with actionable errors instead of
// letting NaNs or inverted rate tables propagate silently.
func (r RateAdaptSpec) validate() error {
	if !r.enabled() {
		if r.FadeRho != 0 || len(r.Rates) != 0 || r.UpAfter != 0 || r.DownAfter != 0 {
			return fmt.Errorf("netsim: rate_adapt fields set without an adapter (set rate_adapt.adapter to %s, %s or %s)",
				RateAdaptFixed, RateAdaptARF, RateAdaptFD)
		}
		return nil
	}
	switch r.Adapter {
	case RateAdaptFixed, RateAdaptARF, RateAdaptFD:
	default:
		return fmt.Errorf("netsim: unknown rate adapter %q (want %s, %s or %s)",
			r.Adapter, RateAdaptFixed, RateAdaptARF, RateAdaptFD)
	}
	// The negated comparison also rejects NaN, which would otherwise
	// pass every < / >= test and poison the fading recursion.
	if !(r.FadeRho >= 0 && r.FadeRho < 1) {
		return fmt.Errorf("netsim: fade rho %g outside [0, 1) (0 disables fading; 1 would freeze the process)", r.FadeRho)
	}
	for i, rt := range r.Rates {
		if !(rt.Mult > 0) {
			return fmt.Errorf("netsim: rate %d (%s) multiplier %g must be positive", i, rt.Name, rt.Mult)
		}
		if i > 0 && !(rt.Mult > r.Rates[i-1].Mult) {
			return fmt.Errorf("netsim: rate table multipliers must be strictly increasing (rate %d %s has %g after %g)",
				i, rt.Name, rt.Mult, r.Rates[i-1].Mult)
		}
		if !(rt.ReqSNRdB >= -30 && rt.ReqSNRdB <= 60) {
			return fmt.Errorf("netsim: rate %d (%s) required SNR %g dB outside [-30, 60]", i, rt.Name, rt.ReqSNRdB)
		}
		if i > 0 && rt.ReqSNRdB < r.Rates[i-1].ReqSNRdB {
			return fmt.Errorf("netsim: rate table SNR requirements must be non-decreasing (rate %d %s requires %g dB after %g)",
				i, rt.Name, rt.ReqSNRdB, r.Rates[i-1].ReqSNRdB)
		}
	}
	if r.UpAfter < 0 || r.DownAfter < 0 {
		return fmt.Errorf("netsim: rate_adapt up_after %d / down_after %d must be non-negative (0 takes the default)", r.UpAfter, r.DownAfter)
	}
	return nil
}

// fixedIndex is the rate RateAdaptFixed pins: the entry whose multiplier
// is nearest 1x on a ratio scale (ties go to the slower rate).
func (r RateAdaptSpec) fixedIndex() int {
	best, bestD := 0, math.Inf(1)
	for i, rt := range r.Rates {
		if d := math.Abs(math.Log(rt.Mult)); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// newAdapter builds one tag's policy instance (after defaults).
func (r RateAdaptSpec) newAdapter() rateadapt.Adapter {
	n := len(r.Rates)
	switch r.Adapter {
	case RateAdaptARF:
		return &rateadapt.ARF{NumRates: n, UpAfter: r.UpAfter, DownAfter: r.DownAfter}
	case RateAdaptFD:
		return &rateadapt.FullDuplex{NumRates: n, UpAfter: r.UpAfter}
	default:
		i := r.fixedIndex()
		return &rateadapt.Fixed{Index: i, RateName: r.Rates[i].Name}
	}
}

// fadeSeed derives the per-tag fading stream seed as a pure hash of the
// run seed and the tag index — deliberately outside the engine's split
// tree, so enabling rate adaptation never shifts any stream the static
// engine draws (the byte-identity contract for pre-existing scenarios).
func fadeSeed(seed uint64, tag int) uint64 {
	x := simrand.Mix64(seed ^ 0x66616465) // "fade"
	return simrand.Mix64(x ^ (uint64(tag) + 0x9e3779b97f4a7c15))
}

// fadingLoss implements mac.Loss for one tag under closed-loop rate
// adaptation. Each Chunk call advances the Gauss-Markov fading process
// one chunk-time (exactly the rateadapt.RunTrace recursion), reads the
// adapter's current rate, and loses the chunk with the instantaneous
// per-rate SNR-cliff probability; the resulting ACK/NACK feeds the
// adapter back (per chunk for fd, ignored by fixed/arf).
//
// The loss draw itself rides the tag's existing IIDLoss stream (the
// probability is rewritten before each draw), so with FadeRho = 0 and a
// single 1x rate at the scenario cliff the draw sequence — and therefore
// the whole run — is bit-for-bit the static engine's. The fading and
// feedback-flip draws come from the dedicated per-tag fade source and
// are only consumed when fading (rho > 0) or fd feedback is in play.
type fadingLoss struct {
	rates   []rateadapt.RateSpec
	adapter rateadapt.Adapter
	loss    *mac.IIDLoss
	fadeSrc *simrand.Source
	rho     float64
	fdFB    bool // adapter consumes per-chunk feedback (fd)

	// Link quality, re-derived per epoch by deriveLinks (the fading
	// state h deliberately persists across epochs: mobility moves the
	// mean, not the small-scale process).
	meanSNRdB float64
	fbBER     float64

	h      complex128
	gainDB float64

	// Per-frame scratch, reset by beginFrame and read by the engine
	// right after each MAC exchange.
	frameChunks  int64
	frameInvMult float64
	frameLost    int64

	// Whole-run accumulators, drained into TagStats at the end.
	rateChunks []int64
	rateLost   []int64
	invMultSum float64
	chunks     int64
	lost       int64
	switches   int64
	lagChunks  int64
	prevRate   int
}

// newFadingLoss builds one tag's adaptation state. It allocates
// everything up front so the round loop stays allocation-free.
func newFadingLoss(spec RateAdaptSpec, loss *mac.IIDLoss, seed uint64) *fadingLoss {
	f := &fadingLoss{
		rates:      spec.Rates,
		adapter:    spec.newAdapter(),
		loss:       loss,
		fadeSrc:    simrand.New(seed),
		rho:        spec.FadeRho,
		fdFB:       spec.Adapter == RateAdaptFD,
		rateChunks: make([]int64, len(spec.Rates)),
		rateLost:   make([]int64, len(spec.Rates)),
	}
	if f.rho > 0 {
		f.h = f.fadeSrc.RayleighCoeff(1)
		f.gainDB = rateadapt.FadeGainDB(f.h)
	}
	f.prevRate = f.adapter.Rate()
	return f
}

// advance steps the fading process one chunk-time. With rho = 0 the
// channel is static (gainDB stays 0) and no randomness is consumed.
func (f *fadingLoss) advance() {
	if f.rho == 0 {
		return
	}
	f.h = rateadapt.FadeStep(f.h, f.rho, f.fadeSrc)
	f.gainDB = rateadapt.FadeGainDB(f.h)
}

// oracleRate is the highest rate whose requirement the instantaneous
// SNR meets (the below-50%-loss side of the cliff), or the lowest rate
// when none qualifies — the reference a clairvoyant adapter would pick,
// used for the adaptation-lag diagnostic.
func (f *fadingLoss) oracleRate(snrDB float64) int {
	best := 0
	for i := range f.rates {
		if snrDB >= f.rates[i].ReqSNRdB {
			best = i
		}
	}
	return best
}

// beginFrame resets the per-frame accumulators before a MAC exchange.
func (f *fadingLoss) beginFrame() {
	f.frameChunks, f.frameInvMult, f.frameLost = 0, 0, 0
}

// Chunk implements mac.Loss.
func (f *fadingLoss) Chunk() bool {
	f.advance()
	ri := f.adapter.Rate()
	if ri != f.prevRate {
		f.switches++
		f.prevRate = ri
	}
	r := f.rates[ri]
	snr := f.meanSNRdB + f.gainDB
	f.loss.P = rateadapt.ChunkLossProb(r, snr)
	lostChunk := f.loss.Chunk()

	f.frameChunks++
	f.frameInvMult += 1 / r.Mult
	f.chunks++
	f.invMultSum += 1 / r.Mult
	f.rateChunks[ri]++
	if lostChunk {
		f.rateLost[ri]++
		f.frameLost++
		f.lost++
	}
	if ri != f.oracleRate(snr) {
		f.lagChunks++
	}

	fb := !lostChunk
	if f.fdFB && f.fbBER > 0 && f.fadeSrc.Bool(f.fbBER) {
		fb = !fb
	}
	f.adapter.OnChunk(fb)
	return lostChunk
}

// Idle implements mac.Loss: the channel keeps fading while the tag
// backs off (one process step per chunk-time, as in the trace model).
func (f *fadingLoss) Idle(n int) {
	for i := 0; i < n; i++ {
		f.advance()
	}
}

// frameExtraBytes converts the rates used during the last MAC exchange
// into an airtime correction: a chunk at multiplier m occupies
// chunkAir/m byte-times instead of chunkAir, so the exchange's elapsed
// and transmitted airtime shift by chunkAir*(sum(1/m) - chunks). All
// 1x chunks make this exactly zero.
func (f *fadingLoss) frameExtraBytes(chunkAir int64) int64 {
	return int64(math.Round(float64(chunkAir) * (f.frameInvMult - float64(f.frameChunks))))
}

// endFrame reports end-of-frame feedback to the adapter: a frame is
// "clean" only when it was delivered with no chunk lost anywhere in the
// exchange — the signal a half-duplex prober reads off the missing ACK.
func (f *fadingLoss) endFrame(delivered bool) {
	f.adapter.OnFrame(delivered && f.frameLost == 0)
}

// drainInto copies the run's accumulated adaptation statistics into the
// tag's stats at the end of a run.
func (f *fadingLoss) drainInto(ts *TagStats) {
	ts.RateChunks = f.rateChunks
	ts.RateLostChunks = f.rateLost
	ts.RateSwitches = f.switches
	ts.AdaptChunks = f.chunks
	ts.AdaptLagChunks = f.lagChunks
	if f.invMultSum > 0 {
		ts.MeanRateMult = float64(f.chunks) / f.invMultSum
	}
}
