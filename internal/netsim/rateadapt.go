package netsim

// Closed-loop per-tag rate adaptation: every tag can carry a
// time-varying Gauss-Markov fading channel (the rateadapt trace model,
// seeded per tag off the run seed) and a rate-adaptation policy that
// picks the transmission rate chunk by chunk. Chunk loss then follows
// the instantaneous per-rate SNR cliff instead of the static
// geometry-derived ChunkLossProb, so the paper's headline claim — FD
// per-chunk feedback adapts within a frame, half-duplex probing only at
// frame boundaries — plays out at network scale.

import (
	"fmt"
	"math"

	"repro/internal/mac"
	"repro/internal/rateadapt"
	"repro/internal/simrand"
)

// Rate-adaptation policy names for RateAdaptSpec.Adapter.
const (
	// RateAdaptFixed holds the rate whose multiplier is nearest 1x.
	RateAdaptFixed = "fixed"
	// RateAdaptARF steps once per frame on end-of-frame feedback — the
	// granularity half-duplex probing allows.
	RateAdaptARF = "arf"
	// RateAdaptFD adapts per chunk on the full-duplex feedback channel.
	RateAdaptFD = "fd"
)

// RateAdaptSpec configures optional closed-loop rate adaptation for
// every tag of a Scenario. The zero value disables it entirely: the
// engine then runs the static geometry-derived chunk loss, byte-for-byte
// identical to scenarios that predate this spec.
type RateAdaptSpec struct {
	// Adapter selects the policy: "" (disabled), RateAdaptFixed,
	// RateAdaptARF or RateAdaptFD.
	Adapter string `json:"adapter"`
	// FadeRho is the per-chunk Gauss-Markov correlation of each tag's
	// fading process, in [0, 1). Zero disables fading: the channel
	// holds the static geometry SNR, which (with the fixed adapter and
	// a single 1x rate) reproduces the static engine bit for bit.
	FadeRho float64 `json:"fade_rho"`
	// Rates is the rate table (default rateadapt.DefaultRates). Mult
	// must be strictly increasing and ReqSNRdB non-decreasing.
	Rates []rateadapt.RateSpec `json:"rates"`
	// UpAfter is the consecutive-success count before a step up
	// (default 5 for fd — per-chunk ACKs — and 3 for arf frames).
	UpAfter int `json:"up_after"`
	// DownAfter is the consecutive-failure count before arf steps down
	// (default 1; fd steps down on every NACK regardless).
	DownAfter int `json:"down_after"`
}

func (r RateAdaptSpec) enabled() bool { return r.Adapter != "" }

func (r *RateAdaptSpec) applyDefaults() {
	if !r.enabled() {
		return
	}
	if len(r.Rates) == 0 {
		r.Rates = append([]rateadapt.RateSpec(nil), rateadapt.DefaultRates...)
	}
	// Only the zero value takes the default: a negative threshold must
	// survive to Validate and be rejected there, not silently coerced.
	if r.UpAfter == 0 {
		if r.Adapter == RateAdaptFD {
			r.UpAfter = 5
		} else {
			r.UpAfter = 3
		}
	}
	if r.DownAfter == 0 {
		r.DownAfter = 1
	}
}

// validate rejects degenerate knobs with actionable errors instead of
// letting NaNs or inverted rate tables propagate silently.
func (r RateAdaptSpec) validate() error {
	if !r.enabled() {
		if r.FadeRho != 0 || len(r.Rates) != 0 || r.UpAfter != 0 || r.DownAfter != 0 {
			return fmt.Errorf("netsim: rate_adapt fields set without an adapter (set rate_adapt.adapter to %s, %s or %s)",
				RateAdaptFixed, RateAdaptARF, RateAdaptFD)
		}
		return nil
	}
	switch r.Adapter {
	case RateAdaptFixed, RateAdaptARF, RateAdaptFD:
	default:
		return fmt.Errorf("netsim: unknown rate adapter %q (want %s, %s or %s)",
			r.Adapter, RateAdaptFixed, RateAdaptARF, RateAdaptFD)
	}
	// The negated comparison also rejects NaN, which would otherwise
	// pass every < / >= test and poison the fading recursion.
	if !(r.FadeRho >= 0 && r.FadeRho < 1) {
		return fmt.Errorf("netsim: fade rho %g outside [0, 1) (0 disables fading; 1 would freeze the process)", r.FadeRho)
	}
	for i, rt := range r.Rates {
		if !(rt.Mult > 0) {
			return fmt.Errorf("netsim: rate %d (%s) multiplier %g must be positive", i, rt.Name, rt.Mult)
		}
		if i > 0 && !(rt.Mult > r.Rates[i-1].Mult) {
			return fmt.Errorf("netsim: rate table multipliers must be strictly increasing (rate %d %s has %g after %g)",
				i, rt.Name, rt.Mult, r.Rates[i-1].Mult)
		}
		if !(rt.ReqSNRdB >= -30 && rt.ReqSNRdB <= 60) {
			return fmt.Errorf("netsim: rate %d (%s) required SNR %g dB outside [-30, 60]", i, rt.Name, rt.ReqSNRdB)
		}
		if i > 0 && rt.ReqSNRdB < r.Rates[i-1].ReqSNRdB {
			return fmt.Errorf("netsim: rate table SNR requirements must be non-decreasing (rate %d %s requires %g dB after %g)",
				i, rt.Name, rt.ReqSNRdB, r.Rates[i-1].ReqSNRdB)
		}
	}
	if r.UpAfter < 0 || r.DownAfter < 0 {
		return fmt.Errorf("netsim: rate_adapt up_after %d / down_after %d must be non-negative (0 takes the default)", r.UpAfter, r.DownAfter)
	}
	return nil
}

// fixedIndex is the rate RateAdaptFixed pins: the entry whose multiplier
// is nearest 1x on a ratio scale (ties go to the slower rate).
func (r RateAdaptSpec) fixedIndex() int {
	best, bestD := 0, math.Inf(1)
	for i, rt := range r.Rates {
		if d := math.Abs(math.Log(rt.Mult)); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// newAdapter builds one tag's policy instance (after defaults).
func (r RateAdaptSpec) newAdapter() rateadapt.Adapter {
	n := len(r.Rates)
	switch r.Adapter {
	case RateAdaptARF:
		return &rateadapt.ARF{NumRates: n, UpAfter: r.UpAfter, DownAfter: r.DownAfter}
	case RateAdaptFD:
		return &rateadapt.FullDuplex{NumRates: n, UpAfter: r.UpAfter}
	default:
		i := r.fixedIndex()
		return &rateadapt.Fixed{Index: i, RateName: r.Rates[i].Name}
	}
}

// fadeSeed derives the per-tag fading stream seed as a pure hash of the
// run seed and the tag index — deliberately outside the engine's split
// tree, so enabling rate adaptation never shifts any stream the static
// engine draws (the byte-identity contract for pre-existing scenarios).
func fadeSeed(seed uint64, tag int) uint64 {
	x := simrand.Mix64(seed ^ 0x66616465) // "fade"
	return simrand.Mix64(x ^ (uint64(tag) + 0x9e3779b97f4a7c15))
}

// fadeState is the closed-loop adaptation state for every tag, stored
// as parallel columns like tagState: the Gauss-Markov coefficient and
// its cached gain, the per-tag fading stream state (inline PCG words),
// the adapter instances by value, and the whole-run accumulators that
// drain into TagStats. A worker binds a fadeView over one tag's row for
// the duration of a MAC exchange; the binding worker (the tag's cell
// owner) is the only goroutine that touches the row, so no
// synchronisation is needed.
type fadeState struct {
	rates []rateadapt.RateSpec
	nr    int
	rho   float64
	fdFB  bool // adapter consumes per-chunk feedback (fd)

	// meanSNR is re-derived per epoch by deriveLinks (the fading state
	// h deliberately persists across epochs: mobility moves the mean,
	// not the small-scale process).
	meanSNR []float64
	h       []complex128
	gainDB  []float64
	// fadeHi/fadeLo hold each tag's fading stream state inline, loaded
	// into a worker's scratch Source around each exchange.
	fadeHi, fadeLo []uint64

	// Adapter state by value: exactly one of arf/fdp is non-nil, or
	// neither and every tag shares the stateless fixed policy.
	arf   []rateadapt.ARF
	fdp   []rateadapt.FullDuplex
	fixed *rateadapt.Fixed
	// Per-row init parameters (initRow runs sharded across workers).
	seed               uint64
	upAfter, downAfter int
	initRate           int32

	// Whole-run accumulators, drained into TagStats at the end.
	// rateChunks/rateLost are row-major [tag*nr+rate].
	prevRate   []int32
	chunks     []int64
	switches   []int64
	lag        []int64
	invMult    []float64
	rateChunks []int64
	rateLost   []int64
}

// newFadeState allocates the adaptation state for n tags up front so
// the round loop stays allocation-free. The per-row state (adapter
// config, fading coefficient, stream seed) is filled by initRow, which
// the engine shards across workers — each row is a pure function of
// (seed, tag index), so the fill order never matters.
func newFadeState(spec RateAdaptSpec, n int, seed uint64) *fadeState {
	nr := len(spec.Rates)
	f := &fadeState{
		rates:      spec.Rates,
		nr:         nr,
		rho:        spec.FadeRho,
		fdFB:       spec.Adapter == RateAdaptFD,
		meanSNR:    make([]float64, n),
		h:          make([]complex128, n),
		gainDB:     make([]float64, n),
		fadeHi:     make([]uint64, n),
		fadeLo:     make([]uint64, n),
		prevRate:   make([]int32, n),
		chunks:     make([]int64, n),
		switches:   make([]int64, n),
		lag:        make([]int64, n),
		invMult:    make([]float64, n),
		rateChunks: make([]int64, n*nr),
		rateLost:   make([]int64, n*nr),
		seed:       seed,
		upAfter:    spec.UpAfter,
		downAfter:  spec.DownAfter,
	}
	switch spec.Adapter {
	case RateAdaptARF:
		f.arf = make([]rateadapt.ARF, n)
	case RateAdaptFD:
		f.fdp = make([]rateadapt.FullDuplex, n)
	default:
		i := spec.fixedIndex()
		f.fixed = &rateadapt.Fixed{Index: i, RateName: spec.Rates[i].Name}
	}
	f.initRate = int32(spec.newAdapter().Rate())
	return f
}

// initRow fills tag i's adaptation row: adapter configuration (the rest
// of the adapter struct is already zero in the fresh slice) and the
// fading stream, seeded by fadeSeed exactly as the per-tag fadingLoss
// sources were, so the draw sequences are unchanged. scratch is the
// calling worker's reusable Source.
func (f *fadeState) initRow(i int, scratch *simrand.Source) {
	switch {
	case f.arf != nil:
		f.arf[i].NumRates = f.nr
		f.arf[i].UpAfter = f.upAfter
		f.arf[i].DownAfter = f.downAfter
	case f.fdp != nil:
		f.fdp[i].NumRates = f.nr
		f.fdp[i].UpAfter = f.upAfter
	}
	scratch.Reseed(fadeSeed(f.seed, i))
	if f.rho > 0 {
		h := scratch.RayleighCoeff(1)
		f.h[i] = h
		f.gainDB[i] = rateadapt.FadeGainDB(h)
	}
	f.fadeHi[i], f.fadeLo[i] = scratch.State()
	f.prevRate[i] = f.initRate
}

// adapter returns tag i's policy instance. Taking the address of a
// slice element converts to the interface without allocating.
func (f *fadeState) adapter(i int) rateadapt.Adapter {
	switch {
	case f.arf != nil:
		return &f.arf[i]
	case f.fdp != nil:
		return &f.fdp[i]
	default:
		return f.fixed
	}
}

// oracleRate is the highest rate whose requirement the instantaneous
// SNR meets (the below-50%-loss side of the cliff), or the lowest rate
// when none qualifies — the reference a clairvoyant adapter would pick,
// used for the adaptation-lag diagnostic.
func (f *fadeState) oracleRate(snrDB float64) int {
	best := 0
	for i := range f.rates {
		if snrDB >= f.rates[i].ReqSNRdB {
			best = i
		}
	}
	return best
}

// fadeView implements mac.Loss over one tag's fadeState row for the
// duration of a MAC exchange. Each Chunk call advances the Gauss-Markov
// fading process one chunk-time (exactly the rateadapt.RunTrace
// recursion), reads the adapter's current rate, and loses the chunk
// with the instantaneous per-rate SNR-cliff probability; the resulting
// ACK/NACK feeds the adapter back (per chunk for fd, ignored by
// fixed/arf).
//
// The loss draw itself rides the tag's loss stream (already loaded into
// the worker's iid scratch by runFrame; the probability is rewritten
// before each draw), so with FadeRho = 0 and a single 1x rate at the
// scenario cliff the draw sequence — and therefore the whole run — is
// bit-for-bit the static engine's. The fading and feedback-flip draws
// come from the tag's dedicated fade stream and are only consumed when
// fading (rho > 0) or fd feedback is in play.
type fadeView struct {
	f       *fadeState
	t       *tagState
	iid     *mac.IIDLoss // the owning worker's loss scratch
	fadeSrc *simrand.Source
	rates   []rateadapt.RateSpec
	rho     float64

	// Bound-row cache, loaded by bind and written back by unbind.
	i        int
	adapter  rateadapt.Adapter
	meanSNR  float64
	fbBER    float64
	h        complex128
	gainDB   float64
	prevRate int
	// extraP is the cell's interference-burst loss for the current
	// frame (set by runFrame after bind; 0 with faults disabled),
	// composed into every chunk's loss probability.
	extraP float64

	// Per-frame scratch, reset by beginFrame and read by the engine
	// right after each MAC exchange.
	frameChunks  int64
	frameInvMult float64
	frameLost    int64
}

// init wires the view to the engine's fadeState and the owning worker's
// loss scratch. Called once per worker at pool start.
func (v *fadeView) init(e *engine, iid *mac.IIDLoss) {
	v.f = e.fade
	v.t = &e.tags
	v.iid = iid
	v.fadeSrc = simrand.New(0) //fdlint:stream-ok scratch; Reseed(fadeSeed(seed, i)) re-roots it per tag before use
	v.rates = e.fade.rates
	v.rho = e.fade.rho
}

// bind loads tag i's row into the view's scratch.
func (v *fadeView) bind(i int) {
	f := v.f
	v.i = i
	v.fadeSrc.SetState(f.fadeHi[i], f.fadeLo[i])
	v.h = f.h[i]
	v.gainDB = f.gainDB[i]
	v.meanSNR = f.meanSNR[i]
	v.fbBER = v.t.fbBER[i]
	v.adapter = f.adapter(i)
	v.prevRate = int(f.prevRate[i])
	v.extraP = 0
}

// unbind writes the mutated row state back.
func (v *fadeView) unbind() {
	f, i := v.f, v.i
	f.fadeHi[i], f.fadeLo[i] = v.fadeSrc.State()
	f.h[i] = v.h
	f.gainDB[i] = v.gainDB
	f.prevRate[i] = int32(v.prevRate)
}

// advance steps the fading process one chunk-time. With rho = 0 the
// channel is static (gainDB stays 0) and no randomness is consumed.
func (v *fadeView) advance() {
	if v.rho == 0 {
		return
	}
	v.h = rateadapt.FadeStep(v.h, v.rho, v.fadeSrc)
	v.gainDB = rateadapt.FadeGainDB(v.h)
}

// beginFrame resets the per-frame accumulators before a MAC exchange.
func (v *fadeView) beginFrame() {
	v.frameChunks, v.frameInvMult, v.frameLost = 0, 0, 0
}

// Chunk implements mac.Loss.
func (v *fadeView) Chunk() bool {
	v.advance()
	ri := v.adapter.Rate()
	f, i := v.f, v.i
	if ri != v.prevRate {
		f.switches[i]++
		v.prevRate = ri
	}
	r := v.rates[ri]
	snr := v.meanSNR + v.gainDB
	p := rateadapt.ChunkLossProb(r, snr)
	if v.extraP > 0 {
		p += (1 - p) * v.extraP
	}
	v.iid.P = p
	lostChunk := v.iid.Chunk()

	v.frameChunks++
	v.frameInvMult += 1 / r.Mult
	f.chunks[i]++
	f.invMult[i] += 1 / r.Mult
	f.rateChunks[i*f.nr+ri]++
	if lostChunk {
		f.rateLost[i*f.nr+ri]++
		v.frameLost++
	}
	if ri != f.oracleRate(snr) {
		f.lag[i]++
	}

	fb := !lostChunk
	if f.fdFB && v.fbBER > 0 && v.fadeSrc.Bool(v.fbBER) {
		fb = !fb
	}
	v.adapter.OnChunk(fb)
	return lostChunk
}

// Idle implements mac.Loss: the channel keeps fading while the tag
// backs off (one process step per chunk-time, as in the trace model).
func (v *fadeView) Idle(n int) {
	for i := 0; i < n; i++ {
		v.advance()
	}
}

// frameExtraBytes converts the rates used during the last MAC exchange
// into an airtime correction: a chunk at multiplier m occupies
// chunkAir/m byte-times instead of chunkAir, so the exchange's elapsed
// and transmitted airtime shift by chunkAir*(sum(1/m) - chunks). All
// 1x chunks make this exactly zero.
func (v *fadeView) frameExtraBytes(chunkAir int64) int64 {
	return int64(math.Round(float64(chunkAir) * (v.frameInvMult - float64(v.frameChunks))))
}

// endFrame reports end-of-frame feedback to the adapter: a frame is
// "clean" only when it was delivered with no chunk lost anywhere in the
// exchange — the signal a half-duplex prober reads off the missing ACK.
func (v *fadeView) endFrame(delivered bool) {
	v.adapter.OnFrame(delivered && v.frameLost == 0)
}
