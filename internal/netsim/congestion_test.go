package netsim

// Property tests for the closed-loop congestion controller, the reader
// scheduling policies and the fault-injection layer: invariants checked
// through the engine's round probe across scenarios and seeds, plus the
// worker-count reflection the determinism contract demands.

import (
	"fmt"
	"reflect"
	"testing"
)

// congScenarios spreads congestion-controlled configurations across
// open and closed loop, every scheduling policy, and fault hazards.
func congScenarios() []Scenario {
	return []Scenario{
		{Tags: 16, Topology: TopologyClustered, RadiusM: 8, Clusters: 3,
			OfferedLoad: 1.0, MaxRounds: 80, QueueCap: 12, CapacitanceF: 47e-6,
			Readers:    ReaderSpec{Count: 2, Placement: ReaderLine, SpacingM: 8},
			Congestion: CongestionSpec{Controller: CongestionCubic}},
		{Tags: 12, Topology: TopologyGrid, RadiusM: 6,
			FramesPerTag: 8, MaxRounds: 96, CapacitanceF: 47e-6,
			Readers:    ReaderSpec{Count: 2, Placement: ReaderGrid, SpacingM: 6, Policy: PolicyFIFO},
			Congestion: CongestionSpec{Controller: CongestionCubic, RTOMinRounds: 3, RetxCap: 4}},
		{Tags: 20, Topology: TopologyCells, RadiusM: 10, ClusterSpreadM: 2,
			OfferedLoad: 0.6, MaxRounds: 96, CapacitanceF: 47e-6,
			Readers:    ReaderSpec{Count: 4, Placement: ReaderGrid, SpacingM: 8, Policy: PolicyPropFair},
			Congestion: CongestionSpec{Controller: CongestionCubic},
			Faults:     FaultSpec{OutageRate: 0.03, InterferenceRate: 0.04, ChurnRate: 0.01}},
		{Tags: 10, Topology: TopologyUniformDisc, RadiusM: 8,
			OfferedLoad: 0.8, MaxRounds: 80, CapacitanceF: 47e-6,
			Readers:    ReaderSpec{Count: 2, Placement: ReaderLine, SpacingM: 10, Policy: PolicyDeadline, DeadlineRounds: 12},
			Congestion: CongestionSpec{Controller: CongestionCubic, JitterFrac: -1}},
	}
}

// TestCongestionWindowBounds checks the controller's hard clamps every
// round: cwnd in [1, QueueCap], RTO in [RTOMinRounds, RTOMaxRounds]
// even under zero-variance RTT, backoff within its exponent cap, and
// the retransmission queue within its bound.
func TestCongestionWindowBounds(t *testing.T) {
	for si, sc := range congScenarios() {
		for seed := uint64(1); seed <= 3; seed++ {
			var probeErr error
			probe := func(round int, dt float64, st roundState) {
				if probeErr != nil || st.cong == nil {
					return
				}
				c := st.cong
				for i := range c.cwnd {
					if c.cwnd[i] < 1 || c.cwnd[i] > c.queueCap {
						probeErr = fmt.Errorf("round %d tag %d: cwnd %g outside [1, %g]", round, i, c.cwnd[i], c.queueCap)
						return
					}
					if c.rto[i] < c.rtoMin || c.rto[i] > c.rtoMax {
						probeErr = fmt.Errorf("round %d tag %d: rto %g outside [%g, %g]", round, i, c.rto[i], c.rtoMin, c.rtoMax)
						return
					}
					if c.backoff[i] > c.maxBackoff {
						probeErr = fmt.Errorf("round %d tag %d: backoff %d beyond cap %d", round, i, c.backoff[i], c.maxBackoff)
						return
					}
					if c.retxQ[i] < 0 || c.retxQ[i] > c.retxCap {
						probeErr = fmt.Errorf("round %d tag %d: retx queue %d outside [0, %d]", round, i, c.retxQ[i], c.retxCap)
						return
					}
				}
			}
			if _, err := run(sc, seed, 1, probe, nil); err != nil {
				t.Fatalf("scenario %d seed %d: %v", si, seed, err)
			}
			if probeErr != nil {
				t.Fatalf("scenario %d seed %d: %v", si, seed, probeErr)
			}
		}
	}
}

// TestCongestionConservation checks that the retransmission machinery
// never double-delivers or leaks a frame: at every round's settlement,
// each tag's offered frames are exactly the delivered plus dropped plus
// the transmit-queue and retx-queue residents.
func TestCongestionConservation(t *testing.T) {
	for si, sc := range congScenarios() {
		for seed := uint64(1); seed <= 3; seed++ {
			var probeErr error
			probe := func(round int, dt float64, st roundState) {
				if probeErr != nil {
					return
				}
				for i := range st.stats {
					ts := &st.stats[i]
					held := int(st.queue[i])
					if st.cong != nil {
						held += int(st.cong.retxQ[i])
					}
					if ts.FramesOffered != ts.FramesDelivered+ts.FramesDropped+held {
						probeErr = fmt.Errorf("round %d tag %d: offered %d != delivered %d + dropped %d + held %d",
							round, i, ts.FramesOffered, ts.FramesDelivered, ts.FramesDropped, held)
						return
					}
				}
			}
			res, err := run(sc, seed, 1, probe, nil)
			if err != nil {
				t.Fatalf("scenario %d seed %d: %v", si, seed, err)
			}
			if probeErr != nil {
				t.Fatalf("scenario %d seed %d: %v", si, seed, probeErr)
			}
			// The same conservation holds for the run totals, with the
			// final residuals reported through the per-reader QueueDepth.
			var held int64
			for _, rs := range res.Readers {
				held += rs.QueueDepth
			}
			if res.FramesOffered != res.FramesDelivered+res.FramesDropped+held {
				t.Fatalf("scenario %d seed %d: totals offered %d != delivered %d + dropped %d + held %d",
					si, seed, res.FramesOffered, res.FramesDelivered, res.FramesDropped, held)
			}
		}
	}
}

// TestRTOFloorUnderZeroVariance pins the Jacobson floor: a lone tag on
// a clean short link delivers every frame in one round, so the RTT
// samples are identically 1, RTTVAR decays toward zero, and without the
// clamp the RTO would collapse to the sample itself. It must instead
// hold at RTOMinRounds.
func TestRTOFloorUnderZeroVariance(t *testing.T) {
	sc := Scenario{
		Tags: 1, Topology: TopologyGrid, RadiusM: 0.5,
		OfferedLoad: 0.5, MaxRounds: 96, CapacitanceF: 47e-6,
		Congestion: CongestionSpec{Controller: CongestionCubic},
	}
	var sawSample bool
	var probeErr error
	probe := func(round int, dt float64, st roundState) {
		if probeErr != nil || st.cong == nil {
			return
		}
		c := st.cong
		if c.srtt[0] > 0 {
			sawSample = true
			if c.rto[0] < c.rtoMin {
				probeErr = fmt.Errorf("round %d: rto %g collapsed below floor %g (srtt %g, rttvar %g)",
					round, c.rto[0], c.rtoMin, c.srtt[0], c.rttvar[0])
			}
		}
	}
	res, err := run(sc, 3, 1, probe, nil)
	if err != nil {
		t.Fatal(err)
	}
	if probeErr != nil {
		t.Fatal(probeErr)
	}
	if !sawSample {
		t.Fatal("the lone tag never took an RTT sample; the floor was not exercised")
	}
	if res.Tags[0].SRTTRounds <= 0 || res.Tags[0].SRTTRounds > 2 {
		t.Fatalf("clean one-round service should settle SRTT near 1, got %g", res.Tags[0].SRTTRounds)
	}
}

// TestFaultOutageShardingInvariance runs the outage-retail preset — a
// scheduled reader outage with re-association, recovery, and an
// interference burst — at 1 and 8 workers and demands byte-identical
// results, plus sane fault bookkeeping: the dark reader logs exactly
// its scheduled outage rounds and the cell recovers (its tags deliver
// after the carrier returns).
func TestFaultOutageShardingInvariance(t *testing.T) {
	sc, err := Preset("outage-retail")
	if err != nil {
		t.Fatal(err)
	}
	r1, err := RunParallel(sc, 11, 1)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := RunParallel(sc, 11, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r8) {
		t.Fatal("outage-retail diverged between 1 and 8 workers; fault injection broke the determinism contract")
	}
	if got := r1.Readers[1].OutageRounds; got != 40 {
		t.Fatalf("reader 1 logged %d outage rounds, want the scheduled 40", got)
	}
	if got := r1.Readers[2].InterferenceRounds; got != 24 {
		t.Fatalf("reader 2 logged %d interference rounds, want the scheduled 24", got)
	}
	if r1.Timeouts == 0 {
		t.Fatal("a 40-round outage under congestion control should fire at least one RTO")
	}
	if r1.Readers[1].FramesDelivered == 0 {
		t.Fatal("reader 1 delivered nothing; the cell never recovered from its outage")
	}
}

// TestCongestedDockShardingInvariance does the same reflection for the
// congestion showcase preset — proportional-fair polling with cubic
// windows riding the collapse knee.
func TestCongestedDockShardingInvariance(t *testing.T) {
	sc, err := Preset("congested-dock")
	if err != nil {
		t.Fatal(err)
	}
	r1, err := RunParallel(sc, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	r6, err := RunParallel(sc, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r6) {
		t.Fatal("congested-dock diverged between 1 and 6 workers")
	}
	if r1.Timeouts == 0 || r1.Retransmissions == 0 {
		t.Fatalf("an overloaded dock should exercise the RTO/retx machinery (timeouts %d, retx %d)",
			r1.Timeouts, r1.Retransmissions)
	}
	if r1.MeanCwnd() <= 0 {
		t.Fatalf("mean cwnd %g must be positive with the controller on", r1.MeanCwnd())
	}
}

// TestCongestionSpecValidation exercises the orphan-field and bounds
// rejections of the new specs.
func TestCongestionSpecValidation(t *testing.T) {
	bad := []Scenario{
		{Tags: 4, Congestion: CongestionSpec{Beta: 0.5}},                                                   // orphan knob, no controller
		{Tags: 4, Congestion: CongestionSpec{Controller: "reno"}},                                          // unknown controller
		{Tags: 4, Congestion: CongestionSpec{Controller: CongestionCubic, Beta: 1.5}},                      // beta out of range
		{Tags: 4, Readers: ReaderSpec{Policy: "round-robin"}},                                              // unknown policy
		{Tags: 4, Readers: ReaderSpec{Policy: PolicyFIFO, DeadlineRounds: 8}},                              // deadline knob without deadline policy
		{Tags: 4, Faults: FaultSpec{Events: []FaultEvent{{Round: 1, Kind: "meteor"}}}},                     // unknown fault kind
		{Tags: 4, Faults: FaultSpec{Events: []FaultEvent{{Round: 0, Kind: FaultReaderOutage}}}},            // round is 1-based
		{Tags: 4, Faults: FaultSpec{Events: []FaultEvent{{Round: 1, Kind: FaultReaderOutage, Reader: 3}}}}, // reader out of range
		{Tags: 4, Faults: FaultSpec{OutageRate: 1.5}},                                                      // probability out of range
	}
	for i, sc := range bad {
		sc.ApplyDefaults()
		if err := sc.Validate(); err == nil {
			t.Fatalf("bad scenario %d validated", i)
		}
	}
}
