package netsim

// Worker pool for the sharded round loop. The pool is persistent for
// the whole run: workers are goroutines parked on a channel, a phase
// dispatch hands each of them one token, and every worker (including
// the dispatching main goroutine, which doubles as workers[0]) claims
// shards off a shared atomic counter until the phase is exhausted.
// Steady-state rounds therefore start no goroutines and allocate
// nothing — the only per-dispatch costs are channel sends and the
// WaitGroup barrier.
//
// Determinism does not depend on which worker claims which shard: a
// shard's computation reads only state owned by the shard (its reader
// cell's tags, or its tag range) plus per-tag stream words stored
// inline, and writes only shard-owned state and its own accumulator
// slot. Cross-shard reductions happen after the barrier, in shard
// order, on the main goroutine.

import (
	"sync"
	"sync/atomic"

	"repro/internal/mac"
	"repro/internal/simrand"
)

// phaseKind names the parallel phases of the round loop.
type phaseKind uint8

const (
	// phaseWindows executes contention windows; shards are active
	// reader cells.
	phaseWindows phaseKind = iota
	// phaseInit expands per-tag setup from the serial root draws;
	// shards are tag ranges.
	phaseInit
	// phaseDerive recomputes link qualities; shards are tag ranges.
	phaseDerive
	// phaseSettle settles energy budgets; shards are tag ranges.
	phaseSettle
	// phaseDrain finalises per-tag stats; shards are tag ranges.
	phaseDrain
	// phaseCong runs the per-round congestion pass (RTO expiry, retx
	// re-admission, pacing eligibility); shards are tag ranges.
	phaseCong
)

// tagShardLen is the tag-range shard size for the per-tag phases:
// large enough that the atomic claim is noise, small enough that a
// million tags spread over every worker.
const tagShardLen = 4096

// cellAcc accumulates one reader cell's window outcome. Padded to a
// cache line so adjacent cells on different workers don't false-share.
type cellAcc struct {
	windowBytes    int64
	idleSlots      int64
	singletonSlots int64
	collisionSlots int64
	collisionBytes int64
	goodputBytes   int64
	_              [2]int64
}

// netWorker is one worker's scratch: reused protocol instances, the
// sources per-tag stream state is loaded into, and the slot histogram
// for whichever cell the worker is executing. Everything here is
// allocated once at pool start.
type netWorker struct {
	// lossSrc and protoSrc are stream-loading scratch: SetState with a
	// tag's inline words before use, State back after.
	lossSrc  *simrand.Source
	protoSrc *simrand.Source
	iid      *mac.IIDLoss
	fv       fadeView
	// params is the worker's copy of the shared MAC dimensions;
	// FeedbackBER is written per frame.
	params mac.Params
	fd     mac.FullDuplex
	sw     mac.StopAndWait
	ba     mac.BlockACK
	// Slot histogram scratch for runWindowCell.
	slotCount  []int32
	slotWinner []int32
	// Grant-list scratch for runPolicyCell (nil under PolicyAloha):
	// the top-ContentionWindow contenders by policy metric.
	grantIdx    []int32
	grantMetric []float64
}

type pool struct {
	e       *engine
	workers []*netWorker
	workCh  chan phaseKind
	wg      sync.WaitGroup
	// shardNext is the shared shard-claim counter for the current
	// phase; reset by dispatch before any worker can run.
	shardNext atomic.Int64
	// anyQueued is OR'd by settle shards: true when some live tag still
	// holds a frame (drives closed-loop termination). Order-free.
	anyQueued atomic.Bool
}

// start builds the worker scratch and parks workers-1 helper
// goroutines on the dispatch channel (the main goroutine is
// workers[0]). Protocol scratch is primed here so first use never
// allocates — an allocation on first use would land on whichever
// worker happened to claim the first frame, making allocation counts
// scheduling-dependent.
//
//fdlint:workerpool
func (p *pool) start(e *engine, workers int) {
	p.e = e
	p.workers = make([]*netWorker, workers)
	cw := e.sc.ContentionWindow
	for i := range p.workers {
		w := &netWorker{
			lossSrc:    simrand.New(0), //fdlint:stream-ok scratch; SetState-restored from the tag's stream words before every draw
			protoSrc:   simrand.New(0), //fdlint:stream-ok scratch; SetState-restored from the tag's stream words before every draw
			params:     e.params,
			slotCount:  make([]int32, cw),
			slotWinner: make([]int32, cw),
		}
		w.iid = mac.NewIIDLossUsing(0, w.lossSrc)
		w.fd.P = e.params
		w.fd.Prime()
		if e.fade != nil {
			w.fv.init(e, w.iid)
		}
		if e.sched != nil {
			w.grantIdx = make([]int32, 0, cw)
			w.grantMetric = make([]float64, 0, cw)
		}
		p.workers[i] = w
	}
	helpers := workers - 1
	p.workCh = make(chan phaseKind, helpers)
	for i := 1; i < workers; i++ {
		go func(w *netWorker) {
			for ph := range p.workCh {
				p.runPhase(w, ph)
				p.wg.Done()
			}
		}(p.workers[i])
	}
}

// stop releases the helper goroutines.
func (p *pool) stop() { close(p.workCh) }

// shardCount returns the number of shards the phase divides into.
func (p *pool) shardCount(ph phaseKind) int {
	if ph == phaseWindows {
		return len(p.e.activeCells)
	}
	return (p.e.tags.len() + tagShardLen - 1) / tagShardLen
}

// dispatch runs one phase to completion across the pool and returns
// after the barrier. With one worker (or one shard) it degenerates to
// an inline call with no synchronisation at all.
func (p *pool) dispatch(ph phaseKind) {
	n := p.shardCount(ph)
	if n == 0 {
		return
	}
	p.shardNext.Store(0)
	helpers := len(p.workers) - 1
	if helpers == 0 || n <= 1 {
		p.runPhase(p.workers[0], ph)
		return
	}
	// Token count need not match claim counts: a fast helper may drain
	// several shards and a slow one none. The barrier only needs every
	// token matched by one Done and every shard claimed exactly once
	// (the atomic counter guarantees the latter).
	p.wg.Add(helpers)
	for i := 0; i < helpers; i++ {
		p.workCh <- ph
	}
	p.runPhase(p.workers[0], ph)
	p.wg.Wait()
}

// runPhase claims shards until the phase is exhausted. Executes on
// pool workers; the shared shard counter is the only synchronisation.
//
//fdlint:parallel
//fdlint:noalloc
func (p *pool) runPhase(w *netWorker, ph phaseKind) {
	e := p.e
	n := p.shardCount(ph)
	for {
		s := int(p.shardNext.Add(1)) - 1
		if s >= n {
			return
		}
		switch ph {
		case phaseWindows:
			e.runWindowCell(w, s)
		default:
			lo := s * tagShardLen
			hi := lo + tagShardLen
			if hi > e.tags.len() {
				hi = e.tags.len()
			}
			switch ph {
			case phaseInit:
				e.initShard(w, lo, hi)
			case phaseDerive:
				e.deriveShard(lo, hi)
			case phaseSettle:
				e.settleShard(lo, hi)
			case phaseDrain:
				e.drainShard(lo, hi)
			case phaseCong:
				e.congShard(w, lo, hi)
			}
		}
	}
}
