package netsim

// Property tests for the round-end energy settlement and the
// cell-level metrics: invariants that must hold for every scenario and
// seed, checked through the engine's round probe rather than any one
// golden value.

import (
	"fmt"
	"testing"
)

// propScenarios is a spread of engine configurations covering closed
// and open loop, every scheduling mode, mobility, and rho = 1 (the
// harshest reflection split).
func propScenarios() []Scenario {
	return []Scenario{
		{Tags: 12, Topology: TopologyUniformDisc, RadiusM: 8,
			OfferedLoad: 0.5, MaxRounds: 60, Rho: 1},
		{Tags: 9, Topology: TopologyGrid, RadiusM: 25, OfferedLoad: 1.5,
			MaxRounds: 80, CapacitanceF: 1e-6, TxEnergyJ: 2e-6},
		{Tags: 16, Topology: TopologyCells, RadiusM: 10, ClusterSpreadM: 2,
			Readers:      ReaderSpec{Count: 4, Placement: ReaderGrid, SpacingM: 8},
			FramesPerTag: 6, MaxRounds: 80},
		{Tags: 10, Topology: TopologyCells, RadiusM: 12, ClusterSpreadM: 2,
			Readers:     ReaderSpec{Count: 2, Placement: ReaderLine, SpacingM: 14, Scheduling: SchedulingTDM},
			OfferedLoad: 0.4, MaxRounds: 96, Rho: 1,
			Mobility: MobilitySpec{Model: MobilityWaypoint, StepM: 2, EpochRounds: 3}},
	}
}

func TestEnergySettlementInvariants(t *testing.T) {
	for si, sc := range propScenarios() {
		for seed := uint64(1); seed <= 4; seed++ {
			var probeErr error
			prevAlive := make([]bool, sc.Tags)
			for i := range prevAlive {
				prevAlive[i] = true
			}
			probe := func(round int, dt float64, st roundState) {
				if probeErr != nil {
					return
				}
				if dt <= 0 {
					probeErr = fmt.Errorf("round %d settled over non-positive dt %g", round, dt)
					return
				}
				for i := range st.alive {
					// A tag transmits at most once per round inside its
					// reader's window, and the wall clock is the longest
					// active window: transmit time can never exceed it.
					if st.txDt[i] > dt+1e-12 {
						probeErr = fmt.Errorf("round %d tag %d: txDt %g exceeds round dt %g", round, i, st.txDt[i], dt)
						return
					}
					// The rho/2 Manchester-duty reflection loss removes at
					// most half the incident power even at rho = 1: the
					// harvest input stays physical.
					if st.harvestW[i] < 0 {
						probeErr = fmt.Errorf("round %d tag %d: negative harvest power %g", round, i, st.harvestW[i])
						return
					}
					// Brown-out death is latched: once a tag dies it stays
					// dead for the rest of the run.
					if !prevAlive[i] && st.alive[i] {
						probeErr = fmt.Errorf("round %d tag %d: revived after brown-out", round, i)
						return
					}
					prevAlive[i] = st.alive[i]
				}
			}
			if _, err := run(sc, seed, 1, probe, nil); err != nil {
				t.Fatalf("scenario %d seed %d: %v", si, seed, err)
			}
			if probeErr != nil {
				t.Fatalf("scenario %d seed %d: %v", si, seed, probeErr)
			}
		}
	}
}

func TestMetricBoundsAcrossSeeds(t *testing.T) {
	for si, sc := range propScenarios() {
		for seed := uint64(1); seed <= 4; seed++ {
			res, err := Run(sc, seed)
			if err != nil {
				t.Fatalf("scenario %d seed %d: %v", si, seed, err)
			}
			ctx := fmt.Sprintf("scenario %d seed %d", si, seed)
			if d := res.DeliveryRate(); d < 0 || d > 1 {
				t.Fatalf("%s: delivery rate %g outside [0, 1]", ctx, d)
			}
			n := float64(len(res.Tags))
			if f := res.FairnessIndex(); f != 0 && (f < 1/n-1e-12 || f > 1+1e-12) {
				t.Fatalf("%s: fairness %g outside {0} union [1/N, 1]", ctx, f)
			}
			if res.FramesDelivered > res.FramesOffered {
				t.Fatalf("%s: delivered %d exceeds offered %d", ctx, res.FramesDelivered, res.FramesOffered)
			}
			for _, tag := range res.Tags {
				if tag.OutageFraction < 0 || tag.OutageFraction > 1 {
					t.Fatalf("%s tag %d: outage %g outside [0, 1]", ctx, tag.ID, tag.OutageFraction)
				}
				if tag.LifetimeS < 0 || tag.LifetimeS > res.SimulatedS+1e-9 {
					t.Fatalf("%s tag %d: lifetime %g outside [0, %g]", ctx, tag.ID, tag.LifetimeS, res.SimulatedS)
				}
				if tag.Alive && tag.LifetimeS != res.SimulatedS {
					t.Fatalf("%s tag %d: survivor lifetime %g != horizon %g", ctx, tag.ID, tag.LifetimeS, res.SimulatedS)
				}
			}
		}
	}
}

func TestMetricEdgeCases(t *testing.T) {
	var empty NetResult
	if empty.FairnessIndex() != 0 || empty.DeliveryRate() != 0 || empty.Throughput() != 0 ||
		empty.CollisionFraction() != 0 || empty.AliveFraction() != 0 ||
		empty.MeanLifetimeS() != 0 || empty.MeanSNRdB() != 0 {
		t.Fatal("zero-value NetResult must report zero for every metric")
	}

	// No delivery at all: fairness is 0 (no service to be fair about),
	// not NaN and not 1.
	starved := NetResult{Tags: []TagStats{{}, {}, {}}, FramesOffered: 9}
	if f := starved.FairnessIndex(); f != 0 {
		t.Fatalf("all-zero delivery fairness = %g, want 0", f)
	}
	if d := starved.DeliveryRate(); d != 0 {
		t.Fatalf("all-zero delivery rate = %g, want 0", d)
	}

	single := NetResult{Tags: []TagStats{{FramesDelivered: 7}}}
	if f := single.FairnessIndex(); f != 1 {
		t.Fatalf("single-tag fairness = %g, want 1", f)
	}

	equal := NetResult{Tags: []TagStats{{FramesDelivered: 3}, {FramesDelivered: 3}, {FramesDelivered: 3}, {FramesDelivered: 3}}}
	if f := equal.FairnessIndex(); f < 1-1e-12 || f > 1+1e-12 {
		t.Fatalf("equal-service fairness = %g, want 1", f)
	}

	hog := NetResult{Tags: []TagStats{{FramesDelivered: 12}, {}, {}, {}}}
	if f := hog.FairnessIndex(); f < 0.25-1e-12 || f > 0.25+1e-12 {
		t.Fatalf("one-tag-takes-all fairness = %g, want 1/4", f)
	}
}
