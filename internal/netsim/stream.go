package netsim

// Streaming execution: RunStream runs a scenario exactly like Run but
// emits a RoundSnapshot after every completed round and aborts cleanly
// when its context is cancelled — the re-entrant, cancellable engine
// surface the fdnetd service is built on (internal/netsvc).
//
// The stream changes nothing about what the engine computes: snapshots
// are read-only observations taken between rounds, they consume no
// randomness, and the final NetResult is byte-identical to a batch
// Run/RunParallel of the same (Scenario, seed) at any worker count.
//
// Resume rides the engine's purity contract. A run's state after k
// rounds — including every inline per-tag RNG column — is a pure
// function of (Scenario, seed, k), so a resume cursor need only carry
// the round number: StreamOptions.StartRound replays rounds [1, start)
// without emitting them and then streams the remainder, whose snapshots
// are byte-for-byte the tail an uninterrupted run would have produced
// (enforced by TestRunStreamResumeMatchesTail and the CI daemon job).

import (
	"context"
	"fmt"
)

// ReaderRound is one reader's slice of a RoundSnapshot: per-round
// deltas plus the cell's window saturation — the live hotspot counters
// that show which reader cells saturate and when.
type ReaderRound struct {
	// ID indexes the reader in placement order.
	ID int `json:"id"`
	// DeliveredDelta counts frames this reader carried this round.
	DeliveredDelta int `json:"delivered_delta"`
	// SingletonDelta / CollisionDelta classify this reader's non-idle
	// contention slots this round.
	SingletonDelta int64 `json:"singleton_delta"`
	CollisionDelta int64 `json:"collision_delta"`
	// Saturation is the fraction of this reader's contention window
	// occupied by non-idle slots this round: 0 for an idle (or
	// TDM-inactive) cell, approaching 1 as the cell saturates.
	Saturation float64 `json:"saturation"`
	// QueueDepth is the total backlog (queued plus retx-parked frames)
	// of this reader's associated tags after this round — the live
	// hotspot depth gauge.
	QueueDepth int64 `json:"queue_depth"`
	// Down / Interference flag fault-injection state: the reader was
	// dark, or under an interference burst, during this round.
	Down         bool `json:"down,omitempty"`
	Interference bool `json:"interference,omitempty"`
}

// RoundSnapshot is the per-round observation RunStream hands its sink:
// cumulative counters, derived rates, and per-round deltas including
// the per-reader saturation and the rate-histogram movement. The sink
// receives the SAME RoundSnapshot value each round with its fields
// (and the Readers / RateChunksDelta slices) rewritten in place —
// serialize or copy before returning, do not retain it.
type RoundSnapshot struct {
	// Round is the 1-based round this snapshot closes.
	Round int `json:"round"`
	// FramesOffered / FramesDelivered / FramesDropped are cumulative
	// over all tags through this round.
	FramesOffered   int64 `json:"frames_offered"`
	FramesDelivered int64 `json:"frames_delivered"`
	FramesDropped   int64 `json:"frames_dropped"`
	// DeliveredDelta counts frames delivered in this round alone.
	DeliveredDelta int64 `json:"delivered_delta"`
	// Delivery and Throughput are the cumulative rates so far (the
	// NetResult definitions evaluated mid-run).
	Delivery   float64 `json:"delivery"`
	Throughput float64 `json:"throughput"`
	// GoodputBytes / ElapsedBytes / SimulatedS track the shared clock.
	GoodputBytes int64   `json:"goodput_bytes"`
	ElapsedBytes int64   `json:"elapsed_bytes"`
	SimulatedS   float64 `json:"simulated_s"`
	// IdleSlots / SingletonSlots / CollisionSlots are cumulative across
	// every reader.
	IdleSlots      int64 `json:"idle_slots"`
	SingletonSlots int64 `json:"singleton_slots"`
	CollisionSlots int64 `json:"collision_slots"`
	// AliveTags counts tags above brown-out after this round's energy
	// settlement.
	AliveTags int `json:"alive_tags"`
	// Readers holds the per-reader deltas for this round, in placement
	// order.
	Readers []ReaderRound `json:"readers"`
	// RateChunksDelta[i] counts chunks transmitted at rate i this round
	// across the population (nil when rate adaptation is disabled).
	RateChunksDelta []int64 `json:"rate_chunks_delta,omitempty"`
}

// SnapshotSink receives one RoundSnapshot per completed round. A
// non-nil error aborts the run (RunStream returns it unchanged) — the
// service layer uses this to tear an engine down the moment its client
// disconnects.
type SnapshotSink func(*RoundSnapshot) error

// StreamOptions tune RunStream beyond the required arguments.
type StreamOptions struct {
	// Workers is the engine worker count (<= 0 selects one per CPU),
	// with the same byte-identity contract as RunParallel.
	Workers int
	// StartRound, when > 1, resumes a stream: rounds [1, StartRound)
	// are replayed deterministically without being emitted, and the
	// first snapshot the sink sees is round StartRound. 0 and 1 both
	// stream from the beginning. The replay is exact — engine state is
	// a pure function of (Scenario, seed, round) — so the emitted tail
	// is byte-identical to the uninterrupted stream's.
	StartRound int
}

// RunStream executes the scenario like Run, emitting a snapshot after
// each round and aborting (with the context's error) as soon as ctx is
// cancelled between rounds. The returned NetResult is byte-identical
// to Run(sc, seed) when the stream completes.
func RunStream(ctx context.Context, sc Scenario, seed uint64, sink SnapshotSink) (*NetResult, error) {
	return RunStreamOptions(ctx, sc, seed, StreamOptions{Workers: 1}, sink)
}

// RunStreamOptions is RunStream with explicit worker-count and resume
// options.
func RunStreamOptions(ctx context.Context, sc Scenario, seed uint64, opts StreamOptions, sink SnapshotSink) (*NetResult, error) {
	if sink == nil {
		return nil, fmt.Errorf("netsim: RunStream needs a snapshot sink")
	}
	if opts.StartRound < 0 {
		return nil, fmt.Errorf("netsim: stream start round %d must be non-negative", opts.StartRound)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	st := &streamer{ctx: ctx, sink: sink, start: opts.StartRound}
	return run(sc, seed, opts.Workers, nil, st)
}

// streamer holds the per-run streaming state: the previous round's
// cumulative counters (so deltas cost one subtraction) and the reused
// snapshot buffers. All reads happen between rounds on the dispatching
// goroutine, so no synchronisation is needed.
type streamer struct {
	ctx   context.Context
	sink  SnapshotSink
	start int

	snap          RoundSnapshot
	prevDelivered int64
	prevReaders   []ReaderStats
	prevRate      []int64
	curRate       []int64
	qdepth        []int64
}

// init sizes the reused buffers once the engine geometry is known.
func (st *streamer) init(e *engine) {
	R := len(e.rstats)
	st.snap.Readers = make([]ReaderRound, R)
	st.prevReaders = make([]ReaderStats, R)
	st.qdepth = make([]int64, R)
	if e.fade != nil {
		nr := e.fade.nr
		st.prevRate = make([]int64, nr)
		st.curRate = make([]int64, nr)
		st.snap.RateChunksDelta = make([]int64, nr)
	}
}

// observe fills the snapshot for the round that just settled and hands
// it to the sink (unless the round predates a resume cursor). Deltas
// are tracked every round regardless of emission, so a resumed stream's
// first snapshot carries the same deltas the uninterrupted stream's
// did. Runs once per settled round inside the same round loop the
// TestRoundLoopAllocFree family budgets, so it must stay
// allocation-free: the snapshot struct and its slices are sized once in
// init and reused for every round.
//
//fdlint:noalloc
func (st *streamer) observe(e *engine, res *NetResult, round int) error {
	s := &st.snap
	t := &e.tags
	s.Round = round + 1

	var offered, delivered, dropped int64
	alive := 0
	clear(st.qdepth)
	for i := range t.stats {
		ts := &t.stats[i]
		offered += int64(ts.FramesOffered)
		delivered += int64(ts.FramesDelivered)
		dropped += int64(ts.FramesDropped)
		if t.alive[i] {
			alive++
		}
		q := int64(t.queue[i])
		if e.cong != nil {
			q += int64(e.cong.retxQ[i])
		}
		st.qdepth[t.reader[i]] += q
	}
	s.FramesOffered, s.FramesDelivered, s.FramesDropped = offered, delivered, dropped
	s.DeliveredDelta = delivered - st.prevDelivered
	st.prevDelivered = delivered
	s.AliveTags = alive
	s.Delivery = 0
	if offered > 0 {
		s.Delivery = float64(delivered) / float64(offered)
	}
	s.GoodputBytes = res.GoodputBytes
	s.ElapsedBytes = res.ElapsedBytes
	s.Throughput = 0
	if res.ElapsedBytes > 0 {
		s.Throughput = float64(res.GoodputBytes) / float64(res.ElapsedBytes)
	}
	s.SimulatedS = float64(res.ElapsedBytes) * e.secondsPerByte
	s.IdleSlots = res.IdleSlots
	s.SingletonSlots = res.SingletonSlots
	s.CollisionSlots = res.CollisionSlots

	cw := float64(e.sc.ContentionWindow)
	for r := range e.rstats {
		cur := &e.rstats[r]
		prev := &st.prevReaders[r]
		rr := &s.Readers[r]
		rr.ID = r
		rr.DeliveredDelta = cur.FramesDelivered - prev.FramesDelivered
		rr.SingletonDelta = cur.SingletonSlots - prev.SingletonSlots
		rr.CollisionDelta = cur.CollisionSlots - prev.CollisionSlots
		rr.Saturation = float64(rr.SingletonDelta+rr.CollisionDelta) / cw
		rr.QueueDepth = st.qdepth[r]
		rr.Down, rr.Interference = false, false
		if flt := e.flt; flt != nil {
			rr.Down = flt.down[r]
			rr.Interference = flt.interfUntil[r] != 0
		}
		*prev = *cur
	}

	if f := e.fade; f != nil {
		nr := f.nr
		clear(st.curRate)
		for i := 0; i < t.len(); i++ {
			row := f.rateChunks[i*nr : (i+1)*nr]
			for k, c := range row {
				st.curRate[k] += c
			}
		}
		for k := range st.curRate {
			s.RateChunksDelta[k] = st.curRate[k] - st.prevRate[k]
			st.prevRate[k] = st.curRate[k]
		}
	}

	if s.Round < st.start {
		return nil
	}
	return st.sink(s)
}
