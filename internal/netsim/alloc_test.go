package netsim

import "testing"

// The engine's round loop must stay allocation-free at steady state —
// the PR 3 property the link-layer allocation budget now mirrors.
// Measuring "per round" directly is impossible from outside (setup
// allocates), so compare whole runs that differ only in round count:
// the extra rounds must contribute zero allocations.
//
// The functions on this path carry //fdlint:noalloc annotations
// (buildActiveCells, drawSlots, runFrame, runWindowCell, the shard
// bodies, streamer.observe): `go run ./cmd/fdlint ./...` names the
// offending construct at the line that would make this test fail.
func TestRoundLoopAllocFree(t *testing.T) {
	scenario := func(rounds int) Scenario {
		return Scenario{
			Name: "alloc-budget", Tags: 12, Topology: TopologyUniformDisc,
			RadiusM: 10, OfferedLoad: 0.3, MaxRounds: rounds,
			Readers: ReaderSpec{Count: 2, Placement: ReaderGrid, SpacingM: 10},
		}
	}
	measure := func(rounds int) float64 {
		sc := scenario(rounds)
		return testing.AllocsPerRun(5, func() {
			if _, err := Run(sc, 7); err != nil {
				t.Fatal(err)
			}
		})
	}
	short := measure(50)
	long := measure(250)
	if extra := long - short; extra != 0 {
		t.Fatalf("200 extra rounds allocated %.1f objects (%.3f/round); the round loop must not allocate",
			extra, extra/200)
	}
}

// The closed-loop rate-adaptation path must keep the same budget: the
// fading state, adapters, and rate histograms are all allocated at
// setup, so extra rounds still contribute zero allocations.
func TestRoundLoopAllocFreeWithRateAdapt(t *testing.T) {
	scenario := func(rounds int) Scenario {
		return Scenario{
			Name: "alloc-budget-adapt", Tags: 12, Topology: TopologyUniformDisc,
			RadiusM: 12, TxPowerW: 1.0, NoiseW: 1e-8, Rho: 0.9,
			FeedbackSamplesPerBit: 131072, CapacitanceF: 47e-6,
			OfferedLoad: 0.3, MaxRounds: rounds,
			RateAdapt: RateAdaptSpec{Adapter: RateAdaptFD, FadeRho: 0.95},
		}
	}
	measure := func(rounds int) float64 {
		sc := scenario(rounds)
		return testing.AllocsPerRun(5, func() {
			if _, err := Run(sc, 7); err != nil {
				t.Fatal(err)
			}
		})
	}
	short := measure(50)
	long := measure(250)
	if extra := long - short; extra != 0 {
		t.Fatalf("200 extra adapted rounds allocated %.1f objects (%.3f/round); the round loop must not allocate",
			extra, extra/200)
	}
}

// The congestion/fault/policy machinery must hold the same budget: the
// cwnd/RTT/retx columns, the fault masks, and the policy grant lists
// are all allocated at setup, retx jitter rides the tags' existing
// protocol streams through worker scratch, and the fault step's hazard
// draws come from one source allocated before the loop — so extra
// rounds still contribute zero allocations.
func TestRoundLoopAllocFreeWithCongestionFaults(t *testing.T) {
	scenario := func(rounds int) Scenario {
		return Scenario{
			Name: "alloc-budget-cong", Tags: 24, Topology: TopologyClustered,
			RadiusM: 10, Clusters: 3, CapacitanceF: 47e-6,
			OfferedLoad: 0.8, MaxRounds: rounds, QueueCap: 32,
			Readers:    ReaderSpec{Count: 2, Placement: ReaderLine, SpacingM: 10, Policy: PolicyPropFair},
			Congestion: CongestionSpec{Controller: CongestionCubic},
			Faults: FaultSpec{
				OutageRate: 0.02, InterferenceRate: 0.05, ChurnRate: 0.01,
			},
		}
	}
	measure := func(rounds int) float64 {
		sc := scenario(rounds)
		return testing.AllocsPerRun(5, func() {
			if _, err := Run(sc, 7); err != nil {
				t.Fatal(err)
			}
		})
	}
	short := measure(50)
	long := measure(250)
	if extra := long - short; extra != 0 {
		t.Fatalf("200 extra congested rounds allocated %.1f objects (%.3f/round); the round loop must not allocate",
			extra, extra/200)
	}
}

// The sharded round loop must hold the same budget at every worker
// count: worker scratch (protocol instances, stream-loading sources,
// slot histograms) is allocated at pool start and the dispatch
// machinery reuses one channel and one WaitGroup, so extra rounds
// contribute zero allocations even with helpers running. Mobility and
// rate adaptation are both on so every parallel phase executes.
func TestShardedRoundLoopAllocFree(t *testing.T) {
	scenario := func(rounds int) Scenario {
		return Scenario{
			Name: "alloc-budget-sharded", Tags: 96, Topology: TopologyUniformDisc,
			RadiusM: 12, TxPowerW: 1.0, NoiseW: 1e-8, Rho: 0.9,
			FeedbackSamplesPerBit: 131072, CapacitanceF: 47e-6,
			OfferedLoad: 0.3, MaxRounds: rounds,
			Readers:   ReaderSpec{Count: 4, Placement: ReaderGrid, SpacingM: 10},
			Mobility:  MobilitySpec{Model: MobilityWaypoint, StepM: 1, EpochRounds: 4},
			RateAdapt: RateAdaptSpec{Adapter: RateAdaptFD, FadeRho: 0.95},
		}
	}
	for _, workers := range []int{2, 4} {
		measure := func(rounds int) float64 {
			sc := scenario(rounds)
			return testing.AllocsPerRun(5, func() {
				if _, err := RunParallel(sc, 7, workers); err != nil {
					t.Fatal(err)
				}
			})
		}
		short := measure(50)
		long := measure(250)
		// Helper goroutines park/unpark on the dispatch channel and the
		// WaitGroup semaphore, whose runtime bookkeeping (sudog cache
		// fills, stack growth) shows up as a few one-off global mallocs
		// at unpredictable times. Bound well below one alloc per round:
		// a genuine round-loop allocation would add at least 200.
		if extra := long - short; extra > 10 || extra < -10 {
			t.Fatalf("workers=%d: 200 extra rounds allocated %.1f objects (%.3f/round); the sharded round loop must not allocate",
				workers, extra, extra/200)
		}
	}
}
