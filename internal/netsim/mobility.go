package netsim

import (
	"fmt"
	"math"

	"repro/internal/simrand"
)

// Mobility model names.
const (
	// MobilityNone is a static deployment (default).
	MobilityNone = "none"
	// MobilityWaypoint drifts each tag toward a private waypoint drawn
	// uniformly in the deployment disc, redrawing the waypoint on
	// arrival — the classic random-waypoint model, discretised to one
	// step per epoch.
	MobilityWaypoint = "waypoint"
)

// MobilitySpec configures optional tag motion. The zero value is a
// static deployment. When enabled, tag positions advance once per epoch
// and every tag's forward chunk-loss probability and feedback BER are
// re-derived from the new geometry exactly as Run derives them at
// placement time; under multi-reader scenarios tags also re-associate
// with the strongest carrier, so motion produces handovers.
type MobilitySpec struct {
	// Model is MobilityNone (default) or MobilityWaypoint.
	Model string `json:"model"`
	// StepM is the distance a tag moves per epoch in metres (default
	// RadiusM/20).
	StepM float64 `json:"step_m"`
	// EpochRounds is the number of inventory rounds per epoch (default
	// 4). The epoch is also the TDM reader-rotation period.
	EpochRounds int `json:"epoch_rounds"`
}

func (m *MobilitySpec) applyDefaults(radiusM float64) {
	if m.Model == "" {
		m.Model = MobilityNone
	}
	if m.StepM <= 0 {
		m.StepM = radiusM / 20
	}
	if m.EpochRounds <= 0 {
		m.EpochRounds = 4
	}
}

func (m MobilitySpec) validate() error {
	switch m.Model {
	case MobilityNone, MobilityWaypoint:
	default:
		return fmt.Errorf("netsim: unknown mobility model %q (want %s or %s)",
			m.Model, MobilityNone, MobilityWaypoint)
	}
	if math.IsNaN(m.StepM) || m.StepM < 1e-6 || m.StepM > 1e4 {
		return fmt.Errorf("netsim: mobility step %g m outside [1e-6, 1e4]", m.StepM)
	}
	if m.EpochRounds < 1 || m.EpochRounds > 1<<20 {
		return fmt.Errorf("netsim: mobility epoch %d rounds outside [1, %d]", m.EpochRounds, 1<<20)
	}
	return nil
}

func (m MobilitySpec) enabled() bool { return m.Model == MobilityWaypoint }

// waypointWalk is the engine's random-waypoint state: one target per
// tag, all randomness from a dedicated source so the walk is a fixed
// function of the run seed.
type waypointWalk struct {
	radius    float64
	step      float64
	waypoints []Position
	src       *simrand.Source
}

// newWaypointWalk draws every tag's initial waypoint up front, in tag
// index order, so the draw sequence never depends on when tags arrive
// at their targets.
func newWaypointWalk(n int, radius, step float64, src *simrand.Source) *waypointWalk {
	w := &waypointWalk{radius: radius, step: step, src: src,
		waypoints: make([]Position, n)}
	for i := range w.waypoints {
		w.waypoints[i] = w.draw()
	}
	return w
}

func (w *waypointWalk) draw() Position {
	rad := w.radius * math.Sqrt(w.src.Float64())
	th := 2 * math.Pi * w.src.Float64()
	return Position{X: rad * math.Cos(th), Y: rad * math.Sin(th)}
}

// advance moves every tag one step toward its waypoint, drawing a new
// waypoint on arrival. Tags are visited in index order; the only draws
// are the redraws, and whether a tag redraws is itself a deterministic
// function of the seeded history, so the walk stays reproducible.
// Waypoints lie inside the deployment disc, so positions that start
// inside it never leave (and grid corners that start outside converge
// into it).
func (w *waypointWalk) advance(pos []Position) {
	for i := range pos {
		dx := w.waypoints[i].X - pos[i].X
		dy := w.waypoints[i].Y - pos[i].Y
		d := math.Hypot(dx, dy)
		if d <= w.step {
			pos[i] = w.waypoints[i]
			w.waypoints[i] = w.draw()
			continue
		}
		pos[i].X += dx / d * w.step
		pos[i].Y += dy / d * w.step
	}
}
