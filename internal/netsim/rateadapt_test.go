package netsim

// Tests for the closed-loop rate-adaptation engine: the backward-compat
// contract (FadeRho = 0 + fixed 1x reproduces the static engine bit for
// bit), the paper's claim at network scale (FD per-chunk beats ARF
// probing under fading), validation of the new knobs, and internal
// consistency of the adaptation statistics.

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/rateadapt"
)

// adaptShowcase is the mid-rate-table operating point the scen-rateadapt
// bench cell uses: strong carrier over a raised noise floor, long
// feedback averaging window, generous capacitor.
func adaptShowcase(adapter string, fadeRho float64) Scenario {
	return Scenario{
		Tags: 12, Topology: TopologyUniformDisc, RadiusM: 12,
		TxPowerW: 1.0, NoiseW: 1e-8, Rho: 0.9, FeedbackSamplesPerBit: 131072,
		CapacitanceF: 47e-6, FramesPerTag: 40, MaxRounds: 600,
		RateAdapt: RateAdaptSpec{Adapter: adapter, FadeRho: fadeRho},
	}
}

// The backward-compat contract: with fading disabled (FadeRho = 0) and
// the fixed adapter pinned to a single 1x rate at the scenario's own
// cliff, the new engine must reproduce the static-loss engine bit for
// bit — same rounds, same draws, same per-tag outcomes — because the
// loss draws ride the same stream and no extra randomness is consumed.
func TestFadeRhoZeroFixedMatchesStatic(t *testing.T) {
	scenarios := []Scenario{
		{Tags: 8, Topology: TopologyGrid, RadiusM: 3, FramesPerTag: 4, MaxRounds: 48},
		{Tags: 12, Topology: TopologyUniformDisc, RadiusM: 30, OfferedLoad: 0.5, MaxRounds: 60},
		{Tags: 16, Topology: TopologyCells, RadiusM: 10, ClusterSpreadM: 2,
			Readers:      ReaderSpec{Count: 4, Placement: ReaderGrid, SpacingM: 8},
			FramesPerTag: 6, MaxRounds: 60},
		{Tags: 10, Topology: TopologyUniformDisc, RadiusM: 20, OfferedLoad: 0.4,
			MaxRounds: 72, Protocol: "stop-and-wait",
			Mobility: MobilitySpec{Model: MobilityWaypoint, StepM: 2, EpochRounds: 3}},
	}
	for si, sc := range scenarios {
		for seed := uint64(1); seed <= 3; seed++ {
			static, err := Run(sc, seed)
			if err != nil {
				t.Fatalf("scenario %d: %v", si, err)
			}
			ad := sc
			ad.RateAdapt = RateAdaptSpec{
				Adapter: RateAdaptFixed,
				FadeRho: 0,
				Rates: []rateadapt.RateSpec{
					{Name: "1x", Mult: 1, ReqSNRdB: static.Scenario.ReqSNRdB},
				},
			}
			got, err := Run(ad, seed)
			if err != nil {
				t.Fatalf("scenario %d adapted: %v", si, err)
			}
			// The adaptation run carries its own spec echo and stats; the
			// contract covers everything else.
			got.Scenario = static.Scenario
			got.RateSwitches, got.AdaptChunks, got.AdaptLagChunks, got.adaptInvMult = 0, 0, 0, 0
			for i := range got.Tags {
				ts := &got.Tags[i]
				ts.RateChunks, ts.RateLostChunks = nil, nil
				ts.RateSwitches, ts.AdaptChunks, ts.AdaptLagChunks = 0, 0, 0
				ts.MeanRateMult = 0
			}
			if !reflect.DeepEqual(static, got) {
				t.Fatalf("scenario %d seed %d: FadeRho=0 + fixed 1x diverged from the static engine\nstatic: %+v\nadapted: %+v",
					si, seed, static, got)
			}
		}
	}
}

// The acceptance claim: FD per-chunk adaptation out-delivers ARF frame
// probing on goodput throughput under FadeRho >= 0.9 fading, seed by
// seed on the showcase deployment.
func TestFDAdaptationBeatsARFUnderFading(t *testing.T) {
	for _, rho := range []float64{0.9, 0.95} {
		var fdSum, arfSum float64
		for seed := uint64(1); seed <= 3; seed++ {
			fd, err := Run(adaptShowcase(RateAdaptFD, rho), seed)
			if err != nil {
				t.Fatal(err)
			}
			arf, err := Run(adaptShowcase(RateAdaptARF, rho), seed)
			if err != nil {
				t.Fatal(err)
			}
			fdSum += fd.Throughput()
			arfSum += arf.Throughput()
		}
		if fdSum <= arfSum {
			t.Fatalf("rho %g: FD throughput %g must beat ARF %g at network scale", rho, fdSum/3, arfSum/3)
		}
	}
}

// The FD adapter must also track the channel more closely than ARF: a
// lower fraction of chunks transmitted off the oracle rate.
func TestFDTracksChannelCloserThanARF(t *testing.T) {
	fd, err := Run(adaptShowcase(RateAdaptFD, 0.9), 1)
	if err != nil {
		t.Fatal(err)
	}
	arf, err := Run(adaptShowcase(RateAdaptARF, 0.9), 1)
	if err != nil {
		t.Fatal(err)
	}
	if fd.AdaptLagFraction() >= arf.AdaptLagFraction() {
		t.Fatalf("FD lag %g must undercut ARF lag %g", fd.AdaptLagFraction(), arf.AdaptLagFraction())
	}
}

// Validate must reject every degenerate rate-adaptation knob with an
// actionable error instead of NaN-propagating silently.
func TestRateAdaptValidation(t *testing.T) {
	nan := math.NaN()
	mk := func(mut func(*Scenario)) Scenario {
		sc := Scenario{Tags: 4, RateAdapt: RateAdaptSpec{Adapter: RateAdaptFD, FadeRho: 0.9}}
		mut(&sc)
		return sc
	}
	cases := []struct {
		name string
		sc   Scenario
		want string
	}{
		{"unknown adapter", mk(func(s *Scenario) { s.RateAdapt.Adapter = "aimd" }), "unknown rate adapter"},
		{"rho negative", mk(func(s *Scenario) { s.RateAdapt.FadeRho = -0.1 }), "fade rho"},
		{"rho one", mk(func(s *Scenario) { s.RateAdapt.FadeRho = 1 }), "fade rho"},
		{"rho NaN", mk(func(s *Scenario) { s.RateAdapt.FadeRho = nan }), "fade rho"},
		{"orphan fade_rho", Scenario{Tags: 4, RateAdapt: RateAdaptSpec{FadeRho: 0.5}}, "without an adapter"},
		{"non-increasing mult", mk(func(s *Scenario) {
			s.RateAdapt.Rates = []rateadapt.RateSpec{
				{Name: "a", Mult: 1, ReqSNRdB: 4}, {Name: "b", Mult: 1, ReqSNRdB: 8}}
		}), "strictly increasing"},
		{"negative mult", mk(func(s *Scenario) {
			s.RateAdapt.Rates = []rateadapt.RateSpec{{Name: "a", Mult: -1, ReqSNRdB: 4}}
		}), "must be positive"},
		{"NaN mult", mk(func(s *Scenario) {
			s.RateAdapt.Rates = []rateadapt.RateSpec{{Name: "a", Mult: nan, ReqSNRdB: 4}}
		}), "must be positive"},
		{"req snr out of range", mk(func(s *Scenario) {
			s.RateAdapt.Rates = []rateadapt.RateSpec{{Name: "a", Mult: 1, ReqSNRdB: 200}}
		}), "required SNR"},
		{"req snr NaN", mk(func(s *Scenario) {
			s.RateAdapt.Rates = []rateadapt.RateSpec{{Name: "a", Mult: 1, ReqSNRdB: nan}}
		}), "required SNR"},
		{"decreasing req snr", mk(func(s *Scenario) {
			s.RateAdapt.Rates = []rateadapt.RateSpec{
				{Name: "a", Mult: 1, ReqSNRdB: 10}, {Name: "b", Mult: 2, ReqSNRdB: 4}}
		}), "non-decreasing"},
		{"negative up_after", mk(func(s *Scenario) { s.RateAdapt.UpAfter = -2 }), "up_after"},
		{"negative down_after", mk(func(s *Scenario) { s.RateAdapt.DownAfter = -1 }), "down_after"},
	}
	for _, c := range cases {
		_, err := Run(c.sc, 1)
		if err == nil {
			t.Fatalf("%s: accepted", c.name)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// Adaptation statistics must be internally consistent for any run.
func TestRateAdaptStatsConsistency(t *testing.T) {
	res, err := Run(adaptShowcase(RateAdaptFD, 0.95), 7)
	if err != nil {
		t.Fatal(err)
	}
	var chunks, lag, switches int64
	for _, tag := range res.Tags {
		var sum int64
		for ri, c := range tag.RateChunks {
			if c < 0 || tag.RateLostChunks[ri] > c {
				t.Fatalf("tag %d rate %d: lost %d of %d chunks", tag.ID, ri, tag.RateLostChunks[ri], c)
			}
			sum += c
		}
		if sum != tag.AdaptChunks {
			t.Fatalf("tag %d: rate histogram sums to %d, AdaptChunks %d", tag.ID, sum, tag.AdaptChunks)
		}
		if tag.AdaptLagChunks > tag.AdaptChunks {
			t.Fatalf("tag %d: lag %d exceeds chunks %d", tag.ID, tag.AdaptLagChunks, tag.AdaptChunks)
		}
		if tag.AdaptChunks > 0 && tag.MeanRateMult <= 0 {
			t.Fatalf("tag %d: mean rate mult %g with %d chunks", tag.ID, tag.MeanRateMult, tag.AdaptChunks)
		}
		chunks += tag.AdaptChunks
		lag += tag.AdaptLagChunks
		switches += tag.RateSwitches
	}
	if chunks != res.AdaptChunks || lag != res.AdaptLagChunks || switches != res.RateSwitches {
		t.Fatalf("aggregates diverge from per-tag sums: %d/%d, %d/%d, %d/%d",
			res.AdaptChunks, chunks, res.AdaptLagChunks, lag, res.RateSwitches, switches)
	}
	lo, hi := res.Scenario.RateAdapt.Rates[0].Mult, 0.0
	for _, r := range res.Scenario.RateAdapt.Rates {
		hi = r.Mult
	}
	if m := res.MeanRateMult(); m < lo || m > hi {
		t.Fatalf("population mean mult %g outside table [%g, %g]", m, lo, hi)
	}
	if f := res.AdaptLagFraction(); f < 0 || f > 1 {
		t.Fatalf("lag fraction %g outside [0, 1]", f)
	}
}

// A rate-adaptation run must stay a pure function of (scenario, seed).
func TestRateAdaptDeterministic(t *testing.T) {
	a, err := Run(adaptShowcase(RateAdaptFD, 0.95), 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(adaptShowcase(RateAdaptFD, 0.95), 11)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same scenario + seed must reproduce identically under rate adaptation")
	}
}
