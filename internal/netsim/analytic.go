package netsim

// Analytic fast path (Scenario.Analytic): instead of simulating a MAC
// exchange chunk by chunk, a singleton slot charges the closed-form
// EXPECTED airtime of the exchange and draws the frame's fate once as a
// Bernoulli with the closed-form delivery probability. The draw rides
// the tag's ordinary loss stream, so analytic runs keep the engine's
// determinism contract (byte-identical at any worker count); they are
// NOT byte-identical to exact runs — the exact engine remains the
// reference, and the analytic path is validated against it within a
// pinned tolerance on aggregate delivery and throughput (see
// analytic_test.go). The win is per-frame cost independent of frame
// length and loss rate, which is what makes million-tag parameter
// sweeps interactive.
//
// Fidelity contract (pinned by the tolerance test): delivery rate
// tracks the exact engine tightly (the closed forms for delivery are
// essentially exact under the engine's iid chunk loss). Airtime — and
// therefore throughput — is an OPTIMISTIC bound: the expected-value
// model omits the full-duplex abort/backoff idle time, the false-ACK
// resync cost, and (under rate adaptation) the adapter's warm-up below
// the oracle rate. Use analytic mode for coverage/delivery questions
// and capacity upper bounds, the exact engine for airtime-sensitive
// comparisons.
//
// Closed forms, per protocol, with p the chunk-loss probability, n the
// chunks per frame, and A the attempt budget:
//
//   - stop-and-wait retransmits whole frames: an attempt succeeds with
//     qf = (1-p)^n, the expected attempt count of the truncated
//     geometric is (1-(1-qf)^A)/qf, and every attempt pays the full
//     frame plus the ACK turnaround.
//   - block-ACK retransmits only lost chunks: the expected pending-chunk
//     count after k attempts is n*p^k, attempt k happens with
//     probability 1-(1-p^(k-1))^n and pays header + ACK plus the
//     pending chunks' airtime. A chunk survives A attempts undelivered
//     with probability p^A, so the frame delivers with (1-p^A)^n.
//   - full-duplex also retransmits per chunk, pays no ACK, and a chunk
//     leaves the queue only when delivered AND its feedback decoded
//     clean: the pending recursion uses 1-(1-p)(1-fbBER). Delivery
//     itself only needs the chunk through once, so the delivery
//     probability matches block-ACK's.
//
// Under rate adaptation the analytic model is the clairvoyant
// mean-channel bound: chunks go out at the oracle rate for the tag's
// current MEAN SNR (small-scale fading averaged out), chunk loss uses
// that rate's cliff at the mean SNR, and chunk airtime scales by the
// rate multiplier exactly as the exact engine's frameExtraBytes
// correction does. Adaptation counters accrue their expected values so
// the rate-mix report stays meaningful.

import (
	"math"

	"repro/internal/mac"
	"repro/internal/rateadapt"
)

// pendEps stops the expected-pending recursions once the remaining mass
// is far below one chunk; later attempts would add zero after rounding.
const pendEps = 1e-9

// analyticFrame replaces runFrame (plus the fade airtime correction) in
// analytic mode. Stream discipline matches the exact path: exactly one
// draw from the tag's loss stream per singleton slot.
func (e *engine) analyticFrame(w *netWorker, i int32) mac.Result {
	t := &e.tags
	p := t.lossP[i]
	chunkAirF := float64(e.chunkAir)
	mult := 1.0
	ri := 0
	f := e.fade
	if f != nil {
		ri = f.oracleRate(f.meanSNR[i])
		r := f.rates[ri]
		mult = r.Mult
		p = rateadapt.ChunkLossProb(r, f.meanSNR[i])
		chunkAirF /= mult
	}
	if flt := e.flt; flt != nil {
		// Interference bursts compose into the chunk loss exactly as on
		// the exact path.
		if q := flt.cellLoss[t.reader[i]]; q > 0 {
			p += (1 - p) * q
		}
	}
	headerF := float64(e.params.HeaderAirBytes())
	ackF := float64(e.params.AckAirBytes())
	n := e.params.NumChunks()
	A := e.params.MaxAttempts

	var air, chunkTx, pDeliver, attempts float64
	switch e.sc.Protocol {
	case "stop-and-wait":
		qf := math.Pow(1-p, float64(n))
		pDeliver = 1 - math.Pow(1-qf, float64(A))
		eAtt := float64(A)
		if qf > 0 {
			eAtt = pDeliver / qf
		}
		air = eAtt * (headerF + float64(n)*chunkAirF + ackF)
		chunkTx = eAtt * float64(n)
		attempts = eAtt
	case "block-ack":
		pend := float64(n)
		failK := 1.0 // p^(k-1): P(one chunk still pending before attempt k)
		for k := 0; k < A && pend > pendEps; k++ {
			pAtt := 1 - math.Pow(1-failK, float64(n))
			air += pAtt*(headerF+ackF) + pend*chunkAirF
			chunkTx += pend
			attempts += pAtt
			pend *= p
			failK *= p
		}
		pDeliver = math.Pow(1-math.Pow(p, float64(A)), float64(n))
	default: // full-duplex
		fail := 1 - (1-p)*(1-t.fbBER[i])
		pend := float64(n)
		failK := 1.0
		for k := 0; k < A && pend > pendEps; k++ {
			pAtt := 1 - math.Pow(1-failK, float64(n))
			air += pAtt*headerF + pend*chunkAirF
			chunkTx += pend
			attempts += pAtt
			pend *= fail
			failK *= fail
		}
		pDeliver = math.Pow(1-math.Pow(p, float64(A)), float64(n))
	}

	w.lossSrc.SetState(t.lossHi[i], t.lossLo[i])
	delivered := w.lossSrc.Bool(pDeliver)
	t.lossHi[i], t.lossLo[i] = w.lossSrc.State()

	if f != nil {
		ci := int64(math.Round(chunkTx))
		f.chunks[i] += ci
		f.rateChunks[int(i)*f.nr+ri] += ci
		f.rateLost[int(i)*f.nr+ri] += int64(math.Round(chunkTx * p))
		f.invMult[i] += chunkTx / mult
		if int32(ri) != f.prevRate[i] {
			f.switches[i]++
			f.prevRate[i] = int32(ri)
		}
	}

	airB := int64(math.Round(air))
	mr := mac.Result{FramesSent: 1, ElapsedBytes: airB, AirtimeBytes: airB,
		Attempts: int64(math.Round(attempts))}
	if delivered {
		mr.FramesDelivered = 1
		mr.GoodputBytes = int64(e.params.PayloadBytes)
	}
	return mr
}
