package netsim

import (
	"fmt"
	"math"
)

// Reader placement names: how a multi-reader deployment arranges its
// readers around the origin. A single reader always sits at the origin
// regardless of placement.
const (
	// ReaderGrid lays readers on a centred square lattice with pitch
	// SpacingM — the cell pattern of a hotspot-localization deployment.
	ReaderGrid = "grid"
	// ReaderLine spaces readers along the x axis, SpacingM apart —
	// readers down a warehouse aisle.
	ReaderLine = "line"
	// ReaderRing places readers on a circle of radius SpacingM.
	ReaderRing = "ring"
)

// Reader scheduling names: how concurrently active readers share the
// spectrum.
const (
	// SchedulingIndependent runs every reader every round on its own
	// channel. Channel isolation is imperfect: each tag's noise floor
	// gains the neighbouring carriers attenuated by IsolationdB, so
	// dense reader deployments trade parallelism against interference.
	SchedulingIndependent = "independent"
	// SchedulingTDM activates one reader per epoch, round-robin. Tags
	// of inactive readers hold their traffic (and harvest only the
	// distant active carrier), but nobody interferes with anybody.
	SchedulingTDM = "tdm"
)

// ReaderSpec configures the reader population of a Scenario. The zero
// value means one reader at the origin — exactly the single-reader
// engine of earlier revisions.
type ReaderSpec struct {
	// Count is the number of readers (default 1).
	Count int `json:"count"`
	// Placement is ReaderGrid (default), ReaderLine or ReaderRing.
	Placement string `json:"placement"`
	// SpacingM is the inter-reader pitch / ring radius in metres
	// (default RadiusM).
	SpacingM float64 `json:"spacing_m"`
	// Scheduling is SchedulingIndependent (default) or SchedulingTDM.
	Scheduling string `json:"scheduling"`
	// IsolationdB is the inter-channel rejection under independent
	// scheduling (default 20 dB): neighbouring carriers reach a tag's
	// noise floor attenuated by this much. Zero selects the default;
	// any negative value requests genuine 0 dB isolation (co-channel
	// readers, full leakage) — negative rejection is not physical, so
	// the sign is free to act as the explicit-zero sentinel, mirroring
	// ReqSNRZero.
	IsolationdB float64 `json:"isolation_db"`
	// Policy selects how each reader admits contenders into its window:
	// PolicyAloha (default) lets every backlogged tag draw a contention
	// slot; PolicyFIFO, PolicyPropFair and PolicyDeadline switch to
	// reader-driven polling — up to ContentionWindow collision-free
	// grants per round, ordered by the policy metric (see
	// congestion.go).
	Policy string `json:"policy,omitempty"`
	// DeadlineRounds is PolicyDeadline's per-frame service deadline
	// (default 16 rounds): a head-of-line frame older than this is
	// dropped instead of served.
	DeadlineRounds int `json:"deadline_rounds,omitempty"`
}

func (r *ReaderSpec) applyDefaults(radiusM float64) {
	if r.Count <= 0 {
		r.Count = 1
	}
	if r.Placement == "" {
		r.Placement = ReaderGrid
	}
	if r.SpacingM <= 0 {
		r.SpacingM = radiusM
	}
	if r.Scheduling == "" {
		r.Scheduling = SchedulingIndependent
	}
	switch {
	case r.IsolationdB < 0:
		r.IsolationdB = 0 // explicit co-channel request
	case r.IsolationdB == 0:
		r.IsolationdB = 20
	}
	if r.Policy == "" {
		r.Policy = PolicyAloha
	}
	if r.Policy == PolicyDeadline && r.DeadlineRounds == 0 {
		r.DeadlineRounds = 16
	}
}

func (r ReaderSpec) validate() error {
	switch r.Placement {
	case ReaderGrid, ReaderLine, ReaderRing:
	default:
		return fmt.Errorf("netsim: unknown reader placement %q (want %s, %s or %s)",
			r.Placement, ReaderGrid, ReaderLine, ReaderRing)
	}
	switch r.Scheduling {
	case SchedulingIndependent, SchedulingTDM:
	default:
		return fmt.Errorf("netsim: unknown reader scheduling %q (want %s or %s)",
			r.Scheduling, SchedulingIndependent, SchedulingTDM)
	}
	if r.Count > 64 {
		return fmt.Errorf("netsim: reader count %d unreasonably large", r.Count)
	}
	if math.IsNaN(r.SpacingM) || r.SpacingM < 1e-3 || r.SpacingM > 1e4 {
		return fmt.Errorf("netsim: reader spacing %g m outside [1e-3, 1e4]", r.SpacingM)
	}
	if r.IsolationdB > 200 {
		return fmt.Errorf("netsim: channel isolation %g dB unreasonably large", r.IsolationdB)
	}
	switch r.Policy {
	case PolicyAloha, PolicyFIFO, PolicyPropFair, PolicyDeadline:
	default:
		return fmt.Errorf("netsim: unknown reader policy %q (want %s, %s, %s or %s)",
			r.Policy, PolicyAloha, PolicyFIFO, PolicyPropFair, PolicyDeadline)
	}
	if r.DeadlineRounds != 0 && r.Policy != PolicyDeadline {
		return fmt.Errorf("netsim: deadline_rounds set but policy is %q (want %s)",
			r.Policy, PolicyDeadline)
	}
	if r.DeadlineRounds < 0 {
		return fmt.Errorf("netsim: deadline_rounds %d negative", r.DeadlineRounds)
	}
	return nil
}

// PlaceReaders returns the deterministic reader positions for a spec
// (after defaults). Placement involves no randomness, so reader geometry
// is a pure function of the scenario.
func PlaceReaders(spec ReaderSpec) []Position {
	n := spec.Count
	if n <= 0 {
		n = 1
	}
	if n == 1 {
		return []Position{{}}
	}
	out := make([]Position, 0, n)
	switch spec.Placement {
	case ReaderLine:
		for i := 0; i < n; i++ {
			out = append(out, Position{X: (float64(i) - float64(n-1)/2) * spec.SpacingM})
		}
	case ReaderRing:
		for i := 0; i < n; i++ {
			th := 2 * math.Pi * float64(i) / float64(n)
			out = append(out, Position{X: spec.SpacingM * math.Cos(th), Y: spec.SpacingM * math.Sin(th)})
		}
	default: // ReaderGrid
		side := int(math.Ceil(math.Sqrt(float64(n))))
		half := float64(side-1) / 2
		for i := 0; i < side && len(out) < n; i++ {
			for j := 0; j < side && len(out) < n; j++ {
				out = append(out, Position{
					X: (float64(j) - half) * spec.SpacingM,
					Y: (float64(i) - half) * spec.SpacingM,
				})
			}
		}
	}
	return out
}

// ReaderStats reports one reader's outcome inside a NetResult.
type ReaderStats struct {
	// ID indexes the reader in placement order.
	ID int
	// X, Y locate the reader.
	X, Y float64
	// AssociatedTags counts the tags served by this reader at the final
	// epoch (association follows the strongest carrier, so mobile tags
	// can hand over between epochs).
	AssociatedTags int
	// FramesDelivered counts frames this reader carried.
	FramesDelivered int
	// SingletonSlots / CollisionSlots classify this reader's non-idle
	// contention slots.
	SingletonSlots, CollisionSlots int64
	// QueueDepth is the residual backlog (queued plus parked-for-retx
	// frames) of this reader's associated tags when the run ended — a
	// hotspot indicator: nonzero depth under closed-loop traffic means
	// the cell never drained.
	QueueDepth int64
	// SaturationOnset is the 1-based round at which this reader's cell
	// first saturated (non-idle slot occupancy ≥ 95%); 0 if it never
	// did. RecoveryRound is the first round AFTER onset at which
	// occupancy fell back to ≤ 50%; 0 if it never recovered. The
	// hysteresis gap keeps boundary flapping out of both counters.
	SaturationOnset, RecoveryRound int
	// OutageRounds / InterferenceRounds count the rounds this reader
	// spent down or under an interference burst (fault injection).
	OutageRounds, InterferenceRounds int
	// Timeouts counts congestion RTO expiries charged to this reader's
	// associated tags (closed-loop runs with congestion enabled).
	Timeouts int64
}
