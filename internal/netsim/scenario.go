package netsim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

// Scenario declares one multi-tag deployment as data: geometry, RF
// parameters, traffic, MAC dimensions, and the per-tag energy budget.
// Zero fields take defaults (see ApplyDefaults), so a JSON file only
// needs the knobs it cares about. The run seed is NOT part of the
// scenario — it is supplied per run, so one scenario replays under many
// seeds.
type Scenario struct {
	// Name labels the scenario in tables and logs.
	Name string `json:"name"` //fdlint:novalidate free-form label; any string is a valid name

	// Deployment geometry.

	// Tags is the tag population size (default 8).
	Tags int `json:"tags"`
	// Topology is one of TopologyGrid, TopologyUniformDisc,
	// TopologyClustered, TopologyCells (default grid).
	Topology string `json:"topology"`
	// RadiusM is the deployment radius/half-extent in metres (default 4).
	RadiusM float64 `json:"radius_m"`
	// Clusters is the cluster count for the clustered topology
	// (default 3).
	Clusters int `json:"clusters"`
	// ClusterSpreadM is the Gaussian spread around each cluster centre
	// — or around each reader for TopologyCells (default RadiusM/8).
	ClusterSpreadM float64 `json:"cluster_spread_m"`

	// Readers configures the reader population: count, placement, and
	// whether concurrently active readers share the spectrum by TDM or
	// on imperfectly isolated independent channels. The zero value is
	// one reader at the origin. Tags associate with the strongest
	// carrier, re-evaluated each epoch under mobility.
	Readers ReaderSpec `json:"readers"`

	// Mobility configures optional tag motion (seeded random-waypoint
	// drift). The zero value is a static deployment.
	Mobility MobilitySpec `json:"mobility"`

	// RateAdapt configures optional closed-loop per-tag rate adaptation
	// over a time-varying fading channel (fixed / arf frame probing /
	// fd per-chunk). The zero value keeps the static geometry-derived
	// chunk loss — byte-for-byte the engine's pre-adaptation behaviour.
	RateAdapt RateAdaptSpec `json:"rate_adapt"`

	// Congestion configures optional per-tag closed-loop congestion
	// control: EWMA RTT with Jacobson RTO, cubic window growth, and a
	// bounded retransmission queue with exponential backoff. The zero
	// value keeps the engine's always-eligible behaviour byte-for-byte.
	Congestion CongestionSpec `json:"congestion"`

	// Faults configures the deterministic fault-injection layer: reader
	// outages with recovery, interference bursts, and tag churn — either
	// as explicit scheduled events or seed-derived stochastic hazards.
	// The zero value injects nothing and leaves existing runs
	// byte-identical.
	Faults FaultSpec `json:"faults"`

	// RF plant.

	// FreqHz is the carrier frequency (default 915 MHz).
	FreqHz float64 `json:"freq_hz"`
	// PathLossExp is the log-distance path loss exponent (default 2.5,
	// matching the calibrated link experiments).
	PathLossExp float64 `json:"path_loss_exp"`
	// TxPowerW is the reader transmit power (default 0.1 W = 20 dBm).
	TxPowerW float64 `json:"tx_power_w"`
	// NoiseW is the receiver noise power (default 1e-9 W).
	NoiseW float64 `json:"noise_w"`
	// Rho is the tag reflection coefficient (default 0.3).
	Rho float64 `json:"rho"`
	// ReqSNRdB is the forward SNR at which chunk loss is 50% (logistic
	// cliff). Zero selects the default of DefaultReqSNRdB (10 dB, the
	// 1x rate of the adaptation rate table); to configure a genuine
	// 0 dB cliff set any value at or below ReqSNRZero (-999), which
	// ApplyDefaults maps to exactly 0. Other values must pass the
	// Validate bounds ([-30, 60] dB).
	ReqSNRdB float64 `json:"req_snr_db"`
	// FeedbackSamplesPerBit sizes the feedback averaging window used to
	// derive each tag's feedback BER from its geometry (default 100).
	FeedbackSamplesPerBit int `json:"feedback_samples_per_bit"`

	// Traffic and contention.

	// FramesPerTag preloads each tag's queue (default 4) when
	// OfferedLoad is zero.
	FramesPerTag int `json:"frames_per_tag"`
	// OfferedLoad, when positive, switches to open-loop traffic: mean
	// new frames per tag per round (Poisson arrivals).
	OfferedLoad float64 `json:"offered_load"`
	// MaxRounds bounds the simulation (default 64).
	MaxRounds int `json:"max_rounds"`
	// ContentionWindow is the per-reader slot count of each inventory
	// round (default 2 * ceil(Tags / Readers.Count), the
	// framed-slotted-ALOHA optimum scale for the tags one reader
	// serves).
	ContentionWindow int `json:"contention_window"`
	// QueueCap bounds each tag's frame queue under open-loop traffic
	// (default 16); arrivals beyond it are dropped and counted. In
	// closed-loop runs it is raised to at least FramesPerTag so the
	// preload fits and undelivered frames re-queue instead of being
	// spuriously dropped.
	QueueCap int `json:"queue_cap"`

	// Analytic, when true, replaces the per-chunk MAC simulation of
	// singleton slots with the closed-form expected exchange airtime
	// and one delivery draw per frame (see analytic.go). Still a pure
	// function of (Scenario, seed) at any worker count, but not
	// byte-identical to the exact engine — it is validated against it
	// within a pinned tolerance. Contention, energy and mobility remain
	// fully simulated.
	Analytic bool `json:"analytic"` //fdlint:novalidate boolean mode switch; both values are valid

	// MAC dimensions (shared by every tag).

	// Protocol is "full-duplex" (default), "stop-and-wait" or
	// "block-ack".
	Protocol string `json:"protocol"`
	// PayloadBytes per frame (default 256).
	PayloadBytes int `json:"payload_bytes"`
	// ChunkBytes per chunk (default 32).
	ChunkBytes int `json:"chunk_bytes"`
	// AbortThreshold is the consecutive-NACK early-termination trigger
	// (default 2).
	AbortThreshold int `json:"abort_threshold"`
	// BackoffChunks after an early abort (default 8).
	BackoffChunks int `json:"backoff_chunks"`
	// MaxAttempts bounds retransmission rounds per frame (default 8 —
	// tighter than the point-to-point default because a congested cell
	// re-queues instead of retrying forever).
	MaxAttempts int `json:"max_attempts"`

	// Energy budget (per tag).

	// HarvesterEff is the RF-to-DC efficiency (default 0.3).
	HarvesterEff float64 `json:"harvester_eff"`
	// HarvesterFloorW is the rectifier sensitivity (default 0.1 µW).
	HarvesterFloorW float64 `json:"harvester_floor_w"`
	// CapacitanceF is the storage capacitor (default 4.7 µF — a small
	// tag-scale store, so lifetime genuinely depends on load).
	CapacitanceF float64 `json:"capacitance_f"`
	// IdleCircuitW is the consumption while listening (default 0.2 µW).
	IdleCircuitW float64 `json:"idle_circuit_w"`
	// TxEnergyJ is the extra energy one frame transmission costs the tag
	// (logic + modulator switching; default 0.5 µJ) — the draw that
	// makes lifetime depend on offered load.
	TxEnergyJ float64 `json:"tx_energy_j"`
	// BitRateBps converts airtime bytes to seconds for energy accounting
	// (default 1 Mbps).
	BitRateBps float64 `json:"bit_rate_bps"`
	// StartVoltageV initialises each tag's capacitor (default 2.4 V:
	// charged, but with finite headroom above the 1.8 V brown-out).
	StartVoltageV float64 `json:"start_voltage_v"`
}

// Chunk-loss cliff sentinels (see Scenario.ReqSNRdB).
const (
	// DefaultReqSNRdB is the cliff used when ReqSNRdB is left zero.
	DefaultReqSNRdB = 10
	// ReqSNRZero requests a genuine 0 dB cliff: the Go zero value has
	// to keep meaning "default" (every existing literal and JSON file
	// relies on it), so an explicit out-of-band sentinel — any value
	// at or below -999 — stands in for exact zero.
	ReqSNRZero = -1000
)

// ApplyDefaults fills zero fields in place with the documented defaults.
func (s *Scenario) ApplyDefaults() {
	if s.Name == "" {
		s.Name = "scenario"
	}
	if s.Tags <= 0 {
		s.Tags = 8
	}
	if s.Topology == "" {
		s.Topology = TopologyGrid
	}
	if s.RadiusM <= 0 {
		s.RadiusM = 4
	}
	if s.Clusters <= 0 {
		s.Clusters = 3
	}
	if s.ClusterSpreadM <= 0 {
		s.ClusterSpreadM = s.RadiusM / 8
	}
	s.Readers.applyDefaults(s.RadiusM)
	s.Mobility.applyDefaults(s.RadiusM)
	s.RateAdapt.applyDefaults()
	s.Congestion.applyDefaults()
	s.Faults.applyDefaults()
	if s.FreqHz <= 0 {
		s.FreqHz = 915e6
	}
	if s.PathLossExp <= 0 {
		s.PathLossExp = 2.5
	}
	if s.TxPowerW <= 0 {
		s.TxPowerW = 0.1
	}
	if s.NoiseW <= 0 {
		s.NoiseW = 1e-9
	}
	if s.Rho <= 0 {
		s.Rho = 0.3
	}
	switch {
	case s.ReqSNRdB <= -999:
		s.ReqSNRdB = 0 // the ReqSNRZero sentinel: a genuine 0 dB cliff
	case s.ReqSNRdB == 0:
		s.ReqSNRdB = DefaultReqSNRdB
	}
	if s.FeedbackSamplesPerBit <= 0 {
		s.FeedbackSamplesPerBit = 100
	}
	if s.FramesPerTag <= 0 {
		s.FramesPerTag = 4
	}
	if s.MaxRounds <= 0 {
		s.MaxRounds = 64
	}
	if s.ContentionWindow <= 0 {
		perReader := (s.Tags + s.Readers.Count - 1) / s.Readers.Count
		s.ContentionWindow = 2 * perReader
	}
	if s.QueueCap <= 0 {
		s.QueueCap = 16
	}
	// Closed-loop preload must fit the queue: with QueueCap below
	// FramesPerTag, frames undelivered after MaxAttempts would find the
	// queue "full" at re-queue time and be dropped instead of retried.
	if s.OfferedLoad == 0 && s.QueueCap < s.FramesPerTag {
		s.QueueCap = s.FramesPerTag
	}
	if s.Protocol == "" {
		s.Protocol = "full-duplex"
	}
	if s.PayloadBytes <= 0 {
		s.PayloadBytes = 256
	}
	if s.ChunkBytes <= 0 {
		s.ChunkBytes = 32
	}
	if s.AbortThreshold == 0 {
		s.AbortThreshold = 2
	}
	if s.BackoffChunks <= 0 {
		s.BackoffChunks = 8
	}
	if s.MaxAttempts <= 0 {
		s.MaxAttempts = 8
	}
	if s.HarvesterEff <= 0 {
		s.HarvesterEff = 0.3
	}
	if s.HarvesterFloorW <= 0 {
		s.HarvesterFloorW = 1e-7
	}
	if s.CapacitanceF <= 0 {
		s.CapacitanceF = 4.7e-6
	}
	if s.IdleCircuitW <= 0 {
		s.IdleCircuitW = 2e-7
	}
	if s.TxEnergyJ <= 0 {
		s.TxEnergyJ = 5e-7
	}
	if s.BitRateBps <= 0 {
		s.BitRateBps = 1e6
	}
	if s.StartVoltageV <= 0 {
		s.StartVoltageV = 2.4
	}
}

// Validate checks a scenario after defaults; it reports the first
// problem found.
func (s Scenario) Validate() error {
	switch s.Topology {
	case TopologyGrid, TopologyUniformDisc, TopologyClustered, TopologyCells:
	default:
		return fmt.Errorf("netsim: unknown topology %q", s.Topology)
	}
	switch s.Protocol {
	case "full-duplex", "stop-and-wait", "block-ack":
	default:
		return fmt.Errorf("netsim: unknown protocol %q (want full-duplex, stop-and-wait or block-ack)", s.Protocol)
	}
	if err := s.Readers.validate(); err != nil {
		return err
	}
	if err := s.Mobility.validate(); err != nil {
		return err
	}
	if err := s.RateAdapt.validate(); err != nil {
		return err
	}
	if err := s.Congestion.validate(); err != nil {
		return err
	}
	if err := s.Faults.validate(s.Readers.Count); err != nil {
		return err
	}
	if s.Rho < 0 || s.Rho > 1 {
		return fmt.Errorf("netsim: rho %g outside [0, 1]", s.Rho)
	}
	if s.Tags > 1<<22 {
		return fmt.Errorf("netsim: tag count %d unreasonably large", s.Tags)
	}
	if s.Tags*s.Readers.Count > 1<<23 {
		return fmt.Errorf("netsim: %d tags x %d readers needs %d link-gain entries (cap %d)",
			s.Tags, s.Readers.Count, s.Tags*s.Readers.Count, 1<<23)
	}
	if s.OfferedLoad < 0 {
		return fmt.Errorf("netsim: offered load %g must be non-negative", s.OfferedLoad)
	}
	if s.AbortThreshold < 0 {
		return fmt.Errorf("netsim: abort threshold %d must be non-negative", s.AbortThreshold)
	}
	if s.ReqSNRdB < -30 || s.ReqSNRdB > 60 {
		return fmt.Errorf("netsim: required SNR cliff %g dB outside [-30, 60] (0 takes the default, <= -999 requests a genuine 0 dB cliff)", s.ReqSNRdB)
	}
	if s.PathLossExp < 1 || s.PathLossExp > 8 {
		return fmt.Errorf("netsim: path loss exponent %g outside [1, 8]", s.PathLossExp)
	}
	if s.FeedbackSamplesPerBit < 2 || s.FeedbackSamplesPerBit > 1<<20 {
		return fmt.Errorf("netsim: feedback samples per bit %d outside [2, %d]", s.FeedbackSamplesPerBit, 1<<20)
	}
	// Physical knobs: defaults (ApplyDefaults runs first) land every one
	// of these in range, so a violation here is an explicit config value.
	// NaN fails every comparison, so it needs its own rejection; ±Inf
	// falls out of the bounds.
	for _, p := range []struct {
		name   string
		v      float64
		lo, hi float64
	}{
		{"radius_m", s.RadiusM, 1e-3, 1e4},
		{"cluster_spread_m", s.ClusterSpreadM, 1e-6, 1e4},
		{"freq_hz", s.FreqHz, 1e6, 1e11},
		{"tx_power_w", s.TxPowerW, 1e-6, 100},
		{"noise_w", s.NoiseW, 1e-21, 1e-3},
		{"harvester_eff", s.HarvesterEff, 1e-4, 1},
		{"harvester_floor_w", s.HarvesterFloorW, 1e-15, 1e-3},
		{"capacitance_f", s.CapacitanceF, 1e-12, 1},
		{"idle_circuit_w", s.IdleCircuitW, 1e-15, 1e-3},
		{"tx_energy_j", s.TxEnergyJ, 1e-15, 1e-3},
		{"bit_rate_bps", s.BitRateBps, 1e3, 1e9},
		{"start_voltage_v", s.StartVoltageV, 0.1, 100},
	} {
		if math.IsNaN(p.v) || p.v < p.lo || p.v > p.hi {
			return fmt.Errorf("netsim: %s %g outside [%g, %g]", p.name, p.v, p.lo, p.hi)
		}
	}
	// Dimension knobs: post-defaults they are positive, so the checks
	// bound runaway configs (and the engine's slice sizing) rather than
	// re-deriving defaults.
	for _, p := range []struct {
		name   string
		v      int
		lo, hi int
	}{
		{"clusters", s.Clusters, 1, 1 << 16},
		{"frames_per_tag", s.FramesPerTag, 1, 1 << 16},
		{"max_rounds", s.MaxRounds, 1, 1 << 20},
		{"contention_window", s.ContentionWindow, 1, 1 << 20},
		{"queue_cap", s.QueueCap, 1, 1 << 20},
		{"payload_bytes", s.PayloadBytes, 1, 1 << 20},
		{"chunk_bytes", s.ChunkBytes, 1, 1 << 16},
		{"backoff_chunks", s.BackoffChunks, 1, 1 << 16},
		{"max_attempts", s.MaxAttempts, 1, 1 << 16},
	} {
		if p.v < p.lo || p.v > p.hi {
			return fmt.Errorf("netsim: %s %d outside [%d, %d]", p.name, p.v, p.lo, p.hi)
		}
	}
	return nil
}

// presets are the built-in named scenarios. Keep in sync with the README
// scenario-engine section.
var presets = map[string]Scenario{
	"lab-bench": {
		Name: "lab-bench", Tags: 4, Topology: TopologyGrid, RadiusM: 2,
	},
	"warehouse": {
		Name: "warehouse", Tags: 32, Topology: TopologyClustered, RadiusM: 8,
		Clusters: 4, FramesPerTag: 8,
	},
	"retail-shelf": {
		Name: "retail-shelf", Tags: 16, Topology: TopologyGrid, RadiusM: 3,
		OfferedLoad: 0.5, MaxRounds: 96,
	},
	"sparse-field": {
		Name: "sparse-field", Tags: 12, Topology: TopologyUniformDisc, RadiusM: 12,
		TxPowerW: 0.5, FramesPerTag: 2, MaxRounds: 128,
	},
	"mall-cells": {
		Name: "mall-cells", Tags: 64, Topology: TopologyCells, RadiusM: 14,
		ClusterSpreadM: 3, FramesPerTag: 6, MaxRounds: 96,
		Readers: ReaderSpec{Count: 4, Placement: ReaderGrid, SpacingM: 12},
	},
	"mobile-fleet": {
		Name: "mobile-fleet", Tags: 24, Topology: TopologyUniformDisc, RadiusM: 30,
		TxPowerW: 0.25, CapacitanceF: 10e-6, OfferedLoad: 0.3, MaxRounds: 160,
		Mobility: MobilitySpec{Model: MobilityWaypoint, StepM: 1.5, EpochRounds: 4},
	},
	// fading-aisle is the rate-adaptation showcase: a strong carrier
	// over a raised noise floor puts the population mid-rate-table
	// (edge tags ~21 dB), the long feedback averaging window keeps the
	// backscatter feedback decodable across the cell, and the large
	// capacitor keeps slow-rate warm-up from browning tags out.
	"fading-aisle": {
		Name: "fading-aisle", Tags: 16, Topology: TopologyUniformDisc, RadiusM: 12,
		TxPowerW: 1.0, NoiseW: 1e-8, Rho: 0.9, FeedbackSamplesPerBit: 131072,
		CapacitanceF: 47e-6, FramesPerTag: 6, MaxRounds: 96,
		RateAdapt: RateAdaptSpec{Adapter: RateAdaptFD, FadeRho: 0.95},
	},
	// congested-dock is the congestion-control showcase: a loading dock
	// where 48 clustered tags offer more traffic than two aisle readers
	// can carry (offered load 1.2 frames/tag/round), so queues build,
	// RTOs fire and cubic windows breathe. Proportional-fair polling
	// keeps the grant list from starving far tags while the cell rides
	// the collapse knee.
	"congested-dock": {
		Name: "congested-dock", Tags: 48, Topology: TopologyClustered, RadiusM: 10,
		Clusters: 4, OfferedLoad: 1.2, MaxRounds: 160, QueueCap: 32,
		CapacitanceF: 47e-6,
		Readers:      ReaderSpec{Count: 2, Placement: ReaderLine, SpacingM: 10, Policy: PolicyPropFair},
		Congestion:   CongestionSpec{Controller: CongestionCubic},
	},
	// outage-retail is the fault-injection showcase: a four-reader
	// retail grid under moderate load where reader 1 goes dark for 40
	// rounds mid-run (its tags re-associate to the strongest surviving
	// carrier, then return), reader 2 later suffers an interference
	// burst, and light churn keeps flushing the occasional queue.
	// Congestion control turns the outage into visible RTO/backoff
	// dynamics instead of silent stalls.
	"outage-retail": {
		Name: "outage-retail", Tags: 32, Topology: TopologyCells, RadiusM: 12,
		ClusterSpreadM: 2.5, OfferedLoad: 0.4, MaxRounds: 160,
		CapacitanceF: 47e-6,
		Readers:      ReaderSpec{Count: 4, Placement: ReaderGrid, SpacingM: 10},
		Congestion:   CongestionSpec{Controller: CongestionCubic},
		Faults: FaultSpec{
			Events: []FaultEvent{
				{Round: 40, Kind: FaultReaderOutage, Reader: 1, Rounds: 40},
				{Round: 96, Kind: FaultInterference, Reader: 2, Rounds: 24, LossProb: 0.6},
			},
			ChurnRate: 0.002,
		},
	},
	// million is the scale showcase the sharded SoA engine exists for:
	// a million mobile tags under an 8-reader grid with full-duplex
	// rate adaptation, closed-loop census traffic (one short frame per
	// tag — 64-byte payloads, the inventory regime). RF follows the
	// fading-aisle calibration (strong carrier over a raised noise
	// floor keeps the population mid-rate-table and the backscatter
	// feedback decodable) at the 4 W EIRP an RFID-class reader runs,
	// which keeps edge tags harvest-positive across the quarter-hour of
	// simulated time one giant contention window per round implies.
	"million": {
		Name: "million", Tags: 1 << 20, Topology: TopologyUniformDisc, RadiusM: 48,
		Readers:  ReaderSpec{Count: 8, Placement: ReaderGrid, SpacingM: 32},
		Mobility: MobilitySpec{Model: MobilityWaypoint, StepM: 2, EpochRounds: 4},
		RateAdapt: RateAdaptSpec{
			Adapter: RateAdaptFD, FadeRho: 0.9,
		},
		TxPowerW: 4.0, NoiseW: 1e-8, Rho: 0.9, FeedbackSamplesPerBit: 131072,
		CapacitanceF: 47e-6, FramesPerTag: 1, MaxRounds: 12,
		PayloadBytes: 64,
	},
}

// Preset returns a copy of the named built-in scenario.
func Preset(name string) (Scenario, error) {
	s, ok := presets[name]
	if !ok {
		return Scenario{}, fmt.Errorf("netsim: unknown preset %q (have %v)", name, PresetNames())
	}
	return s, nil
}

// PresetNames lists the built-in scenarios, sorted.
func PresetNames() []string {
	out := make([]string, 0, len(presets))
	for n := range presets {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ParseScenario decodes a scenario from JSON, rejecting unknown fields
// so typos in config files fail loudly.
func ParseScenario(data []byte) (Scenario, error) {
	var s Scenario
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("netsim: bad scenario JSON: %w", err)
	}
	return s, nil
}

// LoadScenario reads a scenario JSON file.
func LoadScenario(path string) (Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, fmt.Errorf("netsim: %w", err)
	}
	return ParseScenario(data)
}
