package netsim

// Deterministic fault injection: a scenario can declare reader outages
// with recovery (tags re-associate to the strongest surviving
// carrier), interference bursts that spike a cell's chunk-loss
// probability, and tag churn (tags leave with their backlog and
// return later) — either as explicit scheduled events or as stochastic
// hazards drawn from a dedicated stream.
//
// The fault stream is hashed off the run seed (the fadeSeed pattern),
// NOT split from the engine's root tree, so enabling faults never
// shifts the streams a fault-free scenario draws. All fault state
// transitions happen serially at the top of each round on the
// dispatching goroutine, before any parallel phase reads them; the
// hazard draws are state-independent (one draw per enabled hazard per
// reader or tag per round, consumed whether or not the event fires),
// so the stream position is a pure function of the round index and
// congestion collapse experiments replay exactly.

import (
	"fmt"

	"repro/internal/simrand"
)

// Fault event kinds for FaultEvent.Kind.
const (
	// FaultReaderOutage takes a reader's carrier down for Rounds
	// rounds: its cell opens no windows, its carrier stops harvesting
	// and interfering, and its tags re-associate to the strongest
	// surviving reader until it recovers.
	FaultReaderOutage = "reader-outage"
	// FaultInterference spikes the chunk-loss probability of every
	// frame a reader's cell carries by LossProb for Rounds rounds.
	FaultInterference = "interference"
)

// FaultEvent is one explicitly scheduled fault.
type FaultEvent struct {
	// Round is the 1-based round the event starts.
	Round int `json:"round"`
	// Kind is FaultReaderOutage or FaultInterference.
	Kind string `json:"kind"`
	// Reader indexes the affected reader in placement order.
	Reader int `json:"reader"`
	// Rounds is the event duration (defaults to the spec's duration
	// for the kind).
	Rounds int `json:"rounds,omitempty"`
	// LossProb is the extra chunk-loss probability an interference
	// burst composes into the cell (defaults to
	// InterferenceLossProb).
	LossProb float64 `json:"loss_prob,omitempty"`
}

// FaultSpec configures the fault-injection layer of a Scenario. The
// zero value disables it entirely — byte-for-byte the fault-free
// engine. Explicit Events fire at fixed rounds; the *Rate knobs add
// stochastic hazards per reader (outage, interference) or per tag
// (churn) per round, drawn from a seed-derived stream so fault
// sequences are reproducible experiments, not flakes.
type FaultSpec struct {
	// Events fire deterministically at their configured rounds.
	Events []FaultEvent `json:"events,omitempty"`
	// OutageRate is the per-reader per-round probability of a carrier
	// outage lasting ~OutageRounds rounds (default duration 8).
	OutageRate   float64 `json:"outage_rate,omitempty"`
	OutageRounds int     `json:"outage_rounds,omitempty"`
	// InterferenceRate is the per-reader per-round probability of an
	// interference burst of ~InterferenceRounds rounds (default 4)
	// spiking chunk loss by InterferenceLossProb (default 0.5).
	InterferenceRate     float64 `json:"interference_rate,omitempty"`
	InterferenceRounds   int     `json:"interference_rounds,omitempty"`
	InterferenceLossProb float64 `json:"interference_loss_prob,omitempty"`
	// ChurnRate is the per-tag per-round probability of the tag
	// leaving for ~ChurnRounds rounds (default 16), taking its queued
	// backlog with it (counted as drops).
	ChurnRate   float64 `json:"churn_rate,omitempty"`
	ChurnRounds int     `json:"churn_rounds,omitempty"`
}

func (f FaultSpec) enabled() bool {
	return len(f.Events) > 0 || f.OutageRate > 0 || f.InterferenceRate > 0 || f.ChurnRate > 0
}

func (f *FaultSpec) applyDefaults() {
	if !f.enabled() {
		return
	}
	if f.OutageRounds <= 0 {
		f.OutageRounds = 8
	}
	if f.InterferenceRounds <= 0 {
		f.InterferenceRounds = 4
	}
	if f.InterferenceLossProb <= 0 {
		f.InterferenceLossProb = 0.5
	}
	if f.ChurnRounds <= 0 {
		f.ChurnRounds = 16
	}
	if len(f.Events) > 0 {
		// Copy before filling per-event defaults: the spec may alias a
		// preset's backing array.
		evs := append([]FaultEvent(nil), f.Events...)
		for i := range evs {
			if evs[i].Rounds <= 0 {
				switch evs[i].Kind {
				case FaultInterference:
					evs[i].Rounds = f.InterferenceRounds
				default:
					evs[i].Rounds = f.OutageRounds
				}
			}
			if evs[i].Kind == FaultInterference && evs[i].LossProb == 0 {
				evs[i].LossProb = f.InterferenceLossProb
			}
		}
		f.Events = evs
	}
}

func (f FaultSpec) validate(readers int) error {
	if !f.enabled() {
		if f.OutageRounds != 0 || f.InterferenceRounds != 0 || f.InterferenceLossProb != 0 || f.ChurnRounds != 0 {
			return fmt.Errorf("netsim: faults fields set without any event or rate (set faults.events or a *_rate)")
		}
		return nil
	}
	for i, ev := range f.Events {
		switch ev.Kind {
		case FaultReaderOutage, FaultInterference:
		default:
			return fmt.Errorf("netsim: fault event %d: unknown kind %q (want %s or %s)",
				i, ev.Kind, FaultReaderOutage, FaultInterference)
		}
		if ev.Round < 1 {
			return fmt.Errorf("netsim: fault event %d: round %d must be >= 1", i, ev.Round)
		}
		if ev.Reader < 0 || ev.Reader >= readers {
			return fmt.Errorf("netsim: fault event %d: reader %d outside [0, %d)", i, ev.Reader, readers)
		}
		if ev.LossProb < 0 || ev.LossProb > 1 {
			return fmt.Errorf("netsim: fault event %d: loss_prob %g outside [0, 1]", i, ev.LossProb)
		}
		if ev.Rounds < 1 || ev.Rounds > 1<<20 {
			return fmt.Errorf("netsim: fault event %d: duration %d rounds outside [1, %d] (zero takes the spec default)",
				i, ev.Rounds, 1<<20)
		}
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"outage_rate", f.OutageRate},
		{"interference_rate", f.InterferenceRate},
		{"interference_loss_prob", f.InterferenceLossProb},
		{"churn_rate", f.ChurnRate},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("netsim: faults.%s %g outside [0, 1]", p.name, p.v)
		}
	}
	return nil
}

// faultSeed derives the fault stream seed as a pure hash of the run
// seed — deliberately outside the engine's split tree, so enabling
// faults never shifts any stream the fault-free engine draws.
func faultSeed(seed uint64) uint64 {
	return simrand.Mix64(simrand.Mix64(seed ^ 0x66616c74)) // "falt"
}

// faultState tracks the live fault condition: per-reader availability
// and interference, per-tag churn dormancy, and the hotspot counters
// that drain into ReaderStats. Mutated only by step (serial, between
// rounds); the parallel phases read it.
type faultState struct {
	spec   FaultSpec
	events []FaultEvent // sorted by round (stable), consumed via evIdx
	evIdx  int

	down      []bool
	downUntil []int32
	// interfUntil == 0 means no burst; cellLoss is the per-round view
	// the frame paths compose into their chunk-loss probability.
	interfUntil []int32
	interfLoss  []float64
	cellLoss    []float64

	dormant []bool
	wakeAt  []int32

	// anyUp gates the association mask: when every reader is down the
	// mask is ignored (association needs a carrier to point at; the
	// cells stay closed regardless).
	anyUp bool

	// Per-reader hotspot counters, drained into ReaderStats.
	outageRounds []int32
	interfRounds []int32
}

func newFaultState(spec FaultSpec, tags, readers int) *faultState {
	f := &faultState{
		spec:         spec,
		down:         make([]bool, readers),
		downUntil:    make([]int32, readers),
		interfUntil:  make([]int32, readers),
		interfLoss:   make([]float64, readers),
		cellLoss:     make([]float64, readers),
		dormant:      make([]bool, tags),
		wakeAt:       make([]int32, tags),
		anyUp:        true,
		outageRounds: make([]int32, readers),
		interfRounds: make([]int32, readers),
	}
	if len(spec.Events) > 0 {
		f.events = append([]FaultEvent(nil), spec.Events...)
		// Insertion sort by round, stable in declaration order — the
		// event list is small and this avoids a sort.Slice closure.
		for i := 1; i < len(f.events); i++ {
			for j := i; j > 0 && f.events[j].Round < f.events[j-1].Round; j-- {
				f.events[j], f.events[j-1] = f.events[j-1], f.events[j]
			}
		}
	}
	return f
}

// step advances the fault condition to the given (0-based) round:
// recoveries expire, explicit events fire, stochastic hazards draw,
// churned tags flush their backlog, and the per-round cell-loss view
// refreshes. Any availability change re-derives links so tags
// re-associate to the strongest surviving carrier. src is the serial
// fault stream owned by the run loop; every enabled hazard consumes
// its draws unconditionally, so the stream position never depends on
// prior fault state. Part of the round loop guarded by
// TestRoundLoopAllocFree.
//
//fdlint:noalloc
func (f *faultState) step(e *engine, round int, src *simrand.Source) {
	r1 := round + 1 // 1-based, matching FaultEvent.Round
	sp := &f.spec
	changed := false

	for r := range f.down {
		if f.down[r] && r1 >= int(f.downUntil[r]) {
			f.down[r] = false
			changed = true
		}
		if f.interfUntil[r] != 0 && r1 >= int(f.interfUntil[r]) {
			f.interfUntil[r] = 0
			f.interfLoss[r] = 0
		}
	}

	for f.evIdx < len(f.events) && f.events[f.evIdx].Round == r1 {
		ev := &f.events[f.evIdx]
		f.evIdx++
		switch ev.Kind {
		case FaultReaderOutage:
			if !f.down[ev.Reader] {
				f.down[ev.Reader] = true
				changed = true
			}
			f.downUntil[ev.Reader] = int32(r1 + ev.Rounds)
		case FaultInterference:
			f.interfUntil[ev.Reader] = int32(r1 + ev.Rounds)
			f.interfLoss[ev.Reader] = ev.LossProb
		}
	}

	for r := range f.down {
		if sp.OutageRate > 0 {
			hit := src.Bool(sp.OutageRate)
			dur := 1
			if sp.OutageRounds > 1 {
				dur += src.Poisson(float64(sp.OutageRounds - 1))
			}
			if hit && !f.down[r] {
				f.down[r] = true
				f.downUntil[r] = int32(r1 + dur)
				changed = true
			}
		}
		if sp.InterferenceRate > 0 {
			hit := src.Bool(sp.InterferenceRate)
			dur := 1
			if sp.InterferenceRounds > 1 {
				dur += src.Poisson(float64(sp.InterferenceRounds - 1))
			}
			if hit && f.interfUntil[r] == 0 {
				f.interfUntil[r] = int32(r1 + dur)
				f.interfLoss[r] = sp.InterferenceLossProb
			}
		}
	}

	if sp.ChurnRate > 0 {
		t := &e.tags
		for i := 0; i < t.len(); i++ {
			if f.dormant[i] && r1 >= int(f.wakeAt[i]) {
				f.dormant[i] = false
			}
			hit := src.Bool(sp.ChurnRate)
			dur := 1
			if sp.ChurnRounds > 1 {
				dur += src.Poisson(float64(sp.ChurnRounds - 1))
			}
			if hit && !f.dormant[i] && t.alive[i] {
				f.dormant[i] = true
				f.wakeAt[i] = int32(r1 + dur)
				// The departing tag carries its backlog away: queued and
				// parked frames are lost to the census.
				lost := t.queue[i]
				t.queue[i] = 0
				if c := e.cong; c != nil {
					lost += c.retxQ[i]
					c.retxQ[i] = 0
					c.inServ[i] = false
					c.backoff[i] = 0
					c.pace[i] = 0
				}
				if lost > 0 {
					t.stats[i].FramesDropped += int(lost)
				}
			}
		}
	}

	up := 0
	for r := range f.down {
		f.cellLoss[r] = 0
		if f.down[r] {
			f.outageRounds[r]++
			continue
		}
		up++
		if f.interfUntil[r] != 0 {
			f.cellLoss[r] = f.interfLoss[r]
			f.interfRounds[r]++
		}
	}
	f.anyUp = up > 0

	if changed {
		e.deriveLinks()
	}
}

// mask returns the association exclusion mask, or nil when every
// reader is down (association falls back to ignoring outages — the
// cells stay closed regardless, so the pointer is cosmetic).
//
//fdlint:noalloc
func (f *faultState) mask() []bool {
	if !f.anyUp {
		return nil
	}
	return f.down
}
