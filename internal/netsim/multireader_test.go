package netsim

import (
	"math"
	"reflect"
	"testing"
)

func TestPlaceReadersGeometry(t *testing.T) {
	one := PlaceReaders(ReaderSpec{Count: 1, Placement: ReaderRing, SpacingM: 10})
	if len(one) != 1 || one[0] != (Position{}) {
		t.Fatalf("single reader must sit at the origin, got %v", one)
	}

	line := PlaceReaders(ReaderSpec{Count: 3, Placement: ReaderLine, SpacingM: 4})
	if len(line) != 3 {
		t.Fatalf("line placed %d readers", len(line))
	}
	if line[0].X != -4 || line[1].X != 0 || line[2].X != 4 || line[0].Y != 0 {
		t.Fatalf("line layout wrong: %v", line)
	}

	ring := PlaceReaders(ReaderSpec{Count: 4, Placement: ReaderRing, SpacingM: 5})
	for i, p := range ring {
		if d := p.Distance(); math.Abs(d-5) > 1e-9 {
			t.Fatalf("ring reader %d at distance %g, want 5", i, d)
		}
	}

	grid := PlaceReaders(ReaderSpec{Count: 4, Placement: ReaderGrid, SpacingM: 6})
	if len(grid) != 4 {
		t.Fatalf("grid placed %d readers", len(grid))
	}
	// 2x2 lattice with pitch 6 centred on the origin.
	for i, p := range grid {
		if math.Abs(math.Abs(p.X)-3) > 1e-9 || math.Abs(math.Abs(p.Y)-3) > 1e-9 {
			t.Fatalf("grid reader %d at %v, want |x|=|y|=3", i, p)
		}
	}
}

func TestAssociationFollowsStrongestCarrier(t *testing.T) {
	// Two cells 40 m apart with tags huddled 1 m around each reader:
	// association must follow the local reader exactly, round-robin from
	// the cells topology.
	sc := Scenario{
		Tags: 16, Topology: TopologyCells, RadiusM: 25, ClusterSpreadM: 1,
		Readers:      ReaderSpec{Count: 2, Placement: ReaderLine, SpacingM: 40},
		FramesPerTag: 2,
	}
	res, err := Run(sc, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Readers) != 2 {
		t.Fatalf("want 2 reader stats, got %d", len(res.Readers))
	}
	total := 0
	for _, r := range res.Readers {
		total += r.AssociatedTags
	}
	if total != sc.Tags {
		t.Fatalf("association counts sum to %d, want %d", total, sc.Tags)
	}
	for _, tag := range res.Tags {
		if want := tag.ID % 2; tag.Reader != want {
			t.Fatalf("tag %d at (%.1f, %.1f) associated with reader %d, want %d",
				tag.ID, tag.X, tag.Y, tag.Reader, want)
		}
	}
}

func TestIndependentSchedulingAddsInterference(t *testing.T) {
	base := Scenario{
		Tags: 16, Topology: TopologyCells, RadiusM: 12, ClusterSpreadM: 2,
		Readers:      ReaderSpec{Count: 4, Placement: ReaderGrid, SpacingM: 8, IsolationdB: 10},
		FramesPerTag: 2,
	}
	indep := base
	indep.Readers.Scheduling = SchedulingIndependent
	tdm := base
	tdm.Readers.Scheduling = SchedulingTDM
	ri, err := Run(indep, 5)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Run(tdm, 5)
	if err != nil {
		t.Fatal(err)
	}
	// TDM readers are never active in the same epoch, so no carrier
	// leaks into anyone's noise floor; independent channels at 10 dB
	// isolation must show strictly lower SNR for every tag.
	if ri.MeanSNRdB() >= rt.MeanSNRdB() {
		t.Fatalf("inter-reader interference must depress SNR: independent %.2f dB, tdm %.2f dB",
			ri.MeanSNRdB(), rt.MeanSNRdB())
	}
	for i := range ri.Tags {
		if ri.Tags[i].SNRdB >= rt.Tags[i].SNRdB {
			t.Fatalf("tag %d: independent SNR %.2f dB not below tdm %.2f dB",
				i, ri.Tags[i].SNRdB, rt.Tags[i].SNRdB)
		}
	}
}

func TestCoChannelIsolationSentinel(t *testing.T) {
	spec := ReaderSpec{Count: 2, IsolationdB: -1}
	spec.applyDefaults(10)
	if spec.IsolationdB != 0 {
		t.Fatalf("negative isolation must request genuine 0 dB, got %g", spec.IsolationdB)
	}
	var unset ReaderSpec
	unset.applyDefaults(10)
	if unset.IsolationdB != 20 {
		t.Fatalf("zero isolation must keep the 20 dB default, got %g", unset.IsolationdB)
	}

	// Co-channel readers leak everything: SNR must sit far below the
	// default-isolation run of the same layout.
	base := Scenario{
		Tags: 12, Topology: TopologyCells, RadiusM: 10, ClusterSpreadM: 2,
		Readers:      ReaderSpec{Count: 2, Placement: ReaderLine, SpacingM: 10},
		FramesPerTag: 2,
	}
	co := base
	co.Readers.IsolationdB = -1
	rd, err := Run(base, 7)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := Run(co, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rc.MeanSNRdB() >= rd.MeanSNRdB()-10 {
		t.Fatalf("co-channel SNR %.2f dB not well below 20 dB-isolated %.2f dB",
			rc.MeanSNRdB(), rd.MeanSNRdB())
	}
}

func TestTDMServesEveryCell(t *testing.T) {
	sc := Scenario{
		Tags: 12, Topology: TopologyCells, RadiusM: 10, ClusterSpreadM: 1.5,
		Readers:      ReaderSpec{Count: 3, Placement: ReaderRing, SpacingM: 8, Scheduling: SchedulingTDM},
		FramesPerTag: 3, MaxRounds: 120,
	}
	res, err := Run(sc, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Readers {
		if r.FramesDelivered == 0 {
			t.Fatalf("TDM rotation starved reader %d (delivered %v)", r.ID, res.Readers)
		}
	}
	if res.FramesDelivered != res.FramesOffered {
		t.Fatalf("short-range TDM cell delivered %d of %d", res.FramesDelivered, res.FramesOffered)
	}
}

func TestMultiReaderParallelismBoostsThroughput(t *testing.T) {
	base := Scenario{
		Tags: 64, Topology: TopologyUniformDisc, RadiusM: 12,
		FramesPerTag: 4, MaxRounds: 400,
	}
	multi := base
	multi.Readers = ReaderSpec{Count: 4, Placement: ReaderGrid, SpacingM: 12}
	single, err := Run(base, 17)
	if err != nil {
		t.Fatal(err)
	}
	four, err := Run(multi, 17)
	if err != nil {
		t.Fatal(err)
	}
	// Four independent channels drain the same population in parallel:
	// the aggregate goodput per unit of wall clock must beat one reader
	// sequencing everything through a single window.
	if four.Throughput() <= single.Throughput() {
		t.Fatalf("4 readers must out-run 1: throughput %.4f vs %.4f",
			four.Throughput(), single.Throughput())
	}
	if four.FramesDelivered != four.FramesOffered {
		t.Fatalf("multi-reader cell delivered %d of %d", four.FramesDelivered, four.FramesOffered)
	}
}

func TestMultiReaderDeterministic(t *testing.T) {
	sc, err := Preset("mall-cells")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(sc, 23)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc, 23)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same multi-reader scenario + seed must reproduce identically")
	}
	c, err := Run(sc, 24)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Tags, c.Tags) {
		t.Fatal("different seeds produced identical per-tag outcomes")
	}
}

func TestCellsTopologyNeedsAnchors(t *testing.T) {
	if _, err := PlaceTags(TopologyCells, 8, 5, 0, 1, nil, nil); err == nil {
		t.Fatal("cells topology without anchors accepted")
	}
}
