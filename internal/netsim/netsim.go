// Package netsim is the multi-tag network scenario engine: it composes
// the point-to-point layers (channel path loss, packet-level MAC
// protocols, the feedback channel's BER model, the rate table's loss
// cliff, and the tag energy budget) into configurable deployments of N
// tags contending under R readers.
//
// A deployment is declared as data (Scenario, loadable from JSON or a
// built-in preset) and executed by Run: readers are placed by a named
// deterministic layout, tags by a named topology, each tag associates
// with the reader whose carrier reaches it strongest, and each tag's
// forward chunk-loss probability and feedback BER derive from its
// geometry exactly the way the calibrated link experiments derive
// theirs. Medium access is framed slotted ALOHA per reader — each
// inventory round opens one contention window per active reader,
// singleton slots carry one frame through the configured MAC protocol,
// collision slots burn airtime that depends on whether the protocol can
// detect the collision early (the paper's full-duplex advantage at
// network scale). Readers share the spectrum either on independent,
// imperfectly isolated channels (neighbouring carriers raise each tag's
// noise floor) or by TDM (one reader per epoch, no interference, less
// service). Optional waypoint mobility drifts tags each epoch and
// re-derives every link quality — and the strongest-carrier association
// — from the new geometry. Optional closed-loop rate adaptation
// (Scenario.RateAdapt) gives each tag a Gauss-Markov fading channel and
// a per-tag policy — fixed, ARF frame probing, or the paper's
// full-duplex per-chunk feedback — with chunk loss drawn from the
// instantaneous per-rate SNR cliff.
//
// Determinism: a run is a pure function of (Scenario, seed). All
// randomness flows from one simrand tree split in a fixed order, the
// engine is single-goroutine, and tags are iterated by index — so runs
// embed directly as cells in the bench worker pool with byte-identical
// output at any worker count. The per-round hot path is allocation-free:
// tag state lives in one flat array, contention scratch is reused across
// rounds and readers, and the only per-frame cost beyond arithmetic is
// the MAC protocol run itself (whose scratch is reused too), so
// thousand-tag multi-reader runs complete in seconds.
package netsim

import (
	"fmt"
	"math"

	"repro/internal/channel"
	"repro/internal/energy"
	"repro/internal/feedback"
	"repro/internal/mac"
	"repro/internal/rateadapt"
	"repro/internal/simrand"
)

// tagNode is the engine's per-tag state, stored flat in one array so
// the round loop walks contiguous memory.
type tagNode struct {
	pos      Position
	reader   int     // serving reader (strongest carrier, re-derived per epoch)
	carrierW float64 // serving carrier power at the tag antenna
	harvestW float64 // total harvestable RF power (all carriers) under independent scheduling
	params   mac.Params
	queue    int // frames awaiting delivery
	budget   energy.Budget
	loss     *mac.IIDLoss
	fade     *fadingLoss     // closed-loop rate adaptation state (nil when disabled)
	protoSrc *simrand.Source // fresh protocol seed per transmission
	stats    TagStats
	alive    bool
	dieTime  float64 // seconds at death, for lifetime stats
	// Per-round accumulators for energy accounting.
	txCount int     // frames transmitted this round
	txDt    float64 // seconds spent transmitting this round
}

// TagStats reports one tag's outcome.
type TagStats struct {
	// ID indexes the tag in placement order.
	ID int
	// Reader is the serving reader (strongest carrier) at the final
	// epoch.
	Reader int
	// X, Y locate the tag at the final epoch (tags move under
	// mobility); DistanceM is the range to the serving reader.
	X, Y, DistanceM float64
	// SNRdB is the forward-link SNR at the tag at the final epoch,
	// including inter-reader interference in the noise floor under
	// independent scheduling.
	SNRdB float64
	// ChunkLossProb and FeedbackBER are the geometry-derived link
	// qualities the MAC saw at the final epoch.
	ChunkLossProb, FeedbackBER float64
	// FramesOffered counts frames entering the queue; FramesDelivered
	// the ones the MAC carried; FramesDropped the open-loop arrivals
	// lost to a full queue. Dead tags stop accruing arrivals: traffic
	// to a browned-out tag is neither offered nor dropped.
	FramesOffered, FramesDelivered, FramesDropped int
	// Collisions counts contention slots this tag lost to a collision.
	Collisions int
	// AirtimeBytes is the tag's share of transmitted airtime.
	AirtimeBytes int64
	// OutageFraction is the fraction of simulated time spent browned
	// out; Alive is the final state; LifetimeS is the time of death
	// (total simulated time when the tag survived).
	OutageFraction float64
	Alive          bool
	LifetimeS      float64

	// Closed-loop rate adaptation statistics (nil slices / zeros when
	// the scenario's RateAdapt spec is disabled).

	// RateChunks[i] counts chunks transmitted at rate i;
	// RateLostChunks[i] the ones lost at that rate.
	RateChunks, RateLostChunks []int64
	// RateSwitches counts rate transitions across the run.
	RateSwitches int64
	// AdaptChunks is total chunks under adaptation; AdaptLagChunks the
	// ones transmitted off the oracle rate (the highest rate the
	// instantaneous SNR sustains) — the per-tag adaptation lag.
	AdaptChunks, AdaptLagChunks int64
	// MeanRateMult is the time-weighted mean rate multiplier.
	MeanRateMult float64
}

// NetResult aggregates one scenario run.
type NetResult struct {
	// Scenario echoes the (defaulted) scenario that ran.
	Scenario Scenario
	// Seed echoes the run seed.
	Seed uint64
	// Tags holds per-tag outcomes in placement order.
	Tags []TagStats
	// Readers holds per-reader outcomes in placement order.
	Readers []ReaderStats
	// Rounds actually executed.
	Rounds int
	// FramesOffered / FramesDelivered / FramesDropped sum over tags.
	FramesOffered, FramesDelivered, FramesDropped int64
	// GoodputBytes is payload delivered across all cells.
	GoodputBytes int64
	// ElapsedBytes is the shared clock: each round advances it by the
	// longest concurrently active reader's window (bytes on air at the
	// base rate), since independent channels run in parallel.
	ElapsedBytes int64
	// IdleSlots / SingletonSlots / CollisionSlots classify contention
	// slots across every reader.
	IdleSlots, SingletonSlots, CollisionSlots int64
	// CollisionBytes is airtime burned by collisions.
	CollisionBytes int64
	// SimulatedS is ElapsedBytes converted to seconds at the bit rate.
	SimulatedS float64
	// RateSwitches / AdaptChunks / AdaptLagChunks aggregate the per-tag
	// rate-adaptation statistics (zero when RateAdapt is disabled);
	// adaptInvMult backs MeanRateMult.
	RateSwitches, AdaptChunks, AdaptLagChunks int64
	adaptInvMult                              float64
}

// MeanRateMult returns the population's time-weighted mean rate
// multiplier under rate adaptation (0 when disabled).
func (r *NetResult) MeanRateMult() float64 {
	if r.adaptInvMult == 0 {
		return 0
	}
	return float64(r.AdaptChunks) / r.adaptInvMult
}

// AdaptLagFraction returns the fraction of adapted chunks transmitted
// off the oracle rate — how far the policy trailed the channel.
func (r *NetResult) AdaptLagFraction() float64 {
	if r.AdaptChunks == 0 {
		return 0
	}
	return float64(r.AdaptLagChunks) / float64(r.AdaptChunks)
}

// DeliveryRate returns delivered frames over offered frames.
func (r *NetResult) DeliveryRate() float64 {
	if r.FramesOffered == 0 {
		return 0
	}
	return float64(r.FramesDelivered) / float64(r.FramesOffered)
}

// Throughput returns goodput bytes per elapsed byte-time on the shared
// clock — the deployment's aggregate efficiency.
func (r *NetResult) Throughput() float64 {
	if r.ElapsedBytes == 0 {
		return 0
	}
	return float64(r.GoodputBytes) / float64(r.ElapsedBytes)
}

// CollisionFraction returns collision slots over non-idle slots.
func (r *NetResult) CollisionFraction() float64 {
	busy := r.SingletonSlots + r.CollisionSlots
	if busy == 0 {
		return 0
	}
	return float64(r.CollisionSlots) / float64(busy)
}

// AliveFraction returns the fraction of tags above brown-out at the end.
func (r *NetResult) AliveFraction() float64 {
	if len(r.Tags) == 0 {
		return 0
	}
	alive := 0
	for _, t := range r.Tags {
		if t.Alive {
			alive++
		}
	}
	return float64(alive) / float64(len(r.Tags))
}

// MeanLifetimeS returns the mean per-tag lifetime in seconds (survivors
// count the full simulated time).
func (r *NetResult) MeanLifetimeS() float64 {
	if len(r.Tags) == 0 {
		return 0
	}
	var sum float64
	for _, t := range r.Tags {
		sum += t.LifetimeS
	}
	return sum / float64(len(r.Tags))
}

// MeanSNRdB returns the population mean forward SNR.
func (r *NetResult) MeanSNRdB() float64 {
	if len(r.Tags) == 0 {
		return 0
	}
	var sum float64
	for _, t := range r.Tags {
		sum += t.SNRdB
	}
	return sum / float64(len(r.Tags))
}

// FairnessIndex returns Jain's fairness index over per-tag delivered
// frames: 1 when every tag got equal service, 1/N when one tag took
// everything, and 0 when nothing was delivered at all (no service to be
// fair about).
func (r *NetResult) FairnessIndex() float64 {
	var sum, sumSq float64
	for _, t := range r.Tags {
		x := float64(t.FramesDelivered)
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	n := float64(len(r.Tags))
	return sum * sum / (n * sumSq)
}

// roundProbe observes the engine at each round's energy settlement:
// the round index, the settled wall-clock dt, the flat tag array (with
// txCount/txDt still holding this round's accumulators), and each tag's
// effective harvest power. Test-only hook; production runs pass nil.
type roundProbe func(round int, dt float64, tags []tagNode, harvestW []float64)

// engine holds one run's state: the flat tag array plus every piece of
// scratch the round loop reuses, so steady-state rounds allocate
// nothing.
type engine struct {
	sc      Scenario
	pl      channel.LogDistance
	rate    rateadapt.RateSpec
	readers []Position
	rstats  []ReaderStats
	tags    []tagNode
	// gains[i*R+r] is the linear power gain from reader r to tag i,
	// re-derived per epoch under mobility.
	gains []float64
	// readerTags[r] indexes the tags served by reader r (rebuilt per
	// epoch; backing arrays reused).
	readerTags [][]int
	// couplingW is the linear inter-channel leakage factor under
	// independent scheduling (0 under TDM).
	couplingW float64
	tdm       bool

	// Round-loop scratch.
	slotChoice []int
	slotWinner []int
	slotCount  []int
	harvest    []float64

	// Reused protocol instances (their internal scratch persists
	// across frames; full duplex is reseeded per transmission).
	fd mac.FullDuplex
	sw mac.StopAndWait
	ba mac.BlockACK

	secondsPerByte float64
	chunkAir       int64
	collisionCost  int64
}

// Run executes the scenario deterministically under the given seed.
func Run(sc Scenario, seed uint64) (*NetResult, error) { return run(sc, seed, nil) }

func run(sc Scenario, seed uint64, probe roundProbe) (*NetResult, error) {
	sc.ApplyDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	// One random tree, split in fixed order; every source below is
	// always split even when unused (a static run still splits the
	// mobility source) so the per-tag streams never depend on which
	// features are enabled beyond the scenario itself.
	root := simrand.New(seed)
	placeSrc := root.Split()
	trafficSrc := root.Split()
	slotSrc := root.Split()
	mobilitySrc := root.Split()

	readers := PlaceReaders(sc.Readers)
	positions, err := PlaceTags(sc.Topology, sc.Tags, sc.RadiusM, sc.Clusters, sc.ClusterSpreadM, readers, placeSrc)
	if err != nil {
		return nil, err
	}

	params := mac.Params{
		PayloadBytes:   sc.PayloadBytes,
		ChunkBytes:     sc.ChunkBytes,
		AbortThreshold: sc.AbortThreshold,
		BackoffChunks:  sc.BackoffChunks,
		MaxAttempts:    sc.MaxAttempts,
	}
	chunkAir := int64(params.ChunkAirBytes())
	// A whole-frame attempt on air, for collision cost accounting.
	frameAir := int64(params.FrameAirBytes())
	// Collision cost: a full-duplex reader sees the feedback margin
	// collapse and aborts within AbortThreshold chunks; a half-duplex
	// protocol only learns at the missing end-of-frame ACK, so the whole
	// attempt is burned.
	collisionCost := frameAir
	if sc.Protocol == "full-duplex" {
		collisionCost = int64(params.HeaderAirBytes()) + int64(sc.AbortThreshold)*chunkAir
		// Detection can never cost more than the frame it interrupts.
		if collisionCost > frameAir {
			collisionCost = frameAir
		}
	}

	e := &engine{
		sc:             sc,
		pl:             channel.NewLogDistance(sc.FreqHz, sc.PathLossExp),
		rate:           rateadapt.RateSpec{Name: "1x", Mult: 1, ReqSNRdB: sc.ReqSNRdB},
		readers:        readers,
		rstats:         make([]ReaderStats, len(readers)),
		tags:           make([]tagNode, sc.Tags),
		gains:          make([]float64, sc.Tags*len(readers)),
		readerTags:     make([][]int, len(readers)),
		tdm:            sc.Readers.Scheduling == SchedulingTDM,
		slotChoice:     make([]int, sc.Tags),
		slotWinner:     make([]int, sc.ContentionWindow),
		slotCount:      make([]int, sc.ContentionWindow),
		harvest:        make([]float64, sc.Tags),
		secondsPerByte: 8 / sc.BitRateBps,
		chunkAir:       chunkAir,
		collisionCost:  collisionCost,
	}
	if !e.tdm {
		e.couplingW = math.Pow(10, -sc.Readers.IsolationdB/10)
	}
	for r := range e.rstats {
		e.rstats[r] = ReaderStats{ID: r, X: readers[r].X, Y: readers[r].Y}
	}
	for i := range e.tags {
		n := &e.tags[i]
		n.pos = positions[i]
		n.params = params
		n.alive = true
		n.budget = energy.Budget{
			Harvester: energy.Harvester{Efficiency: sc.HarvesterEff, SensitivityW: sc.HarvesterFloorW},
			Cap:       energy.Capacitor{CapacitanceF: sc.CapacitanceF},
			CircuitW:  sc.IdleCircuitW,
		}
		n.budget.Cap.SetVoltage(sc.StartVoltageV)
		n.stats = TagStats{ID: i}
		tagSrc := root.Split()
		n.loss = mac.NewIIDLoss(0, tagSrc) // probability set by deriveLinks
		n.protoSrc = tagSrc.Split()
		if sc.RateAdapt.enabled() {
			// The fading stream is hashed off the run seed, not split
			// from the tree: enabling adaptation must not shift the
			// streams the static engine draws. The loss draws
			// themselves ride n.loss's existing stream.
			n.fade = newFadingLoss(sc.RateAdapt, n.loss, fadeSeed(seed, i))
		}
		if sc.OfferedLoad == 0 {
			n.queue = sc.FramesPerTag
			n.stats.FramesOffered = sc.FramesPerTag
		}
	}
	e.deriveLinks()

	var walk *waypointWalk
	if sc.Mobility.enabled() {
		walk = newWaypointWalk(sc.Tags, sc.RadiusM, sc.Mobility.StepM, mobilitySrc)
	}

	res := &NetResult{Scenario: sc, Seed: seed}
	epochLen := sc.Mobility.EpochRounds
	activeReader := -1 // <0: every reader is active (independent scheduling)

	for round := 0; round < sc.MaxRounds; round++ {
		// A closed-loop run is done once every live queue drained at the
		// end of the previous round; check before counting the round so
		// Rounds reports only rounds that actually opened a window.
		if sc.OfferedLoad == 0 {
			queued := false
			for i := range e.tags {
				if e.tags[i].alive && e.tags[i].queue > 0 {
					queued = true
					break
				}
			}
			if !queued {
				break
			}
		}
		res.Rounds = round + 1
		if round%epochLen == 0 {
			// positions mirrors tags[i].pos (nothing else moves a tag),
			// so the walk advances it in place and the nodes copy back.
			if walk != nil && round > 0 {
				walk.advance(positions)
				for i := range e.tags {
					e.tags[i].pos = positions[i]
				}
				e.deriveLinks()
			}
			if e.tdm {
				activeReader = (round / epochLen) % len(e.readers)
			}
		}

		// Open-loop arrivals. Policy: the Poisson draw happens for every
		// tag, dead or alive, so one tag's death never shifts the arrival
		// stream the others see; a dead tag's frames are simply not
		// offered — it can neither queue nor deliver them, and counting
		// them would deflate DeliveryRate with traffic that never existed
		// for the MAC.
		if sc.OfferedLoad > 0 {
			for i := range e.tags {
				n := &e.tags[i]
				k := trafficSrc.Poisson(sc.OfferedLoad)
				if !n.alive {
					continue
				}
				n.stats.FramesOffered += k
				free := sc.QueueCap - n.queue
				if k > free {
					n.stats.FramesDropped += k - free
					k = free
				}
				n.queue += k
			}
		}

		// One contention window per active reader. Independent channels
		// run concurrently, so the wall clock advances by the longest
		// window; under TDM only one reader transmits.
		var roundBytes int64
		for r := range e.readers {
			if activeReader >= 0 && r != activeReader {
				continue
			}
			rb := e.runWindow(r, slotSrc, res)
			if rb > roundBytes {
				roundBytes = rb
			}
		}

		// Settle every tag's energy budget over the round in one step:
		// the idle draw plus, for transmitters, the per-frame transmit
		// energy spread over the round, harvesting the incident carriers
		// reduced by the rho/2 Manchester-duty reflection loss during
		// their transmit time. Under TDM a tag harvests only the single
		// active carrier from wherever it stands; under independent
		// scheduling every carrier contributes.
		res.ElapsedBytes += roundBytes
		dt := float64(roundBytes) * e.secondsPerByte
		now := float64(res.ElapsedBytes) * e.secondsPerByte
		for i := range e.tags {
			n := &e.tags[i]
			harvestW := n.harvestW
			if activeReader >= 0 {
				harvestW = sc.TxPowerW * e.gains[i*len(e.readers)+activeReader]
			}
			circuitW := sc.IdleCircuitW
			if dt > 0 {
				if n.txDt > 0 {
					_, during := energy.SplitIncident(harvestW, sc.Rho/2)
					harvestW -= (harvestW - during) * (n.txDt / dt)
				}
				circuitW += float64(n.txCount) * sc.TxEnergyJ / dt
			}
			e.harvest[i] = harvestW
			n.budget.CircuitW = circuitW
			ok := n.budget.Step(harvestW, dt)
			n.budget.CircuitW = sc.IdleCircuitW
			if !ok && n.alive {
				n.alive = false
				n.dieTime = now
			}
		}
		if probe != nil {
			probe(round, dt, e.tags, e.harvest)
		}
		for i := range e.tags {
			e.tags[i].txCount, e.tags[i].txDt = 0, 0
		}
	}

	res.SimulatedS = float64(res.ElapsedBytes) * e.secondsPerByte
	res.Tags = make([]TagStats, 0, len(e.tags))
	for i := range e.tags {
		n := &e.tags[i]
		if n.fade != nil {
			n.fade.drainInto(&n.stats)
			res.RateSwitches += n.fade.switches
			res.AdaptChunks += n.fade.chunks
			res.AdaptLagChunks += n.fade.lagChunks
			res.adaptInvMult += n.fade.invMultSum
		}
		n.stats.OutageFraction = n.budget.OutageFraction()
		n.stats.Alive = n.alive
		if n.alive {
			n.stats.LifetimeS = res.SimulatedS
		} else {
			n.stats.LifetimeS = n.dieTime
		}
		res.FramesOffered += int64(n.stats.FramesOffered)
		res.FramesDelivered += int64(n.stats.FramesDelivered)
		res.FramesDropped += int64(n.stats.FramesDropped)
		res.Tags = append(res.Tags, n.stats)
	}
	for r := range e.rstats {
		e.rstats[r].AssociatedTags = len(e.readerTags[r])
		res.Readers = append(res.Readers, e.rstats[r])
	}
	return res, nil
}

// deriveLinks recomputes, for the current tag positions, every gain,
// the strongest-carrier association, and each tag's forward chunk-loss
// probability and feedback BER — using exactly the calibrations the
// point-to-point link experiments use. Under independent scheduling the
// neighbouring readers' carriers, attenuated by the channel isolation,
// join the tag's noise floor for both directions. Called once for
// static deployments and once per epoch under mobility.
func (e *engine) deriveLinks() {
	sc := &e.sc
	R := len(e.readers)
	for r := range e.readerTags {
		e.readerTags[r] = e.readerTags[r][:0]
	}
	for i := range e.tags {
		n := &e.tags[i]
		base := i * R
		best, bestG := 0, -1.0
		sumW := 0.0
		for r := range e.readers {
			g := e.pl.Gain(math.Hypot(n.pos.X-e.readers[r].X, n.pos.Y-e.readers[r].Y))
			e.gains[base+r] = g
			sumW += sc.TxPowerW * g
			if g > bestG {
				best, bestG = r, g
			}
		}
		n.reader = best
		n.carrierW = sc.TxPowerW * bestG
		n.harvestW = sumW
		e.readerTags[best] = append(e.readerTags[best], i)

		// Inter-reader interference: under independent scheduling the
		// other carriers leak through the channel isolation into this
		// tag's noise floor every round. Under TDM neighbours are never
		// active in the same epoch, so nothing is added.
		noiseW := sc.NoiseW + e.couplingW*(sumW-n.carrierW)

		// Forward link: SNR at the tag sets the chunk-loss cliff exactly
		// as the rate-adaptation channel model does.
		snrDB := 10 * math.Log10(n.carrierW/noiseW)
		lossP := rateadapt.ChunkLossProb(e.rate, snrDB)
		// Reverse link: the backscattered feedback rides a round-trip
		// channel; its BER follows the Manchester decoder prediction with
		// the same calibration as the waveform feedback experiments
		// (normalised separation g*sqrt(rho), noise referred to the
		// transmit envelope).
		delta := bestG * math.Sqrt(sc.Rho)
		sigma := math.Sqrt(noiseW/2) / math.Sqrt(sc.TxPowerW)
		fbBER := feedback.ManchesterBER(delta, sigma, sc.FeedbackSamplesPerBit)

		n.loss.P = lossP
		n.params.FeedbackBER = fbBER
		if n.fade != nil {
			// Under rate adaptation a mobility epoch re-derives the
			// fading MEAN; the small-scale Gauss-Markov state persists,
			// so motion shifts the channel without resetting it.
			n.fade.meanSNRdB = snrDB
			n.fade.fbBER = fbBER
		}
		n.stats.Reader = best
		n.stats.X, n.stats.Y = n.pos.X, n.pos.Y
		n.stats.DistanceM = math.Hypot(n.pos.X-e.readers[best].X, n.pos.Y-e.readers[best].Y)
		n.stats.SNRdB = snrDB
		n.stats.ChunkLossProb = lossP
		n.stats.FeedbackBER = fbBER
	}
}

// runFrame pushes one frame of tag n through the scenario's MAC
// protocol, reusing the engine's protocol instances. Full duplex draws
// a fresh seed per transmission so feedback-decoding randomness is
// independent across frames (the protocol reseeds its internal source
// on every Run call).
func (e *engine) runFrame(n *tagNode) mac.Result {
	var loss mac.Loss = n.loss
	if n.fade != nil {
		n.fade.beginFrame()
		loss = n.fade
	}
	switch e.sc.Protocol {
	case "stop-and-wait":
		e.sw.P = n.params
		return e.sw.Run(1, loss)
	case "block-ack":
		e.ba.P = n.params
		return e.ba.Run(1, loss)
	default:
		e.fd.P = n.params
		e.fd.Seed = n.protoSrc.Uint64()
		return e.fd.Run(1, loss)
	}
}

// runWindow executes one reader's contention window for the current
// round and returns the window's airtime in bytes. Slot draws happen in
// tag-index order within the reader's association list, so the stream
// consumed from slotSrc is a fixed function of the deterministic
// engine state.
func (e *engine) runWindow(r int, slotSrc *simrand.Source, res *NetResult) int64 {
	cw := e.sc.ContentionWindow
	idxs := e.readerTags[r]

	contenders := 0
	for s := 0; s < cw; s++ {
		e.slotWinner[s] = -1
		e.slotCount[s] = 0
	}
	for _, i := range idxs {
		n := &e.tags[i]
		if !n.alive || n.queue == 0 {
			continue
		}
		s := slotSrc.IntN(cw)
		e.slotChoice[i] = s
		e.slotCount[s]++
		e.slotWinner[s] = i
		contenders++
	}
	if contenders == 0 {
		// Nothing to send in this cell: the whole window elapses idle.
		res.IdleSlots += int64(cw)
		return int64(cw) * e.chunkAir
	}
	// Attribute collisions before slots execute (the contender set is
	// exactly the set that drew above; queues change only below). A
	// colliding tag was on air until the reader shut the slot down, so
	// it pays the transmit energy for that airtime at round-end
	// settlement just like a singleton winner does — the frame itself
	// stays queued.
	for _, i := range idxs {
		n := &e.tags[i]
		if !n.alive || n.queue == 0 {
			continue
		}
		if e.slotCount[e.slotChoice[i]] > 1 {
			n.stats.Collisions++
			n.txCount++
			n.txDt += float64(e.collisionCost) * e.secondsPerByte
		}
	}

	var rb int64
	for s := 0; s < cw; s++ {
		switch e.slotCount[s] {
		case 0:
			res.IdleSlots++
			rb += e.chunkAir // empty slots are short: one chunk-time
		case 1:
			res.SingletonSlots++
			e.rstats[r].SingletonSlots++
			n := &e.tags[e.slotWinner[s]]
			mr := e.runFrame(n)
			n.queue--
			elapsed, air := mr.ElapsedBytes, mr.AirtimeBytes
			if n.fade != nil {
				// A chunk at rate multiplier m occupies chunkAir/m
				// byte-times: shift the exchange's clock and airtime by
				// the rates the adapter actually used, and deliver the
				// end-of-frame verdict the frame-probing policies learn
				// from.
				extra := n.fade.frameExtraBytes(e.chunkAir)
				elapsed += extra
				air += extra
				n.fade.endFrame(mr.FramesDelivered == 1)
			}
			n.stats.AirtimeBytes += air
			rb += elapsed
			if mr.FramesDelivered == 1 {
				n.stats.FramesDelivered++
				e.rstats[r].FramesDelivered++
				res.GoodputBytes += mr.GoodputBytes
			} else {
				// Undelivered after MaxAttempts: re-queue for a later
				// round (unless the open-loop queue refilled).
				if n.queue < e.sc.QueueCap {
					n.queue++
				} else {
					n.stats.FramesDropped++
				}
			}
			// Energy is settled once at round end; record how long this
			// tag spent transmitting so its harvest and draw can be
			// adjusted there.
			n.txCount++
			n.txDt += float64(elapsed) * e.secondsPerByte
		default:
			res.CollisionSlots++
			e.rstats[r].CollisionSlots++
			res.CollisionBytes += e.collisionCost
			rb += e.collisionCost
		}
	}
	return rb
}

// String summarises a run for logs.
func (r *NetResult) String() string {
	return fmt.Sprintf("%s: %d tags, %d readers, %d rounds, delivered %d/%d, thrpt=%.3f, coll=%.3f, alive=%.2f",
		r.Scenario.Name, len(r.Tags), len(r.Readers), r.Rounds, r.FramesDelivered, r.FramesOffered,
		r.Throughput(), r.CollisionFraction(), r.AliveFraction())
}
