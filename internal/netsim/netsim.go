// Package netsim is the multi-tag network scenario engine: it composes
// the point-to-point layers (channel path loss, packet-level MAC
// protocols, the feedback channel's BER model, the rate table's loss
// cliff, and the tag energy budget) into configurable deployments of N
// tags contending under R readers.
//
// A deployment is declared as data (Scenario, loadable from JSON or a
// built-in preset) and executed by Run: readers are placed by a named
// deterministic layout, tags by a named topology, each tag associates
// with the reader whose carrier reaches it strongest, and each tag's
// forward chunk-loss probability and feedback BER derive from its
// geometry exactly the way the calibrated link experiments derive
// theirs. Medium access is framed slotted ALOHA per reader — each
// inventory round opens one contention window per active reader,
// singleton slots carry one frame through the configured MAC protocol,
// collision slots burn airtime that depends on whether the protocol can
// detect the collision early (the paper's full-duplex advantage at
// network scale). Readers share the spectrum either on independent,
// imperfectly isolated channels (neighbouring carriers raise each tag's
// noise floor) or by TDM (one reader per epoch, no interference, less
// service). Optional waypoint mobility drifts tags each epoch and
// re-derives every link quality — and the strongest-carrier association
// — from the new geometry. Optional closed-loop rate adaptation
// (Scenario.RateAdapt) gives each tag a Gauss-Markov fading channel and
// a per-tag policy — fixed, ARF frame probing, or the paper's
// full-duplex per-chunk feedback — with chunk loss drawn from the
// instantaneous per-rate SNR cliff.
//
// Determinism: a run is a pure function of (Scenario, seed) at ANY
// worker count. All randomness flows from one simrand tree split in a
// fixed order. The shared sequential streams (placement, traffic
// arrivals, slot draws, the mobility walk) are cheap and stay serial in
// exactly the order the single-goroutine engine consumed them; all
// expensive randomness (chunk loss, protocol feedback, fading) lives in
// per-tag streams whose PCG state is stored inline in the tag arrays,
// so a reader cell executes identically on whichever worker claims it.
// Per-cell and per-tag-shard results merge in submission order, and the
// one floating-point accumulator whose value depends on summation order
// (adaptInvMult) is summed serially in tag order — so NetResult is
// byte-identical from 1 worker to N, and byte-identical to the
// pre-sharding array-of-structs engine.
//
// Layout: per-tag state is struct-of-arrays (tagState) — parallel
// slices grouped by access pattern, walked as tight loops over
// contiguous memory — and tags are grouped per reader cell in a CSR
// association index, which is also the unit of window-phase sharding.
// The per-round hot path is allocation-free at every worker count:
// worker scratch (protocol instances, slot arrays, stream-loading
// sources) is allocated once at setup, and the worker pool is
// persistent across rounds. An opt-in analytic fast path
// (Scenario.Analytic) replaces per-chunk simulation with closed-form
// expected airtime per frame; see analytic.go.
package netsim

import (
	"fmt"
	"math"
	"runtime"

	"repro/internal/channel"
	"repro/internal/energy"
	"repro/internal/feedback"
	"repro/internal/mac"
	"repro/internal/rateadapt"
	"repro/internal/simrand"
)

// tagState is the engine's per-tag state as parallel slices (struct of
// arrays): each round-loop pass touches only the columns it needs, so a
// million-tag pass streams contiguous memory instead of striding over
// one fat struct per tag.
type tagState struct {
	pos      []Position
	reader   []int32   // serving reader (strongest carrier, re-derived per epoch)
	carrierW []float64 // serving carrier power at the tag antenna
	harvestW []float64 // total harvestable RF power under independent scheduling
	lossP    []float64 // geometry-derived forward chunk-loss probability
	fbBER    []float64 // geometry-derived feedback BER
	queue    []int32   // frames awaiting delivery
	budget   []energy.Budget
	alive    []bool
	dieTime  []float64 // seconds at death, for lifetime stats
	// Per-round accumulators for energy accounting.
	txCount []int32   // frames transmitted this round
	txDt    []float64 // seconds spent transmitting this round
	// Per-tag PCG stream state stored inline (hi, lo words) and loaded
	// into a worker's scratch Source around each use — the same streams
	// the array-of-structs engine held as one *simrand.Source per tag.
	lossHi, lossLo   []uint64
	protoHi, protoLo []uint64
	stats            []TagStats
}

func newTagState(n int) tagState {
	return tagState{
		pos:      make([]Position, n),
		reader:   make([]int32, n),
		carrierW: make([]float64, n),
		harvestW: make([]float64, n),
		lossP:    make([]float64, n),
		fbBER:    make([]float64, n),
		queue:    make([]int32, n),
		budget:   make([]energy.Budget, n),
		alive:    make([]bool, n),
		dieTime:  make([]float64, n),
		txCount:  make([]int32, n),
		txDt:     make([]float64, n),
		lossHi:   make([]uint64, n),
		lossLo:   make([]uint64, n),
		protoHi:  make([]uint64, n),
		protoLo:  make([]uint64, n),
		stats:    make([]TagStats, n),
	}
}

func (t *tagState) len() int { return len(t.alive) }

// TagStats reports one tag's outcome.
type TagStats struct {
	// ID indexes the tag in placement order.
	ID int
	// Reader is the serving reader (strongest carrier) at the final
	// epoch.
	Reader int
	// X, Y locate the tag at the final epoch (tags move under
	// mobility); DistanceM is the range to the serving reader.
	X, Y, DistanceM float64
	// SNRdB is the forward-link SNR at the tag at the final epoch,
	// including inter-reader interference in the noise floor under
	// independent scheduling.
	SNRdB float64
	// ChunkLossProb and FeedbackBER are the geometry-derived link
	// qualities the MAC saw at the final epoch.
	ChunkLossProb, FeedbackBER float64
	// FramesOffered counts frames entering the queue; FramesDelivered
	// the ones the MAC carried; FramesDropped the open-loop arrivals
	// lost to a full queue. Dead tags stop accruing arrivals: traffic
	// to a browned-out tag is neither offered nor dropped.
	FramesOffered, FramesDelivered, FramesDropped int
	// Collisions counts contention slots this tag lost to a collision.
	Collisions int
	// AirtimeBytes is the tag's share of transmitted airtime.
	AirtimeBytes int64
	// MACAttempts counts frame transmission attempts inside the MAC
	// exchanges this tag ran (>= FramesDelivered; the gap is the
	// per-frame retry burden the link quality imposed).
	MACAttempts int64
	// OutageFraction is the fraction of simulated time spent browned
	// out; Alive is the final state; LifetimeS is the time of death
	// (total simulated time when the tag survived).
	OutageFraction float64
	Alive          bool
	LifetimeS      float64

	// Closed-loop congestion-control outcomes (zeros when the
	// scenario's Congestion spec is disabled).

	// Timeouts counts loss events (RTO expiries and MAC-attempt
	// exhaustion); Retransmissions counts parked frames re-entering
	// service; RetxDropped counts frames lost to a full retx queue.
	Timeouts, Retransmissions, RetxDropped int
	// CwndFinal and SRTTRounds report the controller state at the end
	// of the run (SRTTRounds is 0 before the first RTT sample).
	CwndFinal, SRTTRounds float64

	// Closed-loop rate adaptation statistics (nil slices / zeros when
	// the scenario's RateAdapt spec is disabled).

	// RateChunks[i] counts chunks transmitted at rate i;
	// RateLostChunks[i] the ones lost at that rate.
	RateChunks, RateLostChunks []int64
	// RateSwitches counts rate transitions across the run.
	RateSwitches int64
	// AdaptChunks is total chunks under adaptation; AdaptLagChunks the
	// ones transmitted off the oracle rate (the highest rate the
	// instantaneous SNR sustains) — the per-tag adaptation lag.
	AdaptChunks, AdaptLagChunks int64
	// MeanRateMult is the time-weighted mean rate multiplier.
	MeanRateMult float64
}

// NetResult aggregates one scenario run.
type NetResult struct {
	// Scenario echoes the (defaulted) scenario that ran.
	Scenario Scenario
	// Seed echoes the run seed.
	Seed uint64
	// Tags holds per-tag outcomes in placement order.
	Tags []TagStats
	// Readers holds per-reader outcomes in placement order.
	Readers []ReaderStats
	// Rounds actually executed.
	Rounds int
	// FramesOffered / FramesDelivered / FramesDropped sum over tags.
	FramesOffered, FramesDelivered, FramesDropped int64
	// GoodputBytes is payload delivered across all cells.
	GoodputBytes int64
	// ElapsedBytes is the shared clock: each round advances it by the
	// longest concurrently active reader's window (bytes on air at the
	// base rate), since independent channels run in parallel.
	ElapsedBytes int64
	// IdleSlots / SingletonSlots / CollisionSlots classify contention
	// slots across every reader.
	IdleSlots, SingletonSlots, CollisionSlots int64
	// CollisionBytes is airtime burned by collisions.
	CollisionBytes int64
	// SimulatedS is ElapsedBytes converted to seconds at the bit rate.
	SimulatedS float64
	// RateSwitches / AdaptChunks / AdaptLagChunks aggregate the per-tag
	// rate-adaptation statistics (zero when RateAdapt is disabled);
	// adaptInvMult backs MeanRateMult.
	RateSwitches, AdaptChunks, AdaptLagChunks int64
	adaptInvMult                              float64
	// Timeouts / Retransmissions / RetxDropped aggregate the per-tag
	// congestion-control counters (zero when Congestion is disabled);
	// cwndSum backs MeanCwnd.
	Timeouts, Retransmissions, RetxDropped int64
	cwndSum                                float64
}

// MeanCwnd returns the population mean congestion window at the end of
// the run (0 when congestion control is disabled).
func (r *NetResult) MeanCwnd() float64 {
	if r.cwndSum == 0 || len(r.Tags) == 0 {
		return 0
	}
	return r.cwndSum / float64(len(r.Tags))
}

// MeanRateMult returns the population's time-weighted mean rate
// multiplier under rate adaptation (0 when disabled).
func (r *NetResult) MeanRateMult() float64 {
	if r.adaptInvMult == 0 {
		return 0
	}
	return float64(r.AdaptChunks) / r.adaptInvMult
}

// AdaptLagFraction returns the fraction of adapted chunks transmitted
// off the oracle rate — how far the policy trailed the channel.
func (r *NetResult) AdaptLagFraction() float64 {
	if r.AdaptChunks == 0 {
		return 0
	}
	return float64(r.AdaptLagChunks) / float64(r.AdaptChunks)
}

// DeliveryRate returns delivered frames over offered frames.
func (r *NetResult) DeliveryRate() float64 {
	if r.FramesOffered == 0 {
		return 0
	}
	return float64(r.FramesDelivered) / float64(r.FramesOffered)
}

// Throughput returns goodput bytes per elapsed byte-time on the shared
// clock — the deployment's aggregate efficiency.
func (r *NetResult) Throughput() float64 {
	if r.ElapsedBytes == 0 {
		return 0
	}
	return float64(r.GoodputBytes) / float64(r.ElapsedBytes)
}

// CollisionFraction returns collision slots over non-idle slots.
func (r *NetResult) CollisionFraction() float64 {
	busy := r.SingletonSlots + r.CollisionSlots
	if busy == 0 {
		return 0
	}
	return float64(r.CollisionSlots) / float64(busy)
}

// AliveFraction returns the fraction of tags above brown-out at the end.
func (r *NetResult) AliveFraction() float64 {
	if len(r.Tags) == 0 {
		return 0
	}
	alive := 0
	for _, t := range r.Tags {
		if t.Alive {
			alive++
		}
	}
	return float64(alive) / float64(len(r.Tags))
}

// MeanLifetimeS returns the mean per-tag lifetime in seconds (survivors
// count the full simulated time).
func (r *NetResult) MeanLifetimeS() float64 {
	if len(r.Tags) == 0 {
		return 0
	}
	var sum float64
	for _, t := range r.Tags {
		sum += t.LifetimeS
	}
	return sum / float64(len(r.Tags))
}

// MeanSNRdB returns the population mean forward SNR.
func (r *NetResult) MeanSNRdB() float64 {
	if len(r.Tags) == 0 {
		return 0
	}
	var sum float64
	for _, t := range r.Tags {
		sum += t.SNRdB
	}
	return sum / float64(len(r.Tags))
}

// FairnessIndex returns Jain's fairness index over per-tag delivered
// frames: 1 when every tag got equal service, 1/N when one tag took
// everything, and 0 when nothing was delivered at all (no service to be
// fair about).
func (r *NetResult) FairnessIndex() float64 {
	var sum, sumSq float64
	for _, t := range r.Tags {
		x := float64(t.FramesDelivered)
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	n := float64(len(r.Tags))
	return sum * sum / (n * sumSq)
}

// roundState is the engine state a roundProbe observes: struct-of-array
// views over the live per-tag columns, valid only for the duration of
// the probe call and read-only for the probe.
type roundState struct {
	txCount  []int32   // frames transmitted this round (pre-reset)
	txDt     []float64 // seconds spent transmitting this round (pre-reset)
	alive    []bool
	harvestW []float64 // effective harvest power settled this round
	queue    []int32   // frames awaiting delivery after this round
	stats    []TagStats
	cong     *congState // live congestion columns (nil when disabled)
}

// roundProbe observes the engine at each round's energy settlement:
// the round index, the settled wall-clock dt, and the SoA state views.
// Test-only hook; production runs pass nil.
type roundProbe func(round int, dt float64, st roundState)

// engine holds one run's state: the tag arrays plus every piece of
// scratch the round loop reuses, so steady-state rounds allocate
// nothing at any worker count.
type engine struct {
	sc      Scenario
	pl      channel.LogDistance
	rate    rateadapt.RateSpec
	readers []Position
	rstats  []ReaderStats
	tags    tagState
	fade    *fadeState  // closed-loop rate adaptation state (nil when disabled)
	cong    *congState  // closed-loop congestion control state (nil when disabled)
	sched   *schedState // reader scheduling policy state (nil under PolicyAloha)
	flt     *faultState // fault-injection state (nil when disabled)
	// gains[i*R+r] is the linear power gain from reader r to tag i,
	// re-derived per epoch under mobility.
	gains []float64
	// Reader-cell association in CSR form: the tags served by reader r
	// are tagsByReader[readerOff[r]:readerOff[r+1]], in tag index order.
	// Rebuilt per epoch with no allocation; cells are the unit of
	// window-phase sharding.
	tagsByReader []int32
	readerOff    []int32
	readerFill   []int32 // rebuild cursor scratch
	// couplingW is the linear inter-channel leakage factor under
	// independent scheduling (0 under TDM).
	couplingW float64
	tdm       bool
	analytic  bool
	// params carries the shared MAC dimensions; FeedbackBER is per tag
	// and written into each worker's params copy before a frame.
	params mac.Params

	// Round-loop scratch.
	slotChoice []int32
	harvest    []float64

	secondsPerByte float64
	chunkAir       int64
	collisionCost  int64

	// Worker pool and per-phase dispatch state (pool.go).
	pool pool
	// activeCells lists the reader cells the current round opens
	// (all readers under independent scheduling, one under TDM).
	activeCells    []int32
	cellContenders []int32
	cellAcc        []cellAcc
	activeReader   int // <0: every reader is active
	// curRound is the 0-based round the parallel phases are executing;
	// written serially between phases.
	curRound  int
	settleDt  float64
	settleNow float64
	// res is set for the drain phase only (LifetimeS needs SimulatedS);
	// nil during rounds.
	res *NetResult
}

// Run executes the scenario deterministically under the given seed.
func Run(sc Scenario, seed uint64) (*NetResult, error) { return run(sc, seed, 1, nil, nil) }

// RunParallel executes the scenario across the given number of engine
// workers (<= 0 selects one per CPU). The result is byte-identical to
// Run: sharding only changes which goroutine executes each reader cell
// and tag range, never what they compute or which stream they draw.
func RunParallel(sc Scenario, seed uint64, workers int) (*NetResult, error) {
	return run(sc, seed, workers, nil, nil)
}

// ResolveWorkers maps the CLI convention (<= 0 means one worker per
// CPU) to a concrete engine worker count.
func ResolveWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

func run(sc Scenario, seed uint64, workers int, probe roundProbe, st *streamer) (*NetResult, error) {
	sc.ApplyDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	workers = ResolveWorkers(workers)
	// One random tree, split in fixed order; every source below is
	// always split even when unused (a static run still splits the
	// mobility source) so the per-tag streams never depend on which
	// features are enabled beyond the scenario itself.
	root := simrand.New(seed)
	placeSrc := root.Split()    //fdlint:serial
	trafficSrc := root.Split()  //fdlint:serial
	slotSrc := root.Split()     //fdlint:serial
	mobilitySrc := root.Split() //fdlint:serial

	readers := PlaceReaders(sc.Readers)
	positions, err := PlaceTags(sc.Topology, sc.Tags, sc.RadiusM, sc.Clusters, sc.ClusterSpreadM, readers, placeSrc)
	if err != nil {
		return nil, err
	}

	params := mac.Params{
		PayloadBytes:   sc.PayloadBytes,
		ChunkBytes:     sc.ChunkBytes,
		AbortThreshold: sc.AbortThreshold,
		BackoffChunks:  sc.BackoffChunks,
		MaxAttempts:    sc.MaxAttempts,
	}
	chunkAir := int64(params.ChunkAirBytes())
	// A whole-frame attempt on air, for collision cost accounting.
	frameAir := int64(params.FrameAirBytes())
	// Collision cost: a full-duplex reader sees the feedback margin
	// collapse and aborts within AbortThreshold chunks; a half-duplex
	// protocol only learns at the missing end-of-frame ACK, so the whole
	// attempt is burned.
	collisionCost := frameAir
	if sc.Protocol == "full-duplex" {
		collisionCost = int64(params.HeaderAirBytes()) + int64(sc.AbortThreshold)*chunkAir
		// Detection can never cost more than the frame it interrupts.
		if collisionCost > frameAir {
			collisionCost = frameAir
		}
	}

	R := len(readers)
	e := &engine{
		sc:             sc,
		pl:             channel.NewLogDistance(sc.FreqHz, sc.PathLossExp),
		rate:           rateadapt.RateSpec{Name: "1x", Mult: 1, ReqSNRdB: sc.ReqSNRdB},
		readers:        readers,
		rstats:         make([]ReaderStats, R),
		tags:           newTagState(sc.Tags),
		gains:          make([]float64, sc.Tags*R),
		tagsByReader:   make([]int32, sc.Tags),
		readerOff:      make([]int32, R+1),
		readerFill:     make([]int32, R),
		tdm:            sc.Readers.Scheduling == SchedulingTDM,
		analytic:       sc.Analytic,
		params:         params,
		slotChoice:     make([]int32, sc.Tags),
		harvest:        make([]float64, sc.Tags),
		secondsPerByte: 8 / sc.BitRateBps,
		chunkAir:       chunkAir,
		collisionCost:  collisionCost,
		activeCells:    make([]int32, 0, R),
		cellContenders: make([]int32, R),
		cellAcc:        make([]cellAcc, R),
		activeReader:   -1,
	}
	if !e.tdm {
		e.couplingW = math.Pow(10, -sc.Readers.IsolationdB/10)
	}
	for r := range e.rstats {
		e.rstats[r] = ReaderStats{ID: r, X: readers[r].X, Y: readers[r].Y}
	}
	t := &e.tags
	t.pos = positions
	// The only serial part of per-tag setup is the root draw order: two
	// words per tag, in tag index order — the exact root sequence of the
	// serial engine. Park them in the loss-stream columns; initShard
	// expands each pair into the tag's full stream tree in parallel.
	for i := 0; i < sc.Tags; i++ {
		t.lossHi[i] = root.Uint64()
		t.lossLo[i] = root.Uint64()
	}
	if sc.RateAdapt.enabled() {
		// The fading streams are hashed off the run seed, not split
		// from the tree: enabling adaptation must not shift the streams
		// the static engine draws. The loss draws themselves ride each
		// tag's existing loss stream.
		e.fade = newFadeState(sc.RateAdapt, sc.Tags, seed)
	}
	if sc.Congestion.enabled() {
		e.cong = newCongState(sc.Congestion, sc.Tags, sc.QueueCap)
	}
	if sc.Readers.Policy != PolicyAloha {
		e.sched = newSchedState(sc.Readers, sc.Tags)
	}
	// The fault stream is hashed off the run seed (the fadeSeed
	// pattern), not split from the tree: enabling faults must not shift
	// any stream the fault-free engine draws. It stays serial — every
	// transition happens between rounds on this goroutine.
	var faultSrc *simrand.Source
	if sc.Faults.enabled() {
		e.flt = newFaultState(sc.Faults, sc.Tags, R)
		faultSrc = simrand.New(faultSeed(seed)) //fdlint:serial
	}
	e.pool.start(e, workers)
	defer e.pool.stop()
	e.pool.dispatch(phaseInit)
	e.deriveLinks()

	var walk *waypointWalk
	if sc.Mobility.enabled() {
		walk = newWaypointWalk(sc.Tags, sc.RadiusM, sc.Mobility.StepM, mobilitySrc)
	}

	res := &NetResult{Scenario: sc, Seed: seed}
	epochLen := sc.Mobility.EpochRounds
	// A closed-loop run is done once every live queue drained at the end
	// of the previous round; the settlement phase maintains the flag.
	anyQueued := true
	if st != nil {
		st.init(e)
	}

	for round := 0; round < sc.MaxRounds; round++ {
		if st != nil {
			// Streaming runs are cancellable between rounds: a client
			// disconnect (or service shutdown) aborts here, before any
			// further work, and the engine tears down cleanly through
			// the deferred pool stop.
			if err := st.ctx.Err(); err != nil {
				return nil, err
			}
		}
		if sc.OfferedLoad == 0 && !anyQueued {
			// Check before counting the round so Rounds reports only
			// rounds that actually opened a window.
			break
		}
		res.Rounds = round + 1
		e.curRound = round
		if round%epochLen == 0 {
			if walk != nil && round > 0 {
				walk.advance(t.pos)
				e.deriveLinks()
			}
			if e.tdm {
				e.activeReader = (round / epochLen) % R
			}
		}
		if e.flt != nil {
			// Fault transitions happen serially before the round opens:
			// recoveries and outages may re-derive links (tags
			// re-associate to the strongest surviving carrier), churned
			// tags flush their backlog, and the per-cell interference
			// view refreshes.
			e.flt.step(e, round, faultSrc)
		}
		e.buildActiveCells()

		// Open-loop arrivals. Policy: the Poisson draw happens for every
		// tag, dead or alive, so one tag's death never shifts the arrival
		// stream the others see; a dead tag's frames are simply not
		// offered — it can neither queue nor deliver them, and counting
		// them would deflate DeliveryRate with traffic that never existed
		// for the MAC.
		if sc.OfferedLoad > 0 {
			for i := 0; i < sc.Tags; i++ {
				k := trafficSrc.Poisson(sc.OfferedLoad)
				if !t.alive[i] {
					continue
				}
				if e.flt != nil && e.flt.dormant[i] {
					// A churned-away tag generates no traffic while gone
					// (the draw above still happened, so its return never
					// shifts the arrival stream the others see).
					continue
				}
				t.stats[i].FramesOffered += k
				free := int32(sc.QueueCap) - t.queue[i]
				if free < 0 {
					// A retx re-admission can push the queue one past the
					// cap transiently; never let arrivals "fill" a
					// negative gap.
					free = 0
				}
				if int32(k) > free {
					t.stats[i].FramesDropped += k - int(free)
					k = int(free)
				}
				if s := e.sched; s != nil && t.queue[i] == 0 && k > 0 {
					s.backlogSince[i] = int32(round)
				}
				t.queue[i] += int32(k)
			}
		}

		if e.sched != nil && e.sched.policy == PolicyDeadline {
			e.dropDeadlines(round)
		}
		if e.cong != nil {
			// Congestion pass (parallel over tag shards): RTO expiry,
			// retx re-admission, and the pacing gate set each tag's
			// contention eligibility for this round.
			e.pool.dispatch(phaseCong)
		}

		// Phase A (serial): slot draws, cell by cell in reader order —
		// exactly the stream order the serial engine consumed, since
		// window execution never touches slotSrc.
		e.drawSlots(slotSrc)

		// Phase B (parallel): one contention window per active cell.
		// Independent channels run concurrently, so the wall clock
		// advances by the longest window; under TDM only one reader
		// transmits. Cells shard across workers; each cell touches only
		// its own tags and per-cell accumulator.
		e.pool.dispatch(phaseWindows)
		var roundBytes int64
		for ci := range e.activeCells {
			acc := &e.cellAcc[ci]
			if acc.windowBytes > roundBytes {
				roundBytes = acc.windowBytes
			}
			res.IdleSlots += acc.idleSlots
			res.SingletonSlots += acc.singletonSlots
			res.CollisionSlots += acc.collisionSlots
			res.CollisionBytes += acc.collisionBytes
			res.GoodputBytes += acc.goodputBytes
			// Hotspot bookkeeping (serial, cell order): a cell whose
			// window occupancy first crosses satOnsetFrac marks its
			// saturation onset; the first later round back at or below
			// satRecoveryFrac marks recovery.
			rs := &e.rstats[e.activeCells[ci]]
			occ := float64(acc.singletonSlots+acc.collisionSlots) / float64(sc.ContentionWindow)
			switch {
			case rs.SaturationOnset == 0:
				if occ >= satOnsetFrac {
					rs.SaturationOnset = round + 1
				}
			case rs.RecoveryRound == 0:
				if occ <= satRecoveryFrac {
					rs.RecoveryRound = round + 1
				}
			}
		}

		// Phase C (parallel): settle every tag's energy budget over the
		// round in one step — the idle draw plus, for transmitters, the
		// per-frame transmit energy spread over the round, harvesting the
		// incident carriers reduced by the rho/2 Manchester-duty
		// reflection loss during their transmit time. Under TDM a tag
		// harvests only the single active carrier from wherever it
		// stands; under independent scheduling every carrier contributes.
		res.ElapsedBytes += roundBytes
		e.settleDt = float64(roundBytes) * e.secondsPerByte
		e.settleNow = float64(res.ElapsedBytes) * e.secondsPerByte
		e.pool.anyQueued.Store(false)
		e.pool.dispatch(phaseSettle)
		anyQueued = e.pool.anyQueued.Load()

		if probe != nil {
			probe(round, e.settleDt, roundState{
				txCount: t.txCount, txDt: t.txDt, alive: t.alive, harvestW: e.harvest,
				queue: t.queue, stats: t.stats, cong: e.cong,
			})
		}
		clear(t.txCount)
		clear(t.txDt)

		if st != nil {
			// Observation only: the snapshot reads settled state and
			// consumes no randomness, so streaming never perturbs the
			// batch byte-identity contract. A sink error (the client
			// hung up mid-write) aborts exactly like a cancellation.
			if err := st.observe(e, res, round); err != nil {
				return nil, err
			}
		}
	}

	res.SimulatedS = float64(res.ElapsedBytes) * e.secondsPerByte
	// Drain phase (parallel): per-tag finalisation writes stats in
	// place; the engine is discarded after the run, so the result owns
	// the stats array without a copy.
	e.res = res
	e.pool.dispatch(phaseDrain)
	res.Tags = t.stats
	// Scalar aggregation stays serial in tag order: the integer sums are
	// order-independent but adaptInvMult is a float accumulation whose
	// value depends on order — it must match the serial engine exactly.
	for i := 0; i < sc.Tags; i++ {
		ts := &t.stats[i]
		if e.fade != nil {
			f := e.fade
			res.RateSwitches += f.switches[i]
			res.AdaptChunks += f.chunks[i]
			res.AdaptLagChunks += f.lag[i]
			res.adaptInvMult += f.invMult[i]
		}
		if c := e.cong; c != nil {
			res.Timeouts += int64(c.timeouts[i])
			res.Retransmissions += int64(c.retxCount[i])
			res.RetxDropped += int64(c.retxDrops[i])
			res.cwndSum += c.cwnd[i]
		}
		res.FramesOffered += int64(ts.FramesOffered)
		res.FramesDelivered += int64(ts.FramesDelivered)
		res.FramesDropped += int64(ts.FramesDropped)
		// Per-reader drain by final association: residual queue depth
		// (the backlog the run left stranded) and the congestion
		// timeouts the reader's cell inflicted.
		rs := &e.rstats[t.reader[i]]
		rs.QueueDepth += int64(t.queue[i])
		if c := e.cong; c != nil {
			rs.QueueDepth += int64(c.retxQ[i])
			rs.Timeouts += int64(c.timeouts[i])
		}
	}
	for r := range e.rstats {
		e.rstats[r].AssociatedTags = int(e.readerOff[r+1] - e.readerOff[r])
		if f := e.flt; f != nil {
			e.rstats[r].OutageRounds = int(f.outageRounds[r])
			e.rstats[r].InterferenceRounds = int(f.interfRounds[r])
		}
		res.Readers = append(res.Readers, e.rstats[r])
	}
	return res, nil
}

// Hotspot thresholds: a reader cell is saturated when its window
// occupancy (non-idle slots over the contention window) reaches
// satOnsetFrac, and has recovered once it falls back to
// satRecoveryFrac — the hysteresis keeps a cell hovering at the knee
// from toggling.
const (
	satOnsetFrac    = 0.95
	satRecoveryFrac = 0.5
)

// buildActiveCells refreshes the list of reader cells the current round
// opens. Cheap (R <= 64); called every round. Part of the round loop
// guarded by TestRoundLoopAllocFree.
//
//fdlint:noalloc
func (e *engine) buildActiveCells() {
	e.activeCells = e.activeCells[:0]
	for r := range e.readers {
		if e.activeReader >= 0 && r != e.activeReader {
			continue
		}
		if e.flt != nil && e.flt.down[r] {
			// An outaged reader opens no window; its tags either
			// re-associated at the outage edge or (when every reader is
			// down) wait it out.
			continue
		}
		e.activeCells = append(e.activeCells, int32(r))
	}
}

// contends reports whether tag i contends for a slot this round: alive
// with a backlog, not churned away, and (under congestion control)
// granted eligibility by this round's congestion pass. With every
// optional layer disabled this reduces exactly to the alive && queued
// check the pre-congestion engine made.
//
//fdlint:noalloc
func (e *engine) contends(i int32) bool {
	t := &e.tags
	if !t.alive[i] || t.queue[i] == 0 {
		return false
	}
	if e.flt != nil && e.flt.dormant[i] {
		return false
	}
	if e.cong != nil && !e.cong.eligible[i] {
		return false
	}
	return true
}

// drawSlots draws every contender's slot for each active cell, in cell
// order then tag index order within the cell's association list — the
// exact slotSrc sequence of the serial engine. Contender counts are
// recorded per cell so the window phase can reproduce the slot
// histogram without re-reading slotSrc. Part of the round loop guarded
// by TestRoundLoopAllocFree.
//
//fdlint:noalloc
func (e *engine) drawSlots(slotSrc *simrand.Source) {
	cw := e.sc.ContentionWindow
	for ci, r := range e.activeCells {
		contenders := int32(0)
		for _, i := range e.cellTags(int(r)) {
			if !e.contends(i) {
				continue
			}
			if e.sched == nil {
				// Policy-scheduled cells grant slots instead of drawing
				// them, so the slot stream is only consumed under ALOHA.
				e.slotChoice[i] = int32(slotSrc.IntN(cw))
			}
			contenders++
		}
		e.cellContenders[ci] = contenders
	}
}

// cellTags returns reader r's association list (tag indices in tag
// order).
//
//fdlint:noalloc
func (e *engine) cellTags(r int) []int32 {
	return e.tagsByReader[e.readerOff[r]:e.readerOff[r+1]]
}

// deriveLinks recomputes, for the current tag positions, every gain,
// the strongest-carrier association, and each tag's forward chunk-loss
// probability and feedback BER — using exactly the calibrations the
// point-to-point link experiments use. The per-tag geometry work shards
// across workers (each tag's derivation is independent); the CSR
// association index is then rebuilt serially in tag order, so cell
// iteration order — and therefore the slot-draw stream — never depends
// on sharding. Called once for static deployments and once per epoch
// under mobility.
func (e *engine) deriveLinks() {
	e.pool.dispatch(phaseDerive)

	t := &e.tags
	R := len(e.readers)
	clear(e.readerFill)
	for i := 0; i < t.len(); i++ {
		e.readerFill[t.reader[i]]++
	}
	off := int32(0)
	for r := 0; r < R; r++ {
		e.readerOff[r] = off
		off += e.readerFill[r]
		e.readerFill[r] = e.readerOff[r]
	}
	e.readerOff[R] = off
	for i := 0; i < t.len(); i++ {
		r := t.reader[i]
		e.tagsByReader[e.readerFill[r]] = int32(i)
		e.readerFill[r]++
	}
}

// initShard is the parallel body of per-tag setup for tags [lo, hi):
// energy budget, queue preload, stream-seed expansion, and the fade
// row. Each tag's state is a pure function of the two root words parked
// in its loss columns (plus the scenario), so the result is identical
// however the ranges are sharded. Budget and stats fields are assigned
// individually — the fresh slices are already zero, so whole-struct
// literals would only re-clear memory the allocator cleared.
//
//fdlint:parallel
//fdlint:noalloc
func (e *engine) initShard(w *netWorker, lo, hi int) {
	sc := &e.sc
	t := &e.tags
	// seedSrc replays the per-tag split sequence of the array-of-structs
	// engine draw for draw: root.Split() made the tag source (its state
	// is the two root words), NewIIDLoss split the loss stream off it,
	// and a second split made the protocol stream.
	seedSrc := w.lossSrc
	for i := lo; i < hi; i++ {
		t.alive[i] = true
		b := &t.budget[i]
		b.Harvester.Efficiency = sc.HarvesterEff
		b.Harvester.SensitivityW = sc.HarvesterFloorW
		b.Cap.CapacitanceF = sc.CapacitanceF
		b.CircuitW = sc.IdleCircuitW
		b.Cap.SetVoltage(sc.StartVoltageV)
		t.stats[i].ID = i
		seedSrc.SetState(t.lossHi[i], t.lossLo[i])
		t.lossHi[i], t.lossLo[i] = seedSrc.Uint64(), seedSrc.Uint64()
		t.protoHi[i], t.protoLo[i] = seedSrc.Uint64(), seedSrc.Uint64()
		if sc.OfferedLoad == 0 {
			t.queue[i] = int32(sc.FramesPerTag)
			t.stats[i].FramesOffered = sc.FramesPerTag
		}
		if e.fade != nil {
			e.fade.initRow(i, seedSrc)
		}
	}
}

// deriveShard is the parallel body of deriveLinks for tags [lo, hi).
//
//fdlint:parallel
//fdlint:noalloc
func (e *engine) deriveShard(lo, hi int) {
	sc := &e.sc
	t := &e.tags
	R := len(e.readers)
	// Under faults, outaged readers stop carrying: they are excluded
	// from association, harvest and interference until they recover
	// (mask is nil when every reader is down — nothing to associate to,
	// so association falls back to geometry and the cells stay closed).
	var downMask []bool
	if e.flt != nil {
		downMask = e.flt.mask()
	}
	for i := lo; i < hi; i++ {
		base := i * R
		best, bestG := 0, -1.0
		sumW := 0.0
		px, py := t.pos[i].X, t.pos[i].Y
		for r := 0; r < R; r++ {
			g := e.pl.Gain(math.Hypot(px-e.readers[r].X, py-e.readers[r].Y))
			e.gains[base+r] = g
			if downMask != nil && downMask[r] {
				continue
			}
			sumW += sc.TxPowerW * g
			if g > bestG {
				best, bestG = r, g
			}
		}
		t.reader[i] = int32(best)
		t.carrierW[i] = sc.TxPowerW * bestG
		t.harvestW[i] = sumW

		// Inter-reader interference: under independent scheduling the
		// other carriers leak through the channel isolation into this
		// tag's noise floor every round. Under TDM neighbours are never
		// active in the same epoch, so nothing is added.
		noiseW := sc.NoiseW + e.couplingW*(sumW-t.carrierW[i])

		// Forward link: SNR at the tag sets the chunk-loss cliff exactly
		// as the rate-adaptation channel model does.
		snrDB := 10 * math.Log10(t.carrierW[i]/noiseW)
		lossP := rateadapt.ChunkLossProb(e.rate, snrDB)
		// Reverse link: the backscattered feedback rides a round-trip
		// channel; its BER follows the Manchester decoder prediction with
		// the same calibration as the waveform feedback experiments
		// (normalised separation g*sqrt(rho), noise referred to the
		// transmit envelope).
		delta := bestG * math.Sqrt(sc.Rho)
		sigma := math.Sqrt(noiseW/2) / math.Sqrt(sc.TxPowerW)
		fbBER := feedback.ManchesterBER(delta, sigma, sc.FeedbackSamplesPerBit)

		t.lossP[i] = lossP
		t.fbBER[i] = fbBER
		if e.fade != nil {
			// Under rate adaptation a mobility epoch re-derives the
			// fading MEAN; the small-scale Gauss-Markov state persists,
			// so motion shifts the channel without resetting it.
			e.fade.meanSNR[i] = snrDB
		}
		ts := &t.stats[i]
		ts.Reader = best
		ts.X, ts.Y = px, py
		ts.DistanceM = math.Hypot(px-e.readers[best].X, py-e.readers[best].Y)
		ts.SNRdB = snrDB
		ts.ChunkLossProb = lossP
		ts.FeedbackBER = fbBER
	}
}

// settleShard is the parallel body of the energy settlement for tags
// [lo, hi). Each tag settles independently; the only cross-tag output
// is the anyQueued flag, which is a monotonic OR (order-free).
//
//fdlint:parallel
//fdlint:noalloc
func (e *engine) settleShard(lo, hi int) {
	sc := &e.sc
	t := &e.tags
	R := len(e.readers)
	dt := e.settleDt
	queued := false
	for i := lo; i < hi; i++ {
		harvestW := t.harvestW[i]
		if e.activeReader >= 0 {
			harvestW = sc.TxPowerW * e.gains[i*R+e.activeReader]
			if e.flt != nil && e.flt.down[e.activeReader] {
				harvestW = 0 // the epoch's only carrier is out
			}
		}
		circuitW := sc.IdleCircuitW
		if dt > 0 {
			if t.txDt[i] > 0 {
				_, during := energy.SplitIncident(harvestW, sc.Rho/2)
				harvestW -= (harvestW - during) * (t.txDt[i] / dt)
			}
			circuitW += float64(t.txCount[i]) * sc.TxEnergyJ / dt
		}
		e.harvest[i] = harvestW
		b := &t.budget[i]
		b.CircuitW = circuitW
		ok := b.Step(harvestW, dt)
		b.CircuitW = sc.IdleCircuitW
		if !ok && t.alive[i] {
			t.alive[i] = false
			t.dieTime[i] = e.settleNow
		}
		if t.alive[i] && (t.queue[i] > 0 || (e.cong != nil && e.cong.retxQ[i] > 0)) {
			// Parked retransmissions count as pending work: a closed-loop
			// run must not terminate while frames sit in backoff.
			queued = true
		}
	}
	if queued {
		e.pool.anyQueued.Store(true)
	}
}

// drainShard is the parallel body of the end-of-run finalisation for
// tags [lo, hi): adaptation stats, outage, lifetime.
//
//fdlint:parallel
//fdlint:noalloc
func (e *engine) drainShard(lo, hi int) {
	t := &e.tags
	sim := e.res.SimulatedS
	for i := lo; i < hi; i++ {
		ts := &t.stats[i]
		if f := e.fade; f != nil {
			nr := f.nr
			ts.RateChunks = f.rateChunks[i*nr : (i+1)*nr : (i+1)*nr]
			ts.RateLostChunks = f.rateLost[i*nr : (i+1)*nr : (i+1)*nr]
			ts.RateSwitches = f.switches[i]
			ts.AdaptChunks = f.chunks[i]
			ts.AdaptLagChunks = f.lag[i]
			if f.invMult[i] > 0 {
				ts.MeanRateMult = float64(f.chunks[i]) / f.invMult[i]
			}
		}
		if c := e.cong; c != nil {
			ts.Timeouts = int(c.timeouts[i])
			ts.Retransmissions = int(c.retxCount[i])
			ts.RetxDropped = int(c.retxDrops[i])
			ts.CwndFinal = c.cwnd[i]
			if c.srtt[i] > 0 {
				ts.SRTTRounds = c.srtt[i]
			}
		}
		ts.OutageFraction = t.budget[i].OutageFraction()
		ts.Alive = t.alive[i]
		if t.alive[i] {
			ts.LifetimeS = sim
		} else {
			ts.LifetimeS = t.dieTime[i]
		}
	}
}

// runFrame pushes one frame of tag i through the scenario's MAC
// protocol on worker w's reused protocol instances, loading the tag's
// stream state into the worker's scratch sources around the exchange.
// Full duplex draws a fresh seed per transmission so feedback-decoding
// randomness is independent across frames (the protocol reseeds its
// internal source on every Run call). Part of the round loop guarded by
// TestRoundLoopAllocFree and TestShardedRoundLoopAllocFree.
//
//fdlint:parallel
//fdlint:noalloc
func (e *engine) runFrame(w *netWorker, i int32) mac.Result {
	t := &e.tags
	w.lossSrc.SetState(t.lossHi[i], t.lossLo[i])
	w.iid.P = t.lossP[i]
	extraP := 0.0
	if f := e.flt; f != nil {
		// An interference burst on this cell composes into the forward
		// chunk loss: a chunk survives only if it clears both the
		// geometric loss and the burst.
		extraP = f.cellLoss[t.reader[i]]
		if extraP > 0 {
			w.iid.P += (1 - w.iid.P) * extraP
		}
	}
	var loss mac.Loss = w.iid
	if e.fade != nil {
		w.fv.bind(int(i))
		w.fv.beginFrame()
		w.fv.extraP = extraP
		loss = &w.fv
	}
	w.params.FeedbackBER = t.fbBER[i]
	var mr mac.Result
	switch e.sc.Protocol {
	case "stop-and-wait":
		w.sw.P = w.params
		mr = w.sw.Run(1, loss)
	case "block-ack":
		w.ba.P = w.params
		mr = w.ba.Run(1, loss)
	default:
		w.protoSrc.SetState(t.protoHi[i], t.protoLo[i])
		w.fd.P = w.params
		w.fd.Seed = w.protoSrc.Uint64()
		t.protoHi[i], t.protoLo[i] = w.protoSrc.State()
		mr = w.fd.Run(1, loss)
	}
	t.lossHi[i], t.lossLo[i] = w.lossSrc.State()
	return mr
}

// runWindowCell executes one reader's contention window for the current
// round on worker w. The slot draws already happened serially
// (drawSlots); this rebuilds the slot histogram from the recorded
// choices — the contender set cannot have changed in between, since
// only this cell's execution touches its tags' queues and deaths settle
// at round end — and then executes the slots exactly as the serial
// engine did. Everything written here is owned by the cell: its tags'
// columns, its reader's stats, its cellAcc entry. Part of the round
// loop guarded by TestRoundLoopAllocFree and
// TestShardedRoundLoopAllocFree.
//
//fdlint:parallel
//fdlint:noalloc
func (e *engine) runWindowCell(w *netWorker, ci int) {
	if e.sched != nil {
		e.runPolicyCell(w, ci)
		return
	}
	acc := &e.cellAcc[ci]
	*acc = cellAcc{}
	cw := e.sc.ContentionWindow
	if e.cellContenders[ci] == 0 {
		// Nothing to send in this cell: the whole window elapses idle.
		acc.idleSlots = int64(cw)
		acc.windowBytes = int64(cw) * e.chunkAir
		return
	}
	r := int(e.activeCells[ci])
	t := &e.tags
	idxs := e.cellTags(r)
	count := w.slotCount[:cw]
	winner := w.slotWinner[:cw]
	for s := range count {
		count[s] = 0
	}
	for _, i := range idxs {
		if !e.contends(i) {
			continue
		}
		s := e.slotChoice[i]
		count[s]++
		winner[s] = i
	}
	// Attribute collisions before slots execute (the contender set is
	// exactly the set that drew; queues change only below). A colliding
	// tag was on air until the reader shut the slot down, so it pays the
	// transmit energy for that airtime at round-end settlement just like
	// a singleton winner does — the frame itself stays queued.
	for _, i := range idxs {
		if !e.contends(i) {
			continue
		}
		if count[e.slotChoice[i]] > 1 {
			t.stats[i].Collisions++
			t.txCount[i]++
			t.txDt[i] += float64(e.collisionCost) * e.secondsPerByte
		}
	}

	var rb int64
	rs := &e.rstats[r]
	for s := 0; s < cw; s++ {
		switch count[s] {
		case 0:
			acc.idleSlots++
			rb += e.chunkAir // empty slots are short: one chunk-time
		case 1:
			acc.singletonSlots++
			rs.SingletonSlots++
			rb += e.serveSlot(w, acc, rs, winner[s])
		default:
			acc.collisionSlots++
			rs.CollisionSlots++
			acc.collisionBytes += e.collisionCost
			rb += e.collisionCost
		}
	}
	acc.windowBytes = rb
}

// serveSlot carries tag i's head-of-line frame through one singleton
// slot — the MAC exchange, queue movement, delivery accounting, and
// the congestion controller's delivery/failure feedback — and returns
// the slot's elapsed byte-time. Shared by the ALOHA and
// policy-scheduled window paths; everything written is owned by the
// calling cell. Part of the round loop guarded by
// TestRoundLoopAllocFree and TestShardedRoundLoopAllocFree.
//
//fdlint:parallel
//fdlint:noalloc
func (e *engine) serveSlot(w *netWorker, acc *cellAcc, rs *ReaderStats, i int32) int64 {
	t := &e.tags
	var mr mac.Result
	var elapsed, air int64
	if e.analytic {
		mr = e.analyticFrame(w, i)
		elapsed, air = mr.ElapsedBytes, mr.AirtimeBytes
	} else {
		mr = e.runFrame(w, i)
		elapsed, air = mr.ElapsedBytes, mr.AirtimeBytes
		if e.fade != nil {
			// A chunk at rate multiplier m occupies chunkAir/m
			// byte-times: shift the exchange's clock and airtime
			// by the rates the adapter actually used, and deliver
			// the end-of-frame verdict the frame-probing policies
			// learn from.
			extra := w.fv.frameExtraBytes(e.chunkAir)
			elapsed += extra
			air += extra
			w.fv.endFrame(mr.FramesDelivered == 1)
			w.fv.unbind()
		}
	}
	t.queue[i]--
	t.stats[i].AirtimeBytes += air
	t.stats[i].MACAttempts += mr.Attempts
	if mr.FramesDelivered == 1 {
		t.stats[i].FramesDelivered++
		rs.FramesDelivered++
		acc.goodputBytes += mr.GoodputBytes
		if c := e.cong; c != nil {
			c.onDelivery(int(i), e.curRound)
		}
	} else if c := e.cong; c != nil {
		// MAC-attempt exhaustion is a loss event: the frame parks on
		// the retx queue under multiplicative decrease and backoff
		// instead of hammering the cell again next round.
		c.lossEvent(int(i), e.curRound)
		c.park(w, t, int(i), e.curRound)
	} else {
		// Undelivered after MaxAttempts: re-queue for a later
		// round (unless the open-loop queue refilled).
		if int(t.queue[i]) < e.sc.QueueCap {
			t.queue[i]++
		} else {
			t.stats[i].FramesDropped++
		}
	}
	if s := e.sched; s != nil && t.queue[i] > 0 {
		// The departed head exposes the next frame; it starts aging
		// from the round it became head.
		s.backlogSince[i] = int32(e.curRound)
	}
	// Energy is settled once at round end; record how long this
	// tag spent transmitting so its harvest and draw can be
	// adjusted there.
	t.txCount[i]++
	t.txDt[i] += float64(elapsed) * e.secondsPerByte
	return elapsed
}

// String summarises a run for logs.
func (r *NetResult) String() string {
	return fmt.Sprintf("%s: %d tags, %d readers, %d rounds, delivered %d/%d, thrpt=%.3f, coll=%.3f, alive=%.2f",
		r.Scenario.Name, len(r.Tags), len(r.Readers), r.Rounds, r.FramesDelivered, r.FramesOffered,
		r.Throughput(), r.CollisionFraction(), r.AliveFraction())
}
