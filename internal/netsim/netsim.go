// Package netsim is the multi-tag network scenario engine: it composes
// the point-to-point layers (channel path loss, packet-level MAC
// protocols, the feedback channel's BER model, the rate table's loss
// cliff, and the tag energy budget) into configurable deployments of N
// tags contending under one reader.
//
// A deployment is declared as data (Scenario, loadable from JSON or a
// built-in preset) and executed by Run: tags are placed by a named
// topology, each tag's forward chunk-loss probability and feedback BER
// derive from its geometry exactly the way the calibrated link
// experiments derive theirs, and medium access is framed slotted ALOHA
// — each inventory round opens a contention window, singleton slots
// carry one frame through the configured MAC protocol, collision slots
// burn airtime that depends on whether the protocol can detect the
// collision early (the paper's full-duplex advantage at network scale).
//
// Determinism: a run is a pure function of (Scenario, seed). All
// randomness flows from one simrand tree split in a fixed order, the
// engine is single-goroutine, and tags are iterated by index — so runs
// embed directly as cells in the bench worker pool with byte-identical
// output at any worker count.
package netsim

import (
	"fmt"
	"math"

	"repro/internal/channel"
	"repro/internal/energy"
	"repro/internal/feedback"
	"repro/internal/mac"
	"repro/internal/rateadapt"
	"repro/internal/simrand"
)

// tagNode is the engine's per-tag state.
type tagNode struct {
	incidentW float64 // carrier power at the tag antenna (constant per run)
	params    mac.Params
	queue     int // frames awaiting delivery
	budget    energy.Budget
	loss      mac.Loss
	protoSrc  *simrand.Source // fresh protocol seed per transmission
	stats     TagStats
	alive     bool
	dieTime   float64 // seconds at death, for lifetime stats
	// Per-round accumulators for energy accounting.
	txCount int     // frames transmitted this round
	txDt    float64 // seconds spent transmitting this round
}

// newProto builds the scenario's MAC protocol instance for one frame
// transmission. Full duplex draws a fresh seed per transmission so
// feedback-decoding randomness is independent across frames (the
// protocol reseeds its internal source on every Run call).
func (n *tagNode) newProto(protocol string) mac.Protocol {
	switch protocol {
	case "stop-and-wait":
		return &mac.StopAndWait{P: n.params}
	case "block-ack":
		return &mac.BlockACK{P: n.params}
	default:
		return &mac.FullDuplex{P: n.params, Seed: n.protoSrc.Uint64()}
	}
}

// TagStats reports one tag's outcome.
type TagStats struct {
	// ID indexes the tag in placement order.
	ID int
	// X, Y, DistanceM locate the tag (reader at origin).
	X, Y, DistanceM float64
	// SNRdB is the forward-link SNR at the tag.
	SNRdB float64
	// ChunkLossProb and FeedbackBER are the geometry-derived link
	// qualities the MAC saw.
	ChunkLossProb, FeedbackBER float64
	// FramesOffered counts frames entering the queue; FramesDelivered
	// the ones the MAC carried; FramesDropped the open-loop arrivals
	// lost to a full queue.
	FramesOffered, FramesDelivered, FramesDropped int
	// Collisions counts contention slots this tag lost to a collision.
	Collisions int
	// AirtimeBytes is the tag's share of transmitted airtime.
	AirtimeBytes int64
	// OutageFraction is the fraction of simulated time spent browned
	// out; Alive is the final state; LifetimeS is the time of death
	// (total simulated time when the tag survived).
	OutageFraction float64
	Alive          bool
	LifetimeS      float64
}

// NetResult aggregates one scenario run.
type NetResult struct {
	// Scenario echoes the (defaulted) scenario that ran.
	Scenario Scenario
	// Seed echoes the run seed.
	Seed uint64
	// Tags holds per-tag outcomes in placement order.
	Tags []TagStats
	// Rounds actually executed.
	Rounds int
	// FramesOffered / FramesDelivered / FramesDropped sum over tags.
	FramesOffered, FramesDelivered, FramesDropped int64
	// GoodputBytes is payload delivered across the cell.
	GoodputBytes int64
	// ElapsedBytes is the shared-medium clock: every slot, frame, and
	// backoff advances it (bytes on air at the base rate).
	ElapsedBytes int64
	// IdleSlots / SingletonSlots / CollisionSlots classify contention
	// slots.
	IdleSlots, SingletonSlots, CollisionSlots int64
	// CollisionBytes is airtime burned by collisions.
	CollisionBytes int64
	// SimulatedS is ElapsedBytes converted to seconds at the bit rate.
	SimulatedS float64
}

// DeliveryRate returns delivered frames over offered frames.
func (r *NetResult) DeliveryRate() float64 {
	if r.FramesOffered == 0 {
		return 0
	}
	return float64(r.FramesDelivered) / float64(r.FramesOffered)
}

// Throughput returns goodput bytes per elapsed byte-time on the shared
// medium — the cell's aggregate efficiency.
func (r *NetResult) Throughput() float64 {
	if r.ElapsedBytes == 0 {
		return 0
	}
	return float64(r.GoodputBytes) / float64(r.ElapsedBytes)
}

// CollisionFraction returns collision slots over non-idle slots.
func (r *NetResult) CollisionFraction() float64 {
	busy := r.SingletonSlots + r.CollisionSlots
	if busy == 0 {
		return 0
	}
	return float64(r.CollisionSlots) / float64(busy)
}

// AliveFraction returns the fraction of tags above brown-out at the end.
func (r *NetResult) AliveFraction() float64 {
	if len(r.Tags) == 0 {
		return 0
	}
	alive := 0
	for _, t := range r.Tags {
		if t.Alive {
			alive++
		}
	}
	return float64(alive) / float64(len(r.Tags))
}

// MeanLifetimeS returns the mean per-tag lifetime in seconds (survivors
// count the full simulated time).
func (r *NetResult) MeanLifetimeS() float64 {
	if len(r.Tags) == 0 {
		return 0
	}
	var sum float64
	for _, t := range r.Tags {
		sum += t.LifetimeS
	}
	return sum / float64(len(r.Tags))
}

// MeanSNRdB returns the population mean forward SNR.
func (r *NetResult) MeanSNRdB() float64 {
	if len(r.Tags) == 0 {
		return 0
	}
	var sum float64
	for _, t := range r.Tags {
		sum += t.SNRdB
	}
	return sum / float64(len(r.Tags))
}

// FairnessIndex returns Jain's fairness index over per-tag delivered
// frames: 1 when every tag got equal service, 1/N when one tag took
// everything.
func (r *NetResult) FairnessIndex() float64 {
	var sum, sumSq float64
	for _, t := range r.Tags {
		x := float64(t.FramesDelivered)
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	n := float64(len(r.Tags))
	return sum * sum / (n * sumSq)
}

// Run executes the scenario deterministically under the given seed.
func Run(sc Scenario, seed uint64) (*NetResult, error) {
	sc.ApplyDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	root := simrand.New(seed)
	placeSrc := root.Split()
	trafficSrc := root.Split()
	slotSrc := root.Split()

	positions, err := PlaceTags(sc.Topology, sc.Tags, sc.RadiusM, sc.Clusters, sc.ClusterSpreadM, placeSrc)
	if err != nil {
		return nil, err
	}

	pl := channel.NewLogDistance(sc.FreqHz, sc.PathLossExp)
	params := mac.Params{
		PayloadBytes:   sc.PayloadBytes,
		ChunkBytes:     sc.ChunkBytes,
		AbortThreshold: sc.AbortThreshold,
		BackoffChunks:  sc.BackoffChunks,
		MaxAttempts:    sc.MaxAttempts,
	}
	rate := rateadapt.RateSpec{Name: "1x", Mult: 1, ReqSNRdB: sc.ReqSNRdB}
	chunkAir := int64(params.ChunkAirBytes())
	// A whole-frame attempt on air, for collision cost accounting.
	frameAir := int64(params.FrameAirBytes())

	tags := make([]*tagNode, sc.Tags)
	for i, pos := range positions {
		d := pos.Distance()
		g := pl.Gain(d)
		// Forward link: SNR at the tag sets the chunk-loss cliff exactly
		// as the rate-adaptation channel model does.
		snrDB := 10 * math.Log10(sc.TxPowerW*g/sc.NoiseW)
		lossP := rateadapt.ChunkLossProb(rate, snrDB)
		// Reverse link: the backscattered feedback rides a round-trip
		// channel; its BER follows the Manchester decoder prediction with
		// the same calibration as the waveform feedback experiments
		// (normalised separation g*sqrt(rho), noise referred to the
		// transmit envelope).
		delta := g * math.Sqrt(sc.Rho)
		sigma := math.Sqrt(sc.NoiseW/2) / math.Sqrt(sc.TxPowerW)
		fbBER := feedback.ManchesterBER(delta, sigma, sc.FeedbackSamplesPerBit)

		p := params
		p.FeedbackBER = fbBER
		tagSrc := root.Split()
		n := &tagNode{
			incidentW: sc.TxPowerW * g, params: p, alive: true,
			budget: energy.Budget{
				Harvester: energy.Harvester{Efficiency: sc.HarvesterEff, SensitivityW: sc.HarvesterFloorW},
				Cap:       energy.Capacitor{CapacitanceF: sc.CapacitanceF},
				CircuitW:  sc.IdleCircuitW,
			},
			stats: TagStats{
				ID: i, X: pos.X, Y: pos.Y, DistanceM: d, SNRdB: snrDB,
				ChunkLossProb: lossP, FeedbackBER: fbBER,
			},
		}
		n.budget.Cap.SetVoltage(sc.StartVoltageV)
		n.loss = mac.NewIIDLoss(lossP, tagSrc)
		n.protoSrc = tagSrc.Split()
		if sc.OfferedLoad == 0 {
			n.queue = sc.FramesPerTag
			n.stats.FramesOffered = sc.FramesPerTag
		}
		tags[i] = n
	}

	res := &NetResult{Scenario: sc, Seed: seed}
	// Collision cost: a full-duplex reader sees the feedback margin
	// collapse and aborts within AbortThreshold chunks; a half-duplex
	// protocol only learns at the missing end-of-frame ACK, so the whole
	// attempt is burned.
	collisionCost := frameAir
	if sc.Protocol == "full-duplex" {
		collisionCost = int64(params.HeaderAirBytes()) + int64(sc.AbortThreshold)*chunkAir
		// Detection can never cost more than the frame it interrupts.
		if collisionCost > frameAir {
			collisionCost = frameAir
		}
	}

	secondsPerByte := 8 / sc.BitRateBps
	slotChoices := make([]int, sc.Tags)
	slotWinner := make([]int, sc.ContentionWindow)
	slotCount := make([]int, sc.ContentionWindow)

	for round := 0; round < sc.MaxRounds; round++ {
		res.Rounds = round + 1
		// Open-loop arrivals.
		if sc.OfferedLoad > 0 {
			for _, n := range tags {
				k := trafficSrc.Poisson(sc.OfferedLoad)
				n.stats.FramesOffered += k
				free := sc.QueueCap - n.queue
				if k > free {
					n.stats.FramesDropped += k - free
					k = free
				}
				n.queue += k
			}
		}

		// Contention: every alive tag with traffic picks a slot.
		for i := range slotWinner {
			slotWinner[i] = -1
			slotCount[i] = 0
		}
		contenders := 0
		for i, n := range tags {
			slotChoices[i] = -1
			if !n.alive || n.queue == 0 {
				continue
			}
			s := slotSrc.IntN(sc.ContentionWindow)
			slotChoices[i] = s
			slotCount[s]++
			slotWinner[s] = i
			contenders++
		}
		if contenders == 0 && sc.OfferedLoad == 0 {
			break // closed-loop run drained every queue
		}

		var roundBytes int64
		for s := 0; s < sc.ContentionWindow; s++ {
			switch {
			case slotCount[s] == 0:
				res.IdleSlots++
				roundBytes += chunkAir // empty slots are short: one chunk-time
			case slotCount[s] == 1:
				res.SingletonSlots++
				n := tags[slotWinner[s]]
				mr := n.newProto(sc.Protocol).Run(1, n.loss)
				n.queue--
				n.stats.AirtimeBytes += mr.AirtimeBytes
				roundBytes += mr.ElapsedBytes
				if mr.FramesDelivered == 1 {
					n.stats.FramesDelivered++
					res.GoodputBytes += mr.GoodputBytes
				} else {
					// Undelivered after MaxAttempts: re-queue for a later
					// round (unless the open-loop queue refilled).
					if n.queue < sc.QueueCap {
						n.queue++
					} else {
						n.stats.FramesDropped++
					}
				}
				// Energy is settled once at round end; record how long
				// this tag spent transmitting so its harvest and draw can
				// be adjusted there.
				n.txCount++
				n.txDt += float64(mr.ElapsedBytes) * secondsPerByte
			default:
				res.CollisionSlots++
				res.CollisionBytes += collisionCost
				roundBytes += collisionCost
				for i, n := range tags {
					if slotChoices[i] == s {
						n.stats.Collisions++
					}
				}
			}
		}

		// Settle every tag's energy budget over the round in one step:
		// the idle draw plus, for transmitters, the per-frame transmit
		// energy spread over the round, harvesting the carrier reduced
		// by the rho/2 Manchester-duty reflection loss during their
		// transmit time.
		res.ElapsedBytes += roundBytes
		dt := float64(roundBytes) * secondsPerByte
		now := float64(res.ElapsedBytes) * secondsPerByte
		for _, n := range tags {
			harvestW := n.incidentW
			circuitW := sc.IdleCircuitW
			if dt > 0 {
				if n.txDt > 0 {
					_, during := energy.SplitIncident(n.incidentW, sc.Rho/2)
					harvestW -= (n.incidentW - during) * (n.txDt / dt)
				}
				circuitW += float64(n.txCount) * sc.TxEnergyJ / dt
			}
			n.budget.CircuitW = circuitW
			ok := n.budget.Step(harvestW, dt)
			n.budget.CircuitW = sc.IdleCircuitW
			if !ok && n.alive {
				n.alive = false
				n.dieTime = now
			}
			n.txCount, n.txDt = 0, 0
		}
	}

	res.SimulatedS = float64(res.ElapsedBytes) * secondsPerByte
	for _, n := range tags {
		n.stats.OutageFraction = n.budget.OutageFraction()
		n.stats.Alive = n.alive
		if n.alive {
			n.stats.LifetimeS = res.SimulatedS
		} else {
			n.stats.LifetimeS = n.dieTime
		}
		res.FramesOffered += int64(n.stats.FramesOffered)
		res.FramesDelivered += int64(n.stats.FramesDelivered)
		res.FramesDropped += int64(n.stats.FramesDropped)
		res.Tags = append(res.Tags, n.stats)
	}
	return res, nil
}

// String summarises a run for logs.
func (r *NetResult) String() string {
	return fmt.Sprintf("%s: %d tags, %d rounds, delivered %d/%d, thrpt=%.3f, coll=%.3f, alive=%.2f",
		r.Scenario.Name, len(r.Tags), r.Rounds, r.FramesDelivered, r.FramesOffered,
		r.Throughput(), r.CollisionFraction(), r.AliveFraction())
}
