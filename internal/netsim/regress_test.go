package netsim

// Regression tests for the traffic-accounting bugs fixed alongside the
// multi-reader engine. Each test documents the pre-fix failure mode and
// fails on the pre-fix engine.

import (
	"strings"
	"testing"
)

// Pre-fix, the round loop kept drawing open-loop Poisson arrivals into
// dead tags' stats: FramesOffered grew for the whole horizon, deflating
// DeliveryRate with traffic the MAC never saw. Post-fix a dead tag's
// accounting freezes at death (the Poisson draw itself still happens,
// so one tag's death never shifts the arrival stream of the others).
func TestDeadTagStopsAccruingArrivals(t *testing.T) {
	// Far-field cell with no harvestable power and a transmit cost that
	// exceeds the whole capacitor budget: every tag dies as soon as it
	// transmits, long before the horizon.
	sc := Scenario{
		Tags: 4, Topology: TopologyGrid, RadiusM: 40,
		OfferedLoad: 1, MaxRounds: 40,
		CapacitanceF: 1e-6, StartVoltageV: 2.0, TxEnergyJ: 5e-6,
	}
	short, err := Run(sc, 7)
	if err != nil {
		t.Fatal(err)
	}
	if short.AliveFraction() != 0 {
		t.Fatalf("setup broken: want every tag dead mid-run, alive=%.2f", short.AliveFraction())
	}
	long := sc
	long.MaxRounds = 2 * sc.MaxRounds
	ext, err := Run(long, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ext.Rounds != long.MaxRounds {
		t.Fatalf("open-loop run must reach the horizon, stopped at round %d", ext.Rounds)
	}
	// Doubling the horizon after every tag is dead must not change any
	// tag's offered count: dead tags receive no traffic.
	for i := range short.Tags {
		if !short.Tags[i].Alive && ext.Tags[i].FramesOffered != short.Tags[i].FramesOffered {
			t.Fatalf("tag %d died at %.3fs but kept accruing arrivals: offered %d at %d rounds, %d at %d rounds",
				i, short.Tags[i].LifetimeS,
				short.Tags[i].FramesOffered, sc.MaxRounds,
				ext.Tags[i].FramesOffered, long.MaxRounds)
		}
	}
}

// Pre-fix, the closed-loop preload set queue = FramesPerTag without
// respecting QueueCap, so with FramesPerTag > QueueCap every frame that
// failed its MaxAttempts found the queue "full" at re-queue time and
// was dropped instead of retried. Post-fix the cap is raised to fit the
// preload: a closed-loop run can never drop.
func TestClosedLoopPreloadRespectsQueueCap(t *testing.T) {
	// 60 m is far beyond the default chunk-loss cliff: essentially every
	// stop-and-wait attempt fails, so frames continually re-queue.
	sc := Scenario{
		Tags: 4, Topology: TopologyGrid, RadiusM: 60,
		FramesPerTag: 32, QueueCap: 16,
		Protocol: "stop-and-wait", MaxRounds: 50,
	}
	res, err := Run(sc, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesOffered != 4*32 {
		t.Fatalf("offered %d, want %d", res.FramesOffered, 4*32)
	}
	if res.FramesDropped != 0 {
		t.Fatalf("closed-loop run dropped %d frames: undelivered preload must re-queue, not drop", res.FramesDropped)
	}
	if res.Scenario.QueueCap < sc.FramesPerTag {
		t.Fatalf("defaulted QueueCap %d below FramesPerTag %d", res.Scenario.QueueCap, sc.FramesPerTag)
	}
}

// Pre-fix, ApplyDefaults used ReqSNRdB == 0 as the unset sentinel, so a
// genuine 0 dB cliff was silently rewritten to 10 dB and absurd values
// (e.g. -200 dB) ran unvalidated. Post-fix the ReqSNRZero sentinel
// (<= -999) requests exact zero and Validate bounds the rest.
func TestReqSNRZeroSentinel(t *testing.T) {
	sc := Scenario{ReqSNRdB: ReqSNRZero}
	sc.ApplyDefaults()
	if sc.ReqSNRdB != 0 {
		t.Fatalf("ReqSNRZero must configure a genuine 0 dB cliff, got %g dB", sc.ReqSNRdB)
	}
	var def Scenario
	def.ApplyDefaults()
	if def.ReqSNRdB != DefaultReqSNRdB {
		t.Fatalf("zero value must keep the %g dB default, got %g", float64(DefaultReqSNRdB), def.ReqSNRdB)
	}

	// The sentinel works end to end from JSON, where an omitted field
	// and an (ambiguous) explicit zero both mean "default".
	parsed, err := ParseScenario([]byte(`{"tags": 8, "req_snr_db": -1000}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(parsed, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenario.ReqSNRdB != 0 {
		t.Fatalf("JSON sentinel lost: cliff ran at %g dB", res.Scenario.ReqSNRdB)
	}

	// And it is not cosmetic: at 60 m the default cliff loses nearly
	// every chunk while a 0 dB cliff still delivers.
	far := Scenario{Tags: 8, Topology: TopologyUniformDisc, RadiusM: 60,
		FramesPerTag: 2, MaxRounds: 48}
	zero := far
	zero.ReqSNRdB = ReqSNRZero
	defRes, err := Run(far, 21)
	if err != nil {
		t.Fatal(err)
	}
	zeroRes, err := Run(zero, 21)
	if err != nil {
		t.Fatal(err)
	}
	if zeroRes.DeliveryRate() <= defRes.DeliveryRate() {
		t.Fatalf("0 dB cliff must out-deliver the 10 dB cliff at range: %g vs %g",
			zeroRes.DeliveryRate(), defRes.DeliveryRate())
	}
}

func TestValidateBoundsRFParameters(t *testing.T) {
	cases := []struct {
		name string
		sc   Scenario
		want string
	}{
		{"snr cliff too low", Scenario{ReqSNRdB: -200}, "SNR cliff"},
		{"snr cliff too high", Scenario{ReqSNRdB: 80}, "SNR cliff"},
		{"path loss exponent below free space", Scenario{PathLossExp: 0.5}, "path loss exponent"},
		{"path loss exponent absurd", Scenario{PathLossExp: 12}, "path loss exponent"},
		{"feedback window too small", Scenario{FeedbackSamplesPerBit: 1}, "feedback samples"},
		{"feedback window absurd", Scenario{FeedbackSamplesPerBit: 1 << 24}, "feedback samples"},
	}
	for _, c := range cases {
		_, err := Run(c.sc, 1)
		if err == nil {
			t.Fatalf("%s: accepted", c.name)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}
