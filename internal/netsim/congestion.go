package netsim

// Closed-loop congestion control: every tag can carry a congestion
// window with EWMA RTT estimation (SRTT/RTTVAR and a Jacobson-style
// RTO), cubic-style window growth on delivery and multiplicative
// decrease on timeout, and a bounded retransmission queue with
// exponential backoff + jitter. The controller closes the loop the MAC
// alone cannot: an overloaded cell stops being hammered by every
// backlogged tag every round, because each tag paces fresh frames by
// cwnd/SRTT and parks timed-out service into the retx queue — the
// dynamic that makes congestion collapse recoverable instead of
// terminal.
//
// State lives in parallel columns (congState) sized once at setup, the
// eligibility pass runs as its own sharded phase (phaseCong), and the
// retx jitter rides each tag's existing seeded protocol stream — so a
// congestion-controlled run stays 0 allocs/op in the round loop and
// byte-identical at any worker count, and a scenario with the spec
// disabled is byte-for-byte the pre-congestion engine.
//
// This file also hosts the reader-side admission policies
// (schedState): FIFO, proportional-fair and deadline scheduling
// replace pure-ALOHA contention with collision-free grant lists, the
// reader-driven half of closed-loop flow control.

import (
	"fmt"
	"math"
)

// CongestionCubic names the cubic controller for
// CongestionSpec.Controller.
const CongestionCubic = "cubic"

// paceBurst caps the pacing token bucket: a tag that sat idle cannot
// save up more than one window-opening worth of credit.
const paceBurst = 1.0

// CongestionSpec configures optional closed-loop per-tag congestion
// control for a Scenario. The zero value disables it entirely: the
// engine then runs the always-contend MAC, byte-for-byte identical to
// scenarios that predate this spec.
type CongestionSpec struct {
	// Controller selects the window-growth law: "" (disabled) or
	// CongestionCubic.
	Controller string `json:"controller"`
	// RTOMinRounds / RTOMaxRounds clamp the retransmission timeout, in
	// rounds (defaults 2 and 64). The floor keeps zero-variance RTT
	// estimates from collapsing the timeout to the sample itself.
	RTOMinRounds float64 `json:"rto_min_rounds"`
	RTOMaxRounds float64 `json:"rto_max_rounds"`
	// InitialRTORounds seeds the timeout before the first RTT sample
	// (default 4, clamped into [RTOMinRounds, RTOMaxRounds]).
	InitialRTORounds float64 `json:"initial_rto_rounds"`
	// MaxBackoff bounds the exponential backoff doubling applied to the
	// RTO across consecutive timeouts (default 6: up to 64x).
	MaxBackoff int `json:"max_backoff"`
	// RetxCap bounds the per-tag retransmission queue (default 8);
	// frames timed out beyond it are dropped and counted.
	RetxCap int `json:"retx_cap"`
	// Beta is the multiplicative-decrease factor: a timeout shrinks
	// cwnd to cwnd*(1-Beta) (default 0.3, the cubic convention).
	Beta float64 `json:"beta"`
	// CubicC scales the cubic growth polynomial (default 0.4).
	CubicC float64 `json:"cubic_c"`
	// JitterFrac spreads retx backoff delays by up to this fraction
	// (default 0.5), with the jitter drawn from the tag's existing
	// seeded protocol stream. Zero selects the default; any negative
	// value requests genuinely jitter-free backoff (the explicit-zero
	// sentinel, mirroring IsolationdB).
	JitterFrac float64 `json:"jitter_frac"`
}

func (c CongestionSpec) enabled() bool { return c.Controller != "" }

func (c *CongestionSpec) applyDefaults() {
	if !c.enabled() {
		return
	}
	if c.RTOMinRounds <= 0 {
		c.RTOMinRounds = 2
	}
	if c.RTOMaxRounds <= 0 {
		c.RTOMaxRounds = 64
	}
	if c.InitialRTORounds <= 0 {
		c.InitialRTORounds = 4
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 6
	}
	if c.RetxCap <= 0 {
		c.RetxCap = 8
	}
	if c.Beta == 0 {
		c.Beta = 0.3
	}
	if c.CubicC <= 0 {
		c.CubicC = 0.4
	}
	switch {
	case c.JitterFrac < 0:
		c.JitterFrac = 0 // explicit jitter-free request
	case c.JitterFrac == 0:
		c.JitterFrac = 0.5
	}
}

// validate rejects degenerate knobs after defaults; orphan fields
// without a controller fail loudly instead of being silently ignored.
func (c CongestionSpec) validate() error {
	if !c.enabled() {
		if c.RTOMinRounds != 0 || c.RTOMaxRounds != 0 || c.InitialRTORounds != 0 ||
			c.MaxBackoff != 0 || c.RetxCap != 0 || c.Beta != 0 || c.CubicC != 0 || c.JitterFrac != 0 {
			return fmt.Errorf("netsim: congestion fields set without a controller (set congestion.controller to %s)", CongestionCubic)
		}
		return nil
	}
	if c.Controller != CongestionCubic {
		return fmt.Errorf("netsim: unknown congestion controller %q (want %s)", c.Controller, CongestionCubic)
	}
	if !(c.RTOMinRounds >= 1) {
		return fmt.Errorf("netsim: rto_min_rounds %g must be at least 1", c.RTOMinRounds)
	}
	if !(c.RTOMaxRounds >= c.RTOMinRounds) {
		return fmt.Errorf("netsim: rto_max_rounds %g below rto_min_rounds %g", c.RTOMaxRounds, c.RTOMinRounds)
	}
	if !(c.Beta > 0 && c.Beta < 1) {
		return fmt.Errorf("netsim: congestion beta %g outside (0, 1)", c.Beta)
	}
	if c.MaxBackoff > 16 {
		return fmt.Errorf("netsim: max_backoff %d unreasonably large (cap 16)", c.MaxBackoff)
	}
	if c.RetxCap > 1<<10 {
		return fmt.Errorf("netsim: retx_cap %d unreasonably large (cap %d)", c.RetxCap, 1<<10)
	}
	if c.JitterFrac > 1 {
		return fmt.Errorf("netsim: jitter_frac %g outside [0, 1] (negative requests exactly 0)", c.JitterFrac)
	}
	return nil
}

// congState is the per-tag congestion-control state as parallel
// columns, allocated once at setup (nil on the engine when the spec is
// disabled). A tag's row is touched by exactly one goroutine per
// phase — its tag shard in phaseCong, its reader cell's owner in the
// window phase — so no synchronisation is needed.
type congState struct {
	queueCap   float64
	rtoMin     float64
	rtoMax     float64
	beta       float64
	cubicC     float64
	jitter     float64
	maxBackoff uint8
	retxCap    int32

	// Window and estimator columns. srtt < 0 means no sample yet;
	// epoch < 0 means no loss event yet (pre-cubic additive climb).
	cwnd   []float64
	srtt   []float64
	rttvar []float64
	rto    []float64
	wMax   []float64
	epoch  []int32
	// Pacing and service columns: pace is the fractional send-credit
	// bucket, servStart the round the in-flight frame entered service.
	pace      []float64
	eligible  []bool
	inServ    []bool
	isRetx    []bool
	servStart []int32
	// Retransmission queue: retxQ parked frames (fungible — the queue
	// holds a count, not identities), retxAt the head frame's
	// re-admission deadline, backoff the consecutive-timeout exponent.
	retxQ   []int32
	retxAt  []float64
	backoff []uint8
	// Whole-run counters, drained into TagStats at the end.
	timeouts  []int32
	retxCount []int32
	retxDrops []int32
}

// newCongState allocates and initialises the columns for n tags.
func newCongState(spec CongestionSpec, n, queueCap int) *congState {
	c := &congState{
		queueCap:   float64(queueCap),
		rtoMin:     spec.RTOMinRounds,
		rtoMax:     spec.RTOMaxRounds,
		beta:       spec.Beta,
		cubicC:     spec.CubicC,
		jitter:     spec.JitterFrac,
		maxBackoff: uint8(spec.MaxBackoff),
		retxCap:    int32(spec.RetxCap),
		cwnd:       make([]float64, n),
		srtt:       make([]float64, n),
		rttvar:     make([]float64, n),
		rto:        make([]float64, n),
		wMax:       make([]float64, n),
		epoch:      make([]int32, n),
		pace:       make([]float64, n),
		eligible:   make([]bool, n),
		inServ:     make([]bool, n),
		isRetx:     make([]bool, n),
		servStart:  make([]int32, n),
		retxQ:      make([]int32, n),
		retxAt:     make([]float64, n),
		backoff:    make([]uint8, n),
		timeouts:   make([]int32, n),
		retxCount:  make([]int32, n),
		retxDrops:  make([]int32, n),
	}
	rto0 := spec.InitialRTORounds
	if rto0 < c.rtoMin {
		rto0 = c.rtoMin
	}
	if rto0 > c.rtoMax {
		rto0 = c.rtoMax
	}
	for i := 0; i < n; i++ {
		c.cwnd[i] = 1
		c.srtt[i] = -1
		c.rto[i] = rto0
		c.epoch[i] = -1
	}
	return c
}

// rtoEff is tag i's current backed-off timeout in rounds: the Jacobson
// RTO doubled per consecutive timeout, capped at the configured
// maximum.
//
//fdlint:noalloc
func (c *congState) rtoEff(i int) float64 {
	d := c.rto[i] * float64(int64(1)<<c.backoff[i])
	if d > c.rtoMax {
		d = c.rtoMax
	}
	return d
}

// backoffDelay draws tag i's next retx re-admission delay: the
// backed-off RTO stretched by up to JitterFrac, with the jitter drawn
// from the tag's existing seeded protocol stream (loaded through the
// worker's scratch source exactly like runFrame's full-duplex seed
// draw), so delays desynchronise deterministically.
//
//fdlint:parallel
//fdlint:noalloc
func (c *congState) backoffDelay(w *netWorker, t *tagState, i int) float64 {
	d := c.rtoEff(i)
	if c.jitter > 0 {
		w.protoSrc.SetState(t.protoHi[i], t.protoLo[i])
		d *= 1 + c.jitter*w.protoSrc.Float64()
		t.protoHi[i], t.protoLo[i] = w.protoSrc.State()
	}
	return d
}

// park moves tag i's dequeued in-flight frame onto the retransmission
// queue (or drops it when the queue is full). The caller has already
// taken the frame off the transmit queue.
//
//fdlint:parallel
//fdlint:noalloc
func (c *congState) park(w *netWorker, t *tagState, i, round int) {
	if c.retxQ[i] >= c.retxCap {
		t.stats[i].FramesDropped++
		c.retxDrops[i]++
		return
	}
	if c.retxQ[i] == 0 {
		c.retxAt[i] = float64(round) + c.backoffDelay(w, t, i)
	}
	c.retxQ[i]++
}

// lossEvent applies a multiplicative decrease and opens a new cubic
// epoch — shared by RTO expiry and MAC-attempt exhaustion.
//
//fdlint:noalloc
func (c *congState) lossEvent(i, round int) {
	c.timeouts[i]++
	c.inServ[i] = false
	c.wMax[i] = c.cwnd[i]
	c.cwnd[i] *= 1 - c.beta
	if c.cwnd[i] < 1 {
		c.cwnd[i] = 1
	}
	c.epoch[i] = int32(round)
	if c.backoff[i] < c.maxBackoff {
		c.backoff[i]++
	}
}

// onDelivery closes the loop for a delivered frame: a Karn-filtered
// RTT sample updates SRTT/RTTVAR and the RTO (samples from
// retransmitted frames are ambiguous and skipped), the backoff
// exponent resets, and the window grows along the cubic curve.
//
//fdlint:parallel
//fdlint:noalloc
func (c *congState) onDelivery(i, round int) {
	if !c.isRetx[i] {
		rtt := float64(round-int(c.servStart[i])) + 1
		if c.srtt[i] < 0 {
			c.srtt[i] = rtt
			c.rttvar[i] = rtt / 2
		} else {
			d := c.srtt[i] - rtt
			if d < 0 {
				d = -d
			}
			c.rttvar[i] += (d - c.rttvar[i]) / 4
			c.srtt[i] += (rtt - c.srtt[i]) / 8
		}
		rto := c.srtt[i] + 4*c.rttvar[i]
		if rto < c.rtoMin {
			rto = c.rtoMin
		}
		if rto > c.rtoMax {
			rto = c.rtoMax
		}
		c.rto[i] = rto
	}
	c.inServ[i] = false
	c.backoff[i] = 0

	// Window growth: additive climb until the first loss event sets a
	// cubic epoch, then chase the cubic target w(t) = C(t-K)^3 + wMax
	// with the standard per-delivery increment.
	if c.epoch[i] < 0 {
		c.cwnd[i]++
	} else {
		t := float64(round) - float64(c.epoch[i])
		k := math.Cbrt(c.wMax[i] * c.beta / c.cubicC)
		target := c.cubicC*(t-k)*(t-k)*(t-k) + c.wMax[i]
		if target > c.cwnd[i] {
			c.cwnd[i] += (target - c.cwnd[i]) / c.cwnd[i]
		} else {
			c.cwnd[i] += 0.01 / c.cwnd[i]
		}
	}
	if c.cwnd[i] > c.queueCap {
		c.cwnd[i] = c.queueCap
	}
	if c.cwnd[i] < 1 {
		c.cwnd[i] = 1
	}
}

// congShard is the parallel body of the per-round congestion pass for
// tags [lo, hi): RTO expiry for in-flight service, retx re-admission,
// and the cwnd/SRTT pacing gate that decides whether the tag contends
// this round. Runs after arrivals and before the slot draws; each
// tag's row is independent, so the result is identical however the
// ranges are sharded.
//
//fdlint:parallel
//fdlint:noalloc
func (e *engine) congShard(w *netWorker, lo, hi int) {
	c := e.cong
	t := &e.tags
	round := e.curRound
	flt := e.flt
	for i := lo; i < hi; i++ {
		c.eligible[i] = false
		if !t.alive[i] {
			continue
		}
		if flt != nil && flt.dormant[i] {
			// A churned-away tag keeps its timers running: an RTO that
			// fires while it is gone becomes backoff it returns with.
			if c.inServ[i] && float64(round-int(c.servStart[i])) >= c.rtoEff(i) {
				c.lossEvent(i, round)
				// The flushed departure already dropped the frame, so
				// nothing is parked; stale service just ends.
				if t.queue[i] > 0 {
					t.queue[i]--
					c.park(w, t, i, round)
				}
			}
			continue
		}
		if c.inServ[i] {
			if float64(round-int(c.servStart[i])) < c.rtoEff(i) {
				// In-flight frame keeps contending until delivery or RTO.
				c.eligible[i] = true
				continue
			}
			// RTO fired: multiplicative decrease, park the frame for a
			// backed-off, jittered retransmission, sit out this round.
			c.lossEvent(i, round)
			t.queue[i]--
			c.park(w, t, i, round)
			continue
		}
		if c.retxQ[i] > 0 {
			// Head-of-line: parked frames block fresh ones until their
			// backoff deadline passes.
			if float64(round) >= c.retxAt[i] {
				c.retxQ[i]--
				t.queue[i]++
				c.retxCount[i]++
				if c.retxQ[i] > 0 {
					c.retxAt[i] = float64(round) + c.backoffDelay(w, t, i)
				}
				c.inServ[i] = true
				c.isRetx[i] = true
				c.servStart[i] = int32(round)
				c.eligible[i] = true
				if s := e.sched; s != nil && t.queue[i] == 1 {
					s.backlogSince[i] = int32(round)
				}
			}
			continue
		}
		if t.queue[i] == 0 {
			continue
		}
		// Pacing gate for a fresh frame: accrue cwnd/SRTT send credit
		// per round (full credit before the first RTT sample) and start
		// service once a whole token is banked.
		rate := 1.0
		if c.srtt[i] > 0 && c.cwnd[i] < c.srtt[i] {
			rate = c.cwnd[i] / c.srtt[i]
		}
		c.pace[i] += rate
		if c.pace[i] > paceBurst {
			c.pace[i] = paceBurst
		}
		if c.pace[i] >= 1 {
			c.pace[i]--
			c.inServ[i] = true
			c.isRetx[i] = false
			c.servStart[i] = int32(round)
			c.eligible[i] = true
		}
	}
}

// Reader scheduling policy names for ReaderSpec.Policy.
const (
	// PolicyAloha is the default framed-slotted-ALOHA contention: every
	// backlogged tag draws a slot, collisions burn airtime.
	PolicyAloha = "aloha"
	// PolicyFIFO polls tags oldest-backlog-first: the reader grants up
	// to ContentionWindow collision-free slots per round.
	PolicyFIFO = "fifo"
	// PolicyPropFair grants by waiting time divided by accumulated
	// service, so starved tags overtake well-served ones.
	PolicyPropFair = "prop-fair"
	// PolicyDeadline is earliest-deadline-first with deadline-miss
	// drops: a head frame older than DeadlineRounds is discarded.
	PolicyDeadline = "deadline"
)

// schedState is the reader-side scheduling state shared by the
// non-ALOHA policies: per-tag head-of-line backlog timestamps that the
// grant metrics read. Grant selection itself runs per cell in the
// window phase on the cell owner's scratch.
type schedState struct {
	policy   string
	deadline int32
	// backlogSince[i] is the round tag i's current head-of-line frame
	// started waiting (maintained at arrivals and head departures).
	backlogSince []int32
}

func newSchedState(spec ReaderSpec, n int) *schedState {
	return &schedState{
		policy:       spec.Policy,
		deadline:     int32(spec.DeadlineRounds),
		backlogSince: make([]int32, n),
	}
}

// metric is tag i's grant priority this round (higher first; ties go
// to the lower tag index).
//
//fdlint:noalloc
func (s *schedState) metric(i, round int, t *tagState) float64 {
	wait := float64(round - int(s.backlogSince[i]))
	if s.policy == PolicyPropFair {
		return wait / float64(1+t.stats[i].FramesDelivered)
	}
	// FIFO and deadline both order by waiting time: EDF over uniform
	// per-frame deadlines is oldest-first; the policies differ in the
	// deadline-miss drops applied before the grant pass.
	return wait
}

// dropDeadlines is the serial pre-pass of PolicyDeadline: each round,
// a head-of-line frame older than the deadline is dropped (at most one
// per tag per round — the new head starts aging immediately). Frames
// owned by the congestion controller's in-flight service are exempt;
// the RTO machinery owns their fate.
//
//fdlint:noalloc
func (e *engine) dropDeadlines(round int) {
	s := e.sched
	t := &e.tags
	for i := 0; i < t.len(); i++ {
		if !t.alive[i] || t.queue[i] == 0 {
			continue
		}
		if e.flt != nil && e.flt.dormant[i] {
			continue
		}
		if e.cong != nil && e.cong.inServ[i] {
			continue
		}
		if round-int(s.backlogSince[i]) > int(s.deadline) {
			t.queue[i]--
			t.stats[i].FramesDropped++
			if t.queue[i] > 0 {
				s.backlogSince[i] = int32(round)
			}
		}
	}
}

// runPolicyCell executes one reader's window under a non-ALOHA policy:
// the top-ContentionWindow eligible tags by policy metric are granted
// collision-free singleton slots (insertion into the worker's
// preallocated grant scratch — O(contenders x cw), no allocation, no
// slotSrc draws), the rest of the window elapses idle. Part of the
// round loop guarded by TestRoundLoopAllocFree.
//
//fdlint:parallel
//fdlint:noalloc
func (e *engine) runPolicyCell(w *netWorker, ci int) {
	acc := &e.cellAcc[ci]
	*acc = cellAcc{}
	cw := e.sc.ContentionWindow
	r := int(e.activeCells[ci])
	t := &e.tags
	s := e.sched
	round := e.curRound

	gi := w.grantIdx[:0]
	gm := w.grantMetric[:0]
	for _, i := range e.cellTags(r) {
		if !e.contends(i) {
			continue
		}
		m := s.metric(int(i), round, t)
		pos := len(gm)
		for pos > 0 && m > gm[pos-1] {
			pos--
		}
		if pos == len(gm) {
			if len(gm) < cw {
				gi = append(gi, i)
				gm = append(gm, m)
			}
			continue
		}
		if len(gm) < cw {
			gi = append(gi, 0)
			gm = append(gm, 0)
		}
		copy(gi[pos+1:], gi[pos:])
		copy(gm[pos+1:], gm[pos:])
		gi[pos] = i
		gm[pos] = m
	}

	rs := &e.rstats[r]
	var rb int64
	for _, i := range gi {
		acc.singletonSlots++
		rs.SingletonSlots++
		rb += e.serveSlot(w, acc, rs, i)
	}
	idle := int64(cw - len(gi))
	acc.idleSlots += idle
	rb += idle * e.chunkAir
	acc.windowBytes = rb
}
