package trace

import (
	"math"
	"strings"
	"testing"
)

func TestRunningMoments(t *testing.T) {
	var r Running
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(v)
	}
	if r.N() != 8 {
		t.Fatalf("n = %d", r.N())
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %g", r.Mean())
	}
	if math.Abs(r.Var()-4) > 1e-12 {
		t.Fatalf("var = %g", r.Var())
	}
	if math.Abs(r.Std()-2) > 1e-12 {
		t.Fatalf("std = %g", r.Std())
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Fatalf("min/max = %g/%g", r.Min(), r.Max())
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Var() != 0 || r.Min() != 0 || r.Max() != 0 {
		t.Fatal("empty running stats must be zero")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i%10) + 0.5)
	}
	if h.Total() != 100 {
		t.Fatalf("total = %d", h.Total())
	}
	for i, c := range h.Counts {
		if c != 10 {
			t.Fatalf("bin %d = %d, want 10", i, c)
		}
	}
}

func TestHistogramClamps(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(-100)
	h.Add(1e9)
	if h.Counts[0] != 1 || h.Counts[4] != 1 {
		t.Fatalf("clamping failed: %v", h.Counts)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 1000; i++ {
		h.Add(float64(i % 100))
	}
	med := h.Quantile(0.5)
	if med < 45 || med > 55 {
		t.Fatalf("median = %g", med)
	}
	if h.Quantile(-1) > h.Quantile(2) {
		t.Fatal("clamped quantiles out of order")
	}
	var empty Histogram
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(5, 5, 10)
}

func TestTableText(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 42)
	var sb strings.Builder
	if err := tb.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "== demo ==") || !strings.Contains(out, "alpha") {
		t.Fatalf("text table missing content:\n%s", out)
	}
	if tb.NumRows() != 2 {
		t.Fatal("NumRows mismatch")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("x,y", 2.0)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "\"x,y\"") {
		t.Fatalf("CSV quoting broken:\n%s", out)
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Fatalf("CSV header broken:\n%s", out)
	}
}

func TestTableCSVEmpty(t *testing.T) {
	// No rows: the CSV is just the header line.
	tb := NewTable("empty", "x", "y")
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "x,y\n" {
		t.Fatalf("empty table CSV = %q", sb.String())
	}
	// No rows and no columns: a single empty record terminator.
	none := NewTable("")
	sb.Reset()
	if err := none.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "\n" {
		t.Fatalf("columnless table CSV = %q", sb.String())
	}
	if none.NumRows() != 0 || len(none.Rows()) != 0 {
		t.Fatal("empty table must report zero rows")
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tb := NewTable("", "cell", "note")
	tb.AddRow(`plain`, `with,comma`)
	tb.AddRow(`has "quotes"`, "line\nbreak")
	tb.AddRow(`,"both",`, `clean`)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`plain,"with,comma"`,
		`"has ""quotes""","line` + "\n" + `break"`,
		`",""both"","` + `,clean`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("CSV missing %q:\n%s", want, out)
		}
	}
	// A quoted header cell must be escaped the same way.
	hdr := NewTable("", `a,b`, "c")
	sb.Reset()
	if err := hdr.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), `"a,b",c`+"\n") {
		t.Fatalf("header quoting broken: %q", sb.String())
	}
}

// Rows must round-trip through AddRow formatting into the exact cells
// WriteCSV emits for unquoted values, and reflect insertion order.
func TestTableRowsRoundTrip(t *testing.T) {
	tb := NewTable("rt", "k", "v")
	tb.AddRow(3, 0.5)
	tb.AddRow(1, "s")
	tb.AddRow(2, 1e-9)
	rows := tb.Rows()
	if len(rows) != tb.NumRows() {
		t.Fatalf("Rows() length %d != NumRows %d", len(rows), tb.NumRows())
	}
	rebuilt := NewTable("rt", "k", "v")
	for _, r := range rows {
		cells := make([]interface{}, len(r))
		for i, c := range r {
			cells[i] = c
		}
		rebuilt.AddRow(cells...)
	}
	var a, b strings.Builder
	if err := tb.WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := rebuilt.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("Rows() round-trip diverged:\n%s\nvs\n%s", a.String(), b.String())
	}
	if got := [3]string{rows[0][0], rows[1][0], rows[2][0]}; got != [3]string{"3", "1", "2"} {
		t.Fatalf("Rows() must preserve insertion order, got %v", got)
	}
}

func TestTableRaggedRow(t *testing.T) {
	// A row narrower than the header must still render in both formats.
	tb := NewTable("ragged", "a", "b", "c")
	tb.AddRow("only")
	var txt, csv strings.Builder
	if err := tb.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if err := tb.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "only") || !strings.Contains(csv.String(), "only\n") {
		t.Fatalf("ragged row lost: text=%q csv=%q", txt.String(), csv.String())
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(0.0)
	tb.AddRow(1e-9)
	tb.AddRow(123456789.0)
	tb.AddRow(float32(2.5))
	var sb strings.Builder
	tb.WriteCSV(&sb)
	out := sb.String()
	if !strings.Contains(out, "0\n") || !strings.Contains(out, "e-09") || !strings.Contains(out, "e+08") {
		t.Fatalf("float formatting unexpected:\n%s", out)
	}
}

func TestTableSort(t *testing.T) {
	tb := NewTable("", "k", "v")
	tb.AddRow("10", "c")
	tb.AddRow("2", "a")
	tb.AddRow("33", "b")
	tb.SortByColumn(0)
	var sb strings.Builder
	tb.WriteCSV(&sb)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[1] != "2,a" || lines[3] != "33,b" {
		t.Fatalf("numeric sort broken: %v", lines)
	}
}

func TestTableRows(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(1, "x")
	tb.AddRow(2.5, "y")
	rows := tb.Rows()
	if len(rows) != 2 || rows[0][0] != "1" || rows[1][1] != "y" {
		t.Fatalf("Rows() unexpected: %v", rows)
	}
	// Mutating the copy must not touch the table.
	rows[0][0] = "mutated"
	if tb.Rows()[0][0] != "1" {
		t.Fatal("Rows() must return a copy")
	}
}

// Typed cells (AddCells) must render byte-identically to the classic
// boxed AddRow path for every value kind the experiments emit.
func TestAddCellsMatchesAddRow(t *testing.T) {
	boxed := NewTable("t", "a", "b", "c", "d", "e")
	boxed.AddRow(0.5, 1e-9, 42, "text", -0.0)
	boxed.AddRow(123456.0, float32(2.5), int64(-7), "with,comma", 0.30000000000000004)

	typed := NewTable("t", "a", "b", "c", "d", "e")
	typed.Grow(2)
	typed.AddCells([]Cell{F(0.5), F(1e-9), I(42), S("text"), F(-0.0)})
	typed.AddCells([]Cell{F(123456.0), V(float32(2.5)), V(int64(-7)), S("with,comma"), F(0.30000000000000004)})

	var wantText, gotText strings.Builder
	if err := boxed.WriteText(&wantText); err != nil {
		t.Fatal(err)
	}
	if err := typed.WriteText(&gotText); err != nil {
		t.Fatal(err)
	}
	if wantText.String() != gotText.String() {
		t.Fatalf("text render differs:\n%q\nvs\n%q", wantText.String(), gotText.String())
	}
	var wantCSV, gotCSV strings.Builder
	if err := boxed.WriteCSV(&wantCSV); err != nil {
		t.Fatal(err)
	}
	if err := typed.WriteCSV(&gotCSV); err != nil {
		t.Fatal(err)
	}
	if wantCSV.String() != gotCSV.String() {
		t.Fatalf("CSV render differs:\n%q\nvs\n%q", wantCSV.String(), gotCSV.String())
	}
}

// AddCells must not allocate beyond the row append itself once the
// table has grown capacity — the hot-loop contract the harness uses.
func TestAddCellsAllocBudget(t *testing.T) {
	tbl := NewTable("t", "x")
	rows := make([][]Cell, 100)
	for i := range rows {
		rows[i] = []Cell{I(i)}
	}
	tbl.Grow(len(rows))
	i := 0
	allocs := testing.AllocsPerRun(99, func() {
		tbl.AddCells(rows[i%len(rows)])
		i++
	})
	if allocs != 0 {
		t.Fatalf("AddCells after Grow allocates %.1f objects/row", allocs)
	}
}
