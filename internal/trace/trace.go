// Package trace provides the small metrics toolkit the experiment
// harness uses: counters, running statistics, histograms, and table
// rendering in aligned-text or CSV form.
package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Running accumulates mean/variance/min/max in one pass (Welford).
type Running struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (r *Running) Add(v float64) {
	if r.n == 0 {
		r.min, r.max = v, v
	} else {
		if v < r.min {
			r.min = v
		}
		if v > r.max {
			r.max = v
		}
	}
	r.n++
	d := v - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (v - r.mean)
}

// N returns the observation count.
func (r *Running) N() int { return r.n }

// Mean returns the running mean (0 when empty).
func (r *Running) Mean() float64 { return r.mean }

// Var returns the population variance (0 when n < 2).
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// Std returns the population standard deviation.
func (r *Running) Std() float64 { return math.Sqrt(r.Var()) }

// Min and Max return the extremes (0 when empty).
func (r *Running) Min() float64 { return r.min }

// Max returns the maximum observation.
func (r *Running) Max() float64 { return r.max }

// Histogram is a fixed-bin histogram over [Lo, Hi); out-of-range values
// clamp into the edge bins.
type Histogram struct {
	Lo, Hi float64
	Counts []int64
	total  int64
}

// NewHistogram returns a histogram with n bins over [lo, hi).
// It panics if n < 1 or hi <= lo.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n < 1 || hi <= lo {
		panic("trace: invalid histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, n)}
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	i := int((v - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the observation count.
func (h *Histogram) Total() int64 { return h.total }

// Quantile returns the approximate q-quantile (bin midpoint), q in
// [0, 1].
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(h.total))
	var cum int64
	binW := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		cum += c
		if cum > target {
			return h.Lo + (float64(i)+0.5)*binW
		}
	}
	return h.Hi
}

// Cell is one typed table entry. Cells carry the raw value and format
// lazily at render time, so the hot experiment loops that produce rows
// never box values into interfaces or build strings; construct them
// with F, I, S or V.
type Cell struct {
	kind cellKind
	f    float64
	i    int64
	s    string
}

type cellKind uint8

const (
	cellString cellKind = iota
	cellFloat
	cellInt
)

// F returns a float cell (rendered with the table's float formatting).
func F(v float64) Cell { return Cell{kind: cellFloat, f: v} }

// I returns an integer cell.
func I(v int) Cell { return Cell{kind: cellInt, i: int64(v)} }

// S returns a string cell.
func S(v string) Cell { return Cell{kind: cellString, s: v} }

// V converts an arbitrary value to a Cell, matching AddRow's formatting
// rules: strings stay as-is, floats use the table float format, and
// anything else renders with %v.
func V(c interface{}) Cell {
	switch v := c.(type) {
	case Cell:
		return v
	case string:
		return S(v)
	case float64:
		return F(v)
	case float32:
		return F(float64(v))
	case int:
		return I(v)
	case int64:
		return Cell{kind: cellInt, i: v}
	default:
		return S(fmt.Sprintf("%v", c))
	}
}

// String renders the cell exactly as AddRow has always formatted it.
func (c Cell) String() string {
	switch c.kind {
	case cellFloat:
		return formatFloat(c.f)
	case cellInt:
		return strconv.FormatInt(c.i, 10)
	default:
		return c.s
	}
}

// Table renders experiment rows with aligned columns or as CSV.
type Table struct {
	Title   string
	Columns []string
	rows    [][]Cell
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are formatted with %v unless already
// strings.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]Cell, len(cells))
	for i, c := range cells {
		row[i] = V(c)
	}
	t.rows = append(t.rows, row)
}

// AddCells appends a row of typed cells, taking ownership of the slice.
// This is the allocation-lean path the experiment harness uses: no
// interface boxing, no render-time work.
func (t *Table) AddCells(row []Cell) {
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e5 || math.Abs(v) < 1e-3:
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// Grow pre-allocates capacity for n further rows.
func (t *Table) Grow(n int) {
	if cap(t.rows)-len(t.rows) >= n {
		return
	}
	grown := make([][]Cell, len(t.rows), len(t.rows)+n)
	copy(grown, t.rows)
	t.rows = grown
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows returns the formatted data rows, in insertion order.
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		row := make([]string, len(r))
		for j, c := range r {
			row[j] = c.String()
		}
		out[i] = row
	}
	return out
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	rows := t.Rows()
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	for i, c := range t.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], c)
	}
	b.WriteByte('\n')
	for i := range t.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", widths[i]))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s", w, cell)
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV (quoting cells containing commas).
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	for i, c := range t.Columns {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(quoteCSV(c))
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		for i, c := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(quoteCSV(c.String()))
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// quoteCSV escapes one CSV cell (quotes around cells containing
// commas, quotes or newlines; embedded quotes doubled).
func quoteCSV(c string) string {
	if strings.ContainsAny(c, ",\"\n") {
		return "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
	}
	return c
}

// SortByColumn sorts rows by the numeric (fallback string) value of the
// given column index.
func (t *Table) SortByColumn(col int) {
	sort.SliceStable(t.rows, func(i, j int) bool {
		a, b := t.rows[i][col].String(), t.rows[j][col].String()
		var fa, fb float64
		na, errA := fmt.Sscanf(a, "%g", &fa)
		nb, errB := fmt.Sscanf(b, "%g", &fb)
		if na == 1 && nb == 1 && errA == nil && errB == nil {
			return fa < fb
		}
		return a < b
	})
}
