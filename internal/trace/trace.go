// Package trace provides the small metrics toolkit the experiment
// harness uses: counters, running statistics, histograms, and table
// rendering in aligned-text or CSV form.
package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Running accumulates mean/variance/min/max in one pass (Welford).
type Running struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (r *Running) Add(v float64) {
	if r.n == 0 {
		r.min, r.max = v, v
	} else {
		if v < r.min {
			r.min = v
		}
		if v > r.max {
			r.max = v
		}
	}
	r.n++
	d := v - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (v - r.mean)
}

// N returns the observation count.
func (r *Running) N() int { return r.n }

// Mean returns the running mean (0 when empty).
func (r *Running) Mean() float64 { return r.mean }

// Var returns the population variance (0 when n < 2).
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// Std returns the population standard deviation.
func (r *Running) Std() float64 { return math.Sqrt(r.Var()) }

// Min and Max return the extremes (0 when empty).
func (r *Running) Min() float64 { return r.min }

// Max returns the maximum observation.
func (r *Running) Max() float64 { return r.max }

// Histogram is a fixed-bin histogram over [Lo, Hi); out-of-range values
// clamp into the edge bins.
type Histogram struct {
	Lo, Hi float64
	Counts []int64
	total  int64
}

// NewHistogram returns a histogram with n bins over [lo, hi).
// It panics if n < 1 or hi <= lo.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n < 1 || hi <= lo {
		panic("trace: invalid histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, n)}
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	i := int((v - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the observation count.
func (h *Histogram) Total() int64 { return h.total }

// Quantile returns the approximate q-quantile (bin midpoint), q in
// [0, 1].
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(h.total))
	var cum int64
	binW := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		cum += c
		if cum > target {
			return h.Lo + (float64(i)+0.5)*binW
		}
	}
	return h.Hi
}

// Table renders experiment rows with aligned columns or as CSV.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are formatted with %v unless already
// strings.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatFloat(v)
		case float32:
			row[i] = formatFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e5 || math.Abs(v) < 1e-3:
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows returns a copy of the formatted data rows, in insertion order.
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = append([]string(nil), r...)
	}
	return out
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	for i, c := range t.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], c)
	}
	b.WriteByte('\n')
	for i := range t.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", widths[i]))
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s", w, cell)
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV (quoting cells containing commas).
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// SortByColumn sorts rows by the numeric (fallback string) value of the
// given column index.
func (t *Table) SortByColumn(col int) {
	sort.SliceStable(t.rows, func(i, j int) bool {
		a, b := t.rows[i][col], t.rows[j][col]
		var fa, fb float64
		na, errA := fmt.Sscanf(a, "%g", &fa)
		nb, errB := fmt.Sscanf(b, "%g", &fb)
		if na == 1 && nb == 1 && errA == nil && errB == nil {
			return fa < fb
		}
		return a < b
	})
}
