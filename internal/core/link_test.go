package core

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/channel"
	"repro/internal/phy"
	"repro/internal/reader"
	"repro/internal/simrand"
)

func testPayload(n int, seed uint64) []byte {
	src := simrand.New(seed)
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(src.IntN(256))
	}
	return p
}

func cleanLinkConfig(seed uint64) LinkConfig {
	return LinkConfig{
		Modem:      phy.OOK{SamplesPerChip: 4, Depth: 0.75},
		DistanceM:  2,
		ChunkSize:  32,
		TxPowerW:   0.1,
		Seed:       seed,
		SampleRate: 1e6,
	}
}

func mustLink(t *testing.T, cfg LinkConfig) *Link {
	t.Helper()
	l, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestCleanTransferDeliversEverything(t *testing.T) {
	l := mustLink(t, cleanLinkConfig(1))
	payload := testPayload(256, 2)
	res, err := l.TransferFrame(payload, TransferOptions{PadChips: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Acquired {
		t.Fatal("tag failed to acquire on a clean channel")
	}
	if !res.DeliveredOK {
		t.Fatalf("delivery failed: chunks %+v", res.Chunks)
	}
	if !bytes.Equal(res.Payload, payload) {
		t.Fatal("payload corrupted on a clean channel")
	}
	if res.ForwardBitErrors != 0 {
		t.Fatalf("forward bit errors on clean channel: %d", res.ForwardBitErrors)
	}
	if res.FeedbackErrors != 0 {
		t.Fatalf("feedback errors on clean channel: %d", res.FeedbackErrors)
	}
	if !res.HeaderAckOK {
		t.Fatal("header ACK not decoded")
	}
	if res.Aborted {
		t.Fatal("clean transfer must not abort")
	}
	// Every chunk ACKed at both ends.
	for i, c := range res.Chunks {
		if !c.TagOK || !c.ReaderSawBit || c.ReaderBit != 1 {
			t.Fatalf("chunk %d: %+v", i, c)
		}
	}
	if res.SamplesUsed != res.SamplesFull {
		t.Fatalf("clean transfer airtime %d != full %d", res.SamplesUsed, res.SamplesFull)
	}
	if res.GoodputBytes() != len(payload) {
		t.Fatalf("goodput %d, want %d", res.GoodputBytes(), len(payload))
	}
}

func TestTransferHarvestsEnergy(t *testing.T) {
	cfg := cleanLinkConfig(3)
	cfg.Capacitor.CapacitanceF = 100e-6
	cfg.Capacitor.MaxVoltageV = 3.3
	cfg.Capacitor.MinVoltageV = 1.8
	l := mustLink(t, cfg)
	// Drain the cap below full so harvesting is visible.
	l.Tag().StoredEnergy()
	res, err := l.TransferFrame(testPayload(128, 4), TransferOptions{PadChips: 8})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	// At full charge the delta can be 0 (clamped); validate no outage.
	if l.Tag().HarvestedOutageFraction() != 0 {
		t.Fatal("tag browned out with zero circuit consumption")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() *TransferResult {
		cfg := cleanLinkConfig(77)
		cfg.Fading = channel.FadingRayleigh
		l := mustLink(t, cfg)
		res, err := l.TransferFrame(testPayload(200, 5), TransferOptions{PadChips: -1})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Acquired != b.Acquired || a.FeedbackErrors != b.FeedbackErrors ||
		a.ForwardBitErrors != b.ForwardBitErrors || a.SamplesUsed != b.SamplesUsed {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestLongDistanceDegrades(t *testing.T) {
	// At an absurd distance the tag should fail to even acquire.
	cfg := cleanLinkConfig(9)
	cfg.DistanceM = 5000
	cfg.TagNoiseW = 1e-10
	l := mustLink(t, cfg)
	res, err := l.TransferFrame(testPayload(64, 6), TransferOptions{PadChips: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Acquired && res.DeliveredOK && res.ForwardBitErrors == 0 {
		t.Fatal("a 5 km backscatter link should not be error-free")
	}
}

func TestInterfererCorruptsAndNACKs(t *testing.T) {
	cfg := cleanLinkConfig(11)
	cfg.ChunkSize = 16
	cfg.Interferer = &InterfererConfig{
		PowerW:            1.0,
		DistanceToTagM:    1.5,
		DistanceToReaderM: 3,
		DutyCycle:         0.5,
	}
	l := mustLink(t, cfg)
	sawNACK := false
	sawInterference := false
	for trial := 0; trial < 10 && !sawNACK; trial++ {
		res, err := l.TransferFrame(testPayload(160, uint64(trial)), TransferOptions{PadChips: 8})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Acquired {
			continue
		}
		for _, c := range res.Chunks {
			if c.Interfered {
				sawInterference = true
				if !c.TagOK {
					sawNACK = true
				}
			}
		}
	}
	if !sawInterference {
		t.Fatal("interferer with 50% duty never hit a chunk in 10 frames")
	}
	if !sawNACK {
		t.Fatal("a 1 W interferer at 1.5 m never corrupted a chunk")
	}
}

func TestEarlyTerminationSavesAirtime(t *testing.T) {
	cfg := cleanLinkConfig(13)
	cfg.ChunkSize = 16
	cfg.Interferer = &InterfererConfig{
		PowerW:            1.0,
		DistanceToTagM:    1.0,
		DistanceToReaderM: 3,
		DutyCycle:         1.0, // every chunk hit: frame is doomed
	}
	l := mustLink(t, cfg)
	res, err := l.TransferFrame(testPayload(320, 14), TransferOptions{
		EarlyTerminate: true, PadChips: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Acquired {
		t.Skip("acquisition failed under continuous interference (acceptable)")
	}
	if !res.Aborted {
		t.Fatal("continuous interference must trigger early termination")
	}
	if res.SamplesUsed >= res.SamplesFull {
		t.Fatalf("abort saved nothing: %d vs %d", res.SamplesUsed, res.SamplesFull)
	}
	// Abort should happen within the first few chunks: the NACK for
	// chunk i arrives during chunk i+1.
	if res.AbortAfterChunk > 3 {
		t.Fatalf("abort too late: after chunk %d", res.AbortAfterChunk)
	}
}

func TestDisableFeedbackSilencesTag(t *testing.T) {
	l := mustLink(t, cleanLinkConfig(15))
	res, err := l.TransferFrame(testPayload(128, 16), TransferOptions{
		DisableFeedback: true, PadChips: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FeedbackBits != 0 {
		t.Fatalf("feedback disabled but reader scored %d bits", res.FeedbackBits)
	}
	for _, c := range res.Chunks {
		if c.ReaderSawBit {
			t.Fatal("reader must not see feedback when disabled")
		}
	}
	if !res.DeliveredOK {
		t.Fatal("forward link must still work without feedback")
	}
}

func TestFeedbackReliableOverTrials(t *testing.T) {
	cfg := cleanLinkConfig(17)
	l := mustLink(t, cfg)
	totalBits, totalErrs := 0, 0
	for trial := 0; trial < 5; trial++ {
		res, err := l.TransferFrame(testPayload(256, uint64(100+trial)), TransferOptions{PadChips: -1})
		if err != nil {
			t.Fatal(err)
		}
		totalBits += res.FeedbackBits
		totalErrs += res.FeedbackErrors
	}
	if totalBits == 0 {
		t.Fatal("no feedback bits scored")
	}
	if totalErrs != 0 {
		t.Fatalf("feedback errors on clean channel: %d/%d", totalErrs, totalBits)
	}
}

func TestSISubtractModeWorks(t *testing.T) {
	cfg := cleanLinkConfig(19)
	cfg.SI = reader.SISubtract
	l := mustLink(t, cfg)
	res, err := l.TransferFrame(testPayload(128, 20), TransferOptions{PadChips: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Acquired {
		t.Fatal("acquire failed")
	}
	if res.FeedbackErrors != 0 {
		t.Fatalf("SISubtract feedback errors on clean channel: %d/%d",
			res.FeedbackErrors, res.FeedbackBits)
	}
}

func TestRhoTradeoffFeedbackMargin(t *testing.T) {
	// Higher rho -> stronger reflection -> larger feedback margin.
	marginAt := func(rho float64) float64 {
		cfg := cleanLinkConfig(21)
		cfg.Rho = rho
		l := mustLink(t, cfg)
		res, err := l.TransferFrame(testPayload(96, 22), TransferOptions{PadChips: 8})
		if err != nil || !res.Acquired {
			t.Fatalf("transfer failed: %v", err)
		}
		var m float64
		for _, c := range res.Chunks {
			m += c.Margin
		}
		return m / float64(len(res.Chunks))
	}
	low := marginAt(0.1)
	high := marginAt(0.6)
	if high <= low {
		t.Fatalf("higher rho must raise feedback margin: rho=0.1 %g vs rho=0.6 %g", low, high)
	}
}

func TestSequenceNumberAdvances(t *testing.T) {
	l := mustLink(t, cleanLinkConfig(23))
	r1, err := l.TransferFrame(testPayload(32, 24), TransferOptions{PadChips: 8})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := l.TransferFrame(testPayload(32, 25), TransferOptions{PadChips: 8})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Header.Seq != r1.Header.Seq+1 {
		t.Fatalf("seq %d -> %d", r1.Header.Seq, r2.Header.Seq)
	}
}

func TestMultipleFramesSameLink(t *testing.T) {
	// Buffer reuse across frames must not corrupt results.
	l := mustLink(t, cleanLinkConfig(27))
	for i := 0; i < 4; i++ {
		payload := testPayload(64+i*32, uint64(30+i))
		res, err := l.TransferFrame(payload, TransferOptions{PadChips: -1})
		if err != nil {
			t.Fatal(err)
		}
		if !res.DeliveredOK || !bytes.Equal(res.Payload, payload) {
			t.Fatalf("frame %d failed on a clean channel", i)
		}
	}
}

func TestFadingChannelStillMostlyWorks(t *testing.T) {
	cfg := cleanLinkConfig(31)
	cfg.Fading = channel.FadingRician
	cfg.RicianK = 10 // strong LOS: shallow fades
	l := mustLink(t, cfg)
	delivered := 0
	const trials = 10
	for i := 0; i < trials; i++ {
		res, err := l.TransferFrame(testPayload(96, uint64(40+i)), TransferOptions{PadChips: -1})
		if err != nil {
			t.Fatal(err)
		}
		if res.DeliveredOK {
			delivered++
		}
	}
	if delivered < trials/2 {
		t.Fatalf("K=10 Rician delivered only %d/%d", delivered, trials)
	}
}

func TestDetectorRCLink(t *testing.T) {
	cfg := cleanLinkConfig(33)
	cfg.DetectorCutoffHz = cfg.SampleRate / 8
	l := mustLink(t, cfg)
	res, err := l.TransferFrame(testPayload(96, 41), TransferOptions{PadChips: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Acquired || !res.DeliveredOK {
		t.Fatalf("RC detector link failed: acquired=%v delivered=%v fwdErrs=%d",
			res.Acquired, res.DeliveredOK, res.ForwardBitErrors)
	}
}

func TestBadConfigRejected(t *testing.T) {
	if _, err := NewLink(LinkConfig{Code: "nope"}); err == nil {
		t.Fatal("bad code must error")
	}
	if _, err := NewLink(LinkConfig{Rho: 5}); err == nil {
		t.Fatal("bad rho must error")
	}
}

func TestEmptyPayloadTransfer(t *testing.T) {
	l := mustLink(t, cleanLinkConfig(35))
	res, err := l.TransferFrame(nil, TransferOptions{PadChips: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Acquired {
		t.Fatal("empty frame must still acquire")
	}
	if len(res.Chunks) != 0 || !res.DeliveredOK {
		t.Fatalf("empty frame: %+v", res)
	}
}

// The allocation budget of the Monte-Carlo hot path: once warmed up, a
// frame exchange through a reused result must not allocate at all.
// This is the contract the experiment harness relies on; any new
// allocation in link/tag/reader/sigproc frame code trips this test.
// TransferFrameInto and remapFeedback carry //fdlint:noalloc, so
// `go run ./cmd/fdlint ./...` pinpoints the construct that would make
// this test fail.
func TestTransferFrameIntoAllocFree(t *testing.T) {
	l, err := NewLink(LinkConfig{Modem: phy.OOK{SamplesPerChip: 4}, ChunkSize: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 256)
	var res TransferResult
	// Warm up every scratch buffer (waveform, correlator, envelopes).
	for i := 0; i < 3; i++ {
		if err := l.TransferFrameInto(payload, TransferOptions{PadChips: 8}, &res); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := l.TransferFrameInto(payload, TransferOptions{PadChips: 8}, &res); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state TransferFrameInto allocates %.1f objects/frame, budget is 0", allocs)
	}
}

// Reset must rewind a used link to exactly the state a fresh NewLink
// would produce: same frames, same randomness, same energy accounting.
func TestLinkResetMatchesFresh(t *testing.T) {
	cfg := LinkConfig{
		Modem: phy.OOK{SamplesPerChip: 4}, ChunkSize: 16, Seed: 77,
		Fading: channel.FadingGaussMarkov, GaussMarkovRho: 0.9,
		DistanceM: 4, TagNoiseW: 1e-9,
		Interferer: &InterfererConfig{PowerW: 0.05, DistanceToTagM: 3, DistanceToReaderM: 3, DutyCycle: 0.2},
	}
	payload := []byte("reset-lifecycle-regression-payload--")
	runFrames := func(l *Link) []TransferResult {
		out := make([]TransferResult, 0, 4)
		for i := 0; i < 4; i++ {
			res, err := l.TransferFrame(payload, TransferOptions{PadChips: -1, EarlyTerminate: i%2 == 0})
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, *res)
		}
		return out
	}

	fresh, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := runFrames(fresh)

	reused, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runFrames(reused) // dirty every piece of state
	reused.Reset(cfg.Seed)
	got := runFrames(reused)

	for i := range want {
		w, g := want[i], got[i]
		w.Chunks, g.Chunks = nil, nil // compared below; slices differ by identity
		w.Payload, g.Payload = nil, nil
		if fmt.Sprintf("%+v", w) != fmt.Sprintf("%+v", g) {
			t.Fatalf("frame %d differs after Reset:\nfresh: %+v\nreset: %+v", i, want[i], got[i])
		}
		if len(want[i].Chunks) != len(got[i].Chunks) {
			t.Fatalf("frame %d chunk count differs", i)
		}
		for j := range want[i].Chunks {
			if want[i].Chunks[j] != got[i].Chunks[j] {
				t.Fatalf("frame %d chunk %d differs: %+v vs %+v", i, j, want[i].Chunks[j], got[i].Chunks[j])
			}
		}
		if !bytes.Equal(want[i].Payload, got[i].Payload) {
			t.Fatalf("frame %d payload differs", i)
		}
	}
}

// Reconfigure must behave exactly like building a new link.
func TestLinkReconfigureMatchesNew(t *testing.T) {
	cfgA := LinkConfig{Modem: phy.OOK{SamplesPerChip: 4, Depth: 0.5}, ChunkSize: 32, Seed: 5,
		DistanceM: 4, TagNoiseW: 4e-9, Rho: 0.5}
	cfgB := LinkConfig{Modem: phy.OOK{SamplesPerChip: 4, Depth: 0.75}, ChunkSize: 16, Seed: 9,
		DistanceM: 3, TagNoiseW: 1e-8, ReaderNoiseW: 1e-8}
	payload := make([]byte, 192)

	l, err := NewLink(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.TransferFrame(payload, TransferOptions{PadChips: -1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Reconfigure(cfgB); err != nil {
		t.Fatal(err)
	}
	reco, err := l.TransferFrame(payload, TransferOptions{PadChips: -1})
	if err != nil {
		t.Fatal(err)
	}

	ref, err := NewLink(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.TransferFrame(payload, TransferOptions{PadChips: -1})
	if err != nil {
		t.Fatal(err)
	}
	if reco.FeedbackErrors != want.FeedbackErrors || reco.ForwardBitErrors != want.ForwardBitErrors ||
		reco.SamplesUsed != want.SamplesUsed || reco.DeliveredOK != want.DeliveredOK ||
		!bytes.Equal(reco.Payload, want.Payload) {
		t.Fatalf("reconfigured link diverges from fresh link:\nreco: %+v\nwant: %+v", reco, want)
	}
}

// Regression: a corrupted header can slip past its CRC-8 (a 1-in-256
// collision under heavy noise) and decode to a different chunk count
// at the tag. Pre-fix, TransferFrame then drove the tag past its own
// frame end — panicking in ProcessChunk when the tag's count was
// smaller than the transmitted one, and mis-indexing the per-chunk
// results otherwise. The seed below deterministically produces a
// collision where the tag expects 2 chunks of a 6-chunk frame
// (found by sweeping seeds at fig7's noisiest operating point).
func TestTransferFrameSurvivesHeaderCRCCollision(t *testing.T) {
	cfg := LinkConfig{
		Modem:     phy.OOK{SamplesPerChip: 4, Depth: 0.75},
		DistanceM: 3, TagNoiseW: 1e-6, ReaderNoiseW: 1e-6,
		ChunkSize: 32, Seed: 2766,
	}
	l, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := simrand.New(cfg.Seed ^ 0xabc)
	payload := make([]byte, 192)
	sawCollision := false
	for f := 0; f < 2; f++ {
		for i := range payload {
			payload[i] = byte(src.IntN(256))
		}
		res, err := l.TransferFrame(payload, TransferOptions{PadChips: -1})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Acquired {
			continue
		}
		tagN := l.Tag().ChunksExpected()
		n := res.Header.NumChunks()
		if tagN == n {
			continue
		}
		sawCollision = true
		if tagN >= n {
			t.Fatalf("hunted seed drifted: tagN=%d n=%d, want tagN < n", tagN, n)
		}
		// The reader transmitted the whole frame; every chunk must be
		// reported, and the chunks the tag never validated must read
		// as undelivered.
		if len(res.Chunks) != n {
			t.Fatalf("got %d chunk reports, want %d", len(res.Chunks), n)
		}
		for i := tagN; i < n; i++ {
			if res.Chunks[i].TagOK {
				t.Fatalf("chunk %d beyond the tag's decoded frame end reports TagOK", i)
			}
		}
		if res.DeliveredOK {
			t.Fatal("frame with a header collision cannot be DeliveredOK")
		}
	}
	if !sawCollision {
		t.Fatal("seed no longer produces a header CRC-8 collision; re-hunt one (sweep seeds at TagNoiseW=1e-6 until ChunksExpected() != Header.NumChunks())")
	}
}
