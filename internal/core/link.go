// Package core implements the paper's contribution end to end: a
// sample-accurate simulation of one full-duplex backscatter link. A
// reader transmits a chunked OOK frame; the tag decodes it chunk by
// chunk while backscattering per-chunk ACK/NACK; the reader decodes that
// feedback out of its own receive chain concurrently with transmission,
// and can abort a doomed frame within one chunk (early termination).
//
// The link composes the substrates: internal/channel for propagation,
// internal/phy for the forward modem and framing, internal/tag and
// internal/reader for the two devices, internal/feedback for the reverse
// channel, and internal/energy for the tag's power budget.
package core

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/energy"
	"repro/internal/feedback"
	"repro/internal/phy"
	"repro/internal/reader"
	"repro/internal/sigproc"
	"repro/internal/simrand"
	"repro/internal/tag"
)

// LinkConfig describes a complete reader-tag link and its environment.
type LinkConfig struct {
	// Modem is the forward OOK modem (shared by reader and tag).
	Modem phy.OOK
	// Code is the forward line code (default "fm0").
	Code string
	// SampleRate in Hz (default 1e6).
	SampleRate float64
	// TxPowerW is the reader transmit power in watts; the waveform is
	// scaled so a high chip carries this power (default 0.1 W / 20 dBm).
	TxPowerW float64
	// DistanceM is the reader-tag distance in metres (default 2).
	DistanceM float64
	// PathLoss overrides the propagation model (default log-distance
	// n=2.5 at 915 MHz).
	PathLoss channel.PathLoss
	// Fading selects small-scale fading on the forward and backward
	// paths; coefficients redraw per chunk block.
	Fading channel.FadingKind
	// RicianK for FadingRician; GaussMarkovRho for FadingGaussMarkov.
	RicianK        float64
	GaussMarkovRho float64
	// SelfLeakGain is the reader TX->RX leakage power gain (default
	// 0.01 = -20 dB antenna isolation).
	SelfLeakGain float64
	// Rho is the tag reflection coefficient (default 0.3).
	Rho float64
	// ChunkSize is the frame chunk size in bytes (default 32).
	ChunkSize uint8
	// ReaderNoiseW and TagNoiseW are receiver noise powers (default
	// 1e-13 W, about -100 dBm).
	ReaderNoiseW float64
	TagNoiseW    float64
	// SI selects the reader's self-interference strategy.
	SI reader.SIMode
	// FeedbackCode selects the feedback line code (default Manchester).
	FeedbackCode feedback.Code
	// DetectorCutoffHz enables the tag's envelope-detector RC.
	DetectorCutoffHz float64
	// Harvester, Capacitor, CircuitW configure the tag energy budget.
	Harvester energy.Harvester
	Capacitor energy.Capacitor
	CircuitW  float64
	// Interferer, when non-nil, adds a co-channel interferer.
	Interferer *InterfererConfig
	// Seed drives all randomness (fading, noise, pad jitter,
	// interferer timing).
	Seed uint64
}

// InterfererConfig describes a co-channel interfering transmitter that
// corrupts chunks (and their feedback) while active — the collision the
// full-duplex feedback detects mid-frame.
type InterfererConfig struct {
	// PowerW is the interferer transmit power.
	PowerW float64
	// DistanceToTagM / DistanceToReaderM position the interferer.
	DistanceToTagM    float64
	DistanceToReaderM float64
	// DutyCycle in [0,1]: the probability a given chunk block is hit.
	DutyCycle float64
	// BurstChunks: when a burst starts it spans this many chunk blocks
	// (default 1).
	BurstChunks int
}

// applyDefaults fills zero fields.
func (c *LinkConfig) applyDefaults() {
	if c.Code == "" {
		c.Code = "fm0"
	}
	if c.SampleRate <= 0 {
		c.SampleRate = 1e6
	}
	if c.TxPowerW <= 0 {
		c.TxPowerW = 0.1
	}
	if c.DistanceM <= 0 {
		c.DistanceM = 2
	}
	if c.PathLoss == nil {
		c.PathLoss = channel.NewLogDistance(915e6, 2.5)
	}
	if c.SelfLeakGain <= 0 {
		c.SelfLeakGain = 0.01
	}
	if c.Rho == 0 {
		c.Rho = 0.3
	}
	if c.ChunkSize == 0 {
		c.ChunkSize = 32
	}
	if c.ReaderNoiseW <= 0 {
		c.ReaderNoiseW = 1e-13
	}
	if c.TagNoiseW <= 0 {
		c.TagNoiseW = 1e-13
	}
}

// Link is a configured full-duplex backscatter link. Not safe for
// concurrent use; create one per goroutine.
type Link struct {
	cfg LinkConfig
	rd  *reader.Reader
	tg  *tag.Tag
	src *simrand.Source

	fwd, bwd *channel.Path // reader->tag, tag->reader
	leak     *channel.Path // reader self-interference
	intTag   *channel.Path // interferer->tag
	intRd    *channel.Path // interferer->reader

	seq uint8

	// Scratch buffers reused across frames so the steady-state
	// TransferFrameInto path allocates nothing.
	incident, reflected, rdRx, intBlock sigproc.IQ
	wireBuf                             []byte
	truthBits                           []byte
	idleStates                          []byte
	interfPlan                          []bool
	rawBits                             []byte
	rawMargins                          []float64
}

// NewLink builds a link from the configuration.
func NewLink(cfg LinkConfig) (*Link, error) {
	l := &Link{src: simrand.New(cfg.Seed)}
	if err := l.Reconfigure(cfg); err != nil {
		return nil, err
	}
	return l, nil
}

// Reconfigure re-initialises the link in place for a new configuration,
// reusing the waveform-sized scratch buffers (and the random source)
// of the old one. The resulting link behaves exactly like
// NewLink(cfg); experiment harnesses use it to run many parameter
// points through one link instead of reconstructing the buffers per
// cell.
func (l *Link) Reconfigure(cfg LinkConfig) error {
	cfg.applyDefaults()
	rdCfg := reader.Config{
		Modem: cfg.Modem, Code: cfg.Code, SI: cfg.SI, FeedbackCode: cfg.FeedbackCode,
	}
	tgCfg := tag.Config{
		Modem: cfg.Modem, Code: cfg.Code, Rho: cfg.Rho,
		DetectorCutoffHz: cfg.DetectorCutoffHz, SampleRate: cfg.SampleRate,
		Harvester: cfg.Harvester, Capacitor: cfg.Capacitor, CircuitW: cfg.CircuitW,
	}
	if l.rd == nil {
		l.rd = &reader.Reader{}
	}
	if err := l.rd.Reconfigure(rdCfg); err != nil {
		return fmt.Errorf("core: reader: %w", err)
	}
	if l.tg == nil {
		l.tg = &tag.Tag{}
	}
	if err := l.tg.Reconfigure(tgCfg); err != nil {
		return fmt.Errorf("core: tag: %w", err)
	}
	l.cfg = cfg
	l.seq = 0
	l.src.Reseed(cfg.Seed)
	l.buildPaths()
	return nil
}

// Reset rewinds the link to the state NewLink would produce with the
// given seed, without reconstructing the reader, tag, or any scratch:
// the random stream restarts, faders and paths are re-derived in the
// construction order (so their Split children match a fresh build), the
// tag's capacitor recharges, and the frame sequence returns to zero.
func (l *Link) Reset(seed uint64) {
	l.cfg.Seed = seed
	l.seq = 0
	l.src.Reseed(seed)
	l.buildPaths()
	l.rd.Reset()
	l.tg.Reset()
}

// buildPaths derives the propagation paths and their faders from the
// configuration. Fader construction order matters: each fader Splits
// the link source, so the sequence below is part of the link's
// deterministic seeding contract.
func (l *Link) buildPaths() {
	cfg := &l.cfg
	gain := cfg.PathLoss.Gain(cfg.DistanceM)
	mkFader := func() channel.Fader {
		switch cfg.Fading {
		case channel.FadingRayleigh:
			return channel.NewRayleighFader(l.src)
		case channel.FadingRician:
			return channel.NewRicianFader(l.src, cfg.RicianK)
		case channel.FadingGaussMarkov:
			return channel.NewGaussMarkovFader(l.src, cfg.GaussMarkovRho)
		default:
			return nil
		}
	}
	l.fwd = &channel.Path{Gain: gain, Fader: mkFader()}
	l.bwd = &channel.Path{Gain: gain, Fader: mkFader()}
	l.leak = &channel.Path{Gain: cfg.SelfLeakGain}
	l.intTag, l.intRd = nil, nil
	if ic := cfg.Interferer; ic != nil {
		l.intTag = &channel.Path{Gain: cfg.PathLoss.Gain(ic.DistanceToTagM), Fader: mkFader()}
		l.intRd = &channel.Path{Gain: cfg.PathLoss.Gain(ic.DistanceToReaderM), Fader: mkFader()}
	}
}

// Tag exposes the link's tag (for energy inspection in experiments).
func (l *Link) Tag() *tag.Tag { return l.tg }

// Reader exposes the link's reader.
func (l *Link) Reader() *reader.Reader { return l.rd }

// TransferOptions tune one frame exchange.
type TransferOptions struct {
	// EarlyTerminate aborts the forward transmission as soon as the
	// reader decodes a NACK (the paper's headline application).
	EarlyTerminate bool
	// DisableFeedback silences the tag (for forward-impact ablation:
	// fig3's "feedback off" curve).
	DisableFeedback bool
	// PadChips overrides the random idle padding before the preamble
	// (negative = randomise from the link's seed).
	PadChips int
}

// ChunkReport pairs ground truth with what each side observed for one
// chunk.
type ChunkReport struct {
	// TagOK is the tag-side CRC outcome (ground truth of delivery).
	TagOK bool
	// ReaderBit is the ACK bit the reader decoded (1 = ACK); valid only
	// if ReaderSawBit.
	ReaderBit byte
	// ReaderSawBit reports whether the reader had a slot to decode this
	// chunk's feedback (false after an early abort).
	ReaderSawBit bool
	// Margin is the reader's soft confidence for the bit.
	Margin float64
	// Interfered reports whether the interferer was active during the
	// chunk's airtime.
	Interfered bool
}

// TransferResult summarises one frame exchange.
type TransferResult struct {
	// Header that was transmitted.
	Header phy.Header
	// Acquired reports whether the tag synchronised and decoded the
	// header.
	Acquired bool
	// HeaderAckOK reports whether the reader decoded the header ACK.
	HeaderAckOK bool
	// Chunks holds the per-chunk reports (length = chunks transmitted
	// before any abort).
	Chunks []ChunkReport
	// Payload is the tag-side recovered payload (may be partial or
	// corrupt).
	Payload []byte
	// DeliveredOK reports whether every chunk passed CRC at the tag.
	DeliveredOK bool
	// Aborted reports whether early termination stopped the frame.
	Aborted bool
	// AbortAfterChunk is the index of the last chunk transmitted before
	// aborting (valid when Aborted).
	AbortAfterChunk int
	// SamplesUsed counts transmitted samples (airtime actually spent).
	SamplesUsed int
	// SamplesFull is the airtime a full (non-aborted) frame would use.
	SamplesFull int
	// FeedbackErrors counts reader feedback bits that disagree with the
	// tag-side truth.
	FeedbackErrors int
	// FeedbackBits counts feedback decision opportunities the reader had.
	FeedbackBits int
	// ForwardBitErrors counts payload bit errors at the tag (ground
	// truth comparison), over the chunks that were transmitted.
	ForwardBitErrors int
	// ForwardBits counts payload bits transmitted.
	ForwardBits int
	// HarvestedJ is the tag capacitor energy delta over the exchange.
	HarvestedJ float64
}

// GoodputBytes returns the payload bytes confirmed delivered (chunks that
// passed CRC at the tag).
func (r *TransferResult) GoodputBytes() int {
	n := 0
	for i, c := range r.Chunks {
		if c.TagOK {
			s, e := r.Header.ChunkPayloadRange(i)
			n += e - s
		}
	}
	return n
}

// TransferFrame runs one complete frame exchange through the waveform
// pipeline and returns the detailed result. Monte-Carlo loops should
// prefer TransferFrameInto with a reused result, which keeps the
// steady-state frame path allocation-free.
func (l *Link) TransferFrame(payload []byte, opts TransferOptions) (*TransferResult, error) {
	res := &TransferResult{}
	if err := l.TransferFrameInto(payload, opts, res); err != nil {
		return nil, err
	}
	return res, nil
}

// TransferFrameInto runs one complete frame exchange through the
// waveform pipeline, writing the detailed result into res. All of
// res's previous contents are overwritten; its Chunks and Payload
// storage is reused, so a result recycled across trials makes the
// steady-state frame exchange allocation-free (see
// TestTransferFrameIntoAllocFree in link_test.go). On error res is left
// in an undefined state.
//
//fdlint:noalloc
func (l *Link) TransferFrameInto(payload []byte, opts TransferOptions, res *TransferResult) error {
	cfg := &l.cfg
	hdr := phy.Header{
		Type: phy.FrameData, Seq: l.seq, ChunkSize: cfg.ChunkSize,
	}
	l.seq++
	wire, err := phy.BuildFrame(hdr, payload, l.wireBuf[:0])
	l.wireBuf = wire
	if err != nil {
		return err
	}
	hdr.Version = phy.ProtocolVersion
	hdr.PayloadLen = uint16(len(payload))

	pad := opts.PadChips
	if pad < 0 {
		pad = 4 + l.src.IntN(32)
	}
	wave, layout, err := l.rd.BuildWaveform(wire, hdr, pad)
	if err != nil {
		return err
	}
	// Scale to transmit power: high chip amplitude = sqrt(TxPowerW).
	wave.ScaleReal(sigproc.AmplitudeForPower(cfg.TxPowerW) / cfg.Modem.LevelHigh())

	*res = TransferResult{
		Header: hdr, SamplesFull: layout.FlushEnd,
		Chunks: res.Chunks[:0], Payload: res.Payload[:0],
	}
	l.tg.SetMute(opts.DisableFeedback)
	e0 := l.tg.StoredEnergy()
	margin := l.tg.MarginSamples()

	interferedChunks := l.planInterference(hdr.NumChunks())

	// --- Acquisition block ---
	acqEnd := layout.AcquireEnd
	viewEnd := minInt(acqEnd+margin, len(wave))
	incident := l.propagateToTag(wave[:viewEnd], 0, false)
	_, acq := l.tg.Acquire(incident, acqEnd, cfg.SampleRate)
	res.Acquired = acq.OK
	res.SamplesUsed = acqEnd
	// Reader calibrates its leakage estimate on the idle pad (tag is
	// absorbing there).
	if layout.PadLen > 0 {
		l.idleStates = feedback.AppendIdleStates(l.idleStates[:0], layout.PadLen)
		l.rdRx = l.receiverBlock(wave[:layout.PadLen], incident[:layout.PadLen],
			l.idleStates, false, l.rdRx)
		l.rd.Calibrate(l.rdRx, wave[:layout.PadLen])
	}
	if !acq.OK {
		// Tag deaf: the reader transmits the whole frame and hears no
		// feedback. All airtime is wasted.
		res.SamplesUsed = layout.FlushEnd
		res.HarvestedJ = l.tg.StoredEnergy() - e0
		res.ForwardBits = len(payload) * 8
		res.ForwardBitErrors = len(payload) * 8
		return nil
	}

	// --- Chunk blocks ---
	n := hdr.NumChunks()
	// A corrupted header can slip past its CRC-8 and decode to a
	// different chunk count at the tag; the tag then stops listening
	// after its own count while the reader keeps transmitting. Guard
	// the loop so those extra chunks are processed reader-side only.
	tagN := l.tg.ChunksExpected()
	truthBits := append(l.truthBits[:0], 1) // header ACK
	for i := 0; i < n; i++ {
		s, e := layout.ChunkBlock(i)
		blockLen := e - s
		viewEnd := minInt(e+margin, len(wave))
		interfered := interferedChunks[i]
		incident := l.propagateToTag(wave[s:viewEnd], i+1, interfered)
		var states []byte
		if i < tagN {
			states = l.tg.ProcessChunk(incident, blockLen, cfg.SampleRate)
		} else {
			// Tag believes the frame already ended: it absorbs quietly.
			l.idleStates = feedback.AppendIdleStates(l.idleStates[:0], blockLen)
			states = l.idleStates
		}

		// Reader receives leak + reflected (+ interference) and decodes
		// the feedback bit for the previous chunk (or header ACK).
		l.rdRx = l.receiverBlock(wave[s:e], incident[:blockLen], states, interfered, l.rdRx)
		bit, m := l.rd.DecodeFeedbackBit(l.rdRx, wave[s:e])
		res.FeedbackBits++

		rep := ChunkReport{Interfered: interfered, ReaderSawBit: true, ReaderBit: bit, Margin: m}
		if opts.DisableFeedback {
			rep.ReaderSawBit = false
			res.FeedbackBits--
		}
		res.Chunks = append(res.Chunks, rep)
		res.SamplesUsed = e

		// Score the feedback bit against truth (bit i of truthBits).
		if !opts.DisableFeedback {
			want := truthBits[len(truthBits)-1]
			if bit != want {
				res.FeedbackErrors++
			}
			if len(truthBits) == 1 {
				res.HeaderAckOK = bit == 1
			}
		}
		tagOKs := l.tg.ChunkResultsView()
		truth := byte(0)
		if i < len(tagOKs) && tagOKs[i] {
			truth = 1
		}
		truthBits = append(truthBits, truth)

		// Early termination: the reader aborts when it decodes a NACK.
		if opts.EarlyTerminate && !opts.DisableFeedback && bit == 0 {
			res.Aborted = true
			res.AbortAfterChunk = i
			break
		}
	}
	l.truthBits = truthBits

	// --- Flush slot (skipped entirely on abort: the reader stops
	// transmitting) ---
	flushBit, flushMargin, flushSeen := byte(0), 0.0, false
	if !res.Aborted {
		fs, fe := layout.FlushBlock()
		if fe > fs {
			incident := l.propagateToTag(wave[fs:fe], n+1, false)
			states := l.tg.Flush(incident, 0, cfg.SampleRate)
			l.rdRx = l.receiverBlock(wave[fs:fe], incident, states, false, l.rdRx)
			bit, m := l.rd.DecodeFeedbackBit(l.rdRx, wave[fs:fe])
			if !opts.DisableFeedback && n > 0 {
				res.FeedbackBits++
				if bit != truthBits[len(truthBits)-1] {
					res.FeedbackErrors++
				}
				flushBit, flushMargin, flushSeen = bit, m, true
			}
			res.SamplesUsed = fe
		}
	}

	// Fill per-chunk reader bits: the bit decoded during chunk i's block
	// belongs to chunk i-1; shift so ChunkReport.ReaderBit lines up with
	// its own chunk. (The raw in-slot bits were recorded above; remap.)
	l.remapFeedback(res, flushBit, flushMargin, flushSeen, opts)

	// Ground-truth forward bit errors over transmitted chunks.
	got := l.tg.PayloadView()
	sent := 0
	for i := range res.Chunks {
		s, e := hdr.ChunkPayloadRange(i)
		sent = e
		for b := s; b < e && b < len(got) && b < len(payload); b++ {
			res.ForwardBitErrors += popcount8(got[b] ^ payload[b])
		}
	}
	res.ForwardBits = sent * 8
	res.Payload = append(res.Payload, got...)
	tagOKs := l.tg.ChunkResultsView()
	res.DeliveredOK = len(res.Chunks) == n
	for i := range res.Chunks {
		ok := i < len(tagOKs) && tagOKs[i]
		res.Chunks[i].TagOK = ok
		if !ok {
			res.DeliveredOK = false
		}
	}
	res.HarvestedJ = l.tg.StoredEnergy() - e0
	return nil
}

// remapFeedback aligns reader-decoded bits with the chunks they describe:
// the bit decoded during chunk i's airtime is chunk i-1's ACK (the bit
// during chunk 0 is the header ACK; the flush bit is the final chunk's).
// On the TestTransferFrameIntoAllocFree hot path.
//
//fdlint:noalloc
func (l *Link) remapFeedback(res *TransferResult, flushBit byte, flushMargin float64, flushSeen bool, opts TransferOptions) {
	if opts.DisableFeedback {
		for i := range res.Chunks {
			res.Chunks[i].ReaderSawBit = false
		}
		return
	}
	raw := l.rawBits[:0]
	margins := l.rawMargins[:0]
	for _, c := range res.Chunks {
		raw = append(raw, c.ReaderBit)
		margins = append(margins, c.Margin)
	}
	l.rawBits, l.rawMargins = raw, margins
	for i := range res.Chunks {
		switch {
		case i+1 < len(raw):
			res.Chunks[i].ReaderBit = raw[i+1]
			res.Chunks[i].Margin = margins[i+1]
			res.Chunks[i].ReaderSawBit = true
		case flushSeen:
			// Last transmitted chunk: its bit arrived in the flush slot.
			res.Chunks[i].ReaderBit = flushBit
			res.Chunks[i].Margin = flushMargin
			res.Chunks[i].ReaderSawBit = true
		default:
			res.Chunks[i].ReaderSawBit = false
		}
	}
}

// propagateToTag renders the incident waveform at the tag for a block:
// forward path (new fading draw per block index) plus optional
// interference plus tag receiver noise.
func (l *Link) propagateToTag(tx sigproc.IQ, blockIdx int, interfered bool) sigproc.IQ {
	l.fwd.BlockStart()
	if cap(l.incident) < len(tx) {
		l.incident = make(sigproc.IQ, len(tx))
	}
	inc := l.incident[:len(tx)]
	inc.Zero()
	l.fwd.AddTo(tx, inc)
	if interfered && l.intTag != nil {
		l.intTag.BlockStart()
		l.intBlock = l.interfererWave(len(tx), l.intBlock)
		l.intTag.AddTo(l.intBlock, inc)
	}
	l.src.FillNoise(inc, l.cfg.TagNoiseW)
	return inc
}

// receiverBlock renders what the reader's receive chain sees during a
// block: self-leakage + tag reflection propagated back (+ interference)
// + receiver noise.
func (l *Link) receiverBlock(tx, incidentAtTag sigproc.IQ, states []byte, interfered bool, dst sigproc.IQ) sigproc.IQ {
	if cap(dst) < len(tx) {
		dst = make(sigproc.IQ, len(tx))
	}
	dst = dst[:len(tx)]
	dst.Zero()
	l.leak.AddTo(tx, dst)
	l.reflected = tag.ReflectWaveform(incidentAtTag, states, l.cfg.Rho, l.reflected)
	l.bwd.BlockStart()
	l.bwd.AddTo(l.reflected, dst)
	if interfered && l.intRd != nil {
		l.intRd.BlockStart()
		// Reuse the same interferer waveform shape scaled to this block.
		l.intBlock = l.interfererWave(len(tx), l.intBlock)
		l.intRd.AddTo(l.intBlock, dst)
	}
	l.src.FillNoise(dst, l.cfg.ReaderNoiseW)
	return dst
}

// interfererWave synthesises the interferer's transmission for a block:
// random OOK chips at its transmit power.
func (l *Link) interfererWave(n int, dst sigproc.IQ) sigproc.IQ {
	if cap(dst) < n {
		dst = make(sigproc.IQ, n)
	}
	dst = dst[:n]
	amp := sigproc.AmplitudeForPower(l.cfg.Interferer.PowerW)
	sps := l.cfg.Modem.SamplesPerChipN()
	for i := 0; i < n; i += sps {
		v := complex(0, 0)
		if l.src.Bit() == 1 {
			v = complex(amp, 0)
		}
		end := minInt(i+sps, n)
		for j := i; j < end; j++ {
			dst[j] = v
		}
	}
	return dst
}

// planInterference decides which chunk blocks the interferer hits.
// The returned plan aliases link scratch, valid until the next call.
func (l *Link) planInterference(nChunks int) []bool {
	if cap(l.interfPlan) < nChunks {
		l.interfPlan = make([]bool, nChunks)
	}
	out := l.interfPlan[:nChunks]
	for i := range out {
		out[i] = false
	}
	ic := l.cfg.Interferer
	if ic == nil || ic.DutyCycle <= 0 {
		return out
	}
	burst := ic.BurstChunks
	if burst < 1 {
		burst = 1
	}
	// Per-chunk burst starts with probability tuned so the expected
	// busy fraction matches DutyCycle.
	pStart := ic.DutyCycle / float64(burst)
	for i := 0; i < nChunks; i++ {
		if l.src.Bool(pStart) {
			for j := i; j < minInt(i+burst, nChunks); j++ {
				out[j] = true
			}
		}
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func popcount8(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}
