// Package orderedrange enforces the byte-identical-output contract at
// its weakest link: Go map iteration order is deliberately randomized,
// so a `range` over a map must never be allowed to leak its order into
// an output sink — a trace table, an NDJSON/SSE encoder, or any
// fmt.Fprint-style writer.
//
// A map range is reported when ordering can escape:
//
//   - its body calls an output sink directly, or
//   - its body collects values into a slice that later reaches a sink
//     or a return statement.
//
// Two idioms establish order and suppress the report:
//
//   - key harvest: the body only appends the range KEY to a slice that
//     is later passed to any sort call — map keys are unique, so any
//     sort yields a deterministic permutation; iterate the sorted keys
//     and index the map instead of ranging it near output.
//   - total-order element sort: the collected slice is passed to
//     sort.Strings / sort.Ints / sort.Float64s / slices.Sort, whose
//     element ordering is total. Comparator sorts (sort.Slice,
//     sort.SliceStable, sort.Sort, slices.SortFunc, ...) do NOT
//     qualify for value collections: the analyzer cannot prove the
//     less function induces a total order, and an unstable sort with
//     comparator ties re-exposes map order.
//
// The escape hatch is an explicit `//fdlint:ordered <reason>`
// annotation on the range statement (or the line above); a bare
// annotation with no reason is itself a diagnostic. orderedrange also
// owns fdlint annotation hygiene: unknown //fdlint: verbs anywhere are
// reported here.
package orderedrange

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analyze/analysis"
	"repro/internal/analyze/annotate"
)

// Analyzer is the orderedrange analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "orderedrange",
	Doc: "map iteration order must not reach output sinks: sort keys " +
		"first, use a total-order element sort, or annotate " +
		"//fdlint:ordered with a reason",
	Run: run,
}

// SinkMethods are method names treated as output sinks wherever they
// appear — writers, encoders, and the trace table mutators. Matching
// by name keeps the check path-insensitive: a rename or a new writer
// type stays covered as long as it follows io conventions.
var SinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "WriteTo": true,
	"Encode": true, "EncodeToken": true,
	"AddRow": true, "AddCells": true, "WriteText": true, "WriteCSV": true,
	"writeLine": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		af := annotate.NewFile(pass.Fset, f)
		for _, d := range af.All() {
			if !annotate.Known(d.Verb) {
				pass.Reportf(d.Pos, "unknown fdlint directive %q (known: noalloc, alloc-ok, ordered, parallel, workerpool, serial, stream-ok, shard-ok, novalidate)", d.Verb)
			}
		}
		// Examine each function (decl or literal) independently: the
		// leak scope for a collected slice is its enclosing function.
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkFunc(pass, af, body)
			}
			return true
		})
	}
	return nil, nil
}

// checkFunc examines every map range directly inside one function
// body (nested function literals are visited separately by run).
func checkFunc(pass *analysis.Pass, af *annotate.File, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rs.X]
		if !ok || tv.Type == nil {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRange(pass, af, body, rs)
		return true
	})
}

func checkMapRange(pass *analysis.Pass, af *annotate.File, fnBody *ast.BlockStmt, rs *ast.RangeStmt) {
	if d, ok := af.Has(rs, "ordered"); ok {
		if d.Reason == "" {
			pass.Reportf(rs.Pos(), "//fdlint:ordered suppression is missing a reason")
		}
		return
	}

	// Direct sinks inside the body.
	if pos, sink := findSink(pass, rs.Body); sink != "" {
		pass.Reportf(pos, "map iteration order reaches output sink %s; sort the keys first or annotate //fdlint:ordered with a reason", sink)
		return
	}

	// Collections: slices appended to inside the body.
	keyObj := rangeKeyObject(pass, rs)
	for _, col := range findCollections(pass, rs.Body) {
		if !leaks(pass, fnBody, rs, col.obj) {
			continue
		}
		keyOnly := keyObj != nil && col.keyOnly(pass, keyObj)
		anySort, totalSort := sortedBy(pass, fnBody, rs, col.obj)
		if keyOnly && anySort {
			continue // sorted key harvest: deterministic by key uniqueness
		}
		if totalSort {
			continue // total-order element sort: deterministic
		}
		if anySort {
			pass.Reportf(rs.Pos(),
				"map values collected into %q reach output ordered only by a comparator sort, which the analyzer cannot prove total; harvest and sort the keys instead (or annotate //fdlint:ordered with a reason)",
				col.obj.Name())
		} else {
			pass.Reportf(rs.Pos(),
				"map iteration order leaks through %q to an output path; sort before output or annotate //fdlint:ordered with a reason",
				col.obj.Name())
		}
		return
	}
}

// rangeKeyObject returns the object of the range key variable, if any.
func rangeKeyObject(pass *analysis.Pass, rs *ast.RangeStmt) types.Object {
	id, ok := rs.Key.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

// collection is one slice variable appended to inside a range body.
type collection struct {
	obj  types.Object
	args [][]ast.Expr // argument lists of the appends feeding it
}

// keyOnly reports whether every append fed the slice nothing but the
// range key variable.
func (c *collection) keyOnly(pass *analysis.Pass, key types.Object) bool {
	for _, args := range c.args {
		for _, a := range args {
			id, ok := a.(*ast.Ident)
			if !ok || identObject(pass, id) != key {
				return false
			}
		}
	}
	return true
}

// identObject resolves an ident to its object, whether it is a use or
// a definition site.
func identObject(pass *analysis.Pass, id *ast.Ident) types.Object {
	if o := pass.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return pass.TypesInfo.Defs[id]
}

// findCollections finds `v = append(v, ...)` statements in the body.
func findCollections(pass *analysis.Pass, body *ast.BlockStmt) []*collection {
	byObj := map[types.Object]*collection{}
	var out []*collection
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isBuiltinAppend(pass, call) || len(call.Args) < 2 {
			return true
		}
		obj := identObject(pass, lhs)
		if obj == nil {
			return true
		}
		col := byObj[obj]
		if col == nil {
			col = &collection{obj: obj}
			byObj[obj] = col
			out = append(out, col)
		}
		col.args = append(col.args, call.Args[1:])
		return true
	})
	return out
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// leaks reports whether obj reaches a sink call or a return statement
// in the function, outside the range statement itself.
func leaks(pass *analysis.Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if n == rs || found {
			return false
		}
		switch s := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				if mentions(pass, r, obj) {
					found = true
				}
			}
		case *ast.CallExpr:
			if name := sinkName(pass, s); name != "" {
				for _, a := range s.Args {
					if mentions(pass, a, obj) {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// sortedBy reports whether obj is passed to a sort call in the
// function: any sort at all, and whether one of them was a total-order
// element sort.
func sortedBy(pass *analysis.Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) (anySort, totalSort bool) {
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if n == rs {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		kind := sortKind(pass, call)
		if kind == sortNone {
			return true
		}
		for _, a := range call.Args {
			if mentions(pass, a, obj) {
				anySort = true
				if kind == sortTotal {
					totalSort = true
				}
			}
		}
		return true
	})
	return anySort, totalSort
}

type sortClass int

const (
	sortNone sortClass = iota
	sortTotal
	sortComparator
)

// sortKind classifies a call as a total-order element sort, a
// comparator sort, or not a sort.
func sortKind(pass *analysis.Pass, call *ast.CallExpr) sortClass {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return sortNone
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return sortNone
	}
	switch obj.Pkg().Path() {
	case "sort":
		switch obj.Name() {
		case "Strings", "Ints", "Float64s":
			return sortTotal
		case "Slice", "SliceStable", "Sort", "Stable":
			return sortComparator
		}
	case "slices":
		switch obj.Name() {
		case "Sort":
			return sortTotal
		case "SortFunc", "SortStableFunc":
			return sortComparator
		}
	}
	return sortNone
}

// findSink returns the position and name of the first direct sink call
// inside the body.
func findSink(pass *analysis.Pass, body *ast.BlockStmt) (token.Pos, string) {
	var pos token.Pos
	var name string
	ast.Inspect(body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if s := sinkName(pass, call); s != "" {
			pos, name = call.Pos(), s
			return false
		}
		return true
	})
	return pos, name
}

// mentions reports whether expr references obj.
func mentions(pass *analysis.Pass, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// sinkName classifies a call as an output sink, returning a printable
// name ("" when not a sink): fmt's print family targeting writers or
// stdout, and any method named like a writer/encoder/table mutator.
func sinkName(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil {
		return ""
	}
	if obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		if strings.HasPrefix(obj.Name(), "Fprint") || strings.HasPrefix(obj.Name(), "Print") {
			return "fmt." + obj.Name()
		}
		return ""
	}
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil && SinkMethods[obj.Name()] {
		return "(" + types.TypeString(sig.Recv().Type(), nil) + ")." + obj.Name()
	}
	return ""
}
