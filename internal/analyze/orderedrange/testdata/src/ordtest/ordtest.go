// Package ordtest is the orderedrange corpus: map ranges that leak
// iteration order into sinks, the blessed sorted idioms, and the
// annotation escape hatches.
package ordtest

import (
	"fmt"
	"io"
	"sort"
)

// Table stands in for trace.Table: AddRow is a sink method by name.
type Table struct{ rows [][]string }

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// Dump prints straight out of a map range: the classic leak.
func Dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `map iteration order reaches output sink fmt\.Fprintf`
	}
}

// Fill feeds a table row per map entry: method sink.
func Fill(t *Table, m map[string]string) {
	for k, v := range m {
		t.AddRow(k, v) // want `map iteration order reaches output sink .*AddRow`
	}
}

// Values collects map values and orders them with a comparator sort
// before returning: the analyzer cannot prove the comparator total, so
// this is flagged — harvest and sort the keys instead.
func Values(m map[string]int) []int {
	out := make([]int, 0, len(m))
	for _, v := range m { // want `ordered only by a comparator sort`
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Leak collects and returns with no sort at all.
func Leak(m map[string]int) []int {
	var out []int
	for _, v := range m { // want `map iteration order leaks through "out"`
		out = append(out, v)
	}
	return out
}

// Keys is the blessed idiom: harvest the keys (unique by construction)
// and any sort — even a comparator sort — yields a deterministic
// permutation.
func Keys(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// Vals is the other blessed idiom: a total-order element sort on the
// collected values.
func Vals(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Count never lets the order escape: clean.
func Count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Lines ranges a slice, not a map: clean regardless of the sink.
func Lines(w io.Writer, lines []string) {
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
}

// DumpAnnotated suppresses the finding with a justified annotation.
func DumpAnnotated(w io.Writer, m map[string]int) {
	for k := range m { //fdlint:ordered debug aid, output order immaterial
		fmt.Fprintln(w, k)
	}
}

// DumpBare carries a bare suppression: that is its own diagnostic.
func DumpBare(w io.Writer, m map[string]int) {
	for k := range m { //fdlint:ordered // want `suppression is missing a reason`
		fmt.Fprintln(w, k)
	}
}

//fdlint:sortfirst keys must come sorted // want `unknown fdlint directive "sortfirst"`
func oops(m map[string]int) int { return len(m) }
