package orderedrange_test

import (
	"testing"

	"repro/internal/analyze/analysistest"
	"repro/internal/analyze/orderedrange"
)

// The corpus proves the analyzer flags direct sinks inside map ranges,
// flags value collections ordered only by comparator sorts, accepts
// the sorted-key-harvest and total-order-sort idioms, enforces reasons
// on //fdlint:ordered suppressions, and reports unknown fdlint verbs.
func TestOrderedRange(t *testing.T) {
	analysistest.Run(t, "testdata", orderedrange.Analyzer, "ordtest")
}
