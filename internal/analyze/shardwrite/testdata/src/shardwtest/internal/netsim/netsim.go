// Package netsim is the shardwrite corpus: a miniature of the
// engine's struct-of-arrays round state exercising the index
// provenance rules — range-parameter indices, arithmetic and
// partition-column indirection, element-pointer narrowing, cross-index
// and whole-column violations, and the shard-ok escape hatch.
package netsim

type worker struct {
	slots []int32
}

type engine struct {
	alive       []bool
	stats       []int64
	cellAcc     []int64
	activeCells []int32
	cursor      int
	total       int64
}

// goodShard writes its granted range [lo, hi): every index is the
// loop variable rooted at the range parameters.
//
//fdlint:parallel
func (e *engine) goodShard(lo, hi int) {
	for i := lo; i < hi; i++ {
		e.alive[i] = true
		e.stats[i]++
	}
}

// goodIndirect derives indices through arithmetic, conversions, and a
// partition column loaded at the granted cell index.
//
//fdlint:parallel
func (e *engine) goodIndirect(ci int) {
	acc := &e.cellAcc[ci]
	*acc = 0
	r := int(e.activeCells[ci])
	base := r * 4
	for k := 0; k < 4; k++ {
		e.stats[base+k] = 0
	}
}

// goodScratch writes only worker-local scratch handed in as a
// parameter: exempt regardless of index provenance.
//
//fdlint:parallel
func (e *engine) goodScratch(w *worker, lo, hi int) {
	count := w.slots[:8]
	for s := 0; s < 8; s++ {
		count[s] = 0
	}
	copy(w.slots, e.activeCells)
}

// goodSlicedBulk bulk-copies into the shard's own sub-range.
//
//fdlint:parallel
func (e *engine) goodSlicedBulk(lo, hi int) {
	copy(e.stats[lo:hi], e.cellAcc)
}

// crossIndex writes shared columns at a field-loaded cursor and a
// literal slot: neither derives from the shard's grant.
//
//fdlint:parallel
func (e *engine) crossIndex(lo, hi int) {
	for i := lo; i < hi; i++ {
		e.stats[e.cursor] = 1 // want `index not derived from the shard's own parameters`
		e.stats[0] = 1        // want `index not derived from the shard's own parameters`
		e.stats[i] = 1
	}
	e.stats[e.cursor]++ // want `index not derived from the shard's own parameters`
}

// aliasShared writes shared storage through a local alias: the alias
// chase keeps the column shared, so the index rules still apply.
//
//fdlint:parallel
func (e *engine) aliasShared(lo, hi int) {
	t := e.stats
	for i := lo; i < hi; i++ {
		t[i] = 1
		t[e.cursor] = 1 // want `index not derived from the shard's own parameters`
	}
}

// wholeColumn replaces a shared column, bulk-copies over one, and
// bumps a shared scalar: all race across shards.
//
//fdlint:parallel
func (e *engine) wholeColumn(lo, hi int) {
	e.alive = nil            // want `writes engine-shared state without an element index`
	copy(e.stats, e.cellAcc) // want `applies copy to an engine-shared column`
	e.total++                // want `writes engine-shared state without an element index`
	_ = lo
	_ = hi
}

// externalPartition documents an ownership argument the lattice cannot
// see; a reasoned shard-ok suppresses, a bare one is itself flagged
// and suppresses nothing.
//
//fdlint:parallel
func (e *engine) externalPartition(lo, hi int) {
	e.stats[e.cursor] = 1 //fdlint:shard-ok cursor is pinned per shard before dispatch
	e.stats[e.cursor] = 2 //fdlint:shard-ok // want `shard-ok suppression requires a reason` `index not derived from the shard's own parameters`
	_ = lo
	_ = hi
}

// prep takes no integer grant: there is no shard parameter to derive
// from, so the checker skips it (sharded still governs its streams).
//
//fdlint:parallel
func (e *engine) prep(w *worker) {
	e.total = 0
	_ = w
}
