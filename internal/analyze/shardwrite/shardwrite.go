// Package shardwrite closes the gap the sharded analyzer leaves
// between "no channels in parallel sections" and "no data races":
// inside a //fdlint:parallel function, writes that reach engine-shared
// storage (the receiver's struct-of-arrays columns, or aliases of
// them) must land at indices derived from the shard's own parameters —
// the range [lo, hi), the cell index, the tag id the dispatcher
// granted. Cross-index writes (a literal slot, a field-loaded cursor,
// another shard's variable) and whole-column writes (slice replace,
// copy/clear/append over a shared column) are flagged.
//
// Derivation is the index-provenance lattice over the dataflow
// def-use chains: parameters are derived roots; arithmetic, slicing,
// conversions, and calls propagate derivation from their operands;
// indexing with a derived index narrows shared storage to a
// shard-owned element (so `acc := &e.cellAcc[ci]` makes *acc and
// acc.field writes shard-owned).
//
// The escape hatch is //fdlint:shard-ok REASON on the offending line,
// for writes whose ownership argument lives outside the function (a
// column partitioned by a scheme the lattice cannot see).
package shardwrite

import (
	"go/ast"
	"go/types"

	"repro/internal/analyze/analysis"
	"repro/internal/analyze/annotate"
	"repro/internal/analyze/dataflow"
)

// Analyzer is the shardwrite analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "shardwrite",
	Doc: "//fdlint:parallel shard bodies write engine-shared struct-of-arrays " +
		"columns only at indices derived from the shard's own parameters; " +
		"cross-index and whole-column writes are flagged",
	Run: run,
}

// The index-provenance lattice: an expression either is or is not
// provably derived from the shard's parameters.
const derived dataflow.Value = 1

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		af := annotate.NewFile(pass.Fset, f)
		for _, d := range af.All() {
			if d.Verb == "shard-ok" && d.Reason == "" {
				pass.Reportf(d.Pos, "//fdlint:shard-ok suppression requires a reason")
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, ok := annotate.FuncHas(pass.Fset, fd, "parallel"); !ok {
				continue
			}
			ck := &checker{pass: pass, af: af, fd: fd}
			ck.chains = dataflow.New(pass.TypesInfo, fd)
			ck.eval = dataflow.NewEvaluator(ck.chains, ck.transfer)
			if !ck.hasIntParam() {
				// Per-worker prep with no range grant: there is no shard
				// parameter to derive indices from, so the isolation
				// argument lives with the caller (sharded still governs
				// its stream use).
				continue
			}
			ast.Inspect(fd.Body, ck.walk)
		}
	}
	return nil, nil
}

type checker struct {
	pass   *analysis.Pass
	af     *annotate.File
	fd     *ast.FuncDecl
	chains *dataflow.Chains
	eval   *dataflow.Evaluator
}

// hasIntParam reports whether the function takes at least one
// integer-typed parameter — the shard's range grant.
func (ck *checker) hasIntParam() bool {
	for _, p := range ck.chains.Params() {
		if isIntegral(p.Type()) {
			return true
		}
	}
	return false
}

func (ck *checker) walk(n ast.Node) bool {
	switch v := n.(type) {
	case *ast.FuncLit:
		return false
	case *ast.AssignStmt:
		for _, lhs := range v.Lhs {
			ck.checkLvalue(lhs)
		}
	case *ast.IncDecStmt:
		ck.checkLvalue(v.X)
	case *ast.CallExpr:
		ck.checkBulkCall(v)
	}
	return true
}

// checkLvalue enforces the write rules on one assignment target:
// every index step over shared storage must be derived, and a target
// with no index step must not be shared storage at all.
func (ck *checker) checkLvalue(lv ast.Expr) {
	if !ck.hasIndexStep(lv) {
		if id, ok := ast.Unparen(lv).(*ast.Ident); ok {
			// Plain local/param rebinding (x := ..., x = append(x, ...)).
			if obj := ck.chains.Obj(id); obj != nil && !ck.isReceiver(obj) {
				return
			}
		}
		if ck.shared(lv, map[types.Object]bool{}) && !ck.suppressed(lv) {
			ck.pass.Reportf(lv.Pos(),
				"parallel shard writes engine-shared state without an element index: whole-column and shared-field writes race across shards (//fdlint:shard-ok REASON if ownership is external)")
		}
		return
	}
	ck.checkIndexSteps(lv)
}

// checkIndexSteps walks the access path and flags every index over
// shared storage that is not derived from the shard parameters.
func (ck *checker) checkIndexSteps(e ast.Expr) {
	switch v := ast.Unparen(e).(type) {
	case *ast.IndexExpr:
		if ck.shared(v.X, map[types.Object]bool{}) && ck.eval.Eval(v.Index) != derived && !ck.suppressed(v) {
			ck.pass.Reportf(v.Index.Pos(),
				"parallel shard writes a shared column at an index not derived from the shard's own parameters: cross-index writes race across shards (//fdlint:shard-ok REASON if the partition is external)")
		}
		ck.checkIndexSteps(v.X)
	case *ast.SelectorExpr:
		ck.checkIndexSteps(v.X)
	case *ast.StarExpr:
		ck.checkIndexSteps(v.X)
	}
}

// checkBulkCall flags copy/clear/append whose destination is shared
// storage not narrowed to a shard-owned range.
func (ck *checker) checkBulkCall(call *ast.CallExpr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || len(call.Args) == 0 {
		return
	}
	if obj, isBuiltin := ck.pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin || obj == nil {
		return
	}
	switch id.Name {
	case "copy", "clear", "append":
	default:
		return
	}
	if ck.shared(call.Args[0], map[types.Object]bool{}) && !ck.suppressed(call) {
		ck.pass.Reportf(call.Args[0].Pos(),
			"parallel shard applies %s to an engine-shared column: bulk writes race across shards (//fdlint:shard-ok REASON if the range is shard-owned)", id.Name)
	}
}

// shared reports whether the expression denotes engine-shared storage
// NOT narrowed to a shard-owned element: rooted at the receiver or a
// package-level variable, with no derived index step on the path.
// Local aliases are chased through their definitions (any shared
// definition makes the alias shared).
func (ck *checker) shared(e ast.Expr, visited map[types.Object]bool) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := ck.chains.Obj(v)
		if obj == nil || visited[obj] {
			return false
		}
		visited[obj] = true
		if ck.isReceiver(obj) {
			return true
		}
		if ck.chains.IsParam(obj) {
			// Parameters are the dispatcher's grant to this shard.
			return false
		}
		defs := ck.chains.Defs(obj)
		if len(defs) == 0 {
			// Free variable: package-level state is shared; anything
			// else (a closed-over local) is out of scope here.
			_, isVar := obj.(*types.Var)
			return isVar && obj.Parent() == obj.Pkg().Scope()
		}
		for _, d := range defs {
			if d.X != nil && ck.shared(d.X, visited) {
				return true
			}
		}
		return false
	case *ast.SelectorExpr:
		return ck.shared(v.X, visited)
	case *ast.StarExpr:
		return ck.shared(v.X, visited)
	case *ast.UnaryExpr:
		return ck.shared(v.X, visited)
	case *ast.IndexExpr:
		// A derived index narrows shared storage to an element this
		// shard owns; an unproven index leaves it shared.
		if ck.eval.Eval(v.Index) == derived {
			return false
		}
		return ck.shared(v.X, visited)
	case *ast.SliceExpr:
		if v.Low != nil && v.High != nil &&
			ck.eval.Eval(v.Low) == derived && ck.eval.Eval(v.High) == derived {
			return false
		}
		return ck.shared(v.X, visited)
	}
	return false
}

// hasIndexStep reports whether the lvalue chain contains an index or
// slice step.
func (ck *checker) hasIndexStep(e ast.Expr) bool {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.IndexExpr, *ast.SliceExpr:
			return true
		case *ast.SelectorExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return false
		}
	}
}

func (ck *checker) isReceiver(obj types.Object) bool {
	return ck.chains.Receiver() != nil && obj == ck.chains.Receiver()
}

// suppressed reports whether a reasoned //fdlint:shard-ok governs the
// node's line.
func (ck *checker) suppressed(n ast.Node) bool {
	d, ok := ck.af.Has(n, "shard-ok")
	return ok && d.Reason != ""
}

// transfer is the index-provenance lattice: parameters are derived
// roots; arithmetic, conversions, slicing, indexing, and calls join
// their operands' derivation; fields and literals prove nothing.
func (ck *checker) transfer(e ast.Expr, eval func(ast.Expr) dataflow.Value) dataflow.Value {
	switch v := e.(type) {
	case *ast.Ident:
		obj := ck.chains.Obj(v)
		if obj != nil && ck.chains.IsParam(obj) {
			return derived
		}
		return dataflow.Bottom
	case *ast.BinaryExpr:
		return dataflow.Join(eval(v.X), eval(v.Y))
	case *ast.UnaryExpr:
		return eval(v.X)
	case *ast.IndexExpr:
		// An element selected by a derived index is shard-owned data
		// (one level of indirection through partition columns:
		// e.activeCells[ci], e.slotChoice[i]).
		return dataflow.Join(eval(v.X), eval(v.Index))
	case *ast.SliceExpr:
		val := eval(v.X)
		if v.Low != nil {
			val = dataflow.Join(val, eval(v.Low))
		}
		if v.High != nil {
			val = dataflow.Join(val, eval(v.High))
		}
		return val
	case *ast.CallExpr:
		if tv, ok := ck.pass.TypesInfo.Types[v.Fun]; ok && tv.IsType() && len(v.Args) == 1 {
			return eval(v.Args[0])
		}
		val := dataflow.Bottom
		for _, a := range v.Args {
			val = dataflow.Join(val, eval(a))
		}
		return val
	}
	return dataflow.Bottom
}

// isIntegral reports whether t is an integer type after unwrapping
// named types.
func isIntegral(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
