package shardwrite_test

import (
	"testing"

	"repro/internal/analyze/analysistest"
	"repro/internal/analyze/shardwrite"
)

// The corpus proves the analyzer accepts range-parameter indices
// (directly, through arithmetic and partition-column indirection,
// and through element-pointer narrowing), exempts worker scratch and
// shard-owned sub-ranges, flags cross-index and whole-column writes,
// and honours only reasoned shard-ok suppressions.
func TestShardwrite(t *testing.T) {
	analysistest.Run(t, "testdata", shardwrite.Analyzer, "shardwtest/internal/netsim")
}
