// Package alloctest is the noalloc corpus: allocating constructs
// inside annotated functions, the blessed in-place idioms, and the
// alloc-ok escape hatch.
package alloctest

import "fmt"

// Result mimics core.TransferResult: reusable slices behind a pointer.
type Result struct {
	Bits  []uint8
	Count int
}

// Sink is an interface target for boxing checks.
type Sink interface{ Total() int }

type counter struct{ n int }

func (c *counter) Total() int { return c.n }

type value struct{ n int }

func (v value) Total() int { return v.n }

// transferInto is the blessed hot-path shape: reuse capacity through
// the result pointer, write struct values in place.
//
//fdlint:noalloc
func transferInto(res *Result, bits []uint8) {
	*res = Result{Bits: res.Bits[:0]}
	for _, b := range bits {
		res.Bits = append(res.Bits, b) // cap-managed via res.Bits[:0]
	}
	res.Count = len(res.Bits)
}

// scratchAppend re-slices a local and grows into it: clean.
//
//fdlint:noalloc
func scratchAppend(scratch []int, n int) []int {
	out := scratch[:0]
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// pointerBox stores a pointer into an interface: pointer-shaped values
// do not box.
//
//fdlint:noalloc
func pointerBox(c *counter) Sink {
	var s Sink = c
	return s
}

// allocs trips every rule the analyzer owns.
//
//fdlint:noalloc
func allocs(xs []int, s string) int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // want `appends to "out", which is never re-sliced`
	}
	buf := make([]byte, 8) // want `calls make`
	_ = buf
	p := &Result{} // want `takes the address of a composite literal`
	_ = p
	lit := []int{1, 2, 3} // want `constructs a slice literal`
	_ = lit
	m := map[string]int{} // want `constructs a map literal`
	_ = m
	f := func() int { return 1 } // want `declares a closure`
	defer f()                    // want `defers`
	msg := fmt.Sprintf("%d", xs) // want `calls fmt.Sprintf`
	msg += "!"                   // want `concatenates strings`
	b := []byte(s)               // want `converts between string and byte/rune slice`
	_ = b
	var sink Sink = value{n: 1} // want `boxes a alloctest.value into interface alloctest.Sink`
	_ = msg
	return sink.Total()
}

// justified carries reasons on its suppressions: clean.
//
//fdlint:noalloc
func justified(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) //fdlint:alloc-ok warm-up path, amortized by reuse
	}
	return out
}

// bare suppresses with no reason: the suppression itself is the
// diagnostic.
//
//fdlint:noalloc
func bare(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) //fdlint:alloc-ok // want `alloc-ok suppression is missing a reason`
	}
	return out
}

// unannotated may allocate freely: noalloc only governs annotated
// functions.
func unannotated(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}
