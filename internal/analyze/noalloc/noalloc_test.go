package noalloc_test

import (
	"testing"

	"repro/internal/analyze/analysistest"
	"repro/internal/analyze/noalloc"
)

// The corpus proves the analyzer flags each allocating construct in
// //fdlint:noalloc functions, accepts the in-place/cap-reuse idioms
// the engine hot paths use, honors justified alloc-ok suppressions,
// and reports bare ones.
func TestNoalloc(t *testing.T) {
	analysistest.Run(t, "testdata", noalloc.Analyzer, "alloctest")
}
