// Package noalloc statically enforces the zero-alloc contract on
// functions annotated `//fdlint:noalloc` in their doc comment — the
// hot paths guarded at runtime by testing.AllocsPerRun tests
// (core.TransferFrameInto, the netsim round loop, the streaming
// snapshot path). The runtime tests catch regressions after the fact;
// this analyzer names the offending construct at the line that
// introduced it.
//
// Inside a noalloc function the analyzer flags constructs that
// allocate or are overwhelmingly likely to:
//
//   - go and defer statements, and function literals (closure headers)
//   - &T{...} composite literals, and slice/map composite literals
//     (struct VALUE literals are allowed: `*res = Result{...}` writes
//     in place)
//   - append whose destination is not cap-managed — the destination
//     must be re-sliced (x = x[:0], or initialized from a slice
//     expression) somewhere in the function, the idiom the engine uses
//     to reuse scratch capacity
//   - interface conversions of non-pointer-shaped values (pointers,
//     channels, maps, funcs and unsafe.Pointer box for free; structs,
//     strings and numbers allocate)
//   - any call into package fmt
//   - string concatenation (+ / +=) and string<->[]byte/[]rune
//     conversions
//   - make and new
//
// A finding is suppressed by `//fdlint:alloc-ok <reason>` on its line;
// a bare alloc-ok with no reason is itself a diagnostic (noalloc owns
// that hygiene rule).
//
// The check is necessarily a lint, not a proof: escape analysis can
// rescue some flagged forms and pathological code can allocate in ways
// this list misses. The contract is that hot-path code sticks to the
// subset the analyzer can vouch for, and anything cleverer carries an
// alloc-ok justification.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analyze/analysis"
	"repro/internal/analyze/annotate"
)

// Analyzer is the noalloc analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc: "functions annotated //fdlint:noalloc must avoid allocating " +
		"constructs: closures, escaping composite literals, " +
		"uncapped appends, interface boxing, fmt, string building, " +
		"make/new",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		af := annotate.NewFile(pass.Fset, f)
		for _, d := range af.All() {
			if d.Verb == "alloc-ok" && d.Reason == "" {
				pass.Reportf(d.Pos, "//fdlint:alloc-ok suppression is missing a reason")
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, ok := annotate.FuncHas(pass.Fset, fd, "noalloc"); ok {
				c := &checker{pass: pass, af: af, fd: fd}
				c.capManaged = capManagedPaths(fd.Body)
				ast.Inspect(fd.Body, c.visit)
			}
		}
	}
	return nil, nil
}

type checker struct {
	pass *analysis.Pass
	af   *annotate.File
	fd   *ast.FuncDecl
	// capManaged holds the expression paths the function re-slices:
	// append destinations rooted at one of these reuse capacity.
	capManaged map[string]bool
}

// report emits a finding unless the line carries a justified alloc-ok.
func (c *checker) report(n ast.Node, format string, args ...interface{}) {
	if d, ok := c.af.Has(n, "alloc-ok"); ok {
		_ = d // bare alloc-ok is reported once per directive in run
		return
	}
	c.pass.Reportf(n.Pos(), "//fdlint:noalloc function %s: "+format,
		append([]interface{}{c.fd.Name.Name}, args...)...)
}

func (c *checker) visit(n ast.Node) bool {
	switch v := n.(type) {
	case *ast.GoStmt:
		c.report(v, "spawns a goroutine")
		return false
	case *ast.DeferStmt:
		c.report(v, "defers (defer records allocate)")
		return false
	case *ast.FuncLit:
		c.report(v, "declares a closure")
		return false // the literal's body is the closure's problem
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			if _, ok := v.X.(*ast.CompositeLit); ok {
				c.report(v, "takes the address of a composite literal")
			}
		}
	case *ast.CompositeLit:
		c.checkCompositeLit(v)
	case *ast.CallExpr:
		return c.checkCall(v)
	case *ast.BinaryExpr:
		if v.Op == token.ADD && c.isString(v.X) {
			c.report(v, "concatenates strings")
		}
	case *ast.AssignStmt:
		if v.Tok == token.ADD_ASSIGN && len(v.Lhs) == 1 && c.isString(v.Lhs[0]) {
			c.report(v, "concatenates strings")
		}
		c.checkAssignBoxing(v)
	case *ast.ValueSpec:
		c.checkSpecBoxing(v)
	case *ast.ReturnStmt:
		c.checkReturnBoxing(v)
	}
	return true
}

// checkCompositeLit flags slice and map literals; struct value
// literals write in place when assigned through a pointer.
func (c *checker) checkCompositeLit(lit *ast.CompositeLit) {
	tv, ok := c.pass.TypesInfo.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		c.report(lit, "constructs a slice literal")
	case *types.Map:
		c.report(lit, "constructs a map literal")
	}
}

func (c *checker) checkCall(call *ast.CallExpr) bool {
	// Type conversions: string<->[]byte/[]rune copy their contents.
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			c.checkConversion(call, tv.Type, call.Args[0])
		}
		return true
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				c.report(call, "calls make")
			case "new":
				c.report(call, "calls new")
			case "append":
				c.checkAppend(call)
			}
			return true
		}
	}

	// fmt calls.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if obj := c.pass.TypesInfo.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			c.report(call, "calls fmt.%s (interface boxing and formatting buffers)", obj.Name())
			return true
		}
	}

	// Interface-typed parameters box concrete arguments.
	c.checkCallBoxing(call)
	return true
}

func (c *checker) checkConversion(call *ast.CallExpr, to types.Type, arg ast.Expr) {
	from := c.pass.TypesInfo.Types[arg].Type
	if from == nil {
		return
	}
	if (isStringType(to) && isByteOrRuneSlice(from)) || (isByteOrRuneSlice(to) && isStringType(from)) {
		c.report(call, "converts between string and byte/rune slice (copies)")
		return
	}
	// Explicit conversion to an interface type boxes like assignment.
	c.checkBoxing(arg, to)
}

// checkAppend enforces the cap-managed destination rule.
func (c *checker) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	dst := ast.Unparen(call.Args[0])
	// Appending to a fresh re-slice (append(x[:0], ...)) reuses x's
	// capacity directly.
	if _, ok := dst.(*ast.SliceExpr); ok {
		return
	}
	if path := exprPath(dst); path != "" && c.capManaged[path] {
		return
	}
	c.report(call, "appends to %q, which is never re-sliced in this function; grow into reused capacity (x = x[:0]) or justify with //fdlint:alloc-ok", exprString(dst))
}

// --- interface boxing ---

func (c *checker) checkAssignBoxing(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		var lt types.Type
		if as.Tok == token.DEFINE {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
					lt = obj.Type()
				}
			}
		} else if tv, ok := c.pass.TypesInfo.Types[lhs]; ok {
			lt = tv.Type
		}
		c.checkBoxing(as.Rhs[i], lt)
	}
}

func (c *checker) checkSpecBoxing(vs *ast.ValueSpec) {
	if vs.Type == nil || len(vs.Values) == 0 {
		return
	}
	lt := c.pass.TypesInfo.Types[vs.Type].Type
	for _, v := range vs.Values {
		c.checkBoxing(v, lt)
	}
}

func (c *checker) checkReturnBoxing(ret *ast.ReturnStmt) {
	obj := c.pass.TypesInfo.Defs[c.fd.Name]
	if obj == nil {
		return
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Results().Len() != len(ret.Results) {
		return
	}
	for i, r := range ret.Results {
		c.checkBoxing(r, sig.Results().At(i).Type())
	}
}

func (c *checker) checkCallBoxing(call *ast.CallExpr) {
	tv, ok := c.pass.TypesInfo.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case call.Ellipsis.IsValid():
			if i < params.Len() {
				pt = params.At(i).Type()
			}
			if sig.Variadic() && i == params.Len()-1 {
				pt = nil // slice passed through verbatim, no boxing
			}
		case sig.Variadic() && i >= params.Len()-1:
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		c.checkBoxing(arg, pt)
	}
}

// checkBoxing reports expr if storing it into target type boxes a
// non-pointer-shaped value into an interface.
func (c *checker) checkBoxing(expr ast.Expr, target types.Type) {
	if target == nil || !types.IsInterface(target) {
		return
	}
	at := c.pass.TypesInfo.Types[expr].Type
	if at == nil || types.IsInterface(at) || isPointerShaped(at) {
		return
	}
	if c.pass.TypesInfo.Types[expr].IsNil() {
		return
	}
	c.report(expr, "boxes a %s into interface %s (non-pointer values escape)", at, target)
}

// --- helpers ---

func (c *checker) isString(e ast.Expr) bool {
	t := c.pass.TypesInfo.Types[e].Type
	return t != nil && isStringType(t)
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// isPointerShaped reports whether values of t fit an interface word
// without boxing.
func isPointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// capManagedPaths collects every expression path the function
// re-slices: the X of any slice expression, and any variable whose
// initializer contains a slice expression.
func capManagedPaths(body *ast.BlockStmt) map[string]bool {
	paths := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.SliceExpr:
			if p := exprPath(ast.Unparen(v.X)); p != "" {
				paths[p] = true
			}
		case *ast.AssignStmt:
			if len(v.Lhs) != len(v.Rhs) {
				return true
			}
			for i, lhs := range v.Lhs {
				if containsSliceExpr(v.Rhs[i]) {
					if p := exprPath(ast.Unparen(lhs)); p != "" {
						paths[p] = true
					}
				}
			}
		}
		return true
	})
	return paths
}

func containsSliceExpr(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.SliceExpr); ok {
			found = true
		}
		return !found
	})
	return found
}

// exprPath renders ident/selector chains ("e.activeCells"); other
// shapes yield "".
func exprPath(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		if base := exprPath(ast.Unparen(v.X)); base != "" {
			return base + "." + v.Sel.Name
		}
	}
	return ""
}

// exprString is a compact printable form for diagnostics.
func exprString(e ast.Expr) string {
	if p := exprPath(e); p != "" {
		return p
	}
	var b strings.Builder
	b.WriteString("<expr>")
	return b.String()
}
