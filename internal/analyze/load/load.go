// Package load turns Go import patterns into parsed, type-checked
// packages for the fdlint analyzers — the role golang.org/x/tools'
// go/packages plays for real drivers, reimplemented on the standard
// library because this build environment has no module proxy to fetch
// x/tools from.
//
// The approach is the classic pre-go/packages driver recipe:
// `go list -deps -json` enumerates every package the patterns need —
// already in dependency order, standard library included, with the
// build-context-filtered file lists — and each package is then parsed
// and type-checked in that order, with imports resolved from the
// packages checked before it. Dependencies are checked with
// IgnoreFuncBodies (their exported API is all importers need), so the
// expensive body-level work happens only for the packages under
// analysis. cgo is disabled for the enumeration, which keeps every
// listed file pure Go; FakeImportC covers any stray `import "C"`.
package load

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package under analysis.
type Package struct {
	// ImportPath is the package's import path.
	ImportPath string
	// Dir is the directory holding the package's sources.
	Dir string
	// Files holds the parsed source files, in go list order.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// TypesInfo carries the body-level type information the analyzers
	// consult (nil for dependency-only packages).
	TypesInfo *types.Info
}

// listEntry is the subset of `go list -json` output the loader needs.
type listEntry struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	Standard   bool
	DepOnly    bool
}

// Loader parses and type-checks packages on demand, caching every
// package (dependencies included) across calls. A Loader is not safe
// for concurrent use.
type Loader struct {
	// Dir is the working directory for `go list` (defaults to the
	// current directory, which must be inside the module).
	Dir string
	// Overlay, when non-nil, resolves an import path to a directory of
	// source files checked before falling back to `go list` — the hook
	// the analysistest harness uses to graft corpus packages (and their
	// corpus-local imports) onto the real module and standard library.
	Overlay func(path string) (dir string, ok bool)
	// CacheDir, when non-empty, caches `go list -deps -json` output on
	// disk, keyed by a content hash over the module's non-test sources,
	// go.mod/go.sum, the Go version and the patterns — so a warm run
	// (CI restores the directory keyed on go.sum + Go version) skips
	// the dependency enumeration entirely. Entry directories are stored
	// relative to $MODULE/$GOROOT placeholders, so a cache survives the
	// checkout moving. New seeds it from $FDLINT_LOAD_CACHE.
	CacheDir string

	fset *token.FileSet
	pkgs map[string]*types.Package
	errs map[string]error

	goroot  string // memoized `go env` results for cache keying
	modroot string
	gover   string
}

// New returns an empty Loader.
func New() *Loader {
	return &Loader{
		CacheDir: os.Getenv("FDLINT_LOAD_CACHE"),
		fset:     token.NewFileSet(),
		pkgs:     map[string]*types.Package{},
		errs:     map[string]error{},
	}
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Roots loads the packages matching the given go list patterns
// (./... style) and returns the non-dependency ones — the packages the
// patterns named — fully type-checked with bodies and TypesInfo.
func (l *Loader) Roots(patterns ...string) ([]*Package, error) {
	entries, err := l.goList(patterns)
	if err != nil {
		return nil, err
	}
	var roots []*Package
	for _, e := range entries {
		if _, done := l.pkgs[e.ImportPath]; done {
			if e.DepOnly {
				continue
			}
			// A root listed twice (or previously loaded as a dep):
			// re-check with bodies so TypesInfo exists.
			delete(l.pkgs, e.ImportPath)
			delete(l.errs, e.ImportPath)
		}
		pkg, err := l.check(e, !e.DepOnly)
		if err != nil {
			return nil, err
		}
		if !e.DepOnly {
			roots = append(roots, pkg)
		}
	}
	return roots, nil
}

// goList runs `go list -deps -json` for the patterns and decodes the
// entry stream, which arrives in dependency order. With CacheDir set,
// the raw output is cached on disk and replayed when nothing the
// enumeration depends on has changed.
func (l *Loader) goList(patterns []string) ([]listEntry, error) {
	key := ""
	if l.CacheDir != "" {
		// A key failure (no module, unreadable tree) just disables the
		// cache for this call; `go list` itself reports the real error.
		if k, err := l.cacheKey(patterns); err == nil {
			key = k
			if entries, ok := l.readListCache(key); ok {
				return entries, nil
			}
		}
	}
	args := append([]string{
		"list", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,Imports,Standard,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	entries, err := decodeList(out.Bytes())
	if err != nil {
		return nil, err
	}
	if key != "" {
		l.writeListCache(key, out.Bytes())
	}
	return entries, nil
}

// decodeList decodes a `go list -json` entry stream.
func decodeList(raw []byte) ([]listEntry, error) {
	var entries []listEntry
	dec := json.NewDecoder(bytes.NewReader(raw))
	for dec.More() {
		var e listEntry
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// envInfo memoizes the `go env` facts cache keying needs: GOROOT, the
// module root (the directory of GOMOD) and the Go version.
func (l *Loader) envInfo() (goroot, modroot, gover string, err error) {
	if l.modroot == "" {
		cmd := exec.Command("go", "env", "GOROOT", "GOMOD", "GOVERSION")
		cmd.Dir = l.Dir
		out, err := cmd.Output()
		if err != nil {
			return "", "", "", fmt.Errorf("go env: %v", err)
		}
		lines := strings.Split(strings.TrimSpace(string(out)), "\n")
		if len(lines) != 3 || lines[1] == "/dev/null" || lines[1] == "" {
			return "", "", "", fmt.Errorf("go env: not in a module (GOMOD %q)", strings.Join(lines, " "))
		}
		l.goroot, l.modroot, l.gover = lines[0], filepath.Dir(lines[1]), lines[2]
	}
	return l.goroot, l.modroot, l.gover, nil
}

// cacheKey hashes everything the `go list -deps` output depends on:
// the Go version, the patterns, go.mod/go.sum, and the relative path
// and content of every non-test .go file in the module (testdata and
// dot-directories excluded — corpus churn must not invalidate the
// module enumeration, and _test.go files never appear in GoFiles).
func (l *Loader) cacheKey(patterns []string) (string, error) {
	_, modroot, gover, err := l.envInfo()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "go %s\npatterns %s\n", gover, strings.Join(patterns, " "))
	var paths []string
	err = filepath.WalkDir(modroot, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != modroot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		switch {
		case name == "go.mod" || name == "go.sum":
		case strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go"):
		default:
			return nil
		}
		rel, err := filepath.Rel(modroot, path)
		if err != nil {
			return err
		}
		paths = append(paths, rel)
		return nil
	})
	if err != nil {
		return "", err
	}
	sort.Strings(paths)
	for _, rel := range paths {
		f, err := os.Open(filepath.Join(modroot, rel))
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "file %s\n", rel)
		_, err = io.Copy(h, f)
		f.Close()
		if err != nil {
			return "", err
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Placeholders substituted for the machine-specific roots in cached
// output, so a restored cache survives the checkout (or toolchain)
// living at a different absolute path.
const (
	modPlaceholder    = "\x01MODULE\x01"
	gorootPlaceholder = "\x01GOROOT\x01"
)

// readListCache replays a cached enumeration, rewriting the path
// placeholders back to this machine's roots.
func (l *Loader) readListCache(key string) ([]listEntry, bool) {
	raw, err := os.ReadFile(filepath.Join(l.CacheDir, key+".json"))
	if err != nil {
		return nil, false
	}
	goroot, modroot, _, err := l.envInfo()
	if err != nil {
		return nil, false
	}
	raw = bytes.ReplaceAll(raw, []byte(modPlaceholder), []byte(modroot))
	raw = bytes.ReplaceAll(raw, []byte(gorootPlaceholder), []byte(goroot))
	entries, err := decodeList(raw)
	if err != nil {
		return nil, false
	}
	return entries, true
}

// writeListCache stores raw `go list` output under the key with the
// machine-specific roots replaced by placeholders. Cache writes are
// best-effort: a failure only costs the next run the enumeration.
func (l *Loader) writeListCache(key string, raw []byte) {
	goroot, modroot, _, err := l.envInfo()
	if err != nil {
		return
	}
	raw = bytes.ReplaceAll(raw, []byte(modroot), []byte(modPlaceholder))
	raw = bytes.ReplaceAll(raw, []byte(goroot), []byte(gorootPlaceholder))
	if err := os.MkdirAll(l.CacheDir, 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(l.CacheDir, key+".tmp*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(raw)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	os.Rename(tmp.Name(), filepath.Join(l.CacheDir, key+".json"))
}

// check parses and type-checks one listed package. Bodies are checked
// (and TypesInfo recorded) only when full is true.
func (l *Loader) check(e listEntry, full bool) (*Package, error) {
	if e.ImportPath == "unsafe" {
		l.pkgs["unsafe"] = types.Unsafe
		return &Package{ImportPath: "unsafe", Types: types.Unsafe}, nil
	}
	files := make([]*ast.File, 0, len(e.GoFiles))
	for _, name := range e.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(e.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", e.ImportPath, err)
		}
		files = append(files, f)
	}
	var info *types.Info
	if full {
		info = newInfo()
	}
	tpkg, err := l.typeCheck(e.ImportPath, files, info, full)
	if err != nil {
		return nil, err
	}
	return &Package{
		ImportPath: e.ImportPath, Dir: e.Dir,
		Files: files, Types: tpkg, TypesInfo: info,
	}, nil
}

// typeCheck runs go/types over parsed files, resolving imports from
// the loader's cache (loading missing ones on demand).
func (l *Loader) typeCheck(path string, files []*ast.File, info *types.Info, full bool) (*types.Package, error) {
	conf := types.Config{
		Importer:         importerFunc(l.importPkg),
		FakeImportC:      true,
		IgnoreFuncBodies: !full,
		Sizes:            types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	l.pkgs[path] = tpkg
	return tpkg, nil
}

// importPkg resolves one import path for the type checker.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	// Standard-library sources import their vendored dependencies by the
	// unvendored path; `go list -deps` enumerates them (in dependency
	// order, so already cached here) under the vendor/ prefix.
	if pkg, ok := l.pkgs["vendor/"+path]; ok {
		return pkg, nil
	}
	if err, ok := l.errs[path]; ok {
		return nil, err
	}
	pkg, err := l.loadImport(path)
	if err != nil {
		l.errs[path] = err
		return nil, err
	}
	return pkg, nil
}

// loadImport loads a package not yet in the cache: from the overlay if
// it resolves there, otherwise via `go list -deps` for the path.
func (l *Loader) loadImport(path string) (*types.Package, error) {
	if l.Overlay != nil {
		if dir, ok := l.Overlay(path); ok {
			return l.loadOverlayDir(path, dir)
		}
	}
	entries, err := l.goList([]string{path})
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if _, done := l.pkgs[e.ImportPath]; done {
			continue
		}
		if _, err := l.check(e, false); err != nil {
			return nil, err
		}
	}
	pkg, ok := l.pkgs[path]
	if !ok {
		return nil, fmt.Errorf("go list resolved nothing for %q", path)
	}
	return pkg, nil
}

// loadOverlayDir type-checks every .go file in an overlay directory as
// the package for path. Overlay packages are checked with bodies: the
// corpus relies on body-level types, and overlay imports resolve
// through the same importer (overlay first, module second).
func (l *Loader) loadOverlayDir(path, dir string) (*types.Package, error) {
	names, err := sourceFiles(dir)
	if err != nil {
		return nil, err
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return l.typeCheck(path, files, nil, true)
}

// LoadDir parses and fully type-checks one directory of sources as the
// package for the given import path — the analysistest entry point.
func (l *Loader) LoadDir(path, dir string) (*Package, error) {
	names, err := sourceFiles(dir)
	if err != nil {
		return nil, err
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	tpkg, err := l.typeCheck(path, files, info, true)
	if err != nil {
		return nil, err
	}
	return &Package{
		ImportPath: path, Dir: dir,
		Files: files, Types: tpkg, TypesInfo: info,
	}, nil
}

// sourceFiles lists the non-test .go files of dir, sorted by go's
// directory order (ReadDir returns names sorted).
func sourceFiles(dir string) ([]string, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go source files in %s", dir)
	}
	return names, nil
}

// newInfo returns a types.Info with every map the analyzers consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
