// Package load turns Go import patterns into parsed, type-checked
// packages for the fdlint analyzers — the role golang.org/x/tools'
// go/packages plays for real drivers, reimplemented on the standard
// library because this build environment has no module proxy to fetch
// x/tools from.
//
// The approach is the classic pre-go/packages driver recipe:
// `go list -deps -json` enumerates every package the patterns need —
// already in dependency order, standard library included, with the
// build-context-filtered file lists — and each package is then parsed
// and type-checked in that order, with imports resolved from the
// packages checked before it. Dependencies are checked with
// IgnoreFuncBodies (their exported API is all importers need), so the
// expensive body-level work happens only for the packages under
// analysis. cgo is disabled for the enumeration, which keeps every
// listed file pure Go; FakeImportC covers any stray `import "C"`.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one parsed, type-checked package under analysis.
type Package struct {
	// ImportPath is the package's import path.
	ImportPath string
	// Dir is the directory holding the package's sources.
	Dir string
	// Files holds the parsed source files, in go list order.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// TypesInfo carries the body-level type information the analyzers
	// consult (nil for dependency-only packages).
	TypesInfo *types.Info
}

// listEntry is the subset of `go list -json` output the loader needs.
type listEntry struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	Standard   bool
	DepOnly    bool
}

// Loader parses and type-checks packages on demand, caching every
// package (dependencies included) across calls. A Loader is not safe
// for concurrent use.
type Loader struct {
	// Dir is the working directory for `go list` (defaults to the
	// current directory, which must be inside the module).
	Dir string
	// Overlay, when non-nil, resolves an import path to a directory of
	// source files checked before falling back to `go list` — the hook
	// the analysistest harness uses to graft corpus packages (and their
	// corpus-local imports) onto the real module and standard library.
	Overlay func(path string) (dir string, ok bool)

	fset *token.FileSet
	pkgs map[string]*types.Package
	errs map[string]error
}

// New returns an empty Loader.
func New() *Loader {
	return &Loader{
		fset: token.NewFileSet(),
		pkgs: map[string]*types.Package{},
		errs: map[string]error{},
	}
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Roots loads the packages matching the given go list patterns
// (./... style) and returns the non-dependency ones — the packages the
// patterns named — fully type-checked with bodies and TypesInfo.
func (l *Loader) Roots(patterns ...string) ([]*Package, error) {
	entries, err := l.goList(patterns)
	if err != nil {
		return nil, err
	}
	var roots []*Package
	for _, e := range entries {
		if _, done := l.pkgs[e.ImportPath]; done {
			if e.DepOnly {
				continue
			}
			// A root listed twice (or previously loaded as a dep):
			// re-check with bodies so TypesInfo exists.
			delete(l.pkgs, e.ImportPath)
			delete(l.errs, e.ImportPath)
		}
		pkg, err := l.check(e, !e.DepOnly)
		if err != nil {
			return nil, err
		}
		if !e.DepOnly {
			roots = append(roots, pkg)
		}
	}
	return roots, nil
}

// goList runs `go list -deps -json` for the patterns and decodes the
// entry stream, which arrives in dependency order.
func (l *Loader) goList(patterns []string) ([]listEntry, error) {
	args := append([]string{
		"list", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,Imports,Standard,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(&out)
	for dec.More() {
		var e listEntry
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// check parses and type-checks one listed package. Bodies are checked
// (and TypesInfo recorded) only when full is true.
func (l *Loader) check(e listEntry, full bool) (*Package, error) {
	if e.ImportPath == "unsafe" {
		l.pkgs["unsafe"] = types.Unsafe
		return &Package{ImportPath: "unsafe", Types: types.Unsafe}, nil
	}
	files := make([]*ast.File, 0, len(e.GoFiles))
	for _, name := range e.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(e.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", e.ImportPath, err)
		}
		files = append(files, f)
	}
	var info *types.Info
	if full {
		info = newInfo()
	}
	tpkg, err := l.typeCheck(e.ImportPath, files, info, full)
	if err != nil {
		return nil, err
	}
	return &Package{
		ImportPath: e.ImportPath, Dir: e.Dir,
		Files: files, Types: tpkg, TypesInfo: info,
	}, nil
}

// typeCheck runs go/types over parsed files, resolving imports from
// the loader's cache (loading missing ones on demand).
func (l *Loader) typeCheck(path string, files []*ast.File, info *types.Info, full bool) (*types.Package, error) {
	conf := types.Config{
		Importer:         importerFunc(l.importPkg),
		FakeImportC:      true,
		IgnoreFuncBodies: !full,
		Sizes:            types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	l.pkgs[path] = tpkg
	return tpkg, nil
}

// importPkg resolves one import path for the type checker.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	// Standard-library sources import their vendored dependencies by the
	// unvendored path; `go list -deps` enumerates them (in dependency
	// order, so already cached here) under the vendor/ prefix.
	if pkg, ok := l.pkgs["vendor/"+path]; ok {
		return pkg, nil
	}
	if err, ok := l.errs[path]; ok {
		return nil, err
	}
	pkg, err := l.loadImport(path)
	if err != nil {
		l.errs[path] = err
		return nil, err
	}
	return pkg, nil
}

// loadImport loads a package not yet in the cache: from the overlay if
// it resolves there, otherwise via `go list -deps` for the path.
func (l *Loader) loadImport(path string) (*types.Package, error) {
	if l.Overlay != nil {
		if dir, ok := l.Overlay(path); ok {
			return l.loadOverlayDir(path, dir)
		}
	}
	entries, err := l.goList([]string{path})
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if _, done := l.pkgs[e.ImportPath]; done {
			continue
		}
		if _, err := l.check(e, false); err != nil {
			return nil, err
		}
	}
	pkg, ok := l.pkgs[path]
	if !ok {
		return nil, fmt.Errorf("go list resolved nothing for %q", path)
	}
	return pkg, nil
}

// loadOverlayDir type-checks every .go file in an overlay directory as
// the package for path. Overlay packages are checked with bodies: the
// corpus relies on body-level types, and overlay imports resolve
// through the same importer (overlay first, module second).
func (l *Loader) loadOverlayDir(path, dir string) (*types.Package, error) {
	names, err := sourceFiles(dir)
	if err != nil {
		return nil, err
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return l.typeCheck(path, files, nil, true)
}

// LoadDir parses and fully type-checks one directory of sources as the
// package for the given import path — the analysistest entry point.
func (l *Loader) LoadDir(path, dir string) (*Package, error) {
	names, err := sourceFiles(dir)
	if err != nil {
		return nil, err
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	tpkg, err := l.typeCheck(path, files, info, true)
	if err != nil {
		return nil, err
	}
	return &Package{
		ImportPath: path, Dir: dir,
		Files: files, Types: tpkg, TypesInfo: info,
	}, nil
}

// sourceFiles lists the non-test .go files of dir, sorted by go's
// directory order (ReadDir returns names sorted).
func sourceFiles(dir string) ([]string, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go source files in %s", dir)
	}
	return names, nil
}

// newInfo returns a types.Info with every map the analyzers consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
