package load

import (
	"testing"
	"time"
)

// The loader must type-check the repository's heaviest dependency
// chains — netsvc pulls net/http, encoding/json and the whole engine —
// from source, offline, with TypesInfo populated for the roots.
func TestRootsTypeCheckRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type check")
	}
	start := time.Now()
	l := New()
	roots, err := l.Roots("repro/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) < 16 {
		t.Fatalf("expected at least 16 root packages, got %d", len(roots))
	}
	seen := map[string]bool{}
	for _, p := range roots {
		seen[p.ImportPath] = true
		if p.TypesInfo == nil {
			t.Errorf("%s: root package loaded without TypesInfo", p.ImportPath)
		}
		if len(p.Files) == 0 {
			t.Errorf("%s: root package has no files", p.ImportPath)
		}
	}
	for _, want := range []string{
		"repro", "repro/internal/netsim", "repro/internal/netsvc",
		"repro/cmd/fdnetd", "repro/internal/core",
	} {
		if !seen[want] {
			t.Errorf("root set is missing %s", want)
		}
	}
	t.Logf("loaded %d roots in %v", len(roots), time.Since(start))
}
