package load

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// The loader must type-check the repository's heaviest dependency
// chains — netsvc pulls net/http, encoding/json and the whole engine —
// from source, offline, with TypesInfo populated for the roots.
func TestRootsTypeCheckRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type check")
	}
	start := time.Now()
	l := New()
	roots, err := l.Roots("repro/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) < 16 {
		t.Fatalf("expected at least 16 root packages, got %d", len(roots))
	}
	seen := map[string]bool{}
	for _, p := range roots {
		seen[p.ImportPath] = true
		if p.TypesInfo == nil {
			t.Errorf("%s: root package loaded without TypesInfo", p.ImportPath)
		}
		if len(p.Files) == 0 {
			t.Errorf("%s: root package has no files", p.ImportPath)
		}
	}
	for _, want := range []string{
		"repro", "repro/internal/netsim", "repro/internal/netsvc",
		"repro/cmd/fdnetd", "repro/internal/core",
	} {
		if !seen[want] {
			t.Errorf("root set is missing %s", want)
		}
	}
	t.Logf("loaded %d roots in %v", len(roots), time.Since(start))
}

// With CacheDir set, the enumeration is written once and replayed on
// the next run with the path placeholders rewritten — proved by
// planting a sentinel entry in the cached file and seeing it come back
// from a fresh Loader.
func TestGoListCache(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go list")
	}
	cache := t.TempDir()
	pattern := "repro/internal/analyze/annotate"

	l := New()
	l.CacheDir = cache
	first, err := l.goList([]string{pattern})
	if err != nil {
		t.Fatal(err)
	}
	files, err := os.ReadDir(cache)
	if err != nil || len(files) != 1 {
		t.Fatalf("want 1 cache file, got %d (%v)", len(files), err)
	}
	cached := filepath.Join(cache, files[0].Name())
	raw, err := os.ReadFile(cached)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cached, append(raw, []byte(`{"ImportPath":"zzz-cache-sentinel"}`)...), 0o644); err != nil {
		t.Fatal(err)
	}

	l2 := New()
	l2.CacheDir = cache
	second, err := l2.goList([]string{pattern})
	if err != nil {
		t.Fatal(err)
	}
	if len(second) != len(first)+1 || second[len(second)-1].ImportPath != "zzz-cache-sentinel" {
		t.Fatalf("second run did not replay the cache: %d entries vs %d", len(second), len(first))
	}
	// Placeholder rewriting restored real directories: every genuine
	// entry's Dir must exist on this machine.
	for _, e := range second[:len(second)-1] {
		if e.Dir == "" {
			continue
		}
		if _, err := os.Stat(e.Dir); err != nil {
			t.Errorf("%s: cached Dir not rewritten to a real path: %v", e.ImportPath, err)
		}
	}
}

// The key is a pure function of module content and patterns — stable
// across calls (so a CI checkout with fresh mtimes still hits) and
// distinct per pattern set.
func TestGoListCacheKey(t *testing.T) {
	if testing.Short() {
		t.Skip("hashes the module")
	}
	l := New()
	l.CacheDir = t.TempDir()
	k1, err := l.cacheKey([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := l.cacheKey([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("key not deterministic across calls")
	}
	kp, err := l.cacheKey([]string{"repro/internal/core"})
	if err != nil {
		t.Fatal(err)
	}
	if kp == k1 {
		t.Fatal("key ignores the patterns")
	}
}
