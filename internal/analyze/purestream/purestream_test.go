package purestream_test

import (
	"testing"

	"repro/internal/analyze/analysistest"
	"repro/internal/analyze/purestream"
)

// The corpus proves the analyzer fires on ambient randomness, clocks
// and environment reads in engine-suffixed packages, accepts a seeded
// simrand.Source threaded through an interface, and stays silent in
// non-engine packages.
func TestPurestream(t *testing.T) {
	analysistest.Run(t, "testdata", purestream.Analyzer, "puretest/internal/mac")
	analysistest.Run(t, "testdata", purestream.Analyzer, "puretest/internal/netsim")
	analysistest.Run(t, "testdata", purestream.Analyzer, "puretest/clock")
}

func TestGoverns(t *testing.T) {
	for path, want := range map[string]bool{
		"repro/internal/mac":     true,
		"repro/internal/netsim":  true,
		"puretest/internal/mac":  true,
		"internal/mac":           true,
		"repro/internal/netsvc":  false,
		"repro/internal/simrand": false,
		"repro/internal/trace":   false,
	} {
		if got := purestream.Governs(path); got != want {
			t.Errorf("Governs(%q) = %v, want %v", path, got, want)
		}
	}
}
