// Package purestream enforces the engine's determinism contract at its
// root: every simulation result must be a pure function of
// (Scenario, seed), so engine packages may not reach for ambient
// randomness, wall clocks, or process environment. All randomness must
// flow from the seeded simrand split tree (internal/simrand), whose
// sources are threaded explicitly through the code — including through
// interfaces; purestream only rejects the ambient escape hatches.
package purestream

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analyze/analysis"
)

// EnginePackages are the import-path suffixes purestream governs: the
// packages that execute inside a simulation and therefore must stay
// pure. Matching by suffix keeps the analyzer honest on corpus
// packages and on a future module rename.
var EnginePackages = []string{
	"internal/core",
	"internal/netsim",
	"internal/mac",
	"internal/channel",
	"internal/phy",
	"internal/sigproc",
	"internal/rateadapt",
	"internal/energy",
}

// forbiddenImports maps import paths engine packages must not depend
// on to the reason.
var forbiddenImports = map[string]string{
	"math/rand":    "unseeded global randomness; thread a simrand.Source instead",
	"math/rand/v2": "RNG outside the seeded split tree; thread a simrand.Source instead",
	"crypto/rand":  "nondeterministic entropy; thread a simrand.Source instead",
}

// forbiddenCalls maps package-level functions engine packages must not
// call to the reason. Keyed by full name as types.Object.String
// reports it ("time.Now").
var forbiddenCalls = map[string]string{
	"time.Now":       "wall-clock time makes results time-dependent",
	"time.Since":     "wall-clock time makes results time-dependent",
	"time.Until":     "wall-clock time makes results time-dependent",
	"os.Getenv":      "environment reads make results host-dependent",
	"os.LookupEnv":   "environment reads make results host-dependent",
	"os.Environ":     "environment reads make results host-dependent",
	"os.Hostname":    "host identity makes results host-dependent",
	"runtime.NumCPU": "hardware shape must not influence simulation output",
}

// Analyzer is the purestream analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "purestream",
	Doc: "engine packages must be pure functions of (Scenario, seed): " +
		"no math/rand or crypto/rand, no wall clocks, no environment reads; " +
		"randomness flows only from the seeded simrand split tree",
	Run: run,
}

// Governs reports whether purestream applies to the package path.
func Governs(path string) bool {
	for _, sfx := range EnginePackages {
		if path == sfx || strings.HasSuffix(path, "/"+sfx) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !Governs(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if why, bad := forbiddenImports[path]; bad {
				pass.Reportf(imp.Pos(), "engine package imports %s: %s", path, why)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			// Package-level functions and variables only: methods have a
			// receiver and are reached through explicitly threaded values.
			if _, isFunc := obj.(*types.Func); !isFunc {
				if _, isVar := obj.(*types.Var); !isVar {
					return true
				}
			}
			if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			name := obj.Pkg().Name() + "." + obj.Name()
			if why, bad := forbiddenCalls[name]; bad {
				pass.Reportf(sel.Pos(), "engine package uses %s: %s", name, why)
			}
			return true
		})
	}
	return nil, nil
}
