// Package clock is NOT an engine package: purestream must stay silent
// here even though it uses wall-clock time and the environment.
package clock

import (
	"os"
	"time"
)

// Uptime may use the wall clock freely outside the engine.
func Uptime(start time.Time) time.Duration {
	if os.Getenv("FD_FAKE_UPTIME") != "" {
		return 0
	}
	return time.Since(start)
}
