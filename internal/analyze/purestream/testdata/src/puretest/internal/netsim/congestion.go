// Package netsim is the congestion-control corpus: retransmission
// backoff jitter is part of the simulation output (it decides when a
// parked frame re-enters contention), so it must be drawn from the
// tag's seeded protocol stream — never from the wall clock or an
// ambient RNG, which would make two runs of the same (Scenario, seed)
// disagree on every retx schedule.
package netsim

import (
	"math/rand/v2" // want `engine package imports math/rand/v2: RNG outside the seeded split tree`
	"time"

	"repro/internal/simrand"
)

type congState struct {
	retxAt []int32
	proto  *simrand.Source
}

// GoodJitter re-arms a retransmission from the tag's seeded protocol
// stream: the stream position, not the host, decides the deadline.
func (c *congState) GoodJitter(i int, round, delay int32) {
	j := int32(c.proto.Float64() * float64(delay))
	c.retxAt[i] = round + delay + j
}

// BadJitter derives the backoff jitter from the wall clock and the
// process-global RNG: the retx schedule becomes host- and
// time-dependent, breaking byte-identical replay.
func (c *congState) BadJitter(i int, round, delay int32) {
	j := int32(time.Now().UnixNano() % int64(delay)) // want `engine package uses time.Now: wall-clock time`
	c.retxAt[i] = round + delay + j + int32(rand.IntN(int(delay)))
}
