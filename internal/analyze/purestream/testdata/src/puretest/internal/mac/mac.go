// Package mac is an engine-suffixed corpus package: purestream must
// reject ambient randomness, wall clocks and environment reads here,
// while accepting seeded simrand sources — including through
// interfaces.
package mac

import (
	"math/rand" // want `engine package imports math/rand: unseeded global randomness`
	"os"
	"time"

	"repro/internal/simrand"
)

// RNG abstracts a randomness source the way engine code threads its
// streams; a seeded simrand.Source passed through an interface must
// stay accepted.
type RNG interface {
	Uint64() uint64
}

func draw(r RNG) uint64 { return r.Uint64() }

// Good threads the seeded split tree through an interface: clean.
func Good(seed uint64) uint64 {
	src := simrand.New(seed)
	return draw(src)
}

// Bad reaches for every ambient escape hatch.
func Bad() int64 {
	if os.Getenv("FD_DEBUG") != "" { // want `engine package uses os.Getenv: environment reads`
		return 0
	}
	_ = rand.Int()
	return time.Now().UnixNano() // want `engine package uses time.Now: wall-clock time`
}
