package analyze_test

import (
	"testing"

	"repro/internal/analyze"
)

// The dogfood gate: the full fdlint suite must run clean over the
// whole module. This keeps contract regressions inside tier-1
// (`go test ./...`), not just the CI lint job — reverting, say, the
// sorted-key iteration in netsvc.Runs or bench.List fails this test.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	findings, err := analyze.Run("", nil, "repro/...")
	if err != nil {
		t.Fatalf("running fdlint suite: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Fatalf("fdlint: %d finding(s); the contracts above are documented in README.md \"Static analysis\"", len(findings))
	}
}

// The suite is stable in size and order: the driver's -list output and
// CI caching key off this.
func TestAllAnalyzers(t *testing.T) {
	names := []string{}
	for _, a := range analyze.All() {
		names = append(names, a.Name)
	}
	want := []string{"noalloc", "orderedrange", "purestream", "sharded"}
	if len(names) != len(want) {
		t.Fatalf("All() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("All() = %v, want %v", names, want)
		}
	}
}
