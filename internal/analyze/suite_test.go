package analyze_test

import (
	"testing"
	"time"

	"repro/internal/analyze"
)

// The dogfood gate: the full fdlint suite must run clean over the
// whole module. This keeps contract regressions inside tier-1
// (`go test ./...`), not just the CI lint job — reverting, say, the
// sorted-key iteration in netsvc.Runs or bench.List fails this test.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	start := time.Now()
	findings, err := analyze.Run("", nil, "repro/...")
	if err != nil {
		t.Fatalf("running fdlint suite: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Fatalf("fdlint: %d finding(s); the contracts above are documented in README.md \"Static analysis\"", len(findings))
	}
	// The perf contract behind the shared loader: the module is listed
	// and type-checked once, shared by all seven analyzers, so a cold
	// full-module suite run stays interactive. 3s is ~2x the observed
	// cold time; a regression past it means per-analyzer reloading (or
	// an analyzer doing quadratic work) crept back in.
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("full suite run took %v, budget 3s", d)
	}
}

// BenchmarkSuite times a full-module suite run on a warm loader — the
// repeated-Run path the Suite API exists for (the load is shared, so
// iterations measure analysis, not type-checking).
func BenchmarkSuite(b *testing.B) {
	s := analyze.NewSuite("", nil)
	if _, err := s.Run("repro/..."); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run("repro/..."); err != nil {
			b.Fatal(err)
		}
	}
}

// The suite is stable in size and order: the driver's -list output and
// CI caching key off this.
func TestAllAnalyzers(t *testing.T) {
	names := []string{}
	for _, a := range analyze.All() {
		names = append(names, a.Name)
	}
	want := []string{"noalloc", "orderedrange", "purestream", "sharded",
		"shardwrite", "streamtree", "validatecover"}
	if len(names) != len(want) {
		t.Fatalf("All() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("All() = %v, want %v", names, want)
		}
	}
}
