// Package dataflow is the intra-procedural dataflow layer of the
// fdlint suite: def-use chains over one type-checked function body,
// plus a memoized evaluator that folds a client-defined provenance
// lattice over those chains.
//
// The model is deliberately flow-insensitive within a function: an
// identifier's abstract value is the JOIN over every expression ever
// assigned to it (its definition set), with the client's Transfer
// function classifying roots (parameters, named globals, literals) and
// composite expressions. That is sound for the "where could this value
// have come from" questions the suite asks — seed provenance in
// streamtree, shard-index provenance in shardwrite — where any single
// suspicious definition should taint the identifier, and it keeps the
// evaluator a few dozen lines instead of an SSA builder. Cycles
// (i = i + 1, accumulator loops) resolve to the join of their acyclic
// definitions.
package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Value is one element of a client lattice. Clients define their own
// ascending constants; Bottom (zero) means "no information", and Join
// is max, so the lattice order IS the constant order.
type Value int8

// Bottom is the least lattice element: nothing known yet.
const Bottom Value = 0

// Join returns the least upper bound of two lattice elements (max).
func Join(a, b Value) Value {
	if a > b {
		return a
	}
	return b
}

// Def is one recorded definition of an identifier.
type Def struct {
	// X is the defining expression: the assignment RHS, or for range
	// definitions the expression being ranged over.
	X ast.Expr
	// Range reports a `for k, v := range X` definition; Key
	// distinguishes the key/index variable from the value variable.
	Range bool
	Key   bool
}

// Chains holds the def-use information of one function body.
type Chains struct {
	info *types.Info

	recv   types.Object
	params []types.Object
	defs   map[types.Object][]Def
	// declLoop maps a locally defined object to the innermost
	// for/range statement enclosing its definition (absent when defined
	// outside every loop) — the loop-invariance query streamtree's
	// aliasing rule needs.
	declLoop map[types.Object]ast.Stmt
}

// New builds the def-use chains of fd's body.
func New(info *types.Info, fd *ast.FuncDecl) *Chains {
	c := &Chains{
		info:     info,
		defs:     map[types.Object][]Def{},
		declLoop: map[types.Object]ast.Stmt{},
	}
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			for _, n := range f.Names {
				if obj := info.Defs[n]; obj != nil {
					c.recv = obj
				}
			}
		}
	}
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			for _, n := range f.Names {
				if obj := info.Defs[n]; obj != nil {
					c.params = append(c.params, obj)
				}
			}
		}
	}
	if fd.Body == nil {
		return c
	}
	var loops []ast.Stmt
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, v.(ast.Stmt))
			if rs, ok := v.(*ast.RangeStmt); ok {
				c.recordRange(rs, loops)
			}
			for _, sub := range childNodes(v) {
				ast.Inspect(sub, walk)
			}
			loops = loops[:len(loops)-1]
			return false
		case *ast.AssignStmt:
			c.recordAssign(v, loops)
		case *ast.DeclStmt:
			if gd, ok := v.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						var x ast.Expr
						if len(vs.Values) == len(vs.Names) {
							x = vs.Values[i]
						} else if len(vs.Values) == 1 {
							x = vs.Values[0]
						}
						c.define(name, Def{X: x}, loops)
					}
				}
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
	return c
}

// childNodes lists the direct sub-nodes of a for/range statement that
// the walk must recurse into after recording the loop context. The
// range definitions themselves are recorded here.
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	add := func(x ast.Node) {
		if x != nil && !isNilNode(x) {
			out = append(out, x)
		}
	}
	switch v := n.(type) {
	case *ast.ForStmt:
		add(v.Init)
		add(v.Cond)
		add(v.Post)
		add(v.Body)
	case *ast.RangeStmt:
		add(v.X)
		add(v.Body)
	}
	return out
}

func isNilNode(n ast.Node) bool {
	switch v := n.(type) {
	case *ast.BlockStmt:
		return v == nil
	case ast.Expr:
		return v == nil
	case ast.Stmt:
		return v == nil
	}
	return false
}

// recordAssign records the definitions of one ordinary assignment.
// Range clauses never reach here: the walk flattens RangeStmt through
// childNodes and records their key/value idents via recordRange.
func (c *Chains) recordAssign(as *ast.AssignStmt, loops []ast.Stmt) {
	n := len(as.Lhs)
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		var x ast.Expr
		if len(as.Rhs) == n {
			x = as.Rhs[i]
		} else if len(as.Rhs) == 1 {
			// Tuple assignment from one call/map/type-assert: every LHS
			// is defined by the whole RHS; clients classify the call.
			x = as.Rhs[0]
		}
		c.define(id, Def{X: x}, loops)
	}
}

// define appends one definition for the identifier's object.
func (c *Chains) define(id *ast.Ident, d Def, loops []ast.Stmt) {
	obj := c.info.Defs[id]
	if obj == nil {
		obj = c.info.Uses[id]
	}
	if obj == nil {
		return
	}
	if _, seen := c.defs[obj]; !seen && len(loops) > 0 {
		c.declLoop[obj] = loops[len(loops)-1]
	}
	c.defs[obj] = append(c.defs[obj], d)
}

// recordRange records the key/value definitions of a range clause,
// marking them Range so the evaluator can treat "drawn by ranging X"
// differently from "assigned X" if a client ever needs to.
func (c *Chains) recordRange(rs *ast.RangeStmt, loops []ast.Stmt) {
	if id, ok := rs.Key.(*ast.Ident); ok && id.Name != "_" {
		c.define(id, Def{X: rs.X, Range: true, Key: true}, loops)
	}
	if id, ok := rs.Value.(*ast.Ident); ok && id.Name != "_" {
		c.define(id, Def{X: rs.X, Range: true}, loops)
	}
}

// Obj resolves an identifier to its object (definition or use).
func (c *Chains) Obj(id *ast.Ident) types.Object {
	if obj := c.info.Uses[id]; obj != nil {
		return obj
	}
	return c.info.Defs[id]
}

// Defs returns the recorded definitions of obj, in source order.
func (c *Chains) Defs(obj types.Object) []Def { return c.defs[obj] }

// Receiver returns the receiver object (nil for functions and
// anonymous receivers).
func (c *Chains) Receiver() types.Object { return c.recv }

// Params returns the named non-receiver parameter objects in
// declaration order.
func (c *Chains) Params() []types.Object { return c.params }

// IsParam reports whether obj is one of the function's non-receiver
// parameters.
func (c *Chains) IsParam(obj types.Object) bool {
	for _, p := range c.params {
		if p == obj {
			return true
		}
	}
	return false
}

// DeclaredInLoop returns the innermost loop statement enclosing obj's
// first definition, or nil when it was defined outside every loop.
func (c *Chains) DeclaredInLoop(obj types.Object) ast.Stmt { return c.declLoop[obj] }

// Transfer is the client's lattice: it classifies one expression,
// calling eval to resolve sub-expressions. For a plain identifier the
// Transfer sees the identifier itself and should classify only its
// ROOT meaning (parameter, blessed global, literal); the evaluator
// joins the identifier's recorded definitions in on top.
type Transfer func(e ast.Expr, eval func(ast.Expr) Value) Value

// Evaluator folds a Transfer over the chains with per-object
// memoization and cycle cut-off (a self-referential definition
// contributes Bottom).
type Evaluator struct {
	C  *Chains
	TF Transfer

	memo map[types.Object]Value
	busy map[types.Object]bool
}

// NewEvaluator returns an evaluator over c with the given transfer.
func NewEvaluator(c *Chains, tf Transfer) *Evaluator {
	return &Evaluator{C: c, TF: tf, memo: map[types.Object]Value{}, busy: map[types.Object]bool{}}
}

// Eval returns the lattice value of e: the client's classification of
// e itself, joined — when e is an identifier with recorded
// definitions — with the values of every defining expression.
func (ev *Evaluator) Eval(e ast.Expr) Value {
	e = ast.Unparen(e)
	id, ok := e.(*ast.Ident)
	if !ok {
		return ev.TF(e, ev.Eval)
	}
	obj := ev.C.Obj(id)
	if obj == nil {
		return ev.TF(e, ev.Eval)
	}
	if v, done := ev.memo[obj]; done {
		return v
	}
	if ev.busy[obj] {
		return Bottom
	}
	ev.busy[obj] = true
	v := ev.TF(e, ev.Eval)
	for _, d := range ev.C.Defs(obj) {
		if d.X == nil {
			continue
		}
		// Range definitions propagate the ranged expression's value
		// unchanged: ranging a derived partition slice yields derived
		// indices/elements, ranging an unknown container yields unknown.
		v = Join(v, ev.Eval(d.X))
	}
	ev.busy[obj] = false
	ev.memo[obj] = v
	return v
}

// RootIdent walks selector/index/star/paren/call chains to the base
// identifier of an lvalue-ish expression: t.stats[i].ID -> t,
// (&e.tags).alive -> e, w.src.Split() -> w. Returns nil when the chain
// bottoms out in anything but an identifier (a literal, a call on a
// non-selector function, ...).
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.UnaryExpr:
			if v.Op != token.AND {
				return nil
			}
			e = v.X
		case *ast.CallExpr:
			sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr)
			if !ok {
				return nil
			}
			e = sel.X
		default:
			return nil
		}
	}
}
