// Package analyze assembles the fdlint analyzer suite: the static
// checks that enforce this repo's determinism and zero-alloc contracts
// at the source level, complementing the runtime gates (byte-identical
// determinism tests, AllocsPerRun tests, the CI perf gate).
//
//   - purestream: engine packages draw randomness only from seeded
//     simrand sources — no math/rand, wall clocks, or environment.
//   - orderedrange: map iteration order never reaches an output sink
//     unsorted.
//   - noalloc: functions annotated //fdlint:noalloc avoid allocating
//     constructs.
//   - sharded: netsim parallel sections touch only parameter-rooted
//     RNG state; goroutines only in the worker pool; serial-only
//     streams stay serial.
//   - streamtree: every *simrand.Source is provably seeded from the
//     run seed via the blessed split/hash constructors; no literal,
//     wall-clock, or ambient seeds; no loop element stream aliasing.
//   - shardwrite: //fdlint:parallel shard bodies write struct-of-arrays
//     columns only at indices derived from the shard's own range
//     parameters.
//   - validatecover: every JSON-tagged scenario field is read by
//     Validate or carries //fdlint:novalidate REASON.
package analyze

import (
	"repro/internal/analyze/analysis"
	"repro/internal/analyze/noalloc"
	"repro/internal/analyze/orderedrange"
	"repro/internal/analyze/purestream"
	"repro/internal/analyze/sharded"
	"repro/internal/analyze/shardwrite"
	"repro/internal/analyze/streamtree"
	"repro/internal/analyze/validatecover"
)

// All returns the full fdlint suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		noalloc.Analyzer,
		orderedrange.Analyzer,
		purestream.Analyzer,
		sharded.Analyzer,
		shardwrite.Analyzer,
		streamtree.Analyzer,
		validatecover.Analyzer,
	}
}
