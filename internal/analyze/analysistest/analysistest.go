// Package analysistest runs one fdlint analyzer over a corpus package
// and checks its diagnostics against `// want` expectations — the
// golang.org/x/tools/go/analysis/analysistest contract, reimplemented
// on the in-tree framework so corpora run offline.
//
// Corpus layout follows the upstream convention: packages live under
// <testdata>/src/<importpath>/ and may import each other, the real
// module's packages (e.g. repro/internal/simrand), and the standard
// library — corpus directories resolve first, everything else falls
// back to `go list`.
//
// Expectations are comments of the form
//
//	code() // want "regexp" "another regexp"
//
// Each diagnostic must match an expectation on its line, and each
// expectation must be matched by exactly one diagnostic. A `// want`
// may ride at the end of an //fdlint: directive comment; the directive
// parser ignores it.
package analysistest

import (
	"fmt"
	"go/scanner"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/analyze/analysis"
	"repro/internal/analyze/load"
)

// loaders shares one loader per testdata root across the Run calls of
// a test binary, so the module and standard-library dependencies the
// corpora import are type-checked once instead of once per corpus
// package. Loaders are not concurrency-safe; the mutex also serializes
// corpus loading for tests running with t.Parallel.
var loaders struct {
	sync.Mutex
	m map[string]*load.Loader
}

// loaderFor returns the shared loader rooted at testdata, creating it
// with the corpus overlay on first use.
func loaderFor(testdata string) *load.Loader {
	if loaders.m == nil {
		loaders.m = map[string]*load.Loader{}
	}
	if l, ok := loaders.m[testdata]; ok {
		return l
	}
	l := load.New()
	l.Overlay = func(path string) (string, bool) {
		d := filepath.Join(testdata, "src", filepath.FromSlash(path))
		if st, err := os.Stat(d); err == nil && st.IsDir() {
			return d, true
		}
		return "", false
	}
	loaders.m[testdata] = l
	return l
}

// Run analyzes the corpus package at <testdata>/src/<pkgpath> with a
// and verifies its diagnostics against the package's // want comments.
// The pass carries a fresh fact store, so intra-package fact
// propagation behaves as under the real driver; cross-package fact
// corpora are not supported (dependencies are type-checked, not
// analyzed).
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", filepath.FromSlash(pkgpath))
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("corpus package %s: %v", pkgpath, err)
	}

	loaders.Lock()
	defer loaders.Unlock()
	l := loaderFor(testdata)
	pkg, err := l.LoadDir(pkgpath, dir)
	if err != nil {
		t.Fatalf("loading corpus package %s: %v", pkgpath, err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer: a, Fset: l.Fset(), Files: pkg.Files,
		Pkg: pkg.Types, TypesInfo: pkg.TypesInfo,
		Report: func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	analysis.NewFactStore().Bind(pass)
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}

	wants := collectWants(t, l.Fset(), dir)
	for _, d := range diags {
		pos := l.Fset().Position(d.Pos)
		key := lineKey{file: filepath.Base(pos.Filename), line: pos.Line}
		ws := wants[key]
		matched := false
		for _, w := range ws {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matched want %q", key.file, key.line, w.re)
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

// collectWants scans every corpus source file for // want comments.
func collectWants(t *testing.T, fset *token.FileSet, dir string) map[lineKey][]*want {
	t.Helper()
	wants := map[lineKey][]*want{}
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, de.Name()))
		if err != nil {
			t.Fatal(err)
		}
		file := fset.AddFile(de.Name()+" (wants)", -1, len(src))
		var s scanner.Scanner
		s.Init(file, src, nil, scanner.ScanComments)
		for {
			pos, tok, lit := s.Scan()
			if tok == token.EOF {
				break
			}
			if tok != token.COMMENT {
				continue
			}
			// A want spec is "// want" either opening the comment or
			// embedded after a directive ("//fdlint:... // want ...").
			idx := strings.Index(lit, "// want")
			if idx < 0 {
				continue
			}
			spec := lit[idx+len("// want"):]
			key := lineKey{file: de.Name(), line: file.Position(pos).Line}
			for _, q := range splitQuoted(t, de.Name(), file.Position(pos).Line, spec) {
				re, err := regexp.Compile(q)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", de.Name(), key.line, q, err)
				}
				wants[key] = append(wants[key], &want{re: re})
			}
		}
	}
	return wants
}

// splitQuoted extracts the quoted regexps of one want spec; both
// double quotes and backquotes are accepted.
func splitQuoted(t *testing.T, file string, line int, spec string) []string {
	t.Helper()
	var out []string
	rest := strings.TrimSpace(spec)
	for rest != "" {
		switch rest[0] {
		case '"':
			end := -1
			for i := 1; i < len(rest); i++ {
				if rest[i] == '"' && rest[i-1] != '\\' {
					end = i
					break
				}
			}
			if end < 0 {
				t.Fatalf("%s:%d: unterminated want string in %q", file, line, spec)
			}
			q, err := strconv.Unquote(rest[:end+1])
			if err != nil {
				t.Fatalf("%s:%d: bad want string %q: %v", file, line, rest[:end+1], err)
			}
			out = append(out, q)
			rest = strings.TrimSpace(rest[end+1:])
		case '`':
			end := strings.Index(rest[1:], "`")
			if end < 0 {
				t.Fatalf("%s:%d: unterminated want backquote in %q", file, line, spec)
			}
			out = append(out, rest[1:end+1])
			rest = strings.TrimSpace(rest[end+2:])
		default:
			t.Fatalf("%s:%d: want expects quoted regexps, got %q", file, line, rest)
		}
	}
	if len(out) == 0 {
		t.Fatalf("%s:%d: empty want spec", file, line)
	}
	return out
}

// Fprint is a tiny debug helper kept for corpus development; it
// formats a diagnostic list the way the driver does.
func Fprint(fset *token.FileSet, diags []analysis.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	return b.String()
}
