// Package annotate parses the //fdlint: source directives the analyzer
// suite keys on. A directive is a line comment of the form
//
//	//fdlint:<verb> [argument text]
//
// attached either as a trailing comment on the line it governs or as a
// standalone comment on the line directly above it. The recognized
// verbs and their meanings:
//
//	noalloc          this function's body must be allocation-free
//	                 (contract marker, enforced by the noalloc analyzer)
//	alloc-ok REASON  suppress one noalloc finding on this line
//	ordered REASON   suppress one orderedrange finding on this line
//	parallel         this function executes on engine pool workers
//	                 (contract marker, enforced by the sharded analyzer)
//	workerpool       this function owns goroutine creation for a
//	                 persistent worker pool (sharded allows `go` here)
//	serial           the value declared here is a serial-only stream:
//	                 it must never reach a parallel section
//	stream-ok REASON suppress one streamtree finding on this line
//	                 (e.g. a scratch source reseeded before every use)
//	shard-ok REASON  suppress one shardwrite finding on this line
//	novalidate REASON  this JSON-tagged scenario field is exempt from
//	                 the validatecover read requirement
//
// Suppression verbs (alloc-ok, ordered, stream-ok, shard-ok,
// novalidate) require a reason; a bare suppression is itself a
// diagnostic — the analyzers enforce that for the verbs they own.
//
// A comment may carry several directives back to back
// (`//fdlint:parallel //fdlint:noalloc`); text after a plain `//` that
// is not a directive prefix (a trailing explanation, a corpus `// want`
// expectation) is not directive input.
package annotate

import (
	"go/ast"
	"go/token"
	"strings"
)

// Prefix is the directive comment prefix.
const Prefix = "//fdlint:"

// Directive is one parsed //fdlint: comment.
type Directive struct {
	// Verb is the directive name (noalloc, ordered, ...).
	Verb string
	// Reason is the argument text after the verb (the justification for
	// suppression verbs), trimmed.
	Reason string
	// Pos is the comment's position.
	Pos token.Pos
}

// Known reports whether verb is a recognized directive verb.
func Known(verb string) bool {
	switch verb {
	case "noalloc", "alloc-ok", "ordered", "parallel", "workerpool", "serial",
		"stream-ok", "shard-ok", "novalidate":
		return true
	}
	return false
}

// Parse extracts the directives of one comment, handling multiple
// back-to-back //fdlint: verbs, trailing plain comments, corpus
// `// want` expectations, and CRLF line endings. Non-directive comments
// yield nil. Every directive shares the comment's position.
func Parse(c *ast.Comment) []Directive {
	text, ok := strings.CutPrefix(c.Text, Prefix)
	if !ok {
		return nil
	}
	// The go scanner normally strips carriage returns, but be robust to
	// CRLF text reaching us through other paths (overlays, synthesized
	// files).
	text = strings.TrimRight(text, "\r")
	var out []Directive
	for {
		seg := text
		text = ""
		if i := strings.Index(seg, "//"); i >= 0 {
			if after, isDir := strings.CutPrefix(seg[i:], Prefix); isDir {
				// Another directive follows in the same comment.
				text = after
			}
			// Otherwise: a trailing plain comment (including a corpus
			// `// want`) ends directive input for this comment.
			seg = seg[:i]
		}
		verb, reason, _ := strings.Cut(strings.TrimSpace(seg), " ")
		if verb != "" {
			out = append(out, Directive{Verb: verb, Reason: strings.TrimSpace(reason), Pos: c.Pos()})
		}
		if text == "" {
			return out
		}
	}
}

// File indexes one file's directives by the line they govern.
type File struct {
	fset *token.FileSet
	// byLine maps a source line to the directives governing it: a
	// trailing directive governs its own line, a standalone directive
	// comment governs the line below it.
	byLine map[int][]Directive
	// all lists every directive in the file, in source order.
	all []Directive
}

// NewFile parses the directives of f.
func NewFile(fset *token.FileSet, f *ast.File) *File {
	af := &File{fset: fset, byLine: map[int][]Directive{}}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			ds := Parse(c)
			if len(ds) == 0 {
				continue
			}
			line := fset.Position(c.Pos()).Line
			if startsLine(fset, f, c) {
				// Standalone comment: governs the following line.
				line++
			}
			af.all = append(af.all, ds...)
			af.byLine[line] = append(af.byLine[line], ds...)
		}
	}
	return af
}

// startsLine reports whether the comment is the first token on its
// line (a standalone directive) rather than trailing code.
func startsLine(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	pos := fset.Position(c.Pos())
	// If any node of the file starts on the same line before the
	// comment's column, the comment trails code. Scanning declarations
	// is enough: statements inherit their line from the file text, so
	// compare against the file content-free heuristic below instead.
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || found {
			return false
		}
		p := fset.Position(n.Pos())
		if p.Line == pos.Line && p.Column < pos.Column {
			found = true
			return false
		}
		// Prune subtrees that end before the comment's line.
		if end := fset.Position(n.End()); end.Line < pos.Line {
			return false
		}
		return true
	})
	return !found
}

// ForNode returns the directives governing the line node starts on.
func (af *File) ForNode(n ast.Node) []Directive {
	return af.ForPos(n.Pos())
}

// ForPos returns the directives governing the line containing pos —
// for clients holding a types.Object position rather than an AST node.
func (af *File) ForPos(pos token.Pos) []Directive {
	return af.byLine[af.fset.Position(pos).Line]
}

// HasAt reports whether a directive with the verb governs the line
// containing pos, returning it.
func (af *File) HasAt(pos token.Pos, verb string) (Directive, bool) {
	for _, d := range af.ForPos(pos) {
		if d.Verb == verb {
			return d, true
		}
	}
	return Directive{}, false
}

// Has reports whether a directive with the verb governs node's line,
// returning it.
func (af *File) Has(n ast.Node, verb string) (Directive, bool) {
	for _, d := range af.ForNode(n) {
		if d.Verb == verb {
			return d, true
		}
	}
	return Directive{}, false
}

// All returns every directive in the file in source order.
func (af *File) All() []Directive { return af.all }

// FuncHas reports whether the function declaration carries the verb,
// either on its own first line or anywhere in its doc comment.
func FuncHas(fset *token.FileSet, fd *ast.FuncDecl, verb string) (Directive, bool) {
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			for _, d := range Parse(c) {
				if d.Verb == verb {
					return d, true
				}
			}
		}
	}
	return Directive{}, false
}
