package annotate

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t *testing.T, text string) []Directive {
	t.Helper()
	return Parse(&ast.Comment{Slash: 1, Text: text})
}

func TestParseSingleDirective(t *testing.T) {
	ds := parseOne(t, "//fdlint:ordered index map is rebuilt per round")
	if len(ds) != 1 {
		t.Fatalf("got %d directives, want 1", len(ds))
	}
	if ds[0].Verb != "ordered" || ds[0].Reason != "index map is rebuilt per round" {
		t.Errorf("got %+v", ds[0])
	}
}

func TestParseMultipleVerbsOneLine(t *testing.T) {
	ds := parseOne(t, "//fdlint:parallel //fdlint:noalloc")
	if len(ds) != 2 {
		t.Fatalf("got %d directives, want 2: %+v", len(ds), ds)
	}
	if ds[0].Verb != "parallel" || ds[0].Reason != "" {
		t.Errorf("first: got %+v", ds[0])
	}
	if ds[1].Verb != "noalloc" || ds[1].Reason != "" {
		t.Errorf("second: got %+v", ds[1])
	}
}

func TestParseMultipleVerbsWithReasons(t *testing.T) {
	ds := parseOne(t, "//fdlint:serial seed split //fdlint:ordered fixed iteration")
	if len(ds) != 2 {
		t.Fatalf("got %d directives, want 2: %+v", len(ds), ds)
	}
	if ds[0].Verb != "serial" || ds[0].Reason != "seed split" {
		t.Errorf("first: got %+v", ds[0])
	}
	if ds[1].Verb != "ordered" || ds[1].Reason != "fixed iteration" {
		t.Errorf("second: got %+v", ds[1])
	}
}

func TestParseTrailingComment(t *testing.T) {
	ds := parseOne(t, "//fdlint:alloc-ok pooled buffer // reviewed in PR 8")
	if len(ds) != 1 {
		t.Fatalf("got %d directives, want 1: %+v", len(ds), ds)
	}
	if ds[0].Reason != "pooled buffer" {
		t.Errorf("trailing comment leaked into reason: %q", ds[0].Reason)
	}
}

func TestParseWantExpectationStripped(t *testing.T) {
	ds := parseOne(t, `//fdlint:alloc-ok // want "bare suppression"`)
	if len(ds) != 1 {
		t.Fatalf("got %d directives, want 1: %+v", len(ds), ds)
	}
	if ds[0].Verb != "alloc-ok" || ds[0].Reason != "" {
		t.Errorf("got %+v", ds[0])
	}
}

func TestParseDirectiveAfterTrailingCommentIgnored(t *testing.T) {
	// Once a plain trailing comment starts, the rest of the line is not
	// directive input — even if it happens to contain the prefix.
	ds := parseOne(t, "//fdlint:noalloc // explanation mentioning //fdlint:ordered")
	if len(ds) != 1 || ds[0].Verb != "noalloc" {
		t.Fatalf("got %+v, want single noalloc", ds)
	}
}

func TestParseEmptySuppressionReason(t *testing.T) {
	for _, verb := range []string{"alloc-ok", "ordered", "stream-ok", "shard-ok", "novalidate"} {
		ds := parseOne(t, "//fdlint:"+verb)
		if len(ds) != 1 {
			t.Fatalf("%s: got %d directives, want 1", verb, len(ds))
		}
		if ds[0].Verb != verb || ds[0].Reason != "" {
			t.Errorf("%s: got %+v, want empty reason preserved", verb, ds[0])
		}
	}
}

func TestParseCarriageReturnStripped(t *testing.T) {
	ds := parseOne(t, "//fdlint:serial seed split\r")
	if len(ds) != 1 {
		t.Fatalf("got %d directives, want 1", len(ds))
	}
	if strings.ContainsRune(ds[0].Reason, '\r') || ds[0].Reason != "seed split" {
		t.Errorf("CR survived parsing: %q", ds[0].Reason)
	}
}

func TestParseNonDirectiveComment(t *testing.T) {
	if ds := parseOne(t, "// ordinary comment"); ds != nil {
		t.Errorf("non-directive comment parsed as %+v", ds)
	}
}

func TestKnownVerbs(t *testing.T) {
	for _, verb := range []string{
		"noalloc", "alloc-ok", "ordered", "parallel", "workerpool", "serial",
		"stream-ok", "shard-ok", "novalidate",
	} {
		if !Known(verb) {
			t.Errorf("Known(%q) = false", verb)
		}
	}
	for _, verb := range []string{"", "nolint", "Parallel", "stream_ok"} {
		if Known(verb) {
			t.Errorf("Known(%q) = true", verb)
		}
	}
}

// parseFile parses src and returns the annotate index plus the fset.
func parseFile(t *testing.T, src string) (*token.FileSet, *File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, NewFile(fset, f)
}

func TestNewFileCRLFSource(t *testing.T) {
	src := strings.Join([]string{
		"package p",
		"",
		"//fdlint:noalloc",
		"func f() {",
		"\tx := 1 //fdlint:alloc-ok boxed on purpose",
		"\t_ = x",
		"}",
		"",
	}, "\r\n")
	_, af := parseFile(t, src)
	all := af.All()
	if len(all) != 2 {
		t.Fatalf("got %d directives, want 2: %+v", len(all), all)
	}
	for _, d := range all {
		if strings.ContainsRune(d.Verb, '\r') || strings.ContainsRune(d.Reason, '\r') {
			t.Errorf("CR survived CRLF source: %+v", d)
		}
	}
	if all[1].Reason != "boxed on purpose" {
		t.Errorf("trailing directive reason = %q", all[1].Reason)
	}
}

func TestNewFileGoverningLines(t *testing.T) {
	src := `package p

func f() {
	//fdlint:ordered stable by construction
	for i := 0; i < 3; i++ {
		_ = i //fdlint:alloc-ok scratch //fdlint:ordered same line
	}
}
`
	_, af := parseFile(t, src)
	// Standalone directive on line 4 governs line 5; the trailing pair
	// governs line 6.
	if ds := af.byLine[5]; len(ds) != 1 || ds[0].Verb != "ordered" {
		t.Errorf("line 5: got %+v", ds)
	}
	ds := af.byLine[6]
	if len(ds) != 2 || ds[0].Verb != "alloc-ok" || ds[1].Verb != "ordered" {
		t.Errorf("line 6: got %+v", ds)
	}
	if ds[0].Reason != "scratch" || ds[1].Reason != "same line" {
		t.Errorf("line 6 reasons: got %+v", ds)
	}
}

func TestFuncHasMultiVerbDoc(t *testing.T) {
	src := `package p

//fdlint:parallel //fdlint:noalloc
func shard(lo, hi int) {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "z.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	if _, ok := FuncHas(fset, fd, "parallel"); !ok {
		t.Error("parallel not found in multi-verb doc")
	}
	if _, ok := FuncHas(fset, fd, "noalloc"); !ok {
		t.Error("noalloc not found in multi-verb doc")
	}
	if _, ok := FuncHas(fset, fd, "serial"); ok {
		t.Error("serial falsely found")
	}
}
