// Package analysis is a minimal, API-compatible subset of
// golang.org/x/tools/go/analysis: the Analyzer / Pass / Diagnostic
// triple the fdlint suite is written against.
//
// The build environment for this repository is hermetic — no module
// proxy, no vendored third-party code — so the real x/tools framework
// is gated out rather than depended on. This shim deliberately mirrors
// its shapes (field names, Run signature, Reportf) so that swapping the
// import path to golang.org/x/tools/go/analysis, and the driver to
// multichecker, is a mechanical change once the dependency is
// available. Facts, SuggestedFixes and ResultOf are not reproduced:
// none of the four fdlint analyzers need cross-package state.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check: a name for diagnostics, a doc
// string describing the contract it enforces, and the Run function.
type Analyzer struct {
	// Name identifies the analyzer in driver output and documentation.
	Name string
	// Doc states the contract the analyzer enforces, shown by
	// `fdlint -list`.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) (interface{}, error)
}

// Pass presents one package to an Analyzer.Run: parsed files, the
// type-checked package, and the Report callback.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
