// Package analysis is a minimal, API-compatible subset of
// golang.org/x/tools/go/analysis: the Analyzer / Pass / Diagnostic
// triple the fdlint suite is written against.
//
// The build environment for this repository is hermetic — no module
// proxy, no vendored third-party code — so the real x/tools framework
// is gated out rather than depended on. This shim deliberately mirrors
// its shapes (field names, Run signature, Reportf) so that swapping the
// import path to golang.org/x/tools/go/analysis, and the driver to
// multichecker, is a mechanical change once the dependency is
// available. Object facts ARE reproduced (the dataflow analyzers
// propagate seed-derivation through them); SuggestedFixes and ResultOf
// are not — no fdlint analyzer needs them.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
)

// Analyzer describes one static check: a name for diagnostics, a doc
// string describing the contract it enforces, and the Run function.
type Analyzer struct {
	// Name identifies the analyzer in driver output and documentation.
	Name string
	// Doc states the contract the analyzer enforces, shown by
	// `fdlint -list`.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) (interface{}, error)
}

// Pass presents one package to an Analyzer.Run: parsed files, the
// type-checked package, the Report callback, and the object-fact
// accessors (nil when the driver carries no fact store — facts then
// simply don't propagate, matching a single-package run).
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	// ExportObjectFact associates fact with obj for this analyzer;
	// later passes of the same analyzer (same package or importers, in
	// dependency order) observe it via ImportObjectFact.
	ExportObjectFact func(obj types.Object, fact Fact)
	// ImportObjectFact copies the fact of fact's concrete type
	// previously exported for obj into *fact, reporting whether one
	// exists. fact must be a pointer, as with x/tools.
	ImportObjectFact func(obj types.Object, fact Fact) bool
}

// Fact is cross-function, cross-package information attached to a
// types.Object, mirroring golang.org/x/tools/go/analysis.Fact: a fact
// type is any pointer type with an AFact marker method.
type Fact interface{ AFact() }

// factKey identifies one stored fact: the object it decorates and the
// fact's concrete type (one fact of each type per object, per
// analyzer).
type factKey struct {
	obj types.Object
	typ reflect.Type
}

// FactStore holds the object facts of one analyzer across every
// package of a driver run. The zero value is not usable; use
// NewFactStore. Drivers hand each Pass closures over the store so the
// analyzer itself never sees driver state.
type FactStore struct {
	m map[factKey]Fact
}

// NewFactStore returns an empty fact store.
func NewFactStore() *FactStore {
	return &FactStore{m: map[factKey]Fact{}}
}

// Export records fact for obj, replacing any previous fact of the same
// concrete type.
func (s *FactStore) Export(obj types.Object, fact Fact) {
	s.m[factKey{obj, reflect.TypeOf(fact)}] = fact
}

// Import copies the stored fact of *fact's concrete type for obj into
// *fact, reporting whether one was found. fact must be a non-nil
// pointer (enforced by the same panic x/tools raises).
func (s *FactStore) Import(obj types.Object, fact Fact) bool {
	rv := reflect.ValueOf(fact)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		panic(fmt.Sprintf("analysis: ImportObjectFact: got %T, want non-nil pointer", fact))
	}
	got, ok := s.m[factKey{obj, reflect.TypeOf(fact)}]
	if !ok {
		return false
	}
	rv.Elem().Set(reflect.ValueOf(got).Elem())
	return true
}

// Bind populates pass's fact accessors with closures over the store.
func (s *FactStore) Bind(pass *Pass) {
	pass.ExportObjectFact = s.Export
	pass.ImportObjectFact = s.Import
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
