// Package streamtree proves seed provenance for the engine's random
// streams: every *simrand.Source must be constructed (or reseeded)
// from a value derived from the run seed through the blessed
// operations — simrand.Mix64, integer arithmetic on seed values, and
// package helpers that provably return seed-derived values (tracked as
// object facts). Sources seeded from literals, wall clocks, or ambient
// RNG break the (Scenario, seed) purity contract and are flagged, as
// is storing one loop-invariant source value into per-element storage
// (two tags or shards would then share — alias — a single stream).
//
// The escape hatch is //fdlint:stream-ok REASON on the offending line,
// for sources that are provably re-seeded before every use (scratch
// sources restored via SetState, per-window Reseed loops).
package streamtree

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analyze/analysis"
	"repro/internal/analyze/annotate"
	"repro/internal/analyze/dataflow"
	"repro/internal/analyze/purestream"
)

// Analyzer is the streamtree analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "streamtree",
	Doc: "every *simrand.Source must be seeded from the run seed via the " +
		"blessed split/hash constructors; literal-, clock-, or ambient-seeded " +
		"sources and sources aliased across loop elements are flagged",
	Run: run,
}

// DerivesSeed is the object fact exported for a function whose every
// return value is provably seed-derived (given seed-derived inputs);
// calls to such a function propagate derivation to their result when
// any argument is itself seed-derived.
type DerivesSeed struct{}

// AFact marks DerivesSeed as an analysis fact.
func (*DerivesSeed) AFact() {}

// The seed-provenance lattice, ascending. Join is max, so taint
// (ambient state) dominates derivation, which dominates a literal:
// seed ^ 0xfdb5 is derived, seed ^ time.Now().UnixNano() is tainted.
const (
	provUnknown dataflow.Value = iota
	provLiteral
	provDerived
	provTainted
)

// taintedCalls are the ambient-state escape hatches (purestream's ban
// list) that make a seed expression tainted rather than merely
// unproven, keyed by "pkgname.Func".
var taintedCalls = map[string]bool{
	"time.Now":     true,
	"time.Since":   true,
	"time.Until":   true,
	"os.Getenv":    true,
	"os.LookupEnv": true,
	"os.Environ":   true,
	"os.Hostname":  true,
}

// taintedPackages taint every function they export.
var taintedPackages = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !purestream.Governs(pass.Pkg.Path()) {
		return nil, nil
	}
	exportDeriveFacts(pass)
	for _, f := range pass.Files {
		af := annotate.NewFile(pass.Fset, f)
		for _, d := range af.All() {
			if d.Verb == "stream-ok" && d.Reason == "" {
				pass.Reportf(d.Pos, "//fdlint:stream-ok suppression requires a reason")
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, af, fd)
		}
	}
	return nil, nil
}

// exportDeriveFacts runs the provenance evaluator over every function
// body in the package and exports DerivesSeed for those whose every
// return expression is seed-derived. Iterated to a fixpoint so helpers
// calling helpers resolve regardless of declaration order.
func exportDeriveFacts(pass *analysis.Pass) {
	if pass.ExportObjectFact == nil || pass.ImportObjectFact == nil {
		return
	}
	for changed := true; changed; {
		changed = false
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || fd.Type.Results == nil || len(fd.Type.Results.List) != 1 {
					continue
				}
				obj := pass.TypesInfo.Defs[fd.Name]
				if obj == nil {
					continue
				}
				var have DerivesSeed
				if pass.ImportObjectFact(obj, &have) {
					continue
				}
				if returnsDerived(pass, fd) {
					pass.ExportObjectFact(obj, &DerivesSeed{})
					changed = true
				}
			}
		}
	}
}

// returnsDerived reports whether every return expression of fd
// evaluates to provDerived (and at least one return exists).
func returnsDerived(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if !isIntegral(resultType(pass, fd)) {
		return false
	}
	c := dataflow.New(pass.TypesInfo, fd)
	ev := dataflow.NewEvaluator(c, transfer(pass, c))
	found := false
	ok := true
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		ret, isRet := n.(*ast.ReturnStmt)
		if !isRet || len(ret.Results) != 1 {
			return true
		}
		found = true
		if ev.Eval(ret.Results[0]) != provDerived {
			ok = false
		}
		return true
	})
	return found && ok
}

func resultType(pass *analysis.Pass, fd *ast.FuncDecl) types.Type {
	obj := pass.TypesInfo.Defs[fd.Name]
	if obj == nil {
		return nil
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return nil
	}
	return sig.Results().At(0).Type()
}

// checkFunc reports unproven seed arguments of simrand.New/Reseed
// calls and loop-aliased source stores within one function.
func checkFunc(pass *analysis.Pass, af *annotate.File, fd *ast.FuncDecl) {
	c := dataflow.New(pass.TypesInfo, fd)
	ev := dataflow.NewEvaluator(c, transfer(pass, c))

	var loops []ast.Stmt
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, v.(ast.Stmt))
			switch s := v.(type) {
			case *ast.ForStmt:
				ast.Inspect(s.Body, walk)
			case *ast.RangeStmt:
				ast.Inspect(s.Body, walk)
			}
			loops = loops[:len(loops)-1]
			return false
		case *ast.CallExpr:
			checkSeedCall(pass, af, ev, v)
		case *ast.AssignStmt:
			checkAliasStore(pass, af, c, v, loops)
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// checkSeedCall classifies the seed argument of simrand.New and
// (*simrand.Source).Reseed calls.
func checkSeedCall(pass *analysis.Pass, af *annotate.File, ev *dataflow.Evaluator, call *ast.CallExpr) {
	obj := calleeObject(pass.TypesInfo, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Name() != "simrand" || len(call.Args) != 1 {
		return
	}
	switch obj.Name() {
	case "New", "Reseed":
	default:
		return
	}
	if suppressed(pass, af, call) {
		return
	}
	switch ev.Eval(call.Args[0]) {
	case provDerived:
	case provLiteral:
		pass.Reportf(call.Args[0].Pos(),
			"simrand source seeded from a literal, not the run seed; derive the seed via simrand.Mix64 or Split (or //fdlint:stream-ok REASON)")
	case provTainted:
		pass.Reportf(call.Args[0].Pos(),
			"simrand source seeded from ambient state (wall clock, environment, or ambient RNG); results are no longer a pure function of (Scenario, seed)")
	default:
		pass.Reportf(call.Args[0].Pos(),
			"simrand source seed is not provably derived from the run seed (want a seed-rooted value through simrand.Mix64 or a DerivesSeed helper)")
	}
}

// checkAliasStore flags storing a loop-invariant *simrand.Source value
// into per-element storage: every element then shares one stream, so
// two tags/shards draw from the same position — stream aliasing.
func checkAliasStore(pass *analysis.Pass, af *annotate.File, c *dataflow.Chains, as *ast.AssignStmt, loops []ast.Stmt) {
	if len(loops) == 0 || len(as.Lhs) != len(as.Rhs) {
		return
	}
	innermost := loops[len(loops)-1]
	for i, lhs := range as.Lhs {
		if !containsIndex(lhs) {
			continue
		}
		rhs := ast.Unparen(as.Rhs[i])
		if !isSourceType(pass.TypesInfo.TypeOf(rhs)) {
			continue
		}
		switch v := rhs.(type) {
		case *ast.Ident:
			obj := c.Obj(v)
			if obj == nil || c.DeclaredInLoop(obj) == innermost {
				continue
			}
		case *ast.SelectorExpr:
			// A field read (e.src, w.lossSrc): invariant unless the
			// selector path itself is indexed by something loop-local.
			if containsIndex(v) {
				continue
			}
		default:
			// Calls (Split, New) mint a fresh source per element.
			continue
		}
		if suppressed(pass, af, as) {
			continue
		}
		pass.Reportf(as.Pos(),
			"loop-invariant *simrand.Source stored into per-element storage: elements would alias one stream; mint one per element with Split or a seed-derived New")
	}
}

// suppressed reports whether a reasoned //fdlint:stream-ok governs the
// node's line.
func suppressed(pass *analysis.Pass, af *annotate.File, n ast.Node) bool {
	d, ok := af.Has(n, "stream-ok")
	return ok && d.Reason != ""
}

// transfer is the seed-provenance lattice over one function's chains.
func transfer(pass *analysis.Pass, c *dataflow.Chains) dataflow.Transfer {
	var tf dataflow.Transfer
	tf = func(e ast.Expr, eval func(ast.Expr) dataflow.Value) dataflow.Value {
		switch v := e.(type) {
		case *ast.Ident:
			obj := c.Obj(v)
			// The name heuristic roots the lattice: a parameter, free
			// variable, or package value named like a seed is trusted at
			// its declaration site (its own initializer is checked
			// there). Locals with recorded definitions are judged by
			// those definitions instead, so `seed := 42` stays literal.
			if obj != nil && len(c.Defs(obj)) == 0 && seedName(v.Name) && isIntegral(obj.Type()) {
				return provDerived
			}
			return provUnknown
		case *ast.SelectorExpr:
			if seedName(v.Sel.Name) {
				if tv, ok := pass.TypesInfo.Types[e]; ok && isIntegral(tv.Type) {
					return provDerived
				}
			}
			return provUnknown
		case *ast.BasicLit:
			if v.Kind == token.INT {
				return provLiteral
			}
			return provUnknown
		case *ast.BinaryExpr:
			return dataflow.Join(eval(v.X), eval(v.Y))
		case *ast.UnaryExpr:
			return eval(v.X)
		case *ast.IndexExpr:
			return eval(v.X)
		case *ast.CallExpr:
			if tv, ok := pass.TypesInfo.Types[v.Fun]; ok && tv.IsType() && len(v.Args) == 1 {
				// Conversion: uint64(x) carries x's provenance.
				return eval(v.Args[0])
			}
			obj := calleeObject(pass.TypesInfo, v)
			if obj == nil || obj.Pkg() == nil {
				return provUnknown
			}
			if taintedPackages[obj.Pkg().Path()] {
				return provTainted
			}
			if taintedCalls[obj.Pkg().Name()+"."+obj.Name()] {
				return provTainted
			}
			// Taint flows THROUGH any call (time.Now().UnixNano(),
			// f(rand.Int())); derivation flows only through the blessed
			// operations below.
			spill := joinArgs(v, eval)
			if sel, isSel := ast.Unparen(v.Fun).(*ast.SelectorExpr); isSel {
				if sig, isSig := obj.Type().(*types.Signature); isSig && sig.Recv() != nil {
					spill = dataflow.Join(spill, eval(sel.X))
				}
			}
			if spill == provTainted {
				return provTainted
			}
			if obj.Pkg().Name() == "simrand" && obj.Name() == "Mix64" {
				return spill
			}
			var fact DerivesSeed
			if pass.ImportObjectFact != nil && pass.ImportObjectFact(obj, &fact) {
				// A derive helper launders derivation, not literals:
				// fadeSeed(f.seed, i) is derived, fadeSeed(0, 0) is not.
				if spill == provDerived {
					return provDerived
				}
			}
			return provUnknown
		}
		return provUnknown
	}
	return tf
}

func joinArgs(call *ast.CallExpr, eval func(ast.Expr) dataflow.Value) dataflow.Value {
	v := dataflow.Bottom
	for _, a := range call.Args {
		v = dataflow.Join(v, eval(a))
	}
	return v
}

// seedName reports whether an identifier names a seed value.
func seedName(name string) bool {
	return strings.Contains(strings.ToLower(name), "seed")
}

// isIntegral reports whether t is an integer type (after unwrapping
// named types).
func isIntegral(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isSourceType reports whether t is *simrand.Source (by package name
// and type name, so corpus simrand shims qualify).
func isSourceType(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Source" && obj.Pkg() != nil && obj.Pkg().Name() == "simrand"
}

// containsIndex reports whether the expression chain contains an index
// operation (an element access).
func containsIndex(e ast.Expr) bool {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			return true
		case *ast.SelectorExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return false
		}
	}
}

// calleeObject resolves the called function or method object.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}
