package streamtree_test

import (
	"testing"

	"repro/internal/analyze/analysistest"
	"repro/internal/analyze/streamtree"
)

// The corpus proves the analyzer accepts seed-rooted construction
// (directly, via Mix64, and via DerivesSeed helper facts), flags
// literal, wall-clock, and unproven seeds, flags loop element
// aliasing, and honours only reasoned stream-ok suppressions.
func TestStreamtree(t *testing.T) {
	analysistest.Run(t, "testdata", streamtree.Analyzer, "streamtest/internal/netsim")
}
