// Package netsim is the streamtree corpus: a miniature of the engine's
// seed split tree exercising every provenance class — seed-rooted
// construction, Mix64 hashing, DerivesSeed helper facts, literal
// seeds, wall-clock seeds, unproven seeds, and loop element aliasing.
package netsim

import (
	"time"

	"repro/internal/simrand"
)

type engine struct {
	seed    uint64
	src     *simrand.Source
	tagSrc  []*simrand.Source
	columns [][]float64
}

// laneStream hashes the run seed with a lane index: every return is
// seed-derived, so the analyzer exports a DerivesSeed fact for it.
func laneStream(seed, lane uint64) uint64 {
	return simrand.Mix64(seed ^ (lane*0x9e3779b9 + 1))
}

// chained derives through another fact-carrying helper, proving the
// fact fixpoint handles helper-calls-helper regardless of order.
func chained(seed uint64) uint64 {
	return laneStream(seed, 3)
}

// good builds sources only from the run seed and blessed derivations.
func good(seed uint64) *simrand.Source {
	root := simrand.New(seed)
	a := simrand.New(simrand.Mix64(seed ^ 0xfdb5))
	b := simrand.New(laneStream(seed, 7))
	c := simrand.New(chained(seed))
	_, _, _ = a, b, c
	return root
}

// goodField roots construction and reseeding in a seed-named field.
func (e *engine) goodField(i int) {
	e.src = simrand.New(e.seed)
	e.src.Reseed(laneStream(e.seed, uint64(i)))
}

// literalLocal launders a literal through a seed-named local: the
// definition, not the name, decides.
func literalLocal() *simrand.Source {
	seed := uint64(42)
	return simrand.New(seed) // want `seeded from a literal`
}

// literalDirect seeds straight from a constant.
func literalDirect() *simrand.Source {
	return simrand.New(1) // want `seeded from a literal`
}

// wallClock seeds from the wall clock: tainted, not merely unproven.
func wallClock() *simrand.Source {
	return simrand.New(uint64(time.Now().UnixNano())) // want `seeded from ambient state`
}

// unproven seeds from a parameter with no seed pedigree.
func unproven(n uint64) *simrand.Source {
	return simrand.New(n) // want `not provably derived`
}

// factNoLaunder calls a DerivesSeed helper with literal arguments: the
// fact transfers derivation, it does not create it.
func factNoLaunder() *simrand.Source {
	return simrand.New(laneStream(3, 4)) // want `not provably derived`
}

// reseedLiteral re-seeds an existing source from a constant.
func (e *engine) reseedLiteral() {
	e.src.Reseed(7) // want `seeded from a literal`
}

// aliasStore shares one loop-invariant source across every element:
// two tags would draw from the same stream position.
func (e *engine) aliasStore(n int) {
	shared := simrand.New(e.seed)
	for i := 0; i < n; i++ {
		e.tagSrc[i] = shared // want `aliased|loop-invariant \*simrand.Source stored into per-element storage`
	}
}

// splitStore mints a fresh source per element: clean.
func (e *engine) splitStore(n int) {
	root := simrand.New(e.seed)
	for i := 0; i < n; i++ {
		e.tagSrc[i] = root.Split()
	}
}

// perIterStore builds the source inside the loop: clean.
func (e *engine) perIterStore(n int) {
	for i := 0; i < n; i++ {
		s := simrand.New(laneStream(e.seed, uint64(i)))
		e.tagSrc[i] = s
	}
}

// scratchSuppressed is the blessed escape hatch: a zero-seeded scratch
// source that is state-restored before every use.
func scratchSuppressed() *simrand.Source {
	return simrand.New(0) //fdlint:stream-ok reseeded via SetState before every draw
}

// bareSuppression omits the reason: the suppression itself is flagged
// and does not suppress.
func bareSuppression() *simrand.Source {
	return simrand.New(0) //fdlint:stream-ok // want `seeded from a literal` `stream-ok suppression requires a reason`
}
