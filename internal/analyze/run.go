package analyze

import (
	"fmt"
	"go/token"
	"sort"

	"repro/internal/analyze/analysis"
	"repro/internal/analyze/load"
)

// Finding is one resolved diagnostic from a suite run.
type Finding struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

// String renders the finding the way the driver prints it.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Message, f.Analyzer)
}

// Run loads the packages matching patterns (rooted at dir, "" for the
// current directory) and applies the given analyzers — All() when nil —
// returning every diagnostic sorted by position.
func Run(dir string, analyzers []*analysis.Analyzer, patterns ...string) ([]Finding, error) {
	if analyzers == nil {
		analyzers = All()
	}
	l := load.New()
	l.Dir = dir
	pkgs, err := l.Roots(patterns...)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			a := a
			pass := &analysis.Pass{
				Analyzer: a, Fset: l.Fset(), Files: pkg.Files,
				Pkg: pkg.Types, TypesInfo: pkg.TypesInfo,
				Report: func(d analysis.Diagnostic) {
					findings = append(findings, Finding{
						Pos:      l.Fset().Position(d.Pos),
						Message:  d.Message,
						Analyzer: a.Name,
					})
				},
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", pkg.ImportPath, a.Name, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
