package analyze

import (
	"fmt"
	"go/token"
	"sort"

	"repro/internal/analyze/analysis"
	"repro/internal/analyze/load"
)

// Finding is one resolved diagnostic from a suite run.
type Finding struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

// String renders the finding the way the driver prints it.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Message, f.Analyzer)
}

// Suite applies a fixed set of analyzers through one shared loader, so
// repeated Run calls (multiple pattern sets, benchmark iterations)
// type-check the module once instead of re-listing dependencies per
// call. Each analyzer owns one FactStore for the suite's lifetime:
// `go list -deps` yields packages in dependency order, so facts
// exported while analyzing a dependency are importable when its
// importers are analyzed — the x/tools driver contract.
type Suite struct {
	analyzers []*analysis.Analyzer
	loader    *load.Loader
	facts     map[*analysis.Analyzer]*analysis.FactStore
}

// NewSuite returns a suite over the given analyzers — All() when nil —
// rooted at dir ("" for the current directory).
func NewSuite(dir string, analyzers []*analysis.Analyzer) *Suite {
	if analyzers == nil {
		analyzers = All()
	}
	l := load.New()
	l.Dir = dir
	s := &Suite{
		analyzers: analyzers,
		loader:    l,
		facts:     map[*analysis.Analyzer]*analysis.FactStore{},
	}
	for _, a := range analyzers {
		s.facts[a] = analysis.NewFactStore()
	}
	return s
}

// Run loads the packages matching patterns and applies the suite's
// analyzers, returning every diagnostic sorted by position.
func (s *Suite) Run(patterns ...string) ([]Finding, error) {
	pkgs, err := s.loader.Roots(patterns...)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range s.analyzers {
			a := a
			pass := &analysis.Pass{
				Analyzer: a, Fset: s.loader.Fset(), Files: pkg.Files,
				Pkg: pkg.Types, TypesInfo: pkg.TypesInfo,
				Report: func(d analysis.Diagnostic) {
					findings = append(findings, Finding{
						Pos:      s.loader.Fset().Position(d.Pos),
						Message:  d.Message,
						Analyzer: a.Name,
					})
				},
			}
			s.facts[a].Bind(pass)
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", pkg.ImportPath, a.Name, err)
			}
		}
	}
	sortFindings(findings)
	return findings, nil
}

// Run loads the packages matching patterns (rooted at dir, "" for the
// current directory) and applies the given analyzers — All() when nil —
// returning every diagnostic sorted by position.
func Run(dir string, analyzers []*analysis.Analyzer, patterns ...string) ([]Finding, error) {
	return NewSuite(dir, analyzers).Run(patterns...)
}

func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
