// Package validatecover keeps scenario knobs from dodging
// bounds-checking: every JSON-tagged field on the package's Scenario
// struct — and on every same-package struct reachable from it through
// fields, pointers, slices, and maps (reader specs, rate adaptation,
// congestion, faults) — must be read somewhere in the static call
// graph of Scenario.Validate, or carry an explicit
// //fdlint:novalidate REASON directive. A new knob that deserializes
// from JSON but is never looked at by Validate ships without bounds
// checks the way ReqSNRdB once did; this analyzer makes that a lint
// failure instead of a code-review catch.
package validatecover

import (
	"go/ast"
	"go/types"
	"reflect"
	"strings"

	"repro/internal/analyze/analysis"
	"repro/internal/analyze/annotate"
)

// Analyzer is the validatecover analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "validatecover",
	Doc: "every JSON-tagged field on Scenario and its nested specs must be " +
		"read by Validate's call graph or carry //fdlint:novalidate REASON",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	files := map[string]*annotate.File{}
	for _, f := range pass.Files {
		af := annotate.NewFile(pass.Fset, f)
		files[pass.Fset.Position(f.Pos()).Filename] = af
		for _, d := range af.All() {
			if d.Verb == "novalidate" && d.Reason == "" {
				pass.Reportf(d.Pos, "//fdlint:novalidate exemption requires a reason")
			}
		}
	}

	scenario := scenarioType(pass.Pkg)
	if scenario == nil {
		return nil, nil
	}
	validate := lookupMethod(scenario, "Validate")
	if validate == nil {
		// A Scenario without any Validate: every knob is unvalidated,
		// but that is an architecture gap, not a per-field finding.
		pass.Reportf(scenario.Obj().Pos(), "type Scenario has JSON-tagged fields but no Validate method")
		return nil, nil
	}

	read := reachableFieldReads(pass, validate)
	for _, field := range taggedFields(pass.Pkg, scenario) {
		if read[field] {
			continue
		}
		pos := field.Pos()
		af := files[pass.Fset.Position(pos).Filename]
		if af != nil {
			if d, ok := af.HasAt(pos, "novalidate"); ok && d.Reason != "" {
				continue
			}
		}
		pass.Reportf(pos,
			"JSON-tagged field %s.%s is never read by Validate: new knobs must be bounds-checked or carry //fdlint:novalidate REASON",
			ownerName(field), field.Name())
	}
	return nil, nil
}

// scenarioType resolves the package's Scenario struct type.
func scenarioType(pkg *types.Package) *types.Named {
	obj, ok := pkg.Scope().Lookup("Scenario").(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}

// lookupMethod resolves a method on T or *T.
func lookupMethod(named *types.Named, name string) *types.Func {
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == name {
			return m
		}
	}
	return nil
}

// taggedFields walks the struct graph from Scenario through
// same-package named types and collects every JSON-tagged field
// (tag "-" is not a knob and is skipped).
func taggedFields(pkg *types.Package, root *types.Named) []*types.Var {
	var out []*types.Var
	seen := map[*types.Named]bool{}
	var visit func(n *types.Named)
	visit = func(n *types.Named) {
		if seen[n] {
			return
		}
		seen[n] = true
		st, ok := n.Underlying().(*types.Struct)
		if !ok {
			return
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			tag := reflect.StructTag(st.Tag(i)).Get("json")
			name, _, _ := strings.Cut(tag, ",")
			if tag != "" && name != "-" {
				out = append(out, f)
			}
			if nested := namedStruct(pkg, f.Type()); nested != nil {
				visit(nested)
			}
		}
	}
	visit(root)
	return out
}

// namedStruct unwraps pointers, slices, arrays, and map values down to
// a named struct type declared in pkg, or nil.
func namedStruct(pkg *types.Package, t types.Type) *types.Named {
	for {
		switch v := t.(type) {
		case *types.Pointer:
			t = v.Elem()
		case *types.Slice:
			t = v.Elem()
		case *types.Array:
			t = v.Elem()
		case *types.Map:
			t = v.Elem()
		default:
			named, ok := t.(*types.Named)
			if !ok || named.Obj().Pkg() != pkg {
				return nil
			}
			if _, ok := named.Underlying().(*types.Struct); !ok {
				return nil
			}
			return named
		}
	}
}

// reachableFieldReads walks the static same-package call graph from
// the Validate method and records every struct field selected anywhere
// in it. Reads and writes both count — Validate-reachable code only
// inspects — and promoted/embedded selections record the final field.
func reachableFieldReads(pass *analysis.Pass, start *types.Func) map[*types.Var]bool {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}

	read := map[*types.Var]bool{}
	visited := map[*types.Func]bool{}
	queue := []*types.Func{start}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		if visited[fn] {
			continue
		}
		visited[fn] = true
		fd := decls[fn]
		if fd == nil || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.SelectorExpr:
				if sel, ok := pass.TypesInfo.Selections[v]; ok && sel.Kind() == types.FieldVal {
					if f, ok := sel.Obj().(*types.Var); ok {
						read[f] = true
					}
				}
			case *ast.CallExpr:
				if callee := calleeFunc(pass.TypesInfo, v); callee != nil && callee.Pkg() == pass.Pkg && !visited[callee] {
					queue = append(queue, callee)
				}
			}
			return true
		})
	}
	return read
}

// calleeFunc resolves the statically called function or method.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// ownerName renders the declaring struct's type name for diagnostics.
func ownerName(f *types.Var) string {
	if owner := ownerType(f); owner != "" {
		return owner
	}
	return "Scenario"
}

// ownerType finds the named type whose struct declares f. The
// position-based scan is enough for diagnostics: field vars carry
// their declaration position inside the struct type's declaration.
func ownerType(f *types.Var) string {
	pkg := f.Pkg()
	if pkg == nil {
		return ""
	}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == f {
				return tn.Name()
			}
		}
	}
	return ""
}
