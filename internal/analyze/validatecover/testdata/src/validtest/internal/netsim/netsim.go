// Package netsim is the validatecover corpus: a miniature Scenario
// with nested specs exercising the coverage rules — fields read
// directly by Validate, fields read through nested validate helpers,
// an unvalidated knob, untagged plumbing, and the novalidate hatch.
package netsim

import "errors"

// ReaderSpec is a nested spec reached through a slice field.
type ReaderSpec struct {
	Count    int     `json:"count"`
	SpacingM float64 `json:"spacing_m"`
	Label    string  // untagged plumbing: not a knob
}

// FaultSpec is a nested spec reached through a pointer field.
type FaultSpec struct {
	Rounds int `json:"rounds"`
	Burst  int `json:"burst"` // want `JSON-tagged field FaultSpec.Burst is never read by Validate`
}

// Scenario is the corpus scenario.
type Scenario struct {
	Name    string  `json:"name"` //fdlint:novalidate free-form label, any string is valid
	Tags    int     `json:"tags"`
	Rho     float64 `json:"rho"`
	Offered float64 `json:"offered_load"` // want `JSON-tagged field Scenario.Offered is never read by Validate`
	Debug   bool    `json:"-"`

	Readers ReaderSpec `json:"readers"`
	Faults  *FaultSpec `json:"faults,omitempty"`

	BadHatch int `json:"bad_hatch"` //fdlint:novalidate // want `novalidate exemption requires a reason` `JSON-tagged field Scenario.BadHatch is never read by Validate`

	internalCache []byte // untagged: ignored
}

// validate bounds-checks the reader layout (reached via Validate).
func (r *ReaderSpec) validate() error {
	if r.Count <= 0 {
		return errors.New("readers.count must be positive")
	}
	if r.SpacingM <= 0 {
		return errors.New("readers.spacing_m must be positive")
	}
	return nil
}

// Validate bounds-checks every knob it knows about.
func (s *Scenario) Validate() error {
	if s.Tags <= 0 {
		return errors.New("tags must be positive")
	}
	if s.Rho <= 0 || s.Rho > 1 {
		return errors.New("rho must be in (0, 1]")
	}
	if err := s.Readers.validate(); err != nil {
		return err
	}
	if s.Faults != nil && s.Faults.Rounds <= 0 {
		return errors.New("faults.rounds must be positive")
	}
	return nil
}
