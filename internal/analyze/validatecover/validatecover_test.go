package validatecover_test

import (
	"testing"

	"repro/internal/analyze/analysistest"
	"repro/internal/analyze/validatecover"
)

// The corpus proves the analyzer accepts fields read directly by
// Validate and through nested validate helpers, ignores untagged and
// json:"-" fields, flags unvalidated knobs on Scenario and nested
// specs, and honours only reasoned novalidate exemptions.
func TestValidatecover(t *testing.T) {
	analysistest.Run(t, "testdata", validatecover.Analyzer, "validtest/internal/netsim")
}
