package sharded_test

import (
	"testing"

	"repro/internal/analyze/analysistest"
	"repro/internal/analyze/sharded"
)

// The corpus proves the analyzer confines goroutine creation to the
// //fdlint:workerpool function, requires parameter-rooted simrand
// sources (with alias tracking) and channel-free bodies in
// //fdlint:parallel functions, and keeps //fdlint:serial streams out
// of struct fields and parallel calls.
func TestSharded(t *testing.T) {
	analysistest.Run(t, "testdata", sharded.Analyzer, "shardtest/internal/netsim")
}

func TestGoverns(t *testing.T) {
	for path, want := range map[string]bool{
		"repro/internal/netsim":     true,
		"shardtest/internal/netsim": true,
		"internal/netsim":           true,
		"repro/internal/netsvc":     false,
		"repro/internal/mac":        false,
	} {
		if got := sharded.Governs(path); got != want {
			t.Errorf("Governs(%q) = %v, want %v", path, got, want)
		}
	}
}
