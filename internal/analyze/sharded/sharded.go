// Package sharded statically enforces the engine's sharding contract
// in internal/netsim: byte-identical results at any worker count
// require that parallel sections touch only per-worker or per-shard
// state, and that the serial-only RNG streams never cross into them.
//
// Three annotations carry the contract:
//
//	//fdlint:workerpool  on the one function allowed to create
//	                     goroutines (the persistent pool constructor).
//	                     Any `go` statement elsewhere in the package is
//	                     a diagnostic: ad-hoc goroutines bypass the
//	                     pool's deterministic shard dispatch.
//	//fdlint:parallel    on functions that execute on pool workers.
//	                     Inside them the analyzer forbids go statements,
//	                     channel operations and select (workers must be
//	                     pure compute between dispatch barriers), and
//	                     requires every *simrand.Source expression to be
//	                     rooted at a non-receiver parameter — receiver
//	                     fields are engine-shared state, parameters are
//	                     the per-worker scratch. Local aliases of
//	                     parameter-rooted sources (seedSrc := w.lossSrc)
//	                     are tracked.
//	//fdlint:serial      trailing a declaration whose value is a
//	                     serial-only stream (the placement/traffic/
//	                     slot/mobility splits). Within the declaring
//	                     function the value must not be stored into a
//	                     struct field or passed to a //fdlint:parallel
//	                     function — either would let worker scheduling
//	                     perturb the draw sequence.
package sharded

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analyze/analysis"
	"repro/internal/analyze/annotate"
)

// Analyzer is the sharded analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "sharded",
	Doc: "netsim parallel sections: goroutines only in the worker " +
		"pool, parallel functions touch only parameter-rooted RNG " +
		"sources, serial-only streams stay serial",
	Run: run,
}

// Governs reports whether the analyzer applies to the package path.
func Governs(path string) bool {
	const sfx = "internal/netsim"
	return path == sfx || strings.HasSuffix(path, "/"+sfx)
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !Governs(pass.Pkg.Path()) {
		return nil, nil
	}
	// First pass: find the //fdlint:parallel function objects so calls
	// to them can be recognized across the package.
	parallelFuncs := map[types.Object]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if _, ok := annotate.FuncHas(pass.Fset, fd, "parallel"); ok {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					parallelFuncs[obj] = true
				}
			}
		}
	}

	for _, f := range pass.Files {
		af := annotate.NewFile(pass.Fset, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			_, isPool := annotate.FuncHas(pass.Fset, fd, "workerpool")
			_, isParallel := annotate.FuncHas(pass.Fset, fd, "parallel")
			if !isPool {
				checkNoGo(pass, fd)
			}
			if isParallel {
				checkParallel(pass, fd)
			}
			checkSerial(pass, af, fd, parallelFuncs)
		}
	}
	return nil, nil
}

// checkNoGo flags goroutine creation outside the worker pool.
func checkNoGo(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			pass.Reportf(g.Pos(), "go statement outside the //fdlint:workerpool function: ad-hoc goroutines bypass deterministic shard dispatch")
		}
		return true
	})
}

// checkParallel enforces the worker-purity rules inside one
// //fdlint:parallel function.
func checkParallel(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Parameter objects (the per-worker scratch roots). The receiver is
	// deliberately excluded: it is the shared engine.
	roots := map[types.Object]bool{}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					roots[obj] = true
				}
			}
		}
	}
	// Alias prepass: locals defined from parameter-rooted expressions
	// join the root set (source order; engine code aliases before use).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if rootObject(pass, as.Rhs[i], roots) {
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					roots[obj] = true
				} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
					roots[obj] = true
				}
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.SelectStmt:
			pass.Reportf(v.Pos(), "//fdlint:parallel function %s uses select: workers must be pure compute between dispatch barriers", fd.Name.Name)
			return false
		case *ast.SendStmt:
			pass.Reportf(v.Pos(), "//fdlint:parallel function %s sends on a channel: workers must be pure compute between dispatch barriers", fd.Name.Name)
			return false
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				pass.Reportf(v.Pos(), "//fdlint:parallel function %s receives from a channel: workers must be pure compute between dispatch barriers", fd.Name.Name)
			}
		case *ast.Ident, *ast.SelectorExpr:
			expr := n.(ast.Expr)
			if !isSourceType(pass.TypesInfo.Types[expr].Type) {
				return true
			}
			if !rootObject(pass, expr, roots) {
				pass.Reportf(expr.Pos(), "//fdlint:parallel function %s uses a *simrand.Source not rooted at a parameter: engine-shared sources make results depend on worker interleaving", fd.Name.Name)
			}
			if _, ok := n.(*ast.SelectorExpr); ok {
				return false
			}
		}
		return true
	})
}

// rootObject reports whether expr's base identifier is one of the
// allowed roots (a parameter or a tracked alias).
func rootObject(pass *analysis.Pass, expr ast.Expr, roots map[types.Object]bool) bool {
	e := ast.Unparen(expr)
	for {
		switch v := e.(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[v]
			if obj == nil {
				obj = pass.TypesInfo.Defs[v]
			}
			return obj != nil && roots[obj]
		case *ast.SelectorExpr:
			e = ast.Unparen(v.X)
		case *ast.IndexExpr:
			e = ast.Unparen(v.X)
		case *ast.StarExpr:
			e = ast.Unparen(v.X)
		case *ast.CallExpr:
			// A method call on a rooted value (w.src.Split()) stays rooted.
			if sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr); ok {
				e = ast.Unparen(sel.X)
				continue
			}
			return false
		default:
			return false
		}
	}
}

// isSourceType reports whether t is simrand.Source or a pointer to it.
func isSourceType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Source" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "internal/simrand" || strings.HasSuffix(path, "/internal/simrand")
}

// checkSerial finds //fdlint:serial declarations in fd and verifies the
// declared values stay serial: never stored into a struct field, never
// passed to a //fdlint:parallel function.
func checkSerial(pass *analysis.Pass, af *annotate.File, fd *ast.FuncDecl, parallelFuncs map[types.Object]bool) {
	serial := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if _, ok := af.Has(as, "serial"); !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					serial[obj] = true
				}
			}
		}
		return true
	})
	if len(serial) == 0 {
		return
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range v.Lhs {
				if _, ok := lhs.(*ast.SelectorExpr); !ok {
					continue
				}
				if i < len(v.Rhs) && mentionsSerial(pass, v.Rhs[i], serial) {
					pass.Reportf(v.Pos(), "serial-only stream stored into a struct field: //fdlint:serial values must not outlive the serial section")
				}
			}
		case *ast.CompositeLit:
			for _, elt := range v.Elts {
				val := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if id, ok := ast.Unparen(val).(*ast.Ident); ok {
					if obj := pass.TypesInfo.Uses[id]; obj != nil && serial[obj] {
						pass.Reportf(val.Pos(), "serial-only stream stored into a composite literal: //fdlint:serial values must not outlive the serial section")
					}
				}
			}
		case *ast.CallExpr:
			callee := calleeObject(pass, v)
			if callee == nil || !parallelFuncs[callee] {
				return true
			}
			for _, arg := range v.Args {
				if mentionsSerial(pass, arg, serial) {
					pass.Reportf(arg.Pos(), "serial-only stream passed to //fdlint:parallel function %s: worker interleaving would perturb its draw sequence", callee.Name())
				}
			}
		}
		return true
	})
}

func mentionsSerial(pass *analysis.Pass, e ast.Expr, serial map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil && serial[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

func calleeObject(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[f]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[f.Sel]
	}
	return nil
}
