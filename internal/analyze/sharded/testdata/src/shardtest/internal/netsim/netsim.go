// Package netsim is the sharded corpus: a miniature of the engine's
// pool/worker split exercising every rule — goroutines outside the
// pool, engine-rooted sources in parallel sections, channel traffic on
// workers, and serial-only streams escaping.
package netsim

import "repro/internal/simrand"

type worker struct {
	lossSrc *simrand.Source
	out     chan int
}

type engine struct {
	src     *simrand.Source
	workers []*worker
}

type holder struct{ src *simrand.Source }

// badSpawn creates an ad-hoc goroutine: only the worker pool may.
func badSpawn(job func()) {
	go job() // want `go statement outside the //fdlint:workerpool function`
}

// start owns the persistent pool: goroutine creation is allowed here.
//
//fdlint:workerpool
func (e *engine) start() {
	for _, w := range e.workers {
		go func(w *worker) { _ = w }(w)
	}
}

// goodShard reaches randomness only through the worker parameter,
// including via a local alias: clean.
//
//fdlint:parallel
func (e *engine) goodShard(w *worker, lo, hi int) {
	seedSrc := w.lossSrc
	for i := lo; i < hi; i++ {
		_ = seedSrc.Uint64()
	}
}

// badShard draws from the shared engine source inside a parallel
// section: results would depend on worker interleaving.
//
//fdlint:parallel
func (e *engine) badShard(lo, hi int) {
	for i := lo; i < hi; i++ {
		_ = e.src.Uint64() // want `uses a \*simrand.Source not rooted at a parameter`
	}
}

// chatty does channel traffic on a worker: parallel sections must be
// pure compute between dispatch barriers.
//
//fdlint:parallel
func (e *engine) chatty(w *worker, done chan int) {
	w.out <- 1 // want `sends on a channel`
	<-done     // want `receives from a channel`
	select {   // want `uses select`
	case <-done:
	default:
	}
}

// congShard is the congestion-control miniature: per-tag window and
// retx columns advanced inside parallel sections, with delivery
// accounting that must stay in worker-local columns until the serial
// drain — never flow through channels mid-shard.
type congShard struct {
	cwnd  []float64
	acked chan int
}

// congGood decays windows using only the worker's own loss stream and
// writes only this shard's columns: clean.
//
//fdlint:parallel
func (e *engine) congGood(w *worker, c *congShard, lo, hi int) {
	for i := lo; i < hi; i++ {
		if w.lossSrc.Uint64()&1 == 0 {
			c.cwnd[i] *= 0.7
		}
	}
}

// congBad reports deliveries over a channel from inside the shard and
// draws retx jitter from the shared engine source: both make the
// outcome depend on worker interleaving.
//
//fdlint:parallel
func (e *engine) congBad(w *worker, c *congShard, lo, hi int) {
	for i := lo; i < hi; i++ {
		c.acked <- i // want `sends on a channel`
	}
	_ = e.src.Uint64() // want `uses a \*simrand.Source not rooted at a parameter`
}

// shardWork is parameter-rooted and clean; it exists as a parallel
// target for the serial-stream rule below.
//
//fdlint:parallel
func shardWork(w *worker, src *simrand.Source) { _ = src.Uint64() }

func consume(s *simrand.Source) uint64 { return s.Uint64() }

// run splits serial-only streams and must keep them serial.
func run(seed uint64) uint64 {
	root := simrand.New(seed)
	slotSrc := root.Split() //fdlint:serial
	var h holder
	h.src = slotSrc            // want `serial-only stream stored into a struct field`
	h2 := holder{src: slotSrc} // want `serial-only stream stored into a composite literal`
	_ = h2
	shardWork(nil, slotSrc) // want `serial-only stream passed to //fdlint:parallel function shardWork`
	return consume(slotSrc)
}
