package sigproc

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

const eps = 1e-12

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestPowerConstant(t *testing.T) {
	x := NewIQ(100).Fill(complex(3, 4)) // |x| = 5, power 25
	if got := x.Power(); !almostEq(got, 25, eps) {
		t.Fatalf("Power = %g, want 25", got)
	}
	if got := x.RMS(); !almostEq(got, 5, eps) {
		t.Fatalf("RMS = %g, want 5", got)
	}
	if got := x.Energy(); !almostEq(got, 2500, eps) {
		t.Fatalf("Energy = %g, want 2500", got)
	}
}

func TestPowerEmpty(t *testing.T) {
	var x IQ
	if x.Power() != 0 || x.RMS() != 0 || x.Energy() != 0 {
		t.Fatal("empty buffer should have zero power/rms/energy")
	}
	if x.Mean() != 0 {
		t.Fatal("empty buffer mean should be 0")
	}
}

func TestMean(t *testing.T) {
	x := IQ{1 + 1i, 3 + 3i}
	if got := x.Mean(); got != 2+2i {
		t.Fatalf("Mean = %v, want (2+2i)", got)
	}
}

func TestScaleAddSubMul(t *testing.T) {
	x := IQ{1, 2, 3}
	x.Scale(2)
	if x[2] != 6 {
		t.Fatalf("Scale: got %v", x)
	}
	y := IQ{1, 1, 1}
	x.Add(y)
	if x[0] != 3 || x[2] != 7 {
		t.Fatalf("Add: got %v", x)
	}
	x.Sub(y)
	if x[0] != 2 {
		t.Fatalf("Sub: got %v", x)
	}
	x.Mul(IQ{2, 2, 2})
	if x[0] != 4 {
		t.Fatalf("Mul: got %v", x)
	}
	x.ScaleReal(0.5)
	if x[0] != 2 {
		t.Fatalf("ScaleReal: got %v", x)
	}
}

func TestAddLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	IQ{1}.Add(IQ{1, 2})
}

func TestCloneIndependent(t *testing.T) {
	x := IQ{1, 2}
	y := x.Clone()
	y[0] = 99
	if x[0] != 1 {
		t.Fatal("Clone must not alias the source")
	}
}

func TestEnvelope(t *testing.T) {
	x := IQ{3 + 4i, 0, 1}
	env := x.Envelope(nil)
	want := []float64{5, 0, 1}
	for i := range want {
		if !almostEq(env[i], want[i], eps) {
			t.Fatalf("Envelope[%d] = %g, want %g", i, env[i], want[i])
		}
	}
	sq := x.EnvelopeSq(nil)
	if !almostEq(sq[0], 25, eps) {
		t.Fatalf("EnvelopeSq[0] = %g, want 25", sq[0])
	}
}

func TestEnvelopeReuseBuffer(t *testing.T) {
	x := IQ{1, 2, 3}
	buf := make([]float64, 8)
	env := x.Envelope(buf)
	if len(env) != 3 {
		t.Fatalf("len = %d, want 3", len(env))
	}
	if &env[0] != &buf[0] {
		t.Fatal("Envelope should reuse a sufficiently large buffer")
	}
}

func TestPeakAbs(t *testing.T) {
	x := IQ{1, -5i, 2}
	if got := x.PeakAbs(); !almostEq(got, 5, eps) {
		t.Fatalf("PeakAbs = %g, want 5", got)
	}
}

func TestDBRoundTrip(t *testing.T) {
	for _, lin := range []float64{0.001, 1, 42, 1e6} {
		if got := Lin(DB(lin)); !almostEq(got, lin, 1e-9) {
			t.Fatalf("Lin(DB(%g)) = %g", lin, got)
		}
	}
	if got := DBm(1); !almostEq(got, 30, eps) {
		t.Fatalf("DBm(1W) = %g, want 30", got)
	}
	if got := Watts(0); !almostEq(got, 0.001, eps) {
		t.Fatalf("Watts(0 dBm) = %g, want 1 mW", got)
	}
}

func TestDBmWattsRoundTripQuick(t *testing.T) {
	f := func(dbmRaw int16) bool {
		dbm := float64(dbmRaw%600) / 10 // -60..+60 dBm
		return almostEq(DBm(Watts(dbm)), dbm, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAmplitudeForPower(t *testing.T) {
	if got := AmplitudeForPower(25); !almostEq(got, 5, eps) {
		t.Fatalf("got %g, want 5", got)
	}
	if AmplitudeForPower(-1) != 0 || AmplitudeForPower(0) != 0 {
		t.Fatal("non-positive power must map to zero amplitude")
	}
}

func TestMeanVariance(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if got := MeanFloat(x); !almostEq(got, 2.5, eps) {
		t.Fatalf("mean = %g", got)
	}
	if got := Variance(x); !almostEq(got, 1.25, eps) {
		t.Fatalf("variance = %g", got)
	}
	if MeanFloat(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty stats should be zero")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 0})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = (%g, %g)", lo, hi)
	}
	lo, hi = MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Fatal("empty MinMax should be (0,0)")
	}
}

// Property: scaling by g scales power by |g|^2.
func TestPowerScalingProperty(t *testing.T) {
	f := func(re, im int8, n uint8) bool {
		g := complex(float64(re)/16, float64(im)/16)
		x := NewIQ(int(n%32) + 1).Fill(1 + 1i)
		p0 := x.Power()
		x.Scale(g)
		want := p0 * real(g*cmplx.Conj(g))
		return almostEq(x.Power(), want, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: energy is additive over concatenation.
func TestEnergyAdditiveProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		mk := func(v []float64) IQ {
			x := make(IQ, len(v))
			for i, f := range v {
				if math.IsNaN(f) || math.IsInf(f, 0) {
					f = 0
				}
				x[i] = complex(math.Mod(f, 100), 0)
			}
			return x
		}
		xa, xb := mk(a), mk(b)
		cat := append(xa.Clone(), xb...)
		return almostEq(cat.Energy(), xa.Energy()+xb.Energy(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// The envelope's real-sample fast path must be bit-identical to the
// Hypot path: math.Hypot(re, 0) == math.Abs(re) exactly, including
// signed zeros, infinities and NaN.
func TestEnvelopeRealFastPathBitIdentical(t *testing.T) {
	vals := []float64{0, math.Copysign(0, -1), 1.5, -2.25, 1e-300, -1e300,
		math.Inf(1), math.Inf(-1), math.NaN(), 0.1, -0.30000000000000004}
	x := make(IQ, len(vals))
	for i, v := range vals {
		x[i] = complex(v, 0)
	}
	env := x.Envelope(nil)
	for i, v := range vals {
		want := math.Hypot(v, 0)
		got := env[i]
		if math.IsNaN(want) {
			if !math.IsNaN(got) {
				t.Fatalf("val %v: got %v, want NaN", v, got)
			}
			continue
		}
		if got != want {
			t.Fatalf("val %v: fast path %v != Hypot %v", v, got, want)
		}
	}
}
