package sigproc

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestFFTImpulse(t *testing.T) {
	// FFT of a unit impulse is all ones.
	x := NewIQ(8)
	x[0] = 1
	FFT(x)
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestFFTDCTone(t *testing.T) {
	x := NewIQ(16).Fill(1)
	FFT(x)
	if cmplx.Abs(x[0]-16) > 1e-9 {
		t.Fatalf("DC bin = %v, want 16", x[0])
	}
	for i := 1; i < 16; i++ {
		if cmplx.Abs(x[i]) > 1e-9 {
			t.Fatalf("bin %d = %v, want 0", i, x[i])
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	const n, k = 64, 5
	x := NewIQ(n)
	for i := range x {
		ph := 2 * math.Pi * k * float64(i) / n
		x[i] = cmplx.Exp(complex(0, ph))
	}
	FFT(x)
	for i := range x {
		want := 0.0
		if i == k {
			want = n
		}
		if math.Abs(cmplx.Abs(x[i])-want) > 1e-9 {
			t.Fatalf("bin %d magnitude %g, want %g", i, cmplx.Abs(x[i]), want)
		}
	}
}

func TestFFTIFFTRoundTrip(t *testing.T) {
	p := NewPRBS31(5)
	x := make(IQ, 128)
	for i := range x {
		x[i] = complex(float64(p.NextBit())*2-1, float64(p.NextBit())*2-1)
	}
	orig := x.Clone()
	FFT(x)
	IFFT(x)
	for i := range x {
		if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
			t.Fatalf("round trip mismatch at %d: %v vs %v", i, x[i], orig[i])
		}
	}
}

func TestFFTParseval(t *testing.T) {
	p := NewPRBS15(9)
	x := make(IQ, 256)
	for i := range x {
		x[i] = complex(float64(p.NextBit()), float64(p.NextBit()))
	}
	timeEnergy := x.Energy()
	f := x.Clone()
	FFT(f)
	freqEnergy := f.Energy() / float64(len(f))
	if math.Abs(timeEnergy-freqEnergy) > 1e-6*timeEnergy {
		t.Fatalf("Parseval violated: %g vs %g", timeEnergy, freqEnergy)
	}
}

func TestFFTPanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FFT(NewIQ(12))
}

func TestFFTTrivialSizes(t *testing.T) {
	var empty IQ
	FFT(empty) // must not panic
	one := IQ{3 + 4i}
	FFT(one)
	if one[0] != 3+4i {
		t.Fatal("size-1 FFT must be identity")
	}
	IFFT(one)
	if one[0] != 3+4i {
		t.Fatal("size-1 IFFT must be identity")
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024, 1024: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Fatalf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestPowerSpectrumTone(t *testing.T) {
	const n = 128
	x := NewIQ(n)
	for i := range x {
		ph := 2 * math.Pi * 10 * float64(i) / n
		x[i] = cmplx.Exp(complex(0, ph))
	}
	ps := PowerSpectrum(x)
	if PeakIndex(ps) != 10 {
		t.Fatalf("spectrum peak at %d, want 10", PeakIndex(ps))
	}
}

func TestGoertzelMatchesFFTBin(t *testing.T) {
	const n = 256
	const fs = 1e6
	x := NewIQ(n)
	toneHz := 5.0 / n * fs // exactly bin 5
	for i := range x {
		ph := 2 * math.Pi * toneHz * float64(i) / fs
		x[i] = cmplx.Exp(complex(0, ph))
	}
	pw := Goertzel(x, toneHz, fs)
	// A unit tone at an exact bin has |X[k]|^2/n^2 = 1.
	if math.Abs(pw-1) > 1e-9 {
		t.Fatalf("Goertzel power = %g, want 1", pw)
	}
	off := Goertzel(x, toneHz*3, fs)
	if off > 1e-9 {
		t.Fatalf("Goertzel off-bin power = %g, want ~0", off)
	}
}

func TestGoertzelEmpty(t *testing.T) {
	if Goertzel(nil, 1000, 1e6) != 0 {
		t.Fatal("empty buffer should give 0")
	}
}

// PowerSpectrumInto must match PowerSpectrum while reusing both the
// FFT scratch and the destination.
func TestPowerSpectrumIntoMatchesAndReuses(t *testing.T) {
	x := make(IQ, 300) // non-power-of-two: exercises the zero padding
	for i := range x {
		x[i] = complex(float64(i%11)-5, float64(i%7)-3)
	}
	want := PowerSpectrum(x)
	ps, work := PowerSpectrumInto(x, nil, nil)
	if len(ps) != len(want) {
		t.Fatalf("length %d != %d", len(ps), len(want))
	}
	for i := range ps {
		if ps[i] != want[i] {
			t.Fatalf("bin %d: %v != %v", i, ps[i], want[i])
		}
	}
	// Dirty the scratch, then reuse it for a shorter input: the stale
	// tail must be zero-padded away, not leak into the spectrum.
	for i := range work {
		work[i] = complex(1e9, -1e9)
	}
	short := x[:65]
	wantShort := PowerSpectrum(short)
	psShort, work2 := PowerSpectrumInto(short, work, ps)
	for i := range psShort {
		if psShort[i] != wantShort[i] {
			t.Fatalf("reused scratch leaked: bin %d %v != %v", i, psShort[i], wantShort[i])
		}
	}
	if &work2[0] != &work[0] {
		t.Fatal("scratch was reallocated despite sufficient capacity")
	}
	allocs := testing.AllocsPerRun(20, func() {
		psShort, work2 = PowerSpectrumInto(short, work2, psShort)
	})
	if allocs != 0 {
		t.Fatalf("PowerSpectrumInto with reused buffers allocates %.1f objects", allocs)
	}
}
