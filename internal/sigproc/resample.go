package sigproc

import "math"

// FractionalDelay delays a buffer by a possibly non-integer number of
// samples using linear interpolation, writing into dst (allocated if nil
// or short). Samples shifted in from before the start of x are zero.
// Negative delays advance the signal. The output has the same length as
// the input.
func FractionalDelay(x IQ, delay float64, dst IQ) IQ {
	if cap(dst) < len(x) {
		dst = make(IQ, len(x))
	}
	dst = dst[:len(x)]
	for i := range dst {
		pos := float64(i) - delay
		lo := math.Floor(pos)
		frac := pos - lo
		ilo := int(lo)
		var a, b complex128
		if ilo >= 0 && ilo < len(x) {
			a = x[ilo]
		}
		if ilo+1 >= 0 && ilo+1 < len(x) {
			b = x[ilo+1]
		}
		dst[i] = a*complex(1-frac, 0) + b*complex(frac, 0)
	}
	return dst
}

// Resample converts x from one sample rate to another using linear
// interpolation. The output length is round(len(x) * outRate / inRate).
// It panics if either rate is not positive. Repeated conversions should
// use ResampleInto to reuse the destination buffer.
func Resample(x IQ, inRate, outRate float64) IQ {
	return ResampleInto(x, inRate, outRate, nil)
}

// ResampleInto is Resample writing into dst (allocated if nil or short).
func ResampleInto(x IQ, inRate, outRate float64, dst IQ) IQ {
	if inRate <= 0 || outRate <= 0 {
		panic("sigproc: resample rates must be positive")
	}
	n := int(math.Round(float64(len(x)) * outRate / inRate))
	if cap(dst) < n {
		dst = make(IQ, n)
	}
	out := dst[:n]
	if len(x) == 0 {
		return out.Zero()
	}
	ratio := inRate / outRate
	for i := range out {
		pos := float64(i) * ratio
		lo := int(pos)
		if lo >= len(x)-1 {
			out[i] = x[len(x)-1]
			continue
		}
		frac := pos - float64(lo)
		out[i] = x[lo]*complex(1-frac, 0) + x[lo+1]*complex(frac, 0)
	}
	return out
}

// Decimate keeps every factor-th sample of x starting at offset 0,
// writing into dst (allocated if nil or short). It panics if factor < 1.
func Decimate(x IQ, factor int, dst IQ) IQ {
	if factor < 1 {
		panic("sigproc: decimation factor must be >= 1")
	}
	n := (len(x) + factor - 1) / factor
	if cap(dst) < n {
		dst = make(IQ, n)
	}
	dst = dst[:n]
	for i := 0; i < n; i++ {
		dst[i] = x[i*factor]
	}
	return dst
}

// Upsample repeats each sample of x factor times (zero-order hold),
// writing into dst (allocated if nil or short). It panics if factor < 1.
func Upsample(x IQ, factor int, dst IQ) IQ {
	if factor < 1 {
		panic("sigproc: upsample factor must be >= 1")
	}
	n := len(x) * factor
	if cap(dst) < n {
		dst = make(IQ, n)
	}
	dst = dst[:n]
	for i, v := range x {
		for j := 0; j < factor; j++ {
			dst[i*factor+j] = v
		}
	}
	return dst
}
