package sigproc

import "math"

// CrossCorrelate computes the sliding dot product of pattern against x at
// every offset where the pattern fully fits, writing results into dst
// (allocated if nil or short). The result has length len(x)-len(pattern)+1;
// it is empty when the pattern does not fit.
func CrossCorrelate(x, pattern IQ, dst IQ) IQ {
	n := len(x) - len(pattern) + 1
	if n < 0 {
		n = 0
	}
	if cap(dst) < n {
		dst = make(IQ, n)
	}
	dst = dst[:n]
	for i := 0; i < n; i++ {
		var acc complex128
		for j, p := range pattern {
			// Correlation uses the conjugate of the pattern.
			acc += x[i+j] * complex(real(p), -imag(p))
		}
		dst[i] = acc
	}
	return dst
}

// CorrelateReal computes the sliding dot product of a real pattern against
// a real signal, writing results into dst (allocated if nil or short).
func CorrelateReal(x, pattern []float64, dst []float64) []float64 {
	n := len(x) - len(pattern) + 1
	if n < 0 {
		n = 0
	}
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i := 0; i < n; i++ {
		var acc float64
		for j, p := range pattern {
			acc += x[i+j] * p
		}
		dst[i] = acc
	}
	return dst
}

// NormalizedCorrelateReal computes the normalised cross-correlation
// (cosine similarity) of a zero-mean pattern against x at every offset.
// Values are in [-1, 1]; offsets where the window has zero energy yield 0.
func NormalizedCorrelateReal(x, pattern []float64, dst []float64) []float64 {
	n := len(x) - len(pattern) + 1
	if n < 0 {
		n = 0
	}
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	var pe float64
	pm := MeanFloat(pattern)
	zp := make([]float64, len(pattern))
	for i, p := range pattern {
		zp[i] = p - pm
		pe += zp[i] * zp[i]
	}
	if pe == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return dst
	}
	for i := 0; i < n; i++ {
		var xm float64
		for j := range pattern {
			xm += x[i+j]
		}
		xm /= float64(len(pattern))
		var acc, xe float64
		for j := range pattern {
			xv := x[i+j] - xm
			acc += xv * zp[j]
			xe += xv * xv
		}
		if xe == 0 {
			dst[i] = 0
			continue
		}
		dst[i] = acc / math.Sqrt(xe*pe)
	}
	return dst
}

// PeakIndex returns the index of the maximum value in x, or -1 if x is
// empty.
func PeakIndex(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i, v := range x[1:] {
		if v > x[best] {
			best = i + 1
		}
	}
	return best
}

// PeakAbsIndex returns the index of the maximum |x[i]| in a complex
// buffer, or -1 if x is empty.
func PeakAbsIndex(x IQ) int {
	if len(x) == 0 {
		return -1
	}
	best, bm := 0, 0.0
	for i, v := range x {
		m := real(v)*real(v) + imag(v)*imag(v)
		if m > bm {
			bm = m
			best = i
		}
	}
	return best
}
