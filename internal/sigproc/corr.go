package sigproc

import "math"

// CrossCorrelate computes the sliding dot product of pattern against x at
// every offset where the pattern fully fits, writing results into dst
// (allocated if nil or short). The result has length len(x)-len(pattern)+1;
// it is empty when the pattern does not fit.
func CrossCorrelate(x, pattern IQ, dst IQ) IQ {
	n := len(x) - len(pattern) + 1
	if n < 0 {
		n = 0
	}
	if cap(dst) < n {
		dst = make(IQ, n)
	}
	dst = dst[:n]
	for i := 0; i < n; i++ {
		var acc complex128
		for j, p := range pattern {
			// Correlation uses the conjugate of the pattern.
			acc += x[i+j] * complex(real(p), -imag(p))
		}
		dst[i] = acc
	}
	return dst
}

// CorrelateReal computes the sliding dot product of a real pattern against
// a real signal, writing results into dst (allocated if nil or short).
func CorrelateReal(x, pattern []float64, dst []float64) []float64 {
	n := len(x) - len(pattern) + 1
	if n < 0 {
		n = 0
	}
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i := 0; i < n; i++ {
		var acc float64
		for j, p := range pattern {
			acc += x[i+j] * p
		}
		dst[i] = acc
	}
	return dst
}

// Matcher is a precomputed pattern for repeated normalised
// cross-correlation: the zero-mean pattern and its energy are derived
// once at construction, so per-call work is only the sliding windows.
// Receivers that correlate the same template against every incoming
// block (e.g. preamble detection) should hold one Matcher instead of
// calling NormalizedCorrelateReal, which re-derives the pattern (and
// allocates) on every call.
type Matcher struct {
	zp []float64 // zero-mean pattern
	pe float64   // pattern energy sum(zp^2)
}

// NewMatcher returns a matcher for the given pattern. The pattern is
// copied; later mutation of the argument does not affect the matcher.
func NewMatcher(pattern []float64) *Matcher {
	m := &Matcher{zp: make([]float64, len(pattern))}
	pm := MeanFloat(pattern)
	for i, p := range pattern {
		m.zp[i] = p - pm
		m.pe += m.zp[i] * m.zp[i]
	}
	return m
}

// Len returns the pattern length.
func (m *Matcher) Len() int { return len(m.zp) }

// Correlate computes the normalised cross-correlation (cosine
// similarity) of the matcher's pattern against x at every offset,
// writing into dst (allocated if nil or short). Values are in [-1, 1];
// offsets where either window has zero energy yield 0. The result is
// identical to NormalizedCorrelateReal with the original pattern.
func (m *Matcher) Correlate(x []float64, dst []float64) []float64 {
	n := len(x) - len(m.zp) + 1
	if n < 0 {
		n = 0
	}
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	if m.pe == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return dst
	}
	for i := 0; i < n; i++ {
		var xm float64
		for j := range m.zp {
			xm += x[i+j]
		}
		xm /= float64(len(m.zp))
		var acc, xe float64
		for j := range m.zp {
			xv := x[i+j] - xm
			acc += xv * m.zp[j]
			xe += xv * xv
		}
		if xe == 0 {
			dst[i] = 0
			continue
		}
		dst[i] = acc / math.Sqrt(xe*m.pe)
	}
	return dst
}

// NormalizedCorrelateReal computes the normalised cross-correlation
// (cosine similarity) of a zero-mean pattern against x at every offset.
// Values are in [-1, 1]; offsets where the window has zero energy yield 0.
// Repeated correlation against a fixed pattern should use a Matcher,
// which hoists the per-call pattern preparation this function performs.
func NormalizedCorrelateReal(x, pattern []float64, dst []float64) []float64 {
	return NewMatcher(pattern).Correlate(x, dst)
}

// PeakIndex returns the index of the maximum value in x, or -1 if x is
// empty.
func PeakIndex(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i, v := range x[1:] {
		if v > x[best] {
			best = i + 1
		}
	}
	return best
}

// PeakAbsIndex returns the index of the maximum |x[i]| in a complex
// buffer, or -1 if x is empty.
func PeakAbsIndex(x IQ) int {
	if len(x) == 0 {
		return -1
	}
	best, bm := 0, 0.0
	for i, v := range x {
		m := real(v)*real(v) + imag(v)*imag(v)
		if m > bm {
			bm = m
			best = i
		}
	}
	return best
}
