package sigproc

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMovingAverageConstantInput(t *testing.T) {
	m := NewMovingAverage(4)
	for i := 0; i < 10; i++ {
		got := m.Push(3)
		if !almostEq(got, 3, eps) {
			t.Fatalf("push %d: got %g, want 3", i, got)
		}
	}
}

func TestMovingAveragePartialWindow(t *testing.T) {
	m := NewMovingAverage(4)
	if got := m.Push(2); !almostEq(got, 2, eps) {
		t.Fatalf("first push = %g", got)
	}
	if got := m.Push(4); !almostEq(got, 3, eps) {
		t.Fatalf("second push = %g", got)
	}
	if got := m.Value(); !almostEq(got, 3, eps) {
		t.Fatalf("Value = %g", got)
	}
}

func TestMovingAverageSlides(t *testing.T) {
	m := NewMovingAverage(2)
	m.Push(0)
	m.Push(10)
	if got := m.Push(20); !almostEq(got, 15, eps) {
		t.Fatalf("got %g, want 15", got)
	}
}

func TestMovingAverageReset(t *testing.T) {
	m := NewMovingAverage(3)
	m.Push(5)
	m.Reset()
	if m.Value() != 0 {
		t.Fatal("Value after Reset should be 0")
	}
	if got := m.Push(7); !almostEq(got, 7, eps) {
		t.Fatalf("push after reset = %g", got)
	}
}

func TestMovingAveragePanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMovingAverage(0)
}

func TestMovingAverageWindow(t *testing.T) {
	if NewMovingAverage(7).Window() != 7 {
		t.Fatal("Window mismatch")
	}
}

// Property: after the window fills, the output equals the brute-force
// average of the last N inputs.
func TestMovingAverageMatchesBruteForce(t *testing.T) {
	f := func(vals []uint8, winRaw uint8) bool {
		win := int(winRaw%8) + 1
		if len(vals) < win {
			return true
		}
		m := NewMovingAverage(win)
		var last float64
		for _, v := range vals {
			last = m.Push(float64(v))
		}
		var sum float64
		for _, v := range vals[len(vals)-win:] {
			sum += float64(v)
		}
		return almostEq(last, sum/float64(win), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSinglePoleIIRConverges(t *testing.T) {
	f := NewSinglePoleIIR(1000, 1e6)
	var y float64
	for i := 0; i < 100000; i++ {
		y = f.Push(1)
	}
	if !almostEq(y, 1, 1e-6) {
		t.Fatalf("IIR should converge to input level, got %g", y)
	}
	f.Reset()
	if f.Value() != 0 {
		t.Fatal("Reset should clear state")
	}
}

func TestSinglePoleIIRSmooths(t *testing.T) {
	f := NewSinglePoleIIR(100, 1e6)
	// Alternate 0/2: output should settle near the mean 1 with small ripple.
	var lo, hi float64 = math.Inf(1), math.Inf(-1)
	var y float64
	for i := 0; i < 200000; i++ {
		x := float64(2 * (i % 2))
		y = f.Push(x)
		if i > 100000 {
			if y < lo {
				lo = y
			}
			if y > hi {
				hi = y
			}
		}
	}
	if hi-lo > 0.01 {
		t.Fatalf("ripple too large: [%g, %g]", lo, hi)
	}
	if math.Abs((lo+hi)/2-1) > 0.01 {
		t.Fatalf("settled mean %g, want ~1", (lo+hi)/2)
	}
}

func TestSinglePoleIIRPanics(t *testing.T) {
	for _, tc := range []struct{ fc, fs float64 }{{0, 1e6}, {1e6, 0}, {6e5, 1e6}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for fc=%g fs=%g", tc.fc, tc.fs)
				}
			}()
			NewSinglePoleIIR(tc.fc, tc.fs)
		}()
	}
}

func TestFIRIdentity(t *testing.T) {
	f := NewFIR([]float64{1})
	x := IQ{1 + 2i, 3, 5i}
	y := f.Apply(x, nil)
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("identity FIR changed sample %d: %v != %v", i, y[i], x[i])
		}
	}
}

func TestFIRDelay(t *testing.T) {
	f := NewFIR([]float64{0, 1}) // one-sample delay
	if got := f.Push(7); got != 0 {
		t.Fatalf("first output = %v, want 0", got)
	}
	if got := f.Push(0); got != 7 {
		t.Fatalf("second output = %v, want 7", got)
	}
}

func TestFIRResetAndTaps(t *testing.T) {
	f := NewFIR([]float64{0.5, 0.5})
	f.Push(10)
	f.Reset()
	if got := f.Push(0); got != 0 {
		t.Fatalf("after reset got %v, want 0", got)
	}
	if f.NumTaps() != 2 {
		t.Fatal("NumTaps mismatch")
	}
}

func TestFIRPanicsOnEmptyTaps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFIR(nil)
}

func TestLowpassTapsDCGain(t *testing.T) {
	taps := LowpassTaps(1e5, 1e6, 31)
	var sum float64
	for _, v := range taps {
		sum += v
	}
	if !almostEq(sum, 1, 1e-9) {
		t.Fatalf("DC gain = %g, want 1", sum)
	}
}

func TestLowpassAttenuatesHighFrequency(t *testing.T) {
	const fs = 1e6
	taps := LowpassTaps(5e4, fs, 63)
	f := NewFIR(taps)
	// Feed a tone at 0.4*fs (well above cutoff) and one at DC.
	n := 4096
	tone := make(IQ, n)
	for i := range tone {
		ph := 2 * math.Pi * 0.4 * float64(i)
		tone[i] = complex(math.Cos(ph), math.Sin(ph))
	}
	out := f.Apply(tone, nil)
	hiPower := out[1024:].Power()
	f.Reset()
	dc := NewIQ(n).Fill(1)
	outDC := f.Apply(dc, nil)
	dcPower := outDC[1024:].Power()
	if DB(hiPower/dcPower) > -40 {
		t.Fatalf("stopband rejection only %.1f dB", DB(hiPower/dcPower))
	}
}

func TestLowpassTapsPanics(t *testing.T) {
	for _, tc := range []struct {
		fc, fs float64
		n      int
	}{{0, 1e6, 11}, {6e5, 1e6, 11}, {1e3, 1e6, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for %+v", tc)
				}
			}()
			LowpassTaps(tc.fc, tc.fs, tc.n)
		}()
	}
}

func TestDCBlockerRemovesDC(t *testing.T) {
	d := NewDCBlocker(0.995)
	var y float64
	for i := 0; i < 100000; i++ {
		y = d.Push(5)
	}
	if math.Abs(y) > 1e-3 {
		t.Fatalf("residual DC after blocker: %g", y)
	}
	d.Reset()
	if got := d.Push(1); !almostEq(got, 1, eps) {
		t.Fatalf("first sample after reset = %g, want 1 (differentiator)", got)
	}
}

func TestDCBlockerPanics(t *testing.T) {
	for _, r := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for r=%g", r)
				}
			}()
			NewDCBlocker(r)
		}()
	}
}

// Property: FIR filtering is linear — filter(a*x) == a*filter(x).
func TestFIRLinearityProperty(t *testing.T) {
	f := func(scale int8, raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		g := complex(float64(scale)/8, 0)
		x := make(IQ, len(raw))
		for i, v := range raw {
			x[i] = complex(float64(v), 0)
		}
		taps := []float64{0.25, 0.5, 0.25}
		f1 := NewFIR(taps)
		f2 := NewFIR(taps)
		y1 := f1.Apply(x.Clone().Scale(g), nil)
		y2 := f2.Apply(x, nil)
		for i := range y1 {
			d := y1[i] - y2[i]*g
			if math.Abs(real(d))+math.Abs(imag(d)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// A reused (Reset) filter must produce exactly the output of a fresh
// one — the lifecycle contract the experiment harness relies on when
// it recycles DSP state across Monte-Carlo cells.
func TestFIRResetMatchesFresh(t *testing.T) {
	taps := LowpassTaps(0.1e6, 1e6, 15)
	x := make(IQ, 200)
	src := newTestSource(5)
	for i := range x {
		x[i] = complex(src.next(), src.next())
	}
	reused := NewFIR(taps)
	first := reused.Apply(x, nil)
	_ = first
	reused.Reset()
	got := reused.Apply(x, nil)

	fresh := NewFIR(taps)
	want := fresh.Apply(x, nil)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: reused %v != fresh %v", i, got[i], want[i])
		}
	}
}

// NewFIRShared must behave identically to NewFIR while sharing the tap
// storage across instances.
func TestFIRSharedTaps(t *testing.T) {
	taps := LowpassTaps(0.2e6, 1e6, 9)
	x := make(IQ, 64)
	for i := range x {
		x[i] = complex(float64(i%5)-2, float64(i%3))
	}
	a := NewFIR(taps)
	b := NewFIRShared(taps)
	ya := a.Apply(x, nil)
	yb := b.Apply(x, nil)
	for i := range ya {
		if ya[i] != yb[i] {
			t.Fatalf("sample %d: shared %v != copied %v", i, yb[i], ya[i])
		}
	}
	if b.NumTaps() != len(taps) {
		t.Fatalf("NumTaps = %d", b.NumTaps())
	}
}

func TestFIRSharedPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty taps")
		}
	}()
	NewFIRShared(nil)
}

// newTestSource is a tiny deterministic value generator for filter
// tests (decoupled from simrand to keep sigproc dependency-free).
type testSource struct{ state uint64 }

func newTestSource(seed uint64) *testSource { return &testSource{state: seed*2654435761 + 1} }

func (s *testSource) next() float64 {
	s.state = s.state*6364136223846793005 + 1442695040888963407
	return float64(int64(s.state>>11)) / float64(1<<52)
}
