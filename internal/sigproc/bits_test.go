package sigproc

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestBytesToBits(t *testing.T) {
	bits := BytesToBits([]byte{0xA5}, nil)
	want := []byte{1, 0, 1, 0, 0, 1, 0, 1}
	if !bytes.Equal(bits, want) {
		t.Fatalf("got %v, want %v", bits, want)
	}
}

func TestBitsToBytesDropsTail(t *testing.T) {
	bits := []byte{1, 1, 1, 1, 0, 0, 0, 0, 1, 1, 1} // 8 + 3 bits
	out := BitsToBytes(bits, nil)
	if len(out) != 1 || out[0] != 0xF0 {
		t.Fatalf("got %v, want [0xF0]", out)
	}
}

func TestBitsRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		bits := BytesToBits(data, nil)
		back := BitsToBytes(bits, nil)
		return bytes.Equal(back, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBytesToBitsAppends(t *testing.T) {
	dst := []byte{9}
	out := BytesToBits([]byte{0x80}, dst)
	if out[0] != 9 || out[1] != 1 || len(out) != 9 {
		t.Fatalf("append semantics broken: %v", out)
	}
}

func TestCountBitErrors(t *testing.T) {
	a := []byte{0, 1, 1, 0}
	b := []byte{0, 1, 0, 0}
	if got := CountBitErrors(a, b); got != 1 {
		t.Fatalf("got %d, want 1", got)
	}
	if got := CountBitErrors(a, a); got != 0 {
		t.Fatalf("identical slices: got %d errors", got)
	}
	// Length mismatch counts missing bits as errors.
	if got := CountBitErrors([]byte{1, 1, 1}, []byte{1}); got != 2 {
		t.Fatalf("length mismatch: got %d, want 2", got)
	}
	if got := CountBitErrors([]byte{1}, []byte{1, 1, 1}); got != 2 {
		t.Fatalf("length mismatch (other side): got %d, want 2", got)
	}
}

func TestPRBS7Period(t *testing.T) {
	p := NewPRBS7(1)
	seen := make(map[uint32]bool)
	// Collect the state cycle by stepping 127 times; all states distinct.
	for i := 0; i < 127; i++ {
		if seen[p.state] {
			t.Fatalf("state repeated after %d steps", i)
		}
		seen[p.state] = true
		p.NextBit()
	}
	if !seen[p.state] {
		t.Fatal("PRBS7 did not return to a seen state after full period")
	}
}

func TestPRBSZeroSeedAvoided(t *testing.T) {
	p := NewPRBS15(0)
	if p.state == 0 {
		t.Fatal("zero seed must be remapped to a nonzero state")
	}
}

func TestPRBSBalanced(t *testing.T) {
	// A maximal-length LFSR emits (2^n-1+1)/2 ones per period; over many
	// periods the ones density approaches 1/2.
	p := NewPRBS15(42)
	n := 32767
	ones := 0
	for i := 0; i < n; i++ {
		ones += int(p.NextBit())
	}
	ratio := float64(ones) / float64(n)
	if ratio < 0.49 || ratio > 0.51 {
		t.Fatalf("ones density %g, want ~0.5", ratio)
	}
}

func TestPRBSFillBits(t *testing.T) {
	p := NewPRBS31(7)
	bits := p.FillBits(nil, 100)
	if len(bits) != 100 {
		t.Fatalf("len = %d", len(bits))
	}
	for _, b := range bits {
		if b > 1 {
			t.Fatalf("bit out of range: %d", b)
		}
	}
}

func TestPRBSFillBytesDeterministic(t *testing.T) {
	a := NewPRBS31(123).FillBytes(nil, 64)
	b := NewPRBS31(123).FillBytes(nil, 64)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed must give same sequence")
	}
	c := NewPRBS31(124).FillBytes(nil, 64)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds should differ")
	}
}
