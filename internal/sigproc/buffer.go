// Package sigproc provides the digital signal processing substrate used by
// the full-duplex backscatter simulator: complex-baseband sample buffers,
// filters, correlation, FFT, tone detection and pseudo-random bit sequences.
//
// Everything operates on complex128 baseband samples. Allocation-heavy
// operations offer an in-place or destination-buffer form so the
// sample-level simulation loops can reuse buffers (decode-into-preallocated,
// in the style of gopacket's DecodingLayerParser).
package sigproc

import (
	"fmt"
	"math"
	"math/cmplx"
)

// IQ is a buffer of complex baseband samples.
type IQ []complex128

// NewIQ returns a zeroed IQ buffer of n samples.
func NewIQ(n int) IQ { return make(IQ, n) }

// Clone returns a deep copy of the buffer.
func (x IQ) Clone() IQ {
	y := make(IQ, len(x))
	copy(y, x)
	return y
}

// Power returns the average sample power, sum(|x|^2)/N.
// It returns 0 for an empty buffer.
func (x IQ) Power() float64 {
	if len(x) == 0 {
		return 0
	}
	var p float64
	for _, v := range x {
		p += real(v)*real(v) + imag(v)*imag(v)
	}
	return p / float64(len(x))
}

// Energy returns the total sample energy, sum(|x|^2).
func (x IQ) Energy() float64 {
	var e float64
	for _, v := range x {
		e += real(v)*real(v) + imag(v)*imag(v)
	}
	return e
}

// RMS returns the root-mean-square amplitude of the buffer.
func (x IQ) RMS() float64 { return math.Sqrt(x.Power()) }

// Mean returns the complex mean of the buffer (0 for an empty buffer).
func (x IQ) Mean() complex128 {
	if len(x) == 0 {
		return 0
	}
	var s complex128
	for _, v := range x {
		s += v
	}
	return s / complex(float64(len(x)), 0)
}

// Scale multiplies every sample by the scalar g in place and returns x.
func (x IQ) Scale(g complex128) IQ {
	for i := range x {
		x[i] *= g
	}
	return x
}

// ScaleReal multiplies every sample by the real gain g in place and returns x.
func (x IQ) ScaleReal(g float64) IQ {
	for i := range x {
		x[i] = complex(real(x[i])*g, imag(x[i])*g)
	}
	return x
}

// Add accumulates y into x element-wise in place and returns x.
// It panics if the lengths differ.
func (x IQ) Add(y IQ) IQ {
	if len(x) != len(y) {
		panic(fmt.Sprintf("sigproc: Add length mismatch %d != %d", len(x), len(y)))
	}
	for i := range x {
		x[i] += y[i]
	}
	return x
}

// Sub subtracts y from x element-wise in place and returns x.
// It panics if the lengths differ.
func (x IQ) Sub(y IQ) IQ {
	if len(x) != len(y) {
		panic(fmt.Sprintf("sigproc: Sub length mismatch %d != %d", len(x), len(y)))
	}
	for i := range x {
		x[i] -= y[i]
	}
	return x
}

// Mul multiplies x by y element-wise in place and returns x.
// It panics if the lengths differ.
func (x IQ) Mul(y IQ) IQ {
	if len(x) != len(y) {
		panic(fmt.Sprintf("sigproc: Mul length mismatch %d != %d", len(x), len(y)))
	}
	for i := range x {
		x[i] *= y[i]
	}
	return x
}

// Zero clears the buffer in place and returns x.
func (x IQ) Zero() IQ {
	for i := range x {
		x[i] = 0
	}
	return x
}

// Fill sets every sample to v in place and returns x.
func (x IQ) Fill(v complex128) IQ {
	for i := range x {
		x[i] = v
	}
	return x
}

// Envelope writes |x[i]| into dst and returns it. If dst is nil or too
// short a new slice is allocated. Purely real samples (a transmit
// waveform before any channel) take a branch that skips the Hypot call;
// math.Hypot(re, 0) is exactly math.Abs(re), so the result is bit
// identical either way.
func (x IQ) Envelope(dst []float64) []float64 {
	if cap(dst) < len(x) {
		dst = make([]float64, len(x))
	}
	dst = dst[:len(x)]
	for i, v := range x {
		if imag(v) == 0 {
			dst[i] = math.Abs(real(v))
		} else {
			dst[i] = cmplx.Abs(v)
		}
	}
	return dst
}

// EnvelopeSq writes |x[i]|^2 into dst and returns it. Squared envelopes
// avoid the sqrt and model a square-law (diode) detector.
func (x IQ) EnvelopeSq(dst []float64) []float64 {
	if cap(dst) < len(x) {
		dst = make([]float64, len(x))
	}
	dst = dst[:len(x)]
	for i, v := range x {
		dst[i] = real(v)*real(v) + imag(v)*imag(v)
	}
	return dst
}

// PeakAbs returns the maximum |x[i]| over the buffer (0 if empty).
func (x IQ) PeakAbs() float64 {
	var m float64
	for _, v := range x {
		a := real(v)*real(v) + imag(v)*imag(v)
		if a > m {
			m = a
		}
	}
	return math.Sqrt(m)
}

// DB converts a linear power ratio to decibels.
func DB(lin float64) float64 { return 10 * math.Log10(lin) }

// Lin converts decibels to a linear power ratio.
func Lin(db float64) float64 { return math.Pow(10, db/10) }

// DBm converts a power in watts to dBm.
func DBm(watts float64) float64 { return 10*math.Log10(watts) + 30 }

// Watts converts a power in dBm to watts.
func Watts(dbm float64) float64 { return math.Pow(10, (dbm-30)/10) }

// AmplitudeForPower returns the amplitude whose square is the given power.
func AmplitudeForPower(p float64) float64 {
	if p <= 0 {
		return 0
	}
	return math.Sqrt(p)
}

// MeanFloat returns the arithmetic mean of a real slice (0 if empty).
func MeanFloat(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the population variance of a real slice (0 if empty).
func Variance(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := MeanFloat(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(len(x))
}

// MinMax returns the minimum and maximum of a real slice.
// It returns (0, 0) for an empty slice.
func MinMax(x []float64) (lo, hi float64) {
	if len(x) == 0 {
		return 0, 0
	}
	lo, hi = x[0], x[0]
	for _, v := range x[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
