package sigproc

import (
	"fmt"
	"math"
)

// MovingAverage is a streaming boxcar filter over real samples. It is the
// workhorse of both the tag's envelope smoothing and the reader's
// integrate-and-dump feedback decoder: averaging N samples improves the
// SNR of a constant level by a factor of N against white noise.
//
// The zero value is not usable; construct with NewMovingAverage.
type MovingAverage struct {
	buf  []float64
	sum  float64
	idx  int
	full bool
}

// NewMovingAverage returns a moving-average filter over a window of n
// samples. It panics if n < 1.
func NewMovingAverage(n int) *MovingAverage {
	if n < 1 {
		panic("sigproc: moving average window must be >= 1")
	}
	return &MovingAverage{buf: make([]float64, n)}
}

// Push adds a sample and returns the current window average. Before the
// window fills, the average is over the samples seen so far.
func (m *MovingAverage) Push(v float64) float64 {
	m.sum += v - m.buf[m.idx]
	m.buf[m.idx] = v
	m.idx++
	if m.idx == len(m.buf) {
		m.idx = 0
		m.full = true
	}
	n := len(m.buf)
	if !m.full {
		n = m.idx
	}
	return m.sum / float64(n)
}

// Value returns the current average without pushing a new sample.
func (m *MovingAverage) Value() float64 {
	n := len(m.buf)
	if !m.full {
		n = m.idx
		if n == 0 {
			return 0
		}
	}
	return m.sum / float64(n)
}

// Reset clears the filter state.
func (m *MovingAverage) Reset() {
	for i := range m.buf {
		m.buf[i] = 0
	}
	m.sum = 0
	m.idx = 0
	m.full = false
}

// Window returns the configured window length.
func (m *MovingAverage) Window() int { return len(m.buf) }

// SinglePoleIIR is a first-order lowpass y[n] = a*x[n] + (1-a)*y[n-1],
// modelling an RC detector filter. The coefficient a is derived from the
// -3 dB cutoff frequency relative to the sample rate.
type SinglePoleIIR struct {
	a float64
	y float64
}

// NewSinglePoleIIR returns a single-pole lowpass with the given cutoff
// frequency in Hz at the given sample rate. It panics if cutoff or
// sampleRate are not positive or cutoff >= sampleRate/2.
func NewSinglePoleIIR(cutoffHz, sampleRate float64) *SinglePoleIIR {
	if cutoffHz <= 0 || sampleRate <= 0 {
		panic("sigproc: IIR cutoff and sample rate must be positive")
	}
	if cutoffHz >= sampleRate/2 {
		panic(fmt.Sprintf("sigproc: IIR cutoff %g >= Nyquist %g", cutoffHz, sampleRate/2))
	}
	// Standard RC mapping: a = dt / (RC + dt), RC = 1/(2*pi*fc).
	dt := 1 / sampleRate
	rc := 1 / (2 * math.Pi * cutoffHz)
	return &SinglePoleIIR{a: dt / (rc + dt)}
}

// Push filters one sample and returns the output.
func (f *SinglePoleIIR) Push(x float64) float64 {
	f.y += f.a * (x - f.y)
	return f.y
}

// Value returns the current output without pushing a new sample.
func (f *SinglePoleIIR) Value() float64 { return f.y }

// Reset clears the filter state.
func (f *SinglePoleIIR) Reset() { f.y = 0 }

// Coefficient returns the smoothing coefficient a.
func (f *SinglePoleIIR) Coefficient() float64 { return f.a }

// FIR is a finite-impulse-response filter over complex samples.
type FIR struct {
	taps  []float64
	delay IQ
	idx   int
}

// NewFIR returns a FIR filter with the given real tap coefficients.
// It panics if no taps are supplied. The taps are copied; when many
// filters share one designed tap set (e.g. a bank of identical channel
// filters), NewFIRShared avoids the per-instance copy.
func NewFIR(taps []float64) *FIR {
	if len(taps) == 0 {
		panic("sigproc: FIR needs at least one tap")
	}
	t := make([]float64, len(taps))
	copy(t, taps)
	return &FIR{taps: t, delay: make(IQ, len(taps))}
}

// NewFIRShared returns a FIR filter that aliases the given tap slice
// instead of copying it, so a bank of filters built from one designed
// tap set shares a single backing array. The caller must not mutate
// taps while any sharing filter is in use. It panics if no taps are
// supplied.
func NewFIRShared(taps []float64) *FIR {
	if len(taps) == 0 {
		panic("sigproc: FIR needs at least one tap")
	}
	return &FIR{taps: taps, delay: make(IQ, len(taps))}
}

// Push filters one sample and returns the output.
func (f *FIR) Push(x complex128) complex128 {
	f.delay[f.idx] = x
	var acc complex128
	j := f.idx
	for _, tap := range f.taps {
		acc += f.delay[j] * complex(tap, 0)
		j--
		if j < 0 {
			j = len(f.delay) - 1
		}
	}
	f.idx++
	if f.idx == len(f.delay) {
		f.idx = 0
	}
	return acc
}

// Apply filters the whole buffer into dst (allocated if nil or short) and
// returns dst. The filter state carries across calls.
func (f *FIR) Apply(x IQ, dst IQ) IQ {
	if cap(dst) < len(x) {
		dst = make(IQ, len(x))
	}
	dst = dst[:len(x)]
	for i, v := range x {
		dst[i] = f.Push(v)
	}
	return dst
}

// Reset clears the filter delay line.
func (f *FIR) Reset() {
	f.delay.Zero()
	f.idx = 0
}

// NumTaps returns the filter order plus one.
func (f *FIR) NumTaps() int { return len(f.taps) }

// LowpassTaps designs a windowed-sinc lowpass FIR with the given cutoff
// (Hz), sample rate (Hz) and tap count, using a Hamming window. The taps
// are normalised to unit DC gain. It panics on invalid arguments.
func LowpassTaps(cutoffHz, sampleRate float64, numTaps int) []float64 {
	if numTaps < 1 {
		panic("sigproc: lowpass needs at least one tap")
	}
	if cutoffHz <= 0 || cutoffHz >= sampleRate/2 {
		panic(fmt.Sprintf("sigproc: lowpass cutoff %g outside (0, %g)", cutoffHz, sampleRate/2))
	}
	fc := cutoffHz / sampleRate
	taps := make([]float64, numTaps)
	mid := float64(numTaps-1) / 2
	var sum float64
	for i := range taps {
		t := float64(i) - mid
		var s float64
		if t == 0 {
			s = 2 * fc
		} else {
			s = math.Sin(2*math.Pi*fc*t) / (math.Pi * t)
		}
		// Hamming window.
		w := 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(numTaps-1))
		if numTaps == 1 {
			w = 1
		}
		taps[i] = s * w
		sum += taps[i]
	}
	for i := range taps {
		taps[i] /= sum
	}
	return taps
}

// DCBlocker removes the DC component with a leaky differentiator:
// y[n] = x[n] - x[n-1] + r*y[n-1].
type DCBlocker struct {
	r     float64
	prevX float64
	prevY float64
}

// NewDCBlocker returns a DC blocker with pole radius r in (0, 1);
// values near 1 give a narrower notch. It panics if r is out of range.
func NewDCBlocker(r float64) *DCBlocker {
	if r <= 0 || r >= 1 {
		panic("sigproc: DC blocker pole must be in (0, 1)")
	}
	return &DCBlocker{r: r}
}

// Push filters one real sample.
func (d *DCBlocker) Push(x float64) float64 {
	y := x - d.prevX + d.r*d.prevY
	d.prevX = x
	d.prevY = y
	return y
}

// Reset clears the filter state.
func (d *DCBlocker) Reset() { d.prevX, d.prevY = 0, 0 }
