package sigproc

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT computes the in-place radix-2 decimation-in-time FFT of x.
// The length of x must be a power of two; FFT panics otherwise.
func FFT(x IQ) {
	fftDir(x, false)
}

// IFFT computes the in-place inverse FFT of x (including the 1/N scale).
// The length of x must be a power of two; IFFT panics otherwise.
func IFFT(x IQ) {
	fftDir(x, true)
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
}

func fftDir(x IQ, inverse bool) {
	n := len(x)
	if n == 0 {
		return
	}
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("sigproc: FFT length %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	if n == 1 {
		return
	}
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := sign * 2 * math.Pi / float64(size)
		wstep := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wstep
			}
		}
	}
}

// NextPow2 returns the smallest power of two >= n (and at least 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << uint(bits.Len(uint(n-1)))
}

// PowerSpectrum returns the power spectrum |FFT(x)|^2 / N of the buffer,
// zero-padding to the next power of two. The input is not modified.
// Repeated spectra should use PowerSpectrumInto to reuse the FFT
// scratch and destination.
func PowerSpectrum(x IQ) []float64 {
	ps, _ := PowerSpectrumInto(x, nil, nil)
	return ps
}

// PowerSpectrumInto computes the power spectrum |FFT(x)|^2 / N of the
// buffer, zero-padding to the next power of two, using work as the
// in-place FFT scratch and dst as the destination (either is allocated
// when nil or short). It returns the spectrum and the (possibly grown)
// scratch so callers can reuse both across calls. The input is not
// modified.
func PowerSpectrumInto(x IQ, work IQ, dst []float64) ([]float64, IQ) {
	n := NextPow2(len(x))
	if cap(work) < n {
		work = make(IQ, n)
	}
	work = work[:n]
	copy(work, x)
	for i := len(x); i < n; i++ {
		work[i] = 0
	}
	FFT(work)
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	scale := 1 / float64(n)
	for i, v := range work {
		dst[i] = (real(v)*real(v) + imag(v)*imag(v)) * scale
	}
	return dst, work
}

// Goertzel computes the power of x at the single DFT bin closest to
// freqHz for the given sample rate. It is O(N) and avoids the full FFT
// when only one tone matters (e.g. detecting a backscatter subcarrier).
func Goertzel(x IQ, freqHz, sampleRate float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	k := math.Round(freqHz / sampleRate * float64(n))
	w := 2 * math.Pi * k / float64(n)
	coeff := complex(2*math.Cos(w), 0)
	var s1, s2 complex128
	for _, v := range x {
		s0 := v + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	// Full complex bin value (valid for complex input, unlike the classic
	// real-signal magnitude shortcut): X[k] = s1 - e^{-jw} * s2.
	xk := s1 - cmplx.Exp(complex(0, -w))*s2
	return real(xk*cmplx.Conj(xk)) / float64(n*n)
}
