package sigproc

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestFractionalDelayInteger(t *testing.T) {
	x := IQ{1, 2, 3, 4}
	y := FractionalDelay(x, 2, nil)
	want := IQ{0, 0, 1, 2}
	for i := range want {
		if cmplx.Abs(y[i]-want[i]) > 1e-12 {
			t.Fatalf("y[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestFractionalDelayHalfSample(t *testing.T) {
	x := IQ{0, 2, 4, 6}
	y := FractionalDelay(x, 0.5, nil)
	// Linear interpolation: y[i] = (x[i-1] + x[i]) / 2 for interior points.
	if cmplx.Abs(y[1]-1) > 1e-12 || cmplx.Abs(y[2]-3) > 1e-12 {
		t.Fatalf("half-sample delay wrong: %v", y)
	}
}

func TestFractionalDelayZero(t *testing.T) {
	x := IQ{1 + 1i, 2, 3}
	y := FractionalDelay(x, 0, nil)
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("zero delay must be identity: %v", y)
		}
	}
}

func TestFractionalDelayNegativeAdvances(t *testing.T) {
	x := IQ{1, 2, 3, 4}
	y := FractionalDelay(x, -1, nil)
	if y[0] != 2 || y[2] != 4 {
		t.Fatalf("advance wrong: %v", y)
	}
	if y[3] != 0 {
		t.Fatalf("samples beyond end should be 0, got %v", y[3])
	}
}

func TestResampleIdentity(t *testing.T) {
	x := IQ{1, 2, 3, 4}
	y := Resample(x, 1e6, 1e6)
	if len(y) != len(x) {
		t.Fatalf("len = %d", len(y))
	}
	for i := range x {
		if cmplx.Abs(y[i]-x[i]) > 1e-12 {
			t.Fatalf("identity resample changed data: %v", y)
		}
	}
}

func TestResampleDoubles(t *testing.T) {
	x := IQ{0, 2}
	y := Resample(x, 1, 2)
	if len(y) != 4 {
		t.Fatalf("len = %d, want 4", len(y))
	}
	if cmplx.Abs(y[1]-1) > 1e-12 {
		t.Fatalf("interpolated midpoint = %v, want 1", y[1])
	}
}

func TestResampleToneFrequencyPreserved(t *testing.T) {
	// A tone at f stays at f after resampling 1 MHz -> 2 MHz.
	const n = 512
	x := NewIQ(n)
	for i := range x {
		ph := 2 * math.Pi * 32 * float64(i) / n
		x[i] = cmplx.Exp(complex(0, ph))
	}
	y := Resample(x, 1e6, 2e6)
	ps := PowerSpectrum(y[:1024])
	// Original bin 32 of 512 at 1 MHz = 62.5 kHz -> bin 32 of 1024 at 2 MHz.
	if got := PeakIndex(ps); got != 32 {
		t.Fatalf("tone moved to bin %d, want 32", got)
	}
}

func TestResamplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Resample(NewIQ(4), 0, 1)
}

func TestDecimate(t *testing.T) {
	x := IQ{0, 1, 2, 3, 4, 5, 6}
	y := Decimate(x, 3, nil)
	want := IQ{0, 3, 6}
	if len(y) != len(want) {
		t.Fatalf("len = %d", len(y))
	}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("y = %v, want %v", y, want)
		}
	}
}

func TestDecimatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Decimate(NewIQ(4), 0, nil)
}

func TestUpsampleZeroOrderHold(t *testing.T) {
	x := IQ{1, 2}
	y := Upsample(x, 3, nil)
	want := IQ{1, 1, 1, 2, 2, 2}
	if len(y) != len(want) {
		t.Fatalf("len = %d", len(y))
	}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("y = %v, want %v", y, want)
		}
	}
}

func TestUpsampleDecimateRoundTrip(t *testing.T) {
	x := IQ{1 + 1i, 2, 3 - 1i, 4}
	y := Decimate(Upsample(x, 4, nil), 4, nil)
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("round trip mismatch: %v vs %v", y, x)
		}
	}
}

func TestUpsamplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Upsample(NewIQ(4), -1, nil)
}

// ResampleInto must match Resample and reuse the destination,
// including zeroing stale contents for empty input.
func TestResampleIntoMatchesAndReuses(t *testing.T) {
	x := make(IQ, 50)
	for i := range x {
		x[i] = complex(float64(i), -float64(i))
	}
	want := Resample(x, 1e6, 1.7e6)
	dst := make(IQ, 0, len(want)+8)
	got := ResampleInto(x, 1e6, 1.7e6, dst)
	if len(got) != len(want) {
		t.Fatalf("length %d != %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("sample %d: %v != %v", i, got[i], want[i])
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		got = ResampleInto(x, 1e6, 1.7e6, got)
	})
	if allocs != 0 {
		t.Fatalf("ResampleInto with reused dst allocates %.1f objects", allocs)
	}
	// Empty input into a dirty buffer must come back zeroed, exactly
	// like the allocating form.
	dirty := IQ{1 + 2i, 3 + 4i}
	if out := ResampleInto(nil, 1, 1, dirty); len(out) != 0 {
		t.Fatalf("empty input produced %d samples", len(out))
	}
}
