package sigproc

// Bit utilities and pseudo-random binary sequences. Frames travel through
// the PHY as []byte; line codes and modulators work on individual bits in
// MSB-first order, matching the on-air order of most backscatter links.

// BytesToBits expands data into one byte per bit (0 or 1), MSB first,
// appending to dst and returning it.
func BytesToBits(data []byte, dst []byte) []byte {
	for _, b := range data {
		for i := 7; i >= 0; i-- {
			dst = append(dst, (b>>uint(i))&1)
		}
	}
	return dst
}

// BitsToBytes packs a bit-per-byte slice (MSB first) into bytes, appending
// to dst and returning it. Trailing bits that do not fill a byte are
// dropped.
func BitsToBytes(bits []byte, dst []byte) []byte {
	for len(bits) >= 8 {
		var b byte
		for i := 0; i < 8; i++ {
			b = b<<1 | (bits[i] & 1)
		}
		dst = append(dst, b)
		bits = bits[8:]
	}
	return dst
}

// CountBitErrors returns the number of positions where a and b differ,
// comparing up to the shorter length, plus the length difference (missing
// bits count as errors).
func CountBitErrors(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	errs := 0
	for i := 0; i < n; i++ {
		if a[i]&1 != b[i]&1 {
			errs++
		}
	}
	if len(a) > n {
		errs += len(a) - n
	}
	if len(b) > n {
		errs += len(b) - n
	}
	return errs
}

// PRBS is a linear-feedback shift register pseudo-random bit generator.
// The zero value is not usable; construct with NewPRBS7, NewPRBS15 or
// NewPRBS31.
type PRBS struct {
	state uint32
	taps  uint32
	bits  uint
}

// NewPRBS7 returns a PRBS-7 generator (x^7 + x^6 + 1), period 127.
func NewPRBS7(seed uint32) *PRBS { return newPRBS(seed, 7, 1<<6|1<<5) }

// NewPRBS15 returns a PRBS-15 generator (x^15 + x^14 + 1), period 32767.
func NewPRBS15(seed uint32) *PRBS { return newPRBS(seed, 15, 1<<14|1<<13) }

// NewPRBS31 returns a PRBS-31 generator (x^31 + x^28 + 1).
func NewPRBS31(seed uint32) *PRBS { return newPRBS(seed, 31, 1<<30|1<<27) }

func newPRBS(seed uint32, bits uint, taps uint32) *PRBS {
	mask := uint32(1)<<bits - 1
	s := seed & mask
	if s == 0 {
		s = 1 // all-zero state is the LFSR fixed point; avoid it
	}
	return &PRBS{state: s, taps: taps, bits: bits}
}

// NextBit returns the next pseudo-random bit (0 or 1).
func (p *PRBS) NextBit() byte {
	fb := popcountParity(p.state & p.taps)
	p.state = (p.state<<1 | uint32(fb)) & (uint32(1)<<p.bits - 1)
	return fb
}

// FillBits writes n pseudo-random bits (one per byte) appending to dst.
func (p *PRBS) FillBits(dst []byte, n int) []byte {
	for i := 0; i < n; i++ {
		dst = append(dst, p.NextBit())
	}
	return dst
}

// FillBytes writes n pseudo-random bytes appending to dst.
func (p *PRBS) FillBytes(dst []byte, n int) []byte {
	for i := 0; i < n; i++ {
		var b byte
		for j := 0; j < 8; j++ {
			b = b<<1 | p.NextBit()
		}
		dst = append(dst, b)
	}
	return dst
}

func popcountParity(x uint32) byte {
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return byte(x & 1)
}
