package sigproc

import (
	"math"
	"testing"
)

func TestCrossCorrelateFindsPattern(t *testing.T) {
	pattern := IQ{1, -1, 1}
	x := make(IQ, 16)
	copy(x[7:], pattern)
	c := CrossCorrelate(x, pattern, nil)
	if got := PeakAbsIndex(c); got != 7 {
		t.Fatalf("peak at %d, want 7", got)
	}
}

func TestCrossCorrelateLengths(t *testing.T) {
	if got := len(CrossCorrelate(NewIQ(5), NewIQ(3), nil)); got != 3 {
		t.Fatalf("len = %d, want 3", got)
	}
	if got := len(CrossCorrelate(NewIQ(2), NewIQ(3), nil)); got != 0 {
		t.Fatalf("pattern longer than signal: len = %d, want 0", got)
	}
}

func TestCrossCorrelateConjugates(t *testing.T) {
	// Correlating a complex tone against itself should give a real peak
	// equal to the pattern energy.
	pattern := IQ{1i, 1i, 1i}
	c := CrossCorrelate(pattern, pattern, nil)
	if math.Abs(real(c[0])-3) > 1e-12 || math.Abs(imag(c[0])) > 1e-12 {
		t.Fatalf("self-correlation = %v, want 3", c[0])
	}
}

func TestCorrelateRealFindsPattern(t *testing.T) {
	pattern := []float64{1, 0, 1}
	x := make([]float64, 12)
	copy(x[4:], pattern)
	c := CorrelateReal(x, pattern, nil)
	if got := PeakIndex(c); got != 4 {
		t.Fatalf("peak at %d, want 4", got)
	}
}

func TestNormalizedCorrelateBounds(t *testing.T) {
	pattern := []float64{1, -1, 1, -1}
	x := []float64{0, 1, -1, 1, -1, 0, 0, 5, 5, 5}
	c := NormalizedCorrelateReal(x, pattern, nil)
	for i, v := range c {
		if v > 1+1e-9 || v < -1-1e-9 {
			t.Fatalf("correlation %d out of [-1,1]: %g", i, v)
		}
	}
	if got := PeakIndex(c); got != 1 {
		t.Fatalf("peak at %d, want 1", got)
	}
	if c[1] < 0.999 {
		t.Fatalf("exact match should correlate ~1, got %g", c[1])
	}
}

func TestNormalizedCorrelateScaleInvariant(t *testing.T) {
	pattern := []float64{1, 2, 3, 2, 1}
	x := make([]float64, 20)
	for i, p := range pattern {
		x[6+i] = p * 100 // heavily scaled copy
	}
	c := NormalizedCorrelateReal(x, pattern, nil)
	if got := PeakIndex(c); got != 6 {
		t.Fatalf("peak at %d, want 6", got)
	}
	if c[6] < 0.999 {
		t.Fatalf("scaled match should still correlate ~1, got %g", c[6])
	}
}

func TestNormalizedCorrelateZeroEnergy(t *testing.T) {
	// Constant pattern has zero variance after mean removal: define as 0.
	c := NormalizedCorrelateReal([]float64{1, 2, 3}, []float64{5, 5}, nil)
	for _, v := range c {
		if v != 0 {
			t.Fatalf("zero-energy pattern should give 0, got %g", v)
		}
	}
}

func TestPeakIndexEmpty(t *testing.T) {
	if PeakIndex(nil) != -1 {
		t.Fatal("empty PeakIndex should be -1")
	}
	if PeakAbsIndex(nil) != -1 {
		t.Fatal("empty PeakAbsIndex should be -1")
	}
}

// A Matcher must reproduce NormalizedCorrelateReal exactly — it is the
// hoisted-precompute form the preamble detector runs per frame.
func TestMatcherMatchesNormalizedCorrelate(t *testing.T) {
	src := []float64{0.4, 1.2, -0.7, 0.9, 0.1, 2.2, -1.5, 0.6, 0.0, 1.1, -0.3, 0.8}
	for _, pat := range [][]float64{
		{1, 0, 1},
		{2, 2, 2}, // zero-energy after mean removal
		{0.5, -1.5, 0.25, 1},
	} {
		want := NormalizedCorrelateReal(src, pat, nil)
		m := NewMatcher(pat)
		got := m.Correlate(src, nil)
		if len(got) != len(want) {
			t.Fatalf("length %d != %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("pattern %v offset %d: matcher %v != one-shot %v", pat, i, got[i], want[i])
			}
		}
		// Reusing the matcher and its dst must not change results.
		dst := got[:0]
		again := m.Correlate(src, dst)
		for i := range again {
			if again[i] != want[i] {
				t.Fatalf("reused matcher diverged at %d", i)
			}
		}
	}
}

func TestMatcherCopiesPattern(t *testing.T) {
	pat := []float64{1, 2, 3}
	m := NewMatcher(pat)
	want := m.Correlate([]float64{1, 2, 3, 4, 5}, nil)
	pat[0] = 99 // mutate the caller's slice
	got := m.Correlate([]float64{1, 2, 3, 4, 5}, nil)
	for i := range got {
		if got[i] != want[i] {
			t.Fatal("matcher must not alias the caller's pattern")
		}
	}
	if m.Len() != 3 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestMatcherAllocFree(t *testing.T) {
	m := NewMatcher([]float64{1, 0, 1, 0, 1})
	x := make([]float64, 256)
	for i := range x {
		x[i] = float64(i % 7)
	}
	dst := m.Correlate(x, nil)
	allocs := testing.AllocsPerRun(20, func() {
		dst = m.Correlate(x, dst[:0])
	})
	if allocs != 0 {
		t.Fatalf("Matcher.Correlate with reused dst allocates %.1f objects", allocs)
	}
}
