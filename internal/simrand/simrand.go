// Package simrand provides the deterministic random sources and
// distributions used across the simulator: Gaussian noise, Rayleigh and
// Rician fading draws, exponential/Poisson event processes, and a
// Gilbert-Elliott two-state burst-loss channel.
//
// Every experiment takes an explicit seed so results reproduce exactly.
// The underlying generator is PCG from math/rand/v2.
package simrand

import (
	"encoding/binary"
	"math"
	"math/rand/v2"
)

// Source is a deterministic random source with the distribution helpers
// the simulator needs. It is not safe for concurrent use; give each
// goroutine its own Source (use Split).
type Source struct {
	rng *rand.Rand
	pcg *rand.PCG
	// stateBuf backs State's marshal call so capturing stream state
	// stays allocation-free on hot paths.
	stateBuf [20]byte
}

// New returns a Source seeded deterministically from seed.
func New(seed uint64) *Source {
	pcg := rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)
	return &Source{rng: rand.New(pcg), pcg: pcg}
}

// Mix64 is the splitmix64 finalizer: a bijective avalanche over uint64,
// shared by every sub-seed derivation in the simulator (the bench
// harness's per-cell seeds, netsim's per-tag fade seeds) so they all
// decorrelate seeds with exactly the same mix.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Reseed resets the source to the state New(seed) would produce, without
// allocating. Hot loops that need a fresh deterministic stream per item
// (e.g. one per frame) can keep one Source and reseed it.
func (s *Source) Reseed(seed uint64) {
	s.pcg.Seed(seed, seed^0x9e3779b97f4a7c15)
}

// Split derives an independent child source. The child's stream is a
// deterministic function of the parent state, so seeding the parent fixes
// the whole tree.
func (s *Source) Split() *Source {
	pcg := rand.NewPCG(s.rng.Uint64(), s.rng.Uint64())
	return &Source{rng: rand.New(pcg), pcg: pcg}
}

// State captures the source's exact PCG state as two words, so engines
// that own millions of streams can store each stream inline in flat
// slices and load it into one scratch Source around use (SetState).
// Allocation-free.
func (s *Source) State() (hi, lo uint64) {
	// The PCG binary encoding is "pcg:" followed by the two state words
	// big-endian; there is no exported accessor for the words themselves.
	b, err := s.pcg.AppendBinary(s.stateBuf[:0])
	if err != nil || len(b) != 20 {
		panic("simrand: unexpected PCG state encoding")
	}
	return binary.BigEndian.Uint64(b[4:12]), binary.BigEndian.Uint64(b[12:20])
}

// SetState restores a state captured by State: the source continues the
// saved stream exactly. PCG.Seed stores its arguments as the raw state
// words, so a (hi, lo) pair also reproduces Split's NewPCG(a, b) child.
func (s *Source) SetState(hi, lo uint64) {
	s.pcg.Seed(hi, lo)
}

// f64 returns a uniform value in [0, 1), drawing from the PCG exactly
// as rand.Rand.Float64 does (there are exactly 1<<53 float64s in
// [0, 1)) but without the rand.Rand source indirection, so it inlines
// into the hot noise loops.
func (s *Source) f64() float64 {
	return float64(s.pcg.Uint64()<<11>>11) / (1 << 53)
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 { return s.f64() }

// Uint64 returns a uniform 64-bit value.
func (s *Source) Uint64() uint64 { return s.pcg.Uint64() }

// IntN returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) IntN(n int) int { return s.rng.IntN(n) }

// Bit returns 0 or 1 with equal probability.
func (s *Source) Bit() byte { return byte(s.pcg.Uint64() & 1) }

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.f64() < p }

// Normal returns a standard normal draw (ziggurat, stream-identical to
// rand.Rand.NormFloat64; see ziggurat.go).
func (s *Source) Normal() float64 { return s.norm() }

// Gaussian returns a normal draw with the given mean and standard
// deviation.
func (s *Source) Gaussian(mean, stddev float64) float64 {
	return mean + stddev*s.norm()
}

// ComplexNormal returns a circularly-symmetric complex Gaussian draw with
// the given total variance (power). Real and imaginary parts each carry
// half the variance, which is the standard baseband AWGN model.
func (s *Source) ComplexNormal(variance float64) complex128 {
	sigma := math.Sqrt(variance / 2)
	return complex(sigma*s.norm(), sigma*s.norm())
}

// Rayleigh returns a Rayleigh-distributed amplitude whose mean square is
// meanSquare, i.e. the envelope of a complex Gaussian with that power.
func (s *Source) Rayleigh(meanSquare float64) float64 {
	// |h| where h ~ CN(0, meanSquare).
	h := s.ComplexNormal(meanSquare)
	return math.Hypot(real(h), imag(h))
}

// RayleighCoeff returns a complex channel coefficient h ~ CN(0, power):
// Rayleigh-fading amplitude with uniform phase and E[|h|^2] = power.
func (s *Source) RayleighCoeff(power float64) complex128 {
	return s.ComplexNormal(power)
}

// RicianCoeff returns a complex channel coefficient with Rician factor K
// (ratio of line-of-sight to scattered power) and E[|h|^2] = power.
// K = 0 degenerates to Rayleigh; large K approaches a pure LOS path.
func (s *Source) RicianCoeff(power, k float64) complex128 {
	if k < 0 {
		k = 0
	}
	los := math.Sqrt(power * k / (k + 1))
	scatter := s.ComplexNormal(power / (k + 1))
	phase := 2 * math.Pi * s.f64()
	return complex(los*math.Cos(phase), los*math.Sin(phase)) + scatter
}

// Exp returns an exponential draw with the given mean. It panics if mean
// is not positive.
func (s *Source) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("simrand: exponential mean must be positive")
	}
	return s.rng.ExpFloat64() * mean
}

// Poisson returns a Poisson draw with the given mean (Knuth's algorithm
// for small means, normal approximation above 30).
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		n := int(math.Round(s.Gaussian(mean, math.Sqrt(mean))))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.f64()
		if p <= l {
			return k
		}
		k++
	}
}

// Perm fills dst with a random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	return s.rng.Perm(n)
}

// FillNoise adds circularly-symmetric complex Gaussian noise of the given
// power (variance) to every sample of x in place.
func (s *Source) FillNoise(x []complex128, power float64) {
	if power <= 0 {
		return
	}
	sigma := math.Sqrt(power / 2)
	pcg := s.pcg
	for i := range x {
		// Two manually inlined ziggurat fast paths (see ziggurat.go);
		// the rejection tail falls back to normSlow. Stream-identical
		// to calling Normal twice, verified by TestFillNoiseMatchesNorm.
		u := pcg.Uint64()
		j := int32(u)
		k := u >> 32 & 0x7F
		re := float64(j) * float64(wn[k])
		if absInt32(j) >= kn[k] {
			re = s.normSlow(j, k, re)
		}
		u = pcg.Uint64()
		j = int32(u)
		k = u >> 32 & 0x7F
		im := float64(j) * float64(wn[k])
		if absInt32(j) >= kn[k] {
			im = s.normSlow(j, k, im)
		}
		x[i] += complex(sigma*re, sigma*im)
	}
}

// GilbertElliott is a two-state Markov burst-loss channel. In the Good
// state bits/chunks are lost with probability LossGood, in the Bad state
// with LossBad; the state flips with the configured transition
// probabilities per step. It reproduces bursty interference loss, the
// regime where instantaneous feedback pays off most.
type GilbertElliott struct {
	PGoodToBad float64 // transition probability Good -> Bad per step
	PBadToGood float64 // transition probability Bad -> Good per step
	LossGood   float64 // loss probability while Good
	LossBad    float64 // loss probability while Bad

	bad bool
	src *Source
}

// NewGilbertElliott returns a Gilbert-Elliott channel starting in the
// Good state, driven by its own child of src.
func NewGilbertElliott(src *Source, pGB, pBG, lossGood, lossBad float64) *GilbertElliott {
	return &GilbertElliott{
		PGoodToBad: pGB, PBadToGood: pBG,
		LossGood: lossGood, LossBad: lossBad,
		src: src.Split(),
	}
}

// Step advances the Markov state one step and reports whether the current
// transmission unit is lost.
func (g *GilbertElliott) Step() bool {
	if g.bad {
		if g.src.Bool(g.PBadToGood) {
			g.bad = false
		}
	} else {
		if g.src.Bool(g.PGoodToBad) {
			g.bad = true
		}
	}
	loss := g.LossGood
	if g.bad {
		loss = g.LossBad
	}
	return g.src.Bool(loss)
}

// Bad reports whether the channel is currently in the Bad state.
func (g *GilbertElliott) Bad() bool { return g.bad }

// SteadyStateLoss returns the long-run average loss probability implied by
// the configured transition matrix.
func (g *GilbertElliott) SteadyStateLoss() float64 {
	denom := g.PGoodToBad + g.PBadToGood
	if denom == 0 {
		return g.LossGood
	}
	pBad := g.PGoodToBad / denom
	return (1-pBad)*g.LossGood + pBad*g.LossBad
}
