package simrand

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestDeterministicSameSeed(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestSplitIndependentButDeterministic(t *testing.T) {
	a1 := New(7)
	a2 := New(7)
	c1 := a1.Split()
	c2 := a2.Split()
	for i := 0; i < 50; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("Split must be deterministic given the parent seed")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
	}
}

func TestGaussianMoments(t *testing.T) {
	s := New(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Gaussian(2, 3)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-2) > 0.05 {
		t.Fatalf("mean = %g, want 2", mean)
	}
	if math.Abs(variance-9) > 0.3 {
		t.Fatalf("variance = %g, want 9", variance)
	}
}

func TestComplexNormalPower(t *testing.T) {
	s := New(13)
	const n = 200000
	const want = 4.0
	var p float64
	for i := 0; i < n; i++ {
		v := s.ComplexNormal(want)
		p += real(v)*real(v) + imag(v)*imag(v)
	}
	p /= n
	if math.Abs(p-want) > 0.1 {
		t.Fatalf("power = %g, want %g", p, want)
	}
}

func TestRayleighMeanSquare(t *testing.T) {
	s := New(17)
	const n = 200000
	const ms = 2.5
	var sum float64
	for i := 0; i < n; i++ {
		r := s.Rayleigh(ms)
		if r < 0 {
			t.Fatal("Rayleigh draw must be nonnegative")
		}
		sum += r * r
	}
	if got := sum / n; math.Abs(got-ms) > 0.1 {
		t.Fatalf("mean square = %g, want %g", got, ms)
	}
}

func TestRicianKZeroIsRayleighLike(t *testing.T) {
	s := New(19)
	const n = 100000
	var p float64
	for i := 0; i < n; i++ {
		h := s.RicianCoeff(1, 0)
		p += real(h)*real(h) + imag(h)*imag(h)
	}
	if got := p / n; math.Abs(got-1) > 0.05 {
		t.Fatalf("K=0 Rician power = %g, want 1", got)
	}
}

func TestRicianLargeKConcentrates(t *testing.T) {
	s := New(23)
	const n = 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		h := s.RicianCoeff(1, 100)
		a := math.Hypot(real(h), imag(h))
		sum += a
		sumSq += a * a
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance > 0.02 {
		t.Fatalf("K=100 envelope variance = %g, want tiny", variance)
	}
	if math.Abs(mean-1) > 0.05 {
		t.Fatalf("K=100 envelope mean = %g, want ~1", mean)
	}
}

func TestRicianNegativeKClamped(t *testing.T) {
	s := New(27)
	h := s.RicianCoeff(1, -5)
	if math.IsNaN(real(h)) || math.IsNaN(imag(h)) {
		t.Fatal("negative K must be clamped, not NaN")
	}
}

func TestExpMean(t *testing.T) {
	s := New(29)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exp(5)
	}
	if got := sum / n; math.Abs(got-5) > 0.1 {
		t.Fatalf("mean = %g, want 5", got)
	}
}

func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Exp(0)
}

func TestPoissonMean(t *testing.T) {
	s := New(31)
	for _, mean := range []float64{0.5, 3, 50} {
		const n = 100000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(s.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Fatalf("Poisson(%g) mean = %g", mean, got)
		}
	}
	if s.Poisson(0) != 0 || s.Poisson(-1) != 0 {
		t.Fatal("non-positive mean should give 0")
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(37)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) rate = %g", got)
	}
}

func TestBitBalanced(t *testing.T) {
	s := New(41)
	ones := 0
	const n = 100000
	for i := 0; i < n; i++ {
		b := s.Bit()
		if b > 1 {
			t.Fatalf("Bit returned %d", b)
		}
		ones += int(b)
	}
	ratio := float64(ones) / n
	if ratio < 0.48 || ratio > 0.52 {
		t.Fatalf("ones ratio = %g", ratio)
	}
}

func TestFillNoisePower(t *testing.T) {
	s := New(43)
	x := make([]complex128, 100000)
	s.FillNoise(x, 0.25)
	var p float64
	for _, v := range x {
		p += real(v)*real(v) + imag(v)*imag(v)
	}
	p /= float64(len(x))
	if math.Abs(p-0.25) > 0.01 {
		t.Fatalf("noise power = %g, want 0.25", p)
	}
}

func TestFillNoiseZeroPowerNoop(t *testing.T) {
	s := New(47)
	x := []complex128{1, 2}
	s.FillNoise(x, 0)
	if x[0] != 1 || x[1] != 2 {
		t.Fatal("zero-power noise must not modify the buffer")
	}
}

func TestPerm(t *testing.T) {
	s := New(51)
	p := s.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestGilbertElliottSteadyState(t *testing.T) {
	src := New(53)
	g := NewGilbertElliott(src, 0.01, 0.1, 0.001, 0.5)
	const n = 2000000
	losses := 0
	for i := 0; i < n; i++ {
		if g.Step() {
			losses++
		}
	}
	got := float64(losses) / n
	want := g.SteadyStateLoss()
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("empirical loss %g, analytic %g", got, want)
	}
}

func TestGilbertElliottBursty(t *testing.T) {
	// With strong state persistence, losses must cluster: the probability
	// of a loss immediately following a loss should far exceed the
	// marginal loss rate.
	src := New(59)
	g := NewGilbertElliott(src, 0.005, 0.05, 0, 0.9)
	const n = 500000
	losses, pairs, prevLoss := 0, 0, false
	for i := 0; i < n; i++ {
		l := g.Step()
		if l {
			losses++
			if prevLoss {
				pairs++
			}
		}
		prevLoss = l
	}
	marginal := float64(losses) / n
	conditional := float64(pairs) / float64(losses)
	if conditional < 2*marginal {
		t.Fatalf("losses not bursty: P(loss|loss)=%g vs marginal %g", conditional, marginal)
	}
}

func TestGilbertElliottDegenerate(t *testing.T) {
	g := &GilbertElliott{LossGood: 0.2}
	if got := g.SteadyStateLoss(); got != 0.2 {
		t.Fatalf("degenerate steady state = %g, want 0.2", got)
	}
}

func TestGilbertElliottBadAccessor(t *testing.T) {
	src := New(61)
	g := NewGilbertElliott(src, 1, 0, 0, 1) // deterministically jumps to Bad
	g.Step()
	if !g.Bad() {
		t.Fatal("channel should be in Bad state after forced transition")
	}
}

// The direct-PCG fast paths (norm, f64, Uint64, Bit) must consume and
// produce the stream exactly as the rand.Rand wrappers they replace, or
// every seeded experiment output would shift. Interleave the draw kinds
// against a reference rand.Rand over the same PCG.
func TestFastPathsMatchMathRand(t *testing.T) {
	for _, seed := range []uint64{0, 1, 7, 0xdeadbeef} {
		src := New(seed)
		ref := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
		for i := 0; i < 20000; i++ {
			switch i % 4 {
			case 0:
				if got, want := src.Normal(), ref.NormFloat64(); got != want {
					t.Fatalf("seed %d draw %d: Normal = %v, want %v", seed, i, got, want)
				}
			case 1:
				if got, want := src.Float64(), ref.Float64(); got != want {
					t.Fatalf("seed %d draw %d: Float64 = %v, want %v", seed, i, got, want)
				}
			case 2:
				if got, want := src.Uint64(), ref.Uint64(); got != want {
					t.Fatalf("seed %d draw %d: Uint64 = %v, want %v", seed, i, got, want)
				}
			case 3:
				if got, want := src.Bit(), byte(ref.Uint64()&1); got != want {
					t.Fatalf("seed %d draw %d: Bit = %v, want %v", seed, i, got, want)
				}
			}
		}
	}
}

// FillNoise's manually inlined ziggurat must stay draw-for-draw
// identical to two Normal calls per sample.
func TestFillNoiseMatchesNorm(t *testing.T) {
	a, b := New(99), New(99)
	const n = 4096
	xa := make([]complex128, n)
	xb := make([]complex128, n)
	a.FillNoise(xa, 1e-6)
	sigma := math.Sqrt(1e-6 / 2)
	for i := range xb {
		xb[i] += complex(sigma*b.Normal(), sigma*b.Normal())
	}
	for i := range xa {
		if xa[i] != xb[i] {
			t.Fatalf("sample %d: FillNoise %v != reference %v", i, xa[i], xb[i])
		}
	}
	// And the two sources must remain in lockstep afterwards.
	if a.Uint64() != b.Uint64() {
		t.Fatal("sources diverged after FillNoise")
	}
}
