package simrand

import "testing"

// State/SetState must be an exact stream capture: a restored source
// continues the original draw sequence word for word, across every
// distribution helper (they all consume the same underlying PCG).
func TestStateRoundTrip(t *testing.T) {
	src := New(42)
	for i := 0; i < 17; i++ {
		src.Uint64()
		src.Float64()
		src.Normal()
	}
	hi, lo := src.State()

	clone := New(0)
	clone.SetState(hi, lo)
	for i := 0; i < 100; i++ {
		if a, b := src.Uint64(), clone.Uint64(); a != b {
			t.Fatalf("draw %d: original %#x, restored clone %#x", i, a, b)
		}
	}
}

// Capturing state must not perturb it: State is a pure read.
func TestStateIsPureRead(t *testing.T) {
	a, b := New(7), New(7)
	a.State()
	a.State()
	for i := 0; i < 20; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("draw %d diverged after State calls: %#x vs %#x", i, x, y)
		}
	}
}

// A Split child's state is exactly the two words drawn from the parent:
// SetState(a, b) on any source reproduces the child stream. This is the
// contract the netsim engine's inline per-tag stream storage relies on.
func TestSetStateMatchesSplit(t *testing.T) {
	parent := New(99)
	mirror := New(99)
	child := parent.Split()
	w1, w2 := mirror.Uint64(), mirror.Uint64()

	manual := New(0)
	manual.SetState(w1, w2)
	for i := 0; i < 50; i++ {
		if a, b := child.Uint64(), manual.Uint64(); a != b {
			t.Fatalf("draw %d: split child %#x, manual child %#x", i, a, b)
		}
	}
}

// Reseed and New must agree through the State lens too.
func TestStateAfterReseed(t *testing.T) {
	a := New(123)
	b := New(1)
	b.Reseed(123)
	ahi, alo := a.State()
	bhi, blo := b.State()
	if ahi != bhi || alo != blo {
		t.Fatalf("New(123) state (%#x, %#x) != Reseed(123) state (%#x, %#x)", ahi, alo, bhi, blo)
	}
}
