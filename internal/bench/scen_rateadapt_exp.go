package bench

import (
	"repro/internal/netsim"
	"repro/internal/trace"
)

// The closed-loop rate-adaptation scenario cells: every tag carries a
// Gauss-Markov fading channel and a rate-adaptation policy, so the
// paper's per-chunk-feedback claim (fig6 on an isolated link) is
// exercised at network scale — contention, energy, and the
// geometry-derived feedback channel all in the loop.
//
// The shared scenario puts a uniform-disc population mid-rate-table: a
// 1 W carrier over a 1e-8 W noise floor lands edge tags near 21 dB
// (between the 1x and 2x cliffs), the 2^17-sample feedback window keeps
// the backscatter feedback decodable across the cell, and the 47 µF
// capacitor absorbs the slow-rate warm-up so adaptation — not
// mortality — sets the outcome.

func rateAdaptScenario(adapter string, fadeRho float64, rounds int) netsim.Scenario {
	return netsim.Scenario{
		Name: "rateadapt", Tags: 12, Topology: netsim.TopologyUniformDisc, RadiusM: 12,
		TxPowerW: 1.0, NoiseW: 1e-8, Rho: 0.9, FeedbackSamplesPerBit: 131072,
		CapacitanceF: 47e-6, FramesPerTag: 40, MaxRounds: rounds,
		RateAdapt: netsim.RateAdaptSpec{Adapter: adapter, FadeRho: fadeRho},
	}
}

func init() {
	register(Experiment{
		ID:    "scen-rateadapt",
		Title: "Closed-loop rate adaptation at network scale: FD per-chunk vs ARF probing vs fixed",
		Run: func(cfg RunConfig) *Result {
			tbl := trace.NewTable("scen-rateadapt: policy throughput vs fading correlation",
				"fade_rho", "fd_throughput", "arf_throughput", "fixed_throughput",
				"fd_arf_delta", "fd_lag_frac", "arf_lag_frac")
			rounds := cfg.trials(600)
			cs := cfg.cells()
			for _, rho := range []float64{0, 0.9, 0.95, 0.99} {
				fdSeed := subSeed(cfg.Seed, "scen-rateadapt-fd", fbits(rho))
				arfSeed := subSeed(cfg.Seed, "scen-rateadapt-arf", fbits(rho))
				fixSeed := subSeed(cfg.Seed, "scen-rateadapt-fixed", fbits(rho))
				cs.add(func(a *Arena) row {
					fd := mustRun(rateAdaptScenario(netsim.RateAdaptFD, rho, rounds), fdSeed)
					arf := mustRun(rateAdaptScenario(netsim.RateAdaptARF, rho, rounds), arfSeed)
					fix := mustRun(rateAdaptScenario(netsim.RateAdaptFixed, rho, rounds), fixSeed)
					return a.RowV(rho, fd.Throughput(), arf.Throughput(), fix.Throughput(),
						fd.Throughput()-arf.Throughput(),
						fd.AdaptLagFraction(), arf.AdaptLagFraction())
				})
			}
			cs.flushTo(tbl)
			return &Result{ID: "scen-rateadapt", Title: tbl.Title, Table: tbl,
				Shape: "FD per-chunk adaptation beats ARF frame probing at every fading correlation and by the widest margin under fast fades (rho 0.9): the prober only learns at frame boundaries, so its rate trails the channel (high lag fraction, rate stuck low), while per-chunk feedback tracks the fade within a frame; the fixed 1x baseline is safe but cannot exploit the deep-SNR intervals, and as coherence grows toward 0.99 ARF closes part of the gap because the channel holds still across frames."}
		},
	})

	register(Experiment{
		ID:    "scen-fading",
		Title: "Fading sweep: FD adaptation vs channel coherence on the mid-SNR deployment",
		Run: func(cfg RunConfig) *Result {
			tbl := trace.NewTable("scen-fading: FD adaptation vs fading correlation",
				"fade_rho", "throughput", "delivery", "mean_rate_mult", "lag_frac", "rate_switches", "alive_frac")
			rounds := cfg.trials(600)
			cs := cfg.cells()
			for _, rho := range []float64{0, 0.5, 0.9, 0.97, 0.995} {
				seed := subSeed(cfg.Seed, "scen-fading", fbits(rho))
				cs.add(func(a *Arena) row {
					res := mustRun(rateAdaptScenario(netsim.RateAdaptFD, rho, rounds), seed)
					return a.RowV(rho, res.Throughput(), res.DeliveryRate(),
						res.MeanRateMult(), res.AdaptLagFraction(),
						res.RateSwitches, res.AliveFraction())
				})
			}
			cs.flushTo(tbl)
			return &Result{ID: "scen-fading", Title: tbl.Title, Table: tbl,
				Shape: "The rho=0 row is the static channel (highest throughput, minimal lag: the adapter climbs once and stays); introducing fading costs throughput through tags that dwell in fades, and the FD adapter's lag fraction falls as correlation grows from 0.5 toward 0.995 because a smoother channel is easier to track chunk by chunk — rate switches drop accordingly while delivery stays near 1."}
		},
	})
}
