package bench

import (
	"repro/internal/mac"
	"repro/internal/simrand"
	"repro/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "fig4",
		Title: "Goodput efficiency vs chunk loss: full-duplex feedback vs half-duplex ACK baselines",
		Run: func(cfg RunConfig) *Result {
			tbl := trace.NewTable("fig4: efficiency vs loss rate",
				"loss", "stop_and_wait", "block_ack", "full_duplex", "fd_gain_vs_sw")
			frames := cfg.trials(2000)
			params := mac.Params{PayloadBytes: 1500, ChunkBytes: 64}
			cs := cfg.cells()
			for _, p := range []float64{0, 0.01, 0.05, 0.1, 0.2, 0.3, 0.4} {
				swSeed := subSeed(cfg.Seed, "fig4-sw", fbits(p))
				baSeed := subSeed(cfg.Seed, "fig4-ba", fbits(p))
				fdSeed := subSeed(cfg.Seed, "fig4-fd", fbits(p))
				cs.add(func(a *Arena) row {
					sw := (&mac.StopAndWait{P: params}).Run(frames, mac.NewIIDLoss(p, simrand.New(swSeed)))
					ba := (&mac.BlockACK{P: params}).Run(frames, mac.NewIIDLoss(p, simrand.New(baSeed)))
					fd := (&mac.FullDuplex{P: params, Seed: fdSeed}).Run(frames, mac.NewIIDLoss(p, simrand.New(fdSeed)))
					gain := 0.0
					if sw.Efficiency() > 0 {
						gain = fd.Efficiency() / sw.Efficiency()
					}
					return a.RowV(p, sw.Efficiency(), ba.Efficiency(), fd.Efficiency(), gain)
				})
			}
			cs.flushTo(tbl)
			return &Result{ID: "fig4", Title: tbl.Title, Table: tbl,
				Shape: "All protocols tie near zero loss (FD slightly ahead: no ACK airtime); stop-and-wait collapses beyond ~10% chunk loss while full duplex degrades gracefully — the gain grows without bound with loss."}
		},
	})

	register(Experiment{
		ID:    "fig5",
		Title: "Wasted airtime vs interferer duty cycle: collision detection via early termination",
		Run: func(cfg RunConfig) *Result {
			tbl := trace.NewTable("fig5: wasted airtime vs collisions",
				"burst_duty", "sw_wasted", "fd_noabort_wasted", "fd_abort_wasted")
			frames := cfg.trials(2000)
			params := mac.Params{PayloadBytes: 1500, ChunkBytes: 64, AbortThreshold: 2, BackoffChunks: 24}
			noAbort := params
			noAbort.AbortThreshold = 1 << 30
			cs := cfg.cells()
			for _, start := range []float64{0.002, 0.005, 0.01, 0.02, 0.05} {
				swSeed := subSeed(cfg.Seed, "fig5-sw", fbits(start))
				fdNSeed := subSeed(cfg.Seed, "fig5-fdn", fbits(start))
				fdASeed := subSeed(cfg.Seed, "fig5-fda", fbits(start))
				cs.add(func(a *Arena) row {
					mk := func(seed uint64) mac.Loss {
						return mac.NewBurstLoss(simrand.New(seed), start, 20, 1, 0.005)
					}
					duty := mac.NewBurstLoss(simrand.New(1), start, 20, 1, 0.005).DutyCycle()
					sw := (&mac.StopAndWait{P: params}).Run(frames, mk(swSeed))
					fdN := (&mac.FullDuplex{P: noAbort, Seed: fdNSeed}).Run(frames, mk(fdNSeed))
					fdA := (&mac.FullDuplex{P: params, Seed: fdASeed}).Run(frames, mk(fdASeed))
					return a.RowV(duty, sw.WastedFraction(), fdN.WastedFraction(), fdA.WastedFraction())
				})
			}
			cs.flushTo(tbl)
			return &Result{ID: "fig5", Title: tbl.Title, Table: tbl,
				Shape: "Waste rises with collision duty for everyone, but early termination bounds it: the FD-abort curve stays well below both the blind FD and the half-duplex baseline, because a doomed frame stops within ~2 chunks."}
		},
	})

	register(Experiment{
		ID:    "tab1",
		Title: "Feedback latency: full duplex vs half-duplex ACK turnaround",
		Run: func(cfg RunConfig) *Result {
			tbl := trace.NewTable("tab1: feedback delay (chunk-times)",
				"chunk_bytes", "frame_chunks", "fd_delay", "sw_delay", "speedup")
			frames := cfg.trials(500)
			cs := cfg.cells()
			for _, cb := range []int{32, 64, 128, 256} {
				fdSeed := subSeed(cfg.Seed, "tab1-fd", uint64(cb))
				swSeed := subSeed(cfg.Seed, "tab1-sw", uint64(cb))
				cs.add(func(a *Arena) row {
					params := mac.Params{PayloadBytes: 1500, ChunkBytes: cb}
					fd := (&mac.FullDuplex{P: params, Seed: fdSeed}).Run(frames, mac.NewIIDLoss(0.05, simrand.New(fdSeed)))
					sw := (&mac.StopAndWait{P: params}).Run(frames, mac.NewIIDLoss(0.05, simrand.New(swSeed)))
					sp := 0.0
					if fd.MeanFeedbackDelayChunks() > 0 {
						sp = sw.MeanFeedbackDelayChunks() / fd.MeanFeedbackDelayChunks()
					}
					return a.RowV(cb, params.NumChunks(), fd.MeanFeedbackDelayChunks(),
						sw.MeanFeedbackDelayChunks(), sp)
				})
			}
			cs.flushTo(tbl)
			return &Result{ID: "tab1", Title: tbl.Title, Table: tbl,
				Shape: "Full duplex learns each chunk's fate one chunk-time later regardless of frame size; half duplex waits the whole frame plus the ACK — the speedup equals the chunks-per-frame count."}
		},
	})

	register(Experiment{
		ID:    "abl-chunk",
		Title: "Ablation: chunk size trade-off (per-chunk overhead vs retransmit granularity)",
		Run: func(cfg RunConfig) *Result {
			tbl := trace.NewTable("ablation: chunk size",
				"chunk_bytes", "eff_clean_channel", "eff_noisy_channel")
			frames := cfg.trials(2000)
			// Loss scales with chunk length: a chunk of n bytes survives
			// only if all n bytes do, so p_chunk = 1-(1-p_byte)^n.
			chunkLoss := func(pByte float64, n int) float64 {
				return 1 - pow(1-pByte, n)
			}
			cs := cfg.cells()
			for _, cb := range []int{8, 16, 32, 64, 128, 256, 512} {
				loSeed := subSeed(cfg.Seed, "abl-chunk-lo", uint64(cb))
				hiSeed := subSeed(cfg.Seed, "abl-chunk-hi", uint64(cb))
				cs.add(func(a *Arena) row {
					params := mac.Params{PayloadBytes: 1500, ChunkBytes: cb}
					lo := (&mac.FullDuplex{P: params, Seed: loSeed}).Run(frames,
						mac.NewIIDLoss(chunkLoss(2e-4, cb+1), simrand.New(loSeed)))
					hi := (&mac.FullDuplex{P: params, Seed: hiSeed}).Run(frames,
						mac.NewIIDLoss(chunkLoss(3e-3, cb+1), simrand.New(hiSeed)))
					return a.RowV(cb, lo.Efficiency(), hi.Efficiency())
				})
			}
			cs.flushTo(tbl)
			return &Result{ID: "abl-chunk", Title: tbl.Title, Table: tbl,
				Shape: "At low loss big chunks win (less CRC overhead); at high loss small chunks win (finer retransmit granularity) — the crossover motivates the default 32-64 B."}
		},
	})

	register(Experiment{
		ID:    "abl-threshold",
		Title: "Ablation: early-termination threshold (consecutive NACKs before abort)",
		Run: func(cfg RunConfig) *Result {
			tbl := trace.NewTable("ablation: abort threshold",
				"abort_after_nacks", "wasted_fraction", "throughput")
			frames := cfg.trials(2000)
			cs := cfg.cells()
			for _, th := range []int{1, 2, 4, 8, 1 << 20} {
				seed := subSeed(cfg.Seed, "abl-threshold", uint64(th))
				cs.add(func(a *Arena) row {
					params := mac.Params{PayloadBytes: 1500, ChunkBytes: 64,
						AbortThreshold: th, BackoffChunks: 24}
					loss := mac.NewBurstLoss(simrand.New(seed), 0.01, 20, 1, 0.01)
					r := (&mac.FullDuplex{P: params, Seed: seed}).Run(frames, loss)
					return a.RowV(th, r.WastedFraction(), r.Throughput())
				})
			}
			cs.flushTo(tbl)
			return &Result{ID: "abl-threshold", Title: tbl.Title, Table: tbl,
				Shape: "Aborting after 1 NACK over-reacts to isolated losses; never aborting burns airtime through bursts; 2-4 consecutive NACKs is the sweet spot."}
		},
	})
}

// pow is integer exponentiation of a float base.
func pow(base float64, n int) float64 {
	out := 1.0
	for ; n > 0; n >>= 1 {
		if n&1 == 1 {
			out *= base
		}
		base *= base
	}
	return out
}
