package bench

import (
	"repro/internal/mac"
	"repro/internal/simrand"
	"repro/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "fig4",
		Title: "Goodput efficiency vs chunk loss: full-duplex feedback vs half-duplex ACK baselines",
		Run: func(cfg RunConfig) *Result {
			tbl := trace.NewTable("fig4: efficiency vs loss rate",
				"loss", "stop_and_wait", "block_ack", "full_duplex", "fd_gain_vs_sw")
			frames := cfg.trials(2000)
			params := mac.Params{PayloadBytes: 1500, ChunkBytes: 64}
			for _, p := range []float64{0, 0.01, 0.05, 0.1, 0.2, 0.3, 0.4} {
				sw := (&mac.StopAndWait{P: params}).Run(frames, mac.NewIIDLoss(p, simrand.New(cfg.Seed+1)))
				ba := (&mac.BlockACK{P: params}).Run(frames, mac.NewIIDLoss(p, simrand.New(cfg.Seed+2)))
				fd := (&mac.FullDuplex{P: params, Seed: cfg.Seed + 3}).Run(frames, mac.NewIIDLoss(p, simrand.New(cfg.Seed+3)))
				gain := 0.0
				if sw.Efficiency() > 0 {
					gain = fd.Efficiency() / sw.Efficiency()
				}
				tbl.AddRow(p, sw.Efficiency(), ba.Efficiency(), fd.Efficiency(), gain)
			}
			return &Result{ID: "fig4", Title: tbl.Title, Table: tbl,
				Shape: "All protocols tie near zero loss (FD slightly ahead: no ACK airtime); stop-and-wait collapses beyond ~10% chunk loss while full duplex degrades gracefully — the gain grows without bound with loss."}
		},
	})

	register(Experiment{
		ID:    "fig5",
		Title: "Wasted airtime vs interferer duty cycle: collision detection via early termination",
		Run: func(cfg RunConfig) *Result {
			tbl := trace.NewTable("fig5: wasted airtime vs collisions",
				"burst_duty", "sw_wasted", "fd_noabort_wasted", "fd_abort_wasted")
			frames := cfg.trials(2000)
			params := mac.Params{PayloadBytes: 1500, ChunkBytes: 64, AbortThreshold: 2, BackoffChunks: 24}
			noAbort := params
			noAbort.AbortThreshold = 1 << 30
			for _, start := range []float64{0.002, 0.005, 0.01, 0.02, 0.05} {
				mk := func(seed uint64) mac.Loss {
					return mac.NewBurstLoss(simrand.New(seed), start, 20, 1, 0.005)
				}
				duty := mac.NewBurstLoss(simrand.New(1), start, 20, 1, 0.005).DutyCycle()
				sw := (&mac.StopAndWait{P: params}).Run(frames, mk(cfg.Seed+4))
				fdN := (&mac.FullDuplex{P: noAbort, Seed: cfg.Seed + 5}).Run(frames, mk(cfg.Seed+5))
				fdA := (&mac.FullDuplex{P: params, Seed: cfg.Seed + 6}).Run(frames, mk(cfg.Seed+6))
				tbl.AddRow(duty, sw.WastedFraction(), fdN.WastedFraction(), fdA.WastedFraction())
			}
			return &Result{ID: "fig5", Title: tbl.Title, Table: tbl,
				Shape: "Waste rises with collision duty for everyone, but early termination bounds it: the FD-abort curve stays well below both the blind FD and the half-duplex baseline, because a doomed frame stops within ~2 chunks."}
		},
	})

	register(Experiment{
		ID:    "tab1",
		Title: "Feedback latency: full duplex vs half-duplex ACK turnaround",
		Run: func(cfg RunConfig) *Result {
			tbl := trace.NewTable("tab1: feedback delay (chunk-times)",
				"chunk_bytes", "frame_chunks", "fd_delay", "sw_delay", "speedup")
			frames := cfg.trials(500)
			for _, cb := range []int{32, 64, 128, 256} {
				params := mac.Params{PayloadBytes: 1500, ChunkBytes: cb}
				fd := (&mac.FullDuplex{P: params, Seed: cfg.Seed + 7}).Run(frames, mac.NewIIDLoss(0.05, simrand.New(cfg.Seed+7)))
				sw := (&mac.StopAndWait{P: params}).Run(frames, mac.NewIIDLoss(0.05, simrand.New(cfg.Seed+8)))
				sp := 0.0
				if fd.MeanFeedbackDelayChunks() > 0 {
					sp = sw.MeanFeedbackDelayChunks() / fd.MeanFeedbackDelayChunks()
				}
				tbl.AddRow(cb, params.NumChunks(), fd.MeanFeedbackDelayChunks(),
					sw.MeanFeedbackDelayChunks(), sp)
			}
			return &Result{ID: "tab1", Title: tbl.Title, Table: tbl,
				Shape: "Full duplex learns each chunk's fate one chunk-time later regardless of frame size; half duplex waits the whole frame plus the ACK — the speedup equals the chunks-per-frame count."}
		},
	})

	register(Experiment{
		ID:    "abl-chunk",
		Title: "Ablation: chunk size trade-off (per-chunk overhead vs retransmit granularity)",
		Run: func(cfg RunConfig) *Result {
			tbl := trace.NewTable("ablation: chunk size",
				"chunk_bytes", "eff_clean_channel", "eff_noisy_channel")
			frames := cfg.trials(2000)
			// Loss scales with chunk length: a chunk of n bytes survives
			// only if all n bytes do, so p_chunk = 1-(1-p_byte)^n.
			chunkLoss := func(pByte float64, n int) float64 {
				return 1 - pow(1-pByte, n)
			}
			for _, cb := range []int{8, 16, 32, 64, 128, 256, 512} {
				params := mac.Params{PayloadBytes: 1500, ChunkBytes: cb}
				lo := (&mac.FullDuplex{P: params, Seed: cfg.Seed + 9}).Run(frames,
					mac.NewIIDLoss(chunkLoss(2e-4, cb+1), simrand.New(cfg.Seed+9)))
				hi := (&mac.FullDuplex{P: params, Seed: cfg.Seed + 10}).Run(frames,
					mac.NewIIDLoss(chunkLoss(3e-3, cb+1), simrand.New(cfg.Seed+10)))
				tbl.AddRow(cb, lo.Efficiency(), hi.Efficiency())
			}
			return &Result{ID: "abl-chunk", Title: tbl.Title, Table: tbl,
				Shape: "At low loss big chunks win (less CRC overhead); at high loss small chunks win (finer retransmit granularity) — the crossover motivates the default 32-64 B."}
		},
	})

	register(Experiment{
		ID:    "abl-threshold",
		Title: "Ablation: early-termination threshold (consecutive NACKs before abort)",
		Run: func(cfg RunConfig) *Result {
			tbl := trace.NewTable("ablation: abort threshold",
				"abort_after_nacks", "wasted_fraction", "throughput")
			frames := cfg.trials(2000)
			for _, th := range []int{1, 2, 4, 8, 1 << 20} {
				params := mac.Params{PayloadBytes: 1500, ChunkBytes: 64,
					AbortThreshold: th, BackoffChunks: 24}
				loss := mac.NewBurstLoss(simrand.New(cfg.Seed+11), 0.01, 20, 1, 0.01)
				r := (&mac.FullDuplex{P: params, Seed: cfg.Seed + 11}).Run(frames, loss)
				label := th
				tbl.AddRow(label, r.WastedFraction(), r.Throughput())
			}
			return &Result{ID: "abl-threshold", Title: tbl.Title, Table: tbl,
				Shape: "Aborting after 1 NACK over-reacts to isolated losses; never aborting burns airtime through bursts; 2-4 consecutive NACKs is the sweet spot."}
		},
	})
}

// pow is integer exponentiation of a float base.
func pow(base float64, n int) float64 {
	out := 1.0
	for ; n > 0; n >>= 1 {
		if n&1 == 1 {
			out *= base
		}
		base *= base
	}
	return out
}
