package bench

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

// Parallel execution must be invisible in the output: for every
// registered experiment, a run with an 8-worker pool must reproduce the
// serial run cell-for-cell at the same seed.
func TestParallelMatchesSerial(t *testing.T) {
	for _, e := range List() {
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			serial := e.Run(RunConfig{Seed: 42, Quick: true})
			par := e.Run(RunConfig{Seed: 42, Quick: true, Workers: 8})
			sr, pr := serial.Table.Rows(), par.Table.Rows()
			if len(sr) != len(pr) {
				t.Fatalf("row count differs: serial %d, parallel %d", len(sr), len(pr))
			}
			for i := range sr {
				if len(sr[i]) != len(pr[i]) {
					t.Fatalf("row %d width differs: serial %d, parallel %d", i, len(sr[i]), len(pr[i]))
				}
				for j := range sr[i] {
					if sr[i][j] != pr[i][j] {
						t.Fatalf("cell [%d][%d] differs: serial %q, parallel %q", i, j, sr[i][j], pr[i][j])
					}
				}
			}
			// The rendered bytes must match too (title, columns, layout).
			var sb, pb strings.Builder
			if err := serial.Table.WriteText(&sb); err != nil {
				t.Fatal(err)
			}
			if err := par.Table.WriteText(&pb); err != nil {
				t.Fatal(err)
			}
			if sb.String() != pb.String() {
				t.Fatal("rendered text differs between serial and parallel runs")
			}
		})
	}
}

// A run must also reproduce itself: same seed, same worker count, same
// bytes — and different worker counts must agree with each other.
func TestWorkerCountInvariance(t *testing.T) {
	e, err := ByID("fig4")
	if err != nil {
		t.Fatal(err)
	}
	render := func(workers int) string {
		var b strings.Builder
		if err := e.Run(RunConfig{Seed: 9, Quick: true, Workers: workers}).Table.WriteCSV(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	want := render(0)
	for _, w := range []int{1, 2, 3, 16, 100} {
		if got := render(w); got != want {
			t.Fatalf("Workers=%d output differs from serial:\n%s\nvs\n%s", w, got, want)
		}
	}
}

// The pool must emit rows in submission order no matter which worker
// finishes first.
func TestCellSetPreservesOrder(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		cs := &cellSet{workers: workers}
		const n = 100
		for i := 0; i < n; i++ {
			cs.add(func(a *Arena) row { return a.RowV(i) })
		}
		tbl := trace.NewTable("order", "i")
		cs.flushTo(tbl)
		rows := tbl.Rows()
		if len(rows) != n {
			t.Fatalf("workers=%d: got %d rows", workers, len(rows))
		}
		for i, r := range rows {
			want := trace.NewTable("", "i")
			want.AddRow(i)
			if r[0] != want.Rows()[0][0] {
				t.Fatalf("workers=%d: row %d holds %q", workers, i, r[0])
			}
		}
	}
}

// flushTo must leave the set reusable for a further batch.
func TestCellSetReuse(t *testing.T) {
	cs := &cellSet{workers: 4}
	tbl := trace.NewTable("reuse", "v")
	cs.add(func(a *Arena) row { return a.RowV("a") })
	cs.flushTo(tbl)
	cs.add(func(a *Arena) row { return a.RowV("b") })
	cs.flushTo(tbl)
	rows := tbl.Rows()
	if len(rows) != 2 || rows[0][0] != "a" || rows[1][0] != "b" {
		t.Fatalf("unexpected rows after reuse: %v", rows)
	}
}

func TestSubSeed(t *testing.T) {
	a := subSeed(1, "fig1", 10, fbits(0.5))
	if a != subSeed(1, "fig1", 10, fbits(0.5)) {
		t.Fatal("subSeed must be deterministic")
	}
	distinct := map[uint64]string{a: "base"}
	for name, v := range map[string]uint64{
		"other seed":  subSeed(2, "fig1", 10, fbits(0.5)),
		"other id":    subSeed(1, "fig2", 10, fbits(0.5)),
		"other part":  subSeed(1, "fig1", 11, fbits(0.5)),
		"other float": subSeed(1, "fig1", 10, fbits(0.25)),
		"fewer parts": subSeed(1, "fig1", 10),
	} {
		if prev, dup := distinct[v]; dup {
			t.Fatalf("subSeed collision between %q and %q", name, prev)
		}
		distinct[v] = name
	}
}

func TestAutoWorkers(t *testing.T) {
	if AutoWorkers() < 1 {
		t.Fatalf("AutoWorkers() = %d", AutoWorkers())
	}
}
