package bench

import (
	"repro/internal/core"
	"repro/internal/feedback"
	"repro/internal/reader"
	"repro/internal/sigproc"
	"repro/internal/simrand"
	"repro/internal/trace"
)

// Arena is the per-worker scratch the cell functions share: reusable
// links, readers, IQ buffers, random sources and row storage. Every
// accessor hands back state that is explicitly reset (reseeded,
// reconfigured, zeroed) before use, so a cell's result is a pure
// function of its own parameters no matter which worker's arena served
// it — reuse saves allocation, never changes output.
type Arena struct {
	src     *simrand.Source
	link    *core.Link
	linkRes core.TransferResult
	payload []byte
	readers map[reader.Config]*reader.Reader

	// Feedback-cell scratch: the carrier/receive blocks, the cached
	// per-bit antenna state patterns, and the per-bit noiseless receive
	// patterns derived from them.
	tx, rx    sigproc.IQ
	base      [2]sigproc.IQ
	statesCfg feedback.Config
	states    [2][]byte

	// Row storage: rows are carved out of chunked blocks so emitting a
	// row does not allocate. Finished blocks stay alive through the
	// rows that reference them.
	cells []trace.Cell
}

func newArena() *Arena { return &Arena{} }

// reserve starts a fresh storage block when the current one cannot
// hold n more cells, and returns the row's start offset. Finished
// blocks stay alive through the rows that reference them.
func (a *Arena) reserve(n int) int {
	if len(a.cells)+n > cap(a.cells) {
		blockLen := 256
		if n > blockLen {
			blockLen = n
		}
		a.cells = make([]trace.Cell, 0, blockLen)
	}
	return len(a.cells)
}

// Row copies the given cells into arena-backed storage and returns
// them as one table row.
func (a *Arena) Row(vals ...trace.Cell) row {
	start := a.reserve(len(vals))
	a.cells = append(a.cells, vals...)
	return a.cells[start:len(a.cells):len(a.cells)]
}

// Rand returns the arena's random source reseeded to the given seed —
// stream-identical to simrand.New(seed). The source is shared across
// calls; cells that need several concurrent streams must fall back to
// simrand.New for the extras.
func (a *Arena) Rand(seed uint64) *simrand.Source {
	if a.src == nil {
		a.src = simrand.New(seed)
		return a.src
	}
	a.src.Reseed(seed)
	return a.src
}

// Link returns the arena's link configured as cfg — behaviourally
// identical to core.NewLink(cfg), reusing the waveform-sized scratch
// across cells.
func (a *Arena) Link(cfg core.LinkConfig) (*core.Link, error) {
	if a.link == nil {
		l, err := core.NewLink(cfg)
		if err != nil {
			return nil, err
		}
		a.link = l
		return l, nil
	}
	if err := a.link.Reconfigure(cfg); err != nil {
		return nil, err
	}
	return a.link, nil
}

// Reader returns a reset reader for the given configuration, cached per
// configuration so a sweep reuses one instance (and its decoder
// scratch) for all its cells.
func (a *Arena) Reader(cfg reader.Config) (*reader.Reader, error) {
	if rd, ok := a.readers[cfg]; ok {
		rd.Reset()
		return rd, nil
	}
	rd, err := reader.New(cfg)
	if err != nil {
		return nil, err
	}
	if a.readers == nil {
		a.readers = map[reader.Config]*reader.Reader{}
	}
	a.readers[cfg] = rd
	return rd, nil
}

// Payload returns a reusable byte buffer of length n.
func (a *Arena) Payload(n int) []byte {
	if cap(a.payload) < n {
		a.payload = make([]byte, n)
	}
	return a.payload[:n]
}

// IQPair returns the arena's transmit and receive blocks, each of
// length n (contents unspecified; callers fill them).
func (a *Arena) IQPair(n int) (tx, rx sigproc.IQ) {
	if cap(a.tx) < n {
		a.tx = make(sigproc.IQ, n)
	}
	if cap(a.rx) < n {
		a.rx = make(sigproc.IQ, n)
	}
	return a.tx[:n], a.rx[:n]
}

// BasePair returns two arena blocks of length n for the per-bit
// noiseless receive patterns (contents unspecified; callers fill them).
func (a *Arena) BasePair(n int) (zero, one sigproc.IQ) {
	for i := range a.base {
		if cap(a.base[i]) < n {
			a.base[i] = make(sigproc.IQ, n)
		}
	}
	return a.base[0][:n], a.base[1][:n]
}

// BitStates returns the cached per-sample antenna state patterns for a
// 0 and a 1 feedback bit under the given configuration. The patterns
// depend only on cfg, so caching them hoists the per-bit AppendStates
// work out of BER loops.
func (a *Arena) BitStates(cfg feedback.Config) (zero, one []byte) {
	if a.statesCfg != cfg || a.states[0] == nil {
		a.statesCfg = cfg
		for i := range a.states {
			if cap(a.states[i]) < cfg.SamplesPerBit {
				a.states[i] = make([]byte, 0, cfg.SamplesPerBit)
			}
		}
		a.states[0] = cfg.AppendStates(a.states[0][:0], []byte{0})
		a.states[1] = cfg.AppendStates(a.states[1][:0], []byte{1})
	}
	return a.states[0], a.states[1]
}

// PrewarmFeedback pre-sizes every feedback-cell buffer (carrier and
// receive blocks, base patterns, the decoder scratch of the reader for
// cfg) for bit periods up to n samples. A sweep whose cells grow the
// bit period calls this with the sweep maximum so buffers are sized
// once instead of re-allocated at each size step.
func (a *Arena) PrewarmFeedback(cfg reader.Config, n int) error {
	a.IQPair(n)
	a.BasePair(n)
	rd, err := a.Reader(cfg)
	if err != nil {
		return err
	}
	rd.Grow(n)
	return nil
}

// RowV is Row for untyped values, converting through trace.V. It boxes
// its arguments, so allocation-sensitive sweeps should build typed
// cells and call Row; the protocol-level experiments use this
// convenience form.
func (a *Arena) RowV(vals ...interface{}) row {
	start := a.reserve(len(vals))
	for _, v := range vals {
		a.cells = append(a.cells, trace.V(v))
	}
	return a.cells[start:len(a.cells):len(a.cells)]
}
