package bench

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/simrand"
	"repro/internal/trace"
)

// This file is the parallel substrate of the harness. Every experiment
// decomposes into independent cells — one per parameter point — and a
// cell's randomness is seeded from the run seed plus the cell's own
// parameters via subSeed, never from a shared stream. That makes each
// cell a pure function of its inputs, so the worker pool can execute
// cells in any order on any number of goroutines and the collected
// table is byte-identical to a serial run.

// AutoWorkers returns the worker count that "auto" (Workers <= 0 in the
// CLIs) resolves to: the number of usable CPUs.
func AutoWorkers() int { return runtime.GOMAXPROCS(0) }

// row is one computed table row as typed trace cells, in column order.
type row = []trace.Cell

// cellFunc computes one independent cell (one table row) of an
// experiment. It must not touch state shared with other cells; the
// arena it receives is owned by the calling worker and may be reused
// freely.
type cellFunc func(a *Arena) row

// cellEntry is one queued cell: either a standalone closure or one
// index of a batch sharing a single function (addBatch), which avoids
// a closure allocation per parameter point.
type cellEntry struct {
	fn    cellFunc
	batch func(a *Arena, i int) row
	i     int
}

func (c cellEntry) run(a *Arena) row {
	if c.batch != nil {
		return c.batch(a, c.i)
	}
	return c.fn(a)
}

// cellSet queues an experiment's independent cells and executes them
// across a worker pool, emitting rows in submission order. Each worker
// owns one scratch Arena for the whole run.
type cellSet struct {
	workers int
	cells   []cellEntry
}

// cells returns a cellSet honouring cfg.Workers.
func (c RunConfig) cells() *cellSet { return &cellSet{workers: c.Workers} }

// add queues one cell.
func (s *cellSet) add(fn cellFunc) { s.cells = append(s.cells, cellEntry{fn: fn}) }

// addBatch queues n cells computed by one shared function of the cell
// index. Use it when an experiment's parameter points live in a slice:
// one closure serves the whole sweep.
func (s *cellSet) addBatch(n int, fn func(a *Arena, i int) row) {
	if cap(s.cells)-len(s.cells) < n {
		grown := make([]cellEntry, len(s.cells), len(s.cells)+n)
		copy(grown, s.cells)
		s.cells = grown
	}
	for i := 0; i < n; i++ {
		s.cells = append(s.cells, cellEntry{batch: fn, i: i})
	}
}

// flushTo runs every queued cell and appends one row per cell to tbl,
// in the order the cells were added, then empties the queue so the set
// can be reused for a further batch.
func (s *cellSet) flushTo(tbl *trace.Table) {
	rows := s.run()
	tbl.Grow(len(rows))
	for _, r := range rows {
		tbl.AddCells(r)
	}
	s.cells = s.cells[:0]
}

// run executes the queued cells with the configured parallelism and
// returns their rows indexed by submission position. Workers claim
// cells from a shared counter, so uneven cell costs balance across the
// pool; results land in out[i] regardless of completion order. Every
// worker carries its own Arena; cells reset whatever arena state they
// borrow, so results never depend on which worker (or in which order)
// ran a cell — the byte-identical-output guarantee is unchanged.
func (s *cellSet) run() []row {
	out := make([]row, len(s.cells))
	workers := s.workers
	if workers > len(s.cells) {
		workers = len(s.cells)
	}
	if workers <= 1 {
		a := newArena()
		for i, c := range s.cells {
			out[i] = c.run(a)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			a := newArena()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(s.cells) {
					return
				}
				out[i] = s.cells[i].run(a)
			}
		}()
	}
	wg.Wait()
	return out
}

// subSeed derives a deterministic per-cell seed from the run seed, the
// experiment id, and the cell's identifying parameters. Distinct cells
// get decorrelated streams, and the value depends only on the inputs —
// never on goroutine scheduling — so parallel runs reproduce serial
// ones exactly.
func subSeed(seed uint64, id string, parts ...uint64) uint64 {
	const (
		offset64 = 0xcbf29ce484222325 // FNV-1a
		prime64  = 0x100000001b3
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	h ^= simrand.Mix64(seed)
	for _, p := range parts {
		h = simrand.Mix64(h ^ simrand.Mix64(p+0x9e3779b97f4a7c15))
	}
	return simrand.Mix64(h)
}

// fbits projects a float parameter into subSeed's part space.
func fbits(f float64) uint64 { return math.Float64bits(f) }
