package bench

import (
	"strconv"
	"testing"
)

// The scen-congestion cell pins the paper's collapse claim: the
// full-duplex goodput advantage over half-duplex must GROW as offered
// load pushes the cell through its congestion knee — FD aborts a
// collided or timed-out frame within a few chunks while half-duplex
// burns the whole attempt, so the asymmetry compounds exactly when
// collisions multiply. The ratio climbs steeply through the knee and
// saturates once the cell is fully collapsed; the pin demands
// non-decreasing within a small noise tolerance plus a substantial
// overall rise.
func TestScenCongestionFDAdvantageMonotone(t *testing.T) {
	exp, err := ByID("scen-congestion")
	if err != nil {
		t.Fatal(err)
	}
	res := exp.Run(RunConfig{Seed: 1})
	rows := res.Table.Rows()
	if len(rows) < 4 {
		t.Fatalf("scen-congestion produced only %d rows", len(rows))
	}
	const ratioCol = 3 // load, fd_goodput, hd_goodput, fd_hd_ratio, ...
	ratios := make([]float64, len(rows))
	for i, row := range rows {
		v, err := strconv.ParseFloat(row[ratioCol], 64)
		if err != nil {
			t.Fatalf("row %d: bad ratio %q: %v", i, row[ratioCol], err)
		}
		ratios[i] = v
	}
	for i := 1; i < len(ratios); i++ {
		if ratios[i] < ratios[i-1]-0.05 {
			t.Fatalf("FD/HD goodput ratio fell from %.3f to %.3f between loads %s and %s; the advantage must grow through collapse",
				ratios[i-1], ratios[i], rows[i-1][0], rows[i][0])
		}
	}
	if ratios[0] >= ratios[len(ratios)-1] {
		t.Fatalf("ratio never rose across the sweep (%.3f -> %.3f)", ratios[0], ratios[len(ratios)-1])
	}
	if last := ratios[len(ratios)-1]; last < 1.5 {
		t.Fatalf("collapsed-cell FD advantage %.3f too small; the burned-frame asymmetry should exceed 1.5x", last)
	}
	if first := ratios[0]; first > 1.5 {
		t.Fatalf("idle-cell FD advantage %.3f already saturated; the sweep must start below the knee", first)
	}
}
