package bench

import (
	"math"

	"repro/internal/core"
	"repro/internal/phy"
	"repro/internal/trace"
)

// runLinkTrials runs full waveform-level frame exchanges and aggregates
// forward/feedback error statistics.
type linkStats struct {
	frames, delivered   int
	fwdBits, fwdErrs    int
	fbBits, fbErrs      int
	acquireFails        int
	samplesUsed, booked int64
}

// runLinkTrials reuses the arena's link (reconfigured to cfg, which is
// behaviourally a fresh core.NewLink) and its recycled TransferResult,
// so the trial loop is allocation-free at steady state. The payload
// stream draws from the arena source reseeded to its own seed — the
// link consumes randomness from its separate internal source, so the
// two streams stay exactly as decorrelated as before.
func runLinkTrials(a *Arena, cfg core.LinkConfig, frames, payloadBytes int, opts core.TransferOptions, seed uint64) linkStats {
	l, err := a.Link(cfg)
	if err != nil {
		panic(err)
	}
	src := a.Rand(seed)
	payload := a.Payload(payloadBytes)
	res := &a.linkRes
	var st linkStats
	for f := 0; f < frames; f++ {
		for i := range payload {
			payload[i] = byte(src.IntN(256))
		}
		if err := l.TransferFrameInto(payload, opts, res); err != nil {
			panic(err)
		}
		st.frames++
		if res.DeliveredOK {
			st.delivered++
		}
		if !res.Acquired {
			st.acquireFails++
		}
		st.fwdBits += res.ForwardBits
		st.fwdErrs += res.ForwardBitErrors
		st.fbBits += res.FeedbackBits
		st.fbErrs += res.FeedbackErrors
		st.samplesUsed += int64(res.SamplesUsed)
		st.booked += int64(res.SamplesFull)
	}
	return st
}

func (s linkStats) fwdBER() float64 {
	if s.fwdBits == 0 {
		return 0
	}
	return float64(s.fwdErrs) / float64(s.fwdBits)
}

func (s linkStats) fbBER() float64 {
	if s.fbBits == 0 {
		return 0
	}
	return float64(s.fbErrs) / float64(s.fbBits)
}

func init() {
	register(Experiment{
		ID:    "fig3",
		Title: "Forward-link BER with vs without concurrent feedback, vs rho",
		Run: func(cfg RunConfig) *Result {
			tbl := trace.NewTable("fig3: forward impact of concurrent feedback",
				"rho", "fwd_ber_feedback_on", "fwd_ber_feedback_off")
			frames := cfg.trials(30)
			cs := cfg.cells()
			for _, rho := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
				linkSeed := subSeed(cfg.Seed, "fig3-link", fbits(rho))
				// Same payload stream for the on and off arms, so the
				// comparison isolates the feedback reflection.
				paySeed := subSeed(cfg.Seed, "fig3-payload", fbits(rho))
				cs.add(func(a *Arena) row {
					base := core.LinkConfig{
						Modem: phy.OOK{SamplesPerChip: 4, Depth: 0.5},
						// Push the tag towards its sensitivity so the rho
						// penalty is visible.
						DistanceM: 4, TagNoiseW: 4e-9, ChunkSize: 32,
						Rho: rho, Seed: linkSeed,
					}
					on := runLinkTrials(a, base, frames, 256, core.TransferOptions{PadChips: -1}, paySeed)
					off := runLinkTrials(a, base, frames, 256, core.TransferOptions{PadChips: -1, DisableFeedback: true}, paySeed)
					return a.Row(trace.F(rho), trace.F(on.fwdBER()), trace.F(off.fwdBER()))
				})
			}
			cs.flushTo(tbl)
			return &Result{ID: "fig3", Title: tbl.Title, Table: tbl,
				Shape: "The feedback-on curve tracks feedback-off closely at small rho and separates as rho grows: concurrent feedback is nearly free at practical reflection coefficients."}
		},
	})

	register(Experiment{
		ID:    "fig7",
		Title: "End-to-end waveform link: error rates vs tag noise (SNR sweep)",
		Run: func(cfg RunConfig) *Result {
			tbl := trace.NewTable("fig7: waveform link vs noise",
				"tag_noise_dBm", "delivery_rate", "fwd_ber", "feedback_ber", "acquire_fail")
			frames := cfg.trials(30)
			cs := cfg.cells()
			for _, noise := range []float64{1e-10, 1e-9, 1e-8, 1e-7, 4e-7, 1e-6} {
				linkSeed := subSeed(cfg.Seed, "fig7-link", fbits(noise))
				paySeed := subSeed(cfg.Seed, "fig7-payload", fbits(noise))
				cs.add(func(a *Arena) row {
					lcfg := core.LinkConfig{
						Modem:     phy.OOK{SamplesPerChip: 4, Depth: 0.75},
						DistanceM: 3, TagNoiseW: noise, ReaderNoiseW: noise,
						ChunkSize: 32, Seed: linkSeed,
					}
					st := runLinkTrials(a, lcfg, frames, 192, core.TransferOptions{PadChips: -1}, paySeed)
					return a.Row(trace.F(dbm(noise)), trace.F(float64(st.delivered)/float64(st.frames)),
						trace.F(st.fwdBER()), trace.F(st.fbBER()), trace.I(st.acquireFails))
				})
			}
			cs.flushTo(tbl)
			return &Result{ID: "fig7", Title: tbl.Title, Table: tbl,
				Shape: "Clean delivery at low noise; forward and feedback error rates rise together as noise approaches the received signal level, then acquisition itself fails."}
		},
	})
}

func dbm(w float64) float64 {
	if w <= 0 {
		return -999
	}
	return 10*math.Log10(w) + 30
}
