package bench

import (
	"math"

	"repro/internal/channel"
	"repro/internal/energy"
	"repro/internal/feedback"
	"repro/internal/reader"
	"repro/internal/sigproc"
	"repro/internal/trace"
)

// feedbackChannelBER measures the feedback-channel BER at the reader for
// a monostatic link: idle carrier transmitted, tag Manchester-toggling
// its reflection, reader normalising by its own envelope. Returns the
// empirical BER over nBits plus the analytic prediction. All scratch
// (reader, carrier blocks, state patterns, random source) comes from
// the worker's arena; every piece is reset per call, so the result is a
// pure function of the arguments.
func feedbackChannelBER(a *Arena, distM, rho, txPowerW, noiseW float64, samplesPerBit, nBits int, seed uint64) (empirical, analytic float64) {
	pl := channel.NewLogDistance(915e6, 2.5)
	g := pl.Gain(distM)
	fwdAmp := math.Sqrt(g)
	bwdAmp := math.Sqrt(g)
	leakAmp := math.Sqrt(0.01) // -20 dB isolation
	txAmp := math.Sqrt(txPowerW)

	rd, err := a.Reader(reader.Config{})
	if err != nil {
		panic(err)
	}
	src := a.Rand(seed)
	cfg := feedback.Config{SamplesPerBit: samplesPerBit, Code: feedback.CodeManchester}

	tx, rx := a.IQPair(samplesPerBit)
	tx.Fill(complex(txAmp, 0))
	reflAmp := fwdAmp * math.Sqrt(rho) * bwdAmp
	// The carrier is constant, so the two per-sample receive levels are
	// constants too (bit-identical to multiplying per sample).
	leakV := complex(leakAmp, 0) * complex(txAmp, 0)
	reflV := leakV + complex(reflAmp, 0)*complex(txAmp, 0)
	states0, states1 := a.BitStates(cfg)
	base0, base1 := a.BasePair(samplesPerBit)
	fillBase(base0, states0, leakV, reflV)
	fillBase(base1, states1, leakV, reflV)

	errs := 0
	for i := 0; i < nBits; i++ {
		bit := src.Bit()
		if bit == 1 {
			copy(rx, base1)
		} else {
			copy(rx, base0)
		}
		src.FillNoise(rx, noiseW)
		got, _ := rd.DecodeFeedbackBit(rx, tx)
		if got != bit {
			errs++
		}
	}
	// Analytic: normalised separation delta = reflAmp / ... the
	// normalised level is |rx|/|tx|; absorb level = leakAmp, reflect =
	// leakAmp + reflAmp; per-sample noise sigma on the normalised stream
	// is sqrt(noiseW/2-ish)/ (txAmp) for the dominant real component.
	delta := reflAmp
	sigma := math.Sqrt(noiseW/2) / txAmp
	analytic = feedback.ManchesterBER(delta, sigma, samplesPerBit)
	return float64(errs) / float64(nBits), analytic
}

// fillBase renders the noiseless receive block for one feedback bit
// pattern: the leak level where the tag absorbs, leak plus reflection
// where it reflects. Hoisting this out of the bit loop is bit-exact —
// the per-sample values are the same two constants either way.
func fillBase(dst sigproc.IQ, states []byte, leakV, reflV complex128) {
	for j := range dst {
		if states[j] == feedback.StateReflect {
			dst[j] = reflV
		} else {
			dst[j] = leakV
		}
	}
}

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "Feedback-channel BER vs distance for three feedback rates",
		Run: func(cfg RunConfig) *Result {
			tbl := trace.NewTable("fig1: feedback BER vs distance",
				"dist_m", "rate_kbps", "ber", "ber_analytic")
			nBits := cfg.trials(20000)
			const fs = 1e6
			cs := cfg.cells()
			type cell struct {
				spb  int
				d    float64
				seed uint64
			}
			spbs := []int{10, 100, 1000} // 100k / 10k / 1 kbps
			dists := []float64{0.5, 1, 2, 3, 4, 6, 8}
			maxSpb := spbs[len(spbs)-1]
			cells := make([]cell, 0, len(spbs)*len(dists))
			for _, spb := range spbs {
				for _, d := range dists {
					cells = append(cells, cell{spb, d, subSeed(cfg.Seed, "fig1", uint64(spb), fbits(d))})
				}
			}
			cs.addBatch(len(cells), func(a *Arena, i int) row {
				// Size every buffer for the largest bit period up front;
				// cells arrive in growing-spb order, and stepwise growth
				// would otherwise re-allocate at each size boundary.
				if err := a.PrewarmFeedback(reader.Config{}, maxSpb); err != nil {
					panic(err)
				}
				c := cells[i]
				ber, ana := feedbackChannelBER(a, c.d, 0.3, 0.1, 1e-9, c.spb, nBits, c.seed)
				return a.Row(trace.F(c.d), trace.F(fs/float64(c.spb)/1000), trace.F(ber), trace.F(ana))
			})
			cs.flushTo(tbl)
			return &Result{ID: "fig1", Title: tbl.Title, Table: tbl,
				Shape: "BER rises with distance and falls with averaging: the 1 kbps feedback decodes metres farther than 100 kbps at equal BER."}
		},
	})

	register(Experiment{
		ID:    "fig2",
		Title: "Feedback BER vs reflection coefficient rho",
		Run: func(cfg RunConfig) *Result {
			tbl := trace.NewTable("fig2: feedback BER vs rho",
				"rho", "ber", "ber_analytic")
			nBits := cfg.trials(20000)
			cs := cfg.cells()
			for _, rho := range []float64{0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9} {
				seed := subSeed(cfg.Seed, "fig2", fbits(rho))
				cs.add(func(a *Arena) row {
					ber, ana := feedbackChannelBER(a, 3, rho, 0.1, 1e-9, 100, nBits, seed)
					return a.Row(trace.F(rho), trace.F(ber), trace.F(ana))
				})
			}
			cs.flushTo(tbl)
			return &Result{ID: "fig2", Title: tbl.Title, Table: tbl,
				Shape: "BER falls monotonically as rho grows: a stronger reflection buys feedback SNR (paid for in harvested energy, tab2)."}
		},
	})

	register(Experiment{
		ID:    "tab2",
		Title: "Tag energy budget vs rho: harvested power against feedback strength",
		Run: func(cfg RunConfig) *Result {
			tbl := trace.NewTable("tab2: energy budget vs rho",
				"rho", "incident_uW", "harvested_uW", "feedback_ber", "outage_1uW_load")
			nBits := cfg.trials(5000)
			pl := channel.NewLogDistance(915e6, 2.5)
			const txW, d = 0.1, 3.0
			incident := txW * pl.Gain(d)
			h := energy.Harvester{Efficiency: 0.3, SensitivityW: 1e-7}
			cs := cfg.cells()
			for _, rho := range []float64{0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9} {
				seed := subSeed(cfg.Seed, "tab2", fbits(rho))
				cs.add(func(a *Arena) row {
					// Feedback duty is ~50% (Manchester): average harvestable
					// power = incident*(1 - rho/2).
					_, harvestable := energy.SplitIncident(incident, rho/2)
					out := h.OutputPower(harvestable)
					ber, _ := feedbackChannelBER(a, d, rho, txW, 1e-9, 100, nBits, seed)
					outage := "no"
					if out < 1e-6 {
						outage = "yes"
					}
					return a.Row(trace.F(rho), trace.F(incident*1e6), trace.F(out*1e6), trace.F(ber), trace.S(outage))
				})
			}
			cs.flushTo(tbl)
			return &Result{ID: "tab2", Title: tbl.Title, Table: tbl,
				Shape: "Harvested power falls linearly in rho while feedback BER improves: the operating point is a tag-side choice (the paper picks moderate rho)."}
		},
	})

	register(Experiment{
		ID:    "abl-sinorm",
		Title: "Ablation: self-interference normalize vs subtract under calibration error",
		Run: func(cfg RunConfig) *Result {
			tbl := trace.NewTable("ablation: SI handling",
				"mode", "leak_error_pct", "ber")
			nBits := cfg.trials(10000)
			cs := cfg.cells()
			for _, mode := range []reader.SIMode{reader.SINormalize, reader.SISubtract} {
				for _, errPct := range []float64{0, 5, 20} {
					seed := subSeed(cfg.Seed, "abl-sinorm", uint64(mode), fbits(errPct))
					cs.add(func(a *Arena) row {
						ber := siModeBER(a, mode, errPct/100, nBits, seed)
						return a.Row(trace.S(mode.String()), trace.F(errPct), trace.F(ber))
					})
				}
			}
			cs.flushTo(tbl)
			return &Result{ID: "abl-sinorm", Title: tbl.Title, Table: tbl,
				Shape: "Normalize needs no calibration and is flat; subtract pays a noncoherent-combining penalty even when perfectly calibrated and collapses once the leak estimate drifts a few percent."}
		},
	})

	register(Experiment{
		ID:    "abl-fbcode",
		Title: "Ablation: feedback line code Manchester vs NRZ",
		Run: func(cfg RunConfig) *Result {
			tbl := trace.NewTable("ablation: feedback code",
				"code", "noise_scale", "ber")
			nBits := cfg.trials(10000)
			cs := cfg.cells()
			for _, code := range []feedback.Code{feedback.CodeManchester, feedback.CodeNRZ} {
				for _, ns := range []float64{0.5, 1, 2} {
					seed := subSeed(cfg.Seed, "abl-fbcode", uint64(code), fbits(ns))
					cs.add(func(a *Arena) row {
						ber := fbCodeBER(a, code, ns*2e-6, nBits, seed)
						return a.Row(trace.S(code.String()), trace.F(ns), trace.F(ber))
					})
				}
			}
			cs.flushTo(tbl)
			return &Result{ID: "abl-fbcode", Title: tbl.Title, Table: tbl,
				Shape: "Manchester is threshold-free and tracks noise gracefully; NRZ cannot set a threshold from a single-bit slot (no level reference) and fails outright — which is exactly why the design Manchester-codes the feedback."}
		},
	})
}

// siModeBER measures feedback BER with a given SI strategy and a
// multiplicative leak-calibration error.
func siModeBER(a *Arena, mode reader.SIMode, leakErr float64, nBits int, seed uint64) float64 {
	rd, err := a.Reader(reader.Config{SI: mode})
	if err != nil {
		panic(err)
	}
	src := a.Rand(seed)
	const spb = 100
	cfg := feedback.Config{SamplesPerBit: spb, Code: feedback.CodeManchester}
	txAmp := math.Sqrt(0.1)
	leakAmp := math.Sqrt(0.01)
	const reflAmp = 0.002
	tx, rx := a.IQPair(spb)
	tx.Fill(complex(txAmp, 0))
	// Calibrate with a deliberately wrong leak estimate.
	calV := complex(leakAmp*(1+leakErr), 0) * complex(txAmp, 0)
	rx.Fill(calV)
	rd.Calibrate(rx, tx)
	leakV := complex(leakAmp, 0) * complex(txAmp, 0)
	reflV := leakV + complex(reflAmp, 0)*complex(txAmp, 0)
	states0, states1 := a.BitStates(cfg)
	base0, base1 := a.BasePair(spb)
	fillBase(base0, states0, leakV, reflV)
	fillBase(base1, states1, leakV, reflV)
	errs := 0
	for i := 0; i < nBits; i++ {
		bit := src.Bit()
		if bit == 1 {
			copy(rx, base1)
		} else {
			copy(rx, base0)
		}
		src.FillNoise(rx, 2e-6)
		got, _ := rd.DecodeFeedbackBit(rx, tx)
		if got != bit {
			errs++
		}
	}
	return float64(errs) / float64(nBits)
}

// fbCodeBER measures feedback BER for a code at a noise level.
func fbCodeBER(a *Arena, code feedback.Code, noiseW float64, nBits int, seed uint64) float64 {
	rd, err := a.Reader(reader.Config{FeedbackCode: code})
	if err != nil {
		panic(err)
	}
	src := a.Rand(seed)
	const spb = 100
	cfg := feedback.Config{SamplesPerBit: spb, Code: code}
	txAmp := math.Sqrt(0.1)
	leakAmp := math.Sqrt(0.01)
	const reflAmp = 0.002
	tx, rx := a.IQPair(spb)
	tx.Fill(complex(txAmp, 0))
	leakV := complex(leakAmp, 0) * complex(txAmp, 0)
	reflV := leakV + complex(reflAmp, 0)*complex(txAmp, 0)
	states0, states1 := a.BitStates(cfg)
	base0, base1 := a.BasePair(spb)
	fillBase(base0, states0, leakV, reflV)
	fillBase(base1, states1, leakV, reflV)
	errs := 0
	for i := 0; i < nBits; i++ {
		bit := src.Bit()
		if bit == 1 {
			copy(rx, base1)
		} else {
			copy(rx, base0)
		}
		src.FillNoise(rx, noiseW)
		got, _ := rd.DecodeFeedbackBit(rx, tx)
		if got != bit {
			errs++
		}
	}
	return float64(errs) / float64(nBits)
}
