package bench

import (
	"math"

	"repro/internal/channel"
	"repro/internal/energy"
	"repro/internal/feedback"
	"repro/internal/reader"
	"repro/internal/sigproc"
	"repro/internal/simrand"
	"repro/internal/trace"
)

// feedbackChannelBER measures the feedback-channel BER at the reader for
// a monostatic link: idle carrier transmitted, tag Manchester-toggling
// its reflection, reader normalising by its own envelope. Returns the
// empirical BER over nBits plus the analytic prediction.
func feedbackChannelBER(distM, rho, txPowerW, noiseW float64, samplesPerBit, nBits int, seed uint64) (empirical, analytic float64) {
	pl := channel.NewLogDistance(915e6, 2.5)
	g := pl.Gain(distM)
	fwdAmp := math.Sqrt(g)
	bwdAmp := math.Sqrt(g)
	leakAmp := math.Sqrt(0.01) // -20 dB isolation
	txAmp := math.Sqrt(txPowerW)

	rd, err := reader.New(reader.Config{})
	if err != nil {
		panic(err)
	}
	src := simrand.New(seed)
	cfg := feedback.Config{SamplesPerBit: samplesPerBit, Code: feedback.CodeManchester}

	tx := sigproc.NewIQ(samplesPerBit).Fill(complex(txAmp, 0))
	rx := sigproc.NewIQ(samplesPerBit)
	reflAmp := fwdAmp * math.Sqrt(rho) * bwdAmp

	errs := 0
	var bitBuf [1]byte
	states := make([]byte, 0, samplesPerBit)
	for i := 0; i < nBits; i++ {
		bit := src.Bit()
		bitBuf[0] = bit
		states = cfg.AppendStates(states[:0], bitBuf[:])
		for j := range rx {
			v := complex(leakAmp, 0) * tx[j]
			if states[j] == feedback.StateReflect {
				v += complex(reflAmp, 0) * tx[j]
			}
			rx[j] = v
		}
		src.FillNoise(rx, noiseW)
		got, _ := rd.DecodeFeedbackBit(rx, tx)
		if got != bit {
			errs++
		}
	}
	// Analytic: normalised separation delta = reflAmp / ... the
	// normalised level is |rx|/|tx|; absorb level = leakAmp, reflect =
	// leakAmp + reflAmp; per-sample noise sigma on the normalised stream
	// is sqrt(noiseW/2-ish)/ (txAmp) for the dominant real component.
	delta := reflAmp
	sigma := math.Sqrt(noiseW/2) / txAmp
	analytic = feedback.ManchesterBER(delta, sigma, samplesPerBit)
	return float64(errs) / float64(nBits), analytic
}

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "Feedback-channel BER vs distance for three feedback rates",
		Run: func(cfg RunConfig) *Result {
			tbl := trace.NewTable("fig1: feedback BER vs distance",
				"dist_m", "rate_kbps", "ber", "ber_analytic")
			nBits := cfg.trials(20000)
			const fs = 1e6
			cs := cfg.cells()
			for _, spb := range []int{10, 100, 1000} { // 100k / 10k / 1 kbps
				for _, d := range []float64{0.5, 1, 2, 3, 4, 6, 8} {
					seed := subSeed(cfg.Seed, "fig1", uint64(spb), fbits(d))
					cs.add(func() row {
						ber, ana := feedbackChannelBER(d, 0.3, 0.1, 1e-9, spb, nBits, seed)
						return row{d, fs / float64(spb) / 1000, ber, ana}
					})
				}
			}
			cs.flushTo(tbl)
			return &Result{ID: "fig1", Title: tbl.Title, Table: tbl,
				Shape: "BER rises with distance and falls with averaging: the 1 kbps feedback decodes metres farther than 100 kbps at equal BER."}
		},
	})

	register(Experiment{
		ID:    "fig2",
		Title: "Feedback BER vs reflection coefficient rho",
		Run: func(cfg RunConfig) *Result {
			tbl := trace.NewTable("fig2: feedback BER vs rho",
				"rho", "ber", "ber_analytic")
			nBits := cfg.trials(20000)
			cs := cfg.cells()
			for _, rho := range []float64{0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9} {
				seed := subSeed(cfg.Seed, "fig2", fbits(rho))
				cs.add(func() row {
					ber, ana := feedbackChannelBER(3, rho, 0.1, 1e-9, 100, nBits, seed)
					return row{rho, ber, ana}
				})
			}
			cs.flushTo(tbl)
			return &Result{ID: "fig2", Title: tbl.Title, Table: tbl,
				Shape: "BER falls monotonically as rho grows: a stronger reflection buys feedback SNR (paid for in harvested energy, tab2)."}
		},
	})

	register(Experiment{
		ID:    "tab2",
		Title: "Tag energy budget vs rho: harvested power against feedback strength",
		Run: func(cfg RunConfig) *Result {
			tbl := trace.NewTable("tab2: energy budget vs rho",
				"rho", "incident_uW", "harvested_uW", "feedback_ber", "outage_1uW_load")
			nBits := cfg.trials(5000)
			pl := channel.NewLogDistance(915e6, 2.5)
			const txW, d = 0.1, 3.0
			incident := txW * pl.Gain(d)
			h := energy.Harvester{Efficiency: 0.3, SensitivityW: 1e-7}
			cs := cfg.cells()
			for _, rho := range []float64{0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9} {
				seed := subSeed(cfg.Seed, "tab2", fbits(rho))
				cs.add(func() row {
					// Feedback duty is ~50% (Manchester): average harvestable
					// power = incident*(1 - rho/2).
					_, harvestable := energy.SplitIncident(incident, rho/2)
					out := h.OutputPower(harvestable)
					ber, _ := feedbackChannelBER(d, rho, txW, 1e-9, 100, nBits, seed)
					outage := "no"
					if out < 1e-6 {
						outage = "yes"
					}
					return row{rho, incident * 1e6, out * 1e6, ber, outage}
				})
			}
			cs.flushTo(tbl)
			return &Result{ID: "tab2", Title: tbl.Title, Table: tbl,
				Shape: "Harvested power falls linearly in rho while feedback BER improves: the operating point is a tag-side choice (the paper picks moderate rho)."}
		},
	})

	register(Experiment{
		ID:    "abl-sinorm",
		Title: "Ablation: self-interference normalize vs subtract under calibration error",
		Run: func(cfg RunConfig) *Result {
			tbl := trace.NewTable("ablation: SI handling",
				"mode", "leak_error_pct", "ber")
			nBits := cfg.trials(10000)
			cs := cfg.cells()
			for _, mode := range []reader.SIMode{reader.SINormalize, reader.SISubtract} {
				for _, errPct := range []float64{0, 5, 20} {
					seed := subSeed(cfg.Seed, "abl-sinorm", uint64(mode), fbits(errPct))
					cs.add(func() row {
						ber := siModeBER(mode, errPct/100, nBits, seed)
						return row{mode.String(), errPct, ber}
					})
				}
			}
			cs.flushTo(tbl)
			return &Result{ID: "abl-sinorm", Title: tbl.Title, Table: tbl,
				Shape: "Normalize needs no calibration and is flat; subtract pays a noncoherent-combining penalty even when perfectly calibrated and collapses once the leak estimate drifts a few percent."}
		},
	})

	register(Experiment{
		ID:    "abl-fbcode",
		Title: "Ablation: feedback line code Manchester vs NRZ",
		Run: func(cfg RunConfig) *Result {
			tbl := trace.NewTable("ablation: feedback code",
				"code", "noise_scale", "ber")
			nBits := cfg.trials(10000)
			cs := cfg.cells()
			for _, code := range []feedback.Code{feedback.CodeManchester, feedback.CodeNRZ} {
				for _, ns := range []float64{0.5, 1, 2} {
					seed := subSeed(cfg.Seed, "abl-fbcode", uint64(code), fbits(ns))
					cs.add(func() row {
						ber := fbCodeBER(code, ns*2e-6, nBits, seed)
						return row{code.String(), ns, ber}
					})
				}
			}
			cs.flushTo(tbl)
			return &Result{ID: "abl-fbcode", Title: tbl.Title, Table: tbl,
				Shape: "Manchester is threshold-free and tracks noise gracefully; NRZ cannot set a threshold from a single-bit slot (no level reference) and fails outright — which is exactly why the design Manchester-codes the feedback."}
		},
	})
}

// siModeBER measures feedback BER with a given SI strategy and a
// multiplicative leak-calibration error.
func siModeBER(mode reader.SIMode, leakErr float64, nBits int, seed uint64) float64 {
	rd, err := reader.New(reader.Config{SI: mode})
	if err != nil {
		panic(err)
	}
	src := simrand.New(seed)
	const spb = 100
	cfg := feedback.Config{SamplesPerBit: spb, Code: feedback.CodeManchester}
	txAmp := math.Sqrt(0.1)
	leakAmp := math.Sqrt(0.01)
	const reflAmp = 0.002
	tx := sigproc.NewIQ(spb).Fill(complex(txAmp, 0))
	// Calibrate with a deliberately wrong leak estimate.
	rxCal := sigproc.NewIQ(spb)
	for i := range rxCal {
		rxCal[i] = complex(leakAmp*(1+leakErr), 0) * tx[i]
	}
	rd.Calibrate(rxCal, tx)
	rx := sigproc.NewIQ(spb)
	errs := 0
	var bitBuf [1]byte
	states := make([]byte, 0, spb)
	for i := 0; i < nBits; i++ {
		bit := src.Bit()
		bitBuf[0] = bit
		states = cfg.AppendStates(states[:0], bitBuf[:])
		for j := range rx {
			v := complex(leakAmp, 0) * tx[j]
			if states[j] == feedback.StateReflect {
				v += complex(reflAmp, 0) * tx[j]
			}
			rx[j] = v
		}
		src.FillNoise(rx, 2e-6)
		got, _ := rd.DecodeFeedbackBit(rx, tx)
		if got != bit {
			errs++
		}
	}
	return float64(errs) / float64(nBits)
}

// fbCodeBER measures feedback BER for a code at a noise level.
func fbCodeBER(code feedback.Code, noiseW float64, nBits int, seed uint64) float64 {
	rd, err := reader.New(reader.Config{FeedbackCode: code})
	if err != nil {
		panic(err)
	}
	src := simrand.New(seed)
	const spb = 100
	cfg := feedback.Config{SamplesPerBit: spb, Code: code}
	txAmp := math.Sqrt(0.1)
	leakAmp := math.Sqrt(0.01)
	const reflAmp = 0.002
	tx := sigproc.NewIQ(spb).Fill(complex(txAmp, 0))
	rx := sigproc.NewIQ(spb)
	errs := 0
	var bitBuf [1]byte
	states := make([]byte, 0, spb)
	for i := 0; i < nBits; i++ {
		bit := src.Bit()
		bitBuf[0] = bit
		states = cfg.AppendStates(states[:0], bitBuf[:])
		for j := range rx {
			v := complex(leakAmp, 0) * tx[j]
			if states[j] == feedback.StateReflect {
				v += complex(reflAmp, 0) * tx[j]
			}
			rx[j] = v
		}
		src.FillNoise(rx, noiseW)
		got, _ := rd.DecodeFeedbackBit(rx, tx)
		if got != bit {
			errs++
		}
	}
	return float64(errs) / float64(nBits)
}
