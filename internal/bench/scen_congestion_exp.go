package bench

import (
	"repro/internal/netsim"
	"repro/internal/trace"
)

// The congestion-collapse cell: an offered-load sweep through the knee
// where a two-reader cell stops keeping up, with the closed-loop cubic
// controller on for both arms. The claim under test is the paper's
// collision-cost asymmetry compounding under collapse: a full-duplex
// reader detects a collision within AbortThreshold chunks and aborts,
// while the half-duplex stop-and-wait reader burns the whole frame
// before the missing ACK tells it anything — so as load pushes the cell
// past saturation and collisions multiply, the FD goodput advantage
// must grow monotonically.
//
// The deployment keeps ALOHA admission (collisions are the mechanism
// being measured), a deliberately tight 12-slot window so the knee sits
// inside the sweep, long 32-chunk frames so a burned half-duplex
// attempt costs something, and the fading-aisle RF calibration (strong
// carrier, 2^17-sample feedback window) so the comparison isolates the
// MAC asymmetry: feedback decodes cleanly and the 47 uF capacitor
// keeps congestion — not brown-out — setting the outcome.

func congestionScenario(protocol string, load float64, rounds int) netsim.Scenario {
	return netsim.Scenario{
		Name: "scen-congestion", Tags: 24, Topology: netsim.TopologyClustered,
		RadiusM: 8, Clusters: 3, TxPowerW: 1.0, NoiseW: 1e-8, Rho: 0.9,
		FeedbackSamplesPerBit: 131072, CapacitanceF: 47e-6,
		OfferedLoad: load, MaxRounds: rounds, QueueCap: 32, ContentionWindow: 12,
		PayloadBytes: 1024, Protocol: protocol,
		Congestion: netsim.CongestionSpec{Controller: netsim.CongestionCubic},
	}
}

func init() {
	register(Experiment{
		ID:    "scen-congestion",
		Title: "Congestion collapse under closed-loop control: FD vs HD goodput across the offered-load knee",
		Run: func(cfg RunConfig) *Result {
			tbl := trace.NewTable("scen-congestion: FD vs stop-and-wait through congestion collapse",
				"load", "fd_goodput", "hd_goodput", "fd_hd_ratio",
				"fd_collisions", "fd_timeouts", "fd_mean_cwnd")
			rounds := cfg.trials(160)
			cs := cfg.cells()
			for _, load := range []float64{0.1, 0.2, 0.35, 0.6, 1.0} {
				fdSeed := subSeed(cfg.Seed, "scen-congestion-fd", fbits(load))
				hdSeed := subSeed(cfg.Seed, "scen-congestion-hd", fbits(load))
				cs.add(func(a *Arena) row {
					fd := mustRun(congestionScenario("full-duplex", load, rounds), fdSeed)
					hd := mustRun(congestionScenario("stop-and-wait", load, rounds), hdSeed)
					ratio := 0.0
					if hd.Throughput() > 0 {
						ratio = fd.Throughput() / hd.Throughput()
					}
					return a.RowV(load, fd.Throughput(), hd.Throughput(), ratio,
						fd.CollisionFraction(), fd.Timeouts, fd.MeanCwnd())
				})
			}
			cs.flushTo(tbl)
			return &Result{ID: "scen-congestion", Title: tbl.Title, Table: tbl,
				Shape: "Both arms deliver comfortably at load 0.1 where the cell is idle-dominated and the FD advantage is modest; as offered load climbs through the 12-slot window's knee the collision fraction rises and the cubic controller's timeouts multiply, and the FD-over-HD goodput ratio grows monotonically — half-duplex pays a whole burned frame per collision and per timeout probe while full-duplex aborts within a few chunks, so the asymmetry compounds exactly where the network is in trouble, saturating near 2x once the cell is fully collapsed."}
		},
	})
}
