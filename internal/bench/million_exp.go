package bench

import (
	"repro/internal/netsim"
	"repro/internal/trace"
)

// scen-million pins the struct-of-arrays engine at population scale: the
// "million" preset (8 readers, waypoint mobility, full-duplex rate
// adaptation over fading) swept across tag counts up to 2^20, run on
// both the exact engine and the analytic fast path. The table reports
// only simulation outcomes — never wall time, which would break the
// byte-identical-output contract — while the cell's wall clock is what
// the perf gate tracks through BENCH_baseline.json. Quick mode runs one
// scaled-down point so CI exercises the identical code path cheaply.

// mustRunParallel executes a scenario cell on the sharded engine with
// one worker per CPU; the result is byte-identical at any worker count,
// so bench output stays deterministic.
func mustRunParallel(sc netsim.Scenario, seed uint64) *netsim.NetResult {
	res, err := netsim.RunParallel(sc, seed, 0)
	if err != nil {
		panic("bench: scenario cell failed: " + err.Error())
	}
	return res
}

func init() {
	register(Experiment{
		ID:    "scen-million",
		Title: "Million-tag scale sweep: exact vs analytic engine on the million preset",
		Run: func(cfg RunConfig) *Result {
			tbl := trace.NewTable("scen-million: exact vs analytic engine at scale",
				"tags", "rounds", "delivery", "an_delivery", "throughput", "an_throughput", "an_ratio", "alive_frac")
			scales := []int{1 << 16, 1 << 18, 1 << 20}
			if cfg.Quick {
				scales = []int{1 << 14}
			}
			cs := cfg.cells()
			for _, n := range scales {
				seed := subSeed(cfg.Seed, "scen-million", uint64(n))
				cs.add(func(a *Arena) row {
					sc, err := netsim.Preset("million")
					if err != nil {
						panic("bench: " + err.Error())
					}
					sc.Tags = n
					exact := mustRunParallel(sc, seed)
					an := sc
					an.Analytic = true
					fast := mustRunParallel(an, seed)
					ratio := 0.0
					if exact.Throughput() > 0 {
						ratio = fast.Throughput() / exact.Throughput()
					}
					return a.RowV(n, exact.Rounds,
						exact.DeliveryRate(), fast.DeliveryRate(),
						exact.Throughput(), fast.Throughput(), ratio,
						exact.AliveFraction())
				})
			}
			cs.flushTo(tbl)
			return &Result{ID: "scen-million", Title: tbl.Title, Table: tbl,
				Shape: "Delivery holds near 1 at every scale — the preset's 4 W carrier keeps edge tags harvest-positive and full-duplex feedback drains each queue within the horizon — and the analytic delivery column tracks the exact one to within sampling noise. The analytic/exact throughput ratio sits above 1 and below ~2: the closed-form airtime is the documented optimistic bound (no abort idle, no false-ACK resync, no adaptation warm-up)."}
		},
	})
}
