// Package bench is the experiment harness: one runner per figure/table
// of the evaluation, each regenerating the corresponding rows/series
// from the experiment index in the repository README. cmd/fdbench and
// the top-level benchmarks both drive this package.
//
// Each experiment decomposes into independent cells (one per parameter
// point) executed by a worker pool sized by RunConfig.Workers; output
// is byte-identical at any worker count because cells are seeded from
// the run seed and their own parameters, and rows are collected in
// submission order.
package bench

import (
	"fmt"
	"sort"

	"repro/internal/trace"
)

// RunConfig tunes an experiment run.
type RunConfig struct {
	// Seed makes the run reproducible.
	Seed uint64
	// Quick shrinks trial counts for CI/benchmark loops.
	Quick bool
	// Workers is how many experiment cells run concurrently; 0 or 1
	// runs serially. Any value produces byte-identical output at the
	// same Seed. Use AutoWorkers for "all CPUs".
	Workers int
}

// trials scales an iteration count down in Quick mode.
func (c RunConfig) trials(full int) int {
	if c.Quick {
		n := full / 10
		if n < 1 {
			n = 1
		}
		return n
	}
	return full
}

// Experiment is one reproducible figure or table.
type Experiment struct {
	// ID is the figure/table identifier from the evaluation (e.g.
	// "fig4"); the README's experiment index lists them all.
	ID string
	// Title is the one-line description shown in listings.
	Title string
	// Run executes the experiment and returns its table.
	Run func(RunConfig) *Result
}

// Result bundles the experiment output with commentary on the expected
// shape, so reports can state what the run should reproduce.
type Result struct {
	ID    string
	Title string
	// Table holds the regenerated rows.
	Table *trace.Table
	// Shape describes the qualitative result the paper reports and this
	// run should reproduce.
	Shape string
}

var registry = map[string]Experiment{}

// register adds an experiment; called from init functions of the
// per-figure files.
func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("bench: duplicate experiment id " + e.ID)
	}
	registry[e.ID] = e
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("bench: unknown experiment %q (use List)", id)
	}
	return e, nil
}

// List returns all experiments sorted by ID (figs first, then tabs,
// then scenario sweeps, then ablations).
func List() []Experiment {
	// Harvest and sort the registry keys before building the listing:
	// IDs are unique, so the sorted keys induce a deterministic order
	// no matter how the map iterates (fdlint: orderedrange).
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return idLess(ids[i], ids[j]) })
	out := make([]Experiment, 0, len(ids))
	for _, id := range ids {
		out = append(out, registry[id])
	}
	return out
}

func idLess(a, b string) bool {
	rank := func(s string) int {
		switch {
		case len(s) >= 3 && s[:3] == "fig":
			return 0
		case len(s) >= 3 && s[:3] == "tab":
			return 1
		case len(s) >= 4 && s[:4] == "scen":
			return 2
		default:
			return 3
		}
	}
	ra, rb := rank(a), rank(b)
	if ra != rb {
		return ra < rb
	}
	return a < b
}
