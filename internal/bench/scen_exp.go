package bench

import (
	"repro/internal/netsim"
	"repro/internal/trace"
)

// The scen-* experiments exercise the multi-tag network scenario engine
// (internal/netsim): populations of tags contending under one reader,
// where the full-duplex collision detection and the energy/feedback
// trade-offs play out at network scale rather than on an isolated link.
// Each parameter point is one cell on the worker pool, and a netsim run
// is a pure function of (scenario, seed), so the sub-seed determinism of
// the harness carries over unchanged.

// mustRun executes a scenario cell; scenario errors are programming
// errors in the experiment definitions, not data-dependent conditions.
func mustRun(sc netsim.Scenario, seed uint64) *netsim.NetResult {
	res, err := netsim.Run(sc, seed)
	if err != nil {
		panic("bench: scenario cell failed: " + err.Error())
	}
	return res
}

func init() {
	register(Experiment{
		ID:    "scen-density",
		Title: "Network density sweep: cell throughput vs tag count under one reader",
		Run: func(cfg RunConfig) *Result {
			tbl := trace.NewTable("scen-density: throughput vs tag count",
				"tags", "fd_throughput", "sw_throughput", "delivery", "collision_frac", "fairness")
			rounds := cfg.trials(300)
			frames := 4
			cs := cfg.cells()
			for _, n := range []int{2, 4, 8, 16, 32, 48} {
				fdSeed := subSeed(cfg.Seed, "scen-density-fd", uint64(n))
				swSeed := subSeed(cfg.Seed, "scen-density-sw", uint64(n))
				cs.add(func(a *Arena) row {
					sc := netsim.Scenario{
						Name: "density", Tags: n, Topology: netsim.TopologyGrid,
						RadiusM: 3, FramesPerTag: frames, ContentionWindow: 16,
						MaxRounds: rounds,
					}
					fd := mustRun(sc, fdSeed)
					sw := sc
					sw.Protocol = "stop-and-wait"
					hw := mustRun(sw, swSeed)
					return a.RowV(n, fd.Throughput(), hw.Throughput(),
						fd.DeliveryRate(), fd.CollisionFraction(), fd.FairnessIndex())
				})
			}
			cs.flushTo(tbl)
			return &Result{ID: "scen-density", Title: tbl.Title, Table: tbl,
				Shape: "Throughput rises then saturates as the fixed contention window congests; the collision fraction grows with density, and full duplex holds its margin over stop-and-wait because collisions abort within ~2 chunks instead of burning whole frames."}
		},
	})

	register(Experiment{
		ID:    "scen-range",
		Title: "Deployment range sweep: delivery vs radius on a uniform-disc population",
		Run: func(cfg RunConfig) *Result {
			tbl := trace.NewTable("scen-range: delivery vs deployment radius",
				"radius_m", "mean_snr_db", "delivery", "throughput", "mean_outage")
			rounds := cfg.trials(120)
			cs := cfg.cells()
			for _, r := range []float64{2, 5, 10, 20, 40, 60} {
				seed := subSeed(cfg.Seed, "scen-range", fbits(r))
				cs.add(func(a *Arena) row {
					sc := netsim.Scenario{
						Name: "range", Tags: 12, Topology: netsim.TopologyUniformDisc,
						RadiusM: r, FramesPerTag: 4, MaxRounds: rounds,
					}
					res := mustRun(sc, seed)
					var outage float64
					for _, t := range res.Tags {
						outage += t.OutageFraction
					}
					outage /= float64(len(res.Tags))
					return a.RowV(r, res.MeanSNRdB(), res.DeliveryRate(), res.Throughput(), outage)
				})
			}
			cs.flushTo(tbl)
			return &Result{ID: "scen-range", Title: tbl.Title, Table: tbl,
				Shape: "Delivery holds near 1 until the edge of the disc crosses the chunk-loss cliff (~45 m at default power), then collapses; mean SNR falls with the path loss exponent, and outage grows as edge tags drop below the harvester floor."}
		},
	})

	register(Experiment{
		ID:    "scen-multireader",
		Title: "Multi-reader sweep: aggregate throughput and interference vs reader count",
		Run: func(cfg RunConfig) *Result {
			tbl := trace.NewTable("scen-multireader: throughput vs reader count",
				"readers", "indep_throughput", "tdm_throughput", "indep_mean_snr_db", "tdm_mean_snr_db", "delivery", "fairness")
			rounds := cfg.trials(240)
			cs := cfg.cells()
			for _, n := range []int{1, 2, 4, 8} {
				iSeed := subSeed(cfg.Seed, "scen-multireader-indep", uint64(n))
				tSeed := subSeed(cfg.Seed, "scen-multireader-tdm", uint64(n))
				cs.add(func(a *Arena) row {
					sc := netsim.Scenario{
						Name: "multireader", Tags: 48, Topology: netsim.TopologyUniformDisc,
						RadiusM: 12, FramesPerTag: 4, MaxRounds: rounds,
						Readers: netsim.ReaderSpec{Count: n, Placement: netsim.ReaderGrid, SpacingM: 12},
					}
					indep := mustRun(sc, iSeed)
					td := sc
					td.Readers.Scheduling = netsim.SchedulingTDM
					tdm := mustRun(td, tSeed)
					return a.RowV(n, indep.Throughput(), tdm.Throughput(),
						indep.MeanSNRdB(), tdm.MeanSNRdB(),
						indep.DeliveryRate(), indep.FairnessIndex())
				})
			}
			cs.flushTo(tbl)
			return &Result{ID: "scen-multireader", Title: tbl.Title, Table: tbl,
				Shape: "Aggregate throughput scales with reader count under independent channels — parallel contention windows drain the same population concurrently — for as long as the added cells still cover distinct parts of the deployment, then saturates; TDM stays near the single-reader line because readers take turns. The price of parallelism shows in mean SNR, which sits below the TDM line as neighbouring carriers leak through the finite channel isolation into every tag's noise floor."}
		},
	})

	register(Experiment{
		ID:    "scen-mobility",
		Title: "Mobility sweep: delivery and fairness vs waypoint drift per epoch",
		Run: func(cfg RunConfig) *Result {
			tbl := trace.NewTable("scen-mobility: delivery vs drift step",
				"step_m", "delivery", "throughput", "fairness", "mean_snr_db", "alive_frac")
			rounds := cfg.trials(240)
			cs := cfg.cells()
			for _, step := range []float64{0, 0.5, 1, 2, 4, 8} {
				seed := subSeed(cfg.Seed, "scen-mobility", fbits(step))
				cs.add(func(a *Arena) row {
					sc := netsim.Scenario{
						Name: "mobility", Tags: 16, Topology: netsim.TopologyUniformDisc,
						RadiusM: 40, OfferedLoad: 0.4, MaxRounds: rounds,
					}
					if step > 0 {
						sc.Mobility = netsim.MobilitySpec{
							Model: netsim.MobilityWaypoint, StepM: step, EpochRounds: 4,
						}
					}
					res := mustRun(sc, seed)
					return a.RowV(step, res.DeliveryRate(), res.Throughput(),
						res.FairnessIndex(), res.MeanSNRdB(), res.AliveFraction())
				})
			}
			cs.flushTo(tbl)
			return &Result{ID: "scen-mobility", Title: tbl.Title, Table: tbl,
				Shape: "Mobility is U-shaped on a 40 m disc that straddles the chunk-loss cliff: slow drift perturbs the static geometry — tags near the cliff churn across it between epochs — faster than it averages anything, so delivery and fairness first dip below the static baseline; larger steps time-average the whole disc within the horizon and recover delivery and fairness to the baseline or above, while the final-epoch mean SNR merely samples wherever the fleet stands when the horizon ends."}
		},
	})

	register(Experiment{
		ID:    "scen-energy",
		Title: "Energy sweep: tag lifetime vs offered load on a clustered deployment",
		Run: func(cfg RunConfig) *Result {
			tbl := trace.NewTable("scen-energy: tag lifetime vs offered load",
				"offered_load", "alive_frac", "mean_lifetime_frac", "delivered", "dropped")
			rounds := cfg.trials(200)
			cs := cfg.cells()
			for _, load := range []float64{0.05, 0.1, 0.25, 0.5, 1, 2} {
				seed := subSeed(cfg.Seed, "scen-energy", fbits(load))
				cs.add(func(a *Arena) row {
					sc := netsim.Scenario{
						Name: "energy", Tags: 16, Topology: netsim.TopologyClustered,
						RadiusM: 6, Clusters: 4, OfferedLoad: load, MaxRounds: rounds,
					}
					res := mustRun(sc, seed)
					lifeFrac := 0.0
					if res.SimulatedS > 0 {
						lifeFrac = res.MeanLifetimeS() / res.SimulatedS
					}
					return a.RowV(load, res.AliveFraction(), lifeFrac,
						res.FramesDelivered, res.FramesDropped)
				})
			}
			cs.flushTo(tbl)
			return &Result{ID: "scen-energy", Title: tbl.Title, Table: tbl,
				Shape: "Lifetime falls with offered load: every transmission spends capacitor energy the harvest cannot fully replace, so heavily loaded tags brown out early while lightly loaded ones ride out the horizon — the network-scale face of the rho trade-off."}
		},
	})
}
