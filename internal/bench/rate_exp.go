package bench

import (
	"repro/internal/rateadapt"
	"repro/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "fig6",
		Title: "Rate adaptation on a fading trace: per-chunk FD feedback vs packet probing vs fixed",
		Run: func(cfg RunConfig) *Result {
			tbl := trace.NewTable("fig6: adaptation throughput vs mean SNR",
				"mean_snr_db", "fd_perchunk", "arf_probing", "fixed_slow", "fixed_fast")
			chunks := cfg.trials(60000)
			n := len(rateadapt.DefaultRates)
			cs := cfg.cells()
			for _, snr := range []float64{4, 8, 12, 16, 20} {
				seed := subSeed(cfg.Seed, "fig6", fbits(snr))
				cs.add(func(a *Arena) row {
					// Average a few seeds: fading traces are high-variance.
					var fd, arf, slow, fast float64
					const seeds = 3
					for s := uint64(0); s < seeds; s++ {
						c := rateadapt.SimConfig{
							MeanSNRdB: snr, FadeRho: 0.97, FrameChunks: 48,
							Seed: seed + s,
						}
						fd += rateadapt.RunTrace(c, rateadapt.NewFullDuplex(n), chunks).ThroughputBytesPerTime()
						arf += rateadapt.RunTrace(c, rateadapt.NewARF(n), chunks).ThroughputBytesPerTime()
						slow += rateadapt.RunTrace(c, &rateadapt.Fixed{Index: 0, RateName: "0.25x"}, chunks).ThroughputBytesPerTime()
						fast += rateadapt.RunTrace(c, &rateadapt.Fixed{Index: n - 1, RateName: "2x"}, chunks).ThroughputBytesPerTime()
					}
					return a.RowV(snr, fd/seeds, arf/seeds, slow/seeds, fast/seeds)
				})
			}
			cs.flushTo(tbl)
			return &Result{ID: "fig6", Title: tbl.Title, Table: tbl,
				Shape: "Fixed-slow is flat and safe, fixed-fast only works at high SNR; per-chunk FD adaptation tracks the fades and sits at or above ARF probing across the sweep, with the widest margin at mid-to-high SNR where the channel crosses rate boundaries often (at the very bottom every policy pins to the slowest rate)."}
		},
	})
}
