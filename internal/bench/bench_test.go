package bench

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"tab1", "tab2", "scen-density", "scen-range", "scen-energy",
		"abl-sinorm", "abl-fbcode", "abl-chunk", "abl-threshold"}
	for _, id := range want {
		if _, err := ByID(id); err != nil {
			t.Fatalf("experiment %s missing: %v", id, err)
		}
	}
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("unknown id must error")
	}
}

func TestListOrdered(t *testing.T) {
	l := List()
	if len(l) < 16 {
		t.Fatalf("only %d experiments registered", len(l))
	}
	for i, e := range l {
		if strings.HasPrefix(e.ID, "scen") && i+1 < len(l) &&
			strings.HasPrefix(l[i+1].ID, "tab") {
			t.Fatalf("scenario sweeps must sort after tabs, got %s before %s", e.ID, l[i+1].ID)
		}
	}
	if !strings.HasPrefix(l[0].ID, "fig") {
		t.Fatalf("figs must sort first, got %s", l[0].ID)
	}
	last := l[len(l)-1].ID
	if !strings.HasPrefix(last, "abl") {
		t.Fatalf("ablations must sort last, got %s", last)
	}
}

// List builds its order by harvesting and sorting the registry map's
// keys (the fdlint orderedrange contract): the full ID sequence must be
// strictly sorted under idLess and byte-identical across calls —
// ranging the map into the output would make both assertions flaky.
func TestListDeterministic(t *testing.T) {
	first := List()
	for i := 1; i < len(first); i++ {
		if idLess(first[i].ID, first[i-1].ID) {
			t.Fatalf("List out of order: %s before %s", first[i-1].ID, first[i].ID)
		}
	}
	for trial := 0; trial < 20; trial++ {
		again := List()
		if len(again) != len(first) {
			t.Fatalf("List length changed: %d != %d", len(again), len(first))
		}
		for i := range first {
			if again[i].ID != first[i].ID {
				t.Fatalf("List order unstable at %d: %s != %s (map iteration order leaking)",
					i, again[i].ID, first[i].ID)
			}
		}
	}
}

// Every experiment must run in quick mode, produce rows, and carry a
// shape statement.
func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range List() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res := e.Run(RunConfig{Seed: 1, Quick: true})
			if res == nil || res.Table == nil {
				t.Fatal("nil result")
			}
			if res.Table.NumRows() == 0 {
				t.Fatal("experiment produced no rows")
			}
			if res.Shape == "" {
				t.Fatal("experiment missing shape statement")
			}
			if res.ID != e.ID {
				t.Fatalf("result ID %s != %s", res.ID, e.ID)
			}
			var sb strings.Builder
			if err := res.Table.WriteText(&sb); err != nil {
				t.Fatal(err)
			}
			if len(sb.String()) == 0 {
				t.Fatal("empty table text")
			}
		})
	}
}

func TestQuickReducesTrials(t *testing.T) {
	c := RunConfig{Quick: true}
	if c.trials(1000) != 100 || c.trials(5) != 1 {
		t.Fatal("Quick trial scaling wrong")
	}
	if (RunConfig{}).trials(1000) != 1000 {
		t.Fatal("full trials must pass through")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	register(Experiment{ID: "fig1"})
}
