// Package fdbackscatter is a Go reproduction of "Full Duplex Backscatter"
// (HotNets-XII, 2013): a backscatter receiver transmits low-rate feedback
// while it receives, because its reflection is a slow amplitude ripple on
// a signal the transmitter already knows. The package exposes the
// system's three layers:
//
//   - the waveform-level link (Link): sample-accurate reader + battery-free
//     tag + channel, demonstrating concurrent forward data and backscatter
//     ACK/NACK with early termination;
//   - the packet-level protocols (RunProtocol and the protocol
//     constructors): full-duplex instantaneous feedback versus half-duplex
//     stop-and-wait and block-ACK at scale;
//   - the experiment harness (Experiments, RunExperiment): one runner per
//     figure/table of the evaluation.
//
// Everything is deterministic given a seed and uses only the standard
// library: experiments split into independent parameter cells that a
// worker pool can execute concurrently with byte-identical output. See
// README.md for the build instructions, the experiment index, and the
// cmd/fdbench -parallel flag.
package fdbackscatter

import (
	"context"
	"io"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/mac"
	"repro/internal/netsim"
	"repro/internal/phy"
	"repro/internal/rateadapt"
	"repro/internal/simrand"
)

// Re-exported configuration and result types for the waveform link.
type (
	// LinkConfig configures a waveform-level full-duplex backscatter
	// link (reader, tag, channel, optional interferer).
	LinkConfig = core.LinkConfig
	// InterfererConfig adds a co-channel interferer to a LinkConfig.
	InterfererConfig = core.InterfererConfig
	// Link is a configured link; create with NewLink.
	Link = core.Link
	// TransferOptions tune one frame exchange.
	TransferOptions = core.TransferOptions
	// TransferResult reports one frame exchange in detail.
	TransferResult = core.TransferResult
	// ChunkReport is the per-chunk ground truth vs observation record.
	ChunkReport = core.ChunkReport
	// OOK is the forward-link modem configuration.
	OOK = phy.OOK
)

// NewLink builds a waveform-level link from the configuration.
func NewLink(cfg LinkConfig) (*Link, error) { return core.NewLink(cfg) }

// Packet-level protocol types.
type (
	// MACParams dimensions the packet-level protocols.
	MACParams = mac.Params
	// MACResult aggregates a protocol run.
	MACResult = mac.Result
	// Loss is a chunk loss process (NewIIDLoss, NewGilbertLoss,
	// NewBurstLoss).
	Loss = mac.Loss
)

// NewIIDLoss returns an independent per-chunk loss process.
func NewIIDLoss(p float64, seed uint64) Loss {
	return mac.NewIIDLoss(p, simrand.New(seed))
}

// NewGilbertLoss returns a bursty Gilbert-Elliott chunk loss process.
func NewGilbertLoss(seed uint64, pGoodToBad, pBadToGood, lossGood, lossBad float64) Loss {
	return mac.NewGilbertLoss(simrand.New(seed), pGoodToBad, pBadToGood, lossGood, lossBad)
}

// NewBurstLoss returns an interferer-style burst loss process.
func NewBurstLoss(seed uint64, startProb, meanBurstChunks, hitProb, baseLoss float64) Loss {
	return mac.NewBurstLoss(simrand.New(seed), startProb, meanBurstChunks, hitProb, baseLoss)
}

// NewFullDuplexProtocol returns the paper's protocol: per-chunk feedback
// with immediate selective retransmission and early termination. The
// returned instance reuses internal scratch across Run calls and is not
// safe for concurrent use — construct one per goroutine (the Loss
// processes it consumes are per-goroutine anyway).
func NewFullDuplexProtocol(p MACParams, seed uint64) mac.Protocol {
	return &mac.FullDuplex{P: p, Seed: seed}
}

// NewStopAndWaitProtocol returns the half-duplex whole-frame baseline.
func NewStopAndWaitProtocol(p MACParams) mac.Protocol {
	return &mac.StopAndWait{P: p}
}

// NewBlockACKProtocol returns the half-duplex selective-repeat baseline.
func NewBlockACKProtocol(p MACParams) mac.Protocol {
	return &mac.BlockACK{P: p}
}

// Rate adaptation types.
type (
	// RateSpec is one rate-table entry for adaptation experiments.
	RateSpec = rateadapt.RateSpec
	// AdaptConfig configures a rate-adaptation trace run.
	AdaptConfig = rateadapt.SimConfig
	// AdaptResult summarises a trace run.
	AdaptResult = rateadapt.TraceResult
)

// RunAdaptationTrace drives the named policy ("fd", "arf", or "fixed-N")
// over nChunks chunk-times. Unknown names default to "fd".
func RunAdaptationTrace(cfg AdaptConfig, policy string, nChunks int) AdaptResult {
	n := len(cfg.Rates)
	if n == 0 {
		n = len(rateadapt.DefaultRates)
	}
	var a rateadapt.Adapter
	switch policy {
	case "arf":
		a = rateadapt.NewARF(n)
	case "fixed-slow":
		a = &rateadapt.Fixed{Index: 0, RateName: "slow"}
	case "fixed-fast":
		a = &rateadapt.Fixed{Index: n - 1, RateName: "fast"}
	default:
		a = rateadapt.NewFullDuplex(n)
	}
	return rateadapt.RunTrace(cfg, a, nChunks)
}

// Network scenario types (the multi-tag, multi-reader scenario engine).
type (
	// Scenario declares a multi-tag deployment as data: topology,
	// RF plant, readers, mobility, traffic, MAC dimensions, and per-tag
	// energy budget.
	Scenario = netsim.Scenario
	// ReaderSpec configures a Scenario's reader population: count,
	// placement, and TDM versus independent-channel scheduling with
	// finite channel isolation.
	ReaderSpec = netsim.ReaderSpec
	// MobilitySpec configures optional seeded waypoint tag mobility.
	MobilitySpec = netsim.MobilitySpec
	// RateAdaptSpec configures optional closed-loop per-tag rate
	// adaptation over a Gauss-Markov fading channel: fixed rate, ARF
	// frame probing, or the paper's full-duplex per-chunk policy.
	RateAdaptSpec = netsim.RateAdaptSpec
	// CongestionSpec configures optional per-tag closed-loop congestion
	// control: EWMA RTT with Jacobson RTO, cubic window growth, and a
	// bounded, backed-off retransmission queue.
	CongestionSpec = netsim.CongestionSpec
	// FaultSpec configures the deterministic fault-injection layer:
	// scheduled or seed-derived reader outages, interference bursts and
	// tag churn.
	FaultSpec = netsim.FaultSpec
	// FaultEvent is one scheduled fault in a FaultSpec.
	FaultEvent = netsim.FaultEvent
	// NetResult aggregates one scenario run (per-tag and per-reader
	// outcomes plus cell-level delivery, throughput, collision and
	// energy metrics).
	NetResult = netsim.NetResult
	// NetTagStats reports one tag's outcome inside a NetResult.
	NetTagStats = netsim.TagStats
	// NetReaderStats reports one reader's outcome inside a NetResult.
	NetReaderStats = netsim.ReaderStats
	// RoundSnapshot is one round's statistics as emitted by
	// RunScenarioStream: cumulative counters, per-round deltas, and
	// per-reader saturation. cmd/fdnetd streams these as NDJSON.
	RoundSnapshot = netsim.RoundSnapshot
	// ReaderRound is one reader's slice of a RoundSnapshot.
	ReaderRound = netsim.ReaderRound
	// SnapshotSink receives RoundSnapshots during a streamed run. The
	// snapshot is reused between rounds: serialize or copy it, do not
	// retain it.
	SnapshotSink = netsim.SnapshotSink
)

// Rate-adaptation policy names for RateAdaptSpec.Adapter.
const (
	// RateAdaptFixed holds the rate nearest 1x.
	RateAdaptFixed = netsim.RateAdaptFixed
	// RateAdaptARF probes at frame granularity (half-duplex learning).
	RateAdaptARF = netsim.RateAdaptARF
	// RateAdaptFD adapts per chunk on the full-duplex feedback channel.
	RateAdaptFD = netsim.RateAdaptFD
)

// Congestion controller names for CongestionSpec.Controller.
const (
	// CongestionCubic grows the window along the cubic curve and
	// multiplicatively decreases on timeout.
	CongestionCubic = netsim.CongestionCubic
)

// Reader admission policy names for ReaderSpec.Policy.
const (
	// PolicyAloha is framed-slotted-ALOHA contention (the default).
	PolicyAloha = netsim.PolicyAloha
	// PolicyFIFO grants oldest-backlog-first, collision-free.
	PolicyFIFO = netsim.PolicyFIFO
	// PolicyPropFair grants by waiting time over accumulated service.
	PolicyPropFair = netsim.PolicyPropFair
	// PolicyDeadline is EDF with deadline-miss drops.
	PolicyDeadline = netsim.PolicyDeadline
)

// Fault kinds for FaultEvent.Kind.
const (
	// FaultReaderOutage darkens a reader for a stretch of rounds; its
	// tags re-associate to the strongest surviving carrier.
	FaultReaderOutage = netsim.FaultReaderOutage
	// FaultInterference raises a reader cell's chunk-loss probability
	// for a stretch of rounds.
	FaultInterference = netsim.FaultInterference
)

// RunScenario executes a multi-tag network scenario deterministically
// under the given seed: same scenario + seed, same result.
func RunScenario(sc Scenario, seed uint64) (*NetResult, error) {
	return netsim.Run(sc, seed)
}

// RunScenarioParallel is RunScenario with an explicit engine worker
// count (0 or negative uses all CPUs). The result is byte-identical to
// RunScenario at any worker count: sharding only changes which
// goroutine executes each reader cell and tag range, never what they
// compute or which random stream they draw.
func RunScenarioParallel(sc Scenario, seed uint64, workers int) (*NetResult, error) {
	return netsim.RunParallel(sc, seed, workers)
}

// RunScenarioStream is RunScenario with a live per-round observer: sink
// receives one RoundSnapshot per round and the run aborts early if ctx
// is cancelled or sink returns an error. The final result — and the
// sequence of snapshots — is byte-identical to RunScenario's run at the
// same seed; cmd/fdnetd builds its NDJSON streaming service on this.
func RunScenarioStream(ctx context.Context, sc Scenario, seed uint64, sink SnapshotSink) (*NetResult, error) {
	return netsim.RunStream(ctx, sc, seed, sink)
}

// ScenarioPreset returns a built-in scenario by name; ScenarioPresets
// lists the available names.
func ScenarioPreset(name string) (Scenario, error) { return netsim.Preset(name) }

// ScenarioPresets lists the built-in scenario names.
func ScenarioPresets() []string { return netsim.PresetNames() }

// LoadScenario reads a scenario from a JSON file (unknown fields are
// rejected).
func LoadScenario(path string) (Scenario, error) { return netsim.LoadScenario(path) }

// ExperimentInfo describes one reproducible figure/table.
type ExperimentInfo struct {
	ID, Title string
}

// Experiments lists every registered experiment.
func Experiments() []ExperimentInfo {
	var out []ExperimentInfo
	for _, e := range bench.List() {
		out = append(out, ExperimentInfo{ID: e.ID, Title: e.Title})
	}
	return out
}

// RunExperiment executes the experiment with the given id, writing its
// table to w (text when csv is false) and returning the expected-shape
// statement. It runs serially; RunExperimentParallel spreads the
// experiment's cells over a worker pool with identical output.
func RunExperiment(id string, seed uint64, quick, csv bool, w io.Writer) (shape string, err error) {
	return RunExperimentParallel(id, seed, 1, quick, csv, w)
}

// RunExperimentParallel is RunExperiment with an explicit worker count
// for the experiment's independent parameter cells: 0 or negative uses
// all CPUs, 1 runs serially. Output is byte-identical at any worker
// count for the same seed.
func RunExperimentParallel(id string, seed uint64, workers int, quick, csv bool, w io.Writer) (shape string, err error) {
	e, err := bench.ByID(id)
	if err != nil {
		return "", err
	}
	if workers <= 0 {
		workers = bench.AutoWorkers()
	}
	res := e.Run(bench.RunConfig{Seed: seed, Quick: quick, Workers: workers})
	if csv {
		err = res.Table.WriteCSV(w)
	} else {
		err = res.Table.WriteText(w)
	}
	return res.Shape, err
}
