// Command iqtrace renders one full-duplex frame exchange at the waveform
// level and writes the reader's transmit waveform, the tag's incident
// waveform, and the reader's receive waveform (with the backscatter
// ripple) as CSV sample traces — the view a VSA/oscilloscope would give
// on the real testbed.
//
// Usage:
//
//	iqtrace -out trace.csv -payload 64 -rho 0.5
//	iqtrace -stats          # print summary only, no file
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"math/cmplx"
	"os"

	"repro/internal/channel"
	"repro/internal/feedback"
	"repro/internal/phy"
	"repro/internal/reader"
	"repro/internal/sigproc"
	"repro/internal/simrand"
	"repro/internal/tag"
)

func main() {
	var (
		out     = flag.String("out", "", "CSV output path (empty = stats only)")
		payload = flag.Int("payload", 64, "payload bytes")
		rho     = flag.Float64("rho", 0.3, "reflection coefficient")
		dist    = flag.Float64("dist", 2, "distance (m)")
		seed    = flag.Uint64("seed", 1, "random seed")
		stats   = flag.Bool("stats", false, "print stats only")
	)
	flag.Parse()

	modem := phy.OOK{SamplesPerChip: 4, Depth: 0.75}
	rd, err := reader.New(reader.Config{Modem: modem})
	if err != nil {
		fatal(err)
	}
	tg, err := tag.New(tag.Config{Modem: modem, Rho: *rho})
	if err != nil {
		fatal(err)
	}

	data := make([]byte, *payload)
	src := simrand.New(*seed)
	for i := range data {
		data[i] = byte(src.IntN(256))
	}
	hdr := phy.Header{Type: phy.FrameData, Seq: 1, ChunkSize: 16}
	wire, err := phy.BuildFrame(hdr, data, nil)
	if err != nil {
		fatal(err)
	}
	hdr.Version = phy.ProtocolVersion
	hdr.PayloadLen = uint16(len(data))
	wave, layout, err := rd.BuildWaveform(wire, hdr, 12)
	if err != nil {
		fatal(err)
	}
	// Propagate and run the tag phase by phase, assembling full traces.
	pl := channel.NewLogDistance(915e6, 2.5)
	g := pl.Gain(*dist)
	incident := wave.Clone().ScaleReal(sqrt(g))
	src.FillNoise(incident, 1e-12)

	states := make([]byte, 0, len(wave))
	margin := tg.MarginSamples()
	acqView := incident[:min(layout.AcquireEnd+margin, len(incident))]
	st, acq := tg.Acquire(acqView, layout.AcquireEnd, 1e6)
	states = append(states, st...)
	if acq.OK {
		for i := 0; i < hdr.NumChunks(); i++ {
			s, e := layout.ChunkBlock(i)
			view := incident[s:min(e+margin, len(incident))]
			states = append(states, tg.ProcessChunk(view, e-s, 1e6)...)
		}
		fs, fe := layout.FlushBlock()
		states = append(states, tg.Flush(incident[fs:fe], 0, 1e6)...)
	} else {
		states = feedback.AppendIdleStates(states, len(wave)-len(states))
	}
	for len(states) < len(wave) {
		states = append(states, feedback.StateAbsorb)
	}

	// Reader receive chain: leak + reflection.
	refl := tag.ReflectWaveform(incident[:len(wave)], states, *rho, nil)
	rx := make(sigproc.IQ, len(wave))
	leakAmp := complex(sqrt(0.01), 0)
	bwd := complex(sqrt(g), 0)
	for i := range rx {
		rx[i] = leakAmp*wave[i] + bwd*refl[i]
	}
	src.FillNoise(rx, 1e-12)

	fmt.Printf("frame: %d payload bytes, %d chunks, %d samples\n",
		*payload, hdr.NumChunks(), len(wave))
	fmt.Printf("tag acquired: %v (sync@%d amp=%.2e)\n", acq.OK, acq.SyncIndex, acq.AmpEstimate)
	if acq.OK {
		oks := tg.ChunkResults()
		good := 0
		for _, ok := range oks {
			if ok {
				good++
			}
		}
		fmt.Printf("chunks OK at tag: %d/%d\n", good, len(oks))
	}
	reflecting := 0
	for _, s := range states {
		if s == feedback.StateReflect {
			reflecting++
		}
	}
	fmt.Printf("tag reflected %.1f%% of samples\n", 100*float64(reflecting)/float64(len(states)))

	if *stats || *out == "" {
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "sample,tx_env,incident_env,rx_env,tag_state")
	for i := range wave {
		fmt.Fprintf(w, "%d,%.6e,%.6e,%.6e,%d\n",
			i, cmplx.Abs(wave[i]), cmplx.Abs(incident[i]), cmplx.Abs(rx[i]), states[i])
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d samples to %s\n", len(wave), *out)
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
