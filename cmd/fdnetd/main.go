// Command fdnetd serves the netsim scenario engine over HTTP: POST a
// scenario JSON (the same schema cmd/fdnet reads) to /runs and the
// daemon streams per-round statistics back as NDJSON, one engine per
// request up to -max-runs concurrent, with resume tokens on every line.
//
//	fdnetd -addr 127.0.0.1:8080 -max-runs 4 &
//	curl -sN --data-binary @examples/scenarios/fading-dock.json \
//	    'http://127.0.0.1:8080/runs?seed=1'
//
// SIGINT/SIGTERM cancels live runs and shuts the listener down
// gracefully (exit 0). -selftest runs the concurrent load harness
// against an in-process server instead of listening.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/netsvc"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address")
		maxRuns      = flag.Int("max-runs", 4, "maximum concurrent scenario runs (excess requests get 429)")
		maxTags      = flag.Int("max-tags", 1<<20, "per-request tag cap (larger scenarios get 413)")
		workers      = flag.Int("workers", 0, "engine workers per run (0: one per CPU)")
		retryAfter   = flag.Int("retry-after", 1, "Retry-After hint on 429 responses, seconds")
		selftest     = flag.Bool("selftest", false, "run the concurrent load self-test and exit")
		selftestRuns = flag.Int("selftest-runs", 200, "concurrent runs the self-test drives")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "fdnetd: ", log.LstdFlags)

	if *selftest {
		err := netsvc.SelfTest(netsvc.SelfTestConfig{
			Runs:          *selftestRuns,
			MaxConcurrent: *maxRuns,
			Workers:       *workers,
		}, os.Stderr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fdnetd: selftest FAILED: %v\n", err)
			os.Exit(1)
		}
		return
	}

	svc := netsvc.New(netsvc.Config{
		MaxConcurrent: *maxRuns,
		MaxTags:       *maxTags,
		Workers:       *workers,
		RetryAfterS:   *retryAfter,
		Log:           logger,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		sig := <-sigc
		logger.Printf("caught %v: cancelling %d live runs and shutting down", sig, svc.ActiveRuns())
		svc.CancelRuns()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Printf("shutdown: %v", err)
		}
		close(done)
	}()

	logger.Printf("listening on %s (max-runs=%d max-tags=%d workers=%d)", *addr, *maxRuns, *maxTags, *workers)
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		logger.Fatalf("listen: %v", err)
	}
	<-done
	logger.Printf("bye")
}
