// Command fdsim runs a single configurable waveform-level full-duplex
// backscatter link and prints per-frame statistics.
//
// Usage:
//
//	fdsim -frames 10 -dist 3 -rho 0.3 -chunk 32 -payload 256
//	fdsim -interferer -duty 0.3 -early  # collision + early termination
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/phy"
	"repro/internal/simrand"
)

func main() {
	var (
		frames  = flag.Int("frames", 10, "frames to transfer")
		payload = flag.Int("payload", 256, "payload bytes per frame")
		dist    = flag.Float64("dist", 2, "reader-tag distance (m)")
		rho     = flag.Float64("rho", 0.3, "tag reflection coefficient")
		chunk   = flag.Int("chunk", 32, "chunk size (bytes)")
		txdbm   = flag.Float64("txdbm", 20, "reader transmit power (dBm)")
		noise   = flag.Float64("noise", -100, "receiver noise (dBm)")
		early   = flag.Bool("early", false, "early termination on NACK")
		intf    = flag.Bool("interferer", false, "enable a co-channel interferer")
		duty    = flag.Float64("duty", 0.3, "interferer duty cycle")
		seed    = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	cfg := core.LinkConfig{
		Modem:        phy.OOK{SamplesPerChip: 4, Depth: 0.75},
		DistanceM:    *dist,
		Rho:          *rho,
		ChunkSize:    uint8(*chunk),
		TxPowerW:     dbmToW(*txdbm),
		ReaderNoiseW: dbmToW(*noise),
		TagNoiseW:    dbmToW(*noise),
		Seed:         *seed,
	}
	if *intf {
		cfg.Interferer = &core.InterfererConfig{
			PowerW: 0.5, DistanceToTagM: 1.5 * *dist, DistanceToReaderM: 2 * *dist,
			DutyCycle: *duty, BurstChunks: 2,
		}
	}
	l, err := core.NewLink(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	src := simrand.New(*seed + 1)
	data := make([]byte, *payload)
	var delivered, aborted int
	var fwdBits, fwdErrs, fbBits, fbErrs int
	var used, full int64
	for f := 0; f < *frames; f++ {
		for i := range data {
			data[i] = byte(src.IntN(256))
		}
		res, err := l.TransferFrame(data, core.TransferOptions{
			EarlyTerminate: *early, PadChips: -1,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		status := "ok"
		switch {
		case !res.Acquired:
			status = "NO-SYNC"
		case res.Aborted:
			status = fmt.Sprintf("ABORT@%d", res.AbortAfterChunk)
		case !res.DeliveredOK:
			status = "CORRUPT"
		}
		fmt.Printf("frame %2d seq=%3d %-9s chunks=%d fwdErrs=%d fbErrs=%d/%d airtime=%d/%d harvested=%.2euJ\n",
			f, res.Header.Seq, status, len(res.Chunks),
			res.ForwardBitErrors, res.FeedbackErrors, res.FeedbackBits,
			res.SamplesUsed, res.SamplesFull, res.HarvestedJ*1e6)
		if res.DeliveredOK {
			delivered++
		}
		if res.Aborted {
			aborted++
		}
		fwdBits += res.ForwardBits
		fwdErrs += res.ForwardBitErrors
		fbBits += res.FeedbackBits
		fbErrs += res.FeedbackErrors
		used += int64(res.SamplesUsed)
		full += int64(res.SamplesFull)
	}
	fmt.Printf("\ndelivered %d/%d frames, aborted %d\n", delivered, *frames, aborted)
	if fwdBits > 0 {
		fmt.Printf("forward BER  %.3e (%d/%d)\n", float64(fwdErrs)/float64(fwdBits), fwdErrs, fwdBits)
	}
	if fbBits > 0 {
		fmt.Printf("feedback BER %.3e (%d/%d)\n", float64(fbErrs)/float64(fbBits), fbErrs, fbBits)
	}
	if full > 0 {
		fmt.Printf("airtime used %.1f%% of booked\n", 100*float64(used)/float64(full))
	}
}

func dbmToW(dbm float64) float64 {
	return math.Pow(10, dbm/10) / 1000
}
