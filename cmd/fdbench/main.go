// Command fdbench regenerates the evaluation's figures and tables.
//
// Usage:
//
//	fdbench -list                 # show every experiment
//	fdbench -run fig4             # run one experiment (text table)
//	fdbench -run all -quick       # everything, reduced trials
//	fdbench -run fig1 -format csv # machine-readable output
//	fdbench -run fig6 -seed 7     # different random seed
//	fdbench -run fig1 -parallel 1 # force serial (output is identical)
//
// Experiments run their parameter cells on a worker pool; -parallel
// sets the pool size (0 = all CPUs). Output is byte-identical at any
// worker count for the same seed.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list experiments and exit")
		run      = flag.String("run", "", "experiment id to run, or 'all'")
		format   = flag.String("format", "text", "output format: text or csv")
		seed     = flag.Uint64("seed", 1, "random seed")
		quick    = flag.Bool("quick", false, "reduced trial counts")
		parallel = flag.Int("parallel", 0, "worker goroutines per experiment (0 = all CPUs, 1 = serial)")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("experiments:")
		for _, e := range bench.List() {
			fmt.Printf("  %-14s %s\n", e.ID, e.Title)
		}
		if *run == "" && !*list {
			fmt.Println("\nrun one with: fdbench -run <id>   (or -run all)")
		}
		return
	}

	var targets []bench.Experiment
	if *run == "all" {
		targets = bench.List()
	} else {
		e, err := bench.ByID(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		targets = []bench.Experiment{e}
	}

	workers := *parallel
	if workers <= 0 {
		workers = bench.AutoWorkers()
	}
	cfg := bench.RunConfig{Seed: *seed, Quick: *quick, Workers: workers}
	for i, e := range targets {
		if i > 0 {
			fmt.Println()
		}
		res := e.Run(cfg)
		var err error
		if *format == "csv" {
			err = res.Table.WriteCSV(os.Stdout)
		} else {
			err = res.Table.WriteText(os.Stdout)
			fmt.Printf("shape: %s\n", res.Shape)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
