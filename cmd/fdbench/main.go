// Command fdbench regenerates the evaluation's figures and tables.
//
// Usage:
//
//	fdbench -list                 # show every experiment
//	fdbench -run fig4             # run one experiment (text table)
//	fdbench -run all -quick       # everything, reduced trials
//	fdbench -run fig1 -format csv # machine-readable output
//	fdbench -run fig6 -seed 7     # different random seed
//	fdbench -run fig1 -parallel 1 # force serial (output is identical)
//	fdbench -run all -quick -timingjson BENCH_quick.json
//
// Experiments run their parameter cells on a worker pool; -parallel
// sets the pool size (0 = all CPUs). Output is byte-identical at any
// worker count for the same seed. -timingjson additionally writes
// per-experiment wall-clock timings to a JSON file, so CI can persist
// the perf trajectory as an artifact without polluting stdout.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/bench"
)

// timingReport is the -timingjson schema: enough context to compare
// runs across commits (the CI artifact embeds the commit in its name).
type timingReport struct {
	Seed        uint64          `json:"seed"`
	Quick       bool            `json:"quick"`
	Parallel    int             `json:"parallel"`
	GoVersion   string          `json:"go_version"`
	GOMAXPROCS  int             `json:"gomaxprocs"`
	Experiments []experimentRow `json:"experiments"`
	TotalMs     float64         `json:"total_ms"`
}

type experimentRow struct {
	ID string  `json:"id"`
	Ms float64 `json:"ms"`
}

func main() {
	var (
		list       = flag.Bool("list", false, "list experiments and exit")
		run        = flag.String("run", "", "experiment id to run, or 'all'")
		format     = flag.String("format", "text", "output format: text or csv")
		seed       = flag.Uint64("seed", 1, "random seed")
		quick      = flag.Bool("quick", false, "reduced trial counts")
		parallel   = flag.Int("parallel", 0, "worker goroutines per experiment (0 = all CPUs, 1 = serial)")
		timingJSON = flag.String("timingjson", "", "write per-experiment wall-clock timings to this JSON file")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("experiments:")
		for _, e := range bench.List() {
			fmt.Printf("  %-16s %s\n", e.ID, e.Title)
		}
		if *run == "" && !*list {
			fmt.Println("\nrun one with: fdbench -run <id>   (or -run all)")
		}
		return
	}

	var targets []bench.Experiment
	if *run == "all" {
		targets = bench.List()
	} else {
		e, err := bench.ByID(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		targets = []bench.Experiment{e}
	}

	workers := *parallel
	if workers <= 0 {
		workers = bench.AutoWorkers()
	}
	cfg := bench.RunConfig{Seed: *seed, Quick: *quick, Workers: workers}
	report := timingReport{
		Seed: *seed, Quick: *quick, Parallel: workers,
		GoVersion: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for i, e := range targets {
		if i > 0 {
			fmt.Println()
		}
		start := time.Now()
		res := e.Run(cfg)
		elapsed := time.Since(start)
		report.Experiments = append(report.Experiments, experimentRow{
			ID: e.ID, Ms: float64(elapsed.Microseconds()) / 1e3,
		})
		report.TotalMs += float64(elapsed.Microseconds()) / 1e3
		var err error
		if *format == "csv" {
			err = res.Table.WriteCSV(os.Stdout)
		} else {
			err = res.Table.WriteText(os.Stdout)
			fmt.Printf("shape: %s\n", res.Shape)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *timingJSON != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err == nil {
			err = os.WriteFile(*timingJSON, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
