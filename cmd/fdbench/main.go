// Command fdbench regenerates the evaluation's figures and tables.
//
// Usage:
//
//	fdbench -list                 # show every experiment
//	fdbench -run fig4             # run one experiment (text table)
//	fdbench -run all -quick       # everything, reduced trials
//	fdbench -run fig1 -format csv # machine-readable output
//	fdbench -run fig6 -seed 7     # different random seed
//	fdbench -run fig1 -parallel 1 # force serial (output is identical)
//	fdbench -run all -quick -timingjson BENCH_quick.json
//	fdbench -run all -quick -compare BENCH_baseline.json
//	fdbench -run fig1 -cpuprofile cpu.prof -memprofile mem.prof
//
// Experiments run their parameter cells on a worker pool; -parallel
// sets the pool size (0 = all CPUs). Output is byte-identical at any
// worker count for the same seed. -timingjson additionally writes
// per-experiment wall-clock timings to a JSON file, so CI can persist
// the perf trajectory as an artifact without polluting stdout.
// -compare checks the run's timings against a baseline report and
// exits non-zero on a regression beyond the default gate (>2x and
// >50 ms absolute); the comparison goes to stderr so the table output
// stays byte-identical. -cpuprofile/-memprofile write pprof profiles
// so hotspots can be localised without editing code.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/bench"
	"repro/internal/perf"
)

func main() {
	os.Exit(run())
}

// run carries the whole command so the CPU profile (and any other
// cleanup) flushes on every exit path; os.Exit skips deferred calls,
// which would leave -cpuprofile truncated exactly when -compare
// detects a regression.
func run() int {
	var (
		list       = flag.Bool("list", false, "list experiments and exit")
		run        = flag.String("run", "", "experiment id to run, or 'all'")
		format     = flag.String("format", "text", "output format: text or csv")
		seed       = flag.Uint64("seed", 1, "random seed")
		quick      = flag.Bool("quick", false, "reduced trial counts")
		parallel   = flag.Int("parallel", 0, "worker goroutines per experiment (0 = all CPUs, 1 = serial)")
		timingJSON = flag.String("timingjson", "", "write per-experiment wall-clock timings to this JSON file")
		compare    = flag.String("compare", "", "compare timings against this baseline JSON; exit 2 on regression")
		cpuProf    = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("experiments:")
		for _, e := range bench.List() {
			fmt.Printf("  %-16s %s\n", e.ID, e.Title)
		}
		if *run == "" && !*list {
			fmt.Println("\nrun one with: fdbench -run <id>   (or -run all)")
		}
		return 0
	}

	var targets []bench.Experiment
	if *run == "all" {
		targets = bench.List()
	} else {
		e, err := bench.ByID(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		targets = []bench.Experiment{e}
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	workers := *parallel
	if workers <= 0 {
		workers = bench.AutoWorkers()
	}
	cfg := bench.RunConfig{Seed: *seed, Quick: *quick, Workers: workers}
	report := &perf.Report{
		Seed: *seed, Quick: *quick, Parallel: workers,
		GoVersion: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU: runtime.NumCPU(), CPUModel: perf.HostCPUModel(),
	}
	for i, e := range targets {
		if i > 0 {
			fmt.Println()
		}
		start := time.Now()
		res := e.Run(cfg)
		elapsed := time.Since(start)
		report.Experiments = append(report.Experiments, perf.Timing{
			ID: e.ID, Ms: float64(elapsed.Microseconds()) / 1e3,
		})
		report.TotalMs += float64(elapsed.Microseconds()) / 1e3
		var err error
		if *format == "csv" {
			err = res.Table.WriteCSV(os.Stdout)
		} else {
			err = res.Table.WriteText(os.Stdout)
			fmt.Printf("shape: %s\n", res.Shape)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if *timingJSON != "" {
		if err := report.Write(*timingJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		f.Close()
	}
	if *compare != "" {
		base, err := perf.Load(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		for _, w := range perf.EnvMismatch(report, base) {
			fmt.Fprintf(os.Stderr, "perf: WARNING: environment differs from baseline — %s\n", w)
		}
		regs := perf.DefaultGate.Regressions(report, base)
		for _, d := range perf.Compare(report, base) {
			switch d.Status {
			case perf.StatusAdded:
				fmt.Fprintf(os.Stderr, "perf: %-16s (added)   %8.1f ms, no baseline\n", d.ID, d.CurrentMs)
			case perf.StatusRemoved:
				fmt.Fprintf(os.Stderr, "perf: %-16s (removed) %8.1f ms baseline no longer measured\n", d.ID, d.BaselineMs)
			default:
				fmt.Fprintf(os.Stderr, "perf: %-16s %8.1f ms -> %8.1f ms (%.2fx)\n",
					d.ID, d.BaselineMs, d.CurrentMs, d.Ratio)
			}
		}
		if len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "perf: %d experiment(s) regressed beyond %.1fx (or vanished) vs %s:\n",
				len(regs), perf.DefaultGate.MaxRatio, *compare)
			for _, d := range regs {
				if d.Status == perf.StatusRemoved {
					fmt.Fprintf(os.Stderr, "perf:   %s: removed (%.1f ms baseline unverifiable)\n", d.ID, d.BaselineMs)
					continue
				}
				fmt.Fprintf(os.Stderr, "perf:   %s: %.1f ms -> %.1f ms (%.2fx)\n",
					d.ID, d.BaselineMs, d.CurrentMs, d.Ratio)
			}
			return 2
		}
		fmt.Fprintf(os.Stderr, "perf: no regressions beyond %.1fx vs %s\n",
			perf.DefaultGate.MaxRatio, *compare)
	}
	return 0
}
