// Command fdnet runs one multi-tag network scenario (internal/netsim)
// and prints per-tag, per-reader and cell-level statistics.
//
// Usage:
//
//	fdnet -presets                     # list built-in scenarios
//	fdnet -preset warehouse            # run a built-in scenario
//	fdnet -scenario deploy.json        # run a scenario from JSON
//	fdnet -preset warehouse -tags 64   # override the population
//	fdnet -preset mall-cells -readers 8 -scheduling tdm
//	fdnet -preset sparse-field -mobility 2
//	fdnet -preset fading-aisle -rateadapt arf       # swap the policy
//	fdnet -preset warehouse -rateadapt fd -faderho 0.95
//	fdnet -preset lab-bench -format csv -seed 7
//	fdnet -preset warehouse -workers 8      # shard the engine
//	fdnet -preset million -analytic -summary
//	fdnet -preset congested-dock -policy fifo       # swap admission
//	fdnet -preset warehouse -congestion cubic -load 1.5
//
// Overrides (-tags, -topology, -radius, -load, -protocol, -readers,
// -scheduling, -mobility, -rateadapt, -faderho, -policy, -congestion,
// -analytic) apply on top of the preset or file; everything else comes
// from the scenario.
// Runs are deterministic: same scenario + seed, same output — at ANY
// -workers count (sharding changes who computes, never what). The
// resolved worker count goes to stderr so stdout stays byte-stable.
// -summary skips the per-tag table (a million-tag table is ~100 MB)
// and prints only the aggregate block.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/netsim"
	"repro/internal/trace"
)

func main() {
	var (
		presets    = flag.Bool("presets", false, "list built-in scenarios and exit")
		preset     = flag.String("preset", "", "built-in scenario name")
		file       = flag.String("scenario", "", "scenario JSON file")
		seed       = flag.Uint64("seed", 1, "random seed")
		format     = flag.String("format", "text", "output format: text or csv")
		tags       = flag.Int("tags", 0, "override tag count")
		topology   = flag.String("topology", "", "override topology (grid, uniform-disc, clustered, cells)")
		radius     = flag.Float64("radius", 0, "override deployment radius (m)")
		load       = flag.Float64("load", 0, "override offered load (frames/tag/round)")
		protocol   = flag.String("protocol", "", "override MAC protocol (full-duplex, stop-and-wait, block-ack)")
		readers    = flag.Int("readers", 0, "override reader count")
		scheduling = flag.String("scheduling", "", "override reader scheduling (independent, tdm)")
		mobility   = flag.Float64("mobility", 0, "enable waypoint mobility with this drift step (m/epoch)")
		rateadapt  = flag.String("rateadapt", "", "enable closed-loop rate adaptation with this policy (fixed, arf, fd)")
		fadeRho    = flag.Float64("faderho", -1, "override the per-chunk fading correlation, in [0, 1)")
		policy     = flag.String("policy", "", "override reader admission policy (aloha, fifo, prop-fair, deadline)")
		congestion = flag.String("congestion", "", "enable closed-loop congestion control with this controller (cubic)")
		workers    = flag.Int("workers", 0, "engine workers (0 = one per CPU); the result is identical at any count")
		analytic   = flag.Bool("analytic", false, "use the closed-form analytic engine (delivery-tight, airtime-optimistic)")
		summary    = flag.Bool("summary", false, "print only the aggregate block, not the per-tag table")
	)
	flag.Parse()

	if *presets || (*preset == "" && *file == "") {
		fmt.Println("built-in scenarios:")
		for _, name := range netsim.PresetNames() {
			sc, _ := netsim.Preset(name)
			sc.ApplyDefaults()
			extra := ""
			if sc.Readers.Count > 1 {
				extra += fmt.Sprintf(", %d readers (%s)", sc.Readers.Count, sc.Readers.Scheduling)
			}
			if sc.Mobility.Model == netsim.MobilityWaypoint {
				extra += fmt.Sprintf(", mobile (%.3gm/epoch)", sc.Mobility.StepM)
			}
			if sc.RateAdapt.Adapter != "" {
				extra += fmt.Sprintf(", rate-adapt %s (fade rho %.3g)", sc.RateAdapt.Adapter, sc.RateAdapt.FadeRho)
			}
			if sc.Congestion.Controller != "" {
				extra += fmt.Sprintf(", congestion %s", sc.Congestion.Controller)
			}
			if sc.Readers.Policy != netsim.PolicyAloha {
				extra += fmt.Sprintf(", policy %s", sc.Readers.Policy)
			}
			if len(sc.Faults.Events) > 0 || sc.Faults.OutageRate > 0 || sc.Faults.InterferenceRate > 0 || sc.Faults.ChurnRate > 0 {
				extra += ", faults"
			}
			fmt.Printf("  %-14s %d tags, %s, r=%gm%s\n", name, sc.Tags, sc.Topology, sc.RadiusM, extra)
		}
		if !*presets {
			fmt.Println("\nrun one with: fdnet -preset <name>   (or -scenario <file.json>)")
		}
		return
	}

	var sc netsim.Scenario
	var err error
	switch {
	case *preset != "" && *file != "":
		err = fmt.Errorf("use -preset or -scenario, not both")
	case *preset != "":
		sc, err = netsim.Preset(*preset)
	default:
		sc, err = netsim.LoadScenario(*file)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *tags > 0 {
		sc.Tags = *tags
	}
	if *topology != "" {
		sc.Topology = *topology
	}
	if *radius > 0 {
		sc.RadiusM = *radius
	}
	if *load > 0 {
		sc.OfferedLoad = *load
	}
	if *protocol != "" {
		sc.Protocol = *protocol
	}
	if *readers > 0 {
		sc.Readers.Count = *readers
	}
	if *scheduling != "" {
		sc.Readers.Scheduling = *scheduling
	}
	if *mobility > 0 {
		sc.Mobility.Model = netsim.MobilityWaypoint
		sc.Mobility.StepM = *mobility
	}
	if *rateadapt != "" {
		sc.RateAdapt.Adapter = *rateadapt
	}
	if *fadeRho >= 0 {
		sc.RateAdapt.FadeRho = *fadeRho
	}
	if *policy != "" {
		sc.Readers.Policy = *policy
	}
	if *congestion != "" {
		sc.Congestion.Controller = *congestion
	}
	if *analytic {
		sc.Analytic = true
	}

	nw := netsim.ResolveWorkers(*workers)
	engine := "exact"
	if sc.Analytic {
		engine = "analytic"
	}
	// Run header goes to stderr: stdout is the deterministic artifact
	// (byte-identical at any worker count) and must not depend on the
	// machine's CPU count.
	fmt.Fprintf(os.Stderr, "fdnet: %s seed=%d workers=%d engine=%s\n", sc.Name, *seed, nw, engine)

	res, err := netsim.RunParallel(sc, *seed, nw)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	adapt := res.Scenario.RateAdapt.Adapter != ""
	if *summary {
		printAggregates(res, os.Stdout)
		return
	}
	cols := []string{"tag", "reader", "dist_m", "snr_db", "chunk_loss", "fb_ber",
		"offered", "delivered", "dropped", "collisions", "outage", "alive"}
	if adapt {
		cols = append(cols, "mean_mult", "rate_switches", "lag_frac")
	}
	tbl := trace.NewTable(fmt.Sprintf("%s: per-tag outcomes (seed %d)", res.Scenario.Name, *seed), cols...)
	for _, t := range res.Tags {
		alive := "yes"
		if !t.Alive {
			alive = "no"
		}
		row := []any{t.ID, t.Reader, t.DistanceM, t.SNRdB, t.ChunkLossProb, t.FeedbackBER,
			t.FramesOffered, t.FramesDelivered, t.FramesDropped, t.Collisions,
			t.OutageFraction, alive}
		if adapt {
			lag := 0.0
			if t.AdaptChunks > 0 {
				lag = float64(t.AdaptLagChunks) / float64(t.AdaptChunks)
			}
			row = append(row, t.MeanRateMult, t.RateSwitches, lag)
		}
		tbl.AddRow(row...)
	}
	if *format == "csv" {
		err = tbl.WriteCSV(os.Stdout)
	} else {
		err = tbl.WriteText(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *format != "csv" {
		printAggregates(res, os.Stdout)
	}
}

// printAggregates writes the reader and cell-level summary block — the
// whole output in -summary mode, the table's tail otherwise.
func printAggregates(res *netsim.NetResult, w io.Writer) {
	if len(res.Readers) > 1 {
		fmt.Fprintf(w, "\nreaders (%s, %s):\n", res.Scenario.Readers.Scheduling, res.Scenario.Readers.Policy)
		for _, r := range res.Readers {
			fmt.Fprintf(w, "  reader %d at (%+.1f, %+.1f): %d tags, delivered %d, slots single/collision %d/%d",
				r.ID, r.X, r.Y, r.AssociatedTags, r.FramesDelivered,
				r.SingletonSlots, r.CollisionSlots)
			if r.QueueDepth > 0 {
				fmt.Fprintf(w, ", backlog %d", r.QueueDepth)
			}
			if r.SaturationOnset > 0 {
				fmt.Fprintf(w, ", saturated @%d", r.SaturationOnset)
				if r.RecoveryRound > 0 {
					fmt.Fprintf(w, " recovered @%d", r.RecoveryRound)
				}
			}
			if r.OutageRounds > 0 {
				fmt.Fprintf(w, ", down %d rounds", r.OutageRounds)
			}
			if r.InterferenceRounds > 0 {
				fmt.Fprintf(w, ", interfered %d rounds", r.InterferenceRounds)
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintf(w, "\nrounds %d  slots idle/single/collision %d/%d/%d  elapsed %d B (%.3f s)\n",
		res.Rounds, res.IdleSlots, res.SingletonSlots, res.CollisionSlots,
		res.ElapsedBytes, res.SimulatedS)
	fmt.Fprintf(w, "delivered %d/%d frames (%.3f), throughput %.4f B/B, collisions %.3f, fairness %.3f, alive %.2f\n",
		res.FramesDelivered, res.FramesOffered, res.DeliveryRate(),
		res.Throughput(), res.CollisionFraction(), res.FairnessIndex(), res.AliveFraction())
	if res.Scenario.RateAdapt.Adapter != "" {
		fmt.Fprintf(w, "rate adaptation (%s, fade rho %.3g): mean mult %.2fx, %d switches, lag %.3f over %d chunks\n",
			res.Scenario.RateAdapt.Adapter, res.Scenario.RateAdapt.FadeRho,
			res.MeanRateMult(), res.RateSwitches, res.AdaptLagFraction(), res.AdaptChunks)
	}
	if res.Scenario.Congestion.Controller != "" {
		fmt.Fprintf(w, "congestion (%s): %d timeouts, %d retransmissions, %d retx-dropped, mean cwnd %.2f\n",
			res.Scenario.Congestion.Controller, res.Timeouts, res.Retransmissions,
			res.RetxDropped, res.MeanCwnd())
	}
}
