// Command fdlint runs the repo's contract-enforcement analyzer suite
// (noalloc, orderedrange, purestream, sharded, shardwrite, streamtree,
// validatecover) over the packages matching its arguments — ./... by
// default — and exits nonzero when any contract is violated.
//
// Usage:
//
//	fdlint [-list] [-json] [-C dir] [packages]
//
// Diagnostics print as path:line:col: message [analyzer], sorted by
// position; -json switches to NDJSON, one object per finding with
// path, line, col, analyzer and message fields (the shape the committed
// GitHub problem matcher and other tooling consume). See README.md
// "Static analysis" for the contracts and the //fdlint: annotation
// escape hatches.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analyze"
)

// Exit codes. CI distinguishes "the code broke a contract" from "the
// lint run itself broke" (bad patterns, missing module, load failure).
const (
	exitClean    = 0
	exitFindings = 1
	exitLoadFail = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the NDJSON shape of one -json output line.
type jsonFinding struct {
	Path     string `json:"path"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fdlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers in the suite and exit")
	asJSON := fs.Bool("json", false, "emit findings as NDJSON, one object per line")
	dir := fs.String("C", "", "run as if launched from this directory")
	if err := fs.Parse(argv); err != nil {
		return exitLoadFail
	}

	if *list {
		for _, a := range analyze.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return exitClean
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := analyze.Run(*dir, nil, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "fdlint: %v\n", err)
		return exitLoadFail
	}
	enc := json.NewEncoder(stdout)
	for _, f := range findings {
		if *asJSON {
			enc.Encode(jsonFinding{
				Path: f.Pos.Filename, Line: f.Pos.Line, Col: f.Pos.Column,
				Analyzer: f.Analyzer, Message: f.Message,
			})
			continue
		}
		fmt.Fprintln(stdout, f.String())
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "fdlint: %d finding(s)\n", len(findings))
		return exitFindings
	}
	return exitClean
}
