// Command fdlint runs the repo's contract-enforcement analyzer suite
// (purestream, orderedrange, noalloc, sharded) over the packages
// matching its arguments — ./... by default — and exits nonzero when
// any contract is violated.
//
// Usage:
//
//	fdlint [-list] [packages]
//
// Diagnostics print as path:line:col: message [analyzer], sorted by
// position. See README.md "Static analysis" for the contracts and the
// //fdlint: annotation escape hatches.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analyze"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	flag.Parse()

	if *list {
		for _, a := range analyze.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := analyze.Run("", nil, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fdlint: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f.String())
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "fdlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
