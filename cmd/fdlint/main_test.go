package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway Go module for -C runs.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		p := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const goMod = "module fdlintdemo\n\ngo 1.24\n"

// Exit code 0: a clean module.
func TestExitClean(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":  goMod,
		"demo.go": "package fdlintdemo\n\nfunc Demo() int { return 1 }\n",
	})
	var out, errb bytes.Buffer
	if code := run([]string{"-C", dir, "./..."}, &out, &errb); code != exitClean {
		t.Fatalf("exit = %d, want %d; stdout=%q stderr=%q", code, exitClean, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Fatalf("clean run printed findings: %q", out.String())
	}
}

// Exit code 1: findings. An unknown //fdlint: verb trips orderedrange's
// directive hygiene check in any package, no imports needed.
func TestExitFindings(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":  goMod,
		"demo.go": "package fdlintdemo\n\n//fdlint:bogus not a verb\nfunc Demo() int { return 1 }\n",
	})
	var out, errb bytes.Buffer
	if code := run([]string{"-C", dir, "./..."}, &out, &errb); code != exitFindings {
		t.Fatalf("exit = %d, want %d; stderr=%q", code, exitFindings, errb.String())
	}
	if !strings.Contains(out.String(), `unknown fdlint directive "bogus"`) {
		t.Fatalf("stdout missing the finding: %q", out.String())
	}
	if !strings.Contains(errb.String(), "1 finding(s)") {
		t.Fatalf("stderr missing the summary: %q", errb.String())
	}
}

// Exit code 2: load failure (no module at the target directory) —
// distinct from findings so CI can tell a broken lint run from a
// broken contract.
func TestExitLoadFailure(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-C", t.TempDir(), "./..."}, &out, &errb); code != exitLoadFail {
		t.Fatalf("exit = %d, want %d; stderr=%q", code, exitLoadFail, errb.String())
	}
	if errb.Len() == 0 {
		t.Fatal("load failure printed no error")
	}
}

// -json emits one NDJSON object per finding with the documented fields.
func TestJSONOutput(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":  goMod,
		"demo.go": "package fdlintdemo\n\n//fdlint:bogus not a verb\nfunc Demo() int { return 1 }\n",
	})
	var out, errb bytes.Buffer
	if code := run([]string{"-C", dir, "-json", "./..."}, &out, &errb); code != exitFindings {
		t.Fatalf("exit = %d, want %d; stderr=%q", code, exitFindings, errb.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("want 1 NDJSON line, got %d: %q", len(lines), out.String())
	}
	var f jsonFinding
	if err := json.Unmarshal([]byte(lines[0]), &f); err != nil {
		t.Fatalf("bad NDJSON %q: %v", lines[0], err)
	}
	if !strings.HasSuffix(f.Path, "demo.go") || f.Line != 3 || f.Col == 0 ||
		f.Analyzer != "orderedrange" || !strings.Contains(f.Message, "bogus") {
		t.Fatalf("finding fields wrong: %+v", f)
	}
}

// -list names every analyzer in the suite.
func TestListAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != exitClean {
		t.Fatalf("exit = %d, want %d", code, exitClean)
	}
	for _, name := range []string{"noalloc", "orderedrange", "purestream", "sharded",
		"shardwrite", "streamtree", "validatecover"} {
		if !strings.Contains(out.String(), name) {
			t.Fatalf("-list missing %s: %q", name, out.String())
		}
	}
}
