// Collision detection: backscatter tags cannot carrier-sense, so a
// half-duplex reader transmits blindly through collisions and discovers
// the loss only at the ACK timeout. With full-duplex feedback the
// corrupted-chunk NACKs reveal the collision mid-frame; the reader
// aborts, backs off, and retries when the channel clears. This example
// sweeps the interferer's duty cycle and reports wasted airtime.
package main

import (
	"fmt"

	fdbackscatter "repro"
)

func main() {
	params := fdbackscatter.MACParams{
		PayloadBytes:   1500,
		ChunkBytes:     64,
		AbortThreshold: 2,  // abort after 2 consecutive NACKs
		BackoffChunks:  24, // defer while the burst passes
	}
	blind := params
	blind.AbortThreshold = 1 << 30 // never aborts

	fmt.Println("wasted airtime fraction vs interferer load (3000 frames/point)")
	fmt.Printf("%-10s  %-13s  %-12s  %-12s\n",
		"burst_duty", "half-duplex", "fd-blind", "fd-detect")
	for _, start := range []float64{0.002, 0.005, 0.01, 0.02, 0.05} {
		mkLoss := func(seed uint64) fdbackscatter.Loss {
			return fdbackscatter.NewBurstLoss(seed, start, 20, 1, 0.005)
		}
		duty := approximateDuty(start, 20)
		sw := fdbackscatter.NewStopAndWaitProtocol(params).Run(3000, mkLoss(1))
		fdBlind := fdbackscatter.NewFullDuplexProtocol(blind, 2).Run(3000, mkLoss(2))
		fdDetect := fdbackscatter.NewFullDuplexProtocol(params, 3).Run(3000, mkLoss(3))
		fmt.Printf("%-10.3f  %-13.3f  %-12.3f  %-12.3f\n",
			duty, sw.WastedFraction(), fdBlind.WastedFraction(), fdDetect.WastedFraction())
	}
	fmt.Println("\nfd-detect stays lowest: a doomed frame stops within ~2 chunks,")
	fmt.Println("while the half-duplex reader burns the whole frame plus the ACK.")
}

func approximateDuty(start, meanBurst float64) float64 {
	busy := start * meanBurst
	return busy / (1 + busy - start)
}
