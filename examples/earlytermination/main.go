// Early termination: the paper's headline application. A frame doomed by
// interference is aborted within two chunks instead of burning the whole
// airtime and waiting for an ACK timeout. This example measures the
// saving at both the waveform level (one link, one interferer) and the
// protocol level (thousands of frames).
package main

import (
	"fmt"
	"log"

	fdbackscatter "repro"
)

func main() {
	waveformDemo()
	fmt.Println()
	protocolScale()
}

// waveformDemo shows a single aborted exchange, sample-accurately.
func waveformDemo() {
	fmt.Println("--- waveform level: one doomed frame ---")
	link, err := fdbackscatter.NewLink(fdbackscatter.LinkConfig{
		DistanceM: 2,
		ChunkSize: 16,
		Seed:      7,
		Interferer: &fdbackscatter.InterfererConfig{
			PowerW:            1.0,
			DistanceToTagM:    1.0,
			DistanceToReaderM: 3.0,
			DutyCycle:         1.0, // jammed continuously: every chunk dies
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	payload := make([]byte, 320) // 20 chunks
	res, err := link.TransferFrame(payload, fdbackscatter.TransferOptions{
		EarlyTerminate: true, PadChips: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Acquired {
		fmt.Println("tag could not even sync under the jammer (expected sometimes)")
		return
	}
	fmt.Printf("aborted: %v after chunk %d of %d\n",
		res.Aborted, res.AbortAfterChunk, res.Header.NumChunks())
	fmt.Printf("airtime spent: %d of %d samples (saved %.0f%%)\n",
		res.SamplesUsed, res.SamplesFull,
		100*(1-float64(res.SamplesUsed)/float64(res.SamplesFull)))
}

// protocolScale compares goodput efficiency across loss rates.
func protocolScale() {
	fmt.Println("--- protocol level: 2000 frames per point ---")
	params := fdbackscatter.MACParams{PayloadBytes: 1500, ChunkBytes: 64}
	fmt.Printf("%-6s  %-13s  %-11s  %-8s\n", "loss", "stop-and-wait", "full-duplex", "gain")
	for _, p := range []float64{0.01, 0.05, 0.1, 0.2, 0.3} {
		sw := fdbackscatter.NewStopAndWaitProtocol(params).
			Run(2000, fdbackscatter.NewIIDLoss(p, 1))
		fd := fdbackscatter.NewFullDuplexProtocol(params, 2).
			Run(2000, fdbackscatter.NewIIDLoss(p, 3))
		gain := 0.0
		if sw.Efficiency() > 0 {
			gain = fd.Efficiency() / sw.Efficiency()
		}
		fmt.Printf("%-6.2f  %-13.4f  %-11.4f  %6.1fx\n",
			p, sw.Efficiency(), fd.Efficiency(), gain)
	}
}
