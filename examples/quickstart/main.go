// Quickstart: transfer one frame over a full-duplex backscatter link and
// watch the concurrent feedback arrive chunk by chunk.
package main

import (
	"fmt"
	"log"

	fdbackscatter "repro"
)

func main() {
	// A reader 2 m from a battery-free tag, default 915 MHz indoor
	// propagation, 32-byte chunks.
	link, err := fdbackscatter.NewLink(fdbackscatter.LinkConfig{
		DistanceM: 2,
		Rho:       0.3, // tag reflects 30% of incident power for feedback
		ChunkSize: 32,
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}

	payload := []byte("Full-duplex backscatter: the tag ACKs every chunk while it is still receiving the next one.")
	res, err := link.TransferFrame(payload, fdbackscatter.TransferOptions{
		EarlyTerminate: true,
		PadChips:       -1, // random pre-frame idle, exercises tag sync
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("tag acquired frame: %v (seq %d, %d chunks)\n",
		res.Acquired, res.Header.Seq, len(res.Chunks))
	for i, c := range res.Chunks {
		fmt.Printf("  chunk %d: delivered=%v readerSawACK=%v margin=%.4f\n",
			i, c.TagOK, c.ReaderSawBit && c.ReaderBit == 1, c.Margin)
	}
	fmt.Printf("payload delivered intact: %v\n", res.DeliveredOK && string(res.Payload) == string(payload))
	fmt.Printf("feedback bits decoded concurrently with TX: %d (errors: %d)\n",
		res.FeedbackBits, res.FeedbackErrors)
	fmt.Printf("tag harvested %.3g uJ during the exchange\n", res.HarvestedJ*1e6)
}
