// Energy budget: the tag is battery-free, so the reflection coefficient
// rho trades feedback signal strength against harvested power. This
// example runs real waveform transfers at several rho values and reports
// both sides of the trade: harvested energy per frame and the reader's
// feedback decode margin.
package main

import (
	"fmt"
	"log"

	fdbackscatter "repro"
)

func main() {
	payload := make([]byte, 192)
	fmt.Println("rho sweep at 3 m, 20 dBm reader, 6 frames per point")
	fmt.Printf("%-5s  %-16s  %-16s  %-9s\n",
		"rho", "harvested_uJ/frm", "feedback_margin", "delivered")
	for _, rho := range []float64{0.1, 0.2, 0.3, 0.5, 0.7, 0.9} {
		link, err := fdbackscatter.NewLink(fdbackscatter.LinkConfig{
			DistanceM: 3,
			Rho:       rho,
			ChunkSize: 32,
			Seed:      uint64(rho * 1000),
		})
		if err != nil {
			log.Fatal(err)
		}
		var harvested, margin float64
		var chunks, delivered, frames int
		for f := 0; f < 6; f++ {
			res, err := link.TransferFrame(payload, fdbackscatter.TransferOptions{PadChips: -1})
			if err != nil {
				log.Fatal(err)
			}
			frames++
			harvested += res.HarvestedJ
			if res.DeliveredOK {
				delivered++
			}
			for _, c := range res.Chunks {
				if c.ReaderSawBit {
					margin += c.Margin
					chunks++
				}
			}
		}
		avgMargin := 0.0
		if chunks > 0 {
			avgMargin = margin / float64(chunks)
		}
		fmt.Printf("%-5.1f  %-16.4g  %-16.5f  %d/%d\n",
			rho, harvested/float64(frames)*1e6, avgMargin, delivered, frames)
	}
	fmt.Println("\nhigher rho: stronger feedback (bigger margin), less energy")
	fmt.Println("harvested — the operating point is a deployment choice.")
}
