// Rate adaptation: per-chunk feedback lets the reader react to a fade
// within one chunk, where packet-level probing needs whole lost frames
// to notice. This example runs both policies (plus fixed-rate anchors)
// over the same correlated Rayleigh fading trace and prints throughput.
package main

import (
	"fmt"

	fdbackscatter "repro"
)

func main() {
	const chunks = 100000
	fmt.Println("throughput (payload bytes per base chunk-time), 100k chunks/point")
	fmt.Printf("%-9s  %-10s  %-10s  %-11s  %-11s\n",
		"mean_snr", "fd", "arf", "fixed-slow", "fixed-fast")
	for _, snr := range []float64{4, 8, 12, 16, 20} {
		cfg := fdbackscatter.AdaptConfig{
			MeanSNRdB:   snr,
			FadeRho:     0.97, // coherence ~ 30 chunk-times
			FrameChunks: 48,   // ARF learns 48x slower than FD
			Seed:        uint64(snr * 10),
		}
		fd := fdbackscatter.RunAdaptationTrace(cfg, "fd", chunks)
		arf := fdbackscatter.RunAdaptationTrace(cfg, "arf", chunks)
		slow := fdbackscatter.RunAdaptationTrace(cfg, "fixed-slow", chunks)
		fast := fdbackscatter.RunAdaptationTrace(cfg, "fixed-fast", chunks)
		fmt.Printf("%-9.0f  %-10.2f  %-10.2f  %-11.2f  %-11.2f\n",
			snr,
			fd.ThroughputBytesPerTime(), arf.ThroughputBytesPerTime(),
			slow.ThroughputBytesPerTime(), fast.ThroughputBytesPerTime())
	}
	fmt.Println("\nfd tracks the fades chunk-by-chunk; arf only moves at frame")
	fmt.Println("boundaries; the fixed anchors bracket the achievable range.")
}
