package fdbackscatter

// One benchmark per figure/table of the evaluation (see the README's
// experiment index), plus micro-benchmarks of the hot paths. Each
// experiment benchmark executes the same runner cmd/fdbench uses, in
// quick mode so -bench completes in reasonable time; run cmd/fdbench for
// the full-trial tables. The *Parallel variants run the same experiment
// with a full worker pool, for serial-vs-parallel comparisons.

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/sigproc"
	"repro/internal/simrand"
)

func benchExperiment(b *testing.B, id string) {
	benchExperimentWorkers(b, id, 1)
}

func benchExperimentWorkers(b *testing.B, id string, workers int) {
	b.Helper()
	e, err := bench.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := e.Run(bench.RunConfig{Seed: uint64(i) + 1, Quick: true, Workers: workers})
		if res.Table.NumRows() == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFig1FeedbackBER(b *testing.B)      { benchExperiment(b, "fig1") }
func BenchmarkFig2FeedbackVsRho(b *testing.B)    { benchExperiment(b, "fig2") }
func BenchmarkFig3ForwardImpact(b *testing.B)    { benchExperiment(b, "fig3") }
func BenchmarkFig4EarlyTermination(b *testing.B) { benchExperiment(b, "fig4") }
func BenchmarkFig5CollisionDetect(b *testing.B)  { benchExperiment(b, "fig5") }
func BenchmarkFig6RateAdaptation(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7WaveformLink(b *testing.B)     { benchExperiment(b, "fig7") }
func BenchmarkTab1FeedbackLatency(b *testing.B)  { benchExperiment(b, "tab1") }
func BenchmarkTab2EnergyBudget(b *testing.B)     { benchExperiment(b, "tab2") }

func BenchmarkFig1FeedbackBERParallel(b *testing.B) {
	benchExperimentWorkers(b, "fig1", bench.AutoWorkers())
}
func BenchmarkFig6RateAdaptationParallel(b *testing.B) {
	benchExperimentWorkers(b, "fig6", bench.AutoWorkers())
}
func BenchmarkFig7WaveformLinkParallel(b *testing.B) {
	benchExperimentWorkers(b, "fig7", bench.AutoWorkers())
}

func BenchmarkAblationSINorm(b *testing.B)       { benchExperiment(b, "abl-sinorm") }
func BenchmarkAblationFeedbackCode(b *testing.B) { benchExperiment(b, "abl-fbcode") }
func BenchmarkAblationChunkSize(b *testing.B)    { benchExperiment(b, "abl-chunk") }
func BenchmarkAblationThreshold(b *testing.B)    { benchExperiment(b, "abl-threshold") }

// --- micro-benchmarks of the hot paths ---

func BenchmarkLinkTransferFrame(b *testing.B) {
	l, err := core.NewLink(core.LinkConfig{
		Modem: phy.OOK{SamplesPerChip: 4}, ChunkSize: 32, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 256)
	b.ReportAllocs()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.TransferFrame(payload, core.TransferOptions{PadChips: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMACFullDuplex(b *testing.B) {
	params := mac.Params{PayloadBytes: 1500, ChunkBytes: 64}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		loss := mac.NewIIDLoss(0.1, simrand.New(uint64(i)))
		(&mac.FullDuplex{P: params, Seed: uint64(i)}).Run(100, loss)
	}
}

func BenchmarkFFT1024(b *testing.B) {
	x := make(sigproc.IQ, 1024)
	src := simrand.New(1)
	for i := range x {
		x[i] = src.ComplexNormal(1)
	}
	b.ReportAllocs()
	b.SetBytes(1024 * 16)
	for i := 0; i < b.N; i++ {
		sigproc.FFT(x)
	}
}

func BenchmarkEnvelopeNormalizeDecode(b *testing.B) {
	// The reader's per-chunk feedback decode path.
	rd := mustReaderBench(b)
	src := simrand.New(2)
	const n = 4096
	tx := sigproc.NewIQ(n).Fill(complex(0.3, 0))
	rx := tx.Clone().Scale(0.1)
	src.FillNoise(rx, 1e-6)
	b.ReportAllocs()
	b.SetBytes(n * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.DecodeFeedbackBit(rx, tx)
	}
}

func mustReaderBench(b *testing.B) interface {
	DecodeFeedbackBit(rx, tx sigproc.IQ) (byte, float64)
} {
	b.Helper()
	l, err := core.NewLink(core.LinkConfig{Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	return l.Reader()
}

// Keep the facade itself exercised.
func BenchmarkFacadeExperimentList(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(Experiments()) < 10 {
			b.Fatal("experiments missing")
		}
	}
}

// BenchmarkLinkTransferFrameInto measures the steady-state Monte-Carlo
// hot path the experiment harness actually runs: one reused link, one
// recycled result, zero allocations per frame (enforced by
// TestTransferFrameIntoAllocFree in internal/core).
func BenchmarkLinkTransferFrameInto(b *testing.B) {
	l, err := core.NewLink(core.LinkConfig{
		Modem: phy.OOK{SamplesPerChip: 4}, ChunkSize: 32, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 256)
	var res core.TransferResult
	b.ReportAllocs()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.TransferFrameInto(payload, core.TransferOptions{PadChips: 8}, &res); err != nil {
			b.Fatal(err)
		}
	}
}
