package fdbackscatter

import (
	"path/filepath"
	"testing"
)

// Every scenario file shipped under examples/scenarios must load,
// validate, and actually run: nothing else would catch a schema drift
// (a renamed field, a tightened bound) silently breaking the examples.
func TestShippedScenarioFilesValidate(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("examples", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 2 {
		t.Fatalf("expected at least 2 shipped scenario files, found %d (glob broken or examples moved?)", len(files))
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			sc, err := LoadScenario(path)
			if err != nil {
				t.Fatalf("LoadScenario: %v", err)
			}
			if sc.Name == "" {
				t.Error("scenario has no name")
			}
			// A short deterministic run proves the file is not just
			// parseable but executable; clamp the horizon so the test
			// stays fast regardless of the shipped MaxRounds.
			if sc.MaxRounds > 40 {
				sc.MaxRounds = 40
			}
			res, err := RunScenario(sc, 1)
			if err != nil {
				t.Fatalf("RunScenario: %v", err)
			}
			if res.Rounds == 0 {
				t.Error("scenario ran zero rounds")
			}
			again, err := RunScenario(sc, 1)
			if err != nil {
				t.Fatal(err)
			}
			if res.FramesDelivered != again.FramesDelivered || res.ElapsedBytes != again.ElapsedBytes {
				t.Error("scenario run is not deterministic at fixed seed")
			}
		})
	}
}
