package fdbackscatter

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestFacadeLinkRoundTrip(t *testing.T) {
	l, err := NewLink(LinkConfig{Seed: 1, ChunkSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("hello full duplex backscatter world, this is a frame")
	res, err := l.TransferFrame(payload, TransferOptions{PadChips: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !res.DeliveredOK || !bytes.Equal(res.Payload, payload) {
		t.Fatal("facade link failed a clean transfer")
	}
}

func TestFacadeProtocols(t *testing.T) {
	p := MACParams{PayloadBytes: 512, ChunkBytes: 64}
	for _, proto := range []struct {
		name string
		run  func() MACResult
	}{
		{"fd", func() MACResult {
			return NewFullDuplexProtocol(p, 1).Run(50, iidLoss(0.1))
		}},
		{"sw", func() MACResult {
			return NewStopAndWaitProtocol(p).Run(50, iidLoss(0.1))
		}},
		{"ba", func() MACResult {
			return NewBlockACKProtocol(p).Run(50, iidLoss(0.1))
		}},
	} {
		r := proto.run()
		if r.FramesSent != 50 {
			t.Fatalf("%s: sent %d", proto.name, r.FramesSent)
		}
	}
}

func iidLoss(p float64) Loss {
	return NewIIDLoss(p, 9)
}

func TestFacadeAdaptation(t *testing.T) {
	for _, policy := range []string{"fd", "arf", "fixed-slow", "fixed-fast", "unknown"} {
		r := RunAdaptationTrace(AdaptConfig{MeanSNRdB: 12, Seed: 3}, policy, 2000)
		if r.ChunksSent != 2000 {
			t.Fatalf("%s: sent %d chunks", policy, r.ChunksSent)
		}
	}
}

func TestFacadeExperiments(t *testing.T) {
	infos := Experiments()
	if len(infos) < 13 {
		t.Fatalf("only %d experiments", len(infos))
	}
	var sb strings.Builder
	shape, err := RunExperiment("fig4", 1, true, false, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if shape == "" || !strings.Contains(sb.String(), "full_duplex") {
		t.Fatalf("experiment output unexpected:\n%s", sb.String())
	}
	// CSV path.
	sb.Reset()
	if _, err := RunExperiment("tab1", 1, true, true, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "chunk_bytes,") {
		t.Fatalf("CSV output unexpected: %s", sb.String())
	}
	// Unknown id.
	if _, err := RunExperiment("nope", 1, true, false, io.Discard); err == nil {
		t.Fatal("unknown experiment must error")
	}
	if _, err := RunExperimentParallel("nope", 1, 0, true, false, io.Discard); err == nil {
		t.Fatal("unknown experiment must error in parallel path too")
	}
}

func TestFacadeScenarios(t *testing.T) {
	names := ScenarioPresets()
	if len(names) < 3 {
		t.Fatalf("only %d scenario presets", len(names))
	}
	sc, err := ScenarioPreset(names[0])
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunScenario(sc, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tags) == 0 || res.FramesOffered == 0 {
		t.Fatalf("scenario run empty: %+v", res)
	}
	again, err := RunScenario(sc, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.String() != again.String() {
		t.Fatal("scenario runs must be deterministic for the same seed")
	}
	if _, err := RunScenario(Scenario{Protocol: "bogus"}, 1); err == nil {
		t.Fatal("invalid scenario must error")
	}
	if _, err := LoadScenario("no-such-file.json"); err == nil {
		t.Fatal("missing scenario file must error")
	}

	// Multi-reader mobile deployments run through the facade types.
	multi, err := RunScenario(Scenario{
		Tags: 12, Topology: "cells", RadiusM: 10, ClusterSpreadM: 2,
		Readers:      ReaderSpec{Count: 2, Placement: "line", SpacingM: 12},
		Mobility:     MobilitySpec{Model: "waypoint", StepM: 1, EpochRounds: 2},
		FramesPerTag: 2,
	}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.Readers) != 2 {
		t.Fatalf("want 2 reader stats, got %d", len(multi.Readers))
	}
	var assoc int
	for _, r := range multi.Readers {
		assoc += r.AssociatedTags
	}
	if assoc != 12 {
		t.Fatalf("reader associations sum to %d, want 12", assoc)
	}
}

// The parallel facade path must reproduce the serial one byte for byte.
func TestFacadeParallelMatchesSerial(t *testing.T) {
	for _, id := range []string{"fig1", "fig4", "tab1", "scen-density", "scen-multireader", "scen-mobility"} {
		var serial, parallel strings.Builder
		if _, err := RunExperiment(id, 5, true, true, &serial); err != nil {
			t.Fatal(err)
		}
		if _, err := RunExperimentParallel(id, 5, 0, true, true, &parallel); err != nil {
			t.Fatal(err)
		}
		if serial.String() != parallel.String() {
			t.Fatalf("%s: parallel output differs from serial", id)
		}
	}
}
